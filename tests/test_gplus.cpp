#include "hwlib/gplus.hpp"

#include <gtest/gtest.h>

#include "test_util.hpp"

namespace isex::hw {
namespace {

TEST(GPlus, AnnotatesEligibleNodesWithHardware) {
  const dfg::Graph g = testing::make_chain(3, isa::Opcode::kAddu);
  const HwLibrary lib = HwLibrary::paper_default();
  const GPlus gp(g, lib);
  for (dfg::NodeId v = 0; v < g.num_nodes(); ++v) {
    EXPECT_TRUE(gp.hardware_capable(v));
    EXPECT_EQ(gp.table(v).size(), 3u);  // SW + 2 HW adder options
  }
}

TEST(GPlus, MemoryNodesAreSoftwareOnly) {
  dfg::Graph g;
  const auto addr = g.add_node(isa::Opcode::kAddu, "addr");
  const auto load = g.add_node(isa::Opcode::kLw, "v");
  g.add_edge(addr, load);
  const GPlus gp(g, HwLibrary::paper_default());
  EXPECT_TRUE(gp.hardware_capable(addr));
  EXPECT_FALSE(gp.hardware_capable(load));
  EXPECT_EQ(gp.table(load).size(), 1u);
}

TEST(GPlus, IseSupernodeGetsLatencyAsSoftwareDelay) {
  dfg::Graph g;
  dfg::IseInfo info;
  info.latency_cycles = 3;
  const auto v = g.add_ise_node(info, "ISE");
  const GPlus gp(g, HwLibrary::paper_default());
  EXPECT_FALSE(gp.hardware_capable(v));
  EXPECT_DOUBLE_EQ(gp.software_cycles(v), 3.0);
}

TEST(GPlus, SoftwareCyclesDefaultToOne) {
  const dfg::Graph g = testing::make_chain(2);
  const GPlus gp(g, HwLibrary::paper_default());
  EXPECT_DOUBLE_EQ(gp.software_cycles(0), 1.0);
}

TEST(GPlus, EmptyLibraryMakesEverythingSoftware) {
  const dfg::Graph g = testing::make_chain(4, isa::Opcode::kXor);
  HwLibrary lib;  // no entries at all
  const GPlus gp(g, lib);
  for (dfg::NodeId v = 0; v < g.num_nodes(); ++v)
    EXPECT_FALSE(gp.hardware_capable(v));
}

}  // namespace
}  // namespace isex::hw
