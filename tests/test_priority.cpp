#include "sched/priority.hpp"

#include <gtest/gtest.h>

#include "test_util.hpp"

namespace isex::sched {
namespace {

TEST(Priority, ChildCount) {
  const dfg::Graph g = testing::make_diamond();  // a->{b,c}->d
  const auto p = compute_priorities(g, PriorityKind::kChildCount);
  EXPECT_DOUBLE_EQ(p[0], 2.0);
  EXPECT_DOUBLE_EQ(p[1], 1.0);
  EXPECT_DOUBLE_EQ(p[2], 1.0);
  EXPECT_DOUBLE_EQ(p[3], 0.0);
}

TEST(Priority, MobilityZeroSlackRanksHighest) {
  // Chain: every node zero-slack; scores all equal and maximal.
  const dfg::Graph g = testing::make_chain(4);
  const auto p = compute_priorities(g, PriorityKind::kMobility);
  for (const double v : p) EXPECT_DOUBLE_EQ(v, 0.0);  // max_mobility == 0
}

TEST(Priority, MobilityDistinguishesSlack) {
  // a -> b -> d, a -> c -> d where c is a 3-cycle ISE: b has slack 2.
  dfg::Graph g;
  const auto a = g.add_node(isa::Opcode::kAddu, "a");
  const auto b = g.add_node(isa::Opcode::kXor, "b");
  dfg::IseInfo info;
  info.latency_cycles = 3;
  const auto c = g.add_ise_node(info, "c");
  const auto d = g.add_node(isa::Opcode::kAddu, "d");
  g.add_edge(a, b);
  g.add_edge(a, c);
  g.add_edge(b, d);
  g.add_edge(c, d);
  const auto p = compute_priorities(g, PriorityKind::kMobility);
  EXPECT_GT(p[a], p[b]);
  EXPECT_GT(p[c], p[b]);
  EXPECT_DOUBLE_EQ(p[a], p[c]);
}

TEST(Priority, DescendantCount) {
  const dfg::Graph g = testing::make_chain(5);
  const auto p = compute_priorities(g, PriorityKind::kDescendantCount);
  EXPECT_DOUBLE_EQ(p[0], 4.0);
  EXPECT_DOUBLE_EQ(p[4], 0.0);
  for (std::size_t i = 1; i < 5; ++i) EXPECT_LT(p[i], p[i - 1]);
}

TEST(Priority, AllScoresNonNegative) {
  Rng rng(21);
  for (int i = 0; i < 5; ++i) {
    const dfg::Graph g = testing::make_random_dag(30, rng);
    for (const auto kind :
         {PriorityKind::kChildCount, PriorityKind::kMobility,
          PriorityKind::kDescendantCount}) {
      for (const double v : compute_priorities(g, kind)) EXPECT_GE(v, 0.0);
    }
  }
}

TEST(Priority, EmptyGraph) {
  dfg::Graph g;
  EXPECT_TRUE(compute_priorities(g, PriorityKind::kChildCount).empty());
}

}  // namespace
}  // namespace isex::sched
