#include "exec/memory.hpp"

#include <gtest/gtest.h>

namespace isex::exec {
namespace {

TEST(Memory, UntouchedBytesReadZero) {
  const Memory m;
  EXPECT_EQ(m.load_byte(0), 0u);
  EXPECT_EQ(m.load_word(0xDEADBEEF), 0u);
}

TEST(Memory, ByteRoundTrip) {
  Memory m;
  m.store_byte(100, 0xAB);
  EXPECT_EQ(m.load_byte(100), 0xABu);
  EXPECT_EQ(m.load_byte(101), 0u);
}

TEST(Memory, WordIsLittleEndian) {
  Memory m;
  m.store_word(0x1000, 0x11223344u);
  EXPECT_EQ(m.load_byte(0x1000), 0x44u);
  EXPECT_EQ(m.load_byte(0x1001), 0x33u);
  EXPECT_EQ(m.load_byte(0x1002), 0x22u);
  EXPECT_EQ(m.load_byte(0x1003), 0x11u);
  EXPECT_EQ(m.load_word(0x1000), 0x11223344u);
}

TEST(Memory, HalfRoundTrip) {
  Memory m;
  m.store_half(8, 0xBEEF);
  EXPECT_EQ(m.load_half(8), 0xBEEFu);
  EXPECT_EQ(m.load_byte(8), 0xEFu);
}

TEST(Memory, UnalignedAccessWorks) {
  Memory m;
  m.store_word(3, 0xCAFEBABEu);
  EXPECT_EQ(m.load_word(3), 0xCAFEBABEu);
  EXPECT_EQ(m.load_half(4), 0xFEBAu);
}

TEST(Memory, OverwriteAndZeroingKeepsSparse) {
  Memory m;
  m.store_word(0, 0xFFFFFFFFu);
  EXPECT_EQ(m.footprint(), 4u);
  m.store_word(0, 0);
  EXPECT_EQ(m.footprint(), 0u);
  EXPECT_EQ(m.load_word(0), 0u);
}

TEST(Memory, DistinctAddressesIndependent) {
  Memory m;
  m.store_word(0, 1);
  m.store_word(4, 2);
  EXPECT_EQ(m.load_word(0), 1u);
  EXPECT_EQ(m.load_word(4), 2u);
}

}  // namespace
}  // namespace isex::exec
