#include "hwpart/partition.hpp"

#include <gtest/gtest.h>

namespace isex::hwpart {
namespace {

/// Pipeline of four tasks; task 1 is the expensive one with two hardware
/// variants, task 3 has one.
TaskGraph make_pipeline() {
  TaskGraph g;
  const TaskId a = g.add_task("acquire", 4.0, {});
  const TaskId b = g.add_task("transform", 20.0, {{4.0, 800.0}, {2.0, 2000.0}});
  const TaskId c = g.add_task("pack", 6.0, {{3.0, 300.0}});
  const TaskId d = g.add_task("emit", 3.0, {});
  g.add_dependence(a, b, 1.0);
  g.add_dependence(b, c, 1.0);
  g.add_dependence(c, d, 1.0);
  return g;
}

/// Two independent chains to exercise CPU/HW parallelism.
TaskGraph make_two_lane() {
  TaskGraph g;
  const TaskId a0 = g.add_task("a0", 10.0, {{2.0, 500.0}});
  const TaskId a1 = g.add_task("a1", 10.0, {{2.0, 500.0}});
  const TaskId b0 = g.add_task("b0", 8.0, {});
  const TaskId b1 = g.add_task("b1", 8.0, {});
  g.add_dependence(a0, a1, 0.5);
  g.add_dependence(b0, b1, 0.5);
  return g;
}

TEST(TaskGraph, Construction) {
  const TaskGraph g = make_pipeline();
  EXPECT_EQ(g.num_tasks(), 4u);
  EXPECT_EQ(g.task(1).options.size(), 3u);  // sw + 2 hw
  EXPECT_EQ(g.preds(1).size(), 1u);
  EXPECT_EQ(g.succs(1).size(), 1u);
  EXPECT_DOUBLE_EQ(g.comm_cost(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(g.comm_cost(1, 0), 0.0);  // no reverse edge
  EXPECT_EQ(g.topological_order().size(), 4u);
}

TEST(Baselines, AllSoftwareSumsSequentially) {
  const TaskGraph g = make_pipeline();
  const Assignment a = all_software(g);
  EXPECT_TRUE(a.software_only());
  // No boundary crossings, one CPU: 4 + 20 + 6 + 3.
  EXPECT_DOUBLE_EQ(a.makespan, 33.0);
  EXPECT_DOUBLE_EQ(a.hw_area, 0.0);
}

TEST(Baselines, AllHardwarePicksFastestVariants) {
  const TaskGraph g = make_pipeline();
  const Assignment a = all_hardware(g);
  // transform on 2.0/2000, pack on 3.0/300; a and d stay software.
  EXPECT_DOUBLE_EQ(a.hw_area, 2300.0);
  // 4 (cpu) +1 comm + 2 (hw) +1 comm... pack also hw: no crossing b->c,
  // then +1 comm to d: 4+1+2+3+1+3 = 14.
  EXPECT_DOUBLE_EQ(a.makespan, 14.0);
}

TEST(Baselines, GreedyRespectsBudget) {
  const TaskGraph g = make_pipeline();
  const Assignment a = greedy_partition(g, 1000.0);
  EXPECT_LE(a.hw_area, 1000.0);
  EXPECT_LT(a.makespan, all_software(g).makespan);
}

TEST(Baselines, GreedyWithZeroBudgetIsAllSoftware) {
  const TaskGraph g = make_pipeline();
  const Assignment a = greedy_partition(g, 0.0);
  EXPECT_TRUE(a.software_only());
}

TEST(Evaluate, CommunicationChargedOnlyAcrossBoundary) {
  TaskGraph g;
  const TaskId p = g.add_task("p", 5.0, {{1.0, 100.0}});
  const TaskId c = g.add_task("c", 5.0, {{1.0, 100.0}});
  g.add_dependence(p, c, 10.0);

  Assignment both_sw;
  both_sw.option = {0, 0};
  evaluate(g, both_sw);
  EXPECT_DOUBLE_EQ(both_sw.makespan, 10.0);  // same side: no comm

  Assignment split;
  split.option = {1, 0};
  evaluate(g, split);
  EXPECT_DOUBLE_EQ(split.makespan, 1.0 + 10.0 + 5.0);

  Assignment both_hw;
  both_hw.option = {1, 1};
  evaluate(g, both_hw);
  EXPECT_DOUBLE_EQ(both_hw.makespan, 2.0);
}

TEST(Evaluate, ParallelLanesOverlapAcrossResources) {
  const TaskGraph g = make_two_lane();
  // a-lane in hardware, b-lane in software: the lanes overlap.
  Assignment a;
  a.option = {1, 1, 0, 0};
  evaluate(g, a);
  EXPECT_DOUBLE_EQ(a.makespan, 16.0);  // b-lane bound: 8 + 8
}

TEST(PartitionExplorer, BeatsOrMatchesAllSoftware) {
  const TaskGraph g = make_pipeline();
  PartitionParams params;
  params.area_budget = 2500.0;
  const PartitionExplorer explorer(params);
  Rng rng(7);
  const Assignment a = explorer.explore_best_of(g, 3, rng);
  EXPECT_LE(a.makespan, all_software(g).makespan);
  EXPECT_LE(a.hw_area, 2500.0);
}

TEST(PartitionExplorer, MatchesGreedyOnPipeline) {
  const TaskGraph g = make_pipeline();
  PartitionParams params;
  params.area_budget = 2500.0;
  const PartitionExplorer explorer(params);
  Rng rng(11);
  const Assignment aco = explorer.explore_best_of(g, 5, rng);
  const Assignment greedy = greedy_partition(g, 2500.0);
  EXPECT_LE(aco.makespan, greedy.makespan + 1e-9);
}

TEST(PartitionExplorer, RespectsTightBudget) {
  const TaskGraph g = make_pipeline();
  PartitionParams params;
  params.area_budget = 350.0;  // only "pack" affordable
  const PartitionExplorer explorer(params);
  Rng rng(3);
  const Assignment a = explorer.explore_best_of(g, 3, rng);
  EXPECT_LE(a.hw_area, 350.0);
}

TEST(PartitionExplorer, Deterministic) {
  const TaskGraph g = make_two_lane();
  const PartitionExplorer explorer;
  Rng a(42);
  Rng b(42);
  const Assignment ra = explorer.explore_best_of(g, 3, a);
  const Assignment rb = explorer.explore_best_of(g, 3, b);
  EXPECT_EQ(ra.option, rb.option);
}

TEST(PartitionExplorer, EmptyGraph) {
  const TaskGraph g;
  const PartitionExplorer explorer;
  Rng rng(1);
  const Assignment a = explorer.explore(g, rng);
  EXPECT_DOUBLE_EQ(a.makespan, 0.0);
}

// Property: the explorer's result never violates the budget and never loses
// to all-software, across random task graphs.
class PartitionProperty : public ::testing::TestWithParam<int> {};

TEST_P(PartitionProperty, AlwaysLegalNeverWorseThanSoftware) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 1013);
  TaskGraph g;
  const int n = 12;
  for (int i = 0; i < n; ++i) {
    const double sw = 2.0 + rng.next_below(20);
    if (rng.next_double() < 0.7) {
      const double hw = std::max(0.5, sw / (2 + rng.next_below(6)));
      const double area = 100.0 * (1 + rng.next_below(20));
      g.add_task("t" + std::to_string(i), sw, {{hw, area}});
    } else {
      g.add_task("t" + std::to_string(i), sw, {});
    }
  }
  for (int i = 1; i < n; ++i) {
    for (int k = 0; k < 2; ++k) {
      if (rng.next_double() < 0.5) {
        const auto p = static_cast<TaskId>(rng.next_below(i));
        g.add_dependence(p, static_cast<TaskId>(i),
                         static_cast<double>(rng.next_below(3)));
      }
    }
  }
  PartitionParams params;
  params.area_budget = 1500.0;
  params.max_iterations = 80;
  const PartitionExplorer explorer(params);
  Rng run = rng.split();
  const Assignment a = explorer.explore(g, run);
  EXPECT_LE(a.hw_area, params.area_budget);
  EXPECT_LE(a.makespan, all_software(g).makespan + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PartitionProperty, ::testing::Range(1, 13));

}  // namespace
}  // namespace isex::hwpart
