#include "util/table_printer.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace isex {
namespace {

TEST(TablePrinter, FormatsFixedPrecision) {
  EXPECT_EQ(TablePrinter::fmt(3.14159, 2), "3.14");
  EXPECT_EQ(TablePrinter::fmt(2.0, 1), "2.0");
  EXPECT_EQ(TablePrinter::fmt(-1.005, 0), "-1");
}

TEST(TablePrinter, FormatsPercentages) {
  EXPECT_EQ(TablePrinter::pct(0.1479), "14.79%");
  EXPECT_EQ(TablePrinter::pct(1.0, 0), "100%");
  EXPECT_EQ(TablePrinter::pct(0.0), "0.00%");
}

TEST(TablePrinter, AlignsColumns) {
  TablePrinter t;
  t.set_header({"name", "value"});
  t.add_row({"a", "1"});
  t.add_row({"longer", "22"});
  std::ostringstream out;
  t.print(out);
  const std::string text = out.str();
  // All four lines (header, rule, two rows) share the same width.
  std::istringstream lines(text);
  std::string line;
  std::size_t width = 0;
  while (std::getline(lines, line)) {
    if (width == 0) width = line.size();
    EXPECT_LE(line.size(), width + 1);
  }
  EXPECT_NE(text.find("longer"), std::string::npos);
}

TEST(TablePrinter, NumericCellsRightAligned) {
  TablePrinter t;
  t.set_header({"col"});
  t.add_row({"5"});
  t.add_row({"12345"});
  std::ostringstream out;
  t.print(out);
  // "5" should be padded on the left to match "12345".
  EXPECT_NE(out.str().find("    5"), std::string::npos);
}

TEST(TablePrinter, RowsWithoutHeader) {
  TablePrinter t;
  t.add_row({"x", "y"});
  std::ostringstream out;
  t.print(out);
  EXPECT_EQ(out.str(), "x  y\n");
}

TEST(TablePrinter, RaggedRowsPadToWidestRow) {
  TablePrinter t;
  t.set_header({"a", "b"});
  t.add_row({"1", "2", "3"});
  std::ostringstream out;
  t.print(out);
  EXPECT_NE(out.str().find("3"), std::string::npos);
}

TEST(TablePrinter, RowCount) {
  TablePrinter t;
  EXPECT_EQ(t.row_count(), 0u);
  t.add_row({"r"});
  EXPECT_EQ(t.row_count(), 1u);
}

}  // namespace
}  // namespace isex
