// Differential property test: random straight-line TAC programs are
// generated together with their expected results (computed through
// exec::apply_alu while generating); the text is then parsed and executed
// by the evaluator.  Any disagreement pins a bug in the lexer, parser,
// statement recording, or evaluator operand binding.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "exec/alu.hpp"
#include "exec/evaluator.hpp"
#include "isa/tac_parser.hpp"
#include "util/rng.hpp"

namespace isex {
namespace {

struct GeneratedProgram {
  std::string source;
  std::vector<std::pair<std::string, std::uint32_t>> live_ins;
  std::vector<std::pair<std::string, std::uint32_t>> expected;
};

GeneratedProgram generate(Rng& rng, int length) {
  // Opcode pool: register-register and immediate forms.
  static constexpr isa::Opcode kRegOps[] = {
      isa::Opcode::kAddu, isa::Opcode::kSubu, isa::Opcode::kXor,
      isa::Opcode::kAnd,  isa::Opcode::kOr,   isa::Opcode::kNor,
      isa::Opcode::kSltu, isa::Opcode::kMult, isa::Opcode::kSllv,
      isa::Opcode::kSrlv, isa::Opcode::kSrav, isa::Opcode::kSlt,
  };
  static constexpr isa::Opcode kImmOps[] = {
      isa::Opcode::kAddiu, isa::Opcode::kAndi, isa::Opcode::kOri,
      isa::Opcode::kXori,  isa::Opcode::kSll,  isa::Opcode::kSrl,
      isa::Opcode::kSra,   isa::Opcode::kSlti, isa::Opcode::kSltiu,
  };

  GeneratedProgram out;
  std::vector<std::pair<std::string, std::uint32_t>> env;
  for (int i = 0; i < 3; ++i) {
    const std::string name = "in" + std::to_string(i);
    const std::uint32_t value = rng.next_u32();
    env.emplace_back(name, value);
    out.live_ins.emplace_back(name, value);
  }

  std::ostringstream src;
  for (int i = 0; i < length; ++i) {
    const std::string dest = "v" + std::to_string(i);
    const auto& [a_name, a_val] =
        env[rng.next_below(static_cast<std::uint32_t>(env.size()))];
    std::uint32_t result = 0;
    if (rng.next_double() < 0.5) {
      const auto op = kRegOps[rng.next_below(std::size(kRegOps))];
      const auto& [b_name, b_val] =
          env[rng.next_below(static_cast<std::uint32_t>(env.size()))];
      src << dest << " = " << isa::mnemonic(op) << " " << a_name << ", "
          << b_name << "\n";
      result = exec::apply_alu(op, a_val, b_val);
    } else {
      const auto op = kImmOps[rng.next_below(std::size(kImmOps))];
      const std::uint32_t imm = rng.next_below(65536);
      src << dest << " = " << isa::mnemonic(op) << " " << a_name << ", " << imm
          << "\n";
      result = exec::apply_alu(op, a_val, imm);
    }
    env.emplace_back(dest, result);
    out.expected.emplace_back(dest, result);
  }
  out.source = src.str();
  return out;
}

class DifferentialProperty : public ::testing::TestWithParam<int> {};

TEST_P(DifferentialProperty, ParserAndEvaluatorAgreeWithGenerator) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 6271);
  for (int trial = 0; trial < 10; ++trial) {
    const GeneratedProgram prog = generate(rng, 24);
    const isa::ParsedBlock block = isa::parse_tac(prog.source);
    ASSERT_EQ(block.graph.num_nodes(), 24u);
    exec::Evaluator ev;
    for (const auto& [name, value] : prog.live_ins) ev.set(name, value);
    ev.run(block);
    for (const auto& [name, value] : prog.expected) {
      ASSERT_EQ(ev.get(name), value) << name << " in:\n" << prog.source;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DifferentialProperty, ::testing::Range(1, 11));

}  // namespace
}  // namespace isex
