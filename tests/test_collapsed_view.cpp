#include "dfg/collapsed_view.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "../bench/random_dag.hpp"
#include "dfg/analysis.hpp"
#include "dfg/graph.hpp"
#include "runtime/hash.hpp"
#include "sched/list_scheduler.hpp"
#include "sched/machine_config.hpp"
#include "util/rng.hpp"

namespace isex::dfg {
namespace {

// A window of consecutive positions in a topological order is always convex:
// every edge goes forward in topo position, so a path leaving the window
// cannot re-enter it.  That makes topo windows a cheap exhaustive-ish source
// of legal collapse member sets over random DAGs.
NodeSet topo_window(const Graph& g, const std::vector<NodeId>& topo,
                    std::size_t start, std::size_t len) {
  NodeSet s(g.num_nodes());
  for (std::size_t i = start; i < start + len && i < topo.size(); ++i)
    s.insert(topo[i]);
  return s;
}

IseInfo window_info(const Graph& g, const NodeSet& s) {
  IseInfo info;
  info.latency_cycles = 2;
  info.area = 12.5;
  info.num_inputs = count_inputs(g, s);
  info.num_outputs = count_outputs(g, s);
  return info;
}

std::vector<NodeId> sorted(std::span<const NodeId> xs) {
  std::vector<NodeId> v(xs.begin(), xs.end());
  std::sort(v.begin(), v.end());
  return v;
}

// The view must reproduce exactly the structure Graph::collapse materializes,
// field by field, for every convex window of every random DAG — same node
// numbering, same deduplicated edge sets, same payloads, same live-in counts.
TEST(CollapsedView, MatchesCollapseStructureOnRandomDags) {
  Rng rng(2026);
  CollapsedView view;  // reused across every candidate, like the hot path
  for (int t = 0; t < 20; ++t) {
    const Graph g = benchx::random_dag(12 + t % 9, rng, 0.35 + 0.06 * (t % 5));
    const std::vector<NodeId> topo = g.topological_order();
    for (std::size_t start = 0; start + 2 <= g.num_nodes(); start += 2) {
      const std::size_t len = 2 + start % 5;
      const NodeSet members = topo_window(g, topo, start, len);
      if (members.count() < 2) continue;
      const IseInfo info = window_info(g, members);
      const Graph collapsed = g.collapse(members, info);
      view.assign(g, members, info);

      ASSERT_EQ(view.num_nodes(), collapsed.num_nodes());
      for (NodeId v = 0; v < collapsed.num_nodes(); ++v) {
        const Node& cn = collapsed.node(v);
        const CollapsedView::NodeView vn = view.node(v);
        ASSERT_EQ(vn.is_ise, cn.is_ise);
        if (cn.is_ise) {
          EXPECT_EQ(v, view.super_node());
          EXPECT_EQ(vn.ise.latency_cycles, cn.ise.latency_cycles);
          EXPECT_DOUBLE_EQ(vn.ise.area, cn.ise.area);
          EXPECT_EQ(vn.ise.num_inputs, cn.ise.num_inputs);
          EXPECT_EQ(vn.ise.num_outputs, cn.ise.num_outputs);
        } else {
          EXPECT_EQ(vn.opcode, cn.opcode);
        }
        EXPECT_EQ(view.extern_inputs(v), collapsed.extern_inputs(v));
        EXPECT_EQ(sorted(view.preds(v)), sorted(collapsed.preds(v)));
        EXPECT_EQ(sorted(view.succs(v)), sorted(collapsed.succs(v)));
      }
    }
  }
}

// Collapsing a graph that already contains a committed supernode (as every
// round after the first does) must surface the *base* graph's ISE payload
// for that node, not the candidate's.
TEST(CollapsedView, PreservesPreexistingSupernodes) {
  Rng rng(5);
  const Graph g = benchx::random_dag(14, rng, 0.5);
  const std::vector<NodeId> topo = g.topological_order();
  const NodeSet first = topo_window(g, topo, 0, 3);
  IseInfo committed = window_info(g, first);
  committed.latency_cycles = 3;
  committed.area = 99.0;
  const Graph reduced = g.collapse(first, committed);

  const std::vector<NodeId> topo2 = reduced.topological_order();
  const NodeSet second = topo_window(reduced, topo2, 1, 3);
  const IseInfo info = window_info(reduced, second);
  const Graph collapsed = reduced.collapse(second, info);
  CollapsedView view;
  view.assign(reduced, second, info);

  ASSERT_EQ(view.num_nodes(), collapsed.num_nodes());
  for (NodeId v = 0; v < collapsed.num_nodes(); ++v) {
    const Node& cn = collapsed.node(v);
    const CollapsedView::NodeView vn = view.node(v);
    ASSERT_EQ(vn.is_ise, cn.is_ise);
    if (cn.is_ise) {
      EXPECT_EQ(vn.ise.latency_cycles, cn.ise.latency_cycles);
      EXPECT_DOUBLE_EQ(vn.ise.area, cn.ise.area);
      EXPECT_EQ(vn.ise.num_inputs, cn.ise.num_inputs);
      EXPECT_EQ(vn.ise.num_outputs, cn.ise.num_outputs);
    }
    EXPECT_EQ(view.extern_inputs(v), collapsed.extern_inputs(v));
    EXPECT_EQ(sorted(view.preds(v)), sorted(collapsed.preds(v)));
    EXPECT_EQ(sorted(view.succs(v)), sorted(collapsed.succs(v)));
  }
}

// End-to-end check against the actual consumer: scheduling the view into
// reusable scratch must produce the same makespan as scheduling the
// materialized collapse, under every priority function.
TEST(CollapsedView, ScheduleLengthMatchesCollapseUnderEveryPriority) {
  const auto machine = sched::MachineConfig::make(2, {6, 3});
  Rng rng(7);
  CollapsedView view;
  sched::SchedulerScratch scratch;  // reused across kinds and candidates
  for (int t = 0; t < 12; ++t) {
    const Graph g = benchx::random_dag(10 + t, rng, 0.5);
    const std::vector<NodeId> topo = g.topological_order();
    for (const sched::PriorityKind kind :
         {sched::PriorityKind::kChildCount, sched::PriorityKind::kMobility,
          sched::PriorityKind::kDescendantCount}) {
      const sched::ListScheduler scheduler(machine, kind);
      for (std::size_t start = 0; start + 2 <= g.num_nodes(); start += 3) {
        const NodeSet members = topo_window(g, topo, start, 2 + start % 4);
        if (members.count() < 2) continue;
        const IseInfo info = window_info(g, members);
        // The explorer only scores port-legalized candidates; a supernode
        // demanding more ports than the machine has can never issue.
        if (info.num_inputs > machine.reg_file.read_ports ||
            info.num_outputs > machine.reg_file.write_ports)
          continue;
        view.assign(g, members, info);
        EXPECT_EQ(scheduler.cycles(view, scratch),
                  scheduler.cycles(g.collapse(members, info)));
      }
    }
  }
}

// The scratch-backed template must also agree with run() on plain graphs —
// it is the same core, but the instantiation is pinned here.
TEST(CollapsedView, ScratchCyclesMatchRunOnPlainGraphs) {
  const sched::ListScheduler scheduler(sched::MachineConfig::make(2, {4, 2}));
  Rng rng(13);
  sched::SchedulerScratch scratch;
  for (int t = 0; t < 10; ++t) {
    const Graph g = benchx::random_dag(8 + 2 * t, rng, 0.55);
    EXPECT_EQ(scheduler.cycles(g, scratch), scheduler.run(g).cycles);
  }
}

TEST(CandidateKey, IsAPureFunctionOfTheCandidate) {
  Rng rng(3);
  const Graph g = benchx::random_dag(12, rng, 0.5);
  const std::vector<NodeId> topo = g.topological_order();
  const NodeSet members = topo_window(g, topo, 2, 3);
  const IseInfo info = window_info(g, members);
  const auto machine = sched::MachineConfig::make(2, {6, 3});
  const runtime::Key128 digest = runtime::graph_digest(g);

  const auto key = [&](const NodeSet& m, const IseInfo& i) {
    return runtime::candidate_key(digest, m, i, machine,
                                  sched::PriorityKind::kChildCount);
  };
  EXPECT_EQ(key(members, info), key(members, info));

  NodeSet other = members;
  other.insert(topo[6]);
  EXPECT_NE(key(members, info), key(other, info));

  IseInfo slower = info;
  slower.latency_cycles += 1;
  EXPECT_NE(key(members, info), key(members, slower));

  IseInfo cheaper = info;
  cheaper.area += 1.0;
  EXPECT_NE(key(members, info), key(members, cheaper));

  // Labels are cosmetic: a payload differing only in member_labels must
  // land on the same cache line.
  IseInfo labeled = info;
  labeled.member_labels = {"a", "b"};
  EXPECT_EQ(key(members, info), key(members, labeled));

  // Different base graph, machine, or priority — different key.
  Rng rng2(4);
  const Graph g2 = benchx::random_dag(12, rng2, 0.5);
  EXPECT_NE(key(members, info),
            runtime::candidate_key(runtime::graph_digest(g2), members, info,
                                   machine, sched::PriorityKind::kChildCount));
  EXPECT_NE(key(members, info),
            runtime::candidate_key(digest, members, info,
                                   sched::MachineConfig::make(4, {10, 5}),
                                   sched::PriorityKind::kChildCount));
  EXPECT_NE(key(members, info),
            runtime::candidate_key(digest, members, info, machine,
                                   sched::PriorityKind::kMobility));
}

// candidate_key must not alias schedule_key: a candidate evaluation and a
// plain-graph evaluation share the process-wide cache, so the two key
// families live in distinct seed domains.
TEST(CandidateKey, DoesNotCollideWithScheduleKeyDomain) {
  Rng rng(9);
  const Graph g = benchx::random_dag(12, rng, 0.5);
  const std::vector<NodeId> topo = g.topological_order();
  const NodeSet members = topo_window(g, topo, 1, 3);
  const IseInfo info = window_info(g, members);
  const auto machine = sched::MachineConfig::make(2, {6, 3});

  const runtime::Key128 cand =
      runtime::candidate_key(runtime::graph_digest(g), members, info, machine,
                             sched::PriorityKind::kChildCount);
  const runtime::Key128 sched_collapsed = runtime::schedule_key(
      g.collapse(members, info), machine, sched::PriorityKind::kChildCount);
  const runtime::Key128 sched_base =
      runtime::schedule_key(g, machine, sched::PriorityKind::kChildCount);
  EXPECT_NE(cand, sched_collapsed);
  EXPECT_NE(cand, sched_base);
}

}  // namespace
}  // namespace isex::dfg
