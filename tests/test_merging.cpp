#include "flow/merging.hpp"

#include <gtest/gtest.h>

#include "test_util.hpp"

namespace isex::flow {
namespace {

TEST(Merging, EqualPatterns) {
  const dfg::Graph a = testing::make_chain(3, isa::Opcode::kXor);
  const dfg::Graph b = testing::make_chain(3, isa::Opcode::kXor);
  EXPECT_EQ(classify_merge(a, b), MergeRelation::kEqual);
}

TEST(Merging, SubgraphMergesIntoSupergraph) {
  const dfg::Graph small = testing::make_chain(2, isa::Opcode::kXor);
  const dfg::Graph big = testing::make_chain(4, isa::Opcode::kXor);
  EXPECT_EQ(classify_merge(small, big), MergeRelation::kIntoOther);
  EXPECT_EQ(classify_merge(big, small), MergeRelation::kFromOther);
}

TEST(Merging, UnrelatedPatterns) {
  const dfg::Graph xors = testing::make_chain(3, isa::Opcode::kXor);
  const dfg::Graph mults = testing::make_chain(3, isa::Opcode::kMult);
  EXPECT_EQ(classify_merge(xors, mults), MergeRelation::kNone);
}

TEST(Merging, DifferentShapesSameOpcodes) {
  // 3-chain of xors vs fork of xors: chain embeds in neither direction if
  // the fork has no 2-deep path.
  dfg::Graph fork;
  const auto a = fork.add_node(isa::Opcode::kXor, "a");
  fork.add_edge(a, fork.add_node(isa::Opcode::kXor, "b"));
  fork.add_edge(a, fork.add_node(isa::Opcode::kXor, "c"));
  const dfg::Graph chain = testing::make_chain(3, isa::Opcode::kXor);
  EXPECT_EQ(classify_merge(chain, fork), MergeRelation::kNone);
  // The 2-chain embeds into both.
  const dfg::Graph two = testing::make_chain(2, isa::Opcode::kXor);
  EXPECT_EQ(classify_merge(two, fork), MergeRelation::kIntoOther);
  EXPECT_EQ(classify_merge(two, chain), MergeRelation::kIntoOther);
}

}  // namespace
}  // namespace isex::flow
