#include "dfg/analysis.hpp"
#include "isa/tac_parser.hpp"

#include <gtest/gtest.h>

namespace isex::isa {
namespace {

TEST(TacParser, SingleStatement) {
  const ParsedBlock b = parse_tac("x = addu a, b");
  EXPECT_EQ(b.graph.num_nodes(), 1u);
  EXPECT_EQ(b.graph.num_edges(), 0u);
  const auto it = b.defs.find("x");
  ASSERT_NE(it, b.defs.end());
  EXPECT_EQ(b.graph.node(it->second).opcode, Opcode::kAddu);
  EXPECT_EQ(b.graph.extern_inputs(it->second), 2);  // a, b live-in
  EXPECT_TRUE(b.graph.live_out(it->second));        // nothing consumes x
}

TEST(TacParser, EdgesFollowDefUse) {
  const ParsedBlock b = parse_tac(R"(
    t0 = xor a, b
    t1 = srl t0, 4
    t2 = and t0, t1
  )");
  EXPECT_EQ(b.graph.num_nodes(), 3u);
  EXPECT_EQ(b.graph.num_edges(), 3u);
  EXPECT_TRUE(b.graph.has_edge(b.defs.at("t0"), b.defs.at("t1")));
  EXPECT_TRUE(b.graph.has_edge(b.defs.at("t0"), b.defs.at("t2")));
  EXPECT_TRUE(b.graph.has_edge(b.defs.at("t1"), b.defs.at("t2")));
}

TEST(TacParser, ImmediatesAreNotOperandValues) {
  const ParsedBlock b = parse_tac("t = andi x, 255");
  const auto v = b.defs.at("t");
  EXPECT_EQ(b.graph.extern_inputs(v), 1);  // only x
}

TEST(TacParser, HexAndNegativeImmediates) {
  const ParsedBlock b = parse_tac(R"(
    a = andi x, 0xff
    c = addiu x, -4
  )");
  EXPECT_EQ(b.graph.num_nodes(), 2u);
}

TEST(TacParser, LoadForm) {
  const ParsedBlock b = parse_tac("v = lw [p]");
  const auto v = b.defs.at("v");
  EXPECT_EQ(b.graph.node(v).opcode, Opcode::kLw);
  EXPECT_EQ(b.graph.extern_inputs(v), 1);  // address p
}

TEST(TacParser, StoreForm) {
  const ParsedBlock b = parse_tac(R"(
    v = addu a, b
    sw [p], v
  )");
  EXPECT_EQ(b.graph.num_nodes(), 2u);
  EXPECT_EQ(b.graph.num_edges(), 1u);  // v feeds the store
  // v is consumed by the store, so not implicitly live-out.
  EXPECT_FALSE(b.graph.live_out(b.defs.at("v")));
}

TEST(TacParser, ExplicitLiveOut) {
  const ParsedBlock b = parse_tac(R"(
    t = addu a, b
    u = xor t, c
    live_out t
  )");
  EXPECT_TRUE(b.graph.live_out(b.defs.at("t")));  // explicit
  EXPECT_TRUE(b.graph.live_out(b.defs.at("u")));  // implicit (unconsumed)
}

TEST(TacParser, CommentsAndBlankLines) {
  const ParsedBlock b = parse_tac(R"(
    # full-line comment

    t = addu a, b  # trailing comment
  )");
  EXPECT_EQ(b.graph.num_nodes(), 1u);
}

TEST(TacParser, SameOperandTwice) {
  const ParsedBlock b = parse_tac(R"(
    t = addu a, a
    u = xor t, t
  )");
  // t -> u is a single value/edge even though used twice.
  EXPECT_EQ(b.graph.num_edges(), 1u);
  EXPECT_EQ(b.graph.extern_inputs(b.defs.at("t")), 2);
}

TEST(TacParser, RedefinitionRejected) {
  EXPECT_THROW(parse_tac("x = addu a, b\nx = xor c, d"), ParseError);
}

TEST(TacParser, UnknownMnemonicRejected) {
  try {
    parse_tac("x = frobnicate a, b");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.line(), 1);
    EXPECT_NE(std::string(e.what()).find("frobnicate"), std::string::npos);
  }
}

TEST(TacParser, StoreWithDestinationRejected) {
  EXPECT_THROW(parse_tac("x = sw [p], v"), ParseError);
}

TEST(TacParser, MalformedLoadRejected) {
  EXPECT_THROW(parse_tac("v = lw p"), ParseError);
  EXPECT_THROW(parse_tac("v = lw [p], q"), ParseError);
}

TEST(TacParser, MalformedStoreRejected) {
  EXPECT_THROW(parse_tac("sw p, v"), ParseError);
}

TEST(TacParser, LiveOutOfUndefinedVariableRejected) {
  EXPECT_THROW(parse_tac("live_out ghost"), ParseError);
}

TEST(TacParser, MissingEqualsRejected) {
  EXPECT_THROW(parse_tac("x addu a, b"), ParseError);
}

TEST(TacParser, TrailingCommaRejected) {
  EXPECT_THROW(parse_tac("x = addu a,"), ParseError);
}

TEST(TacParser, ParseErrorCarriesLineNumber) {
  try {
    parse_tac("a = addu x, y\nb = bogus a, a\n");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.line(), 2);
  }
}

TEST(TacParser, EmptySourceYieldsEmptyGraph) {
  const ParsedBlock b = parse_tac("");
  EXPECT_EQ(b.graph.num_nodes(), 0u);
}

TEST(TacParser, ResultIsAlwaysAcyclic) {
  const ParsedBlock b = parse_tac(R"(
    a = addu x, y
    b = xor a, z
    c = and a, b
    d = or b, c
  )");
  EXPECT_TRUE(b.graph.is_acyclic());
}

}  // namespace
}  // namespace isex::isa
// -- appended coverage for parser disambiguation ---------------------------
namespace isex::isa {
namespace {

TEST(TacParser, VariableMayShadowStoreMnemonic) {
  const ParsedBlock b = parse_tac(R"(
    sh = sll a, 1
    sb = andi sh, 255
  )");
  EXPECT_EQ(b.graph.num_nodes(), 2u);
  EXPECT_EQ(b.graph.node(b.defs.at("sh")).opcode, Opcode::kSll);
}

TEST(TacParser, StoreWithImmediateValue) {
  const ParsedBlock b = parse_tac("sw [p], 42");
  ASSERT_EQ(b.statements.size(), 1u);
  EXPECT_EQ(b.statements[0].operands[1].kind, TacOperand::Kind::kImmediate);
  EXPECT_EQ(b.statements[0].operands[1].imm, 42);
}

TEST(TacParser, StoreTrailingGarbageRejected) {
  EXPECT_THROW(parse_tac("sw [p], v, w"), ParseError);
}

TEST(TacParser, HalfAndByteStores) {
  const ParsedBlock b = parse_tac(R"(
    sh [p], v
    sb [q], w
  )");
  EXPECT_EQ(b.graph.num_nodes(), 2u);
  EXPECT_EQ(b.statements[0].op, Opcode::kSh);
  EXPECT_EQ(b.statements[1].op, Opcode::kSb);
}

}  // namespace
}  // namespace isex::isa
// -- appended: live-in identity ---------------------------------------------
namespace isex::isa {
namespace {

TEST(TacParser, SharedLiveInVariableIsOneValue) {
  const ParsedBlock b = parse_tac(R"(
    t0 = srl x, 7
    t1 = sll x, 25
    r = or t0, t1
  )");
  // x is one live-in value even though two nodes read it.
  EXPECT_EQ(dfg::count_inputs(b.graph, b.graph.all_nodes()), 1);
}

TEST(TacParser, DistinctLiveInsCountSeparately) {
  const ParsedBlock b = parse_tac("t = addu a, b");
  EXPECT_EQ(dfg::count_inputs(b.graph, b.graph.all_nodes()), 2);
}

}  // namespace
}  // namespace isex::isa
// -- appended: structured negative-path coverage (error codes + lines) ------
namespace isex::isa {
namespace {

/// Asserts parse_tac_checked rejects `source` with exactly `code` at `line`.
void expect_rejected(std::string_view source, ErrorCode code, int line) {
  const Expected<ParsedBlock> result = parse_tac_checked(source);
  ASSERT_FALSE(result.has_value()) << "input was accepted: " << source;
  EXPECT_EQ(result.error().code(), code) << result.error().to_string();
  EXPECT_EQ(result.error().loc().line, line) << result.error().to_string();
  EXPECT_FALSE(result.error().message().empty());
}

TEST(TacParserNegative, SelfReferenceIsACycle) {
  // `a` reads itself with no earlier definition — the only cycle-shaped
  // input the TAC grammar admits.
  expect_rejected("a = addu a, b", ErrorCode::kParseSelfReference, 1);
  expect_rejected("t = addu x, y\nu = xor u, t\n",
                  ErrorCode::kParseSelfReference, 2);
}

TEST(TacParserNegative, UndefinedOperandInLiveOut) {
  expect_rejected("t = addu a, b\nlive_out ghost",
                  ErrorCode::kParseUndefinedVariable, 2);
}

TEST(TacParserNegative, DuplicateDefinition) {
  expect_rejected("x = addu a, b\nx = xor c, d",
                  ErrorCode::kParseRedefinition, 2);
}

TEST(TacParserNegative, OversizedImmediate) {
  expect_rejected("x = addiu a, 99999999999999999999",
                  ErrorCode::kParseImmediateRange, 1);
  expect_rejected("x = addiu a, 4294967296",
                  ErrorCode::kParseImmediateRange, 1);
  expect_rejected("x = addiu a, -2147483649",
                  ErrorCode::kParseImmediateRange, 1);
  expect_rejected("a = andi x, 0xff\nsw [p], 0x1ffffffff",
                  ErrorCode::kParseImmediateRange, 2);
}

TEST(TacParserNegative, BoundaryImmediatesStillParse) {
  EXPECT_TRUE(parse_tac_checked("x = addiu a, 4294967295").has_value());
  EXPECT_TRUE(parse_tac_checked("x = addiu a, -2147483648").has_value());
}

TEST(TacParserNegative, EmptyFile) {
  expect_rejected("", ErrorCode::kParseEmptyInput, 0);
  expect_rejected("# only a comment\n\n", ErrorCode::kParseEmptyInput, 0);
}

TEST(TacParserNegative, OverArity) {
  expect_rejected("x = addu a, b, c", ErrorCode::kParseArity, 1);
  expect_rejected("x = mov a, b", ErrorCode::kParseArity, 1);
}

TEST(TacParserNegative, UnknownMnemonicCode) {
  expect_rejected("x = frobnicate a, b", ErrorCode::kParseUnknownMnemonic, 1);
}

TEST(TacParserNegative, SyntaxErrorsCarryGenericCode) {
  expect_rejected("x addu a, b", ErrorCode::kParseSyntax, 1);
  expect_rejected("x = addu a,", ErrorCode::kParseSyntax, 1);
  expect_rejected("v = lw [p", ErrorCode::kParseSyntax, 1);
}

TEST(TacParserNegative, ThrowingWrapperCarriesTheSameCode) {
  try {
    parse_tac("x = addiu a, 99999999999999999999");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.code(), ErrorCode::kParseImmediateRange);
    EXPECT_EQ(e.line(), 1);
  }
}

TEST(TacParserNegative, PermissiveWrapperKeepsHistoricalLatitude) {
  // Programmatic kernels rely on these parsing: empty blocks,
  // self-references (the name becomes a live-in), and over-arity.
  EXPECT_EQ(parse_tac("").graph.num_nodes(), 0u);
  EXPECT_EQ(parse_tac("a = addu a, b").graph.num_nodes(), 1u);
  EXPECT_EQ(parse_tac("x = addu a, b, c").graph.num_nodes(), 1u);
}

}  // namespace
}  // namespace isex::isa
