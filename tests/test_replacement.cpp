#include "flow/replacement.hpp"

#include <gtest/gtest.h>

#include "core/mi_explorer.hpp"
#include "flow/selection.hpp"
#include "sched/list_scheduler.hpp"
#include "test_util.hpp"

namespace isex::flow {
namespace {

class ReplacementTest : public ::testing::Test {
 protected:
  /// Explores `program`'s block 0 and selects everything affordable.
  SelectionResult explore_and_select(const ProfiledProgram& program) {
    isa::IsaFormat format;
    format.reg_file = machine_.reg_file;
    const core::MultiIssueExplorer explorer(machine_, format, lib_);
    Rng rng(17);
    std::vector<core::ExplorationResult> results;
    std::vector<std::size_t> indices;
    for (std::size_t i = 0; i < program.blocks.size(); ++i) {
      indices.push_back(i);
      results.push_back(
          explorer.explore_best_of(program.blocks[i].graph, 3, rng));
    }
    return select_ises(build_catalog(program, indices, results),
                       SelectionConstraints{});
  }

  sched::MachineConfig machine_ = sched::MachineConfig::make(2, {6, 3});
  hw::HwLibrary lib_ = hw::HwLibrary::paper_default();
};

TEST_F(ReplacementTest, EmptySelectionLeavesProgramUnchanged) {
  ProfiledProgram p;
  p.blocks.push_back({"b", testing::make_chain(5), 10});
  const ReplacementResult r =
      apply_selection(p, SelectionResult{}, machine_);
  EXPECT_EQ(r.base_time, r.final_time);
  EXPECT_EQ(r.outcomes[0].ise_uses, 0);
  EXPECT_DOUBLE_EQ(r.reduction(), 0.0);
}

TEST_F(ReplacementTest, HomeBlockIsesApplied) {
  ProfiledProgram p;
  p.blocks.push_back({"chain", testing::make_chain(6, isa::Opcode::kAnd), 100});
  const SelectionResult sel = explore_and_select(p);
  ASSERT_FALSE(sel.selected.empty());
  const ReplacementResult r = apply_selection(p, sel, machine_);
  EXPECT_LT(r.final_time, r.base_time);
  EXPECT_GT(r.outcomes[0].ise_uses, 0);
  EXPECT_GT(r.reduction(), 0.0);
}

TEST_F(ReplacementTest, CrossBlockMatchingReusesPattern) {
  // Two identical blocks, only the hot one explored; cross-block matching
  // should still speed up the clone.
  ProfiledProgram p;
  p.blocks.push_back({"hot", testing::make_chain(6, isa::Opcode::kAnd), 1000});
  p.blocks.push_back({"clone", testing::make_chain(6, isa::Opcode::kAnd), 1});

  // Explore only block 0.
  isa::IsaFormat format;
  format.reg_file = machine_.reg_file;
  const core::MultiIssueExplorer explorer(machine_, format, lib_);
  Rng rng(23);
  std::vector<core::ExplorationResult> results{
      explorer.explore_best_of(p.blocks[0].graph, 3, rng)};
  const SelectionResult sel = select_ises(
      build_catalog(p, {0}, results), SelectionConstraints{});
  ASSERT_FALSE(sel.selected.empty());

  ReplacementOptions with;
  with.cross_block_matching = true;
  const ReplacementResult cross = apply_selection(p, sel, machine_, with);
  ReplacementOptions without;
  without.cross_block_matching = false;
  const ReplacementResult home = apply_selection(p, sel, machine_, without);

  EXPECT_LE(cross.outcomes[1].final_cycles, home.outcomes[1].final_cycles);
  EXPECT_GT(cross.outcomes[1].ise_uses, 0);
  EXPECT_EQ(home.outcomes[1].ise_uses, 0);
}

TEST_F(ReplacementTest, TimesAggregateOverCounts) {
  ProfiledProgram p;
  p.blocks.push_back({"a", testing::make_chain(4), 10});
  p.blocks.push_back({"b", testing::make_chain(4), 5});
  const ReplacementResult r =
      apply_selection(p, SelectionResult{}, machine_);
  const sched::ListScheduler sched(machine_);
  const auto expected = static_cast<std::uint64_t>(
      sched.cycles(p.blocks[0].graph) * 10 + sched.cycles(p.blocks[1].graph) * 5);
  EXPECT_EQ(r.base_time, expected);
}

TEST_F(ReplacementTest, RewrittenGraphsStayValid) {
  ProfiledProgram p;
  p.blocks.push_back({"chain", testing::make_chain(8, isa::Opcode::kXor), 100});
  const SelectionResult sel = explore_and_select(p);
  const ReplacementResult r = apply_selection(p, sel, machine_);
  for (const dfg::Graph& g : r.rewritten) {
    EXPECT_TRUE(g.is_acyclic());
    const sched::ListScheduler sched(machine_);
    const sched::Schedule s = sched.run(g);
    EXPECT_TRUE(respects_dependences(g, s));
  }
}

TEST_F(ReplacementTest, CrossMatchOnlyKeptWhenFaster) {
  // A wide, ILP-rich block the ISE can't help: matching must not slow it.
  ProfiledProgram p;
  p.blocks.push_back({"hot", testing::make_chain(6, isa::Opcode::kAnd), 1000});
  p.blocks.push_back({"wide", testing::make_parallel_pairs(3, isa::Opcode::kAnd), 1});
  const SelectionResult sel = explore_and_select(p);
  const ReplacementResult r = apply_selection(p, sel, machine_);
  EXPECT_LE(r.outcomes[1].final_cycles, r.outcomes[1].base_cycles);
}

}  // namespace
}  // namespace isex::flow
