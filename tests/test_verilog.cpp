#include "rtl/verilog.hpp"

#include <gtest/gtest.h>

namespace isex::rtl {
namespace {

isa::ParsedBlock crc_like() {
  return isa::parse_tac(R"(
    b0 = andi crc, 1
    t0 = xor b0, bit
    t1 = subu 0, t0
    m0 = and t1, poly
    s0 = srl crc, 1
    crc2 = xor s0, m0
    live_out crc2
  )");
}

TEST(Verilog, EmitsWellFormedModule) {
  const auto block = crc_like();
  const std::string v = emit_asfu(block, block.graph.all_nodes());
  EXPECT_NE(v.find("module asfu ("), std::string::npos);
  EXPECT_NE(v.find("endmodule"), std::string::npos);
  // Inputs: crc, bit, poly (deduplicated, crc used twice).
  EXPECT_NE(v.find("input  wire [31:0] in_crc"), std::string::npos);
  EXPECT_NE(v.find("input  wire [31:0] in_bit"), std::string::npos);
  EXPECT_NE(v.find("input  wire [31:0] in_poly"), std::string::npos);
  EXPECT_EQ(v.find("in_crc,\n  input  wire [31:0] in_crc"), std::string::npos);
  // Single escaping value.
  EXPECT_NE(v.find("output wire [31:0] out_crc2"), std::string::npos);
  // One assign per member plus one per output.
  std::size_t assigns = 0;
  for (std::size_t pos = v.find("assign"); pos != std::string::npos;
       pos = v.find("assign", pos + 1))
    ++assigns;
  EXPECT_EQ(assigns, 6u + 1u);
}

TEST(Verilog, ExpressionsMatchOpcodes) {
  const auto block = crc_like();
  const std::string v = emit_asfu(block, block.graph.all_nodes());
  EXPECT_NE(v.find("assign w_b0 = in_crc & 32'd1;"), std::string::npos);
  EXPECT_NE(v.find("assign w_t0 = w_b0 ^ in_bit;"), std::string::npos);
  EXPECT_NE(v.find("assign w_t1 = 32'd0 - w_t0;"), std::string::npos);
  EXPECT_NE(v.find("assign w_s0 = in_crc >> (32'd1 & 32'd31);"),
            std::string::npos);
  EXPECT_NE(v.find("assign w_crc2 = w_s0 ^ w_m0;"), std::string::npos);
}

TEST(Verilog, PartialCandidateTurnsBoundaryIntoPorts) {
  const auto block = crc_like();
  // Only {t1, m0}: t0 and poly become inputs; m0 escapes to crc2.
  dfg::NodeSet members(block.graph.num_nodes());
  members.insert(block.defs.at("t1"));
  members.insert(block.defs.at("m0"));
  const std::string v = emit_asfu(block, members);
  EXPECT_NE(v.find("input  wire [31:0] in_t0"), std::string::npos);
  EXPECT_NE(v.find("input  wire [31:0] in_poly"), std::string::npos);
  EXPECT_NE(v.find("output wire [31:0] out_m0"), std::string::npos);
  EXPECT_EQ(v.find("in_crc"), std::string::npos);
}

TEST(Verilog, SignedOpsUseSignedForms) {
  const auto block = isa::parse_tac(R"(
    a = sra x, 3
    b = slt a, y
    live_out b
  )");
  const std::string v = emit_asfu(block, block.graph.all_nodes());
  EXPECT_NE(v.find("$signed(in_x) >>>"), std::string::npos);
  EXPECT_NE(v.find("($signed(w_a) < $signed(in_y)) ? 32'd1 : 32'd0"),
            std::string::npos);
}

TEST(Verilog, ModuleNameAndEvaluationComment) {
  const auto block = crc_like();
  hw::AsfuEvaluation eval;
  eval.depth_ns = 8.5;
  eval.latency_cycles = 1;
  eval.area = 2719.5;
  VerilogOptions options;
  options.module_name = "crc_step_ise";
  options.evaluation = &eval;
  const std::string v = emit_asfu(block, block.graph.all_nodes(), options);
  EXPECT_NE(v.find("module crc_step_ise ("), std::string::npos);
  EXPECT_NE(v.find("latency 1 cycle(s)"), std::string::npos);
  EXPECT_NE(v.find("2719.5"), std::string::npos);
}

TEST(Verilog, NegativeImmediates) {
  const auto block = isa::parse_tac("a = addiu x, -4\nlive_out a");
  const std::string v = emit_asfu(block, block.graph.all_nodes());
  EXPECT_NE(v.find("in_x + -32'sd4"), std::string::npos);
}

TEST(Verilog, LuiConcatenation) {
  const auto block = isa::parse_tac("h = lui 0x5555\nlive_out h");
  const std::string v = emit_asfu(block, block.graph.all_nodes());
  EXPECT_NE(v.find("{16'd21845, 16'h0000}"), std::string::npos);
}

}  // namespace
}  // namespace isex::rtl
