#include "isa/opcode.hpp"

#include <gtest/gtest.h>

#include <set>
#include <string>

namespace isex::isa {
namespace {

TEST(Opcode, MnemonicsAreUniqueAndNonEmpty) {
  std::set<std::string> seen;
  for (std::size_t i = 0; i < kOpcodeCount; ++i) {
    const auto op = static_cast<Opcode>(i);
    const std::string mn(mnemonic(op));
    EXPECT_FALSE(mn.empty());
    EXPECT_TRUE(seen.insert(mn).second) << "duplicate mnemonic " << mn;
  }
}

TEST(Opcode, RoundTripThroughMnemonic) {
  for (std::size_t i = 0; i < kOpcodeCount; ++i) {
    const auto op = static_cast<Opcode>(i);
    const auto parsed = opcode_from_mnemonic(mnemonic(op));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, op);
  }
}

TEST(Opcode, UnknownMnemonicRejected) {
  EXPECT_FALSE(opcode_from_mnemonic("bogus").has_value());
  EXPECT_FALSE(opcode_from_mnemonic("").has_value());
  EXPECT_FALSE(opcode_from_mnemonic("ADD").has_value());  // case-sensitive
}

TEST(Opcode, MemoryClassification) {
  EXPECT_TRUE(is_load(Opcode::kLw));
  EXPECT_TRUE(is_load(Opcode::kLbu));
  EXPECT_TRUE(is_store(Opcode::kSw));
  EXPECT_TRUE(is_store(Opcode::kSb));
  EXPECT_TRUE(is_memory(Opcode::kLh));
  EXPECT_FALSE(is_memory(Opcode::kAddu));
  EXPECT_FALSE(is_load(Opcode::kSw));
  EXPECT_FALSE(is_store(Opcode::kLw));
}

TEST(Opcode, BranchClassification) {
  EXPECT_TRUE(is_branch(Opcode::kBeq));
  EXPECT_TRUE(is_branch(Opcode::kBne));
  EXPECT_FALSE(is_branch(Opcode::kSlt));
}

TEST(Opcode, IseEligibility) {
  // §4.2 constraint 4: loads/stores out; branches and nop too.
  EXPECT_FALSE(ise_eligible(Opcode::kLw));
  EXPECT_FALSE(ise_eligible(Opcode::kSw));
  EXPECT_FALSE(ise_eligible(Opcode::kBeq));
  EXPECT_FALSE(ise_eligible(Opcode::kNop));
  EXPECT_TRUE(ise_eligible(Opcode::kAddu));
  EXPECT_TRUE(ise_eligible(Opcode::kXor));
  EXPECT_TRUE(ise_eligible(Opcode::kSrl));
  EXPECT_TRUE(ise_eligible(Opcode::kMult));
  EXPECT_TRUE(ise_eligible(Opcode::kMov));
}

TEST(Opcode, FuClasses) {
  EXPECT_EQ(traits(Opcode::kAddu).fu, FuClass::kAlu);
  EXPECT_EQ(traits(Opcode::kMult).fu, FuClass::kMult);
  EXPECT_EQ(traits(Opcode::kDivu).fu, FuClass::kDiv);
  EXPECT_EQ(traits(Opcode::kLw).fu, FuClass::kMem);
  EXPECT_EQ(traits(Opcode::kBne).fu, FuClass::kBranch);
}

TEST(Opcode, OperandCounts) {
  EXPECT_EQ(traits(Opcode::kAddu).num_srcs, 2);
  EXPECT_EQ(traits(Opcode::kAddi).num_srcs, 1);   // immediate form
  EXPECT_EQ(traits(Opcode::kSll).num_srcs, 1);    // shift-by-immediate
  EXPECT_EQ(traits(Opcode::kSllv).num_srcs, 2);   // shift-by-register
  EXPECT_EQ(traits(Opcode::kLui).num_srcs, 0);
}

TEST(Opcode, DestinationPresence) {
  EXPECT_TRUE(traits(Opcode::kAddu).has_dst);
  EXPECT_FALSE(traits(Opcode::kSw).has_dst);
  EXPECT_FALSE(traits(Opcode::kBeq).has_dst);
  EXPECT_FALSE(traits(Opcode::kNop).has_dst);
}

TEST(Opcode, Table511FamiliesAreEligible) {
  // Every opcode priced in Table 5.1.1 must be ISE-eligible.
  for (const Opcode op :
       {Opcode::kAdd, Opcode::kAddi, Opcode::kAddu, Opcode::kAddiu,
        Opcode::kSub, Opcode::kSubu, Opcode::kMult, Opcode::kMultu,
        Opcode::kAnd, Opcode::kAndi, Opcode::kOr, Opcode::kOri, Opcode::kXor,
        Opcode::kXori, Opcode::kNor, Opcode::kSll, Opcode::kSllv, Opcode::kSrl,
        Opcode::kSrlv, Opcode::kSra, Opcode::kSrav, Opcode::kSlt, Opcode::kSlti,
        Opcode::kSltu, Opcode::kSltiu}) {
    EXPECT_TRUE(ise_eligible(op)) << mnemonic(op);
  }
}

}  // namespace
}  // namespace isex::isa
