#include "flow/profiling.hpp"

#include <gtest/gtest.h>

#include "test_util.hpp"

namespace isex::flow {
namespace {

ProfiledProgram three_block_program() {
  ProfiledProgram p;
  p.name = "demo";
  p.blocks.push_back({"hot", testing::make_chain(10), 1000});
  p.blocks.push_back({"warm", testing::make_chain(10), 100});
  p.blocks.push_back({"cold", testing::make_chain(10), 1});
  return p;
}

TEST(Profiling, SortsByTimeDescending) {
  const auto costs =
      profile_blocks(three_block_program(), sched::MachineConfig::make(2, {4, 2}));
  ASSERT_EQ(costs.size(), 3u);
  EXPECT_EQ(costs[0].block_index, 0u);
  EXPECT_EQ(costs[1].block_index, 1u);
  EXPECT_EQ(costs[2].block_index, 2u);
  EXPECT_GE(costs[0].time, costs[1].time);
}

TEST(Profiling, TimeSharesSumToOne) {
  const auto costs =
      profile_blocks(three_block_program(), sched::MachineConfig::make(2, {4, 2}));
  double total = 0.0;
  for (const auto& c : costs) total += c.time_share;
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(Profiling, CyclesComeFromScheduler) {
  ProfiledProgram p;
  p.blocks.push_back({"pairs", testing::make_parallel_pairs(2), 1});
  const auto on1 = profile_blocks(p, sched::MachineConfig::make(1, {4, 2}));
  const auto on2 = profile_blocks(p, sched::MachineConfig::make(2, {4, 2}));
  EXPECT_EQ(on1[0].sw_cycles, 4);
  EXPECT_EQ(on2[0].sw_cycles, 2);
}

TEST(HotBlockSelection, CoverageThreshold) {
  const auto costs =
      profile_blocks(three_block_program(), sched::MachineConfig::make(2, {4, 2}));
  // Hot block alone covers ~90.8%; 0.9 coverage keeps exactly one block.
  const auto hot = select_hot_blocks(costs, 0.9, 10);
  ASSERT_EQ(hot.size(), 1u);
  EXPECT_EQ(hot[0], 0u);
  // 0.99 needs the warm block too.
  EXPECT_EQ(select_hot_blocks(costs, 0.99, 10).size(), 2u);
}

TEST(HotBlockSelection, MaxBlocksCap) {
  const auto costs =
      profile_blocks(three_block_program(), sched::MachineConfig::make(2, {4, 2}));
  EXPECT_EQ(select_hot_blocks(costs, 1.0, 2).size(), 2u);
}

TEST(HotBlockSelection, EmptyProgram) {
  const ProfiledProgram p;
  const auto costs = profile_blocks(p, sched::MachineConfig::make(2, {4, 2}));
  EXPECT_TRUE(select_hot_blocks(costs, 0.9, 4).empty());
}

TEST(HotBlockSelection, ZeroCountBlocksExcluded) {
  ProfiledProgram p;
  p.blocks.push_back({"dead", testing::make_chain(5), 0});
  const auto costs = profile_blocks(p, sched::MachineConfig::make(2, {4, 2}));
  EXPECT_TRUE(select_hot_blocks(costs, 0.9, 4).empty());
}

}  // namespace
}  // namespace isex::flow
