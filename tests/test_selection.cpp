#include "flow/selection.hpp"

#include <gtest/gtest.h>

#include "flow/program.hpp"
#include "test_util.hpp"

namespace isex::flow {
namespace {

/// Builds a catalog entry with a chain pattern of `len` nodes of `op`.
IseCatalogEntry entry(std::size_t block, std::size_t pos, int gain,
                      std::uint64_t count, double area, std::size_t len = 3,
                      isa::Opcode op = isa::Opcode::kXor) {
  IseCatalogEntry e;
  e.block_index = block;
  e.position = pos;
  e.pattern = testing::make_chain(len, op);
  e.ise.gain_cycles = gain;
  e.ise.eval.area = area;
  e.ise.eval.latency_cycles = 1;
  e.benefit = static_cast<std::uint64_t>(gain) * count;
  return e;
}

TEST(Selection, EmptyCatalog) {
  const SelectionResult r = select_ises({}, SelectionConstraints{});
  EXPECT_TRUE(r.selected.empty());
  EXPECT_EQ(r.num_types, 0);
}

TEST(Selection, PicksHighestBenefitFirst) {
  std::vector<IseCatalogEntry> catalog;
  catalog.push_back(entry(0, 0, 2, 10, 100.0, 3, isa::Opcode::kXor));
  catalog.push_back(entry(1, 0, 5, 10, 100.0, 3, isa::Opcode::kAnd));
  SelectionConstraints c;
  c.max_ises = 1;
  const SelectionResult r = select_ises(catalog, c);
  ASSERT_EQ(r.selected.size(), 1u);
  EXPECT_EQ(r.selected[0].entry.block_index, 1u);
}

TEST(Selection, AreaBudgetBinds) {
  std::vector<IseCatalogEntry> catalog;
  catalog.push_back(entry(0, 0, 5, 10, 900.0, 3, isa::Opcode::kXor));
  catalog.push_back(entry(1, 0, 4, 10, 900.0, 3, isa::Opcode::kAnd));
  SelectionConstraints c;
  c.area_budget = 1000.0;
  const SelectionResult r = select_ises(catalog, c);
  ASSERT_EQ(r.selected.size(), 1u);
  EXPECT_DOUBLE_EQ(r.total_area, 900.0);
}

TEST(Selection, IdenticalPatternsShareHardware) {
  std::vector<IseCatalogEntry> catalog;
  catalog.push_back(entry(0, 0, 5, 10, 900.0));
  catalog.push_back(entry(1, 0, 4, 10, 900.0));  // same xor 3-chain
  SelectionConstraints c;
  c.area_budget = 1000.0;  // only one ASFU affordable
  const SelectionResult r = select_ises(catalog, c);
  ASSERT_EQ(r.selected.size(), 2u);
  EXPECT_EQ(r.num_types, 1);
  EXPECT_DOUBLE_EQ(r.total_area, 900.0);
  EXPECT_TRUE(r.selected[1].hardware_shared);
  EXPECT_EQ(r.selected[0].type_id, r.selected[1].type_id);
}

TEST(Selection, SubgraphMergesIntoSelectedType) {
  std::vector<IseCatalogEntry> catalog;
  catalog.push_back(entry(0, 0, 5, 10, 900.0, 4));  // 4-chain first
  catalog.push_back(entry(1, 0, 4, 10, 600.0, 2));  // 2-chain merges in
  SelectionConstraints c;
  const SelectionResult r = select_ises(catalog, c);
  ASSERT_EQ(r.selected.size(), 2u);
  EXPECT_EQ(r.num_types, 1);
  EXPECT_DOUBLE_EQ(r.total_area, 900.0);
}

TEST(Selection, PrefixOrderWithinBlock) {
  // Block 0's second ISE has huge benefit but must wait for the first.
  std::vector<IseCatalogEntry> catalog;
  catalog.push_back(entry(0, 0, 1, 10, 100.0, 3, isa::Opcode::kXor));
  catalog.push_back(entry(0, 1, 50, 10, 100.0, 3, isa::Opcode::kAnd));
  const SelectionResult r = select_ises(catalog, SelectionConstraints{});
  ASSERT_EQ(r.selected.size(), 2u);
  EXPECT_EQ(r.selected[0].entry.position, 0u);
  EXPECT_EQ(r.selected[1].entry.position, 1u);
}

TEST(Selection, UnaffordableHeadRetiresBlock) {
  std::vector<IseCatalogEntry> catalog;
  catalog.push_back(entry(0, 0, 5, 10, 5000.0, 3, isa::Opcode::kXor));
  catalog.push_back(entry(0, 1, 4, 10, 10.0, 3, isa::Opcode::kAnd));
  catalog.push_back(entry(1, 0, 1, 10, 10.0, 3, isa::Opcode::kOr));
  SelectionConstraints c;
  c.area_budget = 100.0;
  const SelectionResult r = select_ises(catalog, c);
  // Block 0 head too big -> whole block skipped; block 1 selected.
  ASSERT_EQ(r.selected.size(), 1u);
  EXPECT_EQ(r.selected[0].entry.block_index, 1u);
}

TEST(Selection, MaxIseTypesBinds) {
  std::vector<IseCatalogEntry> catalog;
  catalog.push_back(entry(0, 0, 5, 10, 10.0, 3, isa::Opcode::kXor));
  catalog.push_back(entry(1, 0, 4, 10, 10.0, 3, isa::Opcode::kAnd));
  catalog.push_back(entry(2, 0, 3, 10, 10.0, 3, isa::Opcode::kOr));
  SelectionConstraints c;
  c.max_ises = 2;
  const SelectionResult r = select_ises(catalog, c);
  EXPECT_EQ(r.num_types, 2);
  EXPECT_EQ(r.selected.size(), 2u);
}

TEST(Selection, SharedIseBypassesTypeLimit) {
  std::vector<IseCatalogEntry> catalog;
  catalog.push_back(entry(0, 0, 5, 10, 10.0));
  catalog.push_back(entry(1, 0, 4, 10, 10.0));  // identical: shares
  catalog.push_back(entry(2, 0, 3, 10, 10.0, 3, isa::Opcode::kAnd));
  SelectionConstraints c;
  c.max_ises = 1;
  const SelectionResult r = select_ises(catalog, c);
  EXPECT_EQ(r.num_types, 1);
  EXPECT_EQ(r.selected.size(), 2u);  // both xor chains, not the and chain
}

TEST(Selection, ZeroBenefitEntriesIgnored) {
  std::vector<IseCatalogEntry> catalog;
  catalog.push_back(entry(0, 0, 0, 10, 10.0));
  const SelectionResult r = select_ises(catalog, SelectionConstraints{});
  EXPECT_TRUE(r.selected.empty());
}

TEST(Selection, BlockHasQuery) {
  std::vector<IseCatalogEntry> catalog;
  catalog.push_back(entry(3, 0, 5, 10, 10.0));
  const SelectionResult r = select_ises(catalog, SelectionConstraints{});
  EXPECT_TRUE(r.block_has(3));
  EXPECT_FALSE(r.block_has(0));
}

}  // namespace
}  // namespace isex::flow
