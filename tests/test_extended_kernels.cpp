// Structural and functional validation of the extended kernel suite
// (AES GF(2^8), SHA-256 message schedule, Sobel).
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <cstdlib>

#include "bench_suite/extended.hpp"
#include "exec/evaluator.hpp"
#include "flow/design_flow.hpp"

namespace isex {
namespace {

using bench_suite::ExtraBenchmark;
using bench_suite::OptLevel;

isa::ParsedBlock block_of(ExtraBenchmark b, OptLevel level,
                          std::string_view name) {
  return isa::parse_tac(bench_suite::extra_kernel_source(b, level, name));
}

// ----------------------------------------------------------------- shape --

class ExtraMatrix
    : public ::testing::TestWithParam<std::tuple<ExtraBenchmark, OptLevel>> {};

TEST_P(ExtraMatrix, BlocksWellFormed) {
  const auto [benchmark, level] = GetParam();
  const auto program = bench_suite::make_extra_program(benchmark, level);
  EXPECT_FALSE(program.blocks.empty());
  for (const auto& block : program.blocks) {
    EXPECT_GT(block.graph.num_nodes(), 0u);
    EXPECT_TRUE(block.graph.is_acyclic());
    EXPECT_GT(block.exec_count, 0u);
  }
}

TEST_P(ExtraMatrix, FlowFindsSpeedup) {
  const auto [benchmark, level] = GetParam();
  const auto program = bench_suite::make_extra_program(benchmark, level);
  flow::FlowConfig config;
  config.machine = sched::MachineConfig::make(2, {6, 3});
  config.repeats = 2;
  config.seed = 77;
  const auto result =
      run_design_flow(program, hw::HwLibrary::paper_default(), config);
  EXPECT_LT(result.final_time(), result.base_time());
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, ExtraMatrix,
    ::testing::Combine(::testing::ValuesIn(bench_suite::all_extra_benchmarks()),
                       ::testing::Values(OptLevel::kO0, OptLevel::kO3)));

// ------------------------------------------------------------- semantics --

std::uint32_t xtime_ref(std::uint32_t a) {
  const std::uint32_t shifted = (a << 1) & 0xFF;
  return (a & 0x80) ? (shifted ^ 0x1B) : shifted;
}

std::uint32_t gf_mult_ref(std::uint32_t a, std::uint32_t b) {
  std::uint32_t acc = 0;
  for (int i = 0; i < 8; ++i) {
    if (b & 1) acc ^= a;
    a = xtime_ref(a);
    b >>= 1;
  }
  return acc;
}

TEST(AesSemantics, UnrolledPairAdvancesGfMultiply) {
  const auto block = block_of(ExtraBenchmark::kAes, OptLevel::kO3,
                              "aes_gfmul_x2");
  // Run the 2-step block four times == full 8-step multiply.
  for (const auto [a0, b0] : {std::pair{0x57u, 0x83u}, std::pair{0x02u, 0x6Eu},
                              std::pair{0xFFu, 0xFFu}}) {
    std::uint32_t a = a0;
    std::uint32_t b = b0;
    std::uint32_t acc = 0;
    for (int i = 0; i < 4; ++i) {
      exec::Evaluator ev;
      ev.set("a", a);
      ev.set("b", b);
      ev.set("acc", acc);
      ev.run(block);
      a = ev.get("a2");
      b = ev.get("b2");
      acc = ev.get("acc2");
    }
    EXPECT_EQ(acc, gf_mult_ref(a0, b0)) << a0 << "*" << b0;
  }
}

TEST(AesSemantics, O0XtimeMatchesReference) {
  const auto block = block_of(ExtraBenchmark::kAes, OptLevel::kO0, "aes_xtime");
  for (std::uint32_t a = 0; a < 256; a += 13) {
    exec::Evaluator ev;
    ev.set("a", a);
    ev.run(block);
    EXPECT_EQ(ev.get("a2"), xtime_ref(a)) << a;
  }
}

std::uint32_t rotr(std::uint32_t x, int n) {
  return (x >> n) | (x << (32 - n));
}

TEST(Sha256Semantics, ScheduleWordMatchesReference) {
  const auto block = block_of(ExtraBenchmark::kSha256, OptLevel::kO3,
                              "sha_schedule");
  const std::uint32_t w15 = 0x6a09e667u;
  const std::uint32_t w2 = 0xbb67ae85u;
  const std::uint32_t w7 = 0x3c6ef372u;
  const std::uint32_t w16old = 0xa54ff53au;
  exec::Evaluator ev;
  ev.set("w15", w15);
  ev.set("w2", w2);
  ev.set("w7", w7);
  ev.set("w16old", w16old);
  ev.run(block);
  const std::uint32_t sig0 = rotr(w15, 7) ^ rotr(w15, 18) ^ (w15 >> 3);
  const std::uint32_t sig1 = rotr(w2, 17) ^ rotr(w2, 19) ^ (w2 >> 10);
  EXPECT_EQ(ev.get("w16"), w16old + sig0 + w7 + sig1);
}

TEST(Sha256Semantics, O0SplitMatchesO3) {
  const std::uint32_t w15 = 0x12345678u, w2 = 0x9abcdef0u, w7 = 7, w16old = 99;
  exec::Evaluator ev;
  ev.set("w15", w15);
  ev.set("w2", w2);
  ev.set("w7", w7);
  ev.set("w16old", w16old);
  ev.run(block_of(ExtraBenchmark::kSha256, OptLevel::kO0, "sha_sigma0"));
  ev.run(block_of(ExtraBenchmark::kSha256, OptLevel::kO0, "sha_sigma1"));
  ev.run(block_of(ExtraBenchmark::kSha256, OptLevel::kO0, "sha_sum"));
  const std::uint32_t sig0 = rotr(w15, 7) ^ rotr(w15, 18) ^ (w15 >> 3);
  const std::uint32_t sig1 = rotr(w2, 17) ^ rotr(w2, 19) ^ (w2 >> 10);
  EXPECT_EQ(ev.get("w16"), w16old + sig0 + w7 + sig1);
}

TEST(SobelSemantics, GradientMagnitudeMatchesReference) {
  const auto block = block_of(ExtraBenchmark::kSobel, OptLevel::kO3,
                              "sobel_pixel");
  const std::int32_t window[3][3] = {{10, 20, 30}, {40, 50, 60}, {70, 80, 90}};
  exec::Evaluator ev;
  for (int r = 0; r < 3; ++r)
    for (int c = 0; c < 3; ++c)
      ev.set("p" + std::to_string(r) + std::to_string(c),
             static_cast<std::uint32_t>(window[r][c]));
  ev.run(block);
  const std::int32_t gx = (window[0][2] - window[0][0]) +
                          2 * (window[1][2] - window[1][0]) +
                          (window[2][2] - window[2][0]);
  const std::int32_t gy = (window[2][0] - window[0][0]) +
                          2 * (window[2][1] - window[0][1]) +
                          (window[2][2] - window[0][2]);
  EXPECT_EQ(ev.get("mag"),
            static_cast<std::uint32_t>(std::abs(gx) + std::abs(gy)));
}

TEST(SobelSemantics, AbsoluteValueOfNegativeGradient) {
  const auto block = block_of(ExtraBenchmark::kSobel, OptLevel::kO0,
                              "sobel_mag");
  exec::Evaluator ev;
  ev.set("gx", static_cast<std::uint32_t>(-37));
  ev.set("gy", 12);
  ev.run(block);
  EXPECT_EQ(ev.get("mag"), 49u);
}

}  // namespace
}  // namespace isex
