#include "sched/machine_config.hpp"

#include <gtest/gtest.h>

namespace isex::sched {
namespace {

TEST(MachineConfig, MakeScalesAlusWithIssueWidth) {
  const MachineConfig cfg = MachineConfig::make(3, {8, 4});
  EXPECT_EQ(cfg.issue_width, 3);
  EXPECT_EQ(cfg.fu_count(isa::FuClass::kAlu), 3);
  EXPECT_EQ(cfg.fu_count(isa::FuClass::kMult), 1);
  EXPECT_EQ(cfg.fu_count(isa::FuClass::kMem), 1);
  EXPECT_EQ(cfg.reg_file.read_ports, 8);
  EXPECT_EQ(cfg.reg_file.write_ports, 4);
}

TEST(MachineConfig, LabelMatchesPaperNotation) {
  EXPECT_EQ(MachineConfig::make(2, {4, 2}).label(), "(4/2, 2IS)");
  EXPECT_EQ(MachineConfig::make(4, {10, 5}).label(), "(10/5, 4IS)");
}

TEST(MachineConfig, Equality) {
  EXPECT_EQ(MachineConfig::make(2, {4, 2}), MachineConfig::make(2, {4, 2}));
  EXPECT_NE(MachineConfig::make(2, {4, 2}), MachineConfig::make(3, {4, 2}));
}

TEST(MachineConfig, SingleIssue) {
  const MachineConfig cfg = MachineConfig::make(1, {4, 2});
  EXPECT_EQ(cfg.issue_width, 1);
  EXPECT_EQ(cfg.fu_count(isa::FuClass::kAlu), 1);
}

}  // namespace
}  // namespace isex::sched
