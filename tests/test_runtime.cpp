// isex_runtime: thread pool, deterministic fan-out, job graph, and the
// schedule-evaluation cache — including the determinism contract the whole
// parallel pipeline rests on (same seed -> bit-identical FlowResult at any
// job count).
#include <atomic>
#include <numeric>
#include <sstream>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "bench_suite/kernels.hpp"
#include "flow/design_flow.hpp"
#include "runtime/eval_cache.hpp"
#include "runtime/hash.hpp"
#include "runtime/job_graph.hpp"
#include "runtime/pool_profile.hpp"
#include "runtime/runtime_stats.hpp"
#include "runtime/thread_pool.hpp"
#include "sched/list_scheduler.hpp"
#include "test_util.hpp"
#include "trace/trace.hpp"

namespace isex::runtime {
namespace {

// ---------------------------------------------------------------- ThreadPool

TEST(ThreadPool, SubmitReturnsFutureValue) {
  ThreadPool pool(2);
  auto future = pool.submit([]() { return 6 * 7; });
  EXPECT_EQ(future.get(), 42);
}

TEST(ThreadPool, SubmitPropagatesExceptions) {
  ThreadPool pool(2);
  auto future = pool.submit(
      []() -> int { throw std::runtime_error("job failed"); });
  EXPECT_THROW(future.get(), std::runtime_error);
}

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr std::size_t kN = 1000;
  std::vector<std::atomic<int>> hits(kN);
  pool.parallel_for(kN, [&](std::size_t i) { ++hits[i]; });
  for (std::size_t i = 0; i < kN; ++i) EXPECT_EQ(hits[i].load(), 1);
  EXPECT_GE(pool.stats().jobs_run, kN);
}

TEST(ThreadPool, ParallelForPropagatesFirstException) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.parallel_for(64,
                                 [](std::size_t i) {
                                   if (i % 7 == 3)
                                     throw std::invalid_argument("bad index");
                                 }),
               std::invalid_argument);
}

TEST(ThreadPool, NestedParallelForRunsInline) {
  ThreadPool pool(2);
  std::vector<std::atomic<int>> hits(64);
  pool.parallel_for(8, [&](std::size_t outer) {
    // From a worker thread this must degrade to a serial loop, not deadlock.
    pool.parallel_for(8, [&](std::size_t inner) { ++hits[outer * 8 + inner]; });
  });
  const int total = std::accumulate(
      hits.begin(), hits.end(), 0,
      [](int acc, const std::atomic<int>& h) { return acc + h.load(); });
  EXPECT_EQ(total, 64);
}

TEST(ThreadPool, ParallelMapPreservesInputOrder) {
  ThreadPool pool(4);
  std::vector<int> items(257);
  std::iota(items.begin(), items.end(), 0);
  const std::vector<int> doubled =
      parallel_map(pool, items, [](const int x) { return 2 * x; });
  ASSERT_EQ(doubled.size(), items.size());
  for (std::size_t i = 0; i < items.size(); ++i)
    EXPECT_EQ(doubled[i], 2 * static_cast<int>(i));
}

TEST(ThreadPool, DefaultJobsIsPositive) {
  EXPECT_GE(ThreadPool::default_jobs(), 1);
}

// ------------------------------------------------------ deterministic_fanout

TEST(DeterministicFanout, SplitNMatchesSequentialSplits) {
  Rng a(123);
  Rng b(123);
  std::vector<Rng> children = a.split_n(5);
  for (Rng& child : children) {
    Rng expected = b.split();
    EXPECT_EQ(child.next_u32(), expected.next_u32());
  }
  // The parents advanced identically.
  EXPECT_EQ(a.next_u32(), b.next_u32());
}

TEST(DeterministicFanout, MatchesSerialLoopAtAnyThreadCount) {
  auto job = [](std::size_t i, Rng& rng) {
    std::uint64_t acc = i;
    for (int k = 0; k < 100; ++k) acc ^= rng.next_u32() + k;
    return acc;
  };
  Rng serial_rng(7);
  std::vector<std::uint64_t> expected;
  for (std::size_t i = 0; i < 32; ++i) {
    Rng child = serial_rng.split();
    expected.push_back(job(i, child));
  }
  for (const int threads : {1, 2, 8}) {
    ThreadPool pool(threads);
    Rng rng(7);
    const auto results = deterministic_fanout(pool, rng, 32, job);
    EXPECT_EQ(results, expected) << "threads=" << threads;
    EXPECT_EQ(rng.next_u32(), Rng(serial_rng).next_u32());
  }
}

// --------------------------------------------------------------- pool profiler

TEST(ThreadPool, ProfilingIsOffByDefaultAndCountsTasksWhenOn) {
  ThreadPool pool(2);
  EXPECT_FALSE(pool.profiling());
  pool.parallel_for(32, [](std::size_t) {});
  EXPECT_EQ(pool.profiled_task_count(), 0u);  // off: zero bookkeeping

  pool.set_profiling(true);
  pool.parallel_for(100, [](std::size_t) {});
  EXPECT_GE(pool.profiled_task_count(), 100u);
  std::uint64_t per_worker = 0;
  for (const WorkerOccupancy& w : pool.occupancy()) per_worker += w.tasks;
  EXPECT_EQ(per_worker, pool.profiled_task_count());
  std::uint64_t binned = 0;
  for (const std::uint64_t c : pool.task_duration_counts()) binned += c;
  EXPECT_EQ(binned, pool.profiled_task_count());
  EXPECT_GE(pool.profiled_task_seconds(), 0.0);
}

TEST(ThreadPool, OccupancyHasOneSlotPerWorkerPlusExternal) {
  ThreadPool pool(3);
  // Workers 0..2 plus the synthetic slot for non-pool threads that run
  // tasks inline while helping a fan-out.
  EXPECT_EQ(pool.occupancy().size(), 4u);
  EXPECT_EQ(ThreadPool::task_duration_bounds_us().size() + 1,
            pool.task_duration_counts().size());
}

TEST(ThreadPool, PropagatesTraceContextToPoolTasks) {
  trace::Tracer& tracer = trace::Tracer::global();
  tracer.set_enabled(true);
  ThreadPool pool(2);
  const trace::ContextScope scope(trace::TraceContext{42, 7});
  auto future = pool.submit([] { return trace::current_context(); });
  const trace::TraceContext seen = future.get();
  tracer.set_enabled(false);
  tracer.reset();
  EXPECT_EQ(seen.trace_id, 42u);
  EXPECT_EQ(seen.span_id, 7u);
}

TEST(ThreadPool, NoContextPropagationWhileTracerDisabled) {
  ThreadPool pool(2);
  const trace::ContextScope scope(trace::TraceContext{42, 7});
  auto future = pool.submit([] { return trace::current_context(); });
  const trace::TraceContext seen = future.get();
  EXPECT_FALSE(seen.active());  // disabled tracer: zero capture overhead
}

TEST(DeterministicFanout, RecordsParallelSectionWhenProfiling) {
  reset_parallel_sections();
  ThreadPool pool(2);
  pool.set_profiling(true);
  Rng rng(11);
  deterministic_fanout(
      pool, rng, 16,
      [](std::size_t i, Rng& r) {
        std::uint64_t acc = i;  // enough work for a nonzero body duration
        for (int k = 0; k < 5000; ++k) acc ^= r.next_u32();
        return acc;
      },
      "test.section");
  const std::vector<SectionProfile> sections = parallel_sections_snapshot();
  ASSERT_EQ(sections.size(), 1u);
  const SectionProfile& s = sections[0];
  EXPECT_EQ(s.name, "test.section");
  EXPECT_EQ(s.invocations, 1u);
  EXPECT_EQ(s.tasks, 16u);
  EXPECT_GE(s.serial_fraction(), 0.0);
  EXPECT_LE(s.serial_fraction(), 1.0);
  EXPECT_GE(s.imbalance(), 1.0);
  reset_parallel_sections();
}

TEST(DeterministicFanout, ProfilingDoesNotPerturbResults) {
  auto job = [](std::size_t i, Rng& r) {
    std::uint64_t acc = i;
    for (int k = 0; k < 50; ++k) acc ^= r.next_u32() + k;
    return acc;
  };
  ThreadPool plain(4);
  Rng rng_plain(21);
  const auto expected = deterministic_fanout(plain, rng_plain, 24, job);

  reset_parallel_sections();
  ThreadPool profiled(4);
  profiled.set_profiling(true);
  Rng rng_profiled(21);
  const auto measured = deterministic_fanout(profiled, rng_profiled, 24, job);
  EXPECT_EQ(measured, expected);
  EXPECT_EQ(rng_plain.next_u32(), rng_profiled.next_u32());
  reset_parallel_sections();
}

TEST(ThreadPool, PoolProfileJsonHasWorkersHistogramAndSections) {
  reset_parallel_sections();
  ThreadPool pool(2);
  pool.set_profiling(true);
  Rng rng(3);
  deterministic_fanout(
      pool, rng, 8, [](std::size_t i, Rng&) { return i; }, "json.section");
  const PoolProfile profile = collect_pool_profile(pool);
  EXPECT_TRUE(profile.profiled);
  EXPECT_EQ(profile.threads, 2);
  std::ostringstream out;
  profile.write_json(out);
  const std::string text = out.str();
  EXPECT_NE(text.find("\"workers\":["), std::string::npos);
  EXPECT_NE(text.find("\"worker\":\"external\""), std::string::npos);
  EXPECT_NE(text.find("\"task_histogram\""), std::string::npos);
  EXPECT_NE(text.find("\"json.section\""), std::string::npos);
  EXPECT_NE(text.find("\"serial_fraction\""), std::string::npos);
  EXPECT_NE(text.find("\"imbalance\""), std::string::npos);
  reset_parallel_sections();
}

// -------------------------------------------------------------------- JobGraph

TEST(JobGraph, RespectsDependencies) {
  ThreadPool pool(4);
  JobGraph graph;
  std::atomic<int> step{0};
  int at_a = -1, at_b = -1, at_c = -1;
  const auto a = graph.add("a", [&]() { at_a = step++; });
  const auto b = graph.add("b", [&]() { at_b = step++; });
  const auto c = graph.add("c", [&]() { at_c = step++; });
  graph.add_dependency(b, a);  // a -> b -> c
  graph.add_dependency(c, b);
  graph.run(pool);
  EXPECT_LT(at_a, at_b);
  EXPECT_LT(at_b, at_c);
  EXPECT_EQ(graph.state(a), JobGraph::State::kDone);
  EXPECT_EQ(graph.state(c), JobGraph::State::kDone);
}

TEST(JobGraph, DiamondReduceSeesAllInputs) {
  ThreadPool pool(4);
  JobGraph graph;
  std::vector<int> values(4, 0);
  int sum = 0;
  const auto src = graph.add("src", [&]() { values[0] = 1; });
  const auto left = graph.add("left", [&]() { values[1] = values[0] * 10; });
  const auto right = graph.add("right", [&]() { values[2] = values[0] * 100; });
  const auto reduce =
      graph.add("reduce", [&]() { sum = values[1] + values[2]; });
  graph.add_dependency(left, src);
  graph.add_dependency(right, src);
  graph.add_dependency(reduce, left);
  graph.add_dependency(reduce, right);
  graph.run(pool);
  EXPECT_EQ(sum, 110);
}

TEST(JobGraph, FailureSkipsDependentsAndRethrows) {
  ThreadPool pool(2);
  JobGraph graph;
  bool downstream_ran = false;
  bool independent_ran = false;
  const auto bad =
      graph.add("bad", []() { throw std::runtime_error("exploded"); });
  const auto downstream =
      graph.add("downstream", [&]() { downstream_ran = true; });
  const auto independent =
      graph.add("independent", [&]() { independent_ran = true; });
  graph.add_dependency(downstream, bad);
  EXPECT_THROW(graph.run(pool), std::runtime_error);
  EXPECT_FALSE(downstream_ran);
  EXPECT_TRUE(independent_ran);
  EXPECT_EQ(graph.state(bad), JobGraph::State::kFailed);
  EXPECT_EQ(graph.state(downstream), JobGraph::State::kSkipped);
  EXPECT_EQ(graph.state(independent), JobGraph::State::kDone);
}

TEST(JobGraph, CycleIsRejected) {
  ThreadPool pool(2);
  JobGraph graph;
  const auto a = graph.add("a", []() {});
  const auto b = graph.add("b", []() {});
  graph.add_dependency(a, b);
  graph.add_dependency(b, a);
  EXPECT_THROW(graph.run(pool), std::logic_error);
}

// ------------------------------------------------------------------ EvalCache

TEST(EvalCache, HitAndMissCountersAreExact) {
  EvalCache cache(/*capacity=*/64, /*shards=*/4);
  const Key128 key{1, 2};
  EXPECT_FALSE(cache.lookup(key).has_value());
  cache.insert(key, 42);
  EXPECT_EQ(cache.lookup(key).value(), 42);
  EXPECT_EQ(cache.lookup(key).value(), 42);
  const CacheStats stats = cache.stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 2u);
  EXPECT_EQ(stats.insertions, 1u);
  EXPECT_EQ(stats.evictions, 0u);
  EXPECT_DOUBLE_EQ(stats.hit_rate(), 2.0 / 3.0);
}

TEST(EvalCache, GetOrComputeComputesOnMissOnly) {
  EvalCache cache;
  int computed = 0;
  const Key128 key{9, 9};
  auto compute = [&]() {
    ++computed;
    return 7;
  };
  EXPECT_EQ(cache.get_or_compute(key, compute), 7);
  EXPECT_EQ(cache.get_or_compute(key, compute), 7);
  EXPECT_EQ(computed, 1);
}

TEST(EvalCache, EvictsFifoWhenFull) {
  EvalCache cache(/*capacity=*/8, /*shards=*/1);
  for (std::uint64_t i = 0; i < 20; ++i)
    cache.insert(Key128{i, i}, static_cast<int>(i));
  EXPECT_EQ(cache.size(), 8u);
  const CacheStats stats = cache.stats();
  EXPECT_EQ(stats.insertions, 20u);
  EXPECT_EQ(stats.evictions, 12u);
  // The oldest entries are gone, the newest survive.
  EXPECT_FALSE(cache.lookup(Key128{0, 0}).has_value());
  EXPECT_TRUE(cache.lookup(Key128{19, 19}).has_value());
}

TEST(EvalCache, ConcurrentHammeringStaysConsistent) {
  EvalCache cache(/*capacity=*/1024, /*shards=*/16);
  ThreadPool pool(8);
  // Many threads race get_or_compute over a small key space; every returned
  // value must match its key and counters must balance.
  pool.parallel_for(2000, [&](std::size_t i) {
    const std::uint64_t k = i % 50;
    const Key128 key{k, k * 31};
    const int value =
        cache.get_or_compute(key, [&]() { return static_cast<int>(k) * 3; });
    ASSERT_EQ(value, static_cast<int>(k) * 3);
  });
  const CacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits + stats.misses, 2000u);
  EXPECT_GE(stats.misses, 50u);  // at least one miss per distinct key
  EXPECT_EQ(cache.size(), 50u);
}

// ------------------------------------------------------------- schedule keys

TEST(ScheduleKey, IdenticalInputsCollide) {
  const dfg::Graph g1 = isex::testing::make_diamond();
  const dfg::Graph g2 = isex::testing::make_diamond();
  const auto machine = sched::MachineConfig::make(2, {6, 3});
  EXPECT_EQ(schedule_key(g1, machine, sched::PriorityKind::kChildCount),
            schedule_key(g2, machine, sched::PriorityKind::kChildCount));
}

TEST(ScheduleKey, AnySingleFieldChangeMisses) {
  const auto machine = sched::MachineConfig::make(2, {6, 3});
  const auto priority = sched::PriorityKind::kChildCount;
  const dfg::Graph base = isex::testing::make_diamond();
  const Key128 key = schedule_key(base, machine, priority);

  {  // different opcode
    dfg::Graph g = isex::testing::make_diamond();
    g.node(1).opcode = isa::Opcode::kAddu;
    EXPECT_NE(schedule_key(g, machine, priority), key);
  }
  {  // extra edge
    dfg::Graph g = isex::testing::make_diamond();
    g.add_edge(1, 2);
    EXPECT_NE(schedule_key(g, machine, priority), key);
  }
  {  // live-out flipped
    dfg::Graph g = isex::testing::make_diamond();
    g.set_live_out(1, true);
    EXPECT_NE(schedule_key(g, machine, priority), key);
  }
  {  // extern inputs changed
    dfg::Graph g = isex::testing::make_diamond();
    g.set_extern_inputs(0, 1);
    EXPECT_NE(schedule_key(g, machine, priority), key);
  }
  {  // ISE payload differs
    dfg::Graph a = isex::testing::make_diamond();
    dfg::Graph b = isex::testing::make_diamond();
    dfg::IseInfo info;
    info.latency_cycles = 2;
    a.add_ise_node(info);
    info.latency_cycles = 3;
    b.add_ise_node(info);
    EXPECT_NE(schedule_key(a, machine, priority),
              schedule_key(b, machine, priority));
  }
  // different machine / priority
  EXPECT_NE(schedule_key(base, sched::MachineConfig::make(3, {6, 3}), priority),
            key);
  EXPECT_NE(schedule_key(base, machine, sched::PriorityKind::kMobility), key);
  // labels are cosmetic and must NOT split the key
  {
    dfg::Graph g = isex::testing::make_diamond();
    g.node(0).label = "renamed";
    EXPECT_EQ(schedule_key(g, machine, priority), key);
  }
}

TEST(ScheduleKey, CachedCyclesMatchDirectScheduling) {
  const sched::ListScheduler scheduler(sched::MachineConfig::make(2, {6, 3}));
  Rng rng(11);
  for (int i = 0; i < 20; ++i) {
    const dfg::Graph g = isex::testing::make_random_dag(24, rng);
    const int direct = scheduler.cycles(g);
    EXPECT_EQ(cached_schedule_cycles(scheduler, g), direct);  // miss path
    EXPECT_EQ(cached_schedule_cycles(scheduler, g), direct);  // hit path
  }
}

// ------------------------------------------------- flow determinism contract

/// The tentpole acceptance property: run_design_flow yields a bit-identical
/// FlowResult for the same seed at jobs ∈ {1, 2, 8}, cache on or off.
class FlowDeterminism
    : public ::testing::TestWithParam<
          std::pair<bench_suite::Benchmark, bench_suite::OptLevel>> {};

TEST_P(FlowDeterminism, IdenticalResultsAcrossJobCounts) {
  const auto [benchmark, level] = GetParam();
  const auto program = bench_suite::make_program(benchmark, level);
  const hw::HwLibrary library = hw::HwLibrary::paper_default();

  auto run = [&](int jobs, bool use_cache) {
    flow::FlowConfig config;
    config.machine = sched::MachineConfig::make(2, {6, 3});
    config.repeats = 3;
    config.seed = 2026;
    config.jobs = jobs;
    config.params.use_eval_cache = use_cache;
    return flow::run_design_flow(program, library, config);
  };

  const flow::FlowResult reference = run(1, false);
  for (const int jobs : {1, 2, 8}) {
    for (const bool cache : {false, true}) {
      const flow::FlowResult result = run(jobs, cache);
      EXPECT_EQ(result.final_time(), reference.final_time())
          << "jobs=" << jobs << " cache=" << cache;
      EXPECT_EQ(result.base_time(), reference.base_time());
      EXPECT_DOUBLE_EQ(result.total_area(), reference.total_area());
      EXPECT_EQ(result.num_ise_types(), reference.num_ise_types());
      EXPECT_EQ(result.hot_blocks, reference.hot_blocks);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Paper, FlowDeterminism,
    ::testing::Values(std::pair{bench_suite::Benchmark::kCrc32,
                                bench_suite::OptLevel::kO0},
                      std::pair{bench_suite::Benchmark::kFft,
                                bench_suite::OptLevel::kO3}));

// explore_best_of itself (the §5.1 best-of loop) is deterministic across
// pool sizes, including against a hand-rolled serial reference.
TEST(ExplorerDeterminism, BestOfMatchesSerialReference) {
  const auto machine = sched::MachineConfig::make(2, {6, 3});
  isa::IsaFormat format;
  format.reg_file = machine.reg_file;
  const core::MultiIssueExplorer explorer(machine, format,
                                          hw::HwLibrary::paper_default());
  const dfg::Graph block = isex::testing::make_diamond();

  // Serial reference: split-then-explore, first strictly better kept.
  Rng serial_rng(5);
  core::ExplorationResult best;
  bool have_best = false;
  for (int r = 0; r < 4; ++r) {
    Rng child = serial_rng.split();
    core::ExplorationResult attempt = explorer.explore(block, child);
    const bool better =
        !have_best || attempt.final_cycles < best.final_cycles ||
        (attempt.final_cycles == best.final_cycles &&
         attempt.total_area() < best.total_area());
    if (better) {
      best = std::move(attempt);
      have_best = true;
    }
  }

  Rng rng(5);
  const core::ExplorationResult parallel =
      explorer.explore_best_of(block, 4, rng);
  EXPECT_EQ(parallel.final_cycles, best.final_cycles);
  EXPECT_EQ(parallel.base_cycles, best.base_cycles);
  EXPECT_DOUBLE_EQ(parallel.total_area(), best.total_area());
  EXPECT_EQ(parallel.ises.size(), best.ises.size());
}

// ---------------------------------------------------------------- RuntimeStats

TEST(RuntimeStats, CollectsPoolCacheAndStageData) {
  ThreadPool pool(2);
  pool.parallel_for(16, [](std::size_t) {});
  stage_times().reset();
  {
    StageTimer timer("unit-test-stage");
  }
  const RuntimeStats stats = collect_runtime_stats(pool);
  EXPECT_EQ(stats.pool.threads, 2);
  EXPECT_GE(stats.pool.jobs_run, 16u);
  bool found = false;
  for (const auto& [name, seconds] : stats.stages) {
    if (name == "unit-test-stage") {
      found = true;
      EXPECT_GE(seconds, 0.0);
    }
  }
  EXPECT_TRUE(found);
  std::ostringstream out;
  stats.print(out);
  EXPECT_NE(out.str().find("schedule cache"), std::string::npos);
}

}  // namespace
}  // namespace isex::runtime
