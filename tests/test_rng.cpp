#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <array>
#include <vector>

namespace isex {
namespace {

TEST(Rng, SameSeedSameStream) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next_u32(), b.next_u32());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.next_u32() == b.next_u32());
  EXPECT_LT(same, 3);
}

TEST(Rng, ReseedRestartsStream) {
  Rng a(42);
  const std::uint32_t first = a.next_u32();
  a.next_u32();
  a.reseed(42);
  EXPECT_EQ(a.next_u32(), first);
}

TEST(Rng, NextBelowRespectsBound) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const std::uint32_t v = rng.next_below(17);
    EXPECT_LT(v, 17u);
  }
}

TEST(Rng, NextBelowBoundOneIsAlwaysZero) {
  Rng rng(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.next_below(1), 0u);
}

TEST(Rng, NextBelowCoversRange) {
  Rng rng(9);
  std::array<int, 8> histogram{};
  for (int i = 0; i < 8000; ++i) histogram[rng.next_below(8)]++;
  for (const int count : histogram) {
    EXPECT_GT(count, 700);  // roughly uniform
    EXPECT_LT(count, 1300);
  }
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(11);
  double min = 1.0;
  double max = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.next_double();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
    min = std::min(min, d);
    max = std::max(max, d);
  }
  EXPECT_LT(min, 0.01);
  EXPECT_GT(max, 0.99);
}

TEST(Rng, WeightedPickHonorsWeights) {
  Rng rng(5);
  const std::vector<double> weights = {1.0, 0.0, 9.0};
  std::array<int, 3> histogram{};
  for (int i = 0; i < 10000; ++i) histogram[rng.weighted_pick(weights)]++;
  EXPECT_EQ(histogram[1], 0);
  EXPECT_GT(histogram[2], histogram[0] * 5);
}

TEST(Rng, WeightedPickZeroTotalFallsBackToUniform) {
  Rng rng(6);
  const std::vector<double> weights = {0.0, 0.0, 0.0, 0.0};
  std::array<int, 4> histogram{};
  for (int i = 0; i < 4000; ++i) histogram[rng.weighted_pick(weights)]++;
  for (const int count : histogram) EXPECT_GT(count, 500);
}

TEST(Rng, WeightedPickSingleEntry) {
  Rng rng(8);
  const std::vector<double> weights = {3.5};
  EXPECT_EQ(rng.weighted_pick(weights), 0u);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng parent(99);
  Rng child = parent.split();
  // The child stream should not mirror the parent's continuation.
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (parent.next_u32() == child.next_u32());
  EXPECT_LT(same, 3);
}

TEST(Rng, SplitIsDeterministic) {
  Rng a(99);
  Rng b(99);
  Rng ca = a.split();
  Rng cb = b.split();
  for (int i = 0; i < 100; ++i) EXPECT_EQ(ca.next_u32(), cb.next_u32());
}

TEST(Splitmix, KnownSequenceIsStable) {
  std::uint64_t state = 0;
  const std::uint64_t v1 = splitmix64(state);
  const std::uint64_t v2 = splitmix64(state);
  EXPECT_NE(v1, v2);
  std::uint64_t state2 = 0;
  EXPECT_EQ(splitmix64(state2), v1);
}

}  // namespace
}  // namespace isex
