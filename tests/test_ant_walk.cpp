#include "core/ant_walk.hpp"

#include <gtest/gtest.h>

#include "golden_hash.hpp"
#include "sched/schedule.hpp"
#include "test_util.hpp"

namespace isex::core {
namespace {

class AntWalkTest : public ::testing::Test {
 protected:
  hw::HwLibrary lib_ = hw::HwLibrary::paper_default();
  ExplorerParams params_;
  sched::MachineConfig machine_ = sched::MachineConfig::make(2, {6, 3});

  WalkResult walk(const dfg::Graph& g, std::uint64_t seed = 1) {
    hw::GPlus gplus(g, lib_);
    PheromoneState pher(gplus, params_);
    AntWalk walker(gplus, machine_, params_);
    Rng rng(seed);
    std::vector<double> sp(g.num_nodes(), 0.0);
    return walker.run(pher, sp, rng);
  }
};

TEST_F(AntWalkTest, AssignsEveryNodeExactlyOnce) {
  Rng rng(3);
  const dfg::Graph g = testing::make_random_dag(30, rng);
  const WalkResult w = walk(g);
  std::vector<bool> seen(g.num_nodes(), false);
  for (dfg::NodeId v = 0; v < g.num_nodes(); ++v) {
    EXPECT_GE(w.chosen[v], 0);
    EXPECT_GE(w.slot[v], 0);
    ASSERT_GE(w.order[v], 0);
    ASSERT_LT(static_cast<std::size_t>(w.order[v]), g.num_nodes());
    EXPECT_FALSE(seen[static_cast<std::size_t>(w.order[v])]);
    seen[static_cast<std::size_t>(w.order[v])] = true;
  }
}

TEST_F(AntWalkTest, PickOrderRespectsDependences) {
  const dfg::Graph g = testing::make_chain(6);
  const WalkResult w = walk(g);
  for (dfg::NodeId u = 0; u < g.num_nodes(); ++u)
    for (const dfg::NodeId v : g.succs(u)) EXPECT_LT(w.order[u], w.order[v]);
}

TEST_F(AntWalkTest, ConsumersStartAfterProducersFinish) {
  Rng rng(5);
  for (int t = 0; t < 10; ++t) {
    const dfg::Graph g = testing::make_random_dag(25, rng);
    const WalkResult w = walk(g, rng.next_u32());
    for (dfg::NodeId u = 0; u < g.num_nodes(); ++u) {
      for (const dfg::NodeId v : g.succs(u)) {
        if (w.group_id[u] >= 0 && w.group_id[u] == w.group_id[v]) continue;
        EXPECT_GE(w.slot[v], w.finish_of(u))
            << "edge " << u << "->" << v << " violated";
      }
    }
  }
}

TEST_F(AntWalkTest, TetIsMaxFinish) {
  Rng rng(7);
  const dfg::Graph g = testing::make_random_dag(20, rng);
  const WalkResult w = walk(g);
  int max_finish = 0;
  for (dfg::NodeId v = 0; v < g.num_nodes(); ++v)
    max_finish = std::max(max_finish, w.finish_of(v));
  EXPECT_EQ(w.tet, max_finish);
}

TEST_F(AntWalkTest, GroupMembersShareSlot) {
  Rng rng(9);
  const dfg::Graph g = testing::make_random_dag(25, rng);
  const WalkResult w = walk(g);
  for (std::size_t gid = 0; gid < w.groups.size(); ++gid) {
    const GroupState& grp = w.groups[gid];
    EXPECT_FALSE(grp.members.empty());
    grp.members.for_each([&](dfg::NodeId m) {
      EXPECT_EQ(w.group_id[m], static_cast<int>(gid));
      EXPECT_EQ(w.slot[m], grp.start);
    });
    EXPECT_EQ(grp.cycles, hw::ClockSpec{}.cycles_for(grp.depth_ns));
  }
}

TEST_F(AntWalkTest, SoftwareOnlyWalkMatchesUnitLatency) {
  // With no hardware options, the walk degrades to plain list placement.
  hw::HwLibrary empty;
  const dfg::Graph g = testing::make_chain(5);
  hw::GPlus gplus(g, empty);
  PheromoneState pher(gplus, params_);
  AntWalk walker(gplus, machine_, params_);
  Rng rng(1);
  std::vector<double> sp(g.num_nodes(), 0.0);
  const WalkResult w = walker.run(pher, sp, rng);
  EXPECT_EQ(w.tet, 5);
  EXPECT_TRUE(w.groups.empty());
}

TEST_F(AntWalkTest, IssueWidthRespectedForSoftwareOps) {
  hw::HwLibrary empty;
  const dfg::Graph g = testing::make_parallel_pairs(4);  // 8 ops
  hw::GPlus gplus(g, empty);
  PheromoneState pher(gplus, params_);
  AntWalk walker(gplus, machine_, params_);
  Rng rng(2);
  std::vector<double> sp(g.num_nodes(), 0.0);
  const WalkResult w = walker.run(pher, sp, rng);
  std::vector<int> per_cycle(static_cast<std::size_t>(w.tet) + 1, 0);
  for (dfg::NodeId v = 0; v < g.num_nodes(); ++v)
    per_cycle[static_cast<std::size_t>(w.slot[v])]++;
  for (const int n : per_cycle) EXPECT_LE(n, machine_.issue_width);
}

TEST_F(AntWalkTest, GroupPortsStayWithinFormat) {
  Rng rng(11);
  for (int t = 0; t < 10; ++t) {
    const dfg::Graph g = testing::make_random_dag(30, rng);
    const WalkResult w = walk(g, rng.next_u32());
    for (const GroupState& grp : w.groups) {
      EXPECT_LE(grp.reads, machine_.reg_file.read_ports);
      EXPECT_LE(grp.writes, machine_.reg_file.write_ports);
    }
  }
}

TEST_F(AntWalkTest, EmptyGraph) {
  dfg::Graph g;
  const WalkResult w = walk(g);
  EXPECT_EQ(w.tet, 0);
  EXPECT_TRUE(w.chosen.empty());
}

TEST_F(AntWalkTest, DeterministicGivenSeed) {
  Rng rng(13);
  const dfg::Graph g = testing::make_random_dag(20, rng);
  const WalkResult a = walk(g, 777);
  const WalkResult b = walk(g, 777);
  EXPECT_EQ(a.chosen, b.chosen);
  EXPECT_EQ(a.slot, b.slot);
  EXPECT_EQ(a.tet, b.tet);
}

TEST_F(AntWalkTest, ReusedScratchMatchesFreshScratch) {
  // One scratch carried across many walks over *different* graphs must
  // behave exactly like a fresh scratch per walk — leftover buffer contents
  // and capacities from a previous (larger or smaller) graph can't leak
  // into the result.
  Rng gen(17);
  WalkScratch reused;
  for (const std::size_t n : {30u, 8u, 45u, 3u, 45u}) {
    const dfg::Graph g = testing::make_random_dag(n, gen);
    hw::GPlus gplus(g, lib_);
    PheromoneState pher(gplus, params_);
    AntWalk walker(gplus, machine_, params_);
    std::vector<double> sp(g.num_nodes(), 1.0);
    for (int i = 0; i < 3; ++i) {
      const std::uint64_t seed = 1000 + 7 * i;
      Rng rng_fresh(seed);
      Rng rng_reused(seed);
      const WalkResult fresh = walker.run(pher, sp, rng_fresh);
      const WalkResult& again = walker.run(pher, sp, rng_reused, reused);
      EXPECT_EQ(testing::hash_walk(fresh), testing::hash_walk(again))
          << "n=" << n << " i=" << i;
    }
  }
}

TEST_F(AntWalkTest, GoldenHashMatchesPreOptimizationWalk) {
  // Golden captured from the pre-optimization walk (per-step Ready-Matrix
  // rebuild, per-entry weight calls): the incremental hot path must draw
  // the same RNG sequence and produce bit-identical placements.
  Rng gen(13);
  const dfg::Graph g = testing::make_random_dag(40, gen);
  hw::GPlus gplus(g, lib_);
  PheromoneState pher(gplus, params_);
  AntWalk walker(gplus, machine_, params_);
  std::vector<double> sp(g.num_nodes(), 1.0);
  Rng rng(777);
  std::uint64_t h = 0;
  for (int i = 0; i < 5; ++i) {
    const WalkResult w = walker.run(pher, sp, rng);
    h ^= testing::hash_walk(w) + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  }
  EXPECT_EQ(h, 0x460014a70ddc6bebULL);
}

TEST_F(AntWalkTest, LongChainWalkStaysLinear) {
  // A 1k-node chain has exactly one ready node per step.  The incremental
  // Ready-Matrix therefore never shifts a surviving entry during compaction
  // (the O(n) per-step erase the old per-step rebuild paid is gone), so the
  // walk's step cost is flat rather than quadratic in chain length.
  constexpr std::size_t kNodes = 1000;
  const dfg::Graph g = testing::make_chain(kNodes);
  hw::GPlus gplus(g, lib_);
  PheromoneState pher(gplus, params_);
  AntWalk walker(gplus, machine_, params_);
  std::vector<double> sp(g.num_nodes(), 1.0);
  Rng rng(5);
  WalkScratch scratch;
  walker.run(pher, sp, rng, scratch);
  EXPECT_EQ(scratch.steps, kNodes);
  EXPECT_EQ(scratch.entry_shifts, 0u);  // no compaction movement at all
  // Never more than one node's options in the matrix at once.
  std::size_t max_options = 0;
  for (dfg::NodeId v = 0; v < g.num_nodes(); ++v)
    max_options = std::max(max_options, gplus.table(v).size());
  EXPECT_LE(scratch.max_entries, max_options);
}

}  // namespace
}  // namespace isex::core
