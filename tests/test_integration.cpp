// Cross-module integration properties: the whole pipeline (parse → explore
// → select → replace → schedule) on realistic inputs, plus the paper's
// qualitative claims as assertions.
#include <gtest/gtest.h>

#include "baseline/si_explorer.hpp"
#include "bench_suite/kernels.hpp"
#include "core/mi_explorer.hpp"
#include "flow/design_flow.hpp"
#include "isa/tac_parser.hpp"
#include "sched/list_scheduler.hpp"
#include "test_util.hpp"

namespace isex {
namespace {

TEST(Integration, TacToIseEndToEnd) {
  // Figure 1.3.1's moral: dependence chains bound wide machines, ISEs cut
  // through them.
  const isa::ParsedBlock block = isa::parse_tac(R"(
    t1 = addu a, b
    t2 = xor t1, c
    t3 = and t2, d
    t4 = srl t3, 2
    t5 = addu t4, e
    live_out t5
  )");
  const auto machine = sched::MachineConfig::make(4, {10, 5});
  const sched::ListScheduler scheduler(machine);
  // Infinite-ish width still needs 5 cycles: pure dependence.
  EXPECT_EQ(scheduler.cycles(block.graph), 5);

  isa::IsaFormat format;
  format.reg_file = machine.reg_file;
  const hw::HwLibrary lib = hw::HwLibrary::paper_default();
  const core::MultiIssueExplorer explorer(machine, format, lib);
  Rng rng(77);
  const auto result = explorer.explore_best_of(block.graph, 5, rng);
  EXPECT_LT(result.final_cycles, 5);
}

TEST(Integration, CommittedIseLatencyMatchesAsfuDepth) {
  Rng rng(3);
  const dfg::Graph g = testing::make_random_dag(25, rng, 0.5);
  const auto machine = sched::MachineConfig::make(2, {6, 3});
  isa::IsaFormat format;
  format.reg_file = machine.reg_file;
  const hw::HwLibrary lib = hw::HwLibrary::paper_default();
  const core::MultiIssueExplorer explorer(machine, format, lib);
  const auto result = explorer.explore(g, rng);
  const hw::ClockSpec clock;
  for (const auto& ise : result.ises) {
    EXPECT_EQ(ise.eval.latency_cycles, clock.cycles_for(ise.eval.depth_ns));
    EXPECT_GT(ise.eval.depth_ns, 0.0);
  }
}

TEST(Integration, TighterAreaBudgetNeverImprovesResult) {
  const auto program = bench_suite::make_program(
      bench_suite::Benchmark::kAdpcm, bench_suite::OptLevel::kO3);
  const hw::HwLibrary lib = hw::HwLibrary::paper_default();
  std::uint64_t previous_final = 0;
  for (const double budget : {0.0, 5000.0, 20000.0, 80000.0}) {
    flow::FlowConfig c;
    c.machine = sched::MachineConfig::make(2, {6, 3});
    c.constraints.area_budget = budget;
    c.repeats = 2;
    c.seed = 12;
    const auto r = run_design_flow(program, lib, c);
    if (previous_final != 0) EXPECT_LE(r.final_time(), previous_final);
    previous_final = r.final_time();
    EXPECT_LE(r.total_area(), budget);
  }
}

TEST(Integration, MoreIsesNeverHurt) {
  const auto program = bench_suite::make_program(
      bench_suite::Benchmark::kJpeg, bench_suite::OptLevel::kO3);
  const hw::HwLibrary lib = hw::HwLibrary::paper_default();
  std::uint64_t previous_final = 0;
  for (const int n : {1, 2, 4, 8}) {
    flow::FlowConfig c;
    c.machine = sched::MachineConfig::make(2, {6, 3});
    c.constraints.max_ises = n;
    c.repeats = 2;
    c.seed = 21;
    const auto r = run_design_flow(program, lib, c);
    if (previous_final != 0) EXPECT_LE(r.final_time(), previous_final);
    previous_final = r.final_time();
  }
}

TEST(Integration, FirstIseDominatesReduction) {
  // Fig 5.2.3: most of the reduction comes from the first ISE.
  const auto program = bench_suite::make_program(
      bench_suite::Benchmark::kCrc32, bench_suite::OptLevel::kO3);
  const hw::HwLibrary lib = hw::HwLibrary::paper_default();
  flow::FlowConfig c;
  c.machine = sched::MachineConfig::make(2, {6, 3});
  c.repeats = 2;
  c.seed = 31;
  c.constraints.max_ises = 1;
  const auto one = run_design_flow(program, lib, c);
  c.constraints.max_ises = 32;
  const auto many = run_design_flow(program, lib, c);
  ASSERT_GT(many.reduction(), 0.0);
  EXPECT_GT(one.reduction(), many.reduction() * 0.4);
}

TEST(Integration, SiSpendsMoreAreaThanMiForItsCandidates) {
  // §1.4/case-study claim: legality-only exploration wastes silicon on
  // off-critical-path operations.  Compare total candidate area proposed by
  // each explorer across the suite's unrolled flavors.
  const hw::HwLibrary lib = hw::HwLibrary::paper_default();
  const auto machine = sched::MachineConfig::make(2, {6, 3});
  isa::IsaFormat format;
  format.reg_file = machine.reg_file;
  const core::MultiIssueExplorer mi(machine, format, lib);
  const baseline::SingleIssueExplorer si(format, lib);

  double mi_area = 0.0;
  double si_area = 0.0;
  for (const auto benchmark :
       {bench_suite::Benchmark::kJpeg, bench_suite::Benchmark::kFft}) {
    const auto program =
        bench_suite::make_program(benchmark, bench_suite::OptLevel::kO3);
    Rng rng_mi(1);
    Rng rng_si(1);
    mi_area += mi.explore_best_of(program.blocks[0].graph, 2, rng_mi).total_area();
    si_area += si.explore_best_of(program.blocks[0].graph, 2, rng_si).total_area();
  }
  EXPECT_GE(si_area, mi_area);
}

TEST(Integration, ExplorationScalesToLargeBlocks) {
  // §2.1: N = 100 is "the standard case" that exhaustive search cannot do.
  Rng rng(5);
  const dfg::Graph g = testing::make_random_dag(100, rng, 0.55);
  const auto machine = sched::MachineConfig::make(2, {6, 3});
  isa::IsaFormat format;
  format.reg_file = machine.reg_file;
  const hw::HwLibrary lib = hw::HwLibrary::paper_default();
  core::ExplorerParams params;
  params.max_iterations = 60;  // keep CI fast; convergence not required
  const core::MultiIssueExplorer explorer(machine, format, lib, params);
  const auto result = explorer.explore(g, rng);
  EXPECT_GT(result.base_cycles, 0);
  EXPECT_LE(result.final_cycles, result.base_cycles);
}

}  // namespace
}  // namespace isex
