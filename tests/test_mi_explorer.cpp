#include "core/mi_explorer.hpp"

#include <gtest/gtest.h>

#include "bench_suite/kernels.hpp"
#include "golden_hash.hpp"
#include "isa/tac_parser.hpp"
#include "runtime/thread_pool.hpp"
#include "sched/list_scheduler.hpp"
#include "test_util.hpp"

namespace isex::core {
namespace {

class MiExplorerTest : public ::testing::Test {
 protected:
  MultiIssueExplorer make_explorer(int issue, int rports, int wports) {
    const auto machine = sched::MachineConfig::make(issue, {rports, wports});
    isa::IsaFormat format;
    format.reg_file = machine.reg_file;
    return MultiIssueExplorer(machine, format, lib_, params_);
  }

  hw::HwLibrary lib_ = hw::HwLibrary::paper_default();
  ExplorerParams params_;
};

TEST_F(MiExplorerTest, EmptyBlock) {
  const auto explorer = make_explorer(2, 6, 3);
  Rng rng(1);
  const ExplorationResult r = explorer.explore(dfg::Graph{}, rng);
  EXPECT_EQ(r.base_cycles, 0);
  EXPECT_TRUE(r.ises.empty());
}

TEST_F(MiExplorerTest, SoftwareOnlyBlockFindsNothing) {
  dfg::Graph g;
  const auto a = g.add_node(isa::Opcode::kLw, "a");
  const auto b = g.add_node(isa::Opcode::kLw, "b");
  g.set_extern_inputs(a, 1);
  g.set_extern_inputs(b, 1);
  const auto explorer = make_explorer(2, 6, 3);
  Rng rng(1);
  const ExplorationResult r = explorer.explore(g, rng);
  EXPECT_TRUE(r.ises.empty());
  EXPECT_EQ(r.base_cycles, r.final_cycles);
}

TEST_F(MiExplorerTest, ChainGetsCompressed) {
  const dfg::Graph g = testing::make_chain(6, isa::Opcode::kAnd);
  const auto explorer = make_explorer(2, 6, 3);
  Rng rng(11);
  const ExplorationResult r = explorer.explore_best_of(g, 5, rng);
  EXPECT_EQ(r.base_cycles, 6);
  EXPECT_LT(r.final_cycles, r.base_cycles);
  ASSERT_FALSE(r.ises.empty());
  EXPECT_GT(r.total_gain(), 0);
}

TEST_F(MiExplorerTest, GainsAccountExactly) {
  const dfg::Graph g = testing::make_chain(8, isa::Opcode::kXor);
  const auto explorer = make_explorer(2, 6, 3);
  Rng rng(5);
  const ExplorationResult r = explorer.explore_best_of(g, 3, rng);
  int gain_sum = 0;
  for (const auto& ise : r.ises) gain_sum += ise.gain_cycles;
  EXPECT_EQ(gain_sum, r.total_gain());
}

TEST_F(MiExplorerTest, CommittedIsesAreDisjointInOriginalCoordinates) {
  Rng rng(23);
  const dfg::Graph g = testing::make_random_dag(30, rng, 0.5);
  const auto explorer = make_explorer(2, 6, 3);
  const ExplorationResult r = explorer.explore(g, rng);
  dfg::NodeSet seen(g.num_nodes());
  for (const auto& ise : r.ises) {
    EXPECT_FALSE(seen.intersects(ise.original_nodes));
    seen |= ise.original_nodes;
    EXPECT_GE(ise.original_nodes.count(), 2u);
    EXPECT_GT(ise.gain_cycles, 0);
  }
}

TEST_F(MiExplorerTest, IsesRespectPortConstraints) {
  Rng rng(29);
  for (int t = 0; t < 4; ++t) {
    const dfg::Graph g = testing::make_random_dag(25, rng, 0.5);
    const auto explorer = make_explorer(2, 4, 2);
    Rng r2 = rng.split();
    const ExplorationResult r = explorer.explore(g, r2);
    for (const auto& ise : r.ises) {
      EXPECT_LE(ise.in_count, 4);
      EXPECT_LE(ise.out_count, 2);
      EXPECT_GE(ise.eval.latency_cycles, 1);
      EXPECT_GT(ise.eval.area, 0.0);
    }
  }
}

TEST_F(MiExplorerTest, NoMemoryOpsInsideIse) {
  const isa::ParsedBlock block = isa::parse_tac(R"(
    a = xor x, y
    b = srl a, 3
    adr = addu base, b
    v = lw [adr]
    c = addu v, a
    d = and c, b
    live_out d
  )");
  const auto explorer = make_explorer(2, 6, 3);
  Rng rng(3);
  const ExplorationResult r = explorer.explore_best_of(block.graph, 5, rng);
  const dfg::NodeId load = block.defs.at("v");
  for (const auto& ise : r.ises)
    EXPECT_FALSE(ise.original_nodes.contains(load));
}

TEST_F(MiExplorerTest, DeterministicAcrossRuns) {
  Rng rng(31);
  const dfg::Graph g = testing::make_random_dag(20, rng);
  const auto explorer = make_explorer(2, 6, 3);
  Rng a(99);
  Rng b(99);
  const ExplorationResult ra = explorer.explore_best_of(g, 3, a);
  const ExplorationResult rb = explorer.explore_best_of(g, 3, b);
  EXPECT_EQ(ra.final_cycles, rb.final_cycles);
  EXPECT_EQ(ra.ises.size(), rb.ises.size());
  EXPECT_DOUBLE_EQ(ra.total_area(), rb.total_area());
}

TEST_F(MiExplorerTest, FinalCyclesMatchRescheduledGraph) {
  // Re-applying the committed ISEs to the original block must reproduce
  // final_cycles exactly.
  const dfg::Graph g = testing::make_chain(6, isa::Opcode::kAnd);
  const auto explorer = make_explorer(2, 6, 3);
  Rng rng(7);
  const ExplorationResult r = explorer.explore_best_of(g, 5, rng);
  dfg::Graph current = g;
  std::vector<dfg::NodeId> to_current(g.num_nodes());
  for (dfg::NodeId v = 0; v < g.num_nodes(); ++v) to_current[v] = v;
  for (const auto& ise : r.ises) {
    dfg::NodeSet members(current.num_nodes());
    ise.original_nodes.for_each(
        [&](dfg::NodeId v) { members.insert(to_current[v]); });
    dfg::IseInfo info;
    info.latency_cycles = ise.eval.latency_cycles;
    info.area = ise.eval.area;
    info.num_inputs = ise.in_count;
    info.num_outputs = ise.out_count;
    std::vector<dfg::NodeId> remap;
    current = current.collapse(members, info, &remap);
    for (dfg::NodeId v = 0; v < g.num_nodes(); ++v)
      to_current[v] = remap[to_current[v]];
  }
  const sched::ListScheduler scheduler(explorer.machine());
  EXPECT_EQ(scheduler.cycles(current), r.final_cycles);
}

TEST_F(MiExplorerTest, WiderMachineNeverLosesToNarrowOnBase) {
  const dfg::Graph g = testing::make_parallel_pairs(4);
  Rng rng(41);
  const ExplorationResult narrow = make_explorer(1, 4, 2).explore(g, rng);
  Rng rng2(41);
  const ExplorationResult wide = make_explorer(4, 10, 5).explore(g, rng2);
  EXPECT_LE(wide.base_cycles, narrow.base_cycles);
}

// Golden hashes captured from the pre-optimization explorer (per-step
// Ready-Matrix rebuild, fresh walk buffers, per-cycle scheduler re-sort).
// The hot-path overhaul promises byte-identical output, so the full
// exploration digest over two seed benchmarks must never move.
class MiExplorerGoldenTest : public MiExplorerTest {
 protected:
  ExplorationResult explore_hottest_block(bench_suite::Benchmark bm) {
    const flow::ProfiledProgram prog =
        bench_suite::make_program(bm, bench_suite::OptLevel::kO3);
    const auto explorer = make_explorer(2, 6, 3);
    Rng rng(17);
    return explorer.explore(prog.blocks.front().graph, rng);
  }
};

TEST_F(MiExplorerGoldenTest, Crc32ExplorationMatchesGolden) {
  const ExplorationResult r =
      explore_hottest_block(bench_suite::Benchmark::kCrc32);
  EXPECT_EQ(r.base_cycles, 21);
  EXPECT_EQ(r.final_cycles, 7);
  EXPECT_EQ(r.ises.size(), 3u);
  EXPECT_EQ(testing::hash_exploration(r), 0x1cb513da36971670ULL);
}

TEST_F(MiExplorerGoldenTest, AdpcmExplorationMatchesGolden) {
  const ExplorationResult r =
      explore_hottest_block(bench_suite::Benchmark::kAdpcm);
  EXPECT_EQ(r.base_cycles, 14);
  EXPECT_EQ(r.final_cycles, 3);
  EXPECT_EQ(r.ises.size(), 1u);
  EXPECT_EQ(testing::hash_exploration(r), 0x5d13c6222e1386e5ULL);
}

TEST_F(MiExplorerGoldenTest, ExploreIsIdenticalAtEveryJobCount) {
  // Candidate evaluations inside one explore() round fan out over the pool;
  // the index-ordered reduction must pick the same winner at any width, so
  // the full digest at --jobs 1 and --jobs 8 must both equal the golden
  // value captured from the serial evaluator.
  runtime::ThreadPool::set_default_jobs(1);
  const std::uint64_t jobs1 = testing::hash_exploration(
      explore_hottest_block(bench_suite::Benchmark::kCrc32));
  runtime::ThreadPool::set_default_jobs(8);
  const std::uint64_t jobs8 = testing::hash_exploration(
      explore_hottest_block(bench_suite::Benchmark::kCrc32));
  runtime::ThreadPool::set_default_jobs(0);  // restore auto width
  EXPECT_EQ(jobs1, 0x1cb513da36971670ULL);
  EXPECT_EQ(jobs8, 0x1cb513da36971670ULL);
}

TEST(BetterCandidate, PinsTheCommitTieBreak) {
  // §4.0 step 3 commit rule: higher gain wins; equal gain falls back to
  // strictly smaller area; a full (gain, area) tie keeps the incumbent.
  // Because the reduction scans candidates in ascending index order, the
  // last property is what makes the parallel evaluation deterministic: the
  // lowest-indexed candidate of a tied group always wins.
  EXPECT_TRUE(better_candidate(/*gain=*/3, /*area=*/9.0, 2, 1.0));
  EXPECT_FALSE(better_candidate(2, 1.0, 3, 9.0));
  EXPECT_TRUE(better_candidate(2, 4.0, 2, 5.0));   // tie: smaller area
  EXPECT_FALSE(better_candidate(2, 5.0, 2, 4.0));  // tie: larger area
  EXPECT_FALSE(better_candidate(2, 4.0, 2, 4.0));  // full tie: keep incumbent
}

TEST_F(MiExplorerGoldenTest, BestOfIsIdenticalAtEveryJobCount) {
  // The per-explore WalkScratch is reused across a fan-out job's rounds;
  // the digest at --jobs 1 and --jobs 8 must match exactly (same seed, same
  // result, any thread count).
  const flow::ProfiledProgram prog = bench_suite::make_program(
      bench_suite::Benchmark::kCrc32, bench_suite::OptLevel::kO3);
  const dfg::Graph& g = prog.blocks.front().graph;
  const auto explorer = make_explorer(2, 6, 3);

  runtime::ThreadPool::set_default_jobs(1);
  Rng rng1(17);
  const std::uint64_t jobs1 =
      testing::hash_exploration(explorer.explore_best_of(g, 5, rng1));

  runtime::ThreadPool::set_default_jobs(8);
  Rng rng8(17);
  const std::uint64_t jobs8 =
      testing::hash_exploration(explorer.explore_best_of(g, 5, rng8));
  runtime::ThreadPool::set_default_jobs(0);  // restore auto width

  EXPECT_EQ(jobs1, jobs8);
}

TEST_F(MiExplorerTest, RoundAndIterationCountsAreBounded) {
  ExplorerParams tight = params_;
  tight.max_iterations = 10;
  tight.max_rounds = 2;
  const auto machine = sched::MachineConfig::make(2, {6, 3});
  isa::IsaFormat format;
  format.reg_file = machine.reg_file;
  const MultiIssueExplorer explorer(machine, format, lib_, tight);
  const dfg::Graph g = testing::make_chain(10, isa::Opcode::kAnd);
  Rng rng(1);
  const ExplorationResult r = explorer.explore(g, rng);
  EXPECT_LE(r.rounds, 2);
  EXPECT_LE(r.total_iterations, 2 * 10);
}

}  // namespace
}  // namespace isex::core
