#include "baseline/si_explorer.hpp"

#include <gtest/gtest.h>

#include "sched/list_scheduler.hpp"
#include "test_util.hpp"

namespace isex::baseline {
namespace {

class SiExplorerTest : public ::testing::Test {
 protected:
  SingleIssueExplorer make_explorer() {
    isa::IsaFormat format;
    format.reg_file = {6, 3};
    return SingleIssueExplorer(format, lib_);
  }

  hw::HwLibrary lib_ = hw::HwLibrary::paper_default();
};

TEST_F(SiExplorerTest, BaseCyclesAreSequential) {
  // 4 independent pairs: a 1-issue machine needs 8 cycles.
  const dfg::Graph g = testing::make_parallel_pairs(4);
  Rng rng(1);
  const auto r = make_explorer().explore(g, rng);
  EXPECT_EQ(r.base_cycles, 8);
}

TEST_F(SiExplorerTest, FindsIsesOnChains) {
  const dfg::Graph g = testing::make_chain(6, isa::Opcode::kAnd);
  Rng rng(3);
  const auto r = make_explorer().explore_best_of(g, 5, rng);
  EXPECT_FALSE(r.ises.empty());
  EXPECT_LT(r.final_cycles, r.base_cycles);
}

TEST_F(SiExplorerTest, PacksOffCriticalPathOperations) {
  // Wide independent arithmetic: in a sequential model every op "counts",
  // so SI happily packs parallel work that a 4-issue machine would have
  // hidden for free.  This is the wasteful behaviour §1.4 describes.
  const dfg::Graph g = testing::make_parallel_pairs(3, isa::Opcode::kAnd);
  Rng rng(5);
  const auto r = make_explorer().explore_best_of(g, 5, rng);
  // Sequential gain exists, so SI commits hardware.
  EXPECT_FALSE(r.ises.empty());
  // But on a wide machine the same block was already 2 cycles, so the
  // committed area buys nothing there.
  const sched::ListScheduler wide(sched::MachineConfig::make(4, {10, 5}));
  EXPECT_EQ(wide.cycles(g), 2);
}

TEST_F(SiExplorerTest, CandidatesStillLegal) {
  Rng rng(7);
  for (int t = 0; t < 4; ++t) {
    const dfg::Graph g = testing::make_random_dag(25, rng, 0.5);
    Rng r2 = rng.split();
    const auto r = make_explorer().explore(g, r2);
    for (const auto& ise : r.ises) {
      EXPECT_LE(ise.in_count, 6);
      EXPECT_LE(ise.out_count, 3);
      EXPECT_GE(ise.original_nodes.count(), 2u);
    }
  }
}

TEST_F(SiExplorerTest, Deterministic) {
  Rng g_rng(11);
  const dfg::Graph g = testing::make_random_dag(20, g_rng);
  Rng a(5);
  Rng b(5);
  const auto ra = make_explorer().explore_best_of(g, 3, a);
  const auto rb = make_explorer().explore_best_of(g, 3, b);
  EXPECT_EQ(ra.final_cycles, rb.final_cycles);
  EXPECT_DOUBLE_EQ(ra.total_area(), rb.total_area());
}

}  // namespace
}  // namespace isex::baseline
