#include "sched/schedule.hpp"

#include <gtest/gtest.h>

#include "test_util.hpp"

namespace isex::sched {
namespace {

TEST(ScheduleHelpers, NodeLatency) {
  dfg::Graph g;
  const auto normal = g.add_node(isa::Opcode::kAddu, "a");
  dfg::IseInfo info;
  info.latency_cycles = 3;
  const auto ise = g.add_ise_node(info, "ISE");
  EXPECT_EQ(node_latency(g, normal), 1);
  EXPECT_EQ(node_latency(g, ise), 3);
}

TEST(ScheduleHelpers, ReadPortsOfRegularOps) {
  dfg::Graph g;
  const auto a = g.add_node(isa::Opcode::kAddu, "a");
  g.set_extern_inputs(a, 2);
  EXPECT_EQ(read_ports_used(g, a), 2);
  const auto b = g.add_node(isa::Opcode::kAddiu, "b");  // immediate form
  g.add_edge(a, b);
  EXPECT_EQ(read_ports_used(g, b), 1);
  // Operand count caps: 3 producers but a 2-source opcode reads 2 ports.
  const auto c = g.add_node(isa::Opcode::kXor, "c");
  g.add_edge(a, c);
  g.add_edge(b, c);
  g.set_extern_inputs(c, 1);
  EXPECT_EQ(read_ports_used(g, c), 2);
}

TEST(ScheduleHelpers, PortsOfIseNodes) {
  dfg::Graph g;
  dfg::IseInfo info;
  info.num_inputs = 4;
  info.num_outputs = 2;
  const auto v = g.add_ise_node(info, "ISE");
  EXPECT_EQ(read_ports_used(g, v), 4);
  EXPECT_EQ(write_ports_used(g, v), 2);
}

TEST(ScheduleHelpers, WritePortsOfStoresAndBranches) {
  dfg::Graph g;
  const auto st = g.add_node(isa::Opcode::kSw, "");
  const auto br = g.add_node(isa::Opcode::kBne, "");
  const auto add = g.add_node(isa::Opcode::kAddu, "x");
  EXPECT_EQ(write_ports_used(g, st), 0);
  EXPECT_EQ(write_ports_used(g, br), 0);
  EXPECT_EQ(write_ports_used(g, add), 1);
}

TEST(CriticalNodes, WholeChainIsCritical) {
  const dfg::Graph g = testing::make_chain(4);
  Schedule s;
  s.slot = {0, 1, 2, 3};
  s.cycles = 4;
  const dfg::NodeSet crit = critical_nodes(g, s);
  EXPECT_EQ(crit.count(), 4u);
}

TEST(CriticalNodes, SlackNodeExcluded) {
  // a -> b -> d (short lane) and a -> c1 -> c2 -> d (long lane): b has
  // slack, the long lane is the tight chain.
  dfg::Graph g;
  const auto a = g.add_node(isa::Opcode::kAddu, "a");
  const auto b = g.add_node(isa::Opcode::kXor, "b");
  const auto c1 = g.add_node(isa::Opcode::kAnd, "c1");
  const auto c2 = g.add_node(isa::Opcode::kOr, "c2");
  const auto d = g.add_node(isa::Opcode::kAddu, "d");
  g.add_edge(a, b);
  g.add_edge(b, d);
  g.add_edge(a, c1);
  g.add_edge(c1, c2);
  g.add_edge(c2, d);
  Schedule s;
  s.slot = {0, 1, 1, 2, 3};
  s.cycles = 4;
  const dfg::NodeSet crit = critical_nodes(g, s);
  EXPECT_TRUE(crit.contains(a));
  EXPECT_FALSE(crit.contains(b));  // finishes at 2 but d starts at 3
  EXPECT_TRUE(crit.contains(c1));
  EXPECT_TRUE(crit.contains(c2));
  EXPECT_TRUE(crit.contains(d));
}

TEST(CriticalNodes, ParallelFinishersAllCritical) {
  const dfg::Graph g = testing::make_parallel_pairs(2);
  Schedule s;
  s.slot = {0, 1, 0, 1};
  s.cycles = 2;
  const dfg::NodeSet crit = critical_nodes(g, s);
  EXPECT_EQ(crit.count(), 4u);
}

TEST(RespectsDependences, DetectsViolation) {
  const dfg::Graph g = testing::make_chain(3);
  Schedule good;
  good.slot = {0, 1, 2};
  good.cycles = 3;
  EXPECT_TRUE(respects_dependences(g, good));
  Schedule bad;
  bad.slot = {0, 0, 1};  // node 1 issues with its producer
  bad.cycles = 2;
  EXPECT_FALSE(respects_dependences(g, bad));
}

TEST(RespectsDependences, MultiCycleProducer) {
  dfg::Graph g;
  dfg::IseInfo info;
  info.latency_cycles = 2;
  const auto ise = g.add_ise_node(info, "ISE");
  const auto user = g.add_node(isa::Opcode::kAddu, "u");
  g.add_edge(ise, user);
  Schedule s;
  s.slot = {0, 1};  // user issues before the 2-cycle ISE finishes
  s.cycles = 2;
  EXPECT_FALSE(respects_dependences(g, s));
  s.slot = {0, 2};
  s.cycles = 3;
  EXPECT_TRUE(respects_dependences(g, s));
}

TEST(RespectsDependences, SizeMismatchIsInvalid) {
  const dfg::Graph g = testing::make_chain(2);
  Schedule s;
  s.slot = {0};
  EXPECT_FALSE(respects_dependences(g, s));
}

}  // namespace
}  // namespace isex::sched
