#include "dfg/analysis.hpp"

#include <gtest/gtest.h>

#include "test_util.hpp"

namespace isex::dfg {
namespace {

TEST(Reachability, ChainReachesForwardOnly) {
  const Graph g = testing::make_chain(4);
  const Reachability r(g);
  EXPECT_TRUE(r.reaches(0, 3));
  EXPECT_TRUE(r.reaches(1, 2));
  EXPECT_FALSE(r.reaches(3, 0));
  EXPECT_FALSE(r.reaches(2, 2));  // strict
}

TEST(Reachability, AncestorsAndDescendants) {
  const Graph g = testing::make_diamond();
  const Reachability r(g);
  EXPECT_EQ(r.descendants(0).count(), 3u);
  EXPECT_EQ(r.ancestors(3).count(), 3u);
  EXPECT_EQ(r.descendants(3).count(), 0u);
  EXPECT_EQ(r.ancestors(0).count(), 0u);
  EXPECT_TRUE(r.descendants(0).contains(3));
  EXPECT_TRUE(r.ancestors(3).contains(1));
}

TEST(Reachability, DisconnectedPairs) {
  const Graph g = testing::make_parallel_pairs(3);
  const Reachability r(g);
  EXPECT_TRUE(r.reaches(0, 1));
  EXPECT_FALSE(r.reaches(0, 2));
  EXPECT_FALSE(r.reaches(2, 1));
}

TEST(Convexity, ChainSubsetsAreConvexIffContiguous) {
  const Graph g = testing::make_chain(5);
  const Reachability r(g);
  EXPECT_TRUE(is_convex(g, NodeSet::of(5, {1, 2, 3}), r));
  EXPECT_TRUE(is_convex(g, NodeSet::of(5, {0}), r));
  // 1 and 3 with 2 outside: path 1 -> 2 -> 3 leaves and re-enters.
  EXPECT_FALSE(is_convex(g, NodeSet::of(5, {1, 3}), r));
}

TEST(Convexity, DiamondShapes) {
  const Graph g = testing::make_diamond();
  const Reachability r(g);
  EXPECT_TRUE(is_convex(g, NodeSet::of(4, {0, 1, 2, 3}), r));
  EXPECT_TRUE(is_convex(g, NodeSet::of(4, {1, 3}), r));  // b -> d direct
  // {a, d} is non-convex: both b and c are intermediaries.
  EXPECT_FALSE(is_convex(g, NodeSet::of(4, {0, 3}), r));
}

TEST(Convexity, EmptyAndFullSetsAreConvex) {
  Rng rng(3);
  const Graph g = testing::make_random_dag(20, rng);
  const Reachability r(g);
  EXPECT_TRUE(is_convex(g, NodeSet(20), r));
  EXPECT_TRUE(is_convex(g, g.all_nodes(), r));
}

TEST(InOutCounts, ChainInterior) {
  Graph g = testing::make_chain(5);
  // Node 0 has 2 extern inputs, node 4 is live-out.
  EXPECT_EQ(count_inputs(g, NodeSet::of(5, {1, 2, 3})), 1);   // from node 0
  EXPECT_EQ(count_outputs(g, NodeSet::of(5, {1, 2, 3})), 1);  // feeds node 4
  EXPECT_EQ(count_inputs(g, NodeSet::of(5, {0, 1})), 2);      // extern only
  EXPECT_EQ(count_outputs(g, NodeSet::of(5, {4})), 1);        // live-out
}

TEST(InOutCounts, SharedProducerCountsOnce) {
  Graph g;
  const auto p = g.add_node(isa::Opcode::kAddu, "p");
  const auto a = g.add_node(isa::Opcode::kXor, "a");
  const auto b = g.add_node(isa::Opcode::kAnd, "b");
  g.add_edge(p, a);
  g.add_edge(p, b);
  EXPECT_EQ(count_inputs(g, NodeSet::of(3, {a, b})), 1);
}

TEST(InOutCounts, MultiConsumerOutputCountsOnce) {
  Graph g;
  const auto a = g.add_node(isa::Opcode::kAddu, "a");
  const auto c1 = g.add_node(isa::Opcode::kXor, "c1");
  const auto c2 = g.add_node(isa::Opcode::kAnd, "c2");
  g.add_edge(a, c1);
  g.add_edge(a, c2);
  EXPECT_EQ(count_outputs(g, NodeSet::of(3, {a})), 1);
}

TEST(LongestPath, UnitLatencyChain) {
  const Graph g = testing::make_chain(4);
  const PathInfo p = longest_path(g, [](NodeId) { return 1.0; });
  EXPECT_DOUBLE_EQ(p.length, 4.0);
  EXPECT_DOUBLE_EQ(p.earliest[0], 0.0);
  EXPECT_DOUBLE_EQ(p.earliest[3], 3.0);
  EXPECT_EQ(p.critical.count(), 4u);  // whole chain critical
}

TEST(LongestPath, SlackOnShortBranch) {
  // a -> b -> d and a -> c -> d with c twice as slow: b has slack.
  Graph g;
  const auto a = g.add_node(isa::Opcode::kAddu, "a");
  const auto b = g.add_node(isa::Opcode::kXor, "b");
  const auto c = g.add_node(isa::Opcode::kMult, "c");
  const auto d = g.add_node(isa::Opcode::kAddu, "d");
  g.add_edge(a, b);
  g.add_edge(a, c);
  g.add_edge(b, d);
  g.add_edge(c, d);
  const PathInfo p = longest_path(g, [&](NodeId v) {
    return v == c ? 2.0 : 1.0;
  });
  EXPECT_DOUBLE_EQ(p.length, 4.0);
  EXPECT_TRUE(p.critical.contains(a));
  EXPECT_TRUE(p.critical.contains(c));
  EXPECT_TRUE(p.critical.contains(d));
  EXPECT_FALSE(p.critical.contains(b));
  EXPECT_DOUBLE_EQ(p.latest[b] - p.earliest[b], 1.0);
}

TEST(LongestPath, EmptyGraph) {
  Graph g;
  const PathInfo p = longest_path(g, [](NodeId) { return 1.0; });
  EXPECT_DOUBLE_EQ(p.length, 0.0);
}

TEST(ConnectedComponents, SplitsPairs) {
  const Graph g = testing::make_parallel_pairs(3);
  const auto comps = weakly_connected_components(g, g.all_nodes());
  EXPECT_EQ(comps.size(), 3u);
  for (const NodeSet& c : comps) EXPECT_EQ(c.count(), 2u);
}

TEST(ConnectedComponents, RespectsWithinMask) {
  const Graph g = testing::make_chain(5);
  // Mask {0, 1, 3, 4}: node 2 missing splits the chain.
  const auto comps =
      weakly_connected_components(g, NodeSet::of(5, {0, 1, 3, 4}));
  EXPECT_EQ(comps.size(), 2u);
}

TEST(ConnectedComponents, EmptyMask) {
  const Graph g = testing::make_chain(3);
  EXPECT_TRUE(weakly_connected_components(g, NodeSet(3)).empty());
}

TEST(InducedCriticalPath, IgnoresOutsideNodes) {
  const Graph g = testing::make_chain(5);
  const auto latency = [](NodeId) { return 2.0; };
  EXPECT_DOUBLE_EQ(induced_critical_path(g, NodeSet::of(5, {1, 2, 3}), latency),
                   6.0);
  // 1 and 3 only: the connection through 2 is outside, so two length-1 paths.
  EXPECT_DOUBLE_EQ(induced_critical_path(g, NodeSet::of(5, {1, 3}), latency),
                   2.0);
}

TEST(InducedCriticalPath, EmptySetIsZero) {
  const Graph g = testing::make_chain(3);
  EXPECT_DOUBLE_EQ(induced_critical_path(g, NodeSet(3), [](NodeId) {
                     return 1.0;
                   }),
                   0.0);
}

// Property: for random DAGs, every convex set's collapse stays acyclic.
class ConvexCollapseProperty : public ::testing::TestWithParam<int> {};

TEST_P(ConvexCollapseProperty, ConvexSetsCollapseAcyclically) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  const Graph g = testing::make_random_dag(24, rng);
  const Reachability r(g);
  for (int trial = 0; trial < 20; ++trial) {
    // Random contiguous topological window is always convex... not
    // necessarily; so sample random sets and filter by is_convex.
    NodeSet s(g.num_nodes());
    for (NodeId v = 0; v < g.num_nodes(); ++v)
      if (rng.next_double() < 0.3) s.insert(v);
    if (s.empty() || !is_convex(g, s, r)) continue;
    const Graph reduced = g.collapse(s, IseInfo{});
    EXPECT_TRUE(reduced.is_acyclic());
    EXPECT_EQ(reduced.num_nodes(), g.num_nodes() - s.count() + 1);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ConvexCollapseProperty,
                         ::testing::Range(1, 13));

}  // namespace
}  // namespace isex::dfg
// -- appended: live-in value identity ---------------------------------------
namespace isex::dfg {
namespace {

TEST(InOutCounts, SharedLiveInValueCountsOnce) {
  Graph g;
  const auto a = g.add_node(isa::Opcode::kSrl, "a");
  const auto b = g.add_node(isa::Opcode::kSll, "b");
  const auto c = g.add_node(isa::Opcode::kXor, "c");
  g.add_edge(a, c);
  g.add_edge(b, c);
  // Both a and b read the same live-in value (id 0).
  g.set_extern_input_ids(a, {0});
  g.set_extern_input_ids(b, {0});
  EXPECT_EQ(count_inputs(g, NodeSet::of(3, {a, b, c})), 1);
  // Distinct ids count separately.
  g.set_extern_input_ids(b, {1});
  EXPECT_EQ(count_inputs(g, NodeSet::of(3, {a, b, c})), 2);
}

TEST(InOutCounts, DefaultExternIdsAreUnique) {
  Graph g;
  const auto a = g.add_node(isa::Opcode::kAddu, "a");
  const auto b = g.add_node(isa::Opcode::kAddu, "b");
  g.set_extern_inputs(a, 2);
  g.set_extern_inputs(b, 2);
  EXPECT_EQ(count_inputs(g, NodeSet::of(2, {a, b})), 4);
}

TEST(InOutCounts, CollapseDeduplicatesSharedLiveIns) {
  Graph g;
  const auto a = g.add_node(isa::Opcode::kSrl, "a");
  const auto b = g.add_node(isa::Opcode::kSll, "b");
  const auto c = g.add_node(isa::Opcode::kXor, "c");
  g.add_edge(a, c);
  g.add_edge(b, c);
  g.set_extern_input_ids(a, {7});
  g.set_extern_input_ids(b, {7});
  g.set_live_out(c, true);
  const Graph reduced = g.collapse(NodeSet::of(3, {a, b, c}), IseInfo{});
  EXPECT_EQ(reduced.extern_inputs(0), 1);
}

}  // namespace
}  // namespace isex::dfg
