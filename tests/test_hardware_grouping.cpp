#include "core/hardware_grouping.hpp"

#include <gtest/gtest.h>

#include "test_util.hpp"

namespace isex::core {
namespace {

class GroupingTest : public ::testing::Test {
 protected:
  hw::HwLibrary lib_ = hw::HwLibrary::paper_default();
  isa::IsaFormat format_;  // 4/2 default

  VirtualCandidate group(const dfg::Graph& g, dfg::NodeId x,
                         const std::vector<int>& prev) {
    hw::GPlus gplus(g, lib_);
    dfg::Reachability reach(g);
    HardwareGrouping hg(gplus, format_);
    return hg.group(x, prev, reach);
  }
};

TEST_F(GroupingTest, LoneNodeWithoutHardwareNeighbours) {
  const dfg::Graph g = testing::make_chain(3, isa::Opcode::kAnd);
  // Everyone chose software (option 0) previously.
  const VirtualCandidate c = group(g, 1, {0, 0, 0});
  EXPECT_EQ(c.size(), 1u);
  EXPECT_TRUE(c.members.contains(1));
}

TEST_F(GroupingTest, AbsorbsHardwareChosenNeighbours) {
  const dfg::Graph g = testing::make_chain(4, isa::Opcode::kAnd);
  // Nodes 0 and 2 chose hardware (option 1); 3 chose software.
  const VirtualCandidate c = group(g, 1, {1, 0, 1, 0});
  EXPECT_EQ(c.size(), 3u);
  EXPECT_TRUE(c.members.contains(0));
  EXPECT_TRUE(c.members.contains(2));
  EXPECT_FALSE(c.members.contains(3));
}

TEST_F(GroupingTest, ReachesTransitivelyThroughHardwareNodes) {
  const dfg::Graph g = testing::make_chain(5, isa::Opcode::kAnd);
  // 1-2-3 all hardware: grouping from 0 pulls the whole run.
  const VirtualCandidate c = group(g, 0, {0, 1, 1, 1, 0});
  EXPECT_EQ(c.size(), 4u);  // 0 + 1 + 2 + 3
}

TEST_F(GroupingTest, StopsAtSoftwareBarrier) {
  const dfg::Graph g = testing::make_chain(5, isa::Opcode::kAnd);
  // 1 software, 3 hardware: 3 is unreachable through the barrier at 1.
  const VirtualCandidate c = group(g, 0, {0, 0, 0, 1, 0});
  EXPECT_EQ(c.size(), 1u);
}

TEST_F(GroupingTest, EvaluatesEveryHardwareOptionOfX) {
  const dfg::Graph g = testing::make_chain(2, isa::Opcode::kAddu);
  const VirtualCandidate c = group(g, 0, {0, 1});  // node1 on HW-1
  ASSERT_EQ(c.per_option.size(), 3u);
  EXPECT_FALSE(c.per_option[0].valid);  // software slot unused
  ASSERT_TRUE(c.per_option[1].valid);
  ASSERT_TRUE(c.per_option[2].valid);
  // HW-1 (4.04) + neighbour HW-1 (4.04) = 8.08 ns.
  EXPECT_NEAR(c.per_option[1].depth_ns, 8.08, 1e-9);
  // HW-2 (2.12) + 4.04 = 6.16 ns; bigger area.
  EXPECT_NEAR(c.per_option[2].depth_ns, 6.16, 1e-9);
  EXPECT_GT(c.per_option[2].area, c.per_option[1].area);
  EXPECT_EQ(c.per_option[1].cycles, 1);
}

TEST_F(GroupingTest, SoftwareReferenceTimes) {
  const dfg::Graph g = testing::make_chain(3, isa::Opcode::kAnd);
  const VirtualCandidate c = group(g, 1, {1, 0, 1});
  EXPECT_DOUBLE_EQ(c.sw_depth_cycles, 3.0);  // chain of 3 unit ops
  EXPECT_DOUBLE_EQ(c.sw_seq_cycles, 3.0);
}

TEST_F(GroupingTest, ParallelMembersDepthVsSeq) {
  dfg::Graph g;  // x with two independent hardware-chosen parents
  const auto p1 = g.add_node(isa::Opcode::kAnd, "p1");
  const auto p2 = g.add_node(isa::Opcode::kAnd, "p2");
  const auto x = g.add_node(isa::Opcode::kXor, "x");
  g.add_edge(p1, x);
  g.add_edge(p2, x);
  const VirtualCandidate c = group(g, x, {1, 1, 0});
  EXPECT_EQ(c.size(), 3u);
  EXPECT_DOUBLE_EQ(c.sw_depth_cycles, 2.0);  // parallel front, then x
  EXPECT_DOUBLE_EQ(c.sw_seq_cycles, 3.0);    // sequential machine view
}

TEST_F(GroupingTest, IoViolationFlagged) {
  // 5 independent parents each with 1 extern input feeding x: IN = 6 > 4.
  dfg::Graph g;
  std::vector<int> prev;
  const auto x = g.add_node(isa::Opcode::kXor, "x");
  prev.push_back(0);
  for (int i = 0; i < 5; ++i) {
    const auto p = g.add_node(isa::Opcode::kAnd, "p" + std::to_string(i));
    g.set_extern_inputs(p, 2);
    g.add_edge(p, x);
    prev.push_back(1);
  }
  const VirtualCandidate c = group(g, x, prev);
  EXPECT_EQ(c.size(), 6u);
  EXPECT_GT(c.in_count, format_.max_ise_inputs());
  EXPECT_TRUE(c.io_violation);
}

TEST_F(GroupingTest, ConvexViolationFlagged) {
  // Chain 0 -> 1 -> 2 where 0 and 2 chose hardware but 1 is a load (never
  // hardware-capable): grouping from 0 produces {0, 2}, non-convex.
  dfg::Graph g;
  const auto a = g.add_node(isa::Opcode::kAnd, "a");
  const auto l = g.add_node(isa::Opcode::kLw, "l");
  const auto b = g.add_node(isa::Opcode::kAnd, "b");
  g.add_edge(a, l);
  g.add_edge(l, b);
  g.add_edge(a, b);  // direct edge so grouping connects a and b
  const VirtualCandidate c = group(g, a, {0, 0, 1});
  EXPECT_TRUE(c.members.contains(b));
  EXPECT_TRUE(c.convex_violation);
}

}  // namespace
}  // namespace isex::core
