#include "flow/listing.hpp"

#include <gtest/gtest.h>

#include "test_util.hpp"

namespace isex::flow {
namespace {

TEST(Listing, OneRowPerCycle) {
  const dfg::Graph g = testing::make_chain(4, isa::Opcode::kAddu);
  const auto machine = sched::MachineConfig::make(2, {6, 3});
  const std::string text = to_listing(g, machine);
  EXPECT_NE(text.find("4 cycles"), std::string::npos);
  EXPECT_NE(text.find("C1:"), std::string::npos);
  EXPECT_NE(text.find("C4:"), std::string::npos);
  EXPECT_EQ(text.find("C5:"), std::string::npos);
}

TEST(Listing, ShowsMnemonicsAndLabels) {
  dfg::Graph g;
  g.add_node(isa::Opcode::kXor, "crc2");
  const std::string text =
      to_listing(g, sched::MachineConfig::make(1, {4, 2}));
  EXPECT_NE(text.find("xor crc2"), std::string::npos);
}

TEST(Listing, LabelsCanBeSuppressed) {
  dfg::Graph g;
  g.add_node(isa::Opcode::kXor, "crc2");
  ListingOptions options;
  options.show_labels = false;
  const std::string text =
      to_listing(g, sched::MachineConfig::make(1, {4, 2}), options);
  EXPECT_EQ(text.find("crc2"), std::string::npos);
}

TEST(Listing, IseRenderedWithPortsAndLatency) {
  dfg::Graph g;
  dfg::IseInfo info;
  info.latency_cycles = 2;
  info.num_inputs = 3;
  info.num_outputs = 1;
  g.add_ise_node(info, "ISE");
  const std::string text =
      to_listing(g, sched::MachineConfig::make(2, {6, 3}));
  EXPECT_NE(text.find("ise0/3>1 (2c)"), std::string::npos);
}

TEST(Listing, EmptySlotsRenderedAsDash) {
  const dfg::Graph g = testing::make_chain(2);
  const std::string text =
      to_listing(g, sched::MachineConfig::make(2, {6, 3}));
  EXPECT_NE(text.find("| -"), std::string::npos);
}

TEST(Listing, ParallelOpsShareARow) {
  const dfg::Graph g = testing::make_parallel_pairs(1, isa::Opcode::kAnd);
  const auto machine = sched::MachineConfig::make(2, {6, 3});
  const std::string text = to_listing(g, machine);
  EXPECT_NE(text.find("2 cycles"), std::string::npos);
}

TEST(Listing, EmptyGraph) {
  dfg::Graph g;
  const std::string text =
      to_listing(g, sched::MachineConfig::make(2, {6, 3}));
  EXPECT_NE(text.find("0 cycles"), std::string::npos);
}

}  // namespace
}  // namespace isex::flow
