#include "dfg/node_set.hpp"

#include <gtest/gtest.h>

namespace isex::dfg {
namespace {

TEST(NodeSet, StartsEmpty) {
  NodeSet s(100);
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.count(), 0u);
  EXPECT_FALSE(s.contains(0));
}

TEST(NodeSet, InsertEraseContains) {
  NodeSet s(100);
  s.insert(5);
  s.insert(63);
  s.insert(64);  // word boundary
  s.insert(99);
  EXPECT_EQ(s.count(), 4u);
  EXPECT_TRUE(s.contains(5));
  EXPECT_TRUE(s.contains(63));
  EXPECT_TRUE(s.contains(64));
  EXPECT_TRUE(s.contains(99));
  s.erase(63);
  EXPECT_FALSE(s.contains(63));
  EXPECT_EQ(s.count(), 3u);
}

TEST(NodeSet, DoubleInsertIsIdempotent) {
  NodeSet s(10);
  s.insert(3);
  s.insert(3);
  EXPECT_EQ(s.count(), 1u);
}

TEST(NodeSet, ContainsOutOfUniverseIsFalse) {
  NodeSet s(10);
  EXPECT_FALSE(s.contains(10));
  EXPECT_FALSE(s.contains(kInvalidNode));
}

TEST(NodeSet, ClearResets) {
  NodeSet s = NodeSet::of(20, {1, 2, 3});
  s.clear();
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.universe(), 20u);
}

TEST(NodeSet, UnionIntersectionDifference) {
  NodeSet a = NodeSet::of(10, {1, 2, 3});
  NodeSet b = NodeSet::of(10, {3, 4});
  NodeSet u = a;
  u |= b;
  EXPECT_EQ(u, NodeSet::of(10, {1, 2, 3, 4}));
  NodeSet i = a;
  i &= b;
  EXPECT_EQ(i, NodeSet::of(10, {3}));
  NodeSet d = a;
  d -= b;
  EXPECT_EQ(d, NodeSet::of(10, {1, 2}));
}

TEST(NodeSet, IntersectsAndSubset) {
  const NodeSet a = NodeSet::of(10, {1, 2});
  const NodeSet b = NodeSet::of(10, {2, 3});
  const NodeSet c = NodeSet::of(10, {4});
  EXPECT_TRUE(a.intersects(b));
  EXPECT_FALSE(a.intersects(c));
  EXPECT_TRUE(NodeSet::of(10, {2}).is_subset_of(a));
  EXPECT_FALSE(b.is_subset_of(a));
  EXPECT_TRUE(NodeSet(10).is_subset_of(a));  // empty set
}

TEST(NodeSet, ToVectorAscending) {
  const NodeSet s = NodeSet::of(200, {150, 3, 64, 127});
  const std::vector<NodeId> v = s.to_vector();
  ASSERT_EQ(v.size(), 4u);
  EXPECT_EQ(v[0], 3u);
  EXPECT_EQ(v[1], 64u);
  EXPECT_EQ(v[2], 127u);
  EXPECT_EQ(v[3], 150u);
}

TEST(NodeSet, ForEachVisitsAll) {
  const NodeSet s = NodeSet::of(70, {0, 69});
  std::size_t visits = 0;
  s.for_each([&](NodeId id) {
    EXPECT_TRUE(id == 0 || id == 69);
    ++visits;
  });
  EXPECT_EQ(visits, 2u);
}

TEST(NodeSet, EqualityIncludesUniverse) {
  EXPECT_EQ(NodeSet::of(10, {1}), NodeSet::of(10, {1}));
  EXPECT_NE(NodeSet::of(10, {1}), NodeSet::of(10, {2}));
}

TEST(NodeSet, EmptyUniverse) {
  NodeSet s(0);
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.to_vector().size(), 0u);
}

TEST(NodeSet, EmptyTracksInsertAndErase) {
  NodeSet s(256);
  EXPECT_TRUE(s.empty());
  // A bit in the last word: empty() must scan far enough to see it.
  s.insert(255);
  EXPECT_FALSE(s.empty());
  s.erase(255);
  EXPECT_TRUE(s.empty());
  // A bit in the first word: empty() early-exits on the first nonzero word.
  s.insert(0);
  EXPECT_FALSE(s.empty());
  s.erase(0);
  EXPECT_TRUE(s.empty());
}

TEST(NodeSet, TestAndSetReportsNewBitsOnly) {
  NodeSet s(130);
  EXPECT_TRUE(s.test_and_set(5));
  EXPECT_FALSE(s.test_and_set(5));  // already present
  EXPECT_TRUE(s.test_and_set(64));  // word boundary
  EXPECT_TRUE(s.test_and_set(129));
  EXPECT_FALSE(s.test_and_set(129));
  EXPECT_EQ(s.count(), 3u);
  EXPECT_TRUE(s.contains(5));
  EXPECT_TRUE(s.contains(64));
  EXPECT_TRUE(s.contains(129));
}

TEST(NodeSet, InsertAllUnionsAndReportsGrowth) {
  NodeSet a = NodeSet::of(130, {1, 64});
  const NodeSet b = NodeSet::of(130, {64, 65, 129});
  EXPECT_TRUE(a.insert_all(b));  // 65 and 129 are new
  EXPECT_EQ(a, NodeSet::of(130, {1, 64, 65, 129}));
  EXPECT_FALSE(a.insert_all(b));  // already a superset: nothing new
  EXPECT_EQ(a.count(), 4u);
  NodeSet empty(130);
  EXPECT_FALSE(a.insert_all(empty));
}

TEST(NodeSet, WordsExposeThePackedBits) {
  const NodeSet s = NodeSet::of(130, {0, 63, 64, 129});
  const auto words = s.words();
  ASSERT_EQ(words.size(), 3u);  // ceil(130 / 64)
  EXPECT_EQ(words[0], (1ULL << 0) | (1ULL << 63));
  EXPECT_EQ(words[1], 1ULL << 0);
  EXPECT_EQ(words[2], 1ULL << 1);
}

TEST(NodeSet, EmptyAgreesWithCountOnEveryWord) {
  // One membered set per word of a multi-word universe; empty() and
  // count() == 0 must agree no matter which word holds the bit.
  for (NodeId bit : {0u, 63u, 64u, 127u, 128u, 200u}) {
    NodeSet s(201);
    s.insert(bit);
    EXPECT_FALSE(s.empty()) << "bit " << bit;
    EXPECT_EQ(s.count(), 1u);
    s.erase(bit);
    EXPECT_TRUE(s.empty()) << "bit " << bit;
    EXPECT_EQ(s.count(), 0u);
  }
}

}  // namespace
}  // namespace isex::dfg
