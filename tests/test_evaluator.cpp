#include "exec/evaluator.hpp"

#include <gtest/gtest.h>

namespace isex::exec {
namespace {

TEST(Evaluator, StraightLineArithmetic) {
  const auto block = isa::parse_tac(R"(
    t = addu a, b
    u = sll t, 2
    v = subu u, a
  )");
  Evaluator ev;
  ev.set("a", 3);
  ev.set("b", 4);
  ev.run(block);
  EXPECT_EQ(ev.get("t"), 7u);
  EXPECT_EQ(ev.get("u"), 28u);
  EXPECT_EQ(ev.get("v"), 25u);
}

TEST(Evaluator, ImmediatesIncludingHexAndNegative) {
  const auto block = isa::parse_tac(R"(
    a = andi x, 0xff
    b = addiu x, -1
    c = xori x, 15
  )");
  Evaluator ev;
  ev.set("x", 0x1234u);
  ev.run(block);
  EXPECT_EQ(ev.get("a"), 0x34u);
  EXPECT_EQ(ev.get("b"), 0x1233u);
  EXPECT_EQ(ev.get("c"), 0x123Bu);
}

TEST(Evaluator, LoadStoreRoundTrip) {
  const auto block = isa::parse_tac(R"(
    v = lw [p]
    d = addu v, one
    q = addiu p, 4
    sw [q], d
  )");
  Evaluator ev;
  ev.set("p", 0x100);
  ev.set("one", 1);
  ev.memory().store_word(0x100, 41);
  ev.run(block);
  EXPECT_EQ(ev.get("v"), 41u);
  EXPECT_EQ(ev.memory().load_word(0x104), 42u);
}

TEST(Evaluator, SignExtendingLoads) {
  const auto block = isa::parse_tac(R"(
    sb0 = lb [p]
    ub0 = lbu [p]
    sh0 = lh [q]
    uh0 = lhu [q]
  )");
  Evaluator ev;
  ev.set("p", 0);
  ev.set("q", 4);
  ev.memory().store_byte(0, 0x80);
  ev.memory().store_half(4, 0x8000);
  ev.run(block);
  EXPECT_EQ(ev.get("sb0"), 0xFFFFFF80u);
  EXPECT_EQ(ev.get("ub0"), 0x80u);
  EXPECT_EQ(ev.get("sh0"), 0xFFFF8000u);
  EXPECT_EQ(ev.get("uh0"), 0x8000u);
}

TEST(Evaluator, UndefinedLiveInThrows) {
  const auto block = isa::parse_tac("t = addu a, b");
  Evaluator ev;
  ev.set("a", 1);  // b missing
  EXPECT_THROW(ev.run(block), EvalError);
}

TEST(Evaluator, RunForReturnsNamedOutput) {
  const auto block = isa::parse_tac("t = mult a, a");
  Evaluator ev;
  ev.set("a", 12);
  EXPECT_EQ(ev.run_for(block, "t"), 144u);
}

TEST(Evaluator, LuiOriMaterializesConstant) {
  const auto block = isa::parse_tac(R"(
    hi = lui 0x5555
    c55 = ori hi, 0x5555
  )");
  Evaluator ev;
  ev.run(block);
  EXPECT_EQ(ev.get("c55"), 0x55555555u);
}

TEST(Evaluator, SubuFromZeroImmediateBuildsMask) {
  // The kernels' branchless-select idiom.
  const auto block = isa::parse_tac(R"(
    m = subu 0, c
    nm = nor m, m
    s0 = and x, m
    s1 = and y, nm
    sel = or s0, s1
  )");
  for (const std::uint32_t c : {0u, 1u}) {
    Evaluator ev;
    ev.set("c", c);
    ev.set("x", 111);
    ev.set("y", 222);
    ev.run(block);
    EXPECT_EQ(ev.get("sel"), c ? 111u : 222u);
  }
}

TEST(Evaluator, StatementsRecordProgramOrder) {
  const auto block = isa::parse_tac(R"(
    a = addu x, y
    b = xor a, x
  )");
  ASSERT_EQ(block.statements.size(), 2u);
  EXPECT_EQ(block.statements[0].dest, "a");
  EXPECT_EQ(block.statements[1].dest, "b");
  EXPECT_EQ(block.statements[0].node, block.defs.at("a"));
  EXPECT_EQ(block.statements[1].line, 3);
}

}  // namespace
}  // namespace isex::exec
