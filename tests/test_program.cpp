#include "flow/program.hpp"

#include <gtest/gtest.h>

#include "test_util.hpp"

namespace isex::flow {
namespace {

TEST(Program, TotalOperations) {
  ProfiledProgram p;
  p.blocks.push_back({"a", testing::make_chain(3), 10});
  p.blocks.push_back({"b", testing::make_diamond(), 5});
  EXPECT_EQ(p.total_operations(), 7u);
}

TEST(InducedSubgraph, PreservesInternalStructure) {
  const dfg::Graph g = testing::make_chain(5, isa::Opcode::kXor);
  const dfg::Graph sub = induced_subgraph(g, dfg::NodeSet::of(5, {1, 2, 3}));
  EXPECT_EQ(sub.num_nodes(), 3u);
  EXPECT_EQ(sub.num_edges(), 2u);
  for (dfg::NodeId v = 0; v < 3; ++v)
    EXPECT_EQ(sub.node(v).opcode, isa::Opcode::kXor);
}

TEST(InducedSubgraph, OutsideProducersBecomeExternInputs) {
  const dfg::Graph g = testing::make_chain(5);
  const dfg::Graph sub = induced_subgraph(g, dfg::NodeSet::of(5, {2, 3}));
  // Node 2's producer (node 1) is outside: one extern input.
  EXPECT_EQ(sub.extern_inputs(0), 1);
  EXPECT_EQ(sub.extern_inputs(1), 0);
}

TEST(InducedSubgraph, EscapingValuesBecomeLiveOut) {
  const dfg::Graph g = testing::make_chain(5);
  const dfg::Graph sub = induced_subgraph(g, dfg::NodeSet::of(5, {1, 2}));
  EXPECT_FALSE(sub.live_out(0));  // node 1 feeds node 2, inside
  EXPECT_TRUE(sub.live_out(1));   // node 2 feeds node 3, outside
}

TEST(InducedSubgraph, KeepsHeadExternInputs) {
  const dfg::Graph g = testing::make_chain(3);  // head has 2 extern inputs
  const dfg::Graph sub = induced_subgraph(g, dfg::NodeSet::of(3, {0, 1}));
  EXPECT_EQ(sub.extern_inputs(0), 2);
}

TEST(InducedSubgraph, DisjointSelection) {
  const dfg::Graph g = testing::make_chain(5);
  const dfg::Graph sub = induced_subgraph(g, dfg::NodeSet::of(5, {0, 4}));
  EXPECT_EQ(sub.num_nodes(), 2u);
  EXPECT_EQ(sub.num_edges(), 0u);
}

}  // namespace
}  // namespace isex::flow
