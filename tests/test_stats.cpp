#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace isex {
namespace {

TEST(Stats, EmptyInput) {
  const Summary s = summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.mean, 0.0);
}

TEST(Stats, SingleValue) {
  const std::vector<double> v = {4.5};
  const Summary s = summarize(v);
  EXPECT_EQ(s.count, 1u);
  EXPECT_DOUBLE_EQ(s.min, 4.5);
  EXPECT_DOUBLE_EQ(s.max, 4.5);
  EXPECT_DOUBLE_EQ(s.mean, 4.5);
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
}

TEST(Stats, PaperHeadlineShape) {
  // The abstract's 1-ISE numbers: max/min/avg = 17.17 / 12.9 / 14.79.
  const std::vector<double> v = {17.17, 12.9, 14.3};
  const Summary s = summarize(v);
  EXPECT_DOUBLE_EQ(s.max, 17.17);
  EXPECT_DOUBLE_EQ(s.min, 12.9);
  EXPECT_NEAR(s.mean, 14.79, 0.01);
}

TEST(Stats, MixedSignValues) {
  const std::vector<double> v = {-2.0, 0.0, 2.0};
  const Summary s = summarize(v);
  EXPECT_DOUBLE_EQ(s.min, -2.0);
  EXPECT_DOUBLE_EQ(s.max, 2.0);
  EXPECT_DOUBLE_EQ(s.mean, 0.0);
  EXPECT_NEAR(s.stddev, 1.63299, 1e-4);
}

TEST(Stats, GeometricMeanBasics) {
  const std::vector<double> v = {1.0, 4.0, 16.0};
  EXPECT_NEAR(geometric_mean(v), 4.0, 1e-9);
}

TEST(Stats, GeometricMeanEmptyIsZero) {
  EXPECT_EQ(geometric_mean({}), 0.0);
}

TEST(Stats, GeometricMeanSingle) {
  const std::vector<double> v = {7.0};
  EXPECT_NEAR(geometric_mean(v), 7.0, 1e-12);
}

}  // namespace
}  // namespace isex
