#include "hwlib/hw_library.hpp"

#include <gtest/gtest.h>

namespace isex::hw {
namespace {

// Table 5.1.1 spot checks: exact delay/area transcriptions.
TEST(HwLibrary, Table511AddFamily) {
  const HwLibrary lib = HwLibrary::paper_default();
  for (const auto op : {isa::Opcode::kAdd, isa::Opcode::kAddi,
                        isa::Opcode::kAddu, isa::Opcode::kAddiu}) {
    const auto opts = lib.hardware_options(op);
    ASSERT_EQ(opts.size(), 2u);
    EXPECT_DOUBLE_EQ(opts[0].delay, 4.04);
    EXPECT_DOUBLE_EQ(opts[0].area, 926.33);
    EXPECT_DOUBLE_EQ(opts[1].delay, 2.12);
    EXPECT_DOUBLE_EQ(opts[1].area, 2075.35);
  }
}

TEST(HwLibrary, Table511SubFamily) {
  const HwLibrary lib = HwLibrary::paper_default();
  const auto opts = lib.hardware_options(isa::Opcode::kSubu);
  ASSERT_EQ(opts.size(), 2u);
  EXPECT_DOUBLE_EQ(opts[1].delay, 2.14);
  EXPECT_DOUBLE_EQ(opts[1].area, 2049.41);
}

TEST(HwLibrary, Table511Multipliers) {
  const HwLibrary lib = HwLibrary::paper_default();
  const auto m = lib.hardware_options(isa::Opcode::kMult);
  ASSERT_EQ(m.size(), 1u);
  EXPECT_DOUBLE_EQ(m[0].delay, 5.77);
  EXPECT_DOUBLE_EQ(m[0].area, 84428.0);
  const auto mu = lib.hardware_options(isa::Opcode::kMultu);
  ASSERT_EQ(mu.size(), 1u);
  EXPECT_DOUBLE_EQ(mu[0].delay, 5.65);
  EXPECT_DOUBLE_EQ(mu[0].area, 79778.1);
}

TEST(HwLibrary, Table511Logic) {
  const HwLibrary lib = HwLibrary::paper_default();
  EXPECT_DOUBLE_EQ(lib.hardware_options(isa::Opcode::kAnd)[0].delay, 1.58);
  EXPECT_DOUBLE_EQ(lib.hardware_options(isa::Opcode::kAnd)[0].area, 214.31);
  EXPECT_DOUBLE_EQ(lib.hardware_options(isa::Opcode::kOr)[0].area, 214.21);
  EXPECT_DOUBLE_EQ(lib.hardware_options(isa::Opcode::kXor)[0].delay, 4.17);
  EXPECT_DOUBLE_EQ(lib.hardware_options(isa::Opcode::kXori)[0].delay, 2.01);
  EXPECT_DOUBLE_EQ(lib.hardware_options(isa::Opcode::kXori)[0].area, 565.14);
  EXPECT_DOUBLE_EQ(lib.hardware_options(isa::Opcode::kNor)[0].delay, 2.00);
}

TEST(HwLibrary, Table511ComparesAndShifts) {
  const HwLibrary lib = HwLibrary::paper_default();
  const auto slt = lib.hardware_options(isa::Opcode::kSltiu);
  ASSERT_EQ(slt.size(), 2u);
  EXPECT_DOUBLE_EQ(slt[0].delay, 2.64);
  EXPECT_DOUBLE_EQ(slt[1].delay, 1.01);
  EXPECT_DOUBLE_EQ(slt[1].area, 2636.0);
  for (const auto op : {isa::Opcode::kSll, isa::Opcode::kSrlv, isa::Opcode::kSrav}) {
    const auto sh = lib.hardware_options(op);
    ASSERT_EQ(sh.size(), 1u);
    EXPECT_DOUBLE_EQ(sh[0].delay, 3.00);
    EXPECT_DOUBLE_EQ(sh[0].area, 400.00);
  }
}

TEST(HwLibrary, MemoryAndBranchHaveNoHardware) {
  const HwLibrary lib = HwLibrary::paper_default();
  EXPECT_FALSE(lib.has_hardware(isa::Opcode::kLw));
  EXPECT_FALSE(lib.has_hardware(isa::Opcode::kSw));
  EXPECT_FALSE(lib.has_hardware(isa::Opcode::kBeq));
  EXPECT_FALSE(lib.has_hardware(isa::Opcode::kDiv));  // not in Table 5.1.1
}

TEST(HwLibrary, MakeIoTablePrependsSoftware) {
  const HwLibrary lib = HwLibrary::paper_default();
  const IoTable t = lib.make_io_table(isa::Opcode::kAddu);
  EXPECT_EQ(t.size(), 3u);
  EXPECT_FALSE(t.is_hardware(0));
  EXPECT_DOUBLE_EQ(t.option(0).delay, 1.0);  // 1-cycle software op
  EXPECT_DOUBLE_EQ(t.option(0).area, 0.0);
  EXPECT_TRUE(t.is_hardware(1));
  EXPECT_TRUE(t.is_hardware(2));
}

TEST(HwLibrary, SetHardwareOptionsOverrides) {
  HwLibrary lib = HwLibrary::paper_default();
  lib.set_hardware_options(isa::Opcode::kXor,
                           {{ImplKind::kHardware, "fast", 1.0, 5000.0}});
  const auto opts = lib.hardware_options(isa::Opcode::kXor);
  ASSERT_EQ(opts.size(), 1u);
  EXPECT_EQ(opts[0].name, "fast");
}

TEST(HwLibrary, ClearingOptionsDisablesHardware) {
  HwLibrary lib = HwLibrary::paper_default();
  lib.set_hardware_options(isa::Opcode::kXor, {});
  EXPECT_FALSE(lib.has_hardware(isa::Opcode::kXor));
  EXPECT_EQ(lib.make_io_table(isa::Opcode::kXor).size(), 1u);
}

TEST(HwLibrary, AllTable511DelaysFitOneCycle) {
  // §5.1: at 100 MHz every single-op hardware cell fits one 10 ns cycle.
  const HwLibrary lib = HwLibrary::paper_default();
  const ClockSpec clock;
  for (std::size_t i = 0; i < isa::kOpcodeCount; ++i) {
    for (const ImplOption& o :
         lib.hardware_options(static_cast<isa::Opcode>(i))) {
      EXPECT_EQ(clock.cycles_for(o.delay), 1) << o.name;
    }
  }
}

}  // namespace
}  // namespace isex::hw
