#include "exec/alu.hpp"

#include <gtest/gtest.h>

namespace isex::exec {
namespace {

using isa::Opcode;

TEST(Alu, AdditionWraps) {
  EXPECT_EQ(apply_alu(Opcode::kAddu, 1, 2), 3u);
  EXPECT_EQ(apply_alu(Opcode::kAdd, 0xFFFFFFFFu, 1), 0u);
  EXPECT_EQ(apply_alu(Opcode::kAddiu, 10, 0xFFFFFFFFu), 9u);  // -1 immediate
}

TEST(Alu, Subtraction) {
  EXPECT_EQ(apply_alu(Opcode::kSubu, 5, 7), 0xFFFFFFFEu);
  EXPECT_EQ(apply_alu(Opcode::kSub, 0, 1), 0xFFFFFFFFu);
}

TEST(Alu, MultiplyLow32) {
  EXPECT_EQ(apply_alu(Opcode::kMult, 7, 6), 42u);
  EXPECT_EQ(apply_alu(Opcode::kMultu, 0x10000u, 0x10000u), 0u);  // overflow
  EXPECT_EQ(apply_alu(Opcode::kMult, 0x01010101u, 0xFFu), 0xFFFFFFFFu);
}

TEST(Alu, DivisionAndDivByZero) {
  EXPECT_EQ(apply_alu(Opcode::kDivu, 42, 5), 8u);
  EXPECT_EQ(apply_alu(Opcode::kDiv, static_cast<std::uint32_t>(-42), 5),
            static_cast<std::uint32_t>(-8));
  EXPECT_EQ(apply_alu(Opcode::kDivu, 1, 0), 0u);
  EXPECT_EQ(apply_alu(Opcode::kDiv, 1, 0), 0u);
}

TEST(Alu, Logic) {
  EXPECT_EQ(apply_alu(Opcode::kAnd, 0b1100, 0b1010), 0b1000u);
  EXPECT_EQ(apply_alu(Opcode::kOr, 0b1100, 0b1010), 0b1110u);
  EXPECT_EQ(apply_alu(Opcode::kXor, 0b1100, 0b1010), 0b0110u);
  EXPECT_EQ(apply_alu(Opcode::kNor, 0, 0), 0xFFFFFFFFu);
  EXPECT_EQ(apply_alu(Opcode::kNor, 0xF0F0F0F0u, 0x0F0F0F0Fu), 0u);
}

TEST(Alu, ShiftsMaskAmountToFiveBits) {
  EXPECT_EQ(apply_alu(Opcode::kSll, 1, 4), 16u);
  EXPECT_EQ(apply_alu(Opcode::kSrl, 0x80000000u, 31), 1u);
  EXPECT_EQ(apply_alu(Opcode::kSllv, 1, 33), 2u);  // 33 & 31 == 1
  EXPECT_EQ(apply_alu(Opcode::kSrlv, 16, 36), 1u);
}

TEST(Alu, ArithmeticShiftSignExtends) {
  EXPECT_EQ(apply_alu(Opcode::kSra, 0x80000000u, 4), 0xF8000000u);
  EXPECT_EQ(apply_alu(Opcode::kSra, 0x40000000u, 4), 0x04000000u);
  EXPECT_EQ(apply_alu(Opcode::kSrav, 0xFFFFFFFFu, 16), 0xFFFFFFFFu);
}

TEST(Alu, SetLessThanSignedVsUnsigned) {
  EXPECT_EQ(apply_alu(Opcode::kSlt, 0xFFFFFFFFu, 0), 1u);   // -1 < 0 signed
  EXPECT_EQ(apply_alu(Opcode::kSltu, 0xFFFFFFFFu, 0), 0u);  // max > 0 unsigned
  EXPECT_EQ(apply_alu(Opcode::kSlti, 3, 7), 1u);
  EXPECT_EQ(apply_alu(Opcode::kSltiu, 7, 3), 0u);
}

TEST(Alu, LuiAndMov) {
  EXPECT_EQ(apply_alu(Opcode::kLui, 0x1234u, 0), 0x12340000u);
  EXPECT_EQ(apply_alu(Opcode::kMov, 99, 12345), 99u);
}

TEST(Alu, DefinednessMatchesCategories) {
  EXPECT_TRUE(alu_defined(Opcode::kAddu));
  EXPECT_TRUE(alu_defined(Opcode::kNor));
  EXPECT_FALSE(alu_defined(Opcode::kLw));
  EXPECT_FALSE(alu_defined(Opcode::kSw));
  EXPECT_FALSE(alu_defined(Opcode::kBeq));
  EXPECT_FALSE(alu_defined(Opcode::kNop));
}

}  // namespace
}  // namespace isex::exec
