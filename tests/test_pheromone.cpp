#include "core/pheromone.hpp"

#include <gtest/gtest.h>

#include "test_util.hpp"

namespace isex::core {
namespace {

class PheromoneTest : public ::testing::Test {
 protected:
  PheromoneTest()
      : graph_(testing::make_chain(3, isa::Opcode::kAddu)),
        lib_(hw::HwLibrary::paper_default()),
        gplus_(graph_, lib_) {}

  dfg::Graph graph_;
  hw::HwLibrary lib_;
  hw::GPlus gplus_;
  ExplorerParams params_;
};

TEST_F(PheromoneTest, InitialValuesFollowParams) {
  const PheromoneState state(gplus_, params_);
  for (dfg::NodeId v = 0; v < 3; ++v) {
    EXPECT_EQ(state.num_options(v), 3u);  // SW + 2 adder HW options
    EXPECT_DOUBLE_EQ(state.trail(v, 0), 0.0);
    EXPECT_DOUBLE_EQ(state.merit(v, 0), 100.0);  // software
    EXPECT_DOUBLE_EQ(state.merit(v, 1), 200.0);  // hardware
    EXPECT_DOUBLE_EQ(state.merit(v, 2), 200.0);
  }
}

TEST_F(PheromoneTest, ImprovedIterationRewardsChosen) {
  PheromoneState state(gplus_, params_);
  const std::vector<int> chosen = {1, 1, 0};
  const std::vector<bool> reordered(3, false);
  state.update_trails(chosen, reordered, /*improved=*/true);
  EXPECT_DOUBLE_EQ(state.trail(0, 1), params_.rho1);
  EXPECT_DOUBLE_EQ(state.trail(0, 0), 0.0);  // clamped at zero
  EXPECT_DOUBLE_EQ(state.trail(2, 0), params_.rho1);
}

TEST_F(PheromoneTest, RegressionPenalizesChosenAndRewardsOthers) {
  PheromoneState state(gplus_, params_);
  const std::vector<int> chosen = {1, 1, 1};
  const std::vector<bool> reordered(3, false);
  state.update_trails(chosen, reordered, true);   // build some trail
  state.update_trails(chosen, reordered, false);  // regress
  EXPECT_DOUBLE_EQ(state.trail(0, 1), params_.rho1 - params_.rho3);
  EXPECT_DOUBLE_EQ(state.trail(0, 0), params_.rho4);  // 0 - rho2 clamp + rho4
}

TEST_F(PheromoneTest, ReorderedOperationsLoseExtraTrail) {
  PheromoneState state(gplus_, params_);
  const std::vector<int> chosen = {0, 0, 0};
  std::vector<bool> reordered = {true, false, false};
  state.update_trails(chosen, reordered, true);  // improved: rho5 not applied
  const double base = state.trail(0, 0);
  EXPECT_DOUBLE_EQ(base, state.trail(1, 0));
  state.update_trails(chosen, reordered, false);  // regression: rho5 applies
  EXPECT_DOUBLE_EQ(state.trail(1, 0) - state.trail(0, 0), params_.rho5);
}

TEST_F(PheromoneTest, TrailClampedToMax) {
  ExplorerParams p;
  p.trail_max = 10.0;
  PheromoneState state(gplus_, p);
  const std::vector<int> chosen = {0, 0, 0};
  const std::vector<bool> reordered(3, false);
  for (int i = 0; i < 100; ++i) state.update_trails(chosen, reordered, true);
  EXPECT_DOUBLE_EQ(state.trail(0, 0), 10.0);
}

TEST_F(PheromoneTest, NormalizeMeritScalesBestToScale) {
  PheromoneState state(gplus_, params_);
  state.set_merit(0, 0, 10.0);
  state.set_merit(0, 1, 40.0);
  state.set_merit(0, 2, 20.0);
  state.normalize_merit(0);
  EXPECT_DOUBLE_EQ(state.merit(0, 1), params_.merit_scale);
  EXPECT_DOUBLE_EQ(state.merit(0, 0), params_.merit_scale / 4.0);
  EXPECT_DOUBLE_EQ(state.merit(0, 2), params_.merit_scale / 2.0);
}

TEST_F(PheromoneTest, NormalizeMeritRecoversFromAllZero) {
  PheromoneState state(gplus_, params_);
  for (std::size_t o = 0; o < 3; ++o) state.set_merit(0, o, 0.0);
  state.normalize_merit(0);
  for (std::size_t o = 0; o < 3; ++o)
    EXPECT_DOUBLE_EQ(state.merit(0, o), params_.merit_scale);
}

TEST_F(PheromoneTest, SelectedProbabilitySumsToOne) {
  PheromoneState state(gplus_, params_);
  const std::vector<int> chosen = {1, 2, 0};
  const std::vector<bool> reordered(3, false);
  state.update_trails(chosen, reordered, true);
  for (dfg::NodeId v = 0; v < 3; ++v) {
    double sum = 0.0;
    for (std::size_t o = 0; o < state.num_options(v); ++o)
      sum += state.selected_probability(v, o);
    EXPECT_NEAR(sum, 1.0, 1e-12);
  }
}

TEST_F(PheromoneTest, ConvergenceReachedWhenMeritConcentrates) {
  PheromoneState state(gplus_, params_);
  EXPECT_FALSE(state.converged());
  for (dfg::NodeId v = 0; v < 3; ++v) {
    state.set_merit(v, 1, 10000.0);
    state.set_merit(v, 0, 1e-9);
    state.set_merit(v, 2, 1e-9);
    state.normalize_merit(v);
  }
  EXPECT_TRUE(state.converged());
  for (dfg::NodeId v = 0; v < 3; ++v) EXPECT_EQ(state.best_option(v), 1u);
}

TEST_F(PheromoneTest, SingleOptionNodesTriviallyConverged) {
  dfg::Graph g;
  g.add_node(isa::Opcode::kLw, "load");  // software-only
  hw::GPlus gp(g, lib_);
  PheromoneState state(gp, params_);
  EXPECT_TRUE(state.converged());
}

TEST_F(PheromoneTest, WeightMixesTrailAndMerit) {
  PheromoneState state(gplus_, params_);
  // weight = α·trail + (1−α)·merit; initially trail = 0.
  EXPECT_DOUBLE_EQ(state.weight(0, 0), 0.75 * 100.0);
  EXPECT_DOUBLE_EQ(state.weight(0, 1), 0.75 * 200.0);
  const std::vector<int> chosen = {0, 0, 0};
  const std::vector<bool> reordered(3, false);
  state.update_trails(chosen, reordered, true);
  EXPECT_DOUBLE_EQ(state.weight(0, 0), 0.25 * params_.rho1 + 0.75 * 100.0);
}

}  // namespace
}  // namespace isex::core
