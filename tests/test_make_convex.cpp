#include "core/make_convex.hpp"

#include <gtest/gtest.h>

#include "test_util.hpp"

namespace isex::core {
namespace {

TEST(MakeConvex, ConvexInputPassesThrough) {
  const dfg::Graph g = testing::make_chain(5);
  const dfg::Reachability r(g);
  const auto pieces = make_convex(g, dfg::NodeSet::of(5, {1, 2, 3}), r);
  ASSERT_EQ(pieces.size(), 1u);
  EXPECT_EQ(pieces[0], dfg::NodeSet::of(5, {1, 2, 3}));
}

TEST(MakeConvex, SplitsAroundHole) {
  // Chain with node 2 missing: {1, 3} is non-convex, split into singletons.
  const dfg::Graph g = testing::make_chain(5);
  const dfg::Reachability r(g);
  const auto pieces = make_convex(g, dfg::NodeSet::of(5, {1, 3}), r);
  ASSERT_EQ(pieces.size(), 2u);
  for (const auto& p : pieces) {
    EXPECT_EQ(p.count(), 1u);
    EXPECT_TRUE(dfg::is_convex(g, p, r));
  }
}

TEST(MakeConvex, DiamondEndsSplit) {
  const dfg::Graph g = testing::make_diamond();
  const dfg::Reachability r(g);
  // {a, d} is non-convex (paths through b and c).
  const auto pieces = make_convex(g, dfg::NodeSet::of(4, {0, 3}), r);
  ASSERT_EQ(pieces.size(), 2u);
}

TEST(MakeConvex, EmptyInput) {
  const dfg::Graph g = testing::make_chain(3);
  const dfg::Reachability r(g);
  EXPECT_TRUE(make_convex(g, dfg::NodeSet(3), r).empty());
}

TEST(MakeConvex, DisconnectedConvexInputSplitsIntoComponents) {
  const dfg::Graph g = testing::make_parallel_pairs(2);
  const dfg::Reachability r(g);
  const auto pieces = make_convex(g, g.all_nodes(), r);
  EXPECT_EQ(pieces.size(), 2u);
}

// Property: output pieces are always convex, connected, disjoint, and cover
// the input.
class MakeConvexProperty : public ::testing::TestWithParam<int> {};

TEST_P(MakeConvexProperty, PiecesAreConvexDisjointCover) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 131);
  const dfg::Graph g = testing::make_random_dag(22, rng);
  const dfg::Reachability r(g);
  for (int trial = 0; trial < 15; ++trial) {
    dfg::NodeSet s(g.num_nodes());
    for (dfg::NodeId v = 0; v < g.num_nodes(); ++v)
      if (rng.next_double() < 0.4) s.insert(v);
    const auto pieces = make_convex(g, s, r);
    dfg::NodeSet united(g.num_nodes());
    std::size_t total = 0;
    for (const auto& p : pieces) {
      EXPECT_TRUE(dfg::is_convex(g, p, r));
      EXPECT_EQ(dfg::weakly_connected_components(g, p).size(), 1u);
      EXPECT_FALSE(united.intersects(p));
      united |= p;
      total += p.count();
    }
    EXPECT_EQ(united, s);
    EXPECT_EQ(total, s.count());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MakeConvexProperty, ::testing::Range(1, 11));

TEST(LegalizePorts, LegalInputUntouched) {
  const dfg::Graph g = testing::make_chain(4);
  const dfg::Reachability r(g);
  isa::IsaFormat fmt;  // 4/2
  const auto pieces =
      legalize_ports(g, dfg::NodeSet::of(4, {1, 2}), fmt, r);
  ASSERT_EQ(pieces.size(), 1u);
  EXPECT_EQ(pieces[0].count(), 2u);
}

TEST(LegalizePorts, TrimsWideFanIn) {
  // x consuming 5 two-extern-input parents: IN far above 4.
  dfg::Graph g;
  const auto x = g.add_node(isa::Opcode::kXor, "x");
  dfg::NodeSet all(0);
  for (int i = 0; i < 5; ++i) {
    const auto p = g.add_node(isa::Opcode::kAnd);
    g.set_extern_inputs(p, 2);
    g.add_edge(p, x);
  }
  g.set_live_out(x, true);
  const dfg::Reachability r(g);
  isa::IsaFormat fmt;  // 4 read ports
  const auto pieces = legalize_ports(g, g.all_nodes(), fmt, r);
  for (const auto& p : pieces) {
    EXPECT_LE(dfg::count_inputs(g, p), fmt.max_ise_inputs());
    EXPECT_LE(dfg::count_outputs(g, p), fmt.max_ise_outputs());
    EXPECT_TRUE(dfg::is_convex(g, p, r));
  }
}

TEST(LegalizePorts, TrimsWideFanOut) {
  // One producer feeding 4 live-out consumers: OUT(all) = 4 > 2.
  dfg::Graph g;
  const auto p = g.add_node(isa::Opcode::kAddu, "p");
  g.set_extern_inputs(p, 2);
  for (int i = 0; i < 4; ++i) {
    const auto c = g.add_node(isa::Opcode::kXor);
    g.add_edge(p, c);
    g.set_live_out(c, true);
  }
  const dfg::Reachability r(g);
  isa::IsaFormat fmt;
  const auto pieces = legalize_ports(g, g.all_nodes(), fmt, r);
  for (const auto& piece : pieces)
    EXPECT_LE(dfg::count_outputs(g, piece), fmt.max_ise_outputs());
}

// Property: legalize_ports output always satisfies every §4.2 constraint.
class LegalizeProperty : public ::testing::TestWithParam<int> {};

TEST_P(LegalizeProperty, OutputsAlwaysLegal) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 733);
  const dfg::Graph g = testing::make_random_dag(20, rng, 0.5);
  const dfg::Reachability r(g);
  isa::IsaFormat fmt;
  fmt.reg_file = {4, 2};
  for (int trial = 0; trial < 10; ++trial) {
    dfg::NodeSet s(g.num_nodes());
    for (dfg::NodeId v = 0; v < g.num_nodes(); ++v)
      if (rng.next_double() < 0.5) s.insert(v);
    for (const auto& piece : legalize_ports(g, s, fmt, r)) {
      EXPECT_TRUE(dfg::is_convex(g, piece, r));
      EXPECT_LE(dfg::count_inputs(g, piece), fmt.max_ise_inputs());
      EXPECT_LE(dfg::count_outputs(g, piece), fmt.max_ise_outputs());
      EXPECT_TRUE(piece.is_subset_of(s));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LegalizeProperty, ::testing::Range(1, 11));

}  // namespace
}  // namespace isex::core
