#include "util/error.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>

namespace isex {
namespace {

TEST(Error, FormatsCodeNameLineAndMessage) {
  const Error e(ErrorCode::kParseUndefinedVariable,
                "live_out of undefined variable 'ghost'", SourceLoc{3, 0});
  EXPECT_EQ(e.to_string(),
            "error E0104 [parse-undefined-variable]: line 3: "
            "live_out of undefined variable 'ghost'");
}

TEST(Error, OmitsLineWhenUnknown) {
  const Error e(ErrorCode::kProgramEmpty, "program 'p' has no basic blocks");
  EXPECT_EQ(e.to_string(),
            "error E0301 [program-empty]: program 'p' has no basic blocks");
}

TEST(Error, WarningSeverityIsVisibleInTheRendering) {
  const Error w(ErrorCode::kConfigOutsidePaperSweep, "register file 12/6",
                SourceLoc{}, Severity::kWarning);
  EXPECT_EQ(w.to_string().rfind("warning ", 0), 0u);
}

TEST(Error, EveryCodeHasAStableName) {
  // A new ErrorCode without a name would render as "unknown" — catch that.
  for (const ErrorCode code : {
           ErrorCode::kParseSyntax, ErrorCode::kParseUnknownMnemonic,
           ErrorCode::kParseRedefinition, ErrorCode::kParseUndefinedVariable,
           ErrorCode::kParseImmediateRange, ErrorCode::kParseEmptyInput,
           ErrorCode::kParseSelfReference, ErrorCode::kParseArity,
           ErrorCode::kGraphCycle, ErrorCode::kGraphDanglingOperand,
           ErrorCode::kGraphAdjacencyCorrupt, ErrorCode::kGraphSelfEdge,
           ErrorCode::kGraphDuplicateEdge, ErrorCode::kGraphArity,
           ErrorCode::kGraphOpcodeIllegal,
           ErrorCode::kGraphLiveInInconsistent,
           ErrorCode::kGraphIseInfoInvalid,
           ErrorCode::kGraphResultlessProducer, ErrorCode::kProgramEmpty,
           ErrorCode::kProgramBlockInvalid, ErrorCode::kProgramExecCount,
           ErrorCode::kFlowParamsInvalid, ErrorCode::kConfigIssueWidth,
           ErrorCode::kConfigPorts, ErrorCode::kConfigFuCounts,
           ErrorCode::kConfigOutsidePaperSweep, ErrorCode::kIoFileNotFound,
           ErrorCode::kIoEmptyFile, ErrorCode::kIoWriteFailed,
       }) {
    EXPECT_NE(error_code_name(code), "unknown")
        << "code " << static_cast<int>(code);
  }
}

TEST(Expected, HoldsValueOrError) {
  const Expected<int> ok = 42;
  ASSERT_TRUE(ok.has_value());
  EXPECT_EQ(*ok, 42);

  const Expected<int> bad = Error(ErrorCode::kIoFileNotFound, "nope");
  ASSERT_FALSE(bad.has_value());
  EXPECT_EQ(bad.error().code(), ErrorCode::kIoFileNotFound);
}

TEST(Expected, MoveOutConsumesTheValue) {
  Expected<std::string> ok = std::string("payload");
  const std::string taken = std::move(ok).value();
  EXPECT_EQ(taken, "payload");
}

TEST(ValidationReport, OkIgnoresWarnings) {
  ValidationReport report;
  EXPECT_TRUE(report.ok());
  EXPECT_TRUE(report.empty());

  report.add(ErrorCode::kConfigOutsidePaperSweep, "outside sweep", {},
             Severity::kWarning);
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.error_count(), 0u);

  report.add(ErrorCode::kGraphCycle, "cycle");
  EXPECT_FALSE(report.ok());
  EXPECT_EQ(report.error_count(), 1u);
  EXPECT_EQ(report.first_error().code(), ErrorCode::kGraphCycle);
}

TEST(ValidationReport, MergePreservesOrder) {
  ValidationReport a;
  a.add(ErrorCode::kGraphCycle, "first");
  ValidationReport b;
  b.add(ErrorCode::kGraphSelfEdge, "second");
  a.merge(std::move(b));
  ASSERT_EQ(a.issues().size(), 2u);
  EXPECT_EQ(a.issues()[0].code(), ErrorCode::kGraphCycle);
  EXPECT_EQ(a.issues()[1].code(), ErrorCode::kGraphSelfEdge);
}

TEST(ValidationReport, ToStringIsOneDiagnosticPerLine) {
  ValidationReport report;
  report.add(ErrorCode::kGraphCycle, "cycle");
  report.add(ErrorCode::kProgramEmpty, "empty");
  const std::string rendered = report.to_string();
  EXPECT_NE(rendered.find("E0201"), std::string::npos);
  EXPECT_NE(rendered.find("E0301"), std::string::npos);
  EXPECT_EQ(std::count(rendered.begin(), rendered.end(), '\n'), 2);
}

TEST(ValidationException, CarriesTheStructuredError) {
  const ValidationException ex(Error(ErrorCode::kProgramEmpty, "no blocks"));
  EXPECT_EQ(ex.error().code(), ErrorCode::kProgramEmpty);
  EXPECT_NE(std::string(ex.what()).find("E0301"), std::string::npos);
}

}  // namespace
}  // namespace isex
