#include "dfg/dot_export.hpp"

#include <gtest/gtest.h>

#include "test_util.hpp"

namespace isex::dfg {
namespace {

TEST(DotExport, EmitsAllNodesAndEdges) {
  const Graph g = testing::make_diamond();
  const std::string dot = to_dot(g);
  EXPECT_NE(dot.find("digraph dfg"), std::string::npos);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    EXPECT_NE(dot.find("n" + std::to_string(v) + " ["), std::string::npos);
  }
  EXPECT_NE(dot.find("n0 -> n1;"), std::string::npos);
  EXPECT_NE(dot.find("n2 -> n3;"), std::string::npos);
}

TEST(DotExport, ShowsMnemonicsAndLabels) {
  Graph g;
  g.add_node(isa::Opcode::kXor, "crc2");
  const std::string dot = to_dot(g);
  EXPECT_NE(dot.find("xor"), std::string::npos);
  EXPECT_NE(dot.find("crc2"), std::string::npos);
}

TEST(DotExport, MarksIoWhenRequested) {
  Graph g;
  const auto v = g.add_node(isa::Opcode::kAddu, "a");
  g.set_extern_inputs(v, 2);
  g.set_live_out(v, true);
  const std::string with_io = to_dot(g);
  EXPECT_NE(with_io.find("in:2"), std::string::npos);
  EXPECT_NE(with_io.find("live-out"), std::string::npos);
  DotOptions opts;
  opts.show_io = false;
  const std::string without_io = to_dot(g, opts);
  EXPECT_EQ(without_io.find("in:2"), std::string::npos);
}

TEST(DotExport, HighlightsGivenSets) {
  const Graph g = testing::make_chain(3);
  std::vector<NodeSet> highlights{NodeSet::of(3, {1})};
  DotOptions opts;
  opts.highlights = highlights;
  const std::string dot = to_dot(g, opts);
  EXPECT_NE(dot.find("fillcolor"), std::string::npos);
}

TEST(DotExport, IseSupernodeRendersSummary) {
  Graph g;
  IseInfo info;
  info.latency_cycles = 2;
  info.member_labels = {"a", "b", "c"};
  g.add_ise_node(info, "ISE");
  const std::string dot = to_dot(g);
  EXPECT_NE(dot.find("ISE(3 ops, 2c)"), std::string::npos);
}

TEST(DotExport, CustomGraphName) {
  const Graph g = testing::make_chain(1);
  DotOptions opts;
  opts.graph_name = "kernel42";
  EXPECT_NE(to_dot(g, opts).find("digraph kernel42"), std::string::npos);
}

}  // namespace
}  // namespace isex::dfg
