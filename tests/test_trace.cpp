// Tests for the observability layer: Tracer/Span event semantics and export
// formats, MetricsRegistry counter/gauge/histogram semantics under
// concurrency (run under TSan in CI), telemetry CSV/JSONL, and the
// DesignFlow stage spans.
#include "trace/trace.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cctype>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_suite/kernels.hpp"
#include "flow/design_flow.hpp"
#include "trace/metrics.hpp"
#include "trace/telemetry.hpp"

namespace isex::trace {
namespace {

// --- minimal JSON syntax checker ------------------------------------------
// Recursive-descent validator: enough JSON to prove the Chrome trace and
// JSONL writers emit well-formed documents (structure, strings, numbers),
// without pulling in a JSON library.
class JsonChecker {
 public:
  explicit JsonChecker(std::string_view text) : text_(text) {}

  bool valid() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == text_.size();
  }

 private:
  bool value() {
    if (pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }

  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == '}') { ++pos_; return true; }
      return false;
    }
  }

  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == ']') { ++pos_; return true; }
      return false;
    }
  }

  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      if (text_[pos_] == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) return false;
      } else if (static_cast<unsigned char>(text_[pos_]) < 0x20) {
        return false;  // raw control character — must be escaped
      }
      ++pos_;
    }
    if (pos_ >= text_.size()) return false;
    ++pos_;  // closing quote
    return true;
  }

  bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-'))
      ++pos_;
    return pos_ > start;
  }

  bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  char peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0)
      ++pos_;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

std::size_t count_occurrences(const std::string& haystack,
                              const std::string& needle) {
  std::size_t n = 0;
  for (std::size_t pos = haystack.find(needle); pos != std::string::npos;
       pos = haystack.find(needle, pos + needle.size()))
    ++n;
  return n;
}

// --- Tracer ---------------------------------------------------------------

TEST(TracerTest, DisabledByDefaultAndRecordsNothing) {
  Tracer tracer;
  EXPECT_FALSE(tracer.enabled());
  tracer.record_instant("ignored");
  tracer.record_counter("ignored", 1.0);
  { const Span span("ignored", tracer); }
  EXPECT_EQ(tracer.num_events(), 0u);
}

TEST(TracerTest, PreservesPerThreadEventOrder) {
  Tracer tracer;
  tracer.set_enabled(true);
  tracer.record_instant("a");
  tracer.record_instant("b");
  tracer.record_counter("c", 3.0);
  const auto events = tracer.snapshot();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].name, "a");
  EXPECT_EQ(events[1].name, "b");
  EXPECT_EQ(events[2].name, "c");
  EXPECT_EQ(events[2].kind, EventKind::kCounter);
  EXPECT_DOUBLE_EQ(events[2].value, 3.0);
  // One thread recorded everything: same tid, monotonic timestamps.
  EXPECT_EQ(events[0].tid, events[1].tid);
  EXPECT_LE(events[0].ts_us, events[1].ts_us);
}

TEST(TracerTest, SpanFlushesOnDrop) {
  Tracer tracer;
  tracer.set_enabled(true);
  {
    const Span span("work", tracer);
    EXPECT_EQ(tracer.num_events(), 0u);  // nothing until the dtor
  }
  const auto events = tracer.snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].name, "work");
  EXPECT_EQ(events[0].kind, EventKind::kSpan);
}

TEST(TracerTest, SpanStartedWhileDisabledIsDropped) {
  Tracer tracer;
  {
    const Span span("late", tracer);
    tracer.set_enabled(true);  // enabling mid-span must not fabricate events
  }
  EXPECT_EQ(tracer.num_events(), 0u);
}

TEST(TracerTest, BuffersSurviveThreadExit) {
  Tracer tracer;
  tracer.set_enabled(true);
  std::thread worker([&] { tracer.record_instant("from_worker"); });
  worker.join();
  tracer.record_instant("from_main");
  const auto events = tracer.snapshot();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_NE(events[0].tid, events[1].tid);
}

TEST(TracerTest, ConcurrentRecordingLosesNothing) {
  constexpr int kThreads = 4;
  constexpr int kPerThread = 1000;
  Tracer tracer;
  tracer.set_enabled(true);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) tracer.record_instant("tick");
    });
  for (auto& t : threads) t.join();
  EXPECT_EQ(tracer.num_events(),
            static_cast<std::size_t>(kThreads) * kPerThread);
}

TEST(TracerTest, DrainEmptiesAndResetRestartsEpoch) {
  Tracer tracer;
  tracer.set_enabled(true);
  tracer.record_instant("one");
  EXPECT_EQ(tracer.drain().size(), 1u);
  EXPECT_EQ(tracer.num_events(), 0u);
  tracer.record_instant("two");
  tracer.reset();
  EXPECT_EQ(tracer.num_events(), 0u);
}

TEST(TracerTest, ChromeTraceIsValidJson) {
  Tracer tracer;
  tracer.set_enabled(true);
  tracer.record_instant("needs \"escaping\"\n");
  tracer.record_counter("aco.iterations", 42.0);
  { const Span span("phase", tracer); }
  std::ostringstream out;
  tracer.write_chrome_trace(out);
  const std::string text = out.str();
  EXPECT_TRUE(JsonChecker(text).valid()) << text;
  EXPECT_NE(text.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(text.find("\"ph\":\"X\""), std::string::npos);  // the span
  EXPECT_NE(text.find("\"ph\":\"C\""), std::string::npos);  // the counter
  EXPECT_NE(text.find("\"ph\":\"i\""), std::string::npos);  // the instant
}

TEST(TracerTest, JsonlLinesAreEachValidJson) {
  Tracer tracer;
  tracer.set_enabled(true);
  tracer.record_instant("a");
  tracer.record_counter("b", 1.5);
  std::ostringstream out;
  tracer.write_jsonl(out);
  std::istringstream lines(out.str());
  std::string line;
  std::size_t n = 0;
  while (std::getline(lines, line)) {
    EXPECT_TRUE(JsonChecker(line).valid()) << line;
    ++n;
  }
  EXPECT_EQ(n, 2u);
}

// --- trace context --------------------------------------------------------

TEST(TracerContextTest, ContextScopeInstallsAndRestores) {
  EXPECT_FALSE(current_context().active());
  {
    const ContextScope outer(TraceContext{7, 3});
    EXPECT_EQ(current_context().trace_id, 7u);
    EXPECT_EQ(current_context().span_id, 3u);
    {
      const ContextScope inner(TraceContext{7, 9});
      EXPECT_EQ(current_context().span_id, 9u);
    }
    EXPECT_EQ(current_context().span_id, 3u);
  }
  EXPECT_FALSE(current_context().active());
}

TEST(TracerContextTest, ExchangeReturnsPreviousContext) {
  const TraceContext before = exchange_current_context(TraceContext{5, 6});
  EXPECT_FALSE(before.active());
  const TraceContext installed = exchange_current_context(before);
  EXPECT_EQ(installed.trace_id, 5u);
  EXPECT_EQ(installed.span_id, 6u);
  EXPECT_FALSE(current_context().active());
}

TEST(TracerContextTest, MintedIdsAreUniqueAcrossThreads) {
  constexpr int kThreads = 4;
  constexpr int kPerThread = 1000;
  std::vector<std::vector<std::uint64_t>> ids(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([t, &ids] {
      for (int i = 0; i < kPerThread; ++i) ids[t].push_back(mint_span_id());
    });
  for (auto& t : threads) t.join();
  std::vector<std::uint64_t> all;
  for (const auto& chunk : ids) all.insert(all.end(), chunk.begin(),
                                           chunk.end());
  std::sort(all.begin(), all.end());
  EXPECT_EQ(std::adjacent_find(all.begin(), all.end()), all.end());
  EXPECT_EQ(std::count(all.begin(), all.end(), 0u), 0);  // ids start at 1
}

TEST(TracerContextTest, NestedSpansShareTraceIdAndParentCorrectly) {
  Tracer tracer;
  tracer.set_enabled(true);
  const std::uint64_t trace_id = mint_trace_id();
  {
    const ContextScope root(TraceContext{trace_id, 0});
    const Span outer("outer", tracer);
    { const Span inner("inner", tracer); }
  }
  const auto events = tracer.snapshot();
  ASSERT_EQ(events.size(), 2u);
  const TraceEvent& inner = events[0];  // destroyed (recorded) first
  const TraceEvent& outer = events[1];
  EXPECT_EQ(inner.name, "inner");
  EXPECT_EQ(outer.name, "outer");
  EXPECT_EQ(outer.trace_id, trace_id);
  EXPECT_EQ(inner.trace_id, trace_id);
  EXPECT_NE(outer.span_id, 0u);
  EXPECT_NE(inner.span_id, 0u);
  EXPECT_NE(inner.span_id, outer.span_id);
  EXPECT_EQ(inner.parent_id, outer.span_id);  // inner nests under outer
  EXPECT_EQ(outer.parent_id, 0u);             // outer is the trace root
}

TEST(TracerContextTest, SpanRestoresContextAfterDestruction) {
  Tracer tracer;
  tracer.set_enabled(true);
  const ContextScope root(TraceContext{11, 22});
  {
    const Span span("child", tracer);
    EXPECT_EQ(current_context().trace_id, 11u);
    EXPECT_NE(current_context().span_id, 22u);  // span installed its own id
  }
  EXPECT_EQ(current_context().span_id, 22u);
}

TEST(TracerContextTest, DisabledTracerLeavesContextUntouched) {
  Tracer tracer;  // disabled
  const ContextScope root(TraceContext{11, 22});
  {
    const Span span("child", tracer);
    EXPECT_EQ(current_context().span_id, 22u);  // no id minted, no install
  }
  EXPECT_EQ(tracer.num_events(), 0u);
}

TEST(TracerContextTest, ChromeTraceExportsContextIdsAsArgs) {
  Tracer tracer;
  tracer.set_enabled(true);
  tracer.record_span("plain", 0, 5);  // no context: must not emit args
  tracer.record_span("tagged", 0, 5, /*trace_id=*/3, /*span_id=*/4,
                     /*parent_id=*/0);
  std::ostringstream out;
  tracer.write_chrome_trace(out);
  const std::string text = out.str();
  EXPECT_TRUE(JsonChecker(text).valid()) << text;
  EXPECT_NE(text.find("\"args\":{\"trace_id\":3,\"span_id\":4,"
                      "\"parent_span_id\":0}"),
            std::string::npos)
      << text;
  EXPECT_EQ(count_occurrences(text, "\"args\""), 1u);  // only the tagged one
}

TEST(TracerContextTest, JsonlExportsContextIds) {
  Tracer tracer;
  tracer.set_enabled(true);
  tracer.record_span("tagged", 0, 5, 3, 4, 2);
  std::ostringstream out;
  tracer.write_jsonl(out);
  const std::string line = out.str();
  EXPECT_NE(line.find("\"trace_id\":3"), std::string::npos) << line;
  EXPECT_NE(line.find("\"span_id\":4"), std::string::npos) << line;
  EXPECT_NE(line.find("\"parent_span_id\":2"), std::string::npos) << line;
}

TEST(JsonEscapeTest, EscapesQuotesBackslashesAndControls) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json_escape("a\nb"), "a\\nb");
  EXPECT_EQ(json_escape(std::string_view("a\x01z", 3)), "a\\u0001z");
}

// --- metrics --------------------------------------------------------------

TEST(MetricsTest, RegistryInternsSeriesByNameAndLabels) {
  MetricsRegistry registry;
  Counter& a = registry.counter("jobs_total");
  Counter& b = registry.counter("jobs_total");
  EXPECT_EQ(&a, &b);
  Counter& labeled = registry.counter("jobs_total", {{"pool", "p0"}});
  EXPECT_NE(&a, &labeled);
  // Label order must not matter.
  Gauge& g1 = registry.gauge("g", {{"x", "1"}, {"y", "2"}});
  Gauge& g2 = registry.gauge("g", {{"y", "2"}, {"x", "1"}});
  EXPECT_EQ(&g1, &g2);
  EXPECT_EQ(registry.num_series(), 3u);
}

TEST(MetricsTest, ConcurrentFirstUseRegistrationIsSafe) {
  // Pool workers race on the first use of a series (AntWalk's ctor inside
  // parallel explores); lookup and payload creation must be one atomic step.
  MetricsRegistry registry;
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&] {
      registry.counter("c_total").inc();
      registry.histogram("h", {1.0, 2.0}).observe(1.0);
      registry.gauge("g").add(1.0);
    });
  for (auto& t : threads) t.join();
  EXPECT_DOUBLE_EQ(registry.counter("c_total").value(), kThreads);
  EXPECT_EQ(registry.histogram("h", {1.0, 2.0}).count(),
            static_cast<std::uint64_t>(kThreads));
  EXPECT_EQ(registry.num_series(), 3u);
}

TEST(MetricsTest, ConcurrentCounterIncrementsAreExact) {
  MetricsRegistry registry;
  Counter& counter = registry.counter("hits_total");
  constexpr int kThreads = 4;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) counter.inc();
    });
  for (auto& t : threads) t.join();
  EXPECT_DOUBLE_EQ(counter.value(), kThreads * kPerThread);
}

TEST(MetricsTest, ConcurrentHistogramObservationsAreExact) {
  MetricsRegistry registry;
  Histogram& hist = registry.histogram("lat", {1.0, 10.0, 100.0});
  constexpr int kThreads = 4;
  constexpr int kPerThread = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([t, &hist] {
      for (int i = 0; i < kPerThread; ++i)
        hist.observe(static_cast<double>((t * kPerThread + i) % 200));
    });
  for (auto& t : threads) t.join();
  EXPECT_EQ(hist.count(), static_cast<std::uint64_t>(kThreads) * kPerThread);
  std::uint64_t binned = 0;
  for (const std::uint64_t c : hist.bin_counts()) binned += c;
  EXPECT_EQ(binned, hist.count());
}

TEST(MetricsTest, SnapshotUnderConcurrentMutationIsCoherent) {
  // /metrics and /statusz render while workers are mid-job: the exposition
  // must stay parseable and histogram invariants (buckets cumulative,
  // +Inf == count) must hold in every snapshot, not just quiescent ones.
  MetricsRegistry registry;
  Histogram& hist = registry.histogram("inflight_lat", {1.0, 10.0, 100.0});
  Counter& counter = registry.counter("inflight_total");
  std::atomic<bool> stop{false};
  constexpr int kMutators = 3;
  std::vector<std::thread> threads;
  for (int t = 0; t < kMutators; ++t)
    threads.emplace_back([t, &stop, &hist, &counter] {
      for (int i = 0; !stop.load(std::memory_order_relaxed); ++i) {
        hist.observe(static_cast<double>((t + i) % 200));
        counter.inc();
      }
    });
  for (int snap = 0; snap < 50; ++snap) {
    std::ostringstream out;
    registry.write_prometheus(out);
    const std::string text = out.str();
    // Bucket lines must be cumulative and count/sum present in each render.
    std::uint64_t previous = 0;
    std::istringstream lines(text);
    std::string line;
    bool saw_bucket = false;
    while (std::getline(lines, line)) {
      if (line.rfind("inflight_lat_bucket", 0) != 0) continue;
      const std::uint64_t value =
          std::stoull(line.substr(line.rfind(' ') + 1));
      EXPECT_GE(value, previous) << text;
      previous = value;
      saw_bucket = true;
    }
    EXPECT_TRUE(saw_bucket) << text;
  }
  stop.store(true, std::memory_order_relaxed);
  for (auto& t : threads) t.join();
  // Quiescent totals are exact: the final snapshot agrees with the bins.
  std::uint64_t binned = 0;
  for (const std::uint64_t c : hist.bin_counts()) binned += c;
  EXPECT_EQ(binned, hist.count());
  EXPECT_DOUBLE_EQ(counter.value(), static_cast<double>(hist.count()));
}

TEST(MetricsTest, HistogramBinsAreCumulativeInPrometheusOutput) {
  MetricsRegistry registry;
  Histogram& hist = registry.histogram("tet_cycles", {2.0, 4.0, 8.0});
  for (const double v : {1.0, 3.0, 3.0, 7.0, 100.0}) hist.observe(v);
  std::ostringstream out;
  registry.write_prometheus(out);
  const std::string text = out.str();
  EXPECT_NE(text.find("# TYPE tet_cycles histogram"), std::string::npos);
  EXPECT_NE(text.find("tet_cycles_bucket{le=\"2\"} 1"), std::string::npos);
  EXPECT_NE(text.find("tet_cycles_bucket{le=\"4\"} 3"), std::string::npos);
  EXPECT_NE(text.find("tet_cycles_bucket{le=\"8\"} 4"), std::string::npos);
  EXPECT_NE(text.find("tet_cycles_bucket{le=\"+Inf\"} 5"), std::string::npos);
  EXPECT_NE(text.find("tet_cycles_count 5"), std::string::npos);
  EXPECT_NE(text.find("tet_cycles_sum 114"), std::string::npos);
}

TEST(MetricsTest, PrometheusOutputIsSortedWithOneTypeLinePerFamily) {
  MetricsRegistry registry;
  registry.counter("zz_total").inc();
  registry.gauge("aa").set(1.0);
  registry.counter("mm_total", {{"stage", "b"}}).inc();
  registry.counter("mm_total", {{"stage", "a"}}).inc(2.0);
  std::ostringstream out;
  registry.write_prometheus(out);
  const std::string text = out.str();
  EXPECT_LT(text.find("aa"), text.find("mm_total"));
  EXPECT_LT(text.find("mm_total"), text.find("zz_total"));
  EXPECT_LT(text.find("mm_total{stage=\"a\"} 2"),
            text.find("mm_total{stage=\"b\"} 1"));
  EXPECT_EQ(count_occurrences(text, "# TYPE mm_total counter"), 1u);
}

TEST(MetricsTest, ResetZeroesEverySeries) {
  MetricsRegistry registry;
  registry.counter("c").inc(5.0);
  registry.gauge("g").set(2.0);
  registry.histogram("h", {1.0}).observe(3.0);
  registry.reset();
  EXPECT_DOUBLE_EQ(registry.counter("c").value(), 0.0);
  EXPECT_DOUBLE_EQ(registry.gauge("g").value(), 0.0);
  EXPECT_EQ(registry.histogram("h", {1.0}).count(), 0u);
}

// --- telemetry ------------------------------------------------------------

ConvergencePoint make_point(int round, int iteration, int tet) {
  ConvergencePoint p;
  p.round = round;
  p.iteration = iteration;
  p.tet = tet;
  p.best_tet = tet;
  p.worst_tet = tet + 2;
  p.mean_tet = tet + 1.0;
  p.converged_fraction = 0.5;
  p.entropy = 0.25;
  p.max_option_probability = 0.75;
  p.p_end = 0.99;
  p.ants = iteration + 1;
  p.cache_hit_rate = 0.125;
  return p;
}

TEST(TelemetryTest, CsvHasHeaderAndOneRowPerPoint) {
  ExplorationTelemetry telemetry;
  telemetry.record(make_point(0, 0, 19));
  telemetry.record(make_point(0, 1, 17));
  std::ostringstream out;
  telemetry.write_csv(out);
  std::istringstream lines(out.str());
  std::string line;
  ASSERT_TRUE(std::getline(lines, line));
  EXPECT_EQ(line, ExplorationTelemetry::csv_header());
  EXPECT_EQ(static_cast<std::size_t>(
                std::count(line.begin(), line.end(), ',')),
            12u);  // 13 columns
  std::size_t rows = 0;
  while (std::getline(lines, line)) {
    EXPECT_EQ(std::count(line.begin(), line.end(), ','), 12);
    ++rows;
  }
  EXPECT_EQ(rows, telemetry.size());
}

TEST(TelemetryTest, JsonlRowsAreValidJson) {
  const std::vector<ConvergencePoint> points = {make_point(1, 3, 12)};
  std::ostringstream out;
  ExplorationTelemetry::write_jsonl(out, points);
  std::istringstream lines(out.str());
  std::string line;
  ASSERT_TRUE(std::getline(lines, line));
  EXPECT_TRUE(JsonChecker(line).valid()) << line;
  EXPECT_NE(line.find("\"round\":1"), std::string::npos);
  EXPECT_NE(line.find("\"tet\":12"), std::string::npos);
}

TEST(TelemetryTest, ConcurrentRecordKeepsEveryPoint) {
  ExplorationTelemetry telemetry;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 500;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([t, &telemetry] {
      for (int i = 0; i < kPerThread; ++i)
        telemetry.record(make_point(t, i, 10));
    });
  for (auto& t : threads) t.join();
  EXPECT_EQ(telemetry.size(),
            static_cast<std::size_t>(kThreads) * kPerThread);
}

// --- integration ----------------------------------------------------------

TEST(DesignFlowTraceTest, StageSpansAppear) {
  Tracer& tracer = Tracer::global();
  tracer.reset();
  tracer.set_enabled(true);
  const auto program = bench_suite::make_program(
      bench_suite::Benchmark::kCrc32, bench_suite::OptLevel::kO3);
  flow::FlowConfig config;
  config.machine = sched::MachineConfig::make(2, {6, 3});
  config.repeats = 2;
  config.seed = 99;
  flow::run_design_flow(program, hw::HwLibrary::paper_default(), config);
  tracer.set_enabled(false);
  const auto events = tracer.snapshot();
  tracer.reset();

  const auto has_span = [&](std::string_view name) {
    return std::any_of(events.begin(), events.end(), [&](const TraceEvent& e) {
      return e.kind == EventKind::kSpan && e.name == name;
    });
  };
  EXPECT_TRUE(has_span("stage:profiling"));
  EXPECT_TRUE(has_span("stage:exploration"));
  EXPECT_TRUE(has_span("stage:selection"));
  EXPECT_TRUE(has_span("stage:replacement"));
  EXPECT_TRUE(has_span("mi_explore"));
  EXPECT_TRUE(has_span("ant_walk"));
}

}  // namespace
}  // namespace isex::trace
