#include "hwlib/asfu.hpp"

#include <gtest/gtest.h>

#include "test_util.hpp"

namespace isex::hw {
namespace {

class AsfuTest : public ::testing::Test {
 protected:
  HwLibrary lib_ = HwLibrary::paper_default();
};

TEST_F(AsfuTest, ChainDepthIsSumOfDelays) {
  // Three chained and-gates on HW-1 (1.58 ns each): depth 4.74, 1 cycle.
  const dfg::Graph g = testing::make_chain(3, isa::Opcode::kAnd);
  const GPlus gp(g, lib_);
  std::vector<int> chosen(3, 1);  // option 1 = HW-1
  const AsfuEvaluation e = evaluate_asfu(gp, g.all_nodes(), chosen);
  EXPECT_NEAR(e.depth_ns, 4.74, 1e-9);
  EXPECT_EQ(e.latency_cycles, 1);
  EXPECT_NEAR(e.area, 3 * 214.31, 1e-9);
}

TEST_F(AsfuTest, ParallelMembersShareDepth) {
  const dfg::Graph g = testing::make_parallel_pairs(2, isa::Opcode::kAnd);
  const GPlus gp(g, lib_);
  std::vector<int> chosen(4, 1);
  const AsfuEvaluation e = evaluate_asfu(gp, g.all_nodes(), chosen);
  EXPECT_NEAR(e.depth_ns, 2 * 1.58, 1e-9);  // two 2-deep lanes in parallel
  EXPECT_NEAR(e.area, 4 * 214.31, 1e-9);    // area still sums
}

TEST_F(AsfuTest, LongChainNeedsTwoCycles) {
  // Three chained slow adders: 3 × 4.04 = 12.12 ns > 10 ns.
  const dfg::Graph g = testing::make_chain(3, isa::Opcode::kAddu);
  const GPlus gp(g, lib_);
  std::vector<int> chosen(3, 1);  // HW-1 = 4.04 ns
  const AsfuEvaluation e = evaluate_asfu(gp, g.all_nodes(), chosen);
  EXPECT_NEAR(e.depth_ns, 12.12, 1e-9);
  EXPECT_EQ(e.latency_cycles, 2);
}

TEST_F(AsfuTest, FasterOptionBuysBackTheCycle) {
  const dfg::Graph g = testing::make_chain(3, isa::Opcode::kAddu);
  const GPlus gp(g, lib_);
  std::vector<int> chosen(3, 2);  // HW-2 = 2.12 ns
  const AsfuEvaluation e = evaluate_asfu(gp, g.all_nodes(), chosen);
  EXPECT_NEAR(e.depth_ns, 6.36, 1e-9);
  EXPECT_EQ(e.latency_cycles, 1);
  EXPECT_GT(e.area, 3 * 926.33);  // faster adders cost more area
}

TEST_F(AsfuTest, SubsetEvaluationIgnoresOutsiders) {
  const dfg::Graph g = testing::make_chain(4, isa::Opcode::kAnd);
  const GPlus gp(g, lib_);
  std::vector<int> chosen(4, 1);
  const AsfuEvaluation e =
      evaluate_asfu(gp, dfg::NodeSet::of(4, {1, 2}), chosen);
  EXPECT_NEAR(e.depth_ns, 2 * 1.58, 1e-9);
  EXPECT_NEAR(e.area, 2 * 214.31, 1e-9);
}

TEST_F(AsfuTest, MixedOptionsPerMember) {
  dfg::Graph g;
  const auto a = g.add_node(isa::Opcode::kAddu, "a");  // HW-2 (2.12)
  const auto b = g.add_node(isa::Opcode::kXor, "b");   // HW-1 (4.17)
  g.add_edge(a, b);
  const GPlus gp(g, lib_);
  std::vector<int> chosen = {2, 1};
  const AsfuEvaluation e = evaluate_asfu(gp, g.all_nodes(), chosen);
  EXPECT_NEAR(e.depth_ns, 2.12 + 4.17, 1e-9);
  EXPECT_NEAR(e.area, 2075.35 + 375.1, 1e-9);
}

TEST_F(AsfuTest, CustomClock) {
  const dfg::Graph g = testing::make_chain(2, isa::Opcode::kXor);
  const GPlus gp(g, lib_);
  std::vector<int> chosen(2, 1);
  ClockSpec fast;
  fast.period_ns = 5.0;  // 200 MHz
  const AsfuEvaluation e = evaluate_asfu(gp, g.all_nodes(), chosen, fast);
  EXPECT_NEAR(e.depth_ns, 8.34, 1e-9);
  EXPECT_EQ(e.latency_cycles, 2);
}

}  // namespace
}  // namespace isex::hw
