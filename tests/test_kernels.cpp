#include "bench_suite/kernels.hpp"

#include <gtest/gtest.h>

#include "flow/profiling.hpp"
#include "isa/opcode.hpp"

namespace isex::bench_suite {
namespace {

TEST(Kernels, AllBenchmarksListed) {
  EXPECT_EQ(all_benchmarks().size(), 7u);
}

TEST(Kernels, NamesMatchPaper) {
  EXPECT_EQ(name(Benchmark::kCrc32), "CRC32");
  EXPECT_EQ(name(Benchmark::kBlowfish), "blowfish");
  EXPECT_EQ(name(OptLevel::kO0), "O0");
  EXPECT_EQ(name(OptLevel::kO3), "O3");
}

// Structural sanity over the full (benchmark × flavor) matrix.
class KernelMatrix
    : public ::testing::TestWithParam<std::tuple<Benchmark, OptLevel>> {};

TEST_P(KernelMatrix, BlocksAreWellFormed) {
  const auto [benchmark, level] = GetParam();
  const flow::ProfiledProgram p = make_program(benchmark, level);
  EXPECT_FALSE(p.blocks.empty());
  EXPECT_FALSE(p.name.empty());
  for (const auto& block : p.blocks) {
    EXPECT_FALSE(block.name.empty());
    EXPECT_GT(block.exec_count, 0u);
    EXPECT_GT(block.graph.num_nodes(), 0u);
    EXPECT_TRUE(block.graph.is_acyclic());
  }
}

TEST_P(KernelMatrix, HasHotBlockSkew) {
  // Fig 5.2.3's premise: most execution time in few blocks.
  const auto [benchmark, level] = GetParam();
  const flow::ProfiledProgram p = make_program(benchmark, level);
  const auto costs =
      flow::profile_blocks(p, sched::MachineConfig::make(2, {6, 3}));
  ASSERT_FALSE(costs.empty());
  EXPECT_GT(costs[0].time_share, 0.25);
}

TEST_P(KernelMatrix, ContainsIseEligibleWork) {
  const auto [benchmark, level] = GetParam();
  const flow::ProfiledProgram p = make_program(benchmark, level);
  std::size_t eligible = 0;
  std::size_t total = 0;
  for (const auto& block : p.blocks) {
    for (dfg::NodeId v = 0; v < block.graph.num_nodes(); ++v) {
      ++total;
      if (isa::ise_eligible(block.graph.node(v).opcode)) ++eligible;
    }
  }
  EXPECT_GT(eligible * 2, total);  // majority of ops are candidates
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, KernelMatrix,
    ::testing::Combine(::testing::ValuesIn(all_benchmarks()),
                       ::testing::Values(OptLevel::kO0, OptLevel::kO3)));

TEST(Kernels, O3BlocksAreBiggerThanO0) {
  // The unrolled flavor must have a larger maximal block (search space).
  for (const Benchmark b : all_benchmarks()) {
    std::size_t max_o0 = 0;
    std::size_t max_o3 = 0;
    for (const auto& blk : make_program(b, OptLevel::kO0).blocks)
      max_o0 = std::max(max_o0, blk.graph.num_nodes());
    for (const auto& blk : make_program(b, OptLevel::kO3).blocks)
      max_o3 = std::max(max_o3, blk.graph.num_nodes());
    EXPECT_GT(max_o3, max_o0) << name(b);
  }
}

TEST(Kernels, BlowfishAndDijkstraCarryLoads) {
  // Their kernels are defined by the memory wall.
  for (const Benchmark b : {Benchmark::kBlowfish, Benchmark::kDijkstra}) {
    const auto p = make_program(b, OptLevel::kO3);
    bool any_load = false;
    for (const auto& blk : p.blocks)
      for (dfg::NodeId v = 0; v < blk.graph.num_nodes(); ++v)
        any_load = any_load || isa::is_load(blk.graph.node(v).opcode);
    EXPECT_TRUE(any_load) << name(b);
  }
}

TEST(Kernels, DeterministicConstruction) {
  const auto a = make_program(Benchmark::kFft, OptLevel::kO3);
  const auto b = make_program(Benchmark::kFft, OptLevel::kO3);
  ASSERT_EQ(a.blocks.size(), b.blocks.size());
  for (std::size_t i = 0; i < a.blocks.size(); ++i) {
    EXPECT_EQ(a.blocks[i].graph.num_nodes(), b.blocks[i].graph.num_nodes());
    EXPECT_EQ(a.blocks[i].graph.num_edges(), b.blocks[i].graph.num_edges());
    EXPECT_EQ(a.blocks[i].exec_count, b.blocks[i].exec_count);
  }
}

}  // namespace
}  // namespace isex::bench_suite
