// Memory-hierarchy cost model tests (docs/MEMORY.md): config parsing and
// validation, LRU cache behaviour, deterministic access-stream derivation,
// null-model digest identity, thread-count independence, and the pinned
// memory-bound kernel whose ISE outcome the model changes.
#include "mem/cache_model.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "bench_suite/kernels.hpp"
#include "flow/design_flow.hpp"
#include "flow/validate.hpp"
#include "isa/tac_parser.hpp"
#include "mem/mem_stream.hpp"
#include "runtime/hash.hpp"

namespace isex::mem {
namespace {

TEST(CacheModelConfig, EmptySpecYieldsDefaults) {
  const Expected<CacheConfig> parsed = parse_cache_config("");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, CacheConfig{});
}

TEST(CacheModelConfig, ParsesSizesWaysAndSuffixes) {
  const Expected<CacheConfig> parsed = parse_cache_config(
      "l1_size=1k,l1_ways=1,l1_line=16,l1_hit=2,l2_size=32K,l2_ways=4,"
      "l2_line=64,l2_hit=10,mem=80,iters=4");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->l1.size_bytes, 1024);
  EXPECT_EQ(parsed->l1.ways, 1);
  EXPECT_EQ(parsed->l1.line_bytes, 16);
  EXPECT_EQ(parsed->l1.hit_latency, 2);
  EXPECT_EQ(parsed->l2.size_bytes, 32768);
  EXPECT_EQ(parsed->l2.ways, 4);
  EXPECT_EQ(parsed->l2.line_bytes, 64);
  EXPECT_EQ(parsed->l2.hit_latency, 10);
  EXPECT_EQ(parsed->mem_latency, 80);
  EXPECT_EQ(parsed->iterations, 4);
}

TEST(CacheModelConfig, LabelRoundTrips) {
  const Expected<CacheConfig> parsed =
      parse_cache_config("l1_size=2k,l1_ways=2,l1_line=16,l2_size=8k,mem=25");
  ASSERT_TRUE(parsed.has_value());
  const Expected<CacheConfig> again = parse_cache_config(parsed->label());
  ASSERT_TRUE(again.has_value());
  EXPECT_EQ(*again, *parsed);
}

TEST(CacheModelConfig, RejectsSyntaxDefects) {
  for (const char* spec :
       {"l1_size", "l1_size=", "bogus=4", "l1_size=4k,l1_size=8k",
        "l1_ways=two", "l1_size=4q", ",", "l1_size=4k,,l1_ways=2"}) {
    const Expected<CacheConfig> parsed = parse_cache_config(spec);
    ASSERT_FALSE(parsed.has_value()) << spec;
    EXPECT_EQ(parsed.error().code(), ErrorCode::kCacheConfigSyntax) << spec;
  }
}

TEST(CacheModelConfig, RejectsNonPowerOfTwoLineSize) {
  const Expected<CacheConfig> parsed = parse_cache_config("l1_line=48");
  ASSERT_FALSE(parsed.has_value());
  EXPECT_EQ(parsed.error().code(), ErrorCode::kCacheGeometry);
}

TEST(CacheModelConfig, RejectsZeroWays) {
  const Expected<CacheConfig> parsed = parse_cache_config("l2_ways=0");
  ASSERT_FALSE(parsed.has_value());
  EXPECT_EQ(parsed.error().code(), ErrorCode::kCacheGeometry);
}

TEST(CacheModelConfig, RejectsCapacityNotDecomposing) {
  // 3 KiB cannot form a power-of-two number of 2-way 32-byte sets.
  const Expected<CacheConfig> parsed = parse_cache_config("l1_size=3k");
  ASSERT_FALSE(parsed.has_value());
  EXPECT_EQ(parsed.error().code(), ErrorCode::kCacheGeometry);
}

TEST(CacheModelConfig, RejectsZeroLatency) {
  const Expected<CacheConfig> parsed = parse_cache_config("mem=0");
  ASSERT_FALSE(parsed.has_value());
  EXPECT_EQ(parsed.error().code(), ErrorCode::kCacheLatency);
}

TEST(CacheModelConfig, RejectsL2LineBelowL1Line) {
  const Expected<CacheConfig> parsed =
      parse_cache_config("l1_line=64,l2_line=32");
  ASSERT_FALSE(parsed.has_value());
  EXPECT_EQ(parsed.error().code(), ErrorCode::kCacheHierarchy);
}

TEST(CacheModelConfig, RejectsIterationRange) {
  const Expected<CacheConfig> parsed = parse_cache_config("iters=2000");
  ASSERT_FALSE(parsed.has_value());
  EXPECT_EQ(parsed.error().code(), ErrorCode::kCacheConfigSyntax);
}

TEST(CacheModelConfig, WarnsOnInvertedLatencyOrder) {
  CacheConfig config;
  config.l1.hit_latency = 10;
  config.l2.hit_latency = 2;
  const ValidationReport report = validate(config);
  EXPECT_TRUE(report.ok());  // warning, not error
  EXPECT_FALSE(report.issues().empty());
}

TEST(CacheModelConfig, FingerprintSeparatesGeometries) {
  const CacheConfig a;
  CacheConfig b;
  b.l1.ways = 4;
  CacheConfig c;
  c.mem_latency = 41;
  EXPECT_EQ(fingerprint(a, 7), fingerprint(CacheConfig{}, 7));
  EXPECT_NE(fingerprint(a, 7), fingerprint(b, 7));
  EXPECT_NE(fingerprint(a, 7), fingerprint(c, 7));
  EXPECT_NE(fingerprint(a, 7), fingerprint(a, 8));
}

TEST(CacheModelSim, HitAfterFillAndLatencies) {
  const Expected<CacheConfig> config = parse_cache_config(
      "l1_size=1k,l1_ways=2,l1_line=32,l1_hit=1,l2_size=4k,l2_ways=2,"
      "l2_line=32,l2_hit=8,mem=40");
  ASSERT_TRUE(config.has_value());
  CacheModel model(*config);
  EXPECT_EQ(model.access(0x1000, 4), 40);  // compulsory miss
  EXPECT_EQ(model.access(0x1000, 4), 1);   // L1 hit
  EXPECT_EQ(model.access(0x101c, 4), 1);   // same 32-byte line
  EXPECT_EQ(model.access(0x1020, 4), 40);  // next line, fresh miss
  EXPECT_EQ(model.stats().accesses, 4u);
  EXPECT_EQ(model.stats().l1_hits, 2u);
  EXPECT_EQ(model.stats().mem_accesses, 2u);
}

TEST(CacheModelSim, LruEvictsOldestWay) {
  // Direct-mapped 2-set L1 (ways=1): two lines mapping to one set thrash,
  // but the 4-way L2 holds both, so the re-access hits L2, not memory.
  const Expected<CacheConfig> config = parse_cache_config(
      "l1_size=64,l1_ways=1,l1_line=32,l1_hit=1,l2_size=4k,l2_ways=4,"
      "l2_line=32,l2_hit=8,mem=40");
  ASSERT_TRUE(config.has_value());
  CacheModel model(*config);
  EXPECT_EQ(model.access(0x0, 4), 40);    // set 0 <- line A
  EXPECT_EQ(model.access(0x40, 4), 40);   // set 0 <- line B evicts A
  EXPECT_EQ(model.access(0x0, 4), 8);     // A gone from L1, still in L2
  EXPECT_EQ(model.access(0x40, 4), 8);    // B likewise
}

TEST(CacheModelSim, TwoWaySetKeepsBothLines) {
  const Expected<CacheConfig> config = parse_cache_config(
      "l1_size=128,l1_ways=2,l1_line=32,l1_hit=1,l2_size=4k,l2_ways=4,"
      "l2_line=32,l2_hit=8,mem=40");
  ASSERT_TRUE(config.has_value());
  CacheModel model(*config);
  model.access(0x0, 4);                  // set 0 way 0
  model.access(0x40, 4);                 // set 0 way 1
  EXPECT_EQ(model.access(0x0, 4), 1);    // both resident
  EXPECT_EQ(model.access(0x40, 4), 1);
}

TEST(CacheModelSim, StraddlingAccessCostsSlowestLine) {
  // 32-byte lines at BOTH levels so the second line is cold everywhere.
  const Expected<CacheConfig> config = parse_cache_config(
      "l1_size=1k,l1_ways=2,l1_line=32,l1_hit=1,l2_size=4k,l2_ways=2,"
      "l2_line=32,l2_hit=8,mem=40");
  ASSERT_TRUE(config.has_value());
  CacheModel model(*config);
  model.access(0x0, 4);                    // first line resident
  EXPECT_EQ(model.access(0x1e, 4), 40);    // straddles into a cold line
}

TEST(CacheModelSim, FlushDropsLinesKeepsStats) {
  CacheModel model(CacheConfig{});
  model.access(0x0, 4);
  model.access(0x0, 4);
  const std::uint64_t before = model.stats().accesses;
  model.flush();
  EXPECT_EQ(model.stats().accesses, before);
  EXPECT_EQ(model.access(0x0, 4), CacheConfig{}.mem_latency);  // cold again
}

// --- access-stream derivation + annotation -------------------------------

isa::ParsedBlock parse(std::string_view tac) {
  Expected<isa::ParsedBlock> parsed = isa::parse_tac_checked(tac);
  EXPECT_TRUE(parsed.has_value());
  return std::move(parsed).value();
}

constexpr std::string_view kLoadStoreKernel = R"(a = lw [p]
b = lh [q]
c = lbu [r]
s = addu a, b
t = xor s, c
sw [p], t
sh [q], 0x7fff
sb [r], 255
)";

TEST(MemStream, DerivesOnePerMemoryOp) {
  const isa::ParsedBlock block = parse(kLoadStoreKernel);
  const std::vector<MemOp> stream =
      derive_mem_stream(block.graph, CacheConfig{});
  EXPECT_EQ(stream.size(), 6u);  // 3 loads + 3 stores
  int stores = 0;
  for (const MemOp& op : stream) {
    EXPECT_GE(op.width, 1);
    EXPECT_LE(op.width, 4);
    if (op.is_store) ++stores;
  }
  EXPECT_EQ(stores, 3);
}

TEST(MemStream, LoadAndStoreThroughOnePointerShareARegion) {
  const isa::ParsedBlock block = parse(kLoadStoreKernel);
  const std::vector<MemOp> stream =
      derive_mem_stream(block.graph, CacheConfig{});
  // `a = lw [p]` and `sw [p], t` address the same region; `lh [q]` differs.
  std::vector<std::uint64_t> word_regions;
  for (const MemOp& op : stream)
    if (op.width == 4) word_regions.push_back(op.region_key);
  ASSERT_EQ(word_regions.size(), 2u);
  EXPECT_EQ(word_regions[0], word_regions[1]);
}

TEST(MemStream, EmptyForPureAluBlocks) {
  const isa::ParsedBlock block = parse("x = addu a, b\ny = xor x, a\n");
  EXPECT_TRUE(derive_mem_stream(block.graph, CacheConfig{}).empty());
}

TEST(MemStream, AnnotationIsDeterministic) {
  const isa::ParsedBlock block = parse(kLoadStoreKernel);
  dfg::Graph first = block.graph;
  dfg::Graph second = block.graph;
  const CacheStats stats_first = annotate_graph(first, CacheConfig{});
  const CacheStats stats_second = annotate_graph(second, CacheConfig{});
  EXPECT_EQ(stats_first.accesses, stats_second.accesses);
  EXPECT_EQ(stats_first.l1_hits, stats_second.l1_hits);
  for (dfg::NodeId v = 0; v < first.num_nodes(); ++v)
    EXPECT_EQ(first.node(v).mem_latency, second.node(v).mem_latency);
}

TEST(MemStream, AnnotationStableUnderRenumbering) {
  // The same block with its two independent load chains written in the
  // opposite order: node ids differ, canonical structure does not.
  const isa::ParsedBlock original = parse(
      "a = lw [p]\nb = lw [q]\ns = addu a, b\nsw [p], s\n");
  const isa::ParsedBlock renumbered = parse(
      "b = lw [q]\na = lw [p]\ns = addu a, b\nsw [p], s\n");
  dfg::Graph g1 = original.graph;
  dfg::Graph g2 = renumbered.graph;
  annotate_graph(g1, CacheConfig{});
  annotate_graph(g2, CacheConfig{});
  std::vector<int> lat1, lat2;
  for (dfg::NodeId v = 0; v < g1.num_nodes(); ++v)
    if (g1.node(v).mem_latency > 0) lat1.push_back(g1.node(v).mem_latency);
  for (dfg::NodeId v = 0; v < g2.num_nodes(); ++v)
    if (g2.node(v).mem_latency > 0) lat2.push_back(g2.node(v).mem_latency);
  std::sort(lat1.begin(), lat1.end());
  std::sort(lat2.begin(), lat2.end());
  EXPECT_EQ(lat1, lat2);
}

TEST(MemStream, AnnotatedLatenciesAreAtLeastOne) {
  const isa::ParsedBlock block = parse(kLoadStoreKernel);
  dfg::Graph graph = block.graph;
  const CacheStats stats = annotate_graph(graph, CacheConfig{});
  EXPECT_EQ(stats.annotated_nodes, 6u);
  for (dfg::NodeId v = 0; v < graph.num_nodes(); ++v) {
    const dfg::Node& n = graph.node(v);
    if (isa::is_memory(n.opcode)) {
      EXPECT_GE(n.mem_latency, 1) << "node " << v;
    }
  }
}

TEST(MemStream, NullModelKeepsGraphFingerprint) {
  // Unannotated graphs must hash exactly as they did before the cache model
  // existed — the conditional mix only fires for mem_latency > 0.
  const isa::ParsedBlock block = parse(kLoadStoreKernel);
  const std::uint64_t before = runtime::fingerprint(block.graph, 42);
  dfg::Graph annotated = block.graph;
  annotate_graph(annotated, CacheConfig{});
  EXPECT_EQ(runtime::fingerprint(block.graph, 42), before);
  EXPECT_NE(runtime::fingerprint(annotated, 42), before);
}

// --- end-to-end flow behaviour -------------------------------------------

std::uint64_t selection_digest(const flow::FlowResult& result) {
  runtime::Hash64 h(0x5eed);
  h.mix(result.replacement.base_time);
  h.mix(result.replacement.final_time);
  h.mix(result.selection.selected.size());
  for (const flow::SelectedIse& sel : result.selection.selected) {
    h.mix(static_cast<std::uint64_t>(sel.entry.block_index));
    sel.entry.ise.original_nodes.for_each(
        [&](dfg::NodeId v) { h.mix(static_cast<std::uint64_t>(v)); });
  }
  return h.value();
}

flow::FlowConfig flow_config() {
  flow::FlowConfig config;
  config.machine = sched::MachineConfig::make(2, {6, 3});
  config.repeats = 2;
  config.seed = 99;
  return config;
}

TEST(MemStreamFlow, JobsCountNeverChangesCacheModeledResults) {
  const flow::ProfiledProgram program = bench_suite::make_program(
      bench_suite::Benchmark::kDijkstra, bench_suite::OptLevel::kO3);
  flow::FlowConfig config = flow_config();
  config.cache = *parse_cache_config("l1_size=1k,l1_ways=1,l1_line=16,mem=40");
  config.jobs = 1;
  const flow::FlowResult serial =
      flow::run_design_flow(program, hw::HwLibrary::paper_default(), config);
  config.jobs = 4;
  const flow::FlowResult wide =
      flow::run_design_flow(program, hw::HwLibrary::paper_default(), config);
  EXPECT_TRUE(serial.cache_modeled);
  EXPECT_EQ(selection_digest(serial), selection_digest(wide));
  EXPECT_EQ(serial.cache_stats.accesses, wide.cache_stats.accesses);
  EXPECT_EQ(serial.cache_stats.l1_hits, wide.cache_stats.l1_hits);
}

TEST(MemStreamFlow, CacheModelChangesMemoryBoundKernelIseSet) {
  // The pinned memory-bound witness: dijkstra's O3 hot block is a chain of
  // dependent loads (pointer walks), so pricing misses must steer the
  // explorer to a different ISE set than the fixed-latency null model.
  const flow::ProfiledProgram program = bench_suite::make_program(
      bench_suite::Benchmark::kDijkstra, bench_suite::OptLevel::kO3);
  const flow::FlowConfig null_config = flow_config();
  flow::FlowConfig cache_config = flow_config();
  cache_config.cache =
      *parse_cache_config("l1_size=1k,l1_ways=1,l1_line=16,mem=40");
  const flow::FlowResult null_result = flow::run_design_flow(
      program, hw::HwLibrary::paper_default(), null_config);
  const flow::FlowResult cache_result = flow::run_design_flow(
      program, hw::HwLibrary::paper_default(), cache_config);
  EXPECT_FALSE(null_result.cache_modeled);
  EXPECT_TRUE(cache_result.cache_modeled);
  EXPECT_GT(cache_result.cache_stats.accesses, 0u);
  EXPECT_NE(selection_digest(null_result), selection_digest(cache_result));
  // The miss-priced schedule is strictly longer than the 1-cycle world.
  EXPECT_GT(cache_result.replacement.base_time,
            null_result.replacement.base_time);
}

TEST(MemStreamFlow, ValidateRejectsBadCacheConfig) {
  flow::FlowConfig config = flow_config();
  config.cache = CacheConfig{};
  config.cache->l1.ways = 0;
  const ValidationReport report = flow::validate(config);
  EXPECT_FALSE(report.ok());
  EXPECT_EQ(report.first_error().code(), ErrorCode::kCacheGeometry);
}

}  // namespace
}  // namespace isex::mem
