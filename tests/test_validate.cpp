// Validator coverage: dfg::validate, sched::validate(MachineConfig),
// flow::validate(ProfiledProgram / FlowConfig), and the checked design-flow
// boundary (validator-rejected inputs never reach the explorer).
#include <gtest/gtest.h>

#include "bench_suite/kernels.hpp"
#include "dfg/validate.hpp"
#include "flow/design_flow.hpp"
#include "flow/validate.hpp"
#include "hwlib/hw_library.hpp"
#include "isa/tac_parser.hpp"

namespace isex {
namespace {

bool has_code(const ValidationReport& report, ErrorCode code) {
  for (const Error& e : report.issues())
    if (e.code() == code) return true;
  return false;
}

// ---- dfg::validate --------------------------------------------------------

TEST(DfgValidate, AcceptsParserOutput) {
  const auto block = isa::parse_tac(R"(
    t0 = xor a, b
    t1 = srl t0, 4
    t2 = and t0, t1
    sw [p], t2
  )");
  const ValidationReport report = dfg::validate(block.graph);
  EXPECT_TRUE(report.ok()) << report.to_string();
  EXPECT_TRUE(report.empty()) << report.to_string();
}

TEST(DfgValidate, AcceptsEveryBenchSuiteKernel) {
  for (const auto level :
       {bench_suite::OptLevel::kO0, bench_suite::OptLevel::kO3}) {
    for (const auto benchmark : bench_suite::all_benchmarks()) {
      const auto program = bench_suite::make_program(benchmark, level);
      for (const auto& block : program.blocks) {
        const ValidationReport report = dfg::validate(block.graph);
        EXPECT_TRUE(report.ok())
            << program.name << "/" << block.name << ":\n"
            << report.to_string();
      }
    }
  }
}

TEST(DfgValidate, DetectsDirectedCycle) {
  dfg::Graph g;
  const auto a = g.add_node(isa::Opcode::kAddu, "a");
  const auto b = g.add_node(isa::Opcode::kXor, "b");
  g.add_edge(a, b);
  g.add_edge(b, a);
  const ValidationReport report = dfg::validate(g);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(has_code(report, ErrorCode::kGraphCycle)) << report.to_string();
}

TEST(DfgValidate, DetectsResultlessProducer) {
  dfg::Graph g;
  const auto store = g.add_node(isa::Opcode::kSw, "st");
  const auto use = g.add_node(isa::Opcode::kAddu, "u");
  g.add_edge(store, use);  // a store produces no value to consume
  g.set_live_out(store, true);
  const ValidationReport report = dfg::validate(g);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(has_code(report, ErrorCode::kGraphResultlessProducer))
      << report.to_string();
}

TEST(DfgValidate, OverArityIsAWarningNotAnError) {
  dfg::Graph g;
  const auto v = g.add_node(isa::Opcode::kSll, "s");  // 1 register source
  g.set_extern_inputs(v, 3);
  const ValidationReport report = dfg::validate(g);
  EXPECT_TRUE(report.ok()) << report.to_string();  // warnings only
  EXPECT_TRUE(has_code(report, ErrorCode::kGraphArity)) << report.to_string();
}

TEST(DfgValidate, DetectsNegativeLiveInValueId) {
  dfg::Graph g;
  const auto v = g.add_node(isa::Opcode::kAddu, "a");
  g.set_extern_input_ids(v, {0, -1});
  const ValidationReport report = dfg::validate(g);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(has_code(report, ErrorCode::kGraphLiveInInconsistent))
      << report.to_string();
}

TEST(DfgValidate, DetectsCorruptIseSupernode) {
  dfg::Graph g;
  dfg::IseInfo bad;
  bad.latency_cycles = 0;
  bad.area = -1.0;
  g.add_ise_node(bad, "ISE");
  const ValidationReport report = dfg::validate(g);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(has_code(report, ErrorCode::kGraphIseInfoInvalid))
      << report.to_string();
}

TEST(DfgValidate, DetectsOpcodeOutsideTheEnum) {
  dfg::Graph g;
  g.add_node(static_cast<isa::Opcode>(200), "bogus");
  const ValidationReport report = dfg::validate(g);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(has_code(report, ErrorCode::kGraphOpcodeIllegal))
      << report.to_string();
}

TEST(DfgValidate, AcceptsLegitimateCollapsedGraph) {
  const auto block = isa::parse_tac(R"(
    t0 = xor a, b
    t1 = and t0, c
    t2 = or t0, t1
    live_out t2
  )");
  dfg::NodeSet members(block.graph.num_nodes());
  members.insert(block.defs.at("t0"));
  members.insert(block.defs.at("t1"));
  dfg::IseInfo info;
  info.latency_cycles = 1;
  info.num_inputs = 3;
  info.num_outputs = 1;
  const dfg::Graph reduced = block.graph.collapse(members, info);
  const ValidationReport report = dfg::validate(reduced);
  EXPECT_TRUE(report.ok()) << report.to_string();
}

// ---- sched::validate ------------------------------------------------------

TEST(MachineConfigValidate, AcceptsThePaperSweep) {
  for (const int issue : {2, 3, 4}) {
    for (const auto ports : {isa::RegisterFileConfig{4, 2},
                             isa::RegisterFileConfig{6, 3},
                             isa::RegisterFileConfig{8, 4},
                             isa::RegisterFileConfig{10, 5}}) {
      const ValidationReport report =
          sched::validate(sched::MachineConfig::make(issue, ports));
      EXPECT_TRUE(report.ok()) << report.to_string();
      EXPECT_TRUE(report.empty()) << report.to_string();
    }
  }
}

TEST(MachineConfigValidate, WarnsOutsideTheSweep) {
  const ValidationReport report =
      sched::validate(sched::MachineConfig::make(8, {20, 9}));
  EXPECT_TRUE(report.ok()) << report.to_string();
  EXPECT_TRUE(has_code(report, ErrorCode::kConfigOutsidePaperSweep));
}

TEST(MachineConfigValidate, RejectsDegenerateConfigs) {
  sched::MachineConfig bad;
  bad.issue_width = 0;
  bad.reg_file = {0, 0};
  bad.fu_counts = {0, -1, 1, 1, 1};
  const ValidationReport report = sched::validate(bad);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(has_code(report, ErrorCode::kConfigIssueWidth));
  EXPECT_TRUE(has_code(report, ErrorCode::kConfigPorts));
  EXPECT_TRUE(has_code(report, ErrorCode::kConfigFuCounts));
}

// ---- flow::validate -------------------------------------------------------

TEST(FlowValidate, RejectsEmptyProgram) {
  flow::ProfiledProgram program;
  program.name = "empty";
  const ValidationReport report = flow::validate(program);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(has_code(report, ErrorCode::kProgramEmpty));
}

TEST(FlowValidate, RejectsZeroExecCountAndNamesTheBlock) {
  flow::ProfiledProgram program;
  program.name = "p";
  flow::ProfiledBlock block;
  block.name = "hot";
  block.graph = isa::parse_tac("t = addu a, b").graph;
  block.exec_count = 0;
  program.blocks.push_back(std::move(block));
  const ValidationReport report = flow::validate(program);
  EXPECT_FALSE(report.ok());
  ASSERT_TRUE(has_code(report, ErrorCode::kProgramExecCount));
  EXPECT_NE(report.first_error().message().find("hot"), std::string::npos);
}

TEST(FlowValidate, SurfacesBlockGraphDefectsWithTheirOwnCodes) {
  flow::ProfiledProgram program;
  program.name = "p";
  flow::ProfiledBlock block;
  block.name = "cyclic";
  const auto a = block.graph.add_node(isa::Opcode::kAddu, "a");
  const auto b = block.graph.add_node(isa::Opcode::kXor, "b");
  block.graph.add_edge(a, b);
  block.graph.add_edge(b, a);
  program.blocks.push_back(std::move(block));
  const ValidationReport report = flow::validate(program);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(has_code(report, ErrorCode::kGraphCycle)) << report.to_string();
}

TEST(FlowValidate, RejectsBadFlowConfig) {
  flow::FlowConfig config;
  config.repeats = 0;
  config.hot_coverage = 1.5;
  config.params.p_end = 0.0;
  const ValidationReport report = flow::validate(config);
  EXPECT_FALSE(report.ok());
  EXPECT_GE(report.error_count(), 3u);
  EXPECT_TRUE(has_code(report, ErrorCode::kFlowParamsInvalid));
}

TEST(FlowValidate, AcceptsTheDefaultFlowConfig) {
  const ValidationReport report = flow::validate(flow::FlowConfig{});
  EXPECT_TRUE(report.ok()) << report.to_string();
}

// ---- checked design-flow boundary ----------------------------------------

TEST(DesignFlowChecked, RejectedInputNeverReachesTheExplorer) {
  flow::ProfiledProgram program;
  program.name = "p";
  flow::ProfiledBlock block;
  block.name = "cyclic";
  const auto a = block.graph.add_node(isa::Opcode::kAddu, "a");
  const auto b = block.graph.add_node(isa::Opcode::kXor, "b");
  block.graph.add_edge(a, b);
  block.graph.add_edge(b, a);
  program.blocks.push_back(std::move(block));

  const auto result = flow::run_design_flow_checked(
      program, hw::HwLibrary::paper_default(), flow::FlowConfig{});
  ASSERT_FALSE(result.has_value());
  EXPECT_EQ(result.error().code(), ErrorCode::kGraphCycle)
      << result.error().to_string();
}

TEST(DesignFlowChecked, ThrowingWrapperRaisesValidationException) {
  flow::ProfiledProgram program;  // no blocks at all
  program.name = "empty";
  EXPECT_THROW(flow::run_design_flow(program, hw::HwLibrary::paper_default(),
                                     flow::FlowConfig{}),
               ValidationException);
}

TEST(DesignFlowChecked, AcceptsAndRunsAValidProgram) {
  const auto program = bench_suite::make_program(
      bench_suite::Benchmark::kCrc32, bench_suite::OptLevel::kO3);
  flow::FlowConfig config;
  config.repeats = 1;
  config.seed = 7;
  const auto result = flow::run_design_flow_checked(
      program, hw::HwLibrary::paper_default(), config);
  ASSERT_TRUE(result.has_value());
  EXPECT_GT(result->base_time(), 0u);
}

}  // namespace
}  // namespace isex
