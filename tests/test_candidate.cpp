#include "core/candidate.hpp"

#include <gtest/gtest.h>

#include "test_util.hpp"

namespace isex::core {
namespace {

class CandidateTest : public ::testing::Test {
 protected:
  hw::HwLibrary lib_ = hw::HwLibrary::paper_default();
  isa::IsaFormat format_;  // 4/2

  std::vector<IseCandidate> extract(const dfg::Graph& g,
                                    const std::vector<int>& taken) {
    hw::GPlus gplus(g, lib_);
    dfg::Reachability reach(g);
    return extract_candidates(gplus, format_, taken, reach);
  }
};

TEST_F(CandidateTest, NoHardwareTakenMeansNoCandidates) {
  const dfg::Graph g = testing::make_chain(4, isa::Opcode::kAnd);
  EXPECT_TRUE(extract(g, {0, 0, 0, 0}).empty());
}

TEST_F(CandidateTest, SingletonsDiscarded) {
  const dfg::Graph g = testing::make_chain(4, isa::Opcode::kAnd);
  EXPECT_TRUE(extract(g, {0, 1, 0, 0}).empty());
}

TEST_F(CandidateTest, ConnectedHardwareRunBecomesCandidate) {
  const dfg::Graph g = testing::make_chain(4, isa::Opcode::kAnd);
  const auto cands = extract(g, {0, 1, 1, 0});
  ASSERT_EQ(cands.size(), 1u);
  EXPECT_EQ(cands[0].members, dfg::NodeSet::of(4, {1, 2}));
  EXPECT_EQ(cands[0].eval.latency_cycles, 1);
  EXPECT_NEAR(cands[0].eval.area, 2 * 214.31, 1e-9);
  EXPECT_EQ(cands[0].in_count, 1);
  EXPECT_EQ(cands[0].out_count, 1);
}

TEST_F(CandidateTest, TwoSeparateRunsYieldTwoCandidates) {
  const dfg::Graph g = testing::make_chain(7, isa::Opcode::kAnd);
  const auto cands = extract(g, {1, 1, 0, 0, 1, 1, 0});
  EXPECT_EQ(cands.size(), 2u);
}

TEST_F(CandidateTest, NonConvexClusterIsSplit) {
  // Diamond with b on software: {a, c, d} cluster is connected but
  // non-convex (a -> b -> d path outside); Make-Convex splits it.
  dfg::Graph g;
  const auto a = g.add_node(isa::Opcode::kAnd, "a");
  const auto b = g.add_node(isa::Opcode::kAnd, "b");
  const auto c = g.add_node(isa::Opcode::kAnd, "c");
  const auto d = g.add_node(isa::Opcode::kAnd, "d");
  g.add_edge(a, b);
  g.add_edge(a, c);
  g.add_edge(b, d);
  g.add_edge(c, d);
  g.set_live_out(d, true);
  const auto cands = extract(g, {1, 0, 1, 1});
  for (const auto& cand : cands) {
    dfg::Reachability reach(g);
    EXPECT_TRUE(dfg::is_convex(g, cand.members, reach));
    EXPECT_GE(cand.size(), 2u);
  }
  // {a, c} or {c, d} must survive as a 2-op candidate.
  ASSERT_FALSE(cands.empty());
}

TEST_F(CandidateTest, RespectsChosenHardwareOption) {
  const dfg::Graph g = testing::make_chain(2, isa::Opcode::kAddu);
  const auto cands = extract(g, {2, 2});  // HW-2 fast adders
  ASSERT_EQ(cands.size(), 1u);
  EXPECT_NEAR(cands[0].eval.area, 2 * 2075.35, 1e-9);
  EXPECT_NEAR(cands[0].eval.depth_ns, 2 * 2.12, 1e-9);
}

TEST_F(CandidateTest, PortIllegalClusterGetsTrimmed) {
  dfg::Graph g;
  const auto x = g.add_node(isa::Opcode::kXor, "x");
  std::vector<int> taken = {1};
  for (int i = 0; i < 5; ++i) {
    const auto p = g.add_node(isa::Opcode::kAnd);
    g.set_extern_inputs(p, 2);
    g.add_edge(p, x);
    taken.push_back(1);
  }
  g.set_live_out(x, true);
  const auto cands = extract(g, taken);
  for (const auto& cand : cands) {
    EXPECT_LE(cand.in_count, format_.max_ise_inputs());
    EXPECT_LE(cand.out_count, format_.max_ise_outputs());
  }
}

}  // namespace
}  // namespace isex::core
