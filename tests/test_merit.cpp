#include "core/merit.hpp"

#include <gtest/gtest.h>

#include "test_util.hpp"

namespace isex::core {
namespace {

class MeritTest : public ::testing::Test {
 protected:
  MeritTest() : lib_(hw::HwLibrary::paper_default()) {}

  /// Runs `iterations` merit updates over `g` given previous choices and a
  /// critical set; returns the post-update state.  (A single decay never
  /// flips the initial 200:100 hardware:software ratio — the algorithm
  /// relies on repeated evaporation, so several tests iterate.)
  PheromoneState run_update(const dfg::Graph& g, const std::vector<int>& chosen,
                            const dfg::NodeSet& critical, int tet,
                            int iterations = 1) {
    hw::GPlus gplus(g, lib_);
    dfg::Reachability reach(g);
    PheromoneState state(gplus, params_);
    MeritEngine engine(gplus, format_, params_);
    const dfg::PathInfo path = dfg::longest_path(
        g, [&](dfg::NodeId v) { return gplus.software_cycles(v); });
    MeritInputs inputs;
    inputs.chosen = chosen;
    inputs.critical = &critical;
    inputs.path = &path;
    inputs.tet = tet;
    for (int i = 0; i < iterations; ++i) engine.update(state, inputs, reach);
    return state;
  }

  hw::HwLibrary lib_;
  isa::IsaFormat format_;
  ExplorerParams params_;
};

TEST_F(MeritTest, SingletonCandidateDecaysHardwareMerit) {
  const dfg::Graph g = testing::make_chain(3, isa::Opcode::kAnd);
  dfg::NodeSet critical(3);  // nothing critical
  // One βSize = 0.7 decay narrows the gap; by the fourth iteration the
  // 200:100 initial ratio has flipped (2 × 0.7⁴ < 1).
  const PheromoneState once = run_update(g, {0, 0, 0}, critical, 3, 1);
  const PheromoneState often = run_update(g, {0, 0, 0}, critical, 3, 4);
  for (dfg::NodeId v = 0; v < 3; ++v) {
    EXPECT_LT(once.merit(v, 1) / once.merit(v, 0), 2.0);  // decayed
    EXPECT_LT(often.merit(v, 1), often.merit(v, 0));      // flipped
  }
}

TEST_F(MeritTest, UsefulChainCandidateBoostsHardware) {
  // All three ands chose hardware: vS of each is the full chain, legal,
  // saving = 3 sw cycles - 1 hw cycle = 2 > 0.
  const dfg::Graph g = testing::make_chain(3, isa::Opcode::kAnd);
  dfg::NodeSet critical = dfg::NodeSet::of(3, {0, 1, 2});
  const PheromoneState state = run_update(g, {1, 1, 1}, critical, 3);
  for (dfg::NodeId v = 0; v < 3; ++v)
    EXPECT_GT(state.merit(v, 1), state.merit(v, 0));
}

TEST_F(MeritTest, CriticalPathBoostsRelativeToNonCritical) {
  // Two independent and-chains; only the first is critical.
  dfg::Graph g;
  std::vector<int> chosen;
  for (int lane = 0; lane < 2; ++lane) {
    dfg::NodeId prev = dfg::kInvalidNode;
    for (int i = 0; i < 3; ++i) {
      const auto v = g.add_node(isa::Opcode::kAnd);
      if (prev != dfg::kInvalidNode) g.add_edge(prev, v);
      prev = v;
      chosen.push_back(1);
    }
    g.set_live_out(prev, true);
  }
  dfg::NodeSet critical = dfg::NodeSet::of(6, {0, 1, 2});
  const PheromoneState state = run_update(g, chosen, critical, 3);
  // Same structure; the critical lane's hardware merit must be >= the
  // non-critical lane's after normalization (case 1 boost + case 4 branch).
  EXPECT_GE(state.merit(0, 1), state.merit(3, 1));
}

TEST_F(MeritTest, IoViolationShrinksMerit) {
  dfg::Graph g;
  std::vector<int> chosen;
  const auto x = g.add_node(isa::Opcode::kXor, "x");
  chosen.push_back(1);
  for (int i = 0; i < 5; ++i) {
    const auto p = g.add_node(isa::Opcode::kAnd);
    g.set_extern_inputs(p, 2);
    g.add_edge(p, x);
    chosen.push_back(1);
  }
  dfg::NodeSet critical(6);
  // βIO = 0.8 per iteration: ratio 2 × 0.8⁴ < 1 by the fourth update.
  const PheromoneState state = run_update(g, chosen, critical, 2, 4);
  // In(vS) = 10 > 4: hardware merit decays below software everywhere.
  EXPECT_LT(state.merit(x, 1), state.merit(x, 0));
}

TEST_F(MeritTest, SoftwareMeritScalesWithExecutionTime) {
  // An ISE supernode's "software" option delay multiplies its merit, but a
  // single-option node is normalized back to scale — verify no blow-up.
  dfg::Graph g;
  dfg::IseInfo info;
  info.latency_cycles = 4;
  g.add_ise_node(info, "ISE");
  dfg::NodeSet critical(1);
  const PheromoneState state = run_update(g, {0}, critical, 4);
  EXPECT_DOUBLE_EQ(state.merit(0, 0), params_.merit_scale);
}

TEST_F(MeritTest, MaxAecWindowOfSlackChain) {
  // a -> b -> d plus a -> c -> d where c..d is the critical lane (via an
  // extra node), giving b slack.
  dfg::Graph g;
  const auto a = g.add_node(isa::Opcode::kAnd, "a");
  const auto b = g.add_node(isa::Opcode::kAnd, "b");
  const auto c1 = g.add_node(isa::Opcode::kAnd, "c1");
  const auto c2 = g.add_node(isa::Opcode::kAnd, "c2");
  const auto d = g.add_node(isa::Opcode::kAnd, "d");
  g.add_edge(a, b);
  g.add_edge(b, d);
  g.add_edge(a, c1);
  g.add_edge(c1, c2);
  g.add_edge(c2, d);
  const dfg::PathInfo path =
      dfg::longest_path(g, [](dfg::NodeId) { return 1.0; });
  dfg::NodeSet bset(5);
  bset.insert(b);
  // b: earliest start 1, latest finish 3 within a length-4 schedule.
  EXPECT_DOUBLE_EQ(
      MeritEngine::max_allowable_cycles(g, bset, path, /*tet=*/4), 2.0);
  // A longer actual schedule (resource stalls) widens the window.
  EXPECT_DOUBLE_EQ(
      MeritEngine::max_allowable_cycles(g, bset, path, /*tet=*/6), 4.0);
}

TEST_F(MeritTest, LocalityUnawareTreatsAllAsCritical) {
  params_.locality_aware = false;
  // Non-critical chain still gets the full hardware boost under SI rules.
  const dfg::Graph g = testing::make_chain(3, isa::Opcode::kAnd);
  dfg::NodeSet critical(3);  // empty — but SI must ignore this
  const PheromoneState state = run_update(g, {1, 1, 1}, critical, 3);
  for (dfg::NodeId v = 0; v < 3; ++v)
    EXPECT_GT(state.merit(v, 1), state.merit(v, 0));
}

TEST_F(MeritTest, FasterOptionPreferredWhenItSavesACycle) {
  // Synthetic two-option cell where the slow variant pushes the chain over
  // the 10 ns cycle boundary: HW-1 = 6 ns, HW-2 = 2 ns.  With the
  // neighbour on HW-1, x on HW-1 gives 12 ns (2 cycles, saving 0) while
  // x on HW-2 gives 8 ns (1 cycle, saving 1).  Case 4 must prefer HW-2.
  lib_.set_hardware_options(
      isa::Opcode::kAddu,
      {{hw::ImplKind::kHardware, "HW-1", 6.0, 500.0},
       {hw::ImplKind::kHardware, "HW-2", 2.0, 1500.0}});
  const dfg::Graph g = testing::make_chain(2, isa::Opcode::kAddu);
  dfg::NodeSet critical = dfg::NodeSet::of(2, {0, 1});
  const PheromoneState state = run_update(g, {1, 1}, critical, 2);
  for (dfg::NodeId v = 0; v < 2; ++v)
    EXPECT_GT(state.merit(v, 2), state.merit(v, 1));
}

TEST_F(MeritTest, CheaperOptionPreferredWhenCyclesTie) {
  // Both adder options keep the real Table 5.1.1 chain at one cycle, so the
  // area ratio must favour the small HW-1 cell.
  const dfg::Graph g = testing::make_chain(3, isa::Opcode::kAddu);
  dfg::NodeSet critical = dfg::NodeSet::of(3, {0, 1, 2});
  const PheromoneState state = run_update(g, {2, 2, 2}, critical, 3);
  for (dfg::NodeId v = 0; v < 3; ++v)
    EXPECT_GE(state.merit(v, 1), state.merit(v, 2));
}

}  // namespace
}  // namespace isex::core
