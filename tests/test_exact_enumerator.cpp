#include "baseline/exact_enumerator.hpp"

#include <gtest/gtest.h>

#include <cstdlib>

#include "test_util.hpp"

namespace isex::baseline {
namespace {

class EnumeratorTest : public ::testing::Test {
 protected:
  hw::HwLibrary lib_ = hw::HwLibrary::paper_default();
  isa::IsaFormat fmt63_{{6, 3}};

  EnumerationResult enumerate(const dfg::Graph& g, const isa::IsaFormat& fmt,
                              ExactParams params = {}) {
    hw::GPlus gplus(g, lib_);
    return enumerate_candidates(gplus, fmt, params);
  }
};

TEST_F(EnumeratorTest, ChainHasAllContiguousRuns) {
  // A 4-chain of ands: connected convex subgraphs of size >= 2 are exactly
  // the contiguous runs: 3 of size 2, 2 of size 3, 1 of size 4.
  const dfg::Graph g = testing::make_chain(4, isa::Opcode::kAnd);
  const EnumerationResult r = enumerate(g, fmt63_);
  EXPECT_FALSE(r.truncated);
  EXPECT_EQ(r.candidates.size(), 6u);
  for (const auto& cand : r.candidates) {
    EXPECT_GE(cand.members.count(), 2u);
    EXPECT_LE(cand.in_count, 6);
    EXPECT_LE(cand.out_count, 3);
  }
}

TEST_F(EnumeratorTest, DiamondCountsConnectedConvexSets) {
  // Diamond a->{b,c}->d: size-2 {a,b},{a,c},{b,d},{c,d}; size-3 all four
  // triples are connected, but {a,b,d} and {a,c,d} are non-convex (the
  // missing lane bridges them); {a,b,c} and {b,c,d} are convex; size-4 the
  // whole diamond.  Total = 4 + 2 + 1 = 7.
  const dfg::Graph g = testing::make_diamond(isa::Opcode::kXor);
  const EnumerationResult r = enumerate(g, fmt63_);
  EXPECT_EQ(r.candidates.size(), 7u);
}

TEST_F(EnumeratorTest, PortConstraintFilters) {
  // Star: x with 4 parents, each with 2 extern inputs.  With a 4/2 file the
  // full star needs 8 inputs — filtered; pairs {parent, x} need 3 — kept.
  dfg::Graph g;
  const auto x = g.add_node(isa::Opcode::kXor, "x");
  for (int i = 0; i < 4; ++i) {
    const auto p = g.add_node(isa::Opcode::kAnd);
    g.set_extern_inputs(p, 2);
    g.add_edge(p, x);
  }
  g.set_live_out(x, true);
  // With 4/2 ports nothing is legal: even a {parent, x} pair sees the
  // other three producers as inputs (IN = 2 + 3 = 5 > 4).
  isa::IsaFormat tight{{4, 2}};
  EXPECT_TRUE(enumerate(g, tight).candidates.empty());
  // 6/3 admits the pairs (IN = 5) but not the full star (IN = 8).
  const EnumerationResult r = enumerate(g, fmt63_);
  std::size_t pairs = 0;
  for (const auto& cand : r.candidates) {
    EXPECT_LE(dfg::count_inputs(g, cand.members), 6);
    if (cand.members.count() == 2) ++pairs;
  }
  EXPECT_EQ(pairs, 4u);
  for (const auto& cand : r.candidates)
    EXPECT_LT(cand.members.count(), 5u);  // full star filtered
}

TEST_F(EnumeratorTest, SizeCapRespected) {
  const dfg::Graph g = testing::make_chain(8, isa::Opcode::kAnd);
  ExactParams params;
  params.max_size = 3;
  const EnumerationResult r = enumerate(g, fmt63_, params);
  for (const auto& cand : r.candidates) EXPECT_LE(cand.members.count(), 3u);
}

TEST_F(EnumeratorTest, TruncationFlagOnTinyBudget) {
  const dfg::Graph g = testing::make_chain(10, isa::Opcode::kAnd);
  ExactParams params;
  params.max_subgraphs = 5;
  const EnumerationResult r = enumerate(g, fmt63_, params);
  EXPECT_TRUE(r.truncated);
}

TEST_F(EnumeratorTest, MemoryNodesNeverEnumerated) {
  dfg::Graph g;
  const auto a = g.add_node(isa::Opcode::kAnd, "a");
  const auto l = g.add_node(isa::Opcode::kLw, "l");
  const auto b = g.add_node(isa::Opcode::kAnd, "b");
  g.add_edge(a, l);
  g.add_edge(l, b);
  const EnumerationResult r = enumerate(g, fmt63_);
  for (const auto& cand : r.candidates)
    EXPECT_FALSE(cand.members.contains(l));
  EXPECT_TRUE(r.candidates.empty());  // a and b are not adjacent
}

TEST_F(EnumeratorTest, PipestageCapFilters) {
  const dfg::Graph g = testing::make_chain(8, isa::Opcode::kAddu);
  isa::IsaFormat capped{{6, 3}};
  capped.max_ise_latency_cycles = 1;
  const EnumerationResult r = enumerate(g, capped);
  for (const auto& cand : r.candidates)
    EXPECT_EQ(cand.eval.latency_cycles, 1);
}

TEST(ExactExplorerTest, MatchesChainOptimum) {
  const hw::HwLibrary lib = hw::HwLibrary::paper_default();
  const auto machine = sched::MachineConfig::make(2, {6, 3});
  isa::IsaFormat fmt{{6, 3}};
  const ExactExplorer exact(machine, fmt, lib);
  const dfg::Graph g = testing::make_chain(6, isa::Opcode::kAnd);
  const auto r = exact.explore(g);
  EXPECT_EQ(r.base_cycles, 6);
  // 6 ands in two 3-op ISEs (4.74 ns each -> 1 cycle) gives 2 cycles; one
  // 6-op ISE (9.48 ns) is still 1 cycle and IO-legal: optimum is 1.
  EXPECT_EQ(r.final_cycles, 1);
}

TEST(ExactExplorerTest, AcoReachesExactQualityOnSmallBlocks) {
  const hw::HwLibrary lib = hw::HwLibrary::paper_default();
  const auto machine = sched::MachineConfig::make(2, {6, 3});
  isa::IsaFormat fmt{{6, 3}};
  const ExactExplorer exact(machine, fmt, lib);
  const core::MultiIssueExplorer aco(machine, fmt, lib);

  Rng graph_rng(71);
  for (int trial = 0; trial < 4; ++trial) {
    const dfg::Graph g = testing::make_random_dag(14, graph_rng, 0.5);
    const auto exact_result = exact.explore(g);
    Rng rng(99);
    const auto aco_result = aco.explore_best_of(g, 5, rng);
    // Both pipelines commit greedily round by round; "exact" is exact only
    // in candidate *enumeration*, so across rounds either side can edge the
    // other.  They must land in the same quality band.
    EXPECT_LE(std::abs(aco_result.final_cycles - exact_result.final_cycles), 2)
        << "aco=" << aco_result.final_cycles
        << " exact=" << exact_result.final_cycles;
    EXPECT_LE(aco_result.final_cycles, aco_result.base_cycles);
  }
}

}  // namespace
}  // namespace isex::baseline
