// Portfolio flow subsystem: bit-identity of per-program explorations against
// independent run_design_flow runs, thread-count invariance, job-level dedup
// across duplicate manifest rows, the weighted greedy shared-area selection,
// manifest validation, the canonical (node-id-independent) fingerprint
// contract, the portfolio wire signature, and the isex_serve round trip
// (resubmit and restart answered from the persistent cache).
//
// Every suite is named Portfolio* so the CI TSan job's regex picks them up.
#include "flow/portfolio.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "bench_suite/kernels.hpp"
#include "flow/validate.hpp"
#include "isa/tac_parser.hpp"
#include "runtime/hash.hpp"
#include "server/protocol.hpp"
#include "server/server.hpp"

namespace isex {
namespace {

using bench_suite::Benchmark;
using bench_suite::OptLevel;

flow::FlowConfig base_config() {
  flow::FlowConfig c;
  c.machine = sched::MachineConfig::make(2, {6, 3});
  c.repeats = 2;  // keep tests fast
  c.seed = 99;
  return c;
}

flow::PortfolioConfig portfolio_config() {
  flow::PortfolioConfig config;
  config.base = base_config();
  return config;
}

flow::PortfolioEntry entry_for(Benchmark benchmark, double weight) {
  flow::PortfolioEntry entry;
  entry.program = bench_suite::make_program(benchmark, OptLevel::kO3);
  entry.weight = weight;
  return entry;
}

void expect_same_explorations(
    const std::vector<core::ExplorationResult>& got,
    const std::vector<core::ExplorationResult>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    SCOPED_TRACE("hot block " + std::to_string(i));
    EXPECT_EQ(got[i].base_cycles, want[i].base_cycles);
    EXPECT_EQ(got[i].final_cycles, want[i].final_cycles);
    EXPECT_EQ(got[i].rounds, want[i].rounds);
    EXPECT_EQ(got[i].total_iterations, want[i].total_iterations);
    ASSERT_EQ(got[i].ises.size(), want[i].ises.size());
    for (std::size_t k = 0; k < got[i].ises.size(); ++k) {
      SCOPED_TRACE("ise " + std::to_string(k));
      EXPECT_EQ(got[i].ises[k].original_nodes, want[i].ises[k].original_nodes);
      EXPECT_EQ(got[i].ises[k].gain_cycles, want[i].ises[k].gain_cycles);
      EXPECT_EQ(got[i].ises[k].in_count, want[i].ises[k].in_count);
      EXPECT_EQ(got[i].ises[k].out_count, want[i].ises[k].out_count);
      EXPECT_EQ(got[i].ises[k].eval.area, want[i].ises[k].eval.area);
      EXPECT_EQ(got[i].ises[k].eval.latency_cycles,
                want[i].ises[k].eval.latency_cycles);
    }
  }
}

// ---------------------------------------------------------------------------
// Tentpole contract: the batch changes scheduling and selection, never the
// per-program exploration results.

TEST(PortfolioFlowTest, MatchesIndependentFlows) {
  const hw::HwLibrary lib = hw::HwLibrary::paper_default();
  std::vector<flow::PortfolioEntry> entries;
  entries.push_back(entry_for(Benchmark::kCrc32, 2.0));
  entries.push_back(entry_for(Benchmark::kFft, 1.0));
  entries.push_back(entry_for(Benchmark::kAdpcm, 3.0));

  const flow::PortfolioResult portfolio =
      flow::run_portfolio_flow(entries, lib, portfolio_config());
  ASSERT_EQ(portfolio.programs.size(), entries.size());

  flow::FlowConfig independent = base_config();
  independent.keep_explorations = true;
  for (std::size_t p = 0; p < entries.size(); ++p) {
    SCOPED_TRACE(entries[p].program.name);
    const flow::FlowResult reference =
        flow::run_design_flow(entries[p].program, lib, independent);
    EXPECT_EQ(portfolio.programs[p].hot_blocks, reference.hot_blocks);
    expect_same_explorations(portfolio.programs[p].explorations,
                             reference.explorations);
  }
  EXPECT_GT(portfolio.total_jobs, 0u);
  EXPECT_GT(portfolio.total_weighted_benefit(), 0.0);
}

TEST(PortfolioFlowTest, DeterministicAcrossJobCounts) {
  const hw::HwLibrary lib = hw::HwLibrary::paper_default();
  std::vector<flow::PortfolioEntry> entries;
  entries.push_back(entry_for(Benchmark::kCrc32, 1.0));
  entries.push_back(entry_for(Benchmark::kBitcount, 2.5));

  flow::PortfolioConfig serial = portfolio_config();
  serial.base.jobs = 1;
  flow::PortfolioConfig wide = portfolio_config();
  wide.base.jobs = 4;

  const flow::PortfolioResult a = flow::run_portfolio_flow(entries, lib, serial);
  const flow::PortfolioResult b = flow::run_portfolio_flow(entries, lib, wide);

  ASSERT_EQ(a.programs.size(), b.programs.size());
  for (std::size_t p = 0; p < a.programs.size(); ++p) {
    SCOPED_TRACE("program " + std::to_string(p));
    EXPECT_EQ(a.programs[p].hot_blocks, b.programs[p].hot_blocks);
    EXPECT_EQ(a.programs[p].base_time(), b.programs[p].base_time());
    EXPECT_EQ(a.programs[p].final_time(), b.programs[p].final_time());
    expect_same_explorations(a.programs[p].explorations,
                             b.programs[p].explorations);
  }
  ASSERT_EQ(a.selection.selected.size(), b.selection.selected.size());
  for (std::size_t i = 0; i < a.selection.selected.size(); ++i) {
    const flow::PortfolioSelectedIse& x = a.selection.selected[i];
    const flow::PortfolioSelectedIse& y = b.selection.selected[i];
    EXPECT_EQ(x.program_index, y.program_index);
    EXPECT_EQ(x.entry.block_index, y.entry.block_index);
    EXPECT_EQ(x.entry.position, y.entry.position);
    EXPECT_EQ(x.type_id, y.type_id);
    EXPECT_EQ(x.hardware_shared, y.hardware_shared);
    EXPECT_EQ(x.weighted_benefit, y.weighted_benefit);
  }
  EXPECT_EQ(a.selection.total_area, b.selection.total_area);
  EXPECT_EQ(a.selection.num_types, b.selection.num_types);
  EXPECT_EQ(a.total_jobs, b.total_jobs);
  EXPECT_EQ(a.deduped_jobs, b.deduped_jobs);
}

TEST(PortfolioFlowTest, DuplicateProgramsDedupAndShareHardware) {
  const hw::HwLibrary lib = hw::HwLibrary::paper_default();
  std::vector<flow::PortfolioEntry> entries;
  entries.push_back(entry_for(Benchmark::kCrc32, 1.0));
  entries.push_back(entry_for(Benchmark::kCrc32, 2.0));
  entries[1].program.name = "crc32_again";

  const flow::PortfolioResult r =
      flow::run_portfolio_flow(entries, lib, portfolio_config());
  ASSERT_EQ(r.programs.size(), 2u);

  // The duplicate's (index, block-digest) jobs match the first program's
  // exactly: the entire second half of the batch is deduped, and the copied
  // results are bit-identical.
  EXPECT_EQ(r.deduped_jobs * 2, r.total_jobs);
  EXPECT_EQ(r.programs[0].hot_blocks, r.programs[1].hot_blocks);
  expect_same_explorations(r.programs[1].explorations,
                           r.programs[0].explorations);
  EXPECT_EQ(r.programs[0].final_time(), r.programs[1].final_time());

  // Identical patterns collapse onto shared ASFUs: the selection never pays
  // for more types than one program alone needs, and at least one selection
  // reuses hardware first charged to the other program.
  ASSERT_FALSE(r.selection.selected.empty());
  bool any_shared = false;
  for (const flow::PortfolioSelectedIse& sel : r.selection.selected)
    any_shared = any_shared || sel.hardware_shared;
  EXPECT_TRUE(any_shared);
  EXPECT_LT(r.selection.num_types,
            static_cast<int>(r.selection.selected.size()));
  // Both programs were explored through the shared eval cache, so the batch
  // records hits (the duplicate's candidate evaluations all memoize).
  EXPECT_GT(r.eval_cache_stats.hits, 0u);
}

// ---------------------------------------------------------------------------
// Weighted greedy selection unit tests (synthetic catalogs).

dfg::Graph pattern_graph(const char* source) {
  Expected<isa::ParsedBlock> block = isa::parse_tac_checked(source);
  EXPECT_TRUE(block.has_value());
  return block->graph;
}

flow::PortfolioCatalogEntry make_entry(std::size_t program, std::size_t block,
                                       std::size_t position,
                                       const dfg::Graph& pattern, double area,
                                       std::uint64_t benefit, double weight) {
  flow::PortfolioCatalogEntry e;
  e.program_index = program;
  e.weight = weight;
  e.entry.block_index = block;
  e.entry.position = position;
  e.entry.pattern = pattern;
  e.entry.benefit = benefit;
  e.entry.ise.eval.area = area;
  e.weighted_benefit = static_cast<double>(benefit) * weight;
  return e;
}

TEST(PortfolioSelectionTest, RanksByWeightedBenefit) {
  const dfg::Graph add = pattern_graph("t = addu a, b\nlive_out t\n");
  const dfg::Graph mul = pattern_graph("t = mult a, b\nlive_out t\n");
  // Program 1's raw benefit is lower but its weight dominates.
  std::vector<flow::PortfolioCatalogEntry> catalog;
  catalog.push_back(make_entry(0, 0, 0, add, 10.0, 100, 1.0));
  catalog.push_back(make_entry(1, 0, 0, mul, 10.0, 60, 4.0));

  const flow::PortfolioSelection sel =
      flow::select_portfolio_ises(catalog, flow::SelectionConstraints{});
  ASSERT_EQ(sel.selected.size(), 2u);
  EXPECT_EQ(sel.selected[0].program_index, 1u);
  EXPECT_EQ(sel.selected[0].weighted_benefit, 240.0);
  EXPECT_EQ(sel.selected[1].program_index, 0u);
  EXPECT_EQ(sel.num_types, 2);
  EXPECT_EQ(sel.total_area, 20.0);
}

TEST(PortfolioSelectionTest, EqualBenefitPrefersSmallerArea) {
  const dfg::Graph add = pattern_graph("t = addu a, b\nlive_out t\n");
  const dfg::Graph mul = pattern_graph("t = mult a, b\nlive_out t\n");
  std::vector<flow::PortfolioCatalogEntry> catalog;
  catalog.push_back(make_entry(0, 0, 0, mul, 50.0, 100, 1.0));
  catalog.push_back(make_entry(1, 0, 0, add, 5.0, 100, 1.0));

  const flow::PortfolioSelection sel =
      flow::select_portfolio_ises(catalog, flow::SelectionConstraints{});
  ASSERT_EQ(sel.selected.size(), 2u);
  EXPECT_EQ(sel.selected[0].program_index, 1u);  // same benefit, cheaper ASFU
}

TEST(PortfolioSelectionTest, UnaffordableHeadRetiresBlock) {
  const dfg::Graph add = pattern_graph("t = addu a, b\nlive_out t\n");
  const dfg::Graph mul = pattern_graph("t = mult a, b\nlive_out t\n");
  const dfg::Graph x = pattern_graph("t = xor a, b\nlive_out t\n");
  std::vector<flow::PortfolioCatalogEntry> catalog;
  // Block (0,0): expensive head, cheap tail.  gain_cycles were measured
  // with the head committed, so the tail must never be cherry-picked.
  catalog.push_back(make_entry(0, 0, 0, mul, 100.0, 500, 1.0));
  catalog.push_back(make_entry(0, 0, 1, add, 1.0, 400, 1.0));
  // A different program's affordable entry.
  catalog.push_back(make_entry(1, 0, 0, x, 10.0, 50, 1.0));

  flow::SelectionConstraints constraints;
  constraints.area_budget = 50.0;
  const flow::PortfolioSelection sel =
      flow::select_portfolio_ises(catalog, constraints);
  ASSERT_EQ(sel.selected.size(), 1u);
  EXPECT_EQ(sel.selected[0].program_index, 1u);
  EXPECT_EQ(sel.total_area, 10.0);
}

TEST(PortfolioSelectionTest, SharedPatternIsFreeAndSkipsTypeBudget) {
  const dfg::Graph add_a = pattern_graph("t = addu a, b\nlive_out t\n");
  const dfg::Graph add_b = pattern_graph("s = addu p, q\nlive_out s\n");
  const dfg::Graph mul = pattern_graph("t = mult a, b\nlive_out t\n");
  std::vector<flow::PortfolioCatalogEntry> catalog;
  catalog.push_back(make_entry(0, 0, 0, add_a, 25.0, 300, 1.0));
  catalog.push_back(make_entry(1, 0, 0, add_b, 25.0, 200, 1.0));
  catalog.push_back(make_entry(2, 0, 0, mul, 25.0, 100, 1.0));

  flow::SelectionConstraints constraints;
  constraints.max_ises = 1;
  const flow::PortfolioSelection sel =
      flow::select_portfolio_ises(catalog, constraints);
  // The isomorphic adder is selected twice (one paid, one shared); the
  // multiplier needs a second type and is rejected by max_ises = 1.
  ASSERT_EQ(sel.selected.size(), 2u);
  EXPECT_EQ(sel.num_types, 1);
  EXPECT_EQ(sel.total_area, 25.0);
  EXPECT_FALSE(sel.selected[0].hardware_shared);
  EXPECT_TRUE(sel.selected[1].hardware_shared);
  EXPECT_EQ(sel.selected[0].type_id, sel.selected[1].type_id);
  EXPECT_EQ(sel.selected[1].program_index, 1u);
}

// ---------------------------------------------------------------------------
// Manifest validation through the non-throwing boundary.

TEST(PortfolioValidationTest, EmptyManifestIsRejected) {
  const Expected<flow::PortfolioResult> r = flow::run_portfolio_flow_checked(
      {}, hw::HwLibrary::paper_default(), portfolio_config());
  ASSERT_FALSE(r.has_value());
  EXPECT_EQ(r.error().code(), ErrorCode::kProgramEmpty);
}

TEST(PortfolioValidationTest, NonPositiveWeightIsRejected) {
  std::vector<flow::PortfolioEntry> entries;
  entries.push_back(entry_for(Benchmark::kCrc32, 0.0));
  const Expected<flow::PortfolioResult> r = flow::run_portfolio_flow_checked(
      entries, hw::HwLibrary::paper_default(), portfolio_config());
  ASSERT_FALSE(r.has_value());
  EXPECT_EQ(r.error().code(), ErrorCode::kFlowParamsInvalid);
}

TEST(PortfolioValidationTest, NonFiniteWeightIsRejected) {
  std::vector<flow::PortfolioEntry> entries;
  entries.push_back(
      entry_for(Benchmark::kCrc32, std::numeric_limits<double>::quiet_NaN()));
  const ValidationReport report = flow::validate(entries);
  EXPECT_FALSE(report.ok());
  EXPECT_EQ(report.first_error().code(), ErrorCode::kFlowParamsInvalid);
}

TEST(PortfolioValidationTest, ZeroCacheCapacityIsRejected) {
  std::vector<flow::PortfolioEntry> entries;
  entries.push_back(entry_for(Benchmark::kCrc32, 1.0));
  flow::PortfolioConfig config = portfolio_config();
  config.cache_capacity = 0;
  const Expected<flow::PortfolioResult> r = flow::run_portfolio_flow_checked(
      entries, hw::HwLibrary::paper_default(), config);
  ASSERT_FALSE(r.has_value());
  EXPECT_EQ(r.error().code(), ErrorCode::kFlowParamsInvalid);
}

// ---------------------------------------------------------------------------
// Canonical fingerprint regression (dedup-detection contract): permuted node
// ids give equal canonical keys, a one-operation perturbation does not, and
// the exact keys stay numbering-sensitive (they may carry cached makespans;
// canonical keys never do — the scheduler breaks ties by node id).

// Same DFG emitted in two statement orders.  The live-ins x, y appear in the
// same first-use order in both, so only the *node* numbering differs.
constexpr const char* kOrderA =
    "a = addu x, y\n"
    "b = mult x, y\n"
    "c = xor a, b\n"
    "live_out c\n";
constexpr const char* kOrderB =
    "b = mult x, y\n"
    "a = addu x, y\n"
    "c = xor a, b\n"
    "live_out c\n";
// kOrderB with one opcode perturbed.
constexpr const char* kPerturbed =
    "b = mult x, y\n"
    "a = subu x, y\n"
    "c = xor a, b\n"
    "live_out c\n";

dfg::NodeId node_by_label(const dfg::Graph& graph, const std::string& label) {
  for (std::size_t v = 0; v < graph.num_nodes(); ++v)
    if (graph.node(static_cast<dfg::NodeId>(v)).label == label)
      return static_cast<dfg::NodeId>(v);
  ADD_FAILURE() << "no node labelled '" << label << "'";
  return 0;
}

dfg::NodeSet members_of(const dfg::Graph& graph,
                        const std::vector<std::string>& labels) {
  dfg::NodeSet members(graph.num_nodes());
  for (const std::string& label : labels)
    members.insert(node_by_label(graph, label));
  return members;
}

TEST(PortfolioCanonicalKeyTest, RenumberedGraphsShareCanonicalDigest) {
  const dfg::Graph a = pattern_graph(kOrderA);
  const dfg::Graph b = pattern_graph(kOrderB);
  // Statement order permutes the node ids...
  EXPECT_NE(node_by_label(a, "a"), node_by_label(b, "a"));
  // ...so the exact digests differ, but the canonical digests agree.
  const runtime::Key128 exact_a = runtime::graph_digest(a);
  const runtime::Key128 exact_b = runtime::graph_digest(b);
  EXPECT_FALSE(exact_a == exact_b);
  EXPECT_EQ(runtime::canonical_graph_digest(a),
            runtime::canonical_graph_digest(b));
}

TEST(PortfolioCanonicalKeyTest, PerturbationChangesCanonicalDigest) {
  EXPECT_FALSE(runtime::canonical_graph_digest(pattern_graph(kOrderB)) ==
               runtime::canonical_graph_digest(pattern_graph(kPerturbed)));
}

TEST(PortfolioCanonicalKeyTest, RenumberedCandidatesShareCanonicalKey) {
  const dfg::Graph a = pattern_graph(kOrderA);
  const dfg::Graph b = pattern_graph(kOrderB);
  const runtime::CanonicalLabeling label_a = runtime::canonical_labeling(a);
  const runtime::CanonicalLabeling label_b = runtime::canonical_labeling(b);
  const dfg::IseInfo info;
  const sched::MachineConfig machine = sched::MachineConfig::make(2, {6, 3});
  const sched::PriorityKind priority = sched::PriorityKind::kChildCount;

  // The {a, c} candidate occupies different node ids in the two numberings.
  const dfg::NodeSet in_a = members_of(a, {"a", "c"});
  const dfg::NodeSet in_b = members_of(b, {"a", "c"});
  EXPECT_NE(in_a, in_b);

  EXPECT_EQ(
      runtime::canonical_candidate_key(label_a, in_a, info, machine, priority),
      runtime::canonical_candidate_key(label_b, in_b, info, machine, priority));
  // The exact (value-carrying) keys stay numbering-sensitive.
  EXPECT_FALSE(runtime::candidate_key(runtime::graph_digest(a), in_a, info,
                                      machine, priority) ==
               runtime::candidate_key(runtime::graph_digest(b), in_b, info,
                                      machine, priority));
  // A different member set is a different canonical candidate.
  EXPECT_FALSE(runtime::canonical_candidate_key(label_a, in_a, info, machine,
                                                priority) ==
               runtime::canonical_candidate_key(label_a,
                                                members_of(a, {"b", "c"}),
                                                info, machine, priority));
}

// ---------------------------------------------------------------------------
// Wire protocol: manifest parsing and the order-invariant signature.

std::string json_escape(const std::string& text) {
  std::string out;
  for (const char c : text) {
    if (c == '\n')
      out += "\\n";
    else if (c == '"' || c == '\\')
      out += std::string("\\") + c;
    else
      out += c;
  }
  return out;
}

constexpr const char* kBlendKernel =
    "ia = subu 255, alpha\n"
    "m0 = mult fg, alpha\n"
    "m1 = mult bg, ia\n"
    "s = addu m0, m1\n"
    "blend = srl s, 8\n"
    "live_out blend\n";

constexpr const char* kSigmaKernel =
    "r7a = srl x, 7\n"
    "r7b = sll x, 25\n"
    "r7 = or r7a, r7b\n"
    "s3 = srl x, 3\n"
    "sigma = xor r7, s3\n"
    "live_out sigma\n";

std::string program_obj(const char* kernel, double weight,
                        const std::string& name = "") {
  std::string obj = "{\"kernel\":\"" + json_escape(kernel) + "\"";
  obj += ",\"weight\":" + std::to_string(weight);
  if (!name.empty()) obj += ",\"name\":\"" + name + "\"";
  return obj + "}";
}

std::string portfolio_line(const std::string& id,
                           const std::string& programs_json,
                           const std::string& extra = "") {
  std::string line =
      "{\"id\":\"" + id + "\",\"programs\":[" + programs_json +
      "],\"repeats\":2";
  if (!extra.empty()) line += "," + extra;
  return line + "}";
}

TEST(PortfolioSignatureTest, InvariantUnderManifestOrder) {
  const Expected<server::JobRequest> fwd = server::parse_job_request(
      portfolio_line("fwd", program_obj(kBlendKernel, 2.0) + "," +
                                program_obj(kSigmaKernel, 1.0)));
  const Expected<server::JobRequest> rev = server::parse_job_request(
      portfolio_line("rev", program_obj(kSigmaKernel, 1.0) + "," +
                                program_obj(kBlendKernel, 2.0)));
  ASSERT_TRUE(fwd.has_value());
  ASSERT_TRUE(rev.has_value());

  Expected<isa::ParsedBlock> blend = isa::parse_tac_checked(kBlendKernel);
  Expected<isa::ParsedBlock> sigma = isa::parse_tac_checked(kSigmaKernel);
  ASSERT_TRUE(blend.has_value());
  ASSERT_TRUE(sigma.has_value());

  const std::vector<const dfg::Graph*> fwd_graphs{&blend->graph,
                                                  &sigma->graph};
  const std::vector<const dfg::Graph*> rev_graphs{&sigma->graph,
                                                  &blend->graph};
  EXPECT_EQ(server::portfolio_signature(fwd_graphs, fwd.value()),
            server::portfolio_signature(rev_graphs, rev.value()));

  // Changing one weight changes the signature.
  const Expected<server::JobRequest> reweighted = server::parse_job_request(
      portfolio_line("rw", program_obj(kBlendKernel, 3.0) + "," +
                               program_obj(kSigmaKernel, 1.0)));
  ASSERT_TRUE(reweighted.has_value());
  EXPECT_FALSE(server::portfolio_signature(fwd_graphs, fwd.value()) ==
               server::portfolio_signature(fwd_graphs, reweighted.value()));
}

TEST(PortfolioSignatureTest, ParseRejectsMalformedManifests) {
  // 'kernel' and 'programs' are mutually exclusive.
  const Expected<server::JobRequest> both = server::parse_job_request(
      "{\"id\":\"x\",\"kernel\":\"" + json_escape(kBlendKernel) +
      "\",\"programs\":[" + program_obj(kSigmaKernel, 1.0) + "]}");
  ASSERT_FALSE(both.has_value());
  EXPECT_EQ(both.error().code(), ErrorCode::kServerProtocol);

  // A program object needs a kernel.
  const Expected<server::JobRequest> no_kernel = server::parse_job_request(
      "{\"id\":\"x\",\"programs\":[{\"weight\":1.0}]}");
  EXPECT_FALSE(no_kernel.has_value());

  // Weights must be finite and positive.
  const Expected<server::JobRequest> bad_weight = server::parse_job_request(
      portfolio_line("x", program_obj(kBlendKernel, 0.0)));
  EXPECT_FALSE(bad_weight.has_value());

  // Unknown per-program fields are rejected like unknown top-level ones.
  const Expected<server::JobRequest> unknown = server::parse_job_request(
      "{\"id\":\"x\",\"programs\":[{\"kernel\":\"" +
      json_escape(kSigmaKernel) + "\",\"bogus\":1}]}");
  EXPECT_FALSE(unknown.has_value());
}

// ---------------------------------------------------------------------------
// isex_serve round trip: a portfolio job computes once, then resubmission —
// in-process or after a restart — is answered from the persistent cache with
// zero re-exploration.

std::string extract_field(const std::string& response, const char* key) {
  const std::string needle = std::string("\"") + key + "\":";
  const std::size_t at = response.find(needle);
  if (at == std::string::npos) return "";
  std::size_t begin = at + needle.size();
  std::size_t end = begin;
  while (end < response.size() && response[end] != ',' &&
         response[end] != '}')
    ++end;
  return response.substr(begin, end - begin);
}

TEST(PortfolioServerTest, RoundTripResubmitAndRestartHitTheCache) {
  const std::string cache_path =
      ::testing::TempDir() + "isex_portfolio_roundtrip.cache";
  std::remove(cache_path.c_str());
  const std::string manifest = program_obj(kBlendKernel, 2.0, "blend") + "," +
                               program_obj(kSigmaKernel, 1.0, "sigma");

  std::string digest;
  {
    server::ServerOptions options;
    options.port = 0;
    options.cache_path = cache_path;
    server::Server server(options);
    ASSERT_TRUE(server.start().has_value());

    const std::string cold =
        server.process_line(portfolio_line("cold", manifest));
    ASSERT_NE(cold.find("\"ok\":true"), std::string::npos) << cold;
    EXPECT_NE(cold.find("\"portfolio\":true"), std::string::npos) << cold;
    EXPECT_NE(cold.find("\"cache_hit\":false"), std::string::npos) << cold;
    EXPECT_NE(cold.find("\"name\":\"blend\""), std::string::npos) << cold;
    digest = extract_field(cold, "result_digest");
    ASSERT_FALSE(digest.empty());

    // Same manifest, new id: answered from the result cache, bit-identical.
    const std::string warm =
        server.process_line(portfolio_line("warm", manifest));
    EXPECT_NE(warm.find("\"cache_hit\":true"), std::string::npos) << warm;
    EXPECT_EQ(extract_field(warm, "result_digest"), digest);

    server.request_drain();
    ASSERT_EQ(server.wait(), 0);
  }
  {
    // Restart on the same log: the blob was persisted, so the job is
    // answered from disk without re-exploring anything.
    server::ServerOptions options;
    options.port = 0;
    options.cache_path = cache_path;
    server::Server server(options);
    ASSERT_TRUE(server.start().has_value());
    const std::string replay =
        server.process_line(portfolio_line("replay", manifest));
    EXPECT_NE(replay.find("\"cache_hit\":true"), std::string::npos) << replay;
    EXPECT_EQ(extract_field(replay, "result_digest"), digest);
    server.request_drain();
    EXPECT_EQ(server.wait(), 0);
  }
  std::remove(cache_path.c_str());
}

}  // namespace
}  // namespace isex
