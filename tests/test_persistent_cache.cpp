// PersistentEvalCache edge cases: round-trip, warm start, corrupt-record
// tolerance (truncated tail, checksum flip, version mismatch), duplicate
// suppression, the EvalCache write-through sink, and concurrent writers
// (the latter is part of the TSan CI matrix).
#include "runtime/persistent_cache.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "runtime/eval_cache.hpp"

namespace isex::runtime {
namespace {

Key128 key_of(std::uint64_t n) {
  Hash64 lo(1), hi(2);
  lo.mix(n);
  hi.mix(n);
  return Key128{lo.value(), hi.value()};
}

class PersistentCacheTest : public ::testing::Test {
 protected:
  /// Fresh per-test path (the file does not exist yet).
  std::string cache_path() {
    const ::testing::TestInfo* info =
        ::testing::UnitTest::GetInstance()->current_test_info();
    std::string path = ::testing::TempDir() + "isex_persist_" +
                       info->test_suite_name() + "_" + info->name() + ".log";
    std::remove(path.c_str());
    return path;
  }

  static std::string read_file(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    return std::string(std::istreambuf_iterator<char>(in), {});
  }

  static void write_file(const std::string& path, const std::string& data) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(data.data(), static_cast<std::streamsize>(data.size()));
  }
};

TEST_F(PersistentCacheTest, MissingFileLoadsEmpty) {
  const std::string path = cache_path();
  PersistentEvalCache cache(path);
  const PersistLoadReport report = cache.load(nullptr);
  EXPECT_EQ(report.schedule_entries, 0u);
  EXPECT_EQ(report.blob_entries, 0u);
  EXPECT_EQ(report.corrupt_skipped, 0u);
  EXPECT_FALSE(report.version_mismatch);
  EXPECT_TRUE(report.report.ok());
}

TEST_F(PersistentCacheTest, RoundTripScheduleEvalsAndBlobs) {
  const std::string path = cache_path();
  {
    PersistentEvalCache cache(path);
    cache.load(nullptr);
    for (std::uint64_t i = 0; i < 50; ++i)
      cache.put_schedule_eval(key_of(i), static_cast<int>(i * 3));
    cache.put_blob(key_of(1000), "first blob");
    cache.put_blob(key_of(1001), std::string("binary\0payload", 14));
    cache.flush();
  }
  EvalCache warmed(1 << 10, 4);
  PersistentEvalCache reloaded(path);
  const PersistLoadReport report = reloaded.load(&warmed);
  EXPECT_EQ(report.schedule_entries, 50u);
  EXPECT_EQ(report.blob_entries, 2u);
  EXPECT_EQ(report.corrupt_skipped, 0u);
  for (std::uint64_t i = 0; i < 50; ++i) {
    const auto hit = warmed.lookup(key_of(i));
    ASSERT_TRUE(hit.has_value()) << i;
    EXPECT_EQ(*hit, static_cast<int>(i * 3));
  }
  EXPECT_EQ(reloaded.lookup_blob(key_of(1000)), "first blob");
  EXPECT_EQ(reloaded.lookup_blob(key_of(1001)),
            std::string("binary\0payload", 14));
  EXPECT_FALSE(reloaded.lookup_blob(key_of(999)).has_value());
}

TEST_F(PersistentCacheTest, LastBlobRecordWinsOnLoad) {
  const std::string path = cache_path();
  {
    PersistentEvalCache cache(path);
    cache.load(nullptr);
    cache.put_blob(key_of(7), "stale");
    cache.put_blob(key_of(7), "fresh");
    cache.flush();
  }
  PersistentEvalCache reloaded(path);
  reloaded.load(nullptr);
  EXPECT_EQ(reloaded.lookup_blob(key_of(7)), "fresh");
}

TEST_F(PersistentCacheTest, DuplicateScheduleEvalNotReappended) {
  const std::string path = cache_path();
  PersistentEvalCache cache(path);
  cache.load(nullptr);
  cache.put_schedule_eval(key_of(1), 42);
  cache.put_schedule_eval(key_of(1), 42);  // same key: skipped
  EXPECT_EQ(cache.stats().appends, 1u);
}

TEST_F(PersistentCacheTest, TruncatedTrailingRecordSkipped) {
  const std::string path = cache_path();
  {
    PersistentEvalCache cache(path);
    cache.load(nullptr);
    cache.put_schedule_eval(key_of(1), 11);
    cache.put_schedule_eval(key_of(2), 22);
    cache.flush();
  }
  // Chop the last record mid-payload: a torn append after a crash.
  std::string data = read_file(path);
  write_file(path, data.substr(0, data.size() - 9));

  EvalCache warmed(1 << 10, 4);
  PersistentEvalCache reloaded(path);
  const PersistLoadReport report = reloaded.load(&warmed);
  EXPECT_EQ(report.schedule_entries, 1u);
  EXPECT_EQ(report.corrupt_skipped, 1u);
  EXPECT_TRUE(report.report.ok());  // corruption is a warning, not an error
  EXPECT_FALSE(report.report.empty());
  EXPECT_EQ(report.report.issues()[0].code(), ErrorCode::kPersistCorruptRecord);
  EXPECT_TRUE(warmed.lookup(key_of(1)).has_value());
  EXPECT_FALSE(warmed.lookup(key_of(2)).has_value());
}

TEST_F(PersistentCacheTest, ChecksumFlipSkipsRecordAndResyncs) {
  const std::string path = cache_path();
  {
    PersistentEvalCache cache(path);
    cache.load(nullptr);
    cache.put_schedule_eval(key_of(1), 11);
    cache.put_schedule_eval(key_of(2), 22);
    cache.flush();
  }
  // Flip one byte inside the *first* record's payload (header is 16 bytes,
  // record prefix is 21): the record fails its checksum, the reader must
  // resynchronize and still load the second record.
  std::string data = read_file(path);
  data[16 + 21] = static_cast<char>(data[16 + 21] ^ 0x40);
  write_file(path, data);

  EvalCache warmed(1 << 10, 4);
  PersistentEvalCache reloaded(path);
  const PersistLoadReport report = reloaded.load(&warmed);
  EXPECT_EQ(report.schedule_entries, 1u);
  EXPECT_EQ(report.corrupt_skipped, 1u);
  EXPECT_FALSE(warmed.lookup(key_of(1)).has_value());
  EXPECT_TRUE(warmed.lookup(key_of(2)).has_value());
}

TEST_F(PersistentCacheTest, VersionMismatchIgnoredWithWarning) {
  const std::string path = cache_path();
  {
    PersistentEvalCache cache(path);
    cache.load(nullptr);
    cache.put_schedule_eval(key_of(1), 11);
    cache.flush();
  }
  // Bump the version field (bytes 8..11) to a future format.
  std::string data = read_file(path);
  data[8] = static_cast<char>(PersistentEvalCache::kFormatVersion + 1);
  write_file(path, data);

  EvalCache warmed(1 << 10, 4);
  PersistentEvalCache reloaded(path);
  const PersistLoadReport report = reloaded.load(&warmed);
  EXPECT_TRUE(report.version_mismatch);
  EXPECT_EQ(report.schedule_entries, 0u);
  ASSERT_FALSE(report.report.empty());
  EXPECT_EQ(report.report.issues()[0].code(),
            ErrorCode::kPersistVersionMismatch);
  EXPECT_EQ(report.report.issues()[0].severity(), Severity::kWarning);
  EXPECT_TRUE(report.report.ok());

  // Appending after a mismatch rewrites the file in the current format.
  reloaded.put_schedule_eval(key_of(9), 99);
  reloaded.flush();
  PersistentEvalCache fresh(path);
  const PersistLoadReport fresh_report = fresh.load(&warmed);
  EXPECT_FALSE(fresh_report.version_mismatch);
  EXPECT_EQ(fresh_report.schedule_entries, 1u);
  EXPECT_EQ(warmed.lookup(key_of(9)), 99);
}

TEST_F(PersistentCacheTest, GarbageFileIgnoredWithWarning) {
  const std::string path = cache_path();
  write_file(path, "this is not a cache file\n");
  PersistentEvalCache cache(path);
  const PersistLoadReport report = cache.load(nullptr);
  EXPECT_TRUE(report.version_mismatch);
  EXPECT_TRUE(report.report.ok());
}

TEST_F(PersistentCacheTest, EvalCacheSinkWritesThrough) {
  const std::string path = cache_path();
  {
    EvalCache cache(1 << 10, 4);
    PersistentEvalCache persist(path);
    persist.load(&cache);
    cache.set_persist_sink([&persist](const Key128& key, int value) {
      persist.put_schedule_eval(key, value);
    });
    cache.insert(key_of(1), 10);
    cache.insert(key_of(2), 20);
    cache.insert(key_of(1), 10);  // duplicate insert: no fresh insertion
    cache.set_persist_sink(nullptr);
    cache.insert(key_of(3), 30);  // after detach: not persisted
    persist.flush();
    EXPECT_EQ(persist.stats().appends, 2u);
  }
  EvalCache warmed(1 << 10, 4);
  PersistentEvalCache reloaded(path);
  const PersistLoadReport report = reloaded.load(&warmed);
  EXPECT_EQ(report.schedule_entries, 2u);
  EXPECT_EQ(warmed.lookup(key_of(1)), 10);
  EXPECT_EQ(warmed.lookup(key_of(2)), 20);
  EXPECT_FALSE(warmed.lookup(key_of(3)).has_value());
}

TEST_F(PersistentCacheTest, ConcurrentWritersSerialized) {
  const std::string path = cache_path();
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 64;
  {
    PersistentEvalCache cache(path);
    cache.load(nullptr);
    std::vector<std::thread> writers;
    writers.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      writers.emplace_back([&cache, t] {
        for (std::uint64_t i = 0; i < kPerThread; ++i) {
          const std::uint64_t n =
              static_cast<std::uint64_t>(t) * kPerThread + i;
          cache.put_schedule_eval(key_of(n), static_cast<int>(n));
          if (i % 8 == 0)
            cache.put_blob(key_of(100000 + n), "blob " + std::to_string(n));
        }
      });
    }
    for (std::thread& w : writers) w.join();
    cache.flush();
  }
  // Every record must come back intact: interleaved appends corrupt the
  // framing, so a clean reload is the serialization proof.
  EvalCache warmed(1 << 12, 4);
  PersistentEvalCache reloaded(path);
  const PersistLoadReport report = reloaded.load(&warmed);
  EXPECT_EQ(report.corrupt_skipped, 0u);
  EXPECT_EQ(report.schedule_entries, kThreads * kPerThread);
  EXPECT_EQ(report.blob_entries, kThreads * (kPerThread / 8));
  for (std::uint64_t n = 0; n < kThreads * kPerThread; ++n)
    EXPECT_EQ(warmed.lookup(key_of(n)), static_cast<int>(n)) << n;
}

}  // namespace
}  // namespace isex::runtime
