// Shared graph builders for the test suite: canonical shapes (chain,
// diamond, fork) and a seeded random-DAG generator for property tests.
#pragma once

#include <vector>

#include "dfg/graph.hpp"
#include "isa/opcode.hpp"
#include "util/rng.hpp"

namespace isex::testing {

/// Linear chain v0 -> v1 -> ... of `length` nodes, all `op`.
inline dfg::Graph make_chain(std::size_t length,
                             isa::Opcode op = isa::Opcode::kAddu) {
  dfg::Graph g;
  dfg::NodeId prev = dfg::kInvalidNode;
  for (std::size_t i = 0; i < length; ++i) {
    const dfg::NodeId v = g.add_node(op, "n" + std::to_string(i));
    if (prev != dfg::kInvalidNode) {
      g.add_edge(prev, v);
    } else {
      g.set_extern_inputs(v, 2);
    }
    prev = v;
  }
  if (prev != dfg::kInvalidNode) g.set_live_out(prev, true);
  return g;
}

/// Diamond: a -> {b, c} -> d.
inline dfg::Graph make_diamond(isa::Opcode op = isa::Opcode::kXor) {
  dfg::Graph g;
  const auto a = g.add_node(op, "a");
  const auto b = g.add_node(op, "b");
  const auto c = g.add_node(op, "c");
  const auto d = g.add_node(op, "d");
  g.add_edge(a, b);
  g.add_edge(a, c);
  g.add_edge(b, d);
  g.add_edge(c, d);
  g.set_extern_inputs(a, 2);
  g.set_live_out(d, true);
  return g;
}

/// `width` independent 2-node chains (high ILP, no cross dependences).
inline dfg::Graph make_parallel_pairs(std::size_t width,
                                      isa::Opcode op = isa::Opcode::kAddu) {
  dfg::Graph g;
  for (std::size_t i = 0; i < width; ++i) {
    const auto a = g.add_node(op, "a" + std::to_string(i));
    const auto b = g.add_node(op, "b" + std::to_string(i));
    g.add_edge(a, b);
    g.set_extern_inputs(a, 2);
    g.set_live_out(b, true);
  }
  return g;
}

/// Random DAG: `n` nodes; each node gets up to 2 predecessors drawn from
/// earlier nodes with probability `edge_prob`.  Opcodes cycle through an
/// ISE-eligible mix.  Sinks are live-out; sources get 2 extern inputs.
inline dfg::Graph make_random_dag(std::size_t n, Rng& rng,
                                  double edge_prob = 0.6) {
  static constexpr isa::Opcode kOps[] = {
      isa::Opcode::kAddu, isa::Opcode::kXor,  isa::Opcode::kAnd,
      isa::Opcode::kSrl,  isa::Opcode::kSubu, isa::Opcode::kOr,
      isa::Opcode::kSll,  isa::Opcode::kSltu,
  };
  dfg::Graph g;
  for (std::size_t i = 0; i < n; ++i) {
    const auto v = g.add_node(kOps[i % std::size(kOps)], "r" + std::to_string(i));
    int preds = 0;
    if (i > 0) {
      for (int k = 0; k < 2; ++k) {
        if (rng.next_double() < edge_prob) {
          const auto p = static_cast<dfg::NodeId>(rng.next_below(
              static_cast<std::uint32_t>(i)));
          if (!g.has_edge(p, v)) {
            g.add_edge(p, v);
            ++preds;
          }
        }
      }
    }
    g.set_extern_inputs(v, 2 - preds > 0 ? 2 - preds : 0);
  }
  for (dfg::NodeId v = 0; v < g.num_nodes(); ++v)
    if (g.succs(v).empty()) g.set_live_out(v, true);
  return g;
}

}  // namespace isex::testing
