// isex_serve server subsystem: JobQueue admission control, the wire
// protocol's parse/signature/render layer, deterministic queue-full and
// drain semantics through Server::process_line, and socket end-to-end
// round trips including the warm-cache restart path.
#include "server/server.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "isa/tac_parser.hpp"
#include "server/job_queue.hpp"
#include "server/protocol.hpp"

namespace isex::server {
namespace {

// Small real kernels (examples/kernels flavor), inline so the tests are
// hermetic.
constexpr const char* kBlendKernel =
    "ia = subu 255, alpha\n"
    "m0 = mult fg, alpha\n"
    "m1 = mult bg, ia\n"
    "s = addu m0, m1\n"
    "blend = srl s, 8\n"
    "live_out blend\n";

constexpr const char* kSigmaKernel =
    "r7a = srl x, 7\n"
    "r7b = sll x, 25\n"
    "r7 = or r7a, r7b\n"
    "s3 = srl x, 3\n"
    "sigma = xor r7, s3\n"
    "live_out sigma\n";

std::string json_escape(const std::string& text) {
  std::string out;
  for (const char c : text) {
    if (c == '\n')
      out += "\\n";
    else if (c == '"' || c == '\\')
      out += std::string("\\") + c;
    else
      out += c;
  }
  return out;
}

std::string job_line(const char* kernel, const std::string& id,
                     const std::string& extra = "") {
  std::string line =
      "{\"id\":\"" + id + "\",\"kernel\":\"" + json_escape(kernel) +
      "\",\"repeats\":2";
  if (!extra.empty()) line += "," + extra;
  return line + "}";
}

std::string extract_field(const std::string& response, const char* key) {
  const std::string needle = std::string("\"") + key + "\":";
  const std::size_t at = response.find(needle);
  if (at == std::string::npos) return "";
  std::size_t begin = at + needle.size();
  std::size_t end = begin;
  while (end < response.size() && response[end] != ',' &&
         response[end] != '}')
    ++end;
  return response.substr(begin, end - begin);
}

void wait_for_depth(JobQueue& queue, std::size_t depth) {
  for (int i = 0; i < 5000; ++i) {
    if (queue.depth() == depth) return;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  FAIL() << "queue never reached depth " << depth;
}

// ---------------------------------------------------------------------------
// JobQueue: the admission-control contract.

TEST(JobQueue, PopsHigherPriorityFirstAndFifoWithin) {
  JobQueue queue(16);
  std::vector<int> order;
  auto job = [&order](int tag) {
    return QueuedJob{0, [&order, tag] { order.push_back(tag); }};
  };
  QueuedJob low1 = job(1), low2 = job(2), high = job(3), mid = job(4);
  low1.priority = 0;
  low2.priority = 0;
  high.priority = 5;
  mid.priority = 2;
  EXPECT_EQ(queue.push(std::move(low1)), JobQueue::PushResult::kAccepted);
  EXPECT_EQ(queue.push(std::move(low2)), JobQueue::PushResult::kAccepted);
  EXPECT_EQ(queue.push(std::move(high)), JobQueue::PushResult::kAccepted);
  EXPECT_EQ(queue.push(std::move(mid)), JobQueue::PushResult::kAccepted);
  EXPECT_EQ(queue.depth(), 4u);
  for (int i = 0; i < 4; ++i) {
    auto popped = queue.pop();
    ASSERT_TRUE(popped.has_value());
    popped->run();
  }
  // High before mid before the two lows; equal priorities keep FIFO order.
  EXPECT_EQ(order, (std::vector<int>{3, 4, 1, 2}));
}

TEST(JobQueue, RejectsWhenFull) {
  JobQueue queue(2);
  EXPECT_EQ(queue.push({0, [] {}}), JobQueue::PushResult::kAccepted);
  EXPECT_EQ(queue.push({0, [] {}}), JobQueue::PushResult::kAccepted);
  EXPECT_EQ(queue.push({9, [] {}}), JobQueue::PushResult::kFull);
  EXPECT_EQ(queue.depth(), 2u);  // the rejected job left no residue
  queue.pop();
  EXPECT_EQ(queue.push({0, [] {}}), JobQueue::PushResult::kAccepted);
}

TEST(JobQueue, CloseDrainsAcceptedJobsThenUnblocks) {
  JobQueue queue(8);
  int ran = 0;
  queue.push({1, [&ran] { ++ran; }});
  queue.push({2, [&ran] { ++ran; }});
  queue.close();
  EXPECT_TRUE(queue.closed());
  EXPECT_EQ(queue.push({0, [] {}}), JobQueue::PushResult::kClosed);
  // Accepted jobs still drain, in priority order, then pop() returns empty.
  auto first = queue.pop();
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->priority, 2);
  first->run();
  auto second = queue.pop();
  ASSERT_TRUE(second.has_value());
  second->run();
  EXPECT_EQ(ran, 2);
  EXPECT_FALSE(queue.pop().has_value());
}

TEST(JobQueue, PopBlocksUntilPushArrives) {
  JobQueue queue(4);
  std::promise<int> popped;
  std::thread consumer([&queue, &popped] {
    auto job = queue.pop();
    popped.set_value(job.has_value() ? job->priority : -1);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  queue.push({7, [] {}});
  EXPECT_EQ(popped.get_future().get(), 7);
  consumer.join();
}

// ---------------------------------------------------------------------------
// Protocol: parsing, signatures, rendering.

TEST(Protocol, ParseFillsDefaults) {
  const auto request =
      parse_job_request("{\"kernel\":\"a = addu b, c\\nlive_out a\\n\"}");
  ASSERT_TRUE(request.has_value());
  EXPECT_EQ(request->kernel, "a = addu b, c\nlive_out a\n");
  EXPECT_EQ(request->priority, 0);
  EXPECT_EQ(request->issue, 2);
  EXPECT_EQ(request->read_ports, 6);
  EXPECT_EQ(request->write_ports, 3);
  EXPECT_EQ(request->repeats, 5);
  EXPECT_EQ(request->seed, 1u);
  EXPECT_EQ(request->colonies, 1);
  EXPECT_EQ(request->merge_interval, 8);
  EXPECT_FALSE(request->has_area_budget);
  EXPECT_FALSE(request->baseline);
}

TEST(Protocol, ParseReadsEveryField) {
  const auto request = parse_job_request(
      "{\"id\":\"j1\",\"kernel\":\"k\",\"priority\":3,\"issue\":4,"
      "\"read_ports\":8,\"write_ports\":4,\"repeats\":2,"
      "\"seed\":18446744073709551615,\"area_budget\":1500.5,"
      "\"max_ises\":7,\"baseline\":true,"
      "\"colonies\":4,\"merge_interval\":3}");
  ASSERT_TRUE(request.has_value());
  EXPECT_EQ(request->id, "j1");
  EXPECT_EQ(request->priority, 3);
  EXPECT_EQ(request->issue, 4);
  EXPECT_EQ(request->read_ports, 8);
  EXPECT_EQ(request->write_ports, 4);
  EXPECT_EQ(request->repeats, 2);
  // Full 64-bit seeds survive the JSON number path.
  EXPECT_EQ(request->seed, 18446744073709551615ull);
  EXPECT_TRUE(request->has_area_budget);
  EXPECT_DOUBLE_EQ(request->area_budget, 1500.5);
  EXPECT_EQ(request->max_ises, 7);
  EXPECT_TRUE(request->baseline);
  EXPECT_EQ(request->colonies, 4);
  EXPECT_EQ(request->merge_interval, 3);
}

TEST(Protocol, ParseRejectsUnknownFieldAndBadJson) {
  const auto typo = parse_job_request("{\"kernel\":\"k\",\"repeast\":3}");
  ASSERT_FALSE(typo.has_value());
  EXPECT_EQ(typo.error().code(), ErrorCode::kServerProtocol);

  for (const char* bad :
       {"", "not json", "{\"kernel\":", "[1,2]", "{\"id\":\"x\"}",
        "{\"kernel\":\"k\",\"priority\":\"high\"}"}) {
    const auto request = parse_job_request(bad);
    EXPECT_FALSE(request.has_value()) << bad;
    if (!request.has_value())
      EXPECT_EQ(request.error().code(), ErrorCode::kServerProtocol) << bad;
  }
}

TEST(Protocol, JobSignatureSeparatesEveryResultAffectingParameter) {
  const auto block = isa::parse_tac_checked(kBlendKernel);
  ASSERT_TRUE(block.has_value());
  JobRequest base;
  base.kernel = kBlendKernel;
  const runtime::Key128 key = job_signature(block->graph, base);

  // Same graph + same parameters → same key (the cache contract)...
  EXPECT_EQ(job_signature(block->graph, base), key);

  // ...and every parameter that changes the result changes the key.
  JobRequest variant = base;
  variant.seed = 2;
  EXPECT_NE(job_signature(block->graph, variant), key);
  variant = base;
  variant.issue = 4;
  EXPECT_NE(job_signature(block->graph, variant), key);
  variant = base;
  variant.repeats = 9;
  EXPECT_NE(job_signature(block->graph, variant), key);
  variant = base;
  variant.area_budget = 1000.0;
  variant.has_area_budget = true;
  EXPECT_NE(job_signature(block->graph, variant), key);
  variant = base;
  variant.baseline = true;
  EXPECT_NE(job_signature(block->graph, variant), key);

  // Colonies reshape the search, so they separate signatures; the merge
  // interval only matters once there is more than one colony.
  variant = base;
  variant.colonies = 4;
  const runtime::Key128 four = job_signature(block->graph, variant);
  EXPECT_NE(four, key);
  variant.merge_interval = 3;
  EXPECT_NE(job_signature(block->graph, variant), four);

  // The id and priority are delivery concerns, not evaluation parameters.
  variant = base;
  variant.id = "renamed";
  variant.priority = 9;
  EXPECT_EQ(job_signature(block->graph, variant), key);

  // With a single colony the merge interval is inert — no merges ever
  // happen — so varying it must NOT fragment the cache.
  variant = base;
  variant.merge_interval = 99;
  EXPECT_EQ(job_signature(block->graph, variant), key);

  const auto other = isa::parse_tac_checked(kSigmaKernel);
  ASSERT_TRUE(other.has_value());
  EXPECT_NE(job_signature(other->graph, base), key);
}

TEST(Protocol, ErrorResponseCarriesStableCode) {
  const Error error(ErrorCode::kServerQueueFull, "queue is full (64 jobs)");
  const std::string line = render_error_response("job-9", error);
  EXPECT_NE(line.find("\"id\":\"job-9\""), std::string::npos);
  EXPECT_NE(line.find("\"ok\":false"), std::string::npos);
  EXPECT_NE(line.find("\"error_code\":\"E0602\""), std::string::npos);
  EXPECT_NE(line.find("server-queue-full"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Server: deterministic admission control through process_line.

TEST(Server, QueueFullAndDrainSemantics) {
  ServerOptions options;
  options.port = 0;
  options.queue_capacity = 1;
  options.workers = 1;
  Server server(options);
  ASSERT_TRUE(server.start().has_value());

  // Occupy the single worker with a job we control, so queue occupancy is
  // deterministic from here on.
  std::promise<void> release;
  std::shared_future<void> released = release.get_future().share();
  ASSERT_EQ(server.queue().push({0, [released] { released.wait(); }}),
            JobQueue::PushResult::kAccepted);
  wait_for_depth(server.queue(), 0);  // the worker has picked it up

  // A real job fills the one queue slot and waits on its future.
  std::string first_response;
  std::thread submitter([&server, &first_response] {
    first_response = server.process_line(job_line(kBlendKernel, "queued"));
  });
  wait_for_depth(server.queue(), 1);

  // The next submission hits the bound: stable E0602, nothing enqueued.
  const std::string full = server.process_line(
      job_line(kSigmaKernel, "overflow", "\"seed\":2"));
  EXPECT_NE(full.find("\"ok\":false"), std::string::npos);
  EXPECT_NE(full.find("\"error_code\":\"E0602\""), std::string::npos);
  EXPECT_EQ(server.queue().depth(), 1u);

  // Drain: new work is rejected with E0603, accepted work still completes.
  server.request_drain();
  const std::string draining = server.process_line(
      job_line(kSigmaKernel, "late", "\"seed\":3"));
  EXPECT_NE(draining.find("\"error_code\":\"E0603\""), std::string::npos);

  release.set_value();
  submitter.join();
  EXPECT_NE(first_response.find("\"id\":\"queued\""), std::string::npos);
  EXPECT_NE(first_response.find("\"ok\":true"), std::string::npos);
  EXPECT_EQ(server.wait(), 0);
}

TEST(Server, RepeatSubmissionIsABitIdenticalCacheHit) {
  ServerOptions options;
  options.port = 0;
  Server server(options);
  ASSERT_TRUE(server.start().has_value());

  const std::string first =
      server.process_line(job_line(kBlendKernel, "first"));
  ASSERT_NE(first.find("\"ok\":true"), std::string::npos) << first;
  EXPECT_NE(first.find("\"cache_hit\":false"), std::string::npos);
  const std::string digest = extract_field(first, "result_digest");
  ASSERT_FALSE(digest.empty());

  const std::string repeat =
      server.process_line(job_line(kBlendKernel, "second"));
  EXPECT_NE(repeat.find("\"cache_hit\":true"), std::string::npos);
  EXPECT_EQ(extract_field(repeat, "result_digest"), digest);
  // Identical modulo the per-delivery fields: the cached fragment replays
  // verbatim.
  EXPECT_EQ(first.substr(first.find("\"reduction\"")),
            repeat.substr(repeat.find("\"reduction\"")));

  const std::string invalid =
      server.process_line("{\"kernel\":\"a = bogus b\\n\"}");
  EXPECT_NE(invalid.find("\"ok\":false"), std::string::npos);
  EXPECT_NE(invalid.find("\"error_code\":\"E01"), std::string::npos);

  server.request_drain();
  EXPECT_EQ(server.wait(), 0);
}

TEST(Server, ResponsesCarryPerJobTimings) {
  ServerOptions options;
  options.port = 0;
  Server server(options);
  ASSERT_TRUE(server.start().has_value());

  const std::string miss =
      server.process_line(job_line(kBlendKernel, "timed"));
  ASSERT_NE(miss.find("\"ok\":true"), std::string::npos) << miss;
  ASSERT_NE(miss.find("\"timings\":{"), std::string::npos) << miss;
  for (const char* field : {"queue_wait_us", "validate_us", "explore_us",
                            "cache_us", "total_us"})
    EXPECT_FALSE(extract_field(miss, field).empty()) << field << ": " << miss;
  // A real exploration ran: explore time is nonzero and inside the total.
  const std::uint64_t explore_us = std::stoull(extract_field(miss,
                                                             "explore_us"));
  const std::uint64_t total_us = std::stoull(extract_field(miss, "total_us"));
  EXPECT_GT(explore_us, 0u);
  EXPECT_GE(total_us, explore_us);

  // The cache hit still reports timings (zero explore), and the result
  // payload stays bit-identical to the miss (timings precede the fragment).
  const std::string hit =
      server.process_line(job_line(kBlendKernel, "timed2"));
  ASSERT_NE(hit.find("\"cache_hit\":true"), std::string::npos) << hit;
  ASSERT_NE(hit.find("\"timings\":{"), std::string::npos) << hit;
  EXPECT_EQ(extract_field(hit, "explore_us"), "0");
  EXPECT_EQ(hit.substr(hit.find("\"reduction\"")),
            miss.substr(miss.find("\"reduction\"")));

  server.request_drain();
  EXPECT_EQ(server.wait(), 0);
}

TEST(Server, StatuszShowsQueuedJobWhileInFlight) {
  ServerOptions options;
  options.port = 0;
  options.queue_capacity = 4;
  options.workers = 1;
  Server server(options);
  ASSERT_TRUE(server.start().has_value());

  // Pin the single worker so a submitted job provably sits in the queue.
  std::promise<void> release;
  std::shared_future<void> released = release.get_future().share();
  ASSERT_EQ(server.queue().push({0, [released] { released.wait(); }}),
            JobQueue::PushResult::kAccepted);
  wait_for_depth(server.queue(), 0);

  std::string response;
  std::thread submitter([&server, &response] {
    response = server.process_line(job_line(kBlendKernel, "observed"));
  });
  wait_for_depth(server.queue(), 1);

  const std::string statusz = server.render_statusz();
  EXPECT_NE(statusz.find("\"id\":\"observed\""), std::string::npos)
      << statusz;
  EXPECT_NE(statusz.find("\"stage\":\"queued\""), std::string::npos)
      << statusz;
  EXPECT_NE(statusz.find("\"depth\":1"), std::string::npos) << statusz;

  release.set_value();
  submitter.join();
  EXPECT_NE(response.find("\"ok\":true"), std::string::npos);

  // Completed: the job left the inflight table.
  const std::string after = server.render_statusz();
  EXPECT_EQ(after.find("\"id\":\"observed\""), std::string::npos) << after;

  server.request_drain();
  EXPECT_EQ(server.wait(), 0);
}

TEST(Server, WarmStartAnswersFromDiskWithZeroReExploration) {
  const std::string cache_path =
      ::testing::TempDir() + "isex_server_warm_start.cache";
  std::remove(cache_path.c_str());

  std::string digest;
  {
    ServerOptions options;
    options.port = 0;
    options.cache_path = cache_path;
    Server server(options);
    ASSERT_TRUE(server.start().has_value());
    const std::string response =
        server.process_line(job_line(kBlendKernel, "cold"));
    ASSERT_NE(response.find("\"ok\":true"), std::string::npos) << response;
    digest = extract_field(response, "result_digest");
    server.request_drain();
    ASSERT_EQ(server.wait(), 0);
  }
  {
    ServerOptions options;
    options.port = 0;
    options.cache_path = cache_path;
    Server server(options);
    ASSERT_TRUE(server.start().has_value());
    const std::string response =
        server.process_line(job_line(kBlendKernel, "warm"));
    // Answered from the warm-started disk log: a hit, bit-identical.
    EXPECT_NE(response.find("\"cache_hit\":true"), std::string::npos)
        << response;
    EXPECT_EQ(extract_field(response, "result_digest"), digest);
    server.request_drain();
    EXPECT_EQ(server.wait(), 0);
  }
  std::remove(cache_path.c_str());
}

// ---------------------------------------------------------------------------
// Socket end-to-end: the wire path (connect, JSON lines, HTTP endpoints).

class Connection {
 public:
  Connection(std::uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }
  ~Connection() {
    if (fd_ >= 0) ::close(fd_);
  }
  bool ok() const { return fd_ >= 0; }

  void send_raw(const std::string& data) {
    ASSERT_EQ(::send(fd_, data.data(), data.size(), 0),
              static_cast<ssize_t>(data.size()));
  }

  std::string read_line() {
    std::string line;
    char c;
    while (::recv(fd_, &c, 1, 0) == 1) {
      if (c == '\n') return line;
      line += c;
    }
    return line;
  }

  std::string read_all() {
    std::string body;
    char buffer[4096];
    ssize_t n;
    while ((n = ::recv(fd_, buffer, sizeof buffer, 0)) > 0)
      body.append(buffer, static_cast<std::size_t>(n));
    return body;
  }

 private:
  int fd_ = -1;
};

TEST(Server, SocketEndToEndWithMetricsAndHealth) {
  ServerOptions options;
  options.port = 0;  // ephemeral
  Server server(options);
  const Expected<std::uint16_t> port = server.start();
  ASSERT_TRUE(port.has_value());

  {
    Connection conn(*port);
    ASSERT_TRUE(conn.ok());
    conn.send_raw(job_line(kSigmaKernel, "wire", "\"seed\":7") + "\n");
    const std::string first = conn.read_line();
    ASSERT_NE(first.find("\"ok\":true"), std::string::npos) << first;
    EXPECT_NE(first.find("\"cache_hit\":false"), std::string::npos);

    // Same connection, same job: answered from cache, digest unchanged.
    conn.send_raw(job_line(kSigmaKernel, "wire2", "\"seed\":7") + "\n");
    const std::string repeat = conn.read_line();
    EXPECT_NE(repeat.find("\"cache_hit\":true"), std::string::npos);
    EXPECT_EQ(extract_field(repeat, "result_digest"),
              extract_field(first, "result_digest"));
  }
  {
    Connection scrape(*port);
    ASSERT_TRUE(scrape.ok());
    scrape.send_raw("GET /metrics HTTP/1.1\r\nHost: t\r\n\r\n");
    const std::string metrics = scrape.read_all();
    EXPECT_NE(metrics.find("HTTP/1.1 200"), std::string::npos);
    EXPECT_NE(metrics.find("isex_server_job_cache_hits_total"),
              std::string::npos);
    EXPECT_NE(metrics.find("isex_server_jobs_completed_total"),
              std::string::npos);
    EXPECT_NE(metrics.find("isex_server_connections_total"),
              std::string::npos);
  }
  {
    Connection health(*port);
    ASSERT_TRUE(health.ok());
    health.send_raw("GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n");
    const std::string body = health.read_all();
    EXPECT_NE(body.find("HTTP/1.1 200"), std::string::npos);
    EXPECT_NE(body.find("ok"), std::string::npos);
  }

  server.request_drain();
  EXPECT_EQ(server.wait(), 0);
}

TEST(Server, StatuszEndpointServesIntrospectionJson) {
  ServerOptions options;
  options.port = 0;
  Server server(options);
  const Expected<std::uint16_t> port = server.start();
  ASSERT_TRUE(port.has_value());

  // One real job so the latency histogram and job counters are populated.
  {
    Connection conn(*port);
    ASSERT_TRUE(conn.ok());
    conn.send_raw(job_line(kSigmaKernel, "sz", "\"seed\":11") + "\n");
    ASSERT_NE(conn.read_line().find("\"ok\":true"), std::string::npos);
  }
  {
    Connection scrape(*port);
    ASSERT_TRUE(scrape.ok());
    scrape.send_raw("GET /statusz HTTP/1.1\r\nHost: t\r\n\r\n");
    const std::string body = scrape.read_all();
    EXPECT_NE(body.find("HTTP/1.1 200"), std::string::npos);
    EXPECT_NE(body.find("application/json"), std::string::npos);
    // Shape: every top-level section of the introspection document.
    for (const char* key :
         {"\"uptime_us\"", "\"draining\"", "\"queue\"", "\"inflight\"",
          "\"jobs\"", "\"job_latency\"", "\"queue_wait\"", "\"cache\"",
          "\"pool\"", "\"workers\"", "\"task_histogram\""})
      EXPECT_NE(body.find(key), std::string::npos) << key << "\n" << body;
    EXPECT_NE(body.find("\"capacity\":64"), std::string::npos) << body;
    const std::string accepted = extract_field(body, "accepted");
    ASSERT_FALSE(accepted.empty());
    EXPECT_GE(std::stoull(accepted), 1u);
  }
  {
    // The Prometheus view carries the matching histogram buckets and the
    // queue-depth gauge.
    Connection scrape(*port);
    ASSERT_TRUE(scrape.ok());
    scrape.send_raw("GET /metrics HTTP/1.1\r\nHost: t\r\n\r\n");
    const std::string metrics = scrape.read_all();
    EXPECT_NE(metrics.find("# TYPE isex_server_job_latency_seconds "
                           "histogram"),
              std::string::npos);
    EXPECT_NE(metrics.find("isex_server_job_latency_seconds_bucket"),
              std::string::npos);
    EXPECT_NE(metrics.find("isex_server_queue_wait_seconds_bucket"),
              std::string::npos);
    EXPECT_NE(metrics.find("isex_server_queue_depth"), std::string::npos);
  }

  server.request_drain();
  EXPECT_EQ(server.wait(), 0);
}

}  // namespace
}  // namespace isex::server
