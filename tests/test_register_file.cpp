#include "isa/register_file.hpp"

#include <gtest/gtest.h>

namespace isex::isa {
namespace {

TEST(RegisterFile, LabelMatchesPaperShorthand) {
  EXPECT_EQ((RegisterFileConfig{4, 2}).label(), "4/2");
  EXPECT_EQ((RegisterFileConfig{10, 5}).label(), "10/5");
}

TEST(RegisterFile, Equality) {
  EXPECT_EQ((RegisterFileConfig{6, 3}), (RegisterFileConfig{6, 3}));
  EXPECT_NE((RegisterFileConfig{6, 3}), (RegisterFileConfig{8, 4}));
}

TEST(IsaFormat, PortBoundsFollowRegisterFile) {
  IsaFormat fmt;
  fmt.reg_file = {8, 4};
  EXPECT_EQ(fmt.max_ise_inputs(), 8);
  EXPECT_EQ(fmt.max_ise_outputs(), 4);
}

TEST(IsaFormat, DefaultOpcodeBudget) {
  const IsaFormat fmt;
  EXPECT_EQ(fmt.max_ises, 32);
}

// The paper's six evaluated configurations.
class PaperConfigs
    : public ::testing::TestWithParam<std::pair<int, RegisterFileConfig>> {};

TEST_P(PaperConfigs, PortsAccommodateIssueWidth) {
  const auto [issue, rf] = GetParam();
  // Sanity property the evaluation relies on: 2 reads + 1 write per slot.
  EXPECT_GE(rf.read_ports, issue * 2);
  EXPECT_GE(rf.write_ports, issue);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PaperConfigs,
    ::testing::Values(std::pair{2, RegisterFileConfig{4, 2}},
                      std::pair{2, RegisterFileConfig{6, 3}},
                      std::pair{3, RegisterFileConfig{6, 3}},
                      std::pair{3, RegisterFileConfig{8, 4}},
                      std::pair{4, RegisterFileConfig{8, 4}},
                      std::pair{4, RegisterFileConfig{10, 5}}));

}  // namespace
}  // namespace isex::isa
