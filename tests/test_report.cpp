#include "flow/report.hpp"

#include <gtest/gtest.h>

#include "bench_suite/kernels.hpp"

namespace isex::flow {
namespace {

FlowResult run_crc() {
  FlowConfig config;
  config.machine = sched::MachineConfig::make(2, {6, 3});
  config.repeats = 2;
  config.seed = 13;
  return run_design_flow(
      bench_suite::make_program(bench_suite::Benchmark::kCrc32,
                                bench_suite::OptLevel::kO3),
      hw::HwLibrary::paper_default(), config);
}

TEST(Report, ContainsSummaryAndSections) {
  const auto program = bench_suite::make_program(
      bench_suite::Benchmark::kCrc32, bench_suite::OptLevel::kO3);
  const FlowResult result = run_crc();
  const std::string text = to_report(program, result);
  EXPECT_NE(text.find("# ISE design report: CRC32"), std::string::npos);
  EXPECT_NE(text.find("## Selected ISEs"), std::string::npos);
  EXPECT_NE(text.find("## Per-block outcome"), std::string::npos);
  EXPECT_NE(text.find("reduction"), std::string::npos);
  EXPECT_NE(text.find("crc_step4"), std::string::npos);
}

TEST(Report, SectionsCanBeSuppressed) {
  const auto program = bench_suite::make_program(
      bench_suite::Benchmark::kCrc32, bench_suite::OptLevel::kO3);
  const FlowResult result = run_crc();
  ReportOptions options;
  options.per_block = false;
  options.per_ise = false;
  const std::string text = to_report(program, result, options);
  EXPECT_EQ(text.find("## Selected ISEs"), std::string::npos);
  EXPECT_EQ(text.find("## Per-block outcome"), std::string::npos);
  EXPECT_NE(text.find("ISE types:"), std::string::npos);
}

TEST(Report, EmptySelectionOmitsIseTable) {
  const auto program = bench_suite::make_program(
      bench_suite::Benchmark::kCrc32, bench_suite::OptLevel::kO3);
  FlowConfig config;
  config.machine = sched::MachineConfig::make(2, {6, 3});
  config.constraints.area_budget = 0.0;
  config.repeats = 1;
  const FlowResult result =
      run_design_flow(program, hw::HwLibrary::paper_default(), config);
  const std::string text = to_report(program, result);
  EXPECT_EQ(text.find("## Selected ISEs"), std::string::npos);
  EXPECT_NE(text.find("ISE types: 0"), std::string::npos);
}

}  // namespace
}  // namespace isex::flow
