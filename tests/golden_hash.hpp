// FNV-1a hashing of walk and exploration results, used by the golden-hash
// determinism regression tests.  The hash covers every observable field so
// any behavioural drift in the ant-walk hot path — however small — changes
// the digest.
#pragma once

#include <bit>
#include <cstdint>
#include <string_view>

#include "core/ant_walk.hpp"
#include "core/mi_explorer.hpp"

namespace isex::testing {

class Fnv1a {
 public:
  void mix(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      hash_ ^= (v >> (i * 8)) & 0xffu;
      hash_ *= 0x100000001b3ULL;
    }
  }
  void mix_int(long long v) { mix(static_cast<std::uint64_t>(v)); }
  void mix_double(double v) { mix(std::bit_cast<std::uint64_t>(v)); }
  void mix_string(std::string_view s) {
    for (const char c : s) mix(static_cast<std::uint64_t>(static_cast<unsigned char>(c)));
  }
  std::uint64_t value() const { return hash_; }

 private:
  std::uint64_t hash_ = 0xcbf29ce484222325ULL;
};

inline std::uint64_t hash_walk(const core::WalkResult& w) {
  Fnv1a h;
  const std::size_t n = w.chosen.size();
  h.mix_int(static_cast<long long>(n));
  for (std::size_t v = 0; v < n; ++v) {
    h.mix_int(w.chosen[v]);
    h.mix_int(w.slot[v]);
    h.mix_int(w.order[v]);
    h.mix_int(w.group_id[v]);
    h.mix_int(w.finish_of(static_cast<dfg::NodeId>(v)));
  }
  h.mix_int(w.tet);
  h.mix_int(static_cast<long long>(w.groups.size()));
  for (const core::GroupState& g : w.groups) {
    h.mix_int(g.start);
    h.mix_int(g.cycles);
    h.mix_int(g.reads);
    h.mix_int(g.writes);
    h.mix_double(g.depth_ns);
    g.members.for_each([&](dfg::NodeId m) { h.mix_int(m); });
  }
  return h.value();
}

inline std::uint64_t hash_exploration(const core::ExplorationResult& r) {
  Fnv1a h;
  h.mix_int(r.base_cycles);
  h.mix_int(r.final_cycles);
  h.mix_int(r.rounds);
  h.mix_int(r.total_iterations);
  h.mix_int(static_cast<long long>(r.ises.size()));
  for (const core::ExploredIse& ise : r.ises) {
    h.mix_int(ise.in_count);
    h.mix_int(ise.out_count);
    h.mix_int(ise.gain_cycles);
    h.mix_int(ise.eval.latency_cycles);
    h.mix_double(ise.eval.area);
    h.mix_double(ise.eval.depth_ns);
    ise.original_nodes.for_each([&](dfg::NodeId m) { h.mix_int(m); });
    for (const std::string& label : ise.member_labels) h.mix_string(label);
  }
  return h.value();
}

}  // namespace isex::testing
