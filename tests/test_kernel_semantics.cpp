// Functional ground truth for the benchmark suite: every modelled hot block
// is executed by the evaluator and checked against an independent reference
// implementation of the algorithm it models.  This is what licenses the
// claim that the synthetic kernels exercise the *same computation* the
// paper's benchmarks do.
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>

#include "bench_suite/kernels.hpp"
#include "exec/evaluator.hpp"

namespace isex {
namespace {

using bench_suite::Benchmark;
using bench_suite::OptLevel;

isa::ParsedBlock block_of(Benchmark b, OptLevel level, std::string_view name) {
  return isa::parse_tac(bench_suite::kernel_source(b, level, name));
}

// ---------------------------------------------------------------- bitcount

void bind_popcount_constants(exec::Evaluator& ev) {
  ev.set("c55", 0x55555555u);
  ev.set("c33", 0x33333333u);
  ev.set("c0f", 0x0F0F0F0Fu);
  ev.set("c01", 0x01010101u);
}

class BitcountSemantics : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(BitcountSemantics, O3PairMatchesStdPopcount) {
  const auto block = block_of(Benchmark::kBitcount, OptLevel::kO3, "bitcnt_x2");
  const std::uint32_t x = GetParam();
  const std::uint32_t y = ~x * 2654435761u;
  exec::Evaluator ev;
  bind_popcount_constants(ev);
  ev.set("x", x);
  ev.set("y", y);
  ev.set("sum", 1000);
  ev.run(block);
  EXPECT_EQ(ev.get("sum2"),
            1000u + static_cast<std::uint32_t>(std::popcount(x)) +
                static_cast<std::uint32_t>(std::popcount(y)));
}

TEST_P(BitcountSemantics, O0ThreeBlockChainMatchesStdPopcount) {
  const std::uint32_t x = GetParam();
  exec::Evaluator ev;
  bind_popcount_constants(ev);
  ev.set("x", x);
  ev.set("sum", 0);
  ev.run(block_of(Benchmark::kBitcount, OptLevel::kO0, "bitcnt_a"));
  ev.run(block_of(Benchmark::kBitcount, OptLevel::kO0, "bitcnt_b"));
  ev.run(block_of(Benchmark::kBitcount, OptLevel::kO0, "bitcnt_c"));
  EXPECT_EQ(ev.get("sum2"), static_cast<std::uint32_t>(std::popcount(x)));
}

INSTANTIATE_TEST_SUITE_P(Words, BitcountSemantics,
                         ::testing::Values(0u, 1u, 0xFFFFFFFFu, 0x80000001u,
                                           0xDEADBEEFu, 0x0F0F0F0Fu,
                                           0x12345678u, 0xAAAAAAAAu));

// ------------------------------------------------------------------- CRC32

std::uint32_t crc_step_ref(std::uint32_t crc, std::uint32_t data,
                           std::uint32_t poly) {
  const std::uint32_t bit = (crc ^ data) & 1u;
  return (crc >> 1) ^ (bit ? poly : 0u);
}

TEST(Crc32Semantics, O0StepMatchesShiftRegister) {
  const auto block = block_of(Benchmark::kCrc32, OptLevel::kO0, "crc_step");
  constexpr std::uint32_t kPoly = 0xEDB88320u;
  std::uint32_t crc = 0xFFFFFFFFu;
  std::uint32_t data = 0xC3u;
  for (int i = 0; i < 8; ++i) {
    exec::Evaluator ev;
    ev.set("crc", crc);
    ev.set("data", data);
    ev.set("poly", kPoly);
    ev.run(block);
    const std::uint32_t expected = crc_step_ref(crc, data, kPoly);
    EXPECT_EQ(ev.get("crc_n"), expected);
    EXPECT_EQ(ev.get("d0"), data >> 1);
    crc = expected;
    data >>= 1;
  }
}

TEST(Crc32Semantics, O3UnrolledBlockEqualsFourSteps) {
  const auto block = block_of(Benchmark::kCrc32, OptLevel::kO3, "crc_step4");
  constexpr std::uint32_t kPoly = 0xEDB88320u;
  std::uint32_t crc = 0x12345678u;
  std::uint32_t data = 0xB7u;
  exec::Evaluator ev;
  ev.set("crc", crc);
  ev.set("data", data);
  ev.set("poly", kPoly);
  ev.set("i", 0);
  ev.run(block);
  for (int i = 0; i < 4; ++i) {
    crc = crc_step_ref(crc, data, kPoly);
    data >>= 1;
  }
  EXPECT_EQ(ev.get("crc4"), crc);
  EXPECT_EQ(ev.get("d4"), data);
  EXPECT_EQ(ev.get("i4"), 4u);
  EXPECT_EQ(ev.get("c4"), 1u);  // 4 < 8
}

TEST(Crc32Semantics, FetchXorsByteIntoCrc) {
  const auto block = block_of(Benchmark::kCrc32, OptLevel::kO3, "crc_fetch");
  exec::Evaluator ev;
  ev.set("buf", 0x2000);
  ev.set("idx", 3);
  ev.set("len", 16);
  ev.set("crc", 0xA5A5A5A5u);
  ev.memory().store_byte(0x2003, 0x7E);
  ev.run(block);
  EXPECT_EQ(ev.get("data"), 0xA5A5A5A5u ^ 0x7Eu);
  EXPECT_EQ(ev.get("idx2"), 4u);
  EXPECT_EQ(ev.get("c"), 1u);
}

// ------------------------------------------------------------------- adpcm

std::uint32_t vpdiff_ref(std::uint32_t delta, std::uint32_t step,
                         std::uint32_t valpred) {
  std::uint32_t v = step >> 3;
  if (delta & 4) v += step;
  if (delta & 2) v += step >> 1;
  if (delta & 1) v += step >> 2;
  return valpred + ((delta & 8) ? -v : v);
}

class AdpcmSemantics : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(AdpcmSemantics, O3VpdiffMatchesImaReference) {
  const auto block = block_of(Benchmark::kAdpcm, OptLevel::kO3, "adpcm_vpdiff");
  const std::uint32_t delta = GetParam();
  for (const std::uint32_t step : {7u, 16u, 19u, 1552u, 32767u}) {
    exec::Evaluator ev;
    ev.set("delta", delta);
    ev.set("step", step);
    ev.set("valpred", 5000);
    ev.run(block);
    EXPECT_EQ(ev.get("val"), vpdiff_ref(delta, step, 5000))
        << "delta=" << delta << " step=" << step;
  }
}

TEST_P(AdpcmSemantics, O0ThreeBlockChainMatchesMagnitudePart) {
  // The O0 split computes the unsigned vpdiff accumulation (sign handling
  // happens in the merged val).
  const std::uint32_t delta = GetParam();
  const std::uint32_t step = 352;
  exec::Evaluator ev;
  ev.set("delta", delta);
  ev.set("step", step);
  ev.set("valpred", 100);
  ev.run(block_of(Benchmark::kAdpcm, OptLevel::kO0, "adpcm_vp_a"));
  ev.run(block_of(Benchmark::kAdpcm, OptLevel::kO0, "adpcm_vp_b"));
  ev.run(block_of(Benchmark::kAdpcm, OptLevel::kO0, "adpcm_vp_c"));
  std::uint32_t v = step >> 3;
  if (delta & 4) v += step;
  if (delta & 2) v += step >> 1;
  if (delta & 1) v += step >> 2;
  EXPECT_EQ(ev.get("val"), 100u + v);
}

INSTANTIATE_TEST_SUITE_P(AllCodes, AdpcmSemantics, ::testing::Range(0u, 16u));

TEST(AdpcmSemantics, StepTableUpdateClampsIndex) {
  const auto block = block_of(Benchmark::kAdpcm, OptLevel::kO3, "adpcm_step");
  exec::Evaluator ev;
  ev.set("delta", 7);
  ev.set("index", 80);
  ev.set("idxtab", 0x3000);
  ev.set("steptab", 0x4000);
  ev.memory().store_word(0x3000 + 7 * 4, 8);          // idxtab[7] = +8
  ev.memory().store_word(0x4000 + 88 * 4, 32767);     // steptab[88]
  ev.run(block);
  EXPECT_EQ(ev.get("idx3"), 88u);  // 80 + 8 = 88, clamped branchlessly
  EXPECT_EQ(ev.get("step2"), 32767u);

  exec::Evaluator ev2;
  ev2.set("delta", 0);
  ev2.set("index", 30);
  ev2.set("idxtab", 0x3000);
  ev2.set("steptab", 0x4000);
  ev2.memory().store_word(0x3000, static_cast<std::uint32_t>(-1));
  ev2.memory().store_word(0x4000 + 29 * 4, 408);
  ev2.run(block);
  EXPECT_EQ(ev2.get("idx3"), 29u);
  EXPECT_EQ(ev2.get("step2"), 408u);
}

// ---------------------------------------------------------------- blowfish

TEST(BlowfishSemantics, O3RoundMatchesFeistelReference) {
  const auto block = block_of(Benchmark::kBlowfish, OptLevel::kO3, "bf_round");
  exec::Evaluator ev;
  const std::uint32_t xl = 0x01234567u;
  const std::uint32_t xr = 0x89ABCDEFu;
  const std::uint32_t pkey = 0x243F6A88u;
  ev.set("xl", xl);
  ev.set("xr", xr);
  ev.set("pkey", pkey);
  const std::uint32_t s0 = 0x10000, s1 = 0x20000, s2 = 0x30000, s3 = 0x40000;
  ev.set("s0", s0);
  ev.set("s1", s1);
  ev.set("s2", s2);
  ev.set("s3", s3);

  const std::uint32_t xl1 = xl ^ pkey;
  const std::uint32_t a = xl1 >> 24;
  const std::uint32_t b = (xl1 >> 16) & 0xFF;
  const std::uint32_t c = (xl1 >> 8) & 0xFF;
  const std::uint32_t d = xl1 & 0xFF;
  const std::uint32_t va = 0x11111111u, vb = 0x22222222u, vc = 0x33333333u,
                      vd = 0x44444444u;
  ev.memory().store_word(s0 + a * 4, va);
  ev.memory().store_word(s1 + b * 4, vb);
  ev.memory().store_word(s2 + c * 4, vc);
  ev.memory().store_word(s3 + d * 4, vd);

  ev.run(block);
  const std::uint32_t f = ((va + vb) ^ vc) + vd;
  EXPECT_EQ(ev.get("xl1"), xl1);
  EXPECT_EQ(ev.get("xr1"), xr ^ f);
}

TEST(BlowfishSemantics, SwapBlockExchangesHalves) {
  const auto block = block_of(Benchmark::kBlowfish, OptLevel::kO3, "bf_swap");
  exec::Evaluator ev;
  ev.set("xl1", 111);
  ev.set("xr1", 222);
  ev.set("kp", 0x5000);
  ev.set("round", 3);
  ev.memory().store_word(0x5004, 0xB7E15162u);
  ev.run(block);
  EXPECT_EQ(ev.get("xl2"), 222u);
  EXPECT_EQ(ev.get("xr2"), 111u);
  EXPECT_EQ(ev.get("pkey2"), 0xB7E15162u);
  EXPECT_EQ(ev.get("r2"), 4u);
  EXPECT_EQ(ev.get("c"), 1u);
}

// -------------------------------------------------------------------- jpeg

TEST(JpegSemantics, O3EvenPartMatchesButterflyReference) {
  const auto block = block_of(Benchmark::kJpeg, OptLevel::kO3, "idct_col");
  exec::Evaluator ev;
  const std::int32_t x0 = 512, x2 = -96, x4 = 40, x6 = 12;
  const std::int32_t qt0 = 16, qt2 = 19, qt4 = 22, qt6 = 29;
  ev.set("x0", static_cast<std::uint32_t>(x0));
  ev.set("x2", static_cast<std::uint32_t>(x2));
  ev.set("x4", static_cast<std::uint32_t>(x4));
  ev.set("x6", static_cast<std::uint32_t>(x6));
  ev.set("qt0", static_cast<std::uint32_t>(qt0));
  ev.set("qt2", static_cast<std::uint32_t>(qt2));
  ev.set("qt4", static_cast<std::uint32_t>(qt4));
  ev.set("qt6", static_cast<std::uint32_t>(qt6));
  ev.run(block);

  const std::int32_t s0 = (x0 * qt0) >> 3;
  const std::int32_t s2 = (x2 * qt2) >> 3;
  const std::int32_t s4 = (x4 * qt4) >> 3;
  const std::int32_t s6 = (x6 * qt6) >> 3;
  const std::int32_t p0 = s0 + s4;
  const std::int32_t p1 = s0 - s4;
  const std::int32_t r0 = s2 + s6;
  const std::int32_t r1 = (((s2 - s6) * 181) >> 7) - r0;
  EXPECT_EQ(ev.get("o0"), static_cast<std::uint32_t>((p0 + r0) >> 6));
  EXPECT_EQ(ev.get("o1"), static_cast<std::uint32_t>((p1 + r1) >> 6));
  EXPECT_EQ(ev.get("o2"), static_cast<std::uint32_t>((p1 - r1) >> 6));
  EXPECT_EQ(ev.get("o3"), static_cast<std::uint32_t>((p0 - r0) >> 6));
}

TEST(JpegSemantics, StoreRowClampsAndStores) {
  const auto block = block_of(Benchmark::kJpeg, OptLevel::kO3, "idct_store");
  exec::Evaluator ev;
  ev.set("o0", 100);  // 100 + 128 = 228, in range
  ev.set("dst", 0x6000);
  ev.set("off", 2);
  ev.set("lim", 8);
  ev.run(block);
  EXPECT_EQ(ev.memory().load_byte(0x6002), 228u);
  EXPECT_EQ(ev.get("off2"), 3u);
}

// ---------------------------------------------------------------- dijkstra

TEST(DijkstraSemantics, O3RelaxStoresMinimum) {
  const auto block = block_of(Benchmark::kDijkstra, OptLevel::kO3, "dij_relax");
  for (const bool improves : {true, false}) {
    exec::Evaluator ev;
    const std::uint32_t edges = 0x7000, dist = 0x8000;
    const std::uint32_t e = 2, v = 5, w = 7;
    const std::uint32_t du = 10;
    const std::uint32_t old_dv = improves ? 100u : 3u;
    ev.set("edges", edges);
    ev.set("dist", dist);
    ev.set("e", e);
    ev.set("du", du);
    ev.set("deg", 8);
    ev.memory().store_word(edges + e * 8, w);
    ev.memory().store_word(edges + e * 8 + 4, v);
    ev.memory().store_word(dist + v * 4, old_dv);
    ev.run(block);
    const std::uint32_t expected = improves ? du + w : old_dv;
    EXPECT_EQ(ev.memory().load_word(dist + v * 4), expected);
    EXPECT_EQ(ev.get("e2"), 3u);
  }
}

TEST(DijkstraSemantics, ScanMinTracksMinimum) {
  const auto block = block_of(Benchmark::kDijkstra, OptLevel::kO3, "dij_scan");
  exec::Evaluator ev;
  ev.set("dist", 0x8000);
  ev.set("i", 4);
  ev.set("bestd", 50);
  ev.set("nv", 16);
  ev.memory().store_word(0x8000 + 4 * 4, 20);
  ev.run(block);
  EXPECT_EQ(ev.get("bestd2"), 20u);

  exec::Evaluator ev2;
  ev2.set("dist", 0x8000);
  ev2.set("i", 4);
  ev2.set("bestd", 10);
  ev2.set("nv", 16);
  ev2.memory().store_word(0x8000 + 4 * 4, 20);
  ev2.run(block);
  EXPECT_EQ(ev2.get("bestd2"), 10u);
}

// --------------------------------------------------------------------- fft

TEST(FftSemantics, O3ButterflyMatchesFixedPointRotation) {
  const auto block = block_of(Benchmark::kFft, OptLevel::kO3, "fft_bfly_x2");
  exec::Evaluator ev;
  const std::int32_t wr = 23170, wi = -23170;  // ~sqrt(2)/2 in Q15
  const std::int32_t xr = 1000, xi = -2000;
  const std::int32_t ar = 300, ai = 400;
  ev.set("wr", static_cast<std::uint32_t>(wr));
  ev.set("wi", static_cast<std::uint32_t>(wi));
  ev.set("xr", static_cast<std::uint32_t>(xr));
  ev.set("xi", static_cast<std::uint32_t>(xi));
  ev.set("ar", static_cast<std::uint32_t>(ar));
  ev.set("ai", static_cast<std::uint32_t>(ai));
  // Second butterfly lane.
  ev.set("wr2", 32767);
  ev.set("wi2", 0);
  ev.set("ur", 5);
  ev.set("ui", 6);
  ev.set("br", 7);
  ev.set("bi", 8);
  ev.run(block);

  const std::int32_t tr = (wr * xr - wi * xi) >> 15;
  const std::int32_t ti = (wr * xi + wi * xr) >> 15;
  EXPECT_EQ(ev.get("yr0"), static_cast<std::uint32_t>(ar + tr));
  EXPECT_EQ(ev.get("yi0"), static_cast<std::uint32_t>(ai + ti));
  EXPECT_EQ(ev.get("yr1"), static_cast<std::uint32_t>(ar - tr));
  EXPECT_EQ(ev.get("yi1"), static_cast<std::uint32_t>(ai - ti));
  // Identity twiddle on the second lane: t = ur, ui scaled by ~1.
  const std::int32_t sr = (32767 * 5) >> 15;
  const std::int32_t si = (32767 * 6) >> 15;
  EXPECT_EQ(ev.get("zr0"), static_cast<std::uint32_t>(7 + sr));
  EXPECT_EQ(ev.get("zi0"), static_cast<std::uint32_t>(8 + si));
}

TEST(FftSemantics, BitReverseStepShiftsAndAccumulates) {
  const auto block = block_of(Benchmark::kFft, OptLevel::kO3, "fft_bitrev");
  exec::Evaluator ev;
  ev.set("idx", 0b1011);
  ev.set("acc", 0b110);
  ev.set("n", 16);
  ev.run(block);
  EXPECT_EQ(ev.get("r0"), 0b101u);
  EXPECT_EQ(ev.get("acc2"), 0b1101u);
}

}  // namespace
}  // namespace isex
