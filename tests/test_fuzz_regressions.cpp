// Replays the fuzz corpus and every fuzz-found regression through the
// harness entry points as plain tests, so input-boundary crashes stay fixed
// without requiring a libFuzzer toolchain.  ISEX_FUZZ_DIR points at the
// source-tree fuzz/ directory (set by tests/CMakeLists.txt).
#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <vector>

#include "fuzz_targets.hpp"

namespace isex {
namespace {

namespace fs = std::filesystem;

std::vector<fs::path> inputs_under(const fs::path& dir) {
  std::vector<fs::path> paths;
  for (const auto& entry : fs::recursive_directory_iterator(dir))
    if (entry.is_regular_file()) paths.push_back(entry.path());
  std::sort(paths.begin(), paths.end());
  return paths;
}

std::vector<std::uint8_t> read_bytes(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

class FuzzReplay : public ::testing::TestWithParam<fs::path> {};

TEST_P(FuzzReplay, TacParserHarnessSurvives) {
  const std::vector<std::uint8_t> bytes = read_bytes(GetParam());
  EXPECT_EQ(fuzz::run_tac_parser_input(bytes.data(), bytes.size()), 0);
}

TEST_P(FuzzReplay, RoundtripHarnessSurvives) {
  const std::vector<std::uint8_t> bytes = read_bytes(GetParam());
  EXPECT_EQ(fuzz::run_roundtrip_input(bytes.data(), bytes.size()), 0);
}

// Every corpus file (TAC kernels included — they are simply rejected specs)
// must also survive the cache-config harness.
TEST_P(FuzzReplay, CacheConfigHarnessSurvives) {
  const std::vector<std::uint8_t> bytes = read_bytes(GetParam());
  EXPECT_EQ(fuzz::run_cache_config_input(bytes.data(), bytes.size()), 0);
}

std::string test_name(const ::testing::TestParamInfo<fs::path>& info) {
  std::string name = info.param.filename().string();
  for (char& c : name)
    if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
  return name;
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, FuzzReplay,
    ::testing::ValuesIn(inputs_under(fs::path(ISEX_FUZZ_DIR) / "corpus")),
    test_name);

INSTANTIATE_TEST_SUITE_P(
    Regressions, FuzzReplay,
    ::testing::ValuesIn(inputs_under(fs::path(ISEX_FUZZ_DIR) / "regressions")),
    test_name);

// The harnesses must also tolerate degenerate buffers that never exist as
// corpus files (null data with zero size).
TEST(FuzzReplay, EmptyBuffer) {
  EXPECT_EQ(fuzz::run_tac_parser_input(nullptr, 0), 0);
  EXPECT_EQ(fuzz::run_roundtrip_input(nullptr, 0), 0);
  EXPECT_EQ(fuzz::run_cache_config_input(nullptr, 0), 0);
}

}  // namespace
}  // namespace isex
