#include "dfg/graph.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "test_util.hpp"

namespace isex::dfg {
namespace {

TEST(Graph, AddNodesAndEdges) {
  Graph g;
  const auto a = g.add_node(isa::Opcode::kAddu, "a");
  const auto b = g.add_node(isa::Opcode::kXor, "b");
  g.add_edge(a, b);
  EXPECT_EQ(g.num_nodes(), 2u);
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_TRUE(g.has_edge(a, b));
  EXPECT_FALSE(g.has_edge(b, a));
  ASSERT_EQ(g.succs(a).size(), 1u);
  EXPECT_EQ(g.succs(a)[0], b);
  ASSERT_EQ(g.preds(b).size(), 1u);
  EXPECT_EQ(g.preds(b)[0], a);
}

TEST(Graph, DuplicateEdgeIgnored) {
  Graph g;
  const auto a = g.add_node(isa::Opcode::kAddu);
  const auto b = g.add_node(isa::Opcode::kAddu);
  g.add_edge(a, b);
  g.add_edge(a, b);
  EXPECT_EQ(g.num_edges(), 1u);
}

TEST(Graph, NodeMetadata) {
  Graph g;
  const auto v = g.add_node(isa::Opcode::kMult, "product");
  EXPECT_EQ(g.node(v).opcode, isa::Opcode::kMult);
  EXPECT_EQ(g.node(v).label, "product");
  EXPECT_FALSE(g.node(v).is_ise);
  g.set_extern_inputs(v, 2);
  g.set_live_out(v, true);
  EXPECT_EQ(g.extern_inputs(v), 2);
  EXPECT_TRUE(g.live_out(v));
}

TEST(Graph, IseNode) {
  Graph g;
  IseInfo info;
  info.latency_cycles = 2;
  info.area = 1234.5;
  info.num_inputs = 3;
  info.num_outputs = 1;
  const auto v = g.add_ise_node(info, "ISE");
  EXPECT_TRUE(g.node(v).is_ise);
  EXPECT_EQ(g.node(v).ise.latency_cycles, 2);
  EXPECT_DOUBLE_EQ(g.node(v).ise.area, 1234.5);
}

TEST(Graph, TopologicalOrderRespectsEdges) {
  Rng rng(13);
  const Graph g = testing::make_random_dag(40, rng);
  const std::vector<NodeId> topo = g.topological_order();
  ASSERT_EQ(topo.size(), g.num_nodes());
  std::vector<std::size_t> position(g.num_nodes());
  for (std::size_t i = 0; i < topo.size(); ++i) position[topo[i]] = i;
  for (NodeId u = 0; u < g.num_nodes(); ++u)
    for (const NodeId v : g.succs(u)) EXPECT_LT(position[u], position[v]);
}

TEST(Graph, IsAcyclicOnDags) {
  Rng rng(17);
  for (int i = 0; i < 10; ++i) {
    const Graph g = testing::make_random_dag(25, rng);
    EXPECT_TRUE(g.is_acyclic());
  }
}

TEST(Graph, AllNodesSet) {
  const Graph g = testing::make_chain(5);
  EXPECT_EQ(g.all_nodes().count(), 5u);
}

TEST(GraphCollapse, ChainMiddle) {
  // 0 -> 1 -> 2 -> 3 -> 4; collapse {1, 2, 3}.
  Graph g = testing::make_chain(5);
  NodeSet members = NodeSet::of(5, {1, 2, 3});
  IseInfo info;
  info.latency_cycles = 1;
  info.area = 500.0;
  info.num_inputs = 1;
  info.num_outputs = 1;
  std::vector<NodeId> remap;
  const Graph reduced = g.collapse(members, info, &remap);

  EXPECT_EQ(reduced.num_nodes(), 3u);  // head, ISE, tail
  EXPECT_EQ(remap[1], remap[2]);
  EXPECT_EQ(remap[2], remap[3]);
  const NodeId super = remap[1];
  EXPECT_TRUE(reduced.node(super).is_ise);
  EXPECT_EQ(reduced.node(super).ise.member_labels.size(), 3u);
  EXPECT_TRUE(reduced.has_edge(remap[0], super));
  EXPECT_TRUE(reduced.has_edge(super, remap[4]));
  EXPECT_TRUE(reduced.is_acyclic());
}

TEST(GraphCollapse, AggregatesExternInputsAndLiveOut) {
  Graph g;
  const auto a = g.add_node(isa::Opcode::kAddu, "a");
  const auto b = g.add_node(isa::Opcode::kXor, "b");
  g.add_edge(a, b);
  g.set_extern_inputs(a, 2);
  g.set_extern_inputs(b, 1);
  g.set_live_out(b, true);
  std::vector<NodeId> remap;
  const Graph reduced =
      g.collapse(NodeSet::of(2, {0, 1}), IseInfo{}, &remap);
  ASSERT_EQ(reduced.num_nodes(), 1u);
  EXPECT_EQ(reduced.extern_inputs(remap[a]), 3);
  EXPECT_TRUE(reduced.live_out(remap[b]));
}

TEST(GraphCollapse, DiamondBranchKeepsOutsidePath) {
  Graph g = testing::make_diamond();
  // Collapse {a, b}: c stays outside and must still bridge a-side to d.
  std::vector<NodeId> remap;
  const Graph reduced =
      g.collapse(NodeSet::of(4, {0, 1}), IseInfo{}, &remap);
  EXPECT_EQ(reduced.num_nodes(), 3u);
  EXPECT_TRUE(reduced.has_edge(remap[0], remap[2]));  // super -> c
  EXPECT_TRUE(reduced.has_edge(remap[2], remap[3]));  // c -> d
  EXPECT_TRUE(reduced.has_edge(remap[0], remap[3]));  // super -> d
  EXPECT_TRUE(reduced.is_acyclic());
}

TEST(GraphCollapse, MemberLabelsFallBackToMnemonic) {
  Graph g;
  const auto a = g.add_node(isa::Opcode::kMult);  // no label
  const auto b = g.add_node(isa::Opcode::kAddu, "named");
  g.add_edge(a, b);
  const Graph reduced = g.collapse(NodeSet::of(2, {a, b}), IseInfo{});
  const auto& labels = reduced.node(0).ise.member_labels;
  ASSERT_EQ(labels.size(), 2u);
  EXPECT_EQ(labels[0], "mult");
  EXPECT_EQ(labels[1], "named");
}

TEST(GraphCollapse, SequentialCollapsesCompose) {
  Graph g = testing::make_chain(6);
  std::vector<NodeId> remap1;
  Graph r1 = g.collapse(NodeSet::of(6, {0, 1}), IseInfo{}, &remap1);
  std::vector<NodeId> remap2;
  NodeSet second(r1.num_nodes());
  second.insert(remap1[4]);
  second.insert(remap1[5]);
  Graph r2 = r1.collapse(second, IseInfo{}, &remap2);
  EXPECT_EQ(r2.num_nodes(), 4u);
  EXPECT_TRUE(r2.is_acyclic());
}

}  // namespace
}  // namespace isex::dfg
