#include "sched/list_scheduler.hpp"

#include <gtest/gtest.h>

#include "test_util.hpp"

namespace isex::sched {
namespace {

MachineConfig two_issue() { return MachineConfig::make(2, {4, 2}); }

TEST(ListScheduler, ChainTakesLengthCycles) {
  const dfg::Graph g = testing::make_chain(6);
  const ListScheduler sched(two_issue());
  EXPECT_EQ(sched.cycles(g), 6);  // dependence-bound regardless of width
}

TEST(ListScheduler, ParallelPairsExploitWidth) {
  const dfg::Graph g = testing::make_parallel_pairs(2);  // 4 ops, 2 lanes
  EXPECT_EQ(ListScheduler(MachineConfig::make(1, {4, 2})).cycles(g), 4);
  EXPECT_EQ(ListScheduler(two_issue()).cycles(g), 2);
}

TEST(ListScheduler, IssueWidthLimitsThroughput) {
  // 8 independent ops.
  dfg::Graph g;
  for (int i = 0; i < 8; ++i) {
    const auto v = g.add_node(isa::Opcode::kAddu, "i" + std::to_string(i));
    g.set_extern_inputs(v, 2);
    g.set_live_out(v, true);
  }
  EXPECT_EQ(ListScheduler(MachineConfig::make(4, {10, 5})).cycles(g), 2);
  EXPECT_EQ(ListScheduler(MachineConfig::make(2, {4, 2})).cycles(g), 4);
  EXPECT_EQ(ListScheduler(MachineConfig::make(1, {4, 2})).cycles(g), 8);
}

TEST(ListScheduler, ReadPortsConstrain) {
  // 2-issue but only 2 read ports: two 2-source adds cannot co-issue.
  dfg::Graph g;
  for (int i = 0; i < 4; ++i) {
    const auto v = g.add_node(isa::Opcode::kAddu, "i" + std::to_string(i));
    g.set_extern_inputs(v, 2);
    g.set_live_out(v, true);
  }
  const MachineConfig tight = MachineConfig::make(2, {2, 2});
  EXPECT_EQ(ListScheduler(tight).cycles(g), 4);
  const MachineConfig wide = MachineConfig::make(2, {4, 2});
  EXPECT_EQ(ListScheduler(wide).cycles(g), 2);
}

TEST(ListScheduler, WritePortsConstrain) {
  dfg::Graph g;
  for (int i = 0; i < 4; ++i) {
    const auto v = g.add_node(isa::Opcode::kAddiu, "i" + std::to_string(i));
    g.set_extern_inputs(v, 1);
    g.set_live_out(v, true);
  }
  const MachineConfig tight = MachineConfig::make(2, {4, 1});
  EXPECT_EQ(ListScheduler(tight).cycles(g), 4);
}

TEST(ListScheduler, FunctionalUnitsConstrain) {
  // Two independent multiplies, one multiplier: serialized even at 2-issue.
  dfg::Graph g;
  for (int i = 0; i < 2; ++i) {
    const auto v = g.add_node(isa::Opcode::kMult, "m" + std::to_string(i));
    g.set_extern_inputs(v, 2);
    g.set_live_out(v, true);
  }
  EXPECT_EQ(ListScheduler(two_issue()).cycles(g), 2);
  MachineConfig dual = two_issue();
  dual.fu_counts[static_cast<std::size_t>(isa::FuClass::kMult)] = 2;
  EXPECT_EQ(ListScheduler(dual).cycles(g), 1);
}

TEST(ListScheduler, MultiCycleIseDelaysConsumers) {
  dfg::Graph g;
  dfg::IseInfo info;
  info.latency_cycles = 2;
  info.num_inputs = 2;
  info.num_outputs = 1;
  const auto ise = g.add_ise_node(info, "ISE");
  const auto user = g.add_node(isa::Opcode::kAddu, "u");
  g.add_edge(ise, user);
  g.set_live_out(user, true);
  const Schedule s = ListScheduler(two_issue()).run(g);
  EXPECT_EQ(s.slot[ise], 0);
  EXPECT_EQ(s.slot[user], 2);
  EXPECT_EQ(s.cycles, 3);
}

TEST(ListScheduler, IseDoesNotConsumeCoreFu) {
  // An ISE and a mult in the same cycle: the ISE runs on its ASFU.
  dfg::Graph g;
  dfg::IseInfo info;
  info.num_inputs = 1;
  info.num_outputs = 1;
  const auto ise = g.add_ise_node(info, "ISE");
  const auto m = g.add_node(isa::Opcode::kMult, "m");
  g.set_extern_inputs(m, 2);
  g.set_live_out(m, true);
  g.set_live_out(ise, true);
  const Schedule s = ListScheduler(MachineConfig::make(2, {6, 3})).run(g);
  EXPECT_EQ(s.cycles, 1);
}

TEST(ListScheduler, IsePortUsage) {
  // A 4-input ISE on a 4-read-port file leaves no read ports for a peer.
  dfg::Graph g;
  dfg::IseInfo info;
  info.num_inputs = 4;
  info.num_outputs = 1;
  const auto ise = g.add_ise_node(info, "ISE");
  const auto a = g.add_node(isa::Opcode::kAddu, "a");
  g.set_extern_inputs(a, 2);
  g.set_live_out(a, true);
  g.set_live_out(ise, true);
  EXPECT_EQ(ListScheduler(two_issue()).cycles(g), 2);
  EXPECT_EQ(ListScheduler(MachineConfig::make(2, {6, 3})).cycles(g), 1);
}

TEST(ListScheduler, EmptyGraph) {
  dfg::Graph g;
  const Schedule s = ListScheduler(two_issue()).run(g);
  EXPECT_EQ(s.cycles, 0);
}

TEST(ListScheduler, PriorityKindCanChangeScheduleNotValidity) {
  Rng rng(31);
  const dfg::Graph g = testing::make_random_dag(30, rng);
  for (const auto kind : {PriorityKind::kChildCount, PriorityKind::kMobility,
                          PriorityKind::kDescendantCount}) {
    const Schedule s = ListScheduler(two_issue(), kind).run(g);
    EXPECT_TRUE(respects_dependences(g, s));
  }
}

// Property sweep: schedules over random DAGs are dependence- and
// resource-valid, and wider machines never schedule slower.
class SchedulerProperty : public ::testing::TestWithParam<int> {};

TEST_P(SchedulerProperty, ValidAndMonotoneInWidth) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 977);
  const dfg::Graph g = testing::make_random_dag(40, rng);

  int previous = 0;
  for (const int width : {1, 2, 3, 4}) {
    const MachineConfig cfg =
        MachineConfig::make(width, {2 * width + 2, width + 1});
    const Schedule s = ListScheduler(cfg).run(g);
    EXPECT_TRUE(respects_dependences(g, s));

    // Per-cycle resource audit.
    std::vector<int> issue(s.cycles, 0);
    std::vector<int> reads(s.cycles, 0);
    std::vector<int> writes(s.cycles, 0);
    for (dfg::NodeId v = 0; v < g.num_nodes(); ++v) {
      ASSERT_GE(s.slot[v], 0);
      ASSERT_LT(s.slot[v], s.cycles);
      issue[s.slot[v]] += 1;
      reads[s.slot[v]] += read_ports_used(g, v);
      writes[s.slot[v]] += write_ports_used(g, v);
    }
    for (int c = 0; c < s.cycles; ++c) {
      EXPECT_LE(issue[c], cfg.issue_width);
      EXPECT_LE(reads[c], cfg.reg_file.read_ports);
      EXPECT_LE(writes[c], cfg.reg_file.write_ports);
    }

    if (width > 1) EXPECT_LE(s.cycles, previous);
    previous = s.cycles;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SchedulerProperty, ::testing::Range(1, 21));

}  // namespace
}  // namespace isex::sched
