#include "flow/design_flow.hpp"

#include <gtest/gtest.h>

#include "bench_suite/kernels.hpp"
#include "test_util.hpp"

namespace isex::flow {
namespace {

class DesignFlowTest : public ::testing::Test {
 protected:
  hw::HwLibrary lib_ = hw::HwLibrary::paper_default();

  FlowConfig config(Algorithm algo = Algorithm::kMultiIssue) {
    FlowConfig c;
    c.machine = sched::MachineConfig::make(2, {6, 3});
    c.algorithm = algo;
    c.repeats = 2;  // keep tests fast
    c.seed = 99;
    return c;
  }
};

TEST_F(DesignFlowTest, ReducesCrc32) {
  const auto program = bench_suite::make_program(
      bench_suite::Benchmark::kCrc32, bench_suite::OptLevel::kO3);
  const FlowResult r = run_design_flow(program, lib_, config());
  EXPECT_GT(r.base_time(), 0u);
  EXPECT_LT(r.final_time(), r.base_time());
  EXPECT_GT(r.reduction(), 0.05);
  EXPECT_GT(r.num_ise_types(), 0);
  EXPECT_GT(r.total_area(), 0.0);
}

TEST_F(DesignFlowTest, AreaConstraintIsRespected) {
  const auto program = bench_suite::make_program(
      bench_suite::Benchmark::kAdpcm, bench_suite::OptLevel::kO3);
  FlowConfig c = config();
  c.constraints.area_budget = 5000.0;
  const FlowResult r = run_design_flow(program, lib_, c);
  EXPECT_LE(r.total_area(), 5000.0);
}

TEST_F(DesignFlowTest, IseCountConstraintIsRespected) {
  const auto program = bench_suite::make_program(
      bench_suite::Benchmark::kJpeg, bench_suite::OptLevel::kO3);
  FlowConfig c = config();
  c.constraints.max_ises = 1;
  const FlowResult r = run_design_flow(program, lib_, c);
  EXPECT_LE(r.num_ise_types(), 1);
}

TEST_F(DesignFlowTest, ZeroAreaBudgetMeansNoIses) {
  const auto program = bench_suite::make_program(
      bench_suite::Benchmark::kCrc32, bench_suite::OptLevel::kO0);
  FlowConfig c = config();
  c.constraints.area_budget = 0.0;
  const FlowResult r = run_design_flow(program, lib_, c);
  EXPECT_EQ(r.num_ise_types(), 0);
  EXPECT_EQ(r.base_time(), r.final_time());
}

TEST_F(DesignFlowTest, DeterministicAcrossRuns) {
  const auto program = bench_suite::make_program(
      bench_suite::Benchmark::kBitcount, bench_suite::OptLevel::kO3);
  const FlowResult a = run_design_flow(program, lib_, config());
  const FlowResult b = run_design_flow(program, lib_, config());
  EXPECT_EQ(a.final_time(), b.final_time());
  EXPECT_DOUBLE_EQ(a.total_area(), b.total_area());
}

TEST_F(DesignFlowTest, HotBlocksComeFromProfile) {
  const auto program = bench_suite::make_program(
      bench_suite::Benchmark::kCrc32, bench_suite::OptLevel::kO3);
  const FlowResult r = run_design_flow(program, lib_, config());
  ASSERT_FALSE(r.hot_blocks.empty());
  // The bit-step block dominates CRC32's profile.
  EXPECT_EQ(r.hot_blocks[0], 0u);
}

TEST_F(DesignFlowTest, SingleIssueBaselineRuns) {
  const auto program = bench_suite::make_program(
      bench_suite::Benchmark::kCrc32, bench_suite::OptLevel::kO3);
  const FlowResult r =
      run_design_flow(program, lib_, config(Algorithm::kSingleIssue));
  EXPECT_LE(r.final_time(), r.base_time());
}

TEST_F(DesignFlowTest, MiBeatsSiOnAverageAtEqualArea) {
  // The paper's claim is about the *average* across the suite (individual
  // benchmark/seed pairs can invert): at the same area budget the
  // schedule-aware explorer must achieve at least the baseline's average
  // execution-time reduction.
  double mi_sum = 0.0;
  double si_sum = 0.0;
  for (const auto benchmark : bench_suite::all_benchmarks()) {
    const auto program =
        bench_suite::make_program(benchmark, bench_suite::OptLevel::kO3);
    FlowConfig c = config();
    c.constraints.area_budget = 20000.0;
    const FlowResult mi = run_design_flow(program, lib_, c);
    c.algorithm = Algorithm::kSingleIssue;
    const FlowResult si = run_design_flow(program, lib_, c);
    mi_sum += mi.reduction();
    si_sum += si.reduction();
  }
  EXPECT_GE(mi_sum, si_sum * 0.98);  // MI wins or ties on average
}

// The paper's six machine configurations all complete and never regress.
class FlowConfigSweep
    : public ::testing::TestWithParam<std::pair<int, isa::RegisterFileConfig>> {};

TEST_P(FlowConfigSweep, NeverRegressesOnFft) {
  const auto [issue, rf] = GetParam();
  const auto program = bench_suite::make_program(
      bench_suite::Benchmark::kFft, bench_suite::OptLevel::kO3);
  FlowConfig c;
  c.machine = sched::MachineConfig::make(issue, rf);
  c.repeats = 2;
  c.seed = 4;
  const FlowResult r =
      run_design_flow(program, hw::HwLibrary::paper_default(), c);
  EXPECT_LE(r.final_time(), r.base_time());
}

INSTANTIATE_TEST_SUITE_P(
    PaperConfigs, FlowConfigSweep,
    ::testing::Values(std::pair{2, isa::RegisterFileConfig{4, 2}},
                      std::pair{2, isa::RegisterFileConfig{6, 3}},
                      std::pair{3, isa::RegisterFileConfig{6, 3}},
                      std::pair{3, isa::RegisterFileConfig{8, 4}},
                      std::pair{4, isa::RegisterFileConfig{8, 4}},
                      std::pair{4, isa::RegisterFileConfig{10, 5}}));

}  // namespace
}  // namespace isex::flow
