// Explorer invariants swept across the paper's six machine configurations:
// whatever the machine, every committed ISE must be legal, every gain must
// be real (re-verified by rescheduling), and the baseline/exact relations
// must hold.
#include <gtest/gtest.h>

#include "core/mi_explorer.hpp"
#include "dfg/analysis.hpp"
#include "sched/list_scheduler.hpp"
#include "test_util.hpp"

namespace isex::core {
namespace {

using MachineParam = std::pair<int, isa::RegisterFileConfig>;

class ExplorerMachineSweep : public ::testing::TestWithParam<MachineParam> {
 protected:
  MultiIssueExplorer make_explorer() {
    const auto [issue, rf] = GetParam();
    machine_ = sched::MachineConfig::make(issue, rf);
    isa::IsaFormat format;
    format.reg_file = rf;
    return MultiIssueExplorer(machine_, format, hw::HwLibrary::paper_default());
  }

  sched::MachineConfig machine_ = sched::MachineConfig::make(2, {4, 2});
};

TEST_P(ExplorerMachineSweep, CommittedIsesAreLegalEverywhere) {
  const auto explorer = make_explorer();
  Rng graph_rng(2024);
  for (int trial = 0; trial < 3; ++trial) {
    const dfg::Graph g = testing::make_random_dag(28, graph_rng, 0.5);
    Rng rng = graph_rng.split();
    const ExplorationResult r = explorer.explore(g, rng);
    const dfg::Reachability reach(g);
    for (const auto& ise : r.ises) {
      EXPECT_GE(ise.original_nodes.count(), 2u);
      EXPECT_LE(ise.in_count, machine_.reg_file.read_ports);
      EXPECT_LE(ise.out_count, machine_.reg_file.write_ports);
      EXPECT_TRUE(dfg::is_convex(g, ise.original_nodes, reach));
      EXPECT_GT(ise.gain_cycles, 0);
      for (const dfg::NodeId m : ise.original_nodes.to_vector())
        EXPECT_TRUE(isa::ise_eligible(g.node(m).opcode));
    }
  }
}

TEST_P(ExplorerMachineSweep, GainsReproduceUnderRescheduling) {
  const auto explorer = make_explorer();
  Rng graph_rng(4096);
  const dfg::Graph g = testing::make_random_dag(24, graph_rng, 0.55);
  Rng rng(1);
  const ExplorationResult r = explorer.explore_best_of(g, 2, rng);

  dfg::Graph current = g;
  std::vector<dfg::NodeId> to_current(g.num_nodes());
  for (dfg::NodeId v = 0; v < g.num_nodes(); ++v) to_current[v] = v;
  const sched::ListScheduler scheduler(machine_);
  int cycles = scheduler.cycles(current);
  EXPECT_EQ(cycles, r.base_cycles);
  for (const auto& ise : r.ises) {
    dfg::NodeSet members(current.num_nodes());
    ise.original_nodes.for_each(
        [&](dfg::NodeId v) { members.insert(to_current[v]); });
    dfg::IseInfo info;
    info.latency_cycles = ise.eval.latency_cycles;
    info.area = ise.eval.area;
    info.num_inputs = ise.in_count;
    info.num_outputs = ise.out_count;
    std::vector<dfg::NodeId> remap;
    current = current.collapse(members, info, &remap);
    for (dfg::NodeId v = 0; v < g.num_nodes(); ++v)
      to_current[v] = remap[to_current[v]];
    const int after = scheduler.cycles(current);
    EXPECT_EQ(cycles - after, ise.gain_cycles);
    cycles = after;
  }
  EXPECT_EQ(cycles, r.final_cycles);
}

TEST_P(ExplorerMachineSweep, NeverRegressesBaseSchedule) {
  const auto explorer = make_explorer();
  Rng graph_rng(512);
  for (int trial = 0; trial < 3; ++trial) {
    const dfg::Graph g = testing::make_random_dag(20, graph_rng, 0.45);
    Rng rng = graph_rng.split();
    const ExplorationResult r = explorer.explore(g, rng);
    EXPECT_LE(r.final_cycles, r.base_cycles);
    EXPECT_GE(r.final_cycles, 1);
  }
}

INSTANTIATE_TEST_SUITE_P(
    PaperMachines, ExplorerMachineSweep,
    ::testing::Values(MachineParam{2, {4, 2}}, MachineParam{2, {6, 3}},
                      MachineParam{3, {6, 3}}, MachineParam{3, {8, 4}},
                      MachineParam{4, {8, 4}}, MachineParam{4, {10, 5}}));

}  // namespace
}  // namespace isex::core
