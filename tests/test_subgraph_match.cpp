#include "flow/subgraph_match.hpp"

#include <gtest/gtest.h>

#include "flow/program.hpp"
#include "test_util.hpp"

namespace isex::flow {
namespace {

TEST(SubgraphMatch, IdenticalChains) {
  const dfg::Graph a = testing::make_chain(3, isa::Opcode::kXor);
  const dfg::Graph b = testing::make_chain(3, isa::Opcode::kXor);
  EXPECT_TRUE(is_subgraph_of(a, b));
  EXPECT_TRUE(is_isomorphic(a, b));
}

TEST(SubgraphMatch, ShorterChainEmbedsInLonger) {
  const dfg::Graph small = testing::make_chain(2, isa::Opcode::kXor);
  const dfg::Graph big = testing::make_chain(5, isa::Opcode::kXor);
  EXPECT_TRUE(is_subgraph_of(small, big));
  EXPECT_FALSE(is_subgraph_of(big, small));
  EXPECT_FALSE(is_isomorphic(small, big));
}

TEST(SubgraphMatch, OpcodeLabelsMustMatch) {
  const dfg::Graph xors = testing::make_chain(3, isa::Opcode::kXor);
  const dfg::Graph ands = testing::make_chain(3, isa::Opcode::kAnd);
  EXPECT_FALSE(is_subgraph_of(xors, ands));
}

TEST(SubgraphMatch, EdgeDirectionMatters) {
  dfg::Graph fork;  // a -> b, a -> c
  const auto fa = fork.add_node(isa::Opcode::kXor, "a");
  fork.add_edge(fa, fork.add_node(isa::Opcode::kXor, "b"));
  fork.add_edge(fa, fork.add_node(isa::Opcode::kXor, "c"));

  dfg::Graph join;  // a -> c, b -> c
  const auto ja = join.add_node(isa::Opcode::kXor, "a");
  const auto jb = join.add_node(isa::Opcode::kXor, "b");
  const auto jc = join.add_node(isa::Opcode::kXor, "c");
  join.add_edge(ja, jc);
  join.add_edge(jb, jc);

  EXPECT_FALSE(is_subgraph_of(fork, join));
  EXPECT_FALSE(is_subgraph_of(join, fork));
}

TEST(SubgraphMatch, FindsAllOccurrences) {
  // A 2-chain occurs 4 times in a 5-chain.
  const dfg::Graph pattern = testing::make_chain(2, isa::Opcode::kXor);
  const dfg::Graph target = testing::make_chain(5, isa::Opcode::kXor);
  const auto matches = find_matches(pattern, target);
  EXPECT_EQ(matches.size(), 4u);
  for (const auto& m : matches) {
    ASSERT_EQ(m.size(), 2u);
    EXPECT_TRUE(target.has_edge(m[0], m[1]));
  }
}

TEST(SubgraphMatch, MaxMatchesCap) {
  const dfg::Graph pattern = testing::make_chain(2, isa::Opcode::kXor);
  const dfg::Graph target = testing::make_chain(9, isa::Opcode::kXor);
  MatchOptions opts;
  opts.max_matches = 3;
  EXPECT_EQ(find_matches(pattern, target, opts).size(), 3u);
}

TEST(SubgraphMatch, PatternLargerThanTargetFailsFast) {
  const dfg::Graph small = testing::make_chain(2);
  const dfg::Graph big = testing::make_chain(4);
  EXPECT_TRUE(find_matches(big, small).empty());
}

TEST(SubgraphMatch, EmptyPatternHasNoMatches) {
  dfg::Graph empty;
  const dfg::Graph target = testing::make_chain(3);
  EXPECT_TRUE(find_matches(empty, target).empty());
}

TEST(SubgraphMatch, DiamondInDiamond) {
  const dfg::Graph a = testing::make_diamond();
  const dfg::Graph b = testing::make_diamond();
  EXPECT_TRUE(is_isomorphic(a, b));
}

TEST(SubgraphMatch, IseSupernodesMatchByLatency) {
  dfg::Graph a;
  dfg::IseInfo i1;
  i1.latency_cycles = 2;
  a.add_ise_node(i1, "A");
  dfg::Graph b;
  b.add_ise_node(i1, "B");
  EXPECT_TRUE(is_isomorphic(a, b));
  dfg::Graph c;
  dfg::IseInfo i2;
  i2.latency_cycles = 3;
  c.add_ise_node(i2, "C");
  EXPECT_FALSE(is_subgraph_of(a, c));
}

TEST(SubgraphMatch, MixedOpcodePatternInRealKernel) {
  // srl -> andi shape appears in the CRC kernel twice per step.
  dfg::Graph pattern;
  const auto s = pattern.add_node(isa::Opcode::kSrl, "s");
  const auto m = pattern.add_node(isa::Opcode::kAndi, "m");
  pattern.add_edge(s, m);

  dfg::Graph target;
  const auto x = target.add_node(isa::Opcode::kSrl, "x");
  const auto y = target.add_node(isa::Opcode::kAndi, "y");
  const auto z = target.add_node(isa::Opcode::kXor, "z");
  target.add_edge(x, y);
  target.add_edge(y, z);
  EXPECT_TRUE(is_subgraph_of(pattern, target));
}

// Property: every induced subgraph of a graph matches back into it.
class MatchProperty : public ::testing::TestWithParam<int> {};

TEST_P(MatchProperty, InducedSubgraphAlwaysEmbeds) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 389);
  const dfg::Graph g = testing::make_random_dag(16, rng, 0.5);
  for (int trial = 0; trial < 8; ++trial) {
    dfg::NodeSet s(g.num_nodes());
    for (dfg::NodeId v = 0; v < g.num_nodes(); ++v)
      if (rng.next_double() < 0.4) s.insert(v);
    if (s.empty()) continue;
    const dfg::Graph pattern = induced_subgraph(g, s);
    EXPECT_TRUE(is_subgraph_of(pattern, g));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MatchProperty, ::testing::Range(1, 9));

}  // namespace
}  // namespace isex::flow
