// Pipestage timing constraint (§5.1): an ISE's ASFU latency may be capped
// by the ISA format; grouping flags violations, merit decays them, and
// extraction trims candidates until they fit.
#include <gtest/gtest.h>

#include "core/candidate.hpp"
#include "core/hardware_grouping.hpp"
#include "core/mi_explorer.hpp"
#include "test_util.hpp"

namespace isex::core {
namespace {

class PipestageTest : public ::testing::Test {
 protected:
  hw::HwLibrary lib_ = hw::HwLibrary::paper_default();

  isa::IsaFormat capped_format(int cap) {
    isa::IsaFormat fmt;
    fmt.reg_file = {6, 3};
    fmt.max_ise_latency_cycles = cap;
    return fmt;
  }
};

TEST_F(PipestageTest, GroupingFlagsDeepCandidates) {
  // Four chained slow adders: best mix ~>10 ns, needs ≥2 cycles.
  const dfg::Graph g = testing::make_chain(4, isa::Opcode::kAddu);
  hw::GPlus gplus(g, lib_);
  dfg::Reachability reach(g);
  const HardwareGrouping hg(gplus, capped_format(1));
  const std::vector<int> prev{1, 1, 1, 1};
  const VirtualCandidate cand = hg.group(1, prev, reach);
  ASSERT_EQ(cand.size(), 4u);
  EXPECT_TRUE(cand.timing_violation);

  // Cap of 2 cycles admits it (4 × 2.12 = 8.48 ns on HW-2... 1 cycle; even
  // HW-1 mix at 16.16 ns = 2 cycles).
  const HardwareGrouping relaxed(gplus, capped_format(2));
  EXPECT_FALSE(relaxed.group(1, prev, reach).timing_violation);
}

TEST_F(PipestageTest, UnboundedFormatNeverFlags) {
  const dfg::Graph g = testing::make_chain(8, isa::Opcode::kAddu);
  hw::GPlus gplus(g, lib_);
  dfg::Reachability reach(g);
  const HardwareGrouping hg(gplus, capped_format(0));
  const std::vector<int> all_hw(8, 1);
  EXPECT_FALSE(hg.group(0, all_hw, reach).timing_violation);
}

TEST_F(PipestageTest, ExtractionTrimsToCap) {
  // 8 chained slow adders taken as hardware: unbounded extraction yields a
  // deep ISE; a 1-cycle cap must shed members until the ASFU fits.
  const dfg::Graph g = testing::make_chain(8, isa::Opcode::kAddu);
  hw::GPlus gplus(g, lib_);
  dfg::Reachability reach(g);
  const std::vector<int> taken(8, 1);  // HW-1, 4.04 ns each

  const auto unbounded =
      extract_candidates(gplus, capped_format(0), taken, reach);
  ASSERT_FALSE(unbounded.empty());
  EXPECT_GT(unbounded[0].eval.latency_cycles, 1);

  const auto capped = extract_candidates(gplus, capped_format(1), taken, reach);
  for (const IseCandidate& cand : capped) {
    EXPECT_LE(cand.eval.latency_cycles, 1);
    EXPECT_GE(cand.size(), 2u);
  }
  ASSERT_FALSE(capped.empty());  // two 4.04 ns adders still fit one cycle
}

TEST_F(PipestageTest, ExplorerHonoursCapEndToEnd) {
  Rng rng(9);
  const dfg::Graph g = testing::make_random_dag(30, rng, 0.55);
  const auto machine = sched::MachineConfig::make(2, {6, 3});
  const MultiIssueExplorer explorer(machine, capped_format(1), lib_);
  Rng run_rng(5);
  const ExplorationResult result = explorer.explore_best_of(g, 3, run_rng);
  for (const auto& ise : result.ises)
    EXPECT_EQ(ise.eval.latency_cycles, 1);
}

TEST_F(PipestageTest, CapReducesAchievableGain) {
  const dfg::Graph g = testing::make_chain(10, isa::Opcode::kXor);
  const auto machine = sched::MachineConfig::make(2, {6, 3});
  Rng a(3);
  Rng b(3);
  const MultiIssueExplorer unbounded(machine, capped_format(0), lib_);
  const MultiIssueExplorer capped(machine, capped_format(1), lib_);
  const auto ru = unbounded.explore_best_of(g, 3, a);
  const auto rc = capped.explore_best_of(g, 3, b);
  EXPECT_LE(ru.final_cycles, rc.final_cycles);
}

}  // namespace
}  // namespace isex::core
