// Multi-colony exploration tests (docs/PERFORMANCE.md).
//
// Pins the three contracts the colony path makes:
//   1. colonies == 1 is the paper's serial loop, byte-identical to the
//      pre-colonies explorer (the legacy golden digests must not move);
//   2. for any fixed (seed, colonies, merge_interval) the result is
//      bit-identical at every --jobs width — colonies are a search
//      parameter, never a function of the thread count;
//   3. the merge barrier is a pure function of the indexed contributions:
//      submitting colonies in any completion order yields the same merged
//      pheromone state.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "bench_suite/kernels.hpp"
#include "core/mi_explorer.hpp"
#include "core/pheromone.hpp"
#include "golden_hash.hpp"
#include "runtime/thread_pool.hpp"
#include "test_util.hpp"

namespace isex::core {
namespace {

class ColonyGoldenTest : public ::testing::Test {
 protected:
  ExplorationResult explore_hottest_block(bench_suite::Benchmark bm,
                                          int colonies,
                                          int merge_interval = 8) {
    const flow::ProfiledProgram prog =
        bench_suite::make_program(bm, bench_suite::OptLevel::kO3);
    ExplorerParams params;
    params.colonies = colonies;
    params.merge_interval = merge_interval;
    const auto machine = sched::MachineConfig::make(2, {6, 3});
    isa::IsaFormat format;
    format.reg_file = machine.reg_file;
    const MultiIssueExplorer explorer(machine, format,
                                      hw::HwLibrary::paper_default(), params);
    Rng rng(17);
    return explorer.explore(prog.blocks.front().graph, rng);
  }
};

// The legacy digest from MiExplorerGoldenTest.AdpcmExplorationMatchesGolden:
// colonies == 1 takes the untouched serial chain, so it must reproduce it.
TEST_F(ColonyGoldenTest, ColoniesOneReproducesLegacyAdpcmGolden) {
  const ExplorationResult r =
      explore_hottest_block(bench_suite::Benchmark::kAdpcm, /*colonies=*/1);
  EXPECT_EQ(r.base_cycles, 14);
  EXPECT_EQ(r.final_cycles, 3);
  EXPECT_EQ(testing::hash_exploration(r), 0x5d13c6222e1386e5ULL);
}

TEST_F(ColonyGoldenTest, ColoniesTwoMatchesGolden) {
  const ExplorationResult r =
      explore_hottest_block(bench_suite::Benchmark::kAdpcm, /*colonies=*/2);
  EXPECT_EQ(r.base_cycles, 14);
  EXPECT_EQ(testing::hash_exploration(r), 0x846ec1c85e45f363ULL);
}

TEST_F(ColonyGoldenTest, ColoniesEightMatchesGolden) {
  const ExplorationResult r =
      explore_hottest_block(bench_suite::Benchmark::kAdpcm, /*colonies=*/8);
  EXPECT_EQ(r.base_cycles, 14);
  EXPECT_EQ(testing::hash_exploration(r), 0x8fd877fe5ff8fd77ULL);
}

TEST_F(ColonyGoldenTest, ExploreIsIdenticalAtEveryJobCountPerColonyCount) {
  // The epoch fan-out runs colony chains concurrently; every cross-colony
  // reduction is index-ordered, so the digest at --jobs 1 and --jobs 8 must
  // match for every colony count.
  for (const int colonies : {1, 2, 8}) {
    runtime::ThreadPool::set_default_jobs(1);
    const std::uint64_t jobs1 = testing::hash_exploration(
        explore_hottest_block(bench_suite::Benchmark::kAdpcm, colonies));
    runtime::ThreadPool::set_default_jobs(8);
    const std::uint64_t jobs8 = testing::hash_exploration(
        explore_hottest_block(bench_suite::Benchmark::kAdpcm, colonies));
    runtime::ThreadPool::set_default_jobs(0);  // restore auto width
    EXPECT_EQ(jobs1, jobs8) << "colonies=" << colonies;
  }
}

TEST_F(ColonyGoldenTest, MoreColoniesThanAntsClampsToAntBudget) {
  // Effective colony count is min(colonies, max_iterations), so asking for
  // more colonies than the round has ants must behave exactly like asking
  // for max_iterations colonies — every colony still walks at least once.
  const flow::ProfiledProgram prog = bench_suite::make_program(
      bench_suite::Benchmark::kAdpcm, bench_suite::OptLevel::kO3);
  const auto machine = sched::MachineConfig::make(2, {6, 3});
  isa::IsaFormat format;
  format.reg_file = machine.reg_file;
  const hw::HwLibrary lib = hw::HwLibrary::paper_default();

  ExplorerParams params;
  params.max_iterations = 4;
  params.colonies = 64;  // > ant budget
  const MultiIssueExplorer oversub(machine, format, lib, params);
  Rng rng_a(17);
  const ExplorationResult a =
      oversub.explore(prog.blocks.front().graph, rng_a);

  params.colonies = 4;  // == ant budget: the clamp target
  const MultiIssueExplorer exact(machine, format, lib, params);
  Rng rng_b(17);
  const ExplorationResult b = exact.explore(prog.blocks.front().graph, rng_b);

  EXPECT_EQ(testing::hash_exploration(a), testing::hash_exploration(b));
  EXPECT_GT(a.total_iterations, 0);
  EXPECT_EQ(a.base_cycles, 14);
}

TEST_F(ColonyGoldenTest, TraceRowsCarryColonyIdsInIndexOrder) {
  const flow::ProfiledProgram prog = bench_suite::make_program(
      bench_suite::Benchmark::kAdpcm, bench_suite::OptLevel::kO3);
  ExplorerParams params;
  params.colonies = 4;
  params.collect_trace = true;
  const auto machine = sched::MachineConfig::make(2, {6, 3});
  isa::IsaFormat format;
  format.reg_file = machine.reg_file;
  const MultiIssueExplorer explorer(machine, format,
                                    hw::HwLibrary::paper_default(), params);
  Rng rng(17);
  const ExplorationResult r = explorer.explore(prog.blocks.front().graph, rng);
  ASSERT_FALSE(r.trace.empty());
  // Every colony walked; within a round, rows are drained in colony-index
  // order and each colony's best_tet curve is non-increasing.
  std::vector<int> colonies_seen;
  int prev_round = -1;
  int prev_colony = -1;
  int prev_best = 0;
  for (const IterationTrace& t : r.trace) {
    EXPECT_GE(t.colony, 0);
    EXPECT_LT(t.colony, 4);
    if (t.round != prev_round || t.colony != prev_colony) {
      EXPECT_TRUE(t.round > prev_round ||
                  (t.round == prev_round && t.colony > prev_colony));
      prev_round = t.round;
      prev_colony = t.colony;
      prev_best = t.best_tet;
      colonies_seen.push_back(t.colony);
    } else {
      EXPECT_LE(t.best_tet, prev_best);
      prev_best = t.best_tet;
    }
  }
  EXPECT_NE(std::find(colonies_seen.begin(), colonies_seen.end(), 3),
            colonies_seen.end());
}

// --- merge barrier --------------------------------------------------------

class PheromoneMergerTest : public ::testing::Test {
 protected:
  PheromoneMergerTest()
      : graph_(testing::make_chain(4, isa::Opcode::kAddu)),
        lib_(hw::HwLibrary::paper_default()),
        gplus_(graph_, lib_) {}

  /// A colony state whose trails/merits diverge deterministically with `tag`.
  PheromoneState make_state(int tag) {
    PheromoneState state(gplus_, params_);
    for (dfg::NodeId v = 0; v < state.num_nodes(); ++v) {
      for (std::size_t o = 0; o < state.num_options(v); ++o) {
        state.set_trail(v, o, 1.0 + tag * 3.0 + static_cast<double>(v + o));
        state.set_merit(v, o, 50.0 + tag * 10.0 + static_cast<double>(o));
      }
    }
    return state;
  }

  dfg::Graph graph_;
  hw::HwLibrary lib_;
  hw::GPlus gplus_;
  ExplorerParams params_;
};

TEST_F(PheromoneMergerTest, MergeIsSubmissionOrderInvariant) {
  // The tentpole determinism claim: the merged state depends on *which*
  // colony contributed what, never on the order contributions arrive — the
  // parallel epoch may complete colonies in any permutation.
  const PheromoneState a = make_state(0);
  const PheromoneState b = make_state(1);
  const PheromoneState c = make_state(2);
  const std::vector<int> chosen_a(4, 0);
  const std::vector<int> chosen_b(4, 1);
  const std::vector<int> chosen_c(4, 2);

  PheromoneState merged_fwd(gplus_, params_);
  {
    PheromoneMerger merger(3, params_);
    merger.submit(0, a, /*best_tet=*/9, chosen_a);
    merger.submit(1, b, /*best_tet=*/7, chosen_b);
    merger.submit(2, c, /*best_tet=*/8, chosen_c);
    merger.finalize_into(merged_fwd);
  }
  PheromoneState merged_shuffled(gplus_, params_);
  {
    PheromoneMerger merger(3, params_);
    merger.submit(2, c, 8, chosen_c);
    merger.submit(0, a, 9, chosen_a);
    merger.submit(1, b, 7, chosen_b);
    merger.finalize_into(merged_shuffled);
  }
  for (dfg::NodeId v = 0; v < merged_fwd.num_nodes(); ++v) {
    for (std::size_t o = 0; o < merged_fwd.num_options(v); ++o) {
      EXPECT_EQ(merged_fwd.trail(v, o), merged_shuffled.trail(v, o))
          << "v=" << v << " o=" << o;
      EXPECT_EQ(merged_fwd.merit(v, o), merged_shuffled.merit(v, o))
          << "v=" << v << " o=" << o;
    }
  }
}

TEST_F(PheromoneMergerTest, BestAntDepositLandsOnWinnersChoice) {
  // Colony 1 holds the lowest best TET, so its best ant's chosen options get
  // the rho1 deposit on top of the evaporated mean.
  const PheromoneState a = make_state(0);
  const PheromoneState b = make_state(1);
  const std::vector<int> chosen_a(4, 0);
  const std::vector<int> chosen_b(4, 1);
  PheromoneMerger merger(2, params_);
  merger.submit(0, a, /*best_tet=*/9, chosen_a);
  merger.submit(1, b, /*best_tet=*/5, chosen_b);
  EXPECT_EQ(merger.winner(), 1u);

  PheromoneState merged(gplus_, params_);
  merger.finalize_into(merged);
  const double keep = 1.0 - params_.merge_evaporation;
  for (dfg::NodeId v = 0; v < merged.num_nodes(); ++v) {
    const double mean0 = (a.trail(v, 0) + b.trail(v, 0)) / 2.0;
    const double mean1 = (a.trail(v, 1) + b.trail(v, 1)) / 2.0;
    EXPECT_DOUBLE_EQ(merged.trail(v, 0), keep * mean0);
    EXPECT_DOUBLE_EQ(merged.trail(v, 1), keep * mean1 + params_.rho1);
  }
}

TEST_F(PheromoneMergerTest, WinnerTieBreaksToLowestColonyIndex) {
  const PheromoneState a = make_state(0);
  const PheromoneState b = make_state(1);
  const PheromoneState c = make_state(2);
  const std::vector<int> chosen(4, 0);
  PheromoneMerger merger(3, params_);
  merger.submit(0, a, /*best_tet=*/6, chosen);
  merger.submit(1, b, /*best_tet=*/5, chosen);
  merger.submit(2, c, /*best_tet=*/5, chosen);
  EXPECT_EQ(merger.winner(), 1u);  // tie between 1 and 2 keeps the lower
}

TEST_F(PheromoneMergerTest, MergedMeritsAreRenormalizedPerNode) {
  const PheromoneState a = make_state(0);
  const PheromoneState b = make_state(3);
  const std::vector<int> chosen(4, 0);
  PheromoneMerger merger(2, params_);
  merger.submit(0, a, 4, chosen);
  merger.submit(1, b, 4, chosen);
  PheromoneState merged(gplus_, params_);
  merger.finalize_into(merged);
  for (dfg::NodeId v = 0; v < merged.num_nodes(); ++v) {
    double best = 0.0;
    for (std::size_t o = 0; o < merged.num_options(v); ++o)
      best = std::max(best, merged.merit(v, o));
    EXPECT_DOUBLE_EQ(best, params_.merit_scale);
  }
}

}  // namespace
}  // namespace isex::core
