#include "hwlib/impl_option.hpp"

#include <gtest/gtest.h>

namespace isex::hw {
namespace {

TEST(IoTable, SoftwareOptionsPartitionedFirst) {
  IoTable t({{ImplKind::kHardware, "HW-1", 4.0, 900.0},
             {ImplKind::kSoftware, "SW-1", 1.0, 0.0},
             {ImplKind::kHardware, "HW-2", 2.0, 2000.0}});
  EXPECT_EQ(t.size(), 3u);
  EXPECT_EQ(t.first_software(), 0u);
  EXPECT_EQ(t.num_software(), 1u);
  EXPECT_EQ(t.num_hardware(), 2u);
  EXPECT_FALSE(t.is_hardware(0));
  EXPECT_TRUE(t.is_hardware(1));
  EXPECT_TRUE(t.is_hardware(2));
  // Relative order among hardware options preserved (stable partition).
  EXPECT_EQ(t.option(1).name, "HW-1");
  EXPECT_EQ(t.option(2).name, "HW-2");
}

TEST(IoTable, SoftwareOnly) {
  IoTable t({{ImplKind::kSoftware, "SW-1", 1.0, 0.0}});
  EXPECT_FALSE(t.has_hardware());
  EXPECT_EQ(t.num_software(), 1u);
}

TEST(IoTable, MultipleSoftwareOptions) {
  // Fig 4.1.1 shows operations with two software options.
  IoTable t({{ImplKind::kSoftware, "SW-1", 1.0, 0.0},
             {ImplKind::kSoftware, "SW-2", 2.0, 0.0},
             {ImplKind::kHardware, "HW-1", 0.4, 900.0}});
  EXPECT_EQ(t.num_software(), 2u);
  EXPECT_EQ(t.num_hardware(), 1u);
}

TEST(ClockSpec, DefaultIs100MHz) {
  const ClockSpec clock;
  EXPECT_DOUBLE_EQ(clock.period_ns, 10.0);
}

TEST(ClockSpec, CyclesForDepth) {
  const ClockSpec clock;
  EXPECT_EQ(clock.cycles_for(0.0), 1);
  EXPECT_EQ(clock.cycles_for(4.04), 1);
  EXPECT_EQ(clock.cycles_for(10.0), 1);   // exactly one period
  EXPECT_EQ(clock.cycles_for(10.01), 2);
  EXPECT_EQ(clock.cycles_for(19.99), 2);
  EXPECT_EQ(clock.cycles_for(35.0), 4);
}

TEST(ClockSpec, FasterClockNeedsMoreCycles) {
  ClockSpec fast;
  fast.period_ns = 2.0;  // 500 MHz
  EXPECT_EQ(fast.cycles_for(4.04), 3);
  EXPECT_EQ(fast.cycles_for(5.77), 3);
}

TEST(ClockSpec, NegativeDepthClampsToOneCycle) {
  const ClockSpec clock;
  EXPECT_EQ(clock.cycles_for(-1.0), 1);
}

}  // namespace
}  // namespace isex::hw
