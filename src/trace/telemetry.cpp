#include "trace/telemetry.hpp"

#include <ostream>

namespace isex::trace {

void ExplorationTelemetry::record(const ConvergencePoint& point) {
  std::lock_guard<std::mutex> lock(mutex_);
  points_.push_back(point);
}

void ExplorationTelemetry::record_all(std::span<const ConvergencePoint> points) {
  std::lock_guard<std::mutex> lock(mutex_);
  points_.insert(points_.end(), points.begin(), points.end());
}

std::vector<ConvergencePoint> ExplorationTelemetry::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return points_;
}

void ExplorationTelemetry::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  points_.clear();
}

std::size_t ExplorationTelemetry::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return points_.size();
}

const char* ExplorationTelemetry::csv_header() {
  return "round,colony,iteration,tet,best_tet,worst_tet,mean_tet,"
         "converged_fraction,entropy,max_option_probability,p_end,ants,"
         "cache_hit_rate";
}

void ExplorationTelemetry::write_csv(std::ostream& out,
                                     std::span<const ConvergencePoint> points) {
  out << csv_header() << '\n';
  for (const ConvergencePoint& p : points) {
    out << p.round << ',' << p.colony << ',' << p.iteration << ','
        << p.tet << ',' << p.best_tet
        << ',' << p.worst_tet << ',' << p.mean_tet << ','
        << p.converged_fraction << ',' << p.entropy << ','
        << p.max_option_probability << ',' << p.p_end << ',' << p.ants << ','
        << p.cache_hit_rate << '\n';
  }
}

void ExplorationTelemetry::write_jsonl(
    std::ostream& out, std::span<const ConvergencePoint> points) {
  for (const ConvergencePoint& p : points) {
    out << "{\"round\":" << p.round << ",\"colony\":" << p.colony
        << ",\"iteration\":" << p.iteration
        << ",\"tet\":" << p.tet << ",\"best_tet\":" << p.best_tet
        << ",\"worst_tet\":" << p.worst_tet << ",\"mean_tet\":" << p.mean_tet
        << ",\"converged_fraction\":" << p.converged_fraction
        << ",\"entropy\":" << p.entropy
        << ",\"max_option_probability\":" << p.max_option_probability
        << ",\"p_end\":" << p.p_end << ",\"ants\":" << p.ants
        << ",\"cache_hit_rate\":" << p.cache_hit_rate << "}\n";
  }
}

void ExplorationTelemetry::write_csv(std::ostream& out) const {
  const std::vector<ConvergencePoint> points = snapshot();
  write_csv(out, points);
}

void ExplorationTelemetry::write_jsonl(std::ostream& out) const {
  const std::vector<ConvergencePoint> points = snapshot();
  write_jsonl(out, points);
}

}  // namespace isex::trace
