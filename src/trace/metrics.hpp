// MetricsRegistry — named counters, gauges, and histograms with a
// Prometheus-text-format snapshot writer.
//
// Metrics are the always-on side of the observability layer (the tracer is
// the opt-in side): library code resolves a metric once (a mutex-guarded
// map lookup) and then updates it with plain atomics, so the steady-state
// cost of a counter increment is one CAS on a cache line nobody else
// rarely touches.  References returned by the registry are stable for the
// registry's lifetime.
//
// Identity is (name, sorted labels) exactly as Prometheus renders it:
// `isex_stage_seconds_total{stage="exploration"}`.  Asking for an existing
// key returns the existing metric; asking with a different kind is a
// programming error (asserted).
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace isex::trace {

namespace detail {
/// fetch_add for atomic<double> via CAS (portable pre-C++20-library).
inline void atomic_add(std::atomic<double>& target, double delta) {
  double current = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(current, current + delta,
                                       std::memory_order_relaxed)) {
  }
}
}  // namespace detail

/// Monotonically increasing value (Prometheus counter).
class Counter {
 public:
  void inc(double delta = 1.0) { detail::atomic_add(value_, delta); }
  double value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Point-in-time value (Prometheus gauge).
class Gauge {
 public:
  void set(double value) { value_.store(value, std::memory_order_relaxed); }
  void add(double delta) { detail::atomic_add(value_, delta); }
  double value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Cumulative histogram over fixed ascending bucket bounds; an observation
/// lands in the first bucket whose bound is >= the value, or the implicit
/// +Inf bucket.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void observe(double value);

  const std::vector<double>& bounds() const { return bounds_; }
  /// Per-bin counts, bounds().size() + 1 entries (last is +Inf).
  std::vector<std::uint64_t> bin_counts() const;
  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  void reset();

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> bins_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

using Labels = std::vector<std::pair<std::string, std::string>>;

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter& counter(std::string_view name, const Labels& labels = {});
  Gauge& gauge(std::string_view name, const Labels& labels = {});
  /// `bounds` is only consulted when the histogram does not exist yet.
  Histogram& histogram(std::string_view name, std::vector<double> bounds,
                       const Labels& labels = {});

  /// Prometheus text exposition format, one `# TYPE` line per metric name,
  /// series sorted by (name, labels).
  void write_prometheus(std::ostream& out) const;

  /// Zeroes every registered metric (registrations and the references
  /// handed out stay valid).  Benches use this between A/B sweeps.
  void reset();

  std::size_t num_series() const;

  /// Process-wide registry every library hook records into.
  static MetricsRegistry& global();

 private:
  enum class Kind { kCounter, kGauge, kHistogram };
  struct Entry {
    std::string name;
    Labels labels;
    Kind kind;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  /// Looks up or registers the (name, sorted labels) series and — under the
  /// same lock — creates its payload, so concurrent first use is safe.
  /// `bounds` is consumed when a histogram is created, ignored otherwise.
  Entry& find_or_create(std::string_view name, const Labels& labels,
                        Kind kind, std::vector<double>* bounds = nullptr);

  mutable std::mutex mutex_;
  /// Linear registry: series count is small and callers cache the returned
  /// reference, so registration cost does not matter.  Sorted at write time.
  std::vector<std::unique_ptr<Entry>> entries_;
};

/// Renders `name{k1="v1",k2="v2"}` (labels sorted by key; bare name when
/// empty) — the series identity used by the registry and the validator.
std::string render_series(std::string_view name, const Labels& labels);

}  // namespace isex::trace
