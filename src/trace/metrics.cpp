#include "trace/metrics.hpp"

#include <algorithm>
#include <ostream>

#include "trace/trace.hpp"
#include "util/assert.hpp"

namespace isex::trace {
namespace {

/// Prometheus number rendering: integral values without a fractional part
/// (counters are usually counts), everything else with enough precision.
void write_number(std::ostream& out, double value) {
  const auto as_int = static_cast<long long>(value);
  if (static_cast<double>(as_int) == value) {
    out << as_int;
  } else {
    out << value;
  }
}

Labels sorted_labels(Labels labels) {
  std::sort(labels.begin(), labels.end());
  return labels;
}

/// `le` bound rendering: integral bounds without a fractional part.
std::string format_bound(double bound) {
  const auto as_int = static_cast<long long>(bound);
  if (static_cast<double>(as_int) == bound) return std::to_string(as_int);
  std::string s = std::to_string(bound);
  while (s.size() > 1 && s.back() == '0') s.pop_back();
  if (!s.empty() && s.back() == '.') s.pop_back();
  return s;
}

void write_label_set(std::ostream& out, const Labels& labels,
                     const std::string* extra_key = nullptr,
                     const std::string* extra_value = nullptr) {
  if (labels.empty() && extra_key == nullptr) return;
  out << '{';
  bool first = true;
  for (const auto& [key, value] : labels) {
    if (!first) out << ',';
    first = false;
    out << key << "=\"" << json_escape(value) << '"';
  }
  if (extra_key != nullptr) {
    if (!first) out << ',';
    out << *extra_key << "=\"" << *extra_value << '"';
  }
  out << '}';
}

}  // namespace

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)),
      bins_(new std::atomic<std::uint64_t>[bounds_.size() + 1]) {
  ISEX_ASSERT(std::is_sorted(bounds_.begin(), bounds_.end()));
  for (std::size_t i = 0; i <= bounds_.size(); ++i) bins_[i].store(0);
}

void Histogram::observe(double value) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  const auto bin = static_cast<std::size_t>(it - bounds_.begin());
  bins_[bin].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  detail::atomic_add(sum_, value);
}

std::vector<std::uint64_t> Histogram::bin_counts() const {
  std::vector<std::uint64_t> counts(bounds_.size() + 1);
  for (std::size_t i = 0; i < counts.size(); ++i)
    counts[i] = bins_[i].load(std::memory_order_relaxed);
  return counts;
}

void Histogram::reset() {
  for (std::size_t i = 0; i <= bounds_.size(); ++i)
    bins_[i].store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

std::string render_series(std::string_view name, const Labels& labels) {
  std::string out(name);
  if (labels.empty()) return out;
  const Labels sorted = sorted_labels(labels);
  out += '{';
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    if (i > 0) out += ',';
    out += sorted[i].first;
    out += "=\"";
    out += sorted[i].second;
    out += '"';
  }
  out += '}';
  return out;
}

MetricsRegistry::Entry& MetricsRegistry::find_or_create(
    std::string_view name, const Labels& labels, Kind kind,
    std::vector<double>* bounds) {
  const Labels sorted = sorted_labels(labels);
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& entry : entries_) {
    if (entry->name == name && entry->labels == sorted) {
      ISEX_ASSERT(entry->kind == kind);  // one kind per metric name
      return *entry;
    }
  }
  auto entry = std::make_unique<Entry>();
  entry->name = std::string(name);
  entry->labels = sorted;
  entry->kind = kind;
  // Payload creation must stay inside the lock: pool workers race on the
  // first use of a series (e.g. AntWalk's ctor inside parallel explores).
  switch (kind) {
    case Kind::kCounter: entry->counter = std::make_unique<Counter>(); break;
    case Kind::kGauge: entry->gauge = std::make_unique<Gauge>(); break;
    case Kind::kHistogram:
      entry->histogram = std::make_unique<Histogram>(std::move(*bounds));
      break;
  }
  entries_.push_back(std::move(entry));
  return *entries_.back();
}

Counter& MetricsRegistry::counter(std::string_view name, const Labels& labels) {
  return *find_or_create(name, labels, Kind::kCounter).counter;
}

Gauge& MetricsRegistry::gauge(std::string_view name, const Labels& labels) {
  return *find_or_create(name, labels, Kind::kGauge).gauge;
}

Histogram& MetricsRegistry::histogram(std::string_view name,
                                      std::vector<double> bounds,
                                      const Labels& labels) {
  return *find_or_create(name, labels, Kind::kHistogram, &bounds).histogram;
}

void MetricsRegistry::write_prometheus(std::ostream& out) const {
  std::vector<const Entry*> sorted;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    sorted.reserve(entries_.size());
    for (const auto& entry : entries_) sorted.push_back(entry.get());
  }
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const Entry* a, const Entry* b) {
                     if (a->name != b->name) return a->name < b->name;
                     return a->labels < b->labels;
                   });

  std::string last_name;
  for (const Entry* entry : sorted) {
    if (entry->name != last_name) {
      last_name = entry->name;
      out << "# TYPE " << entry->name << ' '
          << (entry->kind == Kind::kCounter
                  ? "counter"
                  : entry->kind == Kind::kGauge ? "gauge" : "histogram")
          << '\n';
    }
    switch (entry->kind) {
      case Kind::kCounter:
        out << entry->name;
        write_label_set(out, entry->labels);
        out << ' ';
        write_number(out, entry->counter->value());
        out << '\n';
        break;
      case Kind::kGauge:
        out << entry->name;
        write_label_set(out, entry->labels);
        out << ' ';
        write_number(out, entry->gauge->value());
        out << '\n';
        break;
      case Kind::kHistogram: {
        const Histogram& h = *entry->histogram;
        const std::vector<std::uint64_t> bins = h.bin_counts();
        const std::string le = "le";
        std::uint64_t cumulative = 0;
        for (std::size_t i = 0; i < bins.size(); ++i) {
          cumulative += bins[i];
          const std::string bound =
              i < h.bounds().size() ? format_bound(h.bounds()[i]) : "+Inf";
          out << entry->name << "_bucket";
          write_label_set(out, entry->labels, &le, &bound);
          out << ' ' << cumulative << '\n';
        }
        out << entry->name << "_sum";
        write_label_set(out, entry->labels);
        out << ' ';
        write_number(out, h.sum());
        out << '\n';
        out << entry->name << "_count";
        write_label_set(out, entry->labels);
        out << ' ' << h.count() << '\n';
        break;
      }
    }
  }
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& entry : entries_) {
    if (entry->counter) entry->counter->reset();
    if (entry->gauge) entry->gauge->reset();
    if (entry->histogram) entry->histogram->reset();
  }
}

std::size_t MetricsRegistry::num_series() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

MetricsRegistry& MetricsRegistry::global() {
  // Intentionally leaked: a pool worker records its last task's metrics
  // after the task's completion latch fires, and the default pool only
  // joins its workers during late static destruction — the registry (and
  // every series interned in it) must outlive that tail.
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

}  // namespace isex::trace
