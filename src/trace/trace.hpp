// Structured tracing — the event backbone of the observability layer.
//
// A Tracer records typed events (spans with a duration, instants, counter
// samples) into per-thread buffers: every thread appends to its own buffer
// under its own uncontended mutex, so recording never blocks on other
// threads and within-thread event order is preserved by construction.  The
// buffers are registered with the tracer and outlive their thread, so
// nothing is lost when a pool worker exits before the flush.
//
// Cost model: every hook first reads one relaxed atomic flag.  With no sink
// configured (the default) that load-and-branch is the *entire* cost — no
// clock read, no allocation, no lock (bench/perf_trace measures it).  When
// enabled, an event is one steady_clock read plus an append under the
// thread's own mutex.
//
// Export: snapshot()/drain() merge the buffers (per-thread order intact);
// write_chrome_trace() emits the Chrome trace_event JSON that
// chrome://tracing and Perfetto load directly, write_jsonl() emits one JSON
// object per line for ad-hoc scripting.  docs/OBSERVABILITY.md walks
// through both formats.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace isex::trace {

enum class EventKind : std::uint8_t {
  kSpan,     ///< completed span: [ts_us, ts_us + dur_us]
  kInstant,  ///< point event
  kCounter,  ///< sampled value
};

struct TraceEvent {
  std::string name;
  EventKind kind = EventKind::kInstant;
  /// Microseconds since the tracer's epoch (its construction or reset()).
  std::uint64_t ts_us = 0;
  /// Span length; zero for instants and counters.
  std::uint64_t dur_us = 0;
  /// Small per-thread id assigned at first record (1, 2, ...).
  std::uint32_t tid = 0;
  /// Counter sample; zero otherwise.
  double value = 0.0;
  /// Context ids (zero = untracked).  trace_id groups every span that
  /// descends from one root (a CLI run, a server job); span_id is this
  /// span's own id; parent_id is the span that was current when this one
  /// opened.  Exported as "args" in the Chrome trace so Perfetto queries
  /// and tools/validate_trace.py can reconstruct the tree.
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
  std::uint64_t parent_id = 0;
};

/// The ambient trace context of the current thread: which trace this thread
/// is working for and which span is its innermost open parent.  Propagated
/// across thread-pool hops by ContextScope (runtime::ThreadPool::enqueue
/// captures the submitter's context and installs it around the task), so a
/// fanned-out task's spans parent under the stage/job that spawned it.
struct TraceContext {
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
  bool active() const { return trace_id != 0 || span_id != 0; }
};

/// The calling thread's current context ({0,0} when untracked).
TraceContext current_context();

/// Replaces the calling thread's context and returns the previous one —
/// the manual save/restore primitive behind ContextScope, for holders whose
/// lifetime is not a lexical scope (StageTimer, server job roots).
TraceContext exchange_current_context(TraceContext ctx);

/// Process-unique nonzero ids.  A trace id identifies one root-of-work
/// (CLI invocation, server job); span ids identify individual spans.
std::uint64_t mint_trace_id();
std::uint64_t mint_span_id();

/// RAII: installs `ctx` as the calling thread's context, restores the
/// previous context on destruction.  Cost is two TLS stores; safe to use
/// on any thread, nests arbitrarily.
class ContextScope {
 public:
  explicit ContextScope(TraceContext ctx);
  ~ContextScope();

  ContextScope(const ContextScope&) = delete;
  ContextScope& operator=(const ContextScope&) = delete;

 private:
  TraceContext previous_;
};

class Tracer {
 public:
  Tracer();

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Hot-path gate: every record_* call is a no-op (one relaxed atomic
  /// load) while disabled.
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void set_enabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }

  /// Microseconds since the tracer epoch (monotonic).
  std::uint64_t now_us() const;

  void record_span(std::string_view name, std::uint64_t ts_us,
                   std::uint64_t dur_us);
  /// Span with explicit context ids (zero ids = untracked).  Used by the
  /// Span/StageTimer RAII helpers and by the server's per-job root spans.
  void record_span(std::string_view name, std::uint64_t ts_us,
                   std::uint64_t dur_us, std::uint64_t trace_id,
                   std::uint64_t span_id, std::uint64_t parent_id);
  void record_instant(std::string_view name);
  void record_counter(std::string_view name, double value);

  /// Merged copy of every thread's buffer, per-thread order preserved
  /// (events of one thread appear in record order, grouped by thread).
  std::vector<TraceEvent> snapshot() const;

  /// snapshot(), then empties the buffers.  The epoch is unchanged.
  std::vector<TraceEvent> drain();

  /// Drops all buffered events and restarts the epoch at zero.
  void reset();

  std::size_t num_events() const;

  void write_chrome_trace(std::ostream& out) const;
  void write_jsonl(std::ostream& out) const;

  /// Process-wide tracer every library hook records into.
  static Tracer& global();

 private:
  struct ThreadBuffer {
    mutable std::mutex mutex;
    std::vector<TraceEvent> events;
    std::uint32_t tid = 0;
  };

  ThreadBuffer& local_buffer();
  void append(std::string_view name, EventKind kind, std::uint64_t ts_us,
              std::uint64_t dur_us, double value, std::uint64_t trace_id = 0,
              std::uint64_t span_id = 0, std::uint64_t parent_id = 0);

  const std::uint64_t id_;  ///< distinguishes tracer instances in TLS caches
  std::atomic<bool> enabled_{false};
  std::chrono::steady_clock::time_point epoch_;
  mutable std::mutex buffers_mutex_;
  std::vector<std::shared_ptr<ThreadBuffer>> buffers_;
};

/// RAII span: captures the start time if the tracer is enabled at
/// construction, records a completed span on destruction.  When the tracer
/// is disabled the constructor is a single flag test and the destructor a
/// null check.
///
/// An enabled Span participates in context propagation: it inherits the
/// thread's current TraceContext as its parent, mints its own span id, and
/// installs {inherited trace id, own span id} as the current context for
/// its lifetime — so spans (and pool tasks submitted) inside its scope
/// parent under it.
class Span {
 public:
  explicit Span(std::string_view name, Tracer& tracer = Tracer::global())
      : tracer_(tracer.enabled() ? &tracer : nullptr) {
    if (tracer_ != nullptr) {
      name_ = name;
      start_us_ = tracer_->now_us();
      open(parent_, span_id_);
    }
  }
  ~Span() {
    if (tracer_ != nullptr) {
      close(parent_);
      tracer_->record_span(name_, start_us_, tracer_->now_us() - start_us_,
                           parent_.trace_id, span_id_, parent_.span_id);
    }
  }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  /// Out-of-line TLS manipulation (mint id, swap contexts) so the header
  /// does not need the thread_local definition.
  static void open(TraceContext& parent_out, std::uint64_t& span_id_out);
  static void close(const TraceContext& parent);

  Tracer* tracer_;
  std::string name_;
  std::uint64_t start_us_ = 0;
  std::uint64_t span_id_ = 0;
  TraceContext parent_;
};

/// Chrome trace_event "JSON Object Format": {"traceEvents": [...]} with
/// spans as ph:"X" complete events, counters as ph:"C", instants as ph:"i".
void write_chrome_trace(std::ostream& out, std::span<const TraceEvent> events);

/// One JSON object per line: {"name":...,"kind":...,"ts_us":...,...}.
void write_jsonl(std::ostream& out, std::span<const TraceEvent> events);

/// Escapes `\`, `"`, and control characters for embedding in JSON strings.
std::string json_escape(std::string_view s);

}  // namespace isex::trace
