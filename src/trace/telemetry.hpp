// ExplorationTelemetry — per-iteration convergence records of the ACO loop.
//
// The explorer converges when every operation's best option probability
// exceeds P_END (Eq. 3); tuning that loop needs the per-iteration curve,
// not the final answer.  A ConvergencePoint captures one iteration's vital
// signs: the ant's schedule length (TET) against the best/mean/worst of
// its round, the pheromone state's decision entropy and binding
// max-option-probability vs P_END, and the schedule-cache hit rate.
// MultiIssueExplorer fills these when ExplorerParams::collect_trace is set
// (its IterationTrace *is* this struct); the writers here render the
// canonical CSV / JSONL convergence-curve files the CLI, benches, and
// tools/validate_trace.py all share.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <mutex>
#include <span>
#include <vector>

namespace isex::trace {

struct ConvergencePoint {
  int round = 0;
  /// Colony that walked this iteration (0 in single-colony search; see
  /// ExplorerParams::colonies).  Entropy / max_option_probability below are
  /// the *colony's own* pheromone state — per-colony convergence telemetry —
  /// while the round ends on the merged state.
  int colony = 0;
  int iteration = 0;
  /// Total execution time of this iteration's ant schedule, cycles.
  int tet = 0;
  /// Best TET seen so far in the round.
  int best_tet = 0;
  /// Worst TET seen so far in the round.
  int worst_tet = 0;
  /// Mean TET over the round's iterations so far.
  double mean_tet = 0.0;
  /// Fraction of operations whose best option already exceeds P_END.
  double converged_fraction = 0.0;
  /// Mean normalized decision entropy over operations (1 = undecided,
  /// 0 = fully converged).
  double entropy = 0.0;
  /// The binding convergence constraint: min over operations of the best
  /// option's selected probability.  The round ends when this passes p_end.
  double max_option_probability = 0.0;
  double p_end = 0.0;
  /// Ant walks evaluated in the round so far (== iteration + 1).
  int ants = 0;
  /// Hit rate of the process-wide schedule-evaluation cache at this point.
  double cache_hit_rate = 0.0;
};

/// Thread-safe collector for convergence points (fan-out jobs of one sweep
/// can share one instance), plus the canonical file writers.
class ExplorationTelemetry {
 public:
  void record(const ConvergencePoint& point);
  void record_all(std::span<const ConvergencePoint> points);
  std::vector<ConvergencePoint> snapshot() const;
  void clear();
  std::size_t size() const;

  /// Header of the CSV written by write_csv (no newline).
  static const char* csv_header();
  static void write_csv(std::ostream& out,
                        std::span<const ConvergencePoint> points);
  static void write_jsonl(std::ostream& out,
                          std::span<const ConvergencePoint> points);

  void write_csv(std::ostream& out) const;
  void write_jsonl(std::ostream& out) const;

 private:
  mutable std::mutex mutex_;
  std::vector<ConvergencePoint> points_;
};

}  // namespace isex::trace
