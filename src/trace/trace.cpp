#include "trace/trace.hpp"

#include <cstdio>
#include <ostream>

namespace isex::trace {
namespace {

std::atomic<std::uint64_t> g_next_tracer_id{1};

/// Per-thread cache of the buffer registered with one tracer.  Keyed by the
/// tracer's unique id, not its address: a tracer destroyed and another
/// constructed at the same address must not inherit the stale buffer.
struct TlsEntry {
  std::uint64_t tracer_id = 0;
  std::shared_ptr<void> buffer;
};
thread_local TlsEntry tls_entry;

/// The thread's ambient context.  Written only by ContextScope / Span on
/// this thread, so no synchronization is needed.
thread_local TraceContext tls_context;

std::atomic<std::uint64_t> g_next_trace_id{1};
std::atomic<std::uint64_t> g_next_span_id{1};

const char* kind_name(EventKind kind) {
  switch (kind) {
    case EventKind::kSpan:
      return "span";
    case EventKind::kInstant:
      return "instant";
    case EventKind::kCounter:
      return "counter";
  }
  return "unknown";
}

}  // namespace

TraceContext current_context() { return tls_context; }

TraceContext exchange_current_context(TraceContext ctx) {
  const TraceContext previous = tls_context;
  tls_context = ctx;
  return previous;
}

std::uint64_t mint_trace_id() {
  return g_next_trace_id.fetch_add(1, std::memory_order_relaxed);
}

std::uint64_t mint_span_id() {
  return g_next_span_id.fetch_add(1, std::memory_order_relaxed);
}

ContextScope::ContextScope(TraceContext ctx) : previous_(tls_context) {
  tls_context = ctx;
}

ContextScope::~ContextScope() { tls_context = previous_; }

void Span::open(TraceContext& parent_out, std::uint64_t& span_id_out) {
  parent_out = tls_context;
  span_id_out = mint_span_id();
  tls_context = TraceContext{parent_out.trace_id, span_id_out};
}

void Span::close(const TraceContext& parent) { tls_context = parent; }

Tracer::Tracer()
    : id_(g_next_tracer_id.fetch_add(1, std::memory_order_relaxed)),
      epoch_(std::chrono::steady_clock::now()) {}

std::uint64_t Tracer::now_us() const {
  const auto elapsed = std::chrono::steady_clock::now() - epoch_;
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(elapsed).count());
}

Tracer::ThreadBuffer& Tracer::local_buffer() {
  if (tls_entry.tracer_id != id_) {
    auto buffer = std::make_shared<ThreadBuffer>();
    {
      std::lock_guard<std::mutex> lock(buffers_mutex_);
      buffer->tid = static_cast<std::uint32_t>(buffers_.size() + 1);
      buffers_.push_back(buffer);
    }
    tls_entry.tracer_id = id_;
    tls_entry.buffer = buffer;
  }
  return *static_cast<ThreadBuffer*>(tls_entry.buffer.get());
}

void Tracer::append(std::string_view name, EventKind kind, std::uint64_t ts_us,
                    std::uint64_t dur_us, double value, std::uint64_t trace_id,
                    std::uint64_t span_id, std::uint64_t parent_id) {
  ThreadBuffer& buffer = local_buffer();
  TraceEvent event;
  event.name = std::string(name);
  event.kind = kind;
  event.ts_us = ts_us;
  event.dur_us = dur_us;
  event.tid = buffer.tid;
  event.value = value;
  event.trace_id = trace_id;
  event.span_id = span_id;
  event.parent_id = parent_id;
  std::lock_guard<std::mutex> lock(buffer.mutex);
  buffer.events.push_back(std::move(event));
}

void Tracer::record_span(std::string_view name, std::uint64_t ts_us,
                         std::uint64_t dur_us) {
  if (!enabled()) return;
  append(name, EventKind::kSpan, ts_us, dur_us, 0.0);
}

void Tracer::record_span(std::string_view name, std::uint64_t ts_us,
                         std::uint64_t dur_us, std::uint64_t trace_id,
                         std::uint64_t span_id, std::uint64_t parent_id) {
  if (!enabled()) return;
  append(name, EventKind::kSpan, ts_us, dur_us, 0.0, trace_id, span_id,
         parent_id);
}

void Tracer::record_instant(std::string_view name) {
  if (!enabled()) return;
  append(name, EventKind::kInstant, now_us(), 0, 0.0);
}

void Tracer::record_counter(std::string_view name, double value) {
  if (!enabled()) return;
  append(name, EventKind::kCounter, now_us(), 0, value);
}

std::vector<TraceEvent> Tracer::snapshot() const {
  std::vector<TraceEvent> merged;
  std::lock_guard<std::mutex> registry_lock(buffers_mutex_);
  for (const auto& buffer : buffers_) {
    std::lock_guard<std::mutex> lock(buffer->mutex);
    merged.insert(merged.end(), buffer->events.begin(), buffer->events.end());
  }
  return merged;
}

std::vector<TraceEvent> Tracer::drain() {
  std::vector<TraceEvent> merged;
  std::lock_guard<std::mutex> registry_lock(buffers_mutex_);
  for (const auto& buffer : buffers_) {
    std::lock_guard<std::mutex> lock(buffer->mutex);
    merged.insert(merged.end(),
                  std::make_move_iterator(buffer->events.begin()),
                  std::make_move_iterator(buffer->events.end()));
    buffer->events.clear();
  }
  return merged;
}

void Tracer::reset() {
  std::lock_guard<std::mutex> registry_lock(buffers_mutex_);
  for (const auto& buffer : buffers_) {
    std::lock_guard<std::mutex> lock(buffer->mutex);
    buffer->events.clear();
  }
  epoch_ = std::chrono::steady_clock::now();
}

std::size_t Tracer::num_events() const {
  std::size_t n = 0;
  std::lock_guard<std::mutex> registry_lock(buffers_mutex_);
  for (const auto& buffer : buffers_) {
    std::lock_guard<std::mutex> lock(buffer->mutex);
    n += buffer->events.size();
  }
  return n;
}

void Tracer::write_chrome_trace(std::ostream& out) const {
  const std::vector<TraceEvent> events = snapshot();
  trace::write_chrome_trace(out, events);
}

void Tracer::write_jsonl(std::ostream& out) const {
  const std::vector<TraceEvent> events = snapshot();
  trace::write_jsonl(out, events);
}

Tracer& Tracer::global() {
  static Tracer tracer;
  return tracer;
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void write_chrome_trace(std::ostream& out,
                        std::span<const TraceEvent> events) {
  out << "{\"traceEvents\":[";
  bool first = true;
  for (const TraceEvent& e : events) {
    if (!first) out << ",";
    first = false;
    out << "\n{\"name\":\"" << json_escape(e.name) << "\",\"pid\":1,\"tid\":"
        << e.tid << ",\"ts\":" << e.ts_us;
    switch (e.kind) {
      case EventKind::kSpan:
        out << ",\"ph\":\"X\",\"dur\":" << e.dur_us;
        if (e.span_id != 0) {
          out << ",\"args\":{\"trace_id\":" << e.trace_id
              << ",\"span_id\":" << e.span_id
              << ",\"parent_span_id\":" << e.parent_id << "}";
        }
        break;
      case EventKind::kInstant:
        out << ",\"ph\":\"i\",\"s\":\"t\"";
        break;
      case EventKind::kCounter:
        out << ",\"ph\":\"C\",\"args\":{\"value\":" << e.value << "}";
        break;
    }
    out << "}";
  }
  out << "\n],\"displayTimeUnit\":\"ms\"}\n";
}

void write_jsonl(std::ostream& out, std::span<const TraceEvent> events) {
  for (const TraceEvent& e : events) {
    out << "{\"name\":\"" << json_escape(e.name) << "\",\"kind\":\""
        << kind_name(e.kind) << "\",\"ts_us\":" << e.ts_us
        << ",\"dur_us\":" << e.dur_us << ",\"tid\":" << e.tid
        << ",\"value\":" << e.value;
    if (e.span_id != 0) {
      out << ",\"trace_id\":" << e.trace_id << ",\"span_id\":" << e.span_id
          << ",\"parent_span_id\":" << e.parent_id;
    }
    out << "}\n";
  }
}

}  // namespace isex::trace
