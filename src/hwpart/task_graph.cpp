#include "hwpart/task_graph.hpp"

#include "util/assert.hpp"

namespace isex::hwpart {

TaskId TaskGraph::add_task(Task task) {
  ISEX_ASSERT_MSG(!task.options.empty(), "task needs at least one option");
  ISEX_ASSERT_MSG(task.options[0].target == Target::kSoftware,
                  "option 0 must be the software implementation");
  for (std::size_t i = 1; i < task.options.size(); ++i) {
    ISEX_ASSERT_MSG(task.options[i].target == Target::kHardware,
                    "options after the first must be hardware variants");
    ISEX_ASSERT(task.options[i].time > 0.0 && task.options[i].area >= 0.0);
  }
  const auto id = static_cast<TaskId>(tasks_.size());
  tasks_.push_back(std::move(task));
  preds_.emplace_back();
  succs_.emplace_back();
  return id;
}

TaskId TaskGraph::add_task(
    std::string name, double sw_time,
    std::initializer_list<std::pair<double, double>> hw_variants) {
  Task task;
  task.name = std::move(name);
  task.options.push_back(TaskOption{Target::kSoftware, sw_time, 0.0});
  for (const auto& [time, area] : hw_variants) {
    task.options.push_back(TaskOption{Target::kHardware, time, area});
  }
  return add_task(std::move(task));
}

void TaskGraph::add_dependence(TaskId from, TaskId to, double comm_cost) {
  ISEX_ASSERT(from < tasks_.size() && to < tasks_.size());
  ISEX_ASSERT_MSG(from != to, "self-dependence");
  ISEX_ASSERT(comm_cost >= 0.0);
  deps_.push_back(Dependence{from, to, comm_cost});
  succs_[from].push_back(to);
  preds_[to].push_back(from);
}

const Task& TaskGraph::task(TaskId id) const {
  ISEX_ASSERT(id < tasks_.size());
  return tasks_[id];
}

std::span<const TaskId> TaskGraph::preds(TaskId id) const {
  ISEX_ASSERT(id < tasks_.size());
  return preds_[id];
}

std::span<const TaskId> TaskGraph::succs(TaskId id) const {
  ISEX_ASSERT(id < tasks_.size());
  return succs_[id];
}

double TaskGraph::comm_cost(TaskId from, TaskId to) const {
  for (const Dependence& d : deps_) {
    if (d.from == from && d.to == to) return d.comm_cost;
  }
  return 0.0;
}

std::vector<TaskId> TaskGraph::topological_order() const {
  std::vector<int> in_degree(tasks_.size(), 0);
  for (TaskId v = 0; v < tasks_.size(); ++v)
    in_degree[v] = static_cast<int>(preds_[v].size());
  std::vector<TaskId> ready;
  for (TaskId v = 0; v < tasks_.size(); ++v)
    if (in_degree[v] == 0) ready.push_back(v);
  std::vector<TaskId> order;
  order.reserve(tasks_.size());
  while (!ready.empty()) {
    const TaskId v = ready.back();
    ready.pop_back();
    order.push_back(v);
    for (const TaskId s : succs_[v])
      if (--in_degree[s] == 0) ready.push_back(s);
  }
  ISEX_ASSERT_MSG(order.size() == tasks_.size(), "task graph has a cycle");
  return order;
}

}  // namespace isex::hwpart
