// Task graphs for hardware/software partitioning.
//
// Ch. 6 of the paper observes that the ISE exploration algorithm maps, with
// slight modification, onto the classic co-design problem (Chatha-Vemuri,
// Kalavade-Lee): hardware/software partitioning ↔ choosing implementation
// options, design-space exploration ↔ selecting among several hardware
// variants per task, and scheduling ↔ identifying the critical path.  This
// module realizes that adaptation: coarse-grain *tasks* (not single
// operations) with one software and any number of hardware implementations,
// dependence edges carrying a communication cost paid whenever producer and
// consumer end up on different sides of the HW/SW boundary.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace isex::hwpart {

using TaskId = std::uint32_t;
inline constexpr TaskId kInvalidTask = static_cast<TaskId>(-1);

enum class Target : std::uint8_t { kSoftware, kHardware };

struct TaskOption {
  Target target = Target::kSoftware;
  /// Execution time in abstract time units.
  double time = 1.0;
  /// Silicon area for hardware options; 0 for software.
  double area = 0.0;
};

struct Task {
  std::string name;
  /// Option 0 must be the software implementation; hardware variants follow.
  std::vector<TaskOption> options;
};

struct Dependence {
  TaskId from = kInvalidTask;
  TaskId to = kInvalidTask;
  /// Extra latency when `from` and `to` execute on different targets
  /// (bus transfer of the produced data).
  double comm_cost = 0.0;
};

class TaskGraph {
 public:
  /// Adds a task; option 0 must be software.  Returns its id.
  TaskId add_task(Task task);

  /// Convenience: software time + a list of (hw time, hw area) variants.
  TaskId add_task(std::string name, double sw_time,
                  std::initializer_list<std::pair<double, double>> hw_variants);

  void add_dependence(TaskId from, TaskId to, double comm_cost = 0.0);

  std::size_t num_tasks() const { return tasks_.size(); }
  const Task& task(TaskId id) const;
  std::span<const Dependence> dependences() const { return deps_; }
  std::span<const TaskId> preds(TaskId id) const;
  std::span<const TaskId> succs(TaskId id) const;
  double comm_cost(TaskId from, TaskId to) const;

  /// Topological order; asserts acyclicity.
  std::vector<TaskId> topological_order() const;

 private:
  std::vector<Task> tasks_;
  std::vector<Dependence> deps_;
  std::vector<std::vector<TaskId>> preds_;
  std::vector<std::vector<TaskId>> succs_;
};

}  // namespace isex::hwpart
