#include "hwpart/partition.hpp"

#include <algorithm>
#include <cmath>

#include "util/assert.hpp"

namespace isex::hwpart {
namespace {

Target target_of(const TaskGraph& graph, const Assignment& a, TaskId t) {
  return graph.task(t).options[static_cast<std::size_t>(a.option[t])].target;
}

double time_of(const TaskGraph& graph, const Assignment& a, TaskId t) {
  return graph.task(t).options[static_cast<std::size_t>(a.option[t])].time;
}

/// Critical tasks of an evaluated assignment: tasks on a tight chain
/// realizing the makespan (dependence- or resource-tight).
std::vector<bool> critical_tasks(const TaskGraph& graph, const Assignment& a,
                                 const std::vector<double>& start,
                                 const std::vector<double>& finish) {
  const std::size_t n = graph.num_tasks();
  std::vector<bool> critical(n, false);
  constexpr double kEps = 1e-9;
  for (TaskId t = 0; t < n; ++t)
    if (finish[t] >= a.makespan - kEps) critical[t] = true;
  // Backward closure over tight dependences.
  const std::vector<TaskId> topo = graph.topological_order();
  for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
    const TaskId v = *it;
    if (!critical[v]) continue;
    for (const TaskId p : graph.preds(v)) {
      const double comm = target_of(graph, a, p) != target_of(graph, a, v)
                              ? graph.comm_cost(p, v)
                              : 0.0;
      if (finish[p] + comm >= start[v] - kEps) critical[p] = true;
    }
  }
  return critical;
}

struct ScheduleDetail {
  std::vector<double> start;
  std::vector<double> finish;
};

ScheduleDetail schedule(const TaskGraph& graph, Assignment& a) {
  const std::size_t n = graph.num_tasks();
  ScheduleDetail detail;
  detail.start.assign(n, 0.0);
  detail.finish.assign(n, 0.0);
  double cpu_free = 0.0;
  double hw_free = 0.0;
  double makespan = 0.0;
  double area = 0.0;

  // Serve tasks in topological order; within the order, both resources are
  // sequential queues (list scheduling with the topological priority).
  for (const TaskId t : graph.topological_order()) {
    const Target tgt = target_of(graph, a, t);
    double ready = 0.0;
    for (const TaskId p : graph.preds(t)) {
      const double comm =
          target_of(graph, a, p) != tgt ? graph.comm_cost(p, t) : 0.0;
      ready = std::max(ready, detail.finish[p] + comm);
    }
    double& resource_free = (tgt == Target::kSoftware) ? cpu_free : hw_free;
    const double begin = std::max(ready, resource_free);
    const double end = begin + time_of(graph, a, t);
    detail.start[t] = begin;
    detail.finish[t] = end;
    resource_free = end;
    makespan = std::max(makespan, end);
    area += graph.task(t).options[static_cast<std::size_t>(a.option[t])].area;
  }
  a.makespan = makespan;
  a.hw_area = area;
  return detail;
}

/// Repairs an over-budget choice: flips the hardware task with the worst
/// (time saved / area) ratio back to software until the budget holds.
void repair_budget(const TaskGraph& graph, Assignment& a, double budget) {
  for (;;) {
    double area = 0.0;
    for (TaskId t = 0; t < graph.num_tasks(); ++t)
      area += graph.task(t).options[static_cast<std::size_t>(a.option[t])].area;
    if (area <= budget) return;
    TaskId worst = kInvalidTask;
    double worst_ratio = std::numeric_limits<double>::max();
    for (TaskId t = 0; t < graph.num_tasks(); ++t) {
      const auto& opts = graph.task(t).options;
      const auto idx = static_cast<std::size_t>(a.option[t]);
      if (opts[idx].target != Target::kHardware) continue;
      const double saved = opts[0].time - opts[idx].time;
      const double ratio = opts[idx].area > 0.0
                               ? saved / opts[idx].area
                               : std::numeric_limits<double>::max();
      if (ratio < worst_ratio) {
        worst_ratio = ratio;
        worst = t;
      }
    }
    ISEX_ASSERT_MSG(worst != kInvalidTask, "over budget with no hw tasks");
    a.option[worst] = 0;
  }
}

}  // namespace

bool Assignment::software_only() const {
  return std::all_of(option.begin(), option.end(),
                     [](int o) { return o == 0; });
}

void evaluate(const TaskGraph& graph, Assignment& assignment) {
  ISEX_ASSERT(assignment.option.size() == graph.num_tasks());
  (void)schedule(graph, assignment);
}

Assignment all_software(const TaskGraph& graph) {
  Assignment a;
  a.option.assign(graph.num_tasks(), 0);
  evaluate(graph, a);
  return a;
}

Assignment all_hardware(const TaskGraph& graph) {
  Assignment a;
  a.option.assign(graph.num_tasks(), 0);
  for (TaskId t = 0; t < graph.num_tasks(); ++t) {
    const auto& opts = graph.task(t).options;
    int best = 0;
    for (std::size_t o = 1; o < opts.size(); ++o) {
      if (best == 0 || opts[o].time < opts[static_cast<std::size_t>(best)].time)
        best = static_cast<int>(o);
    }
    a.option[t] = best;
  }
  evaluate(graph, a);
  return a;
}

Assignment greedy_partition(const TaskGraph& graph, double area_budget) {
  Assignment current = all_software(graph);
  double remaining = area_budget;
  for (;;) {
    TaskId best_task = kInvalidTask;
    int best_option = 0;
    double best_ratio = 0.0;
    Assignment best_candidate;
    for (TaskId t = 0; t < graph.num_tasks(); ++t) {
      if (current.option[t] != 0) continue;  // already in hardware
      const auto& opts = graph.task(t).options;
      for (std::size_t o = 1; o < opts.size(); ++o) {
        if (opts[o].area > remaining) continue;
        Assignment trial = current;
        trial.option[t] = static_cast<int>(o);
        evaluate(graph, trial);
        const double gain = current.makespan - trial.makespan;
        if (gain <= 0.0) continue;
        const double ratio =
            opts[o].area > 0.0 ? gain / opts[o].area
                               : std::numeric_limits<double>::max();
        if (ratio > best_ratio) {
          best_ratio = ratio;
          best_task = t;
          best_option = static_cast<int>(o);
          best_candidate = std::move(trial);
        }
      }
    }
    if (best_task == kInvalidTask) return current;
    remaining -=
        graph.task(best_task).options[static_cast<std::size_t>(best_option)].area;
    current = std::move(best_candidate);
  }
}

Assignment PartitionExplorer::explore(const TaskGraph& graph, Rng& rng) const {
  const std::size_t n = graph.num_tasks();
  Assignment best = all_software(graph);
  if (n == 0) return best;

  // Trail and merit per (task, option).
  std::vector<std::vector<double>> trail(n);
  std::vector<std::vector<double>> merit(n);
  for (TaskId t = 0; t < n; ++t) {
    const std::size_t k = graph.task(t).options.size();
    trail[t].assign(k, 0.0);
    merit[t].assign(k, params_.merit_scale);
  }
  auto weight = [&](TaskId t, std::size_t o) {
    return params_.alpha * trail[t][o] + (1.0 - params_.alpha) * merit[t][o];
  };

  double previous_makespan = std::numeric_limits<double>::max();
  std::vector<double> weights;
  for (int iteration = 0; iteration < params_.max_iterations; ++iteration) {
    // Construct one assignment stochastically.
    Assignment a;
    a.option.assign(n, 0);
    for (TaskId t = 0; t < n; ++t) {
      const std::size_t k = graph.task(t).options.size();
      weights.clear();
      for (std::size_t o = 0; o < k; ++o) weights.push_back(weight(t, o));
      a.option[t] = static_cast<int>(rng.weighted_pick(weights));
    }
    repair_budget(graph, a, params_.area_budget);
    const ScheduleDetail detail = schedule(graph, a);

    const bool improved = a.makespan <= previous_makespan;
    previous_makespan = std::min(previous_makespan, a.makespan);
    if (a.makespan < best.makespan ||
        (a.makespan == best.makespan && a.hw_area < best.hw_area)) {
      best = a;
    }

    // Trail update.
    for (TaskId t = 0; t < n; ++t) {
      for (std::size_t o = 0; o < trail[t].size(); ++o) {
        const bool chosen = a.option[t] == static_cast<int>(o);
        double v = trail[t][o];
        v += (chosen == improved) ? params_.rho_reward : -params_.rho_decay;
        trail[t][o] = std::clamp(v, 0.0, 1000.0);
      }
    }

    // Merit update: hardware merit scales with the time the variant saves;
    // off-critical tasks decay (moving them to hardware cannot shorten the
    // makespan — the Ch. 6 translation of "operation location").
    const std::vector<bool> critical =
        critical_tasks(graph, a, detail.start, detail.finish);
    for (TaskId t = 0; t < n; ++t) {
      const auto& opts = graph.task(t).options;
      for (std::size_t o = 1; o < opts.size(); ++o) {
        const double saving = std::max(0.0, opts[0].time - opts[o].time);
        merit[t][o] *= 1.0 + saving / std::max(1.0, opts[0].time);
        if (!critical[t]) merit[t][o] *= params_.beta_offcrit;
        if (opts[o].area > params_.area_budget) merit[t][o] *= 0.5;
      }
      // Renormalize so the best option carries merit_scale.
      double best_merit = 0.0;
      for (const double m : merit[t]) best_merit = std::max(best_merit, m);
      if (best_merit > 0.0) {
        const double f = params_.merit_scale / best_merit;
        for (double& m : merit[t]) m = std::max(m * f, 1e-6);
      }
    }

    // Convergence: selected probability of the best option per task.
    bool converged = true;
    for (TaskId t = 0; t < n && converged; ++t) {
      if (trail[t].size() <= 1) continue;
      double total = 0.0;
      double top = 0.0;
      for (std::size_t o = 0; o < trail[t].size(); ++o) {
        const double w = weight(t, o);
        total += w;
        top = std::max(top, w);
      }
      converged = total <= 0.0 || top / total > params_.p_end;
    }
    if (converged) break;
  }
  return best;
}

Assignment PartitionExplorer::explore_best_of(const TaskGraph& graph,
                                              int repeats, Rng& rng) const {
  ISEX_ASSERT(repeats >= 1);
  Assignment best;
  bool have = false;
  for (int r = 0; r < repeats; ++r) {
    Rng child = rng.split();
    Assignment a = explore(graph, child);
    if (!have || a.makespan < best.makespan ||
        (a.makespan == best.makespan && a.hw_area < best.hw_area)) {
      best = std::move(a);
      have = true;
    }
  }
  return best;
}

}  // namespace isex::hwpart
