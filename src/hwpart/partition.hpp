// ACO hardware/software partitioning (the Ch. 6 adaptation).
//
// Two sequential resources — a CPU executing software tasks and a hardware
// region executing hardware tasks — plus a bus charging each boundary
// crossing its communication cost.  The explorer reuses the ISE machinery's
// shape one level up: per-task implementation options, trail + merit
// stochastic choice, schedule-derived criticality steering merit, and
// convergence by selected probability.  Baselines (all-software,
// all-hardware, greedy ratio) calibrate the benchmark harness.
#pragma once

#include <limits>
#include <vector>

#include "hwpart/task_graph.hpp"
#include "util/rng.hpp"

namespace isex::hwpart {

/// A complete partitioning decision: one option index per task.
struct Assignment {
  std::vector<int> option;
  double makespan = 0.0;
  double hw_area = 0.0;

  bool software_only() const;
};

/// List-schedules `assignment` on {CPU, HW} and fills makespan/hw_area.
/// Both resources are sequential; a dependence crossing the boundary delays
/// the consumer by its comm_cost.
void evaluate(const TaskGraph& graph, Assignment& assignment);

/// Everything on the CPU.
Assignment all_software(const TaskGraph& graph);

/// Every task on its fastest hardware variant (tasks without one stay in
/// software); ignores any area budget — an upper bound on spending.
Assignment all_hardware(const TaskGraph& graph);

/// Classic ratio greedy: repeatedly move the task with the best
/// (time saved / area) ratio to hardware while the budget allows and the
/// makespan improves.
Assignment greedy_partition(const TaskGraph& graph, double area_budget);

struct PartitionParams {
  double area_budget = std::numeric_limits<double>::infinity();
  // ACO knobs (same roles as in core::ExplorerParams).
  double alpha = 0.25;
  double rho_reward = 4.0;
  double rho_decay = 2.0;
  double beta_offcrit = 0.85;  ///< decay for hw options of off-critical tasks
  double merit_scale = 200.0;
  double p_end = 0.98;
  int max_iterations = 200;
};

class PartitionExplorer {
 public:
  explicit PartitionExplorer(PartitionParams params = {}) : params_(params) {}

  /// Runs the ACO search; the result always satisfies the area budget.
  Assignment explore(const TaskGraph& graph, Rng& rng) const;

  /// Best of `repeats` independent runs.
  Assignment explore_best_of(const TaskGraph& graph, int repeats, Rng& rng) const;

 private:
  PartitionParams params_;
};

}  // namespace isex::hwpart
