// Copy-free overlay of one Graph::collapse result.
//
// Scoring a Make-Convex candidate needs the *scheduler-visible* shape of the
// collapsed graph — node ids, deduplicated edges, opcodes/ISE payloads,
// live-in counts — but Graph::collapse also materializes per-node label
// strings, per-node adjacency vectors, and member-label lists, none of which
// scheduling reads.  CollapsedView reproduces exactly the structure collapse
// would build (same node numbering: survivors in original order with the
// supernode spliced in at the first member's position; same deduplicated
// edge sets; same aggregated live-in value count for the supernode) into
// flat reusable buffers, so evaluating a candidate allocates nothing after
// warm-up and the full collapse is derived only once, for the round's
// winner.
//
// The interface mirrors the subset of dfg::Graph the list scheduler and the
// priority functions read, so scheduler code templated over the graph type
// works on either unchanged.  Equivalence with Graph::collapse is pinned by
// tests/test_collapsed_view.cpp over randomized DAGs.
#pragma once

#include <span>
#include <vector>

#include "dfg/graph.hpp"
#include "dfg/node_set.hpp"

namespace isex::dfg {

class CollapsedView {
 public:
  /// What node(v) exposes: the fields scheduling reads from dfg::Node.
  /// `ise` references either the base graph's payload (pre-existing
  /// supernodes) or the view's own copy (the candidate being scored).
  struct NodeView {
    isa::Opcode opcode;
    bool is_ise;
    /// Memory-model latency annotation (dfg::Node::mem_latency); 0 for the
    /// supernode — ISE members are never memory operations.
    int mem_latency;
    const IseInfo& ise;
  };

  CollapsedView() = default;

  /// Rebuilds the view as base.collapse(members, info) would look to the
  /// scheduler.  Internal buffers are reused; `base` and `members` must
  /// outlive the view (info is copied, labels excluded).
  void assign(const Graph& base, const NodeSet& members, const IseInfo& info);

  std::size_t num_nodes() const { return num_nodes_; }
  bool empty() const { return num_nodes_ == 0; }

  NodeView node(NodeId v) const;
  std::span<const NodeId> preds(NodeId v) const;
  std::span<const NodeId> succs(NodeId v) const;

  /// Distinct live-in values consumed by the node; for the supernode this is
  /// the deduplicated union of the members' extern value ids, exactly as
  /// Graph::collapse aggregates it.
  int extern_inputs(NodeId v) const;

  /// Id of the candidate's supernode in view coordinates.
  NodeId super_node() const { return super_; }

 private:
  void build_adjacency(const Graph& base, const NodeSet& members);

  const Graph* base_ = nullptr;
  IseInfo info_;  // member_labels left empty; scheduling never reads them
  std::size_t num_nodes_ = 0;
  NodeId super_ = kInvalidNode;

  /// Old node id -> view node id (members all map to super_).
  std::vector<NodeId> remap_;
  /// View node id -> old node id (super_ slot value is unused).
  std::vector<NodeId> view_to_old_;

  /// CSR adjacency with edges deduplicated at the supernode boundary.
  std::vector<NodeId> succ_data_, pred_data_;
  std::vector<std::uint32_t> succ_off_, pred_off_;

  /// Deduplicated extern value-id count of the supernode.
  int super_extern_ = 0;
  std::vector<int> extern_scratch_;

  /// Per-view-node visit stamps for O(1) edge dedup during build.
  std::vector<std::uint32_t> stamp_;
  std::uint32_t epoch_ = 0;
};

}  // namespace isex::dfg
