#include "dfg/analysis.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace isex::dfg {

Reachability::Reachability(const Graph& graph) {
  const std::size_t n = graph.num_nodes();
  desc_.assign(n, NodeSet(n));
  anc_.assign(n, NodeSet(n));

  const std::vector<NodeId> topo = graph.topological_order();

  // Descendants: sweep reverse-topologically, folding successor sets.
  for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
    const NodeId v = *it;
    for (const NodeId s : graph.succs(v)) {
      desc_[v].insert(s);
      desc_[v] |= desc_[s];
    }
  }
  // Ancestors: forward sweep, folding predecessor sets.
  for (const NodeId v : topo) {
    for (const NodeId p : graph.preds(v)) {
      anc_[v].insert(p);
      anc_[v] |= anc_[p];
    }
  }
}

bool Reachability::reaches(NodeId from, NodeId to) const {
  ISEX_ASSERT(from < desc_.size() && to < desc_.size());
  return desc_[from].contains(to);
}

const NodeSet& Reachability::descendants(NodeId id) const {
  ISEX_ASSERT(id < desc_.size());
  return desc_[id];
}

const NodeSet& Reachability::ancestors(NodeId id) const {
  ISEX_ASSERT(id < anc_.size());
  return anc_[id];
}

bool is_convex(const Graph& graph, const NodeSet& s, const Reachability& reach) {
  ISEX_ASSERT(s.universe() == graph.num_nodes());
  // S is non-convex iff some member u has a path to member v through an
  // outside node w: equivalently, an outside node w that is a descendant of
  // a member and an ancestor of a member.
  bool convex = true;
  const std::vector<NodeId> members = s.to_vector();
  for (NodeId w = 0; w < graph.num_nodes() && convex; ++w) {
    if (s.contains(w)) continue;
    bool below_member = false;
    bool above_member = false;
    for (const NodeId m : members) {
      if (reach.reaches(m, w)) below_member = true;
      if (reach.reaches(w, m)) above_member = true;
      if (below_member && above_member) {
        convex = false;
        break;
      }
    }
  }
  return convex;
}

int count_inputs(const Graph& graph, const NodeSet& s) {
  ISEX_ASSERT(s.universe() == graph.num_nodes());
  NodeSet outside_producers(graph.num_nodes());
  std::vector<int> extern_ids;
  s.for_each([&](NodeId v) {
    for (const int value_id : graph.extern_input_ids(v)) {
      if (std::find(extern_ids.begin(), extern_ids.end(), value_id) ==
          extern_ids.end())
        extern_ids.push_back(value_id);
    }
    for (const NodeId p : graph.preds(v)) {
      if (!s.contains(p)) outside_producers.insert(p);
    }
  });
  return static_cast<int>(outside_producers.count() + extern_ids.size());
}

int count_outputs(const Graph& graph, const NodeSet& s) {
  ISEX_ASSERT(s.universe() == graph.num_nodes());
  int outputs = 0;
  s.for_each([&](NodeId v) {
    bool escapes = graph.live_out(v);
    if (!escapes) {
      for (const NodeId c : graph.succs(v)) {
        if (!s.contains(c)) {
          escapes = true;
          break;
        }
      }
    }
    if (escapes) ++outputs;
  });
  return outputs;
}

PathInfo longest_path(const Graph& graph, const LatencyFn& latency) {
  const std::size_t n = graph.num_nodes();
  PathInfo info;
  info.earliest.assign(n, 0.0);
  info.latest.assign(n, 0.0);
  info.critical.resize(n);
  if (n == 0) return info;

  const std::vector<NodeId> topo = graph.topological_order();

  // ASAP: start = max over parents of (parent start + parent latency).
  double total = 0.0;
  for (const NodeId v : topo) {
    double start = 0.0;
    for (const NodeId p : graph.preds(v))
      start = std::max(start, info.earliest[p] + latency(p));
    info.earliest[v] = start;
    total = std::max(total, start + latency(v));
  }
  info.length = total;

  // ALAP: latest start keeping overall length `total`.
  for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
    const NodeId v = *it;
    double latest = total - latency(v);
    for (const NodeId c : graph.succs(v))
      latest = std::min(latest, info.latest[c] - latency(v));
    info.latest[v] = latest;
  }

  constexpr double kEps = 1e-9;
  for (NodeId v = 0; v < n; ++v) {
    if (info.latest[v] - info.earliest[v] <= kEps) info.critical.insert(v);
  }
  return info;
}

std::vector<NodeSet> weakly_connected_components(const Graph& graph,
                                                 const NodeSet& within) {
  ISEX_ASSERT(within.universe() == graph.num_nodes());
  std::vector<NodeSet> components;
  NodeSet visited(graph.num_nodes());

  within.for_each([&](NodeId seed) {
    if (visited.contains(seed)) return;
    NodeSet comp(graph.num_nodes());
    std::vector<NodeId> stack{seed};
    visited.insert(seed);
    while (!stack.empty()) {
      const NodeId v = stack.back();
      stack.pop_back();
      comp.insert(v);
      auto visit = [&](NodeId u) {
        if (within.contains(u) && !visited.contains(u)) {
          visited.insert(u);
          stack.push_back(u);
        }
      };
      for (const NodeId u : graph.succs(v)) visit(u);
      for (const NodeId u : graph.preds(v)) visit(u);
    }
    components.push_back(std::move(comp));
  });
  return components;
}

double induced_critical_path(const Graph& graph, const NodeSet& s,
                             const LatencyFn& latency) {
  ISEX_ASSERT(s.universe() == graph.num_nodes());
  const std::vector<NodeId> topo = graph.topological_order();
  std::vector<double> finish(graph.num_nodes(), 0.0);
  double longest = 0.0;
  for (const NodeId v : topo) {
    if (!s.contains(v)) continue;
    double start = 0.0;
    for (const NodeId p : graph.preds(v)) {
      if (s.contains(p)) start = std::max(start, finish[p]);
    }
    finish[v] = start + latency(v);
    longest = std::max(longest, finish[v]);
  }
  return longest;
}

}  // namespace isex::dfg
