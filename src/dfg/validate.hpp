// DFG structural validator.
//
// Every downstream subsystem (Ready-Matrix, list scheduler, collapse,
// exploration) assumes the graph is a well-formed DAG whose nodes carry
// legal opcodes and sane live-in/live-out annotations.  Those assumptions
// were implicit preconditions; this pass makes them checked contracts at the
// input boundary, so a malformed kernel is rejected with a diagnostic
// instead of corrupting the scheduler state.
//
// Checked invariants (see docs/ROBUSTNESS.md for the full table):
//   * adjacency integrity — edge endpoints in range, succs/preds mirrored,
//     no self-edges, no duplicate parallel edges;
//   * acyclicity — the graph is a DAG (Kahn over every node);
//   * opcode legality — opcode inside the PISA enum; nodes whose opcode
//     produces no result must not have consumers or be live-out;
//   * arity — in-block producers plus live-in operands never exceed the
//     opcode's register-source count (non-ISE nodes; reported as a warning
//     because the scheduler caps port usage at the ISA arity);
//   * live-in consistency — extern value ids non-negative;
//   * ISE payload sanity — supernode latency >= 1, area >= 0, IN/OUT >= 1.
//
// validate() never throws and never asserts on malformed *input* shapes; it
// returns every defect found, in node order.
#pragma once

#include "dfg/graph.hpp"
#include "util/error.hpp"

namespace isex::dfg {

ValidationReport validate(const Graph& graph);

}  // namespace isex::dfg
