// Data-flow graph (DFG) of one basic block.
//
// G(V, E): every vertex is one assembly-level operation, every edge (u, v)
// means v consumes the value produced by u (§4.0).  The graph additionally
// tracks, per node, how many of its operands are live-in to the block
// (produced outside) and whether its result is live-out — both are needed to
// evaluate the IN(S)/OUT(S) port constraints of an ISE candidate.
//
// After an ISE candidate is committed, the member operations collapse into a
// single *supernode* carrying the ASFU latency and area; subsequent
// exploration rounds run on the reduced graph (§4.0 Fig 4.0.2).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "dfg/node_set.hpp"
#include "isa/opcode.hpp"

namespace isex::dfg {

/// Payload a collapsed ISE supernode carries.
struct IseInfo {
  /// ASFU latency in processor cycles (≥ 1).
  int latency_cycles = 1;
  /// Extra silicon area of the ASFU datapath, µm².
  double area = 0.0;
  /// IN(S) / OUT(S) of the original candidate; the scheduler charges this
  /// many register read/write ports when the ISE issues.
  int num_inputs = 1;
  int num_outputs = 1;
  /// Labels of the original member operations (for reporting).
  std::vector<std::string> member_labels;
};

struct Node {
  isa::Opcode opcode = isa::Opcode::kNop;
  /// Human-readable label, typically the destination variable name.
  std::string label;
  /// True for a collapsed ISE supernode; `ise` is then meaningful and
  /// `opcode` is ignored by scheduling/exploration.
  bool is_ise = false;
  /// Effective load/store latency in cycles stamped by the memory-hierarchy
  /// model (mem::annotate_graph); 0 means unannotated — the scheduler then
  /// charges the legacy one-cycle latency.  Preserved across collapse().
  int mem_latency = 0;
  IseInfo ise;
};

class Graph {
 public:
  NodeId add_node(isa::Opcode opcode, std::string label = {});
  NodeId add_ise_node(IseInfo info, std::string label = {});

  /// Adds a data edge u -> v.  Duplicate edges are ignored (one producer
  /// feeding the same consumer twice carries one value).  Self-edges are a
  /// precondition violation.
  void add_edge(NodeId from, NodeId to);

  std::size_t num_nodes() const { return nodes_.size(); }
  std::size_t num_edges() const { return num_edges_; }
  bool empty() const { return nodes_.empty(); }

  const Node& node(NodeId id) const;
  Node& node(NodeId id);

  std::span<const NodeId> succs(NodeId id) const;
  std::span<const NodeId> preds(NodeId id) const;

  /// Operands of `id` produced outside the block (live-in values).  Each
  /// live-in operand carries a *value id*: operands with equal ids name the
  /// same live-in value (IN(S) counts them once).  This overload assigns
  /// fresh unique ids — the conservative default.
  void set_extern_inputs(NodeId id, int count);
  /// Explicit live-in value ids (the TAC frontend passes one per variable,
  /// shared across its uses).
  void set_extern_input_ids(NodeId id, std::vector<int> value_ids);
  int extern_inputs(NodeId id) const;
  std::span<const int> extern_input_ids(NodeId id) const;

  /// Marks the value of `id` as consumed after the block ends.
  void set_live_out(NodeId id, bool live);
  bool live_out(NodeId id) const;

  bool has_edge(NodeId from, NodeId to) const;

  /// Topological order (Kahn).  Asserts the graph is acyclic.
  std::vector<NodeId> topological_order() const;

  /// True when no directed cycle exists.
  bool is_acyclic() const;

  /// All-node set convenience.
  NodeSet all_nodes() const;

  /// Collapses `members` into one ISE supernode.  Returns the reduced graph;
  /// `old_to_new` (if non-null) receives, per old node id, the new id of the
  /// node that now represents it (members all map to the supernode).
  ///
  /// Preconditions: members non-empty and convex (otherwise the reduced
  /// graph would contain a cycle, which is asserted).
  Graph collapse(const NodeSet& members, IseInfo info,
                 std::vector<NodeId>* old_to_new = nullptr) const;

 private:
  std::vector<Node> nodes_;
  std::vector<std::vector<NodeId>> succs_;
  std::vector<std::vector<NodeId>> preds_;
  std::vector<std::vector<int>> extern_input_ids_;
  std::vector<bool> live_out_;
  std::size_t num_edges_ = 0;
  int next_unique_extern_id_ = 0;
};

}  // namespace isex::dfg
