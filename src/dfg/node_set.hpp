// Dense bitset keyed by DFG node id.
//
// ISE candidates, reachability rows, and critical-path markings are all sets
// of node ids over a fixed-size graph; a word-packed bitset makes the
// convexity and grouping checks (which dominate the inner loop) cheap.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace isex::dfg {

using NodeId = std::uint32_t;
inline constexpr NodeId kInvalidNode = static_cast<NodeId>(-1);

/// Fixed-universe bitset over node ids [0, size).
class NodeSet {
 public:
  NodeSet() = default;
  explicit NodeSet(std::size_t universe) { resize(universe); }

  void resize(std::size_t universe);
  std::size_t universe() const { return universe_; }

  void insert(NodeId id);
  void erase(NodeId id);
  bool contains(NodeId id) const;
  void clear();

  /// insert(id); returns true when the bit was newly set.  Lets fixpoint
  /// loops fold the contains/insert pair into one word access.
  bool test_and_set(NodeId id);

  /// In-place union (word-level `|=`); returns true when any bit was newly
  /// set.  Universes must match.
  bool insert_all(const NodeSet& other);

  /// Number of set bits.
  std::size_t count() const;
  /// True when no bit is set.  Early-exits on the first nonzero word rather
  /// than popcounting the whole set (empty() guards several hot loops).
  bool empty() const;

  /// In-place union / intersection / difference. Universes must match.
  NodeSet& operator|=(const NodeSet& other);
  NodeSet& operator&=(const NodeSet& other);
  NodeSet& operator-=(const NodeSet& other);

  bool intersects(const NodeSet& other) const;
  bool is_subset_of(const NodeSet& other) const;

  friend bool operator==(const NodeSet&, const NodeSet&) = default;

  /// Ascending list of members.
  std::vector<NodeId> to_vector() const;

  /// Raw 64-bit words (bit i of word w = node w*64+i).  Exposed so
  /// fingerprints can hash a member set without enumerating bits.
  std::span<const std::uint64_t> words() const { return words_; }

  /// Calls `fn(NodeId)` for each member in ascending order.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (std::size_t w = 0; w < words_.size(); ++w) {
      std::uint64_t bits = words_[w];
      while (bits != 0) {
        const int b = count_trailing_zeros(bits);
        fn(static_cast<NodeId>(w * 64 + static_cast<std::size_t>(b)));
        bits &= bits - 1;
      }
    }
  }

  /// Builds a set from an explicit member list.
  static NodeSet of(std::size_t universe, std::initializer_list<NodeId> members);

 private:
  static int count_trailing_zeros(std::uint64_t v);
  std::size_t universe_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace isex::dfg
