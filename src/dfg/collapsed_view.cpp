#include "dfg/collapsed_view.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace isex::dfg {

void CollapsedView::assign(const Graph& base, const NodeSet& members,
                           const IseInfo& info) {
  ISEX_ASSERT(members.universe() == base.num_nodes());
  ISEX_ASSERT_MSG(!members.empty(), "cannot view an empty member set");

  base_ = &base;
  info_.latency_cycles = info.latency_cycles;
  info_.area = info.area;
  info_.num_inputs = info.num_inputs;
  info_.num_outputs = info.num_outputs;

  const std::size_t n_old = base.num_nodes();

  // Node numbering, identical to Graph::collapse: survivors keep their
  // relative order and the supernode takes the first member's position.
  remap_.assign(n_old, kInvalidNode);
  view_to_old_.clear();
  super_ = kInvalidNode;
  for (NodeId v = 0; v < n_old; ++v) {
    if (members.contains(v)) {
      if (super_ == kInvalidNode) {
        super_ = static_cast<NodeId>(view_to_old_.size());
        view_to_old_.push_back(kInvalidNode);
      }
      remap_[v] = super_;
    } else {
      remap_[v] = static_cast<NodeId>(view_to_old_.size());
      view_to_old_.push_back(v);
    }
  }
  num_nodes_ = view_to_old_.size();

  build_adjacency(base, members);

  // Supernode live-ins: union of member extern value ids, deduplicated the
  // same way collapse does (ids may repeat across members; each distinct
  // value counts once).  Member lists are tiny, so linear dedup suffices.
  extern_scratch_.clear();
  members.for_each([&](NodeId m) {
    for (const int value_id : base.extern_input_ids(m)) {
      if (std::find(extern_scratch_.begin(), extern_scratch_.end(),
                    value_id) == extern_scratch_.end())
        extern_scratch_.push_back(value_id);
    }
  });
  super_extern_ = static_cast<int>(extern_scratch_.size());
}

void CollapsedView::build_adjacency(const Graph& base, const NodeSet& members) {
  succ_data_.clear();
  pred_data_.clear();
  succ_off_.assign(num_nodes_ + 1, 0);
  pred_off_.assign(num_nodes_ + 1, 0);
  if (stamp_.size() < num_nodes_) stamp_.assign(num_nodes_, 0);

  // Rows are emitted in view-node order, so offsets fall out of the append
  // positions.  Only edges touching the supernode can produce duplicates
  // (several members mapping to one id); the epoch stamp dedups them without
  // clearing between rows.
  const auto emit_row = [&](NodeId row, auto neighbours_of,
                            std::vector<NodeId>& data,
                            std::vector<std::uint32_t>& off) {
    ++epoch_;
    off[row] = static_cast<std::uint32_t>(data.size());
    const auto add = [&](NodeId old_neighbour) {
      const NodeId t = remap_[old_neighbour];
      if (t == row) return;  // edge internal to the ISE
      if (stamp_[t] == epoch_) return;
      stamp_[t] = epoch_;
      data.push_back(t);
    };
    if (row == super_) {
      members.for_each([&](NodeId m) {
        for (const NodeId u : neighbours_of(m)) add(u);
      });
    } else {
      for (const NodeId u : neighbours_of(view_to_old_[row])) add(u);
    }
  };

  for (NodeId row = 0; row < num_nodes_; ++row) {
    emit_row(
        row, [&](NodeId v) { return base.succs(v); }, succ_data_, succ_off_);
  }
  succ_off_[num_nodes_] = static_cast<std::uint32_t>(succ_data_.size());
  for (NodeId row = 0; row < num_nodes_; ++row) {
    emit_row(
        row, [&](NodeId v) { return base.preds(v); }, pred_data_, pred_off_);
  }
  pred_off_[num_nodes_] = static_cast<std::uint32_t>(pred_data_.size());
}

CollapsedView::NodeView CollapsedView::node(NodeId v) const {
  ISEX_ASSERT(v < num_nodes_);
  if (v == super_) return NodeView{isa::Opcode::kNop, true, 0, info_};
  const Node& n = base_->node(view_to_old_[v]);
  return NodeView{n.opcode, n.is_ise, n.mem_latency, n.ise};
}

std::span<const NodeId> CollapsedView::preds(NodeId v) const {
  ISEX_ASSERT(v < num_nodes_);
  return {pred_data_.data() + pred_off_[v], pred_off_[v + 1] - pred_off_[v]};
}

std::span<const NodeId> CollapsedView::succs(NodeId v) const {
  ISEX_ASSERT(v < num_nodes_);
  return {succ_data_.data() + succ_off_[v], succ_off_[v + 1] - succ_off_[v]};
}

int CollapsedView::extern_inputs(NodeId v) const {
  ISEX_ASSERT(v < num_nodes_);
  if (v == super_) return super_extern_;
  return base_->extern_inputs(view_to_old_[v]);
}

}  // namespace isex::dfg
