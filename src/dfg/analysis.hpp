// Graph analyses the exploration relies on:
//   * reachability (ancestors/descendants) — Hardware-Grouping grows virtual
//     ISE candidates over *reachable* hardware-chosen neighbours (§4.3);
//   * convexity — §4.2 constraint 3;
//   * IN(S)/OUT(S) — §4.2 constraints 1 and 2;
//   * dependence-critical path and ASAP/ALAP levels — merit case 1 locality
//     and the Max_AEC slack bound (Fig 4.3.8);
//   * weakly-connected components — an ISE is a *connected* set of taken
//     hardware operations.
#pragma once

#include <functional>
#include <vector>

#include "dfg/graph.hpp"
#include "dfg/node_set.hpp"

namespace isex::dfg {

/// Precomputed transitive reachability.  O(V·E/64) to build; queries O(1).
class Reachability {
 public:
  explicit Reachability(const Graph& graph);

  /// True when a non-empty directed path from -> to exists.
  bool reaches(NodeId from, NodeId to) const;

  /// Strict descendants (excludes the node itself).
  const NodeSet& descendants(NodeId id) const;
  /// Strict ancestors (excludes the node itself).
  const NodeSet& ancestors(NodeId id) const;

 private:
  std::vector<NodeSet> desc_;
  std::vector<NodeSet> anc_;
};

/// Convexity (§4.2): S is convex iff no path leaves S and re-enters it, i.e.
/// for every u, v in S, every intermediate node on any u→…→v path is in S.
bool is_convex(const Graph& graph, const NodeSet& s, const Reachability& reach);

/// IN(S): number of input values consumed by S from outside — distinct
/// in-block producers feeding S, plus the members' live-in operand counts.
/// (Live-in operands of different members are conservatively counted as
/// distinct values; the TAC frontend folds shared variables into shared
/// producer nodes, so the approximation only affects block-boundary values.)
int count_inputs(const Graph& graph, const NodeSet& s);

/// OUT(S): number of members whose value escapes S (an out-edge to a
/// non-member, or live-out of the block).
int count_outputs(const Graph& graph, const NodeSet& s);

/// Latency callback: execution weight of a node for path computations.
using LatencyFn = std::function<double(NodeId)>;

/// Dependence-only longest-path data (infinite-resource model).
struct PathInfo {
  /// ASAP start level per node.
  std::vector<double> earliest;
  /// ALAP start level per node (same overall length).
  std::vector<double> latest;
  /// Total dependence-critical path length.
  double length = 0.0;
  /// Nodes with zero slack (earliest == latest).
  NodeSet critical;
};

PathInfo longest_path(const Graph& graph, const LatencyFn& latency);

/// Weakly-connected components of the subgraph induced by `within`.
std::vector<NodeSet> weakly_connected_components(const Graph& graph,
                                                 const NodeSet& within);

/// Longest path length (by `latency`) restricted to the induced subgraph of
/// `s` — the combinational depth of an ISE candidate's datapath.
double induced_critical_path(const Graph& graph, const NodeSet& s,
                             const LatencyFn& latency);

}  // namespace isex::dfg
