#include "dfg/validate.hpp"

#include <algorithm>
#include <string>
#include <vector>

namespace isex::dfg {
namespace {

std::string node_name(const Graph& g, NodeId v) {
  const Node& n = g.node(v);
  std::string out = "node " + std::to_string(v);
  if (!n.label.empty()) out += " ('" + n.label + "')";
  return out;
}

/// Edge-level integrity.  Returns false when the adjacency lists are too
/// corrupt for the downstream passes (cycle check) to run meaningfully.
bool check_adjacency(const Graph& g, ValidationReport& report) {
  const std::size_t n = g.num_nodes();
  bool usable = true;
  for (NodeId v = 0; v < n; ++v) {
    for (const NodeId s : g.succs(v)) {
      if (s >= n) {
        report.add(ErrorCode::kGraphDanglingOperand,
                   node_name(g, v) + " has a successor edge to nonexistent node " +
                       std::to_string(s));
        usable = false;
        continue;
      }
      if (s == v) {
        report.add(ErrorCode::kGraphSelfEdge,
                   node_name(g, v) + " feeds itself");
        usable = false;
      }
      const auto preds = g.preds(s);
      if (std::find(preds.begin(), preds.end(), v) == preds.end()) {
        report.add(ErrorCode::kGraphAdjacencyCorrupt,
                   "edge " + std::to_string(v) + " -> " + std::to_string(s) +
                       " present in succs but missing from preds");
        usable = false;
      }
    }
    // Duplicate parallel edges: one producer feeding one consumer carries
    // one value; Graph::add_edge dedupes, so a duplicate means corruption.
    std::vector<NodeId> sorted(g.succs(v).begin(), g.succs(v).end());
    std::sort(sorted.begin(), sorted.end());
    if (std::adjacent_find(sorted.begin(), sorted.end()) != sorted.end()) {
      report.add(ErrorCode::kGraphDuplicateEdge,
                 node_name(g, v) + " has duplicate successor edges");
      usable = false;
    }
    for (const NodeId p : g.preds(v)) {
      if (p >= n) {
        report.add(ErrorCode::kGraphDanglingOperand,
                   node_name(g, v) + " has a predecessor edge from nonexistent node " +
                       std::to_string(p));
        usable = false;
        continue;
      }
      const auto succs = g.succs(p);
      if (std::find(succs.begin(), succs.end(), v) == succs.end()) {
        report.add(ErrorCode::kGraphAdjacencyCorrupt,
                   "edge " + std::to_string(p) + " -> " + std::to_string(v) +
                       " present in preds but missing from succs");
        usable = false;
      }
    }
  }
  return usable;
}

void check_nodes(const Graph& g, ValidationReport& report) {
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    const Node& n = g.node(v);

    if (n.is_ise) {
      const IseInfo& ise = n.ise;
      if (ise.latency_cycles < 1)
        report.add(ErrorCode::kGraphIseInfoInvalid,
                   node_name(g, v) + " is an ISE supernode with latency " +
                       std::to_string(ise.latency_cycles) + " (must be >= 1)");
      if (ise.area < 0.0)
        report.add(ErrorCode::kGraphIseInfoInvalid,
                   node_name(g, v) + " is an ISE supernode with negative area");
      if (ise.num_inputs < 0 || ise.num_outputs < 0)
        report.add(ErrorCode::kGraphIseInfoInvalid,
                   node_name(g, v) + " is an ISE supernode with negative IN/OUT " +
                       std::to_string(ise.num_inputs) + "/" +
                       std::to_string(ise.num_outputs));
    } else {
      const auto opcode_index = static_cast<std::size_t>(n.opcode);
      if (opcode_index >= isa::kOpcodeCount) {
        report.add(ErrorCode::kGraphOpcodeIllegal,
                   node_name(g, v) + " carries opcode value " +
                       std::to_string(opcode_index) +
                       " outside the PISA subset");
        continue;  // traits() would assert on this opcode
      }
      const isa::OpcodeTraits& tr = isa::traits(n.opcode);
      if (!tr.has_dst) {
        if (!g.succs(v).empty())
          report.add(ErrorCode::kGraphResultlessProducer,
                     node_name(g, v) + " ('" + std::string(tr.mnemonic) +
                         "') produces no result but has in-block consumers");
        if (g.live_out(v))
          report.add(ErrorCode::kGraphResultlessProducer,
                     node_name(g, v) + " ('" + std::string(tr.mnemonic) +
                         "') produces no result but is marked live-out");
      }
      const int operands =
          static_cast<int>(g.preds(v).size()) + g.extern_inputs(v);
      // Warning, not error: the scheduler caps port usage at the ISA arity,
      // so an over-arity node is suspicious but not unsafe (hand-built test
      // graphs use set_extern_inputs liberally).  The TAC frontend rejects
      // over-arity statements outright in strict mode (kParseArity).
      if (operands > static_cast<int>(tr.num_srcs))
        report.add(ErrorCode::kGraphArity,
                   node_name(g, v) + " ('" + std::string(tr.mnemonic) +
                       "') has " + std::to_string(operands) +
                       " register operands; the opcode reads at most " +
                       std::to_string(static_cast<int>(tr.num_srcs)),
                   {}, Severity::kWarning);
    }

    for (const int value_id : g.extern_input_ids(v)) {
      if (value_id < 0) {
        report.add(ErrorCode::kGraphLiveInInconsistent,
                   node_name(g, v) + " has negative live-in value id " +
                       std::to_string(value_id));
        break;
      }
    }
  }
}

}  // namespace

ValidationReport validate(const Graph& graph) {
  ValidationReport report;
  const bool adjacency_usable = check_adjacency(graph, report);
  check_nodes(graph, report);
  if (adjacency_usable && !graph.is_acyclic()) {
    report.add(ErrorCode::kGraphCycle,
               "graph contains a directed cycle; a DFG must be a DAG");
  }
  return report;
}

}  // namespace isex::dfg
