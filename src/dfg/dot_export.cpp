#include "dfg/dot_export.hpp"

#include <array>
#include <ostream>
#include <sstream>

namespace isex::dfg {
namespace {

constexpr std::array<const char*, 6> kPalette = {
    "#fde2b9", "#c6e2ff", "#d5f5d5", "#f5d5e5", "#e5d5f5", "#f5f5c6",
};

}  // namespace

void write_dot(std::ostream& os, const Graph& graph, const DotOptions& options) {
  os << "digraph " << options.graph_name << " {\n";
  os << "  node [shape=box, fontname=\"monospace\"];\n";
  for (NodeId v = 0; v < graph.num_nodes(); ++v) {
    const Node& n = graph.node(v);
    os << "  n" << v << " [label=\"";
    if (n.is_ise) {
      os << "ISE(" << n.ise.member_labels.size() << " ops, "
         << n.ise.latency_cycles << "c)";
    } else {
      os << isa::mnemonic(n.opcode);
      if (!n.label.empty()) os << "\\n" << n.label;
    }
    if (options.show_io) {
      if (graph.extern_inputs(v) > 0) os << "\\nin:" << graph.extern_inputs(v);
      if (graph.live_out(v)) os << "\\nlive-out";
    }
    os << "\"";
    for (std::size_t h = 0; h < options.highlights.size(); ++h) {
      if (options.highlights[h].contains(v)) {
        os << ", style=filled, fillcolor=\"" << kPalette[h % kPalette.size()]
           << "\"";
        break;
      }
    }
    if (n.is_ise && options.highlights.empty())
      os << ", style=filled, fillcolor=\"#ffd4d4\"";
    os << "];\n";
  }
  for (NodeId v = 0; v < graph.num_nodes(); ++v) {
    for (const NodeId s : graph.succs(v)) {
      os << "  n" << v << " -> n" << s << ";\n";
    }
  }
  os << "}\n";
}

std::string to_dot(const Graph& graph, const DotOptions& options) {
  std::ostringstream ss;
  write_dot(ss, graph, options);
  return ss.str();
}

}  // namespace isex::dfg
