// Graphviz DOT rendering of DFGs, with optional highlighting of ISE
// candidates — handy when inspecting what the explorer picked.
#pragma once

#include <iosfwd>
#include <span>
#include <string>

#include "dfg/graph.hpp"
#include "dfg/node_set.hpp"

namespace isex::dfg {

struct DotOptions {
  std::string graph_name = "dfg";
  /// Node sets to shade; each gets a distinct fill colour (cycled).
  std::span<const NodeSet> highlights;
  /// Render extern-input counts / live-out markers.
  bool show_io = true;
};

/// Writes the graph in DOT syntax to `os`.
void write_dot(std::ostream& os, const Graph& graph, const DotOptions& options = {});

/// Convenience: DOT text as a string.
std::string to_dot(const Graph& graph, const DotOptions& options = {});

}  // namespace isex::dfg
