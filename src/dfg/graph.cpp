#include "dfg/graph.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace isex::dfg {

NodeId Graph::add_node(isa::Opcode opcode, std::string label) {
  const auto id = static_cast<NodeId>(nodes_.size());
  nodes_.push_back(Node{opcode, std::move(label), false, {}});
  succs_.emplace_back();
  preds_.emplace_back();
  extern_input_ids_.emplace_back();
  live_out_.push_back(false);
  return id;
}

NodeId Graph::add_ise_node(IseInfo info, std::string label) {
  const auto id = add_node(isa::Opcode::kNop, std::move(label));
  nodes_[id].is_ise = true;
  nodes_[id].ise = std::move(info);
  return id;
}

void Graph::add_edge(NodeId from, NodeId to) {
  ISEX_ASSERT(from < nodes_.size() && to < nodes_.size());
  ISEX_ASSERT_MSG(from != to, "self-edges are not allowed in a DFG");
  if (has_edge(from, to)) return;
  succs_[from].push_back(to);
  preds_[to].push_back(from);
  ++num_edges_;
}

const Node& Graph::node(NodeId id) const {
  ISEX_ASSERT(id < nodes_.size());
  return nodes_[id];
}

Node& Graph::node(NodeId id) {
  ISEX_ASSERT(id < nodes_.size());
  return nodes_[id];
}

std::span<const NodeId> Graph::succs(NodeId id) const {
  ISEX_ASSERT(id < nodes_.size());
  return succs_[id];
}

std::span<const NodeId> Graph::preds(NodeId id) const {
  ISEX_ASSERT(id < nodes_.size());
  return preds_[id];
}

void Graph::set_extern_inputs(NodeId id, int count) {
  ISEX_ASSERT(id < nodes_.size());
  ISEX_ASSERT(count >= 0);
  std::vector<int> ids(static_cast<std::size_t>(count));
  for (int& v : ids) v = next_unique_extern_id_++;
  extern_input_ids_[id] = std::move(ids);
}

void Graph::set_extern_input_ids(NodeId id, std::vector<int> value_ids) {
  ISEX_ASSERT(id < nodes_.size());
  extern_input_ids_[id] = std::move(value_ids);
  for (const int v : extern_input_ids_[id])
    next_unique_extern_id_ = std::max(next_unique_extern_id_, v + 1);
}

int Graph::extern_inputs(NodeId id) const {
  ISEX_ASSERT(id < nodes_.size());
  return static_cast<int>(extern_input_ids_[id].size());
}

std::span<const int> Graph::extern_input_ids(NodeId id) const {
  ISEX_ASSERT(id < nodes_.size());
  return extern_input_ids_[id];
}

void Graph::set_live_out(NodeId id, bool live) {
  ISEX_ASSERT(id < nodes_.size());
  live_out_[id] = live;
}

bool Graph::live_out(NodeId id) const {
  ISEX_ASSERT(id < nodes_.size());
  return live_out_[id];
}

bool Graph::has_edge(NodeId from, NodeId to) const {
  ISEX_ASSERT(from < nodes_.size() && to < nodes_.size());
  const auto& s = succs_[from];
  return std::find(s.begin(), s.end(), to) != s.end();
}

std::vector<NodeId> Graph::topological_order() const {
  std::vector<int> in_degree(nodes_.size(), 0);
  for (NodeId v = 0; v < nodes_.size(); ++v)
    in_degree[v] = static_cast<int>(preds_[v].size());

  std::vector<NodeId> ready;
  for (NodeId v = 0; v < nodes_.size(); ++v)
    if (in_degree[v] == 0) ready.push_back(v);

  std::vector<NodeId> order;
  order.reserve(nodes_.size());
  while (!ready.empty()) {
    const NodeId v = ready.back();
    ready.pop_back();
    order.push_back(v);
    for (const NodeId s : succs_[v]) {
      if (--in_degree[s] == 0) ready.push_back(s);
    }
  }
  ISEX_ASSERT_MSG(order.size() == nodes_.size(), "graph contains a cycle");
  return order;
}

bool Graph::is_acyclic() const {
  std::vector<int> in_degree(nodes_.size(), 0);
  for (NodeId v = 0; v < nodes_.size(); ++v)
    in_degree[v] = static_cast<int>(preds_[v].size());
  std::vector<NodeId> ready;
  for (NodeId v = 0; v < nodes_.size(); ++v)
    if (in_degree[v] == 0) ready.push_back(v);
  std::size_t seen = 0;
  while (!ready.empty()) {
    const NodeId v = ready.back();
    ready.pop_back();
    ++seen;
    for (const NodeId s : succs_[v])
      if (--in_degree[s] == 0) ready.push_back(s);
  }
  return seen == nodes_.size();
}

NodeSet Graph::all_nodes() const {
  NodeSet s(nodes_.size());
  for (NodeId v = 0; v < nodes_.size(); ++v) s.insert(v);
  return s;
}

Graph Graph::collapse(const NodeSet& members, IseInfo info,
                      std::vector<NodeId>* old_to_new) const {
  ISEX_ASSERT(members.universe() == nodes_.size());
  ISEX_ASSERT_MSG(!members.empty(), "cannot collapse an empty member set");

  Graph reduced;
  std::vector<NodeId> remap(nodes_.size(), kInvalidNode);

  // Record member labels for reporting before they disappear.
  members.for_each([&](NodeId m) {
    const Node& n = nodes_[m];
    info.member_labels.push_back(n.label.empty()
                                     ? std::string(isa::mnemonic(n.opcode))
                                     : n.label);
  });

  // Keep surviving nodes in original order; splice in the supernode at the
  // position of the first member so schedules stay intuitive.
  NodeId super = kInvalidNode;
  for (NodeId v = 0; v < nodes_.size(); ++v) {
    if (members.contains(v)) {
      if (super == kInvalidNode)
        super = reduced.add_ise_node(info, "ISE");
      remap[v] = super;
    } else {
      const Node& n = nodes_[v];
      const NodeId nv = n.is_ise ? reduced.add_ise_node(n.ise, n.label)
                                 : reduced.add_node(n.opcode, n.label);
      reduced.node(nv).mem_latency = n.mem_latency;
      remap[v] = nv;
    }
  }

  // Rebuild edges, dropping intra-member edges (they dedupe to nothing) and
  // merging parallel edges at the supernode boundary.
  for (NodeId u = 0; u < nodes_.size(); ++u) {
    for (const NodeId v : succs_[u]) {
      const NodeId nu = remap[u];
      const NodeId nv = remap[v];
      if (nu == nv) continue;  // edge internal to the ISE
      reduced.add_edge(nu, nv);
    }
  }

  // Aggregate extern value ids (deduplicated) and live-out flags.
  std::vector<int> super_extern;
  bool super_live_out = false;
  for (NodeId v = 0; v < nodes_.size(); ++v) {
    if (members.contains(v)) {
      for (const int value_id : extern_input_ids_[v]) {
        if (std::find(super_extern.begin(), super_extern.end(), value_id) ==
            super_extern.end())
          super_extern.push_back(value_id);
      }
      super_live_out = super_live_out || live_out_[v];
    } else {
      reduced.set_extern_input_ids(remap[v],
                                   std::vector<int>(extern_input_ids_[v]));
      reduced.set_live_out(remap[v], live_out_[v]);
    }
  }
  reduced.set_extern_input_ids(super, std::move(super_extern));
  reduced.set_live_out(super, super_live_out);

  ISEX_ASSERT_MSG(reduced.is_acyclic(),
                  "collapsing a non-convex member set created a cycle");
  if (old_to_new != nullptr) *old_to_new = std::move(remap);
  return reduced;
}

}  // namespace isex::dfg
