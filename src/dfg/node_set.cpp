#include "dfg/node_set.hpp"

#include <bit>

#include "util/assert.hpp"

namespace isex::dfg {

void NodeSet::resize(std::size_t universe) {
  universe_ = universe;
  words_.assign((universe + 63) / 64, 0);
}

void NodeSet::insert(NodeId id) {
  ISEX_ASSERT(id < universe_);
  words_[id / 64] |= (1ULL << (id % 64));
}

void NodeSet::erase(NodeId id) {
  ISEX_ASSERT(id < universe_);
  words_[id / 64] &= ~(1ULL << (id % 64));
}

bool NodeSet::contains(NodeId id) const {
  if (id >= universe_) return false;
  return (words_[id / 64] >> (id % 64)) & 1ULL;
}

void NodeSet::clear() {
  for (auto& w : words_) w = 0;
}

bool NodeSet::test_and_set(NodeId id) {
  ISEX_ASSERT(id < universe_);
  std::uint64_t& word = words_[id / 64];
  const std::uint64_t bit = 1ULL << (id % 64);
  if ((word & bit) != 0) return false;
  word |= bit;
  return true;
}

bool NodeSet::insert_all(const NodeSet& other) {
  ISEX_ASSERT(universe_ == other.universe_);
  bool changed = false;
  for (std::size_t i = 0; i < words_.size(); ++i) {
    const std::uint64_t merged = words_[i] | other.words_[i];
    changed = changed || merged != words_[i];
    words_[i] = merged;
  }
  return changed;
}

std::size_t NodeSet::count() const {
  std::size_t total = 0;
  for (const auto w : words_) total += static_cast<std::size_t>(std::popcount(w));
  return total;
}

bool NodeSet::empty() const {
  for (const auto w : words_)
    if (w != 0) return false;
  return true;
}

NodeSet& NodeSet::operator|=(const NodeSet& other) {
  ISEX_ASSERT(universe_ == other.universe_);
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] |= other.words_[i];
  return *this;
}

NodeSet& NodeSet::operator&=(const NodeSet& other) {
  ISEX_ASSERT(universe_ == other.universe_);
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] &= other.words_[i];
  return *this;
}

NodeSet& NodeSet::operator-=(const NodeSet& other) {
  ISEX_ASSERT(universe_ == other.universe_);
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] &= ~other.words_[i];
  return *this;
}

bool NodeSet::intersects(const NodeSet& other) const {
  ISEX_ASSERT(universe_ == other.universe_);
  for (std::size_t i = 0; i < words_.size(); ++i) {
    if ((words_[i] & other.words_[i]) != 0) return true;
  }
  return false;
}

bool NodeSet::is_subset_of(const NodeSet& other) const {
  ISEX_ASSERT(universe_ == other.universe_);
  for (std::size_t i = 0; i < words_.size(); ++i) {
    if ((words_[i] & ~other.words_[i]) != 0) return false;
  }
  return true;
}

std::vector<NodeId> NodeSet::to_vector() const {
  std::vector<NodeId> out;
  out.reserve(count());
  for_each([&](NodeId id) { out.push_back(id); });
  return out;
}

NodeSet NodeSet::of(std::size_t universe, std::initializer_list<NodeId> members) {
  NodeSet s(universe);
  for (const NodeId m : members) s.insert(m);
  return s;
}

int NodeSet::count_trailing_zeros(std::uint64_t v) {
  return std::countr_zero(v);
}

}  // namespace isex::dfg
