// G+ — a DFG annotated with per-operation IO tables (Fig 4.1.1).
//
// GPlus borrows the graph (it must outlive the GPlus) and owns one IoTable
// per node.  ISE supernodes (from earlier rounds) and ineligible operations
// get a software-only table, so the explorer can treat every node uniformly.
#pragma once

#include <vector>

#include "dfg/graph.hpp"
#include "hwlib/hw_library.hpp"
#include "hwlib/impl_option.hpp"

namespace isex::hw {

class GPlus {
 public:
  GPlus(const dfg::Graph& graph, const HwLibrary& library);

  const dfg::Graph& graph() const { return *graph_; }
  const IoTable& table(dfg::NodeId id) const;

  /// True when node `id` has at least one hardware option, i.e. it may be
  /// drawn into an ISE.
  bool hardware_capable(dfg::NodeId id) const { return table(id).has_hardware(); }

  /// Software execution cycles of node `id` (its first software option;
  /// ISE supernodes report their committed ASFU latency).
  double software_cycles(dfg::NodeId id) const;

 private:
  const dfg::Graph* graph_;
  std::vector<IoTable> tables_;
};

}  // namespace isex::hw
