// Implementation options and the per-operation IO table (§4.1).
//
// Every operation can execute either in *software* — a regular pipeline
// functional unit, one cycle in the paper's machine model — or in *hardware*
// — a combinational datapath cell inside an ASFU, with a synthesized delay
// (ns) and area (µm²).  An operation's alternatives are listed in its
// implementation-option (IO) table; annotating every DFG node with one turns
// G into G+ (Fig 4.1.1).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace isex::hw {

enum class ImplKind : std::uint8_t { kSoftware, kHardware };

struct ImplOption {
  ImplKind kind = ImplKind::kSoftware;
  /// Display name, e.g. "SW-1", "HW-2".
  std::string name;
  /// Software: delay in cycles.  Hardware: combinational delay in ns.
  double delay = 1.0;
  /// Extra silicon area in µm² (software options cost none).
  double area = 0.0;
};

/// Per-operation list of implementation options.  Software options come
/// first, then hardware options; the explorer indexes options by position.
class IoTable {
 public:
  IoTable() = default;
  explicit IoTable(std::vector<ImplOption> options);

  std::size_t size() const { return options_.size(); }
  const ImplOption& option(std::size_t index) const;

  /// Index of the first software option; every IoTable has at least one.
  std::size_t first_software() const;
  std::size_t num_software() const { return num_software_; }
  std::size_t num_hardware() const { return options_.size() - num_software_; }
  bool has_hardware() const { return num_hardware() > 0; }

  bool is_hardware(std::size_t index) const {
    return option(index).kind == ImplKind::kHardware;
  }

  const std::vector<ImplOption>& options() const { return options_; }

 private:
  std::vector<ImplOption> options_;
  std::size_t num_software_ = 0;
};

/// Core clock: the paper's machine runs at 100 MHz in 0.13 µm, so one cycle
/// is 10 ns, and every PISA instruction takes one cycle (§5.1).
struct ClockSpec {
  double period_ns = 10.0;

  /// Cycles needed to evaluate a combinational depth (≥ 1).
  int cycles_for(double depth_ns) const;
};

}  // namespace isex::hw
