#include "hwlib/asfu.hpp"

#include "util/assert.hpp"

namespace isex::hw {

AsfuEvaluation evaluate_asfu(const GPlus& gplus, const dfg::NodeSet& members,
                             std::span<const int> chosen_option,
                             const ClockSpec& clock) {
  const dfg::Graph& graph = gplus.graph();
  ISEX_ASSERT(members.universe() == graph.num_nodes());
  ISEX_ASSERT(chosen_option.size() == graph.num_nodes());

  AsfuEvaluation eval;
  members.for_each([&](dfg::NodeId v) {
    const IoTable& table = gplus.table(v);
    const auto idx = static_cast<std::size_t>(chosen_option[v]);
    ISEX_ASSERT_MSG(table.is_hardware(idx),
                    "ISE member must use a hardware option");
    eval.area += table.option(idx).area;
  });

  eval.depth_ns = dfg::induced_critical_path(
      graph, members, [&](dfg::NodeId v) {
        return gplus.table(v).option(static_cast<std::size_t>(chosen_option[v]))
            .delay;
      });
  eval.latency_cycles = clock.cycles_for(eval.depth_ns);
  return eval;
}

}  // namespace isex::hw
