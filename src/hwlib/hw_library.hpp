// Hardware implementation library — the paper's Table 5.1.1.
//
// Maps each PISA opcode to its synthesized hardware options (0.13 µm CMOS,
// Synopsys Design Compiler / Chalmers arithmetic database numbers).  Opcodes
// without an entry (memory, branches, division) cannot join an ISE.
#pragma once

#include <span>
#include <vector>

#include "hwlib/impl_option.hpp"
#include "isa/opcode.hpp"

namespace isex::hw {

class HwLibrary {
 public:
  /// The exact Table 5.1.1 database.
  static HwLibrary paper_default();

  /// Replaces the hardware options of one opcode (for ablations/tests).
  void set_hardware_options(isa::Opcode op, std::vector<ImplOption> options);

  std::span<const ImplOption> hardware_options(isa::Opcode op) const;
  bool has_hardware(isa::Opcode op) const;

  /// Full IO table for an opcode: the canonical 1-cycle software option
  /// followed by the library's hardware options.
  IoTable make_io_table(isa::Opcode op) const;

 private:
  std::vector<std::vector<ImplOption>> by_opcode_ =
      std::vector<std::vector<ImplOption>>(isa::kOpcodeCount);
};

}  // namespace isex::hw
