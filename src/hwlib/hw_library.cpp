#include "hwlib/hw_library.hpp"

#include "util/assert.hpp"

namespace isex::hw {
namespace {

ImplOption hw(const char* name, double delay_ns, double area_um2) {
  return ImplOption{ImplKind::kHardware, name, delay_ns, area_um2};
}

}  // namespace

HwLibrary HwLibrary::paper_default() {
  using isa::Opcode;
  HwLibrary lib;

  // Table 5.1.1 — delay (ns) / area (µm²) per hardware option.  Opcode
  // families share datapath cells exactly as the table groups them.
  const std::vector<ImplOption> add_opts = {hw("HW-1", 4.04, 926.33),
                                            hw("HW-2", 2.12, 2075.35)};
  for (const Opcode op : {Opcode::kAdd, Opcode::kAddi, Opcode::kAddu, Opcode::kAddiu})
    lib.set_hardware_options(op, add_opts);

  const std::vector<ImplOption> sub_opts = {hw("HW-1", 4.04, 926.33),
                                            hw("HW-2", 2.14, 2049.41)};
  for (const Opcode op : {Opcode::kSub, Opcode::kSubu})
    lib.set_hardware_options(op, sub_opts);

  lib.set_hardware_options(Opcode::kMult, {hw("HW-1", 5.77, 84428.0)});
  lib.set_hardware_options(Opcode::kMultu, {hw("HW-1", 5.65, 79778.1)});

  const std::vector<ImplOption> and_opts = {hw("HW-1", 1.58, 214.31)};
  for (const Opcode op : {Opcode::kAnd, Opcode::kAndi})
    lib.set_hardware_options(op, and_opts);

  const std::vector<ImplOption> or_opts = {hw("HW-1", 1.85, 214.21)};
  for (const Opcode op : {Opcode::kOr, Opcode::kOri})
    lib.set_hardware_options(op, or_opts);

  lib.set_hardware_options(Opcode::kXor, {hw("HW-1", 4.17, 375.1)});
  lib.set_hardware_options(Opcode::kXori, {hw("HW-1", 2.01, 565.14)});
  lib.set_hardware_options(Opcode::kNor, {hw("HW-1", 2.00, 250.00)});

  const std::vector<ImplOption> slt_opts = {hw("HW-1", 2.64, 1144.0),
                                            hw("HW-2", 1.01, 2636.0)};
  for (const Opcode op :
       {Opcode::kSlt, Opcode::kSlti, Opcode::kSltu, Opcode::kSltiu})
    lib.set_hardware_options(op, slt_opts);

  const std::vector<ImplOption> shift_opts = {hw("HW-1", 3.00, 400.00)};
  for (const Opcode op : {Opcode::kSll, Opcode::kSllv, Opcode::kSrl,
                          Opcode::kSrlv, Opcode::kSra, Opcode::kSrav})
    lib.set_hardware_options(op, shift_opts);

  return lib;
}

void HwLibrary::set_hardware_options(isa::Opcode op,
                                     std::vector<ImplOption> options) {
  for (const ImplOption& o : options) {
    ISEX_ASSERT_MSG(o.kind == ImplKind::kHardware,
                    "HwLibrary stores hardware options only");
    ISEX_ASSERT(o.delay > 0.0 && o.area >= 0.0);
  }
  ISEX_ASSERT_MSG(options.empty() || isa::ise_eligible(op),
                  "memory/branch opcodes cannot have hardware options");
  by_opcode_[static_cast<std::size_t>(op)] = std::move(options);
}

std::span<const ImplOption> HwLibrary::hardware_options(isa::Opcode op) const {
  return by_opcode_[static_cast<std::size_t>(op)];
}

bool HwLibrary::has_hardware(isa::Opcode op) const {
  return !hardware_options(op).empty();
}

IoTable HwLibrary::make_io_table(isa::Opcode op) const {
  std::vector<ImplOption> options;
  options.push_back(ImplOption{ImplKind::kSoftware, "SW-1", 1.0, 0.0});
  const auto hw_opts = hardware_options(op);
  options.insert(options.end(), hw_opts.begin(), hw_opts.end());
  return IoTable(std::move(options));
}

}  // namespace isex::hw
