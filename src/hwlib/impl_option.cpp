#include "hwlib/impl_option.hpp"

#include <algorithm>
#include <cmath>

#include "util/assert.hpp"

namespace isex::hw {

IoTable::IoTable(std::vector<ImplOption> options) : options_(std::move(options)) {
  // Keep software options in front so option indices are stable and the
  // "first software" query is trivial.
  std::stable_partition(options_.begin(), options_.end(), [](const ImplOption& o) {
    return o.kind == ImplKind::kSoftware;
  });
  num_software_ = static_cast<std::size_t>(
      std::count_if(options_.begin(), options_.end(), [](const ImplOption& o) {
        return o.kind == ImplKind::kSoftware;
      }));
  ISEX_ASSERT_MSG(num_software_ >= 1,
                  "every operation needs at least one software option");
}

const ImplOption& IoTable::option(std::size_t index) const {
  ISEX_ASSERT(index < options_.size());
  return options_[index];
}

std::size_t IoTable::first_software() const {
  return 0;  // software options are partitioned to the front
}

int ClockSpec::cycles_for(double depth_ns) const {
  ISEX_ASSERT(period_ns > 0.0);
  if (depth_ns <= 0.0) return 1;
  return std::max(1, static_cast<int>(std::ceil(depth_ns / period_ns - 1e-9)));
}

}  // namespace isex::hw
