// ASFU (application-specific functional unit) evaluation.
//
// Given an ISE candidate — a node set plus a chosen hardware option per
// member — this computes the datapath's combinational depth (critical path
// through the members' cell delays), the resulting instruction latency in
// core cycles, and the silicon area (sum of member cells).
#pragma once

#include <span>

#include "dfg/analysis.hpp"
#include "dfg/graph.hpp"
#include "dfg/node_set.hpp"
#include "hwlib/gplus.hpp"

namespace isex::hw {

struct AsfuEvaluation {
  /// Longest combinational path through the candidate, ns.
  double depth_ns = 0.0;
  /// ⌈depth / clock period⌉, at least 1.
  int latency_cycles = 1;
  /// Σ member cell areas, µm².
  double area = 0.0;
};

/// Evaluates the candidate `members` of `gplus.graph()`.
/// `chosen_option[v]` gives the IO-table index each node currently uses; only
/// members are read and each member's chosen option must be hardware.
AsfuEvaluation evaluate_asfu(const GPlus& gplus, const dfg::NodeSet& members,
                             std::span<const int> chosen_option,
                             const ClockSpec& clock = {});

}  // namespace isex::hw
