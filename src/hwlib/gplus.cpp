#include "hwlib/gplus.hpp"

#include "util/assert.hpp"

namespace isex::hw {

GPlus::GPlus(const dfg::Graph& graph, const HwLibrary& library) : graph_(&graph) {
  tables_.reserve(graph.num_nodes());
  for (dfg::NodeId v = 0; v < graph.num_nodes(); ++v) {
    const dfg::Node& n = graph.node(v);
    if (n.is_ise) {
      // A committed ISE executes as one (possibly multi-cycle) instruction;
      // it cannot be re-absorbed during exploration (merging handles reuse).
      tables_.emplace_back(std::vector<ImplOption>{
          {ImplKind::kSoftware, "ISE", static_cast<double>(n.ise.latency_cycles),
           0.0}});
    } else if (isa::ise_eligible(n.opcode) && library.has_hardware(n.opcode)) {
      tables_.push_back(library.make_io_table(n.opcode));
    } else {
      // Memory ops annotated by the cache model charge their modeled latency
      // here too, so merit's software baseline and the critical path agree
      // with what the scheduler will charge.
      const double sw_cycles =
          n.mem_latency > 0 ? static_cast<double>(n.mem_latency) : 1.0;
      tables_.emplace_back(
          std::vector<ImplOption>{{ImplKind::kSoftware, "SW-1", sw_cycles, 0.0}});
    }
  }
}

const IoTable& GPlus::table(dfg::NodeId id) const {
  ISEX_ASSERT(id < tables_.size());
  return tables_[id];
}

double GPlus::software_cycles(dfg::NodeId id) const {
  return table(id).option(table(id).first_software()).delay;
}

}  // namespace isex::hw
