#include "baseline/exact_enumerator.hpp"

#include <algorithm>
#include <limits>
#include <unordered_set>

#include "dfg/analysis.hpp"
#include "sched/list_scheduler.hpp"
#include "util/assert.hpp"

namespace isex::baseline {
namespace {

/// Hash of a NodeSet's member list for deduplication.
struct SetHash {
  std::size_t operator()(const std::vector<dfg::NodeId>& v) const {
    std::size_t h = 1469598103934665603ULL;
    for (const dfg::NodeId id : v) {
      h ^= id;
      h *= 1099511628211ULL;
    }
    return h;
  }
};

/// Fastest-fit option policy: per member pick the option with minimal
/// delay; when two options share the candidate's cycle count the smaller
/// one wins at the end (we compare whole-candidate evaluations).
std::vector<int> pick_options(const hw::GPlus& gplus,
                              const dfg::NodeSet& members, bool fastest) {
  std::vector<int> option(gplus.graph().num_nodes(), 0);
  members.for_each([&](dfg::NodeId v) {
    const hw::IoTable& table = gplus.table(v);
    int best = -1;
    for (std::size_t o = 0; o < table.size(); ++o) {
      if (!table.is_hardware(o)) continue;
      if (best < 0) {
        best = static_cast<int>(o);
        continue;
      }
      const auto& cand = table.option(o);
      const auto& cur = table.option(static_cast<std::size_t>(best));
      const bool better = fastest ? (cand.delay < cur.delay ||
                                     (cand.delay == cur.delay && cand.area < cur.area))
                                  : (cand.area < cur.area ||
                                     (cand.area == cur.area && cand.delay < cur.delay));
      if (better) best = static_cast<int>(o);
    }
    ISEX_ASSERT(best >= 0);
    option[v] = best;
  });
  return option;
}

}  // namespace

EnumerationResult enumerate_candidates(const hw::GPlus& gplus,
                                       const isa::IsaFormat& format,
                                       const ExactParams& params,
                                       hw::ClockSpec clock) {
  const dfg::Graph& graph = gplus.graph();
  const std::size_t n = graph.num_nodes();
  EnumerationResult result;
  if (n == 0) return result;

  const dfg::Reachability reach(graph);

  std::unordered_set<std::vector<dfg::NodeId>, SetHash> seen;
  std::vector<dfg::NodeSet> frontier;

  auto try_emit = [&](const dfg::NodeSet& members) {
    if (members.count() < 2) return;
    const int in_count = dfg::count_inputs(graph, members);
    const int out_count = dfg::count_outputs(graph, members);
    if (in_count > format.max_ise_inputs() ||
        out_count > format.max_ise_outputs())
      return;
    if (!dfg::is_convex(graph, members, reach)) return;

    // Evaluate both option policies; keep the better ASFU.
    EnumeratedCandidate cand;
    cand.members = members;
    cand.option = pick_options(gplus, members, /*fastest=*/true);
    cand.eval = hw::evaluate_asfu(gplus, members, cand.option, clock);
    const std::vector<int> small = pick_options(gplus, members, false);
    const hw::AsfuEvaluation small_eval =
        hw::evaluate_asfu(gplus, members, small, clock);
    if (small_eval.latency_cycles <= cand.eval.latency_cycles &&
        small_eval.area < cand.eval.area) {
      cand.option = small;
      cand.eval = small_eval;
    }
    if (format.max_ise_latency_cycles > 0 &&
        cand.eval.latency_cycles > format.max_ise_latency_cycles)
      return;
    cand.in_count = in_count;
    cand.out_count = out_count;
    result.candidates.push_back(std::move(cand));
  };

  // Seed with every hardware-capable node.
  for (dfg::NodeId v = 0; v < n; ++v) {
    if (!gplus.hardware_capable(v)) continue;
    dfg::NodeSet s(n);
    s.insert(v);
    if (seen.insert(s.to_vector()).second) {
      frontier.push_back(std::move(s));
      ++result.subgraphs_visited;
    }
  }

  // Breadth-first growth over hardware-capable neighbours.
  std::size_t cursor = 0;
  while (cursor < frontier.size()) {
    if (result.subgraphs_visited >= params.max_subgraphs) {
      result.truncated = true;
      break;
    }
    const dfg::NodeSet current = frontier[cursor++];
    try_emit(current);
    if (current.count() >= params.max_size) continue;

    // Candidate extensions: neighbours of members.
    dfg::NodeSet neighbours(n);
    current.for_each([&](dfg::NodeId v) {
      for (const dfg::NodeId u : graph.succs(v)) neighbours.insert(u);
      for (const dfg::NodeId u : graph.preds(v)) neighbours.insert(u);
    });
    neighbours -= current;
    neighbours.for_each([&](dfg::NodeId u) {
      if (!gplus.hardware_capable(u)) return;
      if (result.subgraphs_visited >= params.max_subgraphs) return;
      dfg::NodeSet grown = current;
      grown.insert(u);
      auto key = grown.to_vector();
      if (seen.insert(std::move(key)).second) {
        frontier.push_back(std::move(grown));
        ++result.subgraphs_visited;
      }
    });
  }
  if (result.subgraphs_visited >= params.max_subgraphs) result.truncated = true;
  return result;
}

ExactExplorer::ExactExplorer(sched::MachineConfig machine,
                             isa::IsaFormat format,
                             const hw::HwLibrary& library, ExactParams params,
                             hw::ClockSpec clock)
    : machine_(machine),
      format_(format),
      library_(library),
      params_(params),
      clock_(clock) {}

core::ExplorationResult ExactExplorer::explore(const dfg::Graph& block) const {
  core::ExplorationResult result;
  const sched::ListScheduler scheduler(machine_);
  if (block.empty()) return result;

  dfg::Graph current = block;
  std::vector<dfg::NodeSet> origin(block.num_nodes());
  for (dfg::NodeId v = 0; v < block.num_nodes(); ++v) {
    origin[v].resize(block.num_nodes());
    origin[v].insert(v);
  }
  result.base_cycles = scheduler.cycles(current);
  int current_cycles = result.base_cycles;

  for (;;) {
    const hw::GPlus gplus(current, library_);
    const EnumerationResult enumerated =
        enumerate_candidates(gplus, format_, params_, clock_);
    ++result.rounds;
    result.total_iterations +=
        static_cast<int>(enumerated.subgraphs_visited);

    int best_gain = 0;
    double best_area = std::numeric_limits<double>::max();
    const EnumeratedCandidate* best = nullptr;
    int best_cycles_after = current_cycles;
    for (const EnumeratedCandidate& cand : enumerated.candidates) {
      dfg::IseInfo info;
      info.latency_cycles = cand.eval.latency_cycles;
      info.area = cand.eval.area;
      info.num_inputs = cand.in_count;
      info.num_outputs = cand.out_count;
      const dfg::Graph collapsed = current.collapse(cand.members, info);
      const int cycles_after = scheduler.cycles(collapsed);
      const int gain = current_cycles - cycles_after;
      if (gain > best_gain ||
          (gain == best_gain && gain > 0 && cand.eval.area < best_area)) {
        best_gain = gain;
        best_area = cand.eval.area;
        best = &cand;
        best_cycles_after = cycles_after;
      }
    }
    if (best == nullptr || best_gain <= 0) break;

    core::ExploredIse record;
    record.original_nodes.resize(block.num_nodes());
    best->members.for_each([&](dfg::NodeId m) {
      record.original_nodes |= origin[m];
      const dfg::Node& n = current.node(m);
      record.member_labels.push_back(
          n.label.empty() ? std::string(isa::mnemonic(n.opcode)) : n.label);
    });
    record.eval = best->eval;
    record.in_count = best->in_count;
    record.out_count = best->out_count;
    record.gain_cycles = best_gain;
    result.ises.push_back(std::move(record));

    dfg::IseInfo info;
    info.latency_cycles = best->eval.latency_cycles;
    info.area = best->eval.area;
    info.num_inputs = best->in_count;
    info.num_outputs = best->out_count;
    std::vector<dfg::NodeId> old_to_new;
    dfg::Graph next = current.collapse(best->members, info, &old_to_new);
    std::vector<dfg::NodeSet> next_origin(next.num_nodes());
    for (auto& s : next_origin) s.resize(block.num_nodes());
    for (dfg::NodeId v = 0; v < current.num_nodes(); ++v)
      next_origin[old_to_new[v]] |= origin[v];
    current = std::move(next);
    origin = std::move(next_origin);
    current_cycles = best_cycles_after;
  }

  result.final_cycles = current_cycles;
  return result;
}

}  // namespace isex::baseline
