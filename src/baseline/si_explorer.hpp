// Single-issue (legality-only) ISE exploration — the prior-art baseline the
// paper compares against ("SI", Wu et al., HiPEAC 2007 [8]).
//
// Same ACO machinery, two deliberate blind spots (§1.4):
//   * the internal machine model is single-issue, so execution time is
//     effectively sequential and *every* operation looks critical — the
//     explorer never asks where an operation sits in a wide schedule;
//   * merit ignores operation location entirely (locality_aware = false):
//     cycle saving is measured against the sequential software time, and the
//     Max_AEC area-saving branch for off-critical-path candidates never
//     fires.
// Candidates found this way are later deployed on the multiple-issue target
// by the design flow, exactly like the paper's "SI" bars.
#pragma once

#include "core/mi_explorer.hpp"

namespace isex::baseline {

class SingleIssueExplorer {
 public:
  SingleIssueExplorer(isa::IsaFormat format, const hw::HwLibrary& library,
                      core::ExplorerParams params = {},
                      hw::ClockSpec clock = {});

  core::ExplorationResult explore(const dfg::Graph& block, Rng& rng) const {
    return inner_.explore(block, rng);
  }

  /// Best-of repeats; inherits the runtime-parallel fan-out (and its
  /// bit-exact determinism contract) from MultiIssueExplorer.
  core::ExplorationResult explore_best_of(const dfg::Graph& block, int repeats,
                                          Rng& rng) const {
    return inner_.explore_best_of(block, repeats, rng);
  }

 private:
  core::MultiIssueExplorer inner_;
};

}  // namespace isex::baseline
