// Exhaustive ISE candidate enumeration — the Pozzi-style exact baseline
// (§2.1, reference [4]).
//
// Enumerates every *connected, convex, port-legal* subgraph of a DFG up to
// a size cap by seeded growth with canonical deduplication.  §2.1 explains
// why this cannot scale (2^N patterns at N = 100); the enumerator therefore
// carries hard caps and exists for two purposes: a quality yardstick for
// the ACO explorer on small blocks (tests assert the heuristic reaches the
// exhaustive result) and the complexity-crossover benchmark.
#pragma once

#include <cstddef>
#include <vector>

#include "core/mi_explorer.hpp"
#include "dfg/node_set.hpp"
#include "hwlib/asfu.hpp"
#include "hwlib/gplus.hpp"
#include "isa/register_file.hpp"

namespace isex::baseline {

struct ExactParams {
  /// Largest candidate size enumerated.
  std::size_t max_size = 16;
  /// Safety cap on distinct subgraphs visited (enumeration aborts beyond).
  std::size_t max_subgraphs = 200000;
};

struct EnumeratedCandidate {
  dfg::NodeSet members;
  /// Chosen hardware option per node (fastest-fit policy, see .cpp).
  std::vector<int> option;
  hw::AsfuEvaluation eval;
  int in_count = 0;
  int out_count = 0;
};

struct EnumerationResult {
  std::vector<EnumeratedCandidate> candidates;
  /// Distinct connected subgraphs visited (legal or not).
  std::size_t subgraphs_visited = 0;
  /// True when max_subgraphs stopped the walk early.
  bool truncated = false;
};

/// Enumerates all legal candidates of `gplus.graph()`.
EnumerationResult enumerate_candidates(const hw::GPlus& gplus,
                                       const isa::IsaFormat& format,
                                       const ExactParams& params = {},
                                       hw::ClockSpec clock = {});

/// Exact exploration: the MI round loop with the exhaustive candidate set —
/// each round collapses the candidate whose collapse most shortens the
/// scheduled block (ties: least area) until no candidate gains a cycle.
class ExactExplorer {
 public:
  ExactExplorer(sched::MachineConfig machine, isa::IsaFormat format,
                const hw::HwLibrary& library, ExactParams params = {},
                hw::ClockSpec clock = {});

  core::ExplorationResult explore(const dfg::Graph& block) const;

 private:
  sched::MachineConfig machine_;
  isa::IsaFormat format_;
  hw::HwLibrary library_;
  ExactParams params_;
  hw::ClockSpec clock_;
};

}  // namespace isex::baseline
