#include "baseline/si_explorer.hpp"

namespace isex::baseline {
namespace {

core::ExplorerParams legality_only(core::ExplorerParams params) {
  params.locality_aware = false;
  return params;
}

}  // namespace

SingleIssueExplorer::SingleIssueExplorer(isa::IsaFormat format,
                                         const hw::HwLibrary& library,
                                         core::ExplorerParams params,
                                         hw::ClockSpec clock)
    : inner_(sched::MachineConfig::make(1, format.reg_file), format, library,
             legality_only(params), clock) {}

}  // namespace isex::baseline
