#include "bench_suite/extended.hpp"

#include <stdexcept>

#include "isa/tac_parser.hpp"
#include "util/assert.hpp"

namespace isex::bench_suite {
namespace {

// ----------------------------------------------------------------- AES ----
// GF(2^8) xtime + Russian-peasant multiply step, the MixColumns workhorse.
constexpr std::string_view kAesO3 = R"(
  # two unrolled gf-multiply steps: (a, b, acc) -> (a2, b2, acc2)
  hi0 = srl a, 7
  m0 = subu 0, hi0
  red0 = andi m0, 27
  sh0 = sll a, 1
  shm0 = andi sh0, 255
  ax = xor shm0, red0
  lb0 = andi b, 1
  s0 = subu 0, lb0
  t0 = and a, s0
  acc1 = xor acc, t0
  b1 = srl b, 1
  hi1 = srl ax, 7
  m1 = subu 0, hi1
  red1 = andi m1, 27
  sh1 = sll ax, 1
  shm1 = andi sh1, 255
  a2 = xor shm1, red1
  lb1 = andi b1, 1
  s1 = subu 0, lb1
  t1 = and ax, s1
  acc2 = xor acc1, t1
  b2 = srl b1, 1
  live_out a2, b2, acc2
)";

constexpr std::string_view kAesO0a = R"(
  hi0 = srl a, 7
  m0 = subu 0, hi0
  red0 = andi m0, 27
  sh0 = sll a, 1
  shm0 = andi sh0, 255
  a2 = xor shm0, red0
  live_out a2
)";

constexpr std::string_view kAesO0b = R"(
  lb0 = andi b, 1
  s0 = subu 0, lb0
  t0 = and a, s0
  acc2 = xor acc, t0
  b2 = srl b, 1
  live_out acc2, b2
)";

// State column load/store around the round (cold relative to gf arithmetic).
constexpr std::string_view kAesLoad = R"(
  p0 = addu state, col
  v0 = lbu [p0]
  p1 = addiu p0, 4
  v1 = lbu [p1]
  p2 = addiu p1, 4
  v2 = lbu [p2]
  p3 = addiu p2, 4
  v3 = lbu [p3]
  live_out v0, v1, v2, v3
)";

// -------------------------------------------------------------- SHA-256 ----
// Message schedule: w16 = sigma1(w2) + w7 + sigma0(w15) + w16old.
constexpr std::string_view kShaO3 = R"(
  r7a = srl w15, 7
  r7b = sll w15, 25
  r7 = or r7a, r7b
  r18a = srl w15, 18
  r18b = sll w15, 14
  r18 = or r18a, r18b
  s3 = srl w15, 3
  x0 = xor r7, r18
  sig0 = xor x0, s3
  r17a = srl w2, 17
  r17b = sll w2, 15
  r17 = or r17a, r17b
  r19a = srl w2, 19
  r19b = sll w2, 13
  r19 = or r19a, r19b
  s10 = srl w2, 10
  x1 = xor r17, r19
  sig1 = xor x1, s10
  a0 = addu w16old, sig0
  a1 = addu a0, w7
  w16 = addu a1, sig1
  live_out w16
)";

constexpr std::string_view kShaO0a = R"(
  r7a = srl w15, 7
  r7b = sll w15, 25
  r7 = or r7a, r7b
  r18a = srl w15, 18
  r18b = sll w15, 14
  r18 = or r18a, r18b
  s3 = srl w15, 3
  x0 = xor r7, r18
  sig0 = xor x0, s3
  live_out sig0
)";

constexpr std::string_view kShaO0b = R"(
  r17a = srl w2, 17
  r17b = sll w2, 15
  r17 = or r17a, r17b
  r19a = srl w2, 19
  r19b = sll w2, 13
  r19 = or r19a, r19b
  s10 = srl w2, 10
  x1 = xor r17, r19
  sig1 = xor x1, s10
  live_out sig1
)";

constexpr std::string_view kShaO0c = R"(
  a0 = addu w16old, sig0
  a1 = addu a0, w7
  w16 = addu a1, sig1
  live_out w16
)";

// Schedule-array maintenance (loads/stores, cold-ish).
constexpr std::string_view kShaStore = R"(
  off = sll i, 2
  p = addu wbase, off
  sw [p], w16
  i2 = addiu i, 1
  c = sltu i2, 64
  live_out i2, c
)";

// ---------------------------------------------------------------- Sobel ----
// 3x3 gradient: gx/gy accumulation plus |gx|+|gy| magnitude.
constexpr std::string_view kSobelO3 = R"(
  gx0 = subu p02, p00
  gx1 = sll p12, 1
  gx2 = sll p10, 1
  gx3 = subu gx1, gx2
  gx4 = addu gx0, gx3
  gx5 = subu p22, p20
  gx = addu gx4, gx5
  gy0 = subu p20, p00
  gy1 = sll p21, 1
  gy2 = sll p01, 1
  gy3 = subu gy1, gy2
  gy4 = addu gy0, gy3
  gy5 = subu p22, p02
  gy = addu gy4, gy5
  sx = sra gx, 31
  ax0 = xor gx, sx
  absx = subu ax0, sx
  sy = sra gy, 31
  ay0 = xor gy, sy
  absy = subu ay0, sy
  mag = addu absx, absy
  live_out mag
)";

constexpr std::string_view kSobelO0a = R"(
  gx0 = subu p02, p00
  gx1 = sll p12, 1
  gx2 = sll p10, 1
  gx3 = subu gx1, gx2
  gx4 = addu gx0, gx3
  gx5 = subu p22, p20
  gx = addu gx4, gx5
  live_out gx
)";

constexpr std::string_view kSobelO0b = R"(
  gy0 = subu p20, p00
  gy1 = sll p21, 1
  gy2 = sll p01, 1
  gy3 = subu gy1, gy2
  gy4 = addu gy0, gy3
  gy5 = subu p22, p02
  gy = addu gy4, gy5
  live_out gy
)";

constexpr std::string_view kSobelO0c = R"(
  sx = sra gx, 31
  ax0 = xor gx, sx
  absx = subu ax0, sx
  sy = sra gy, 31
  ay0 = xor gy, sy
  absy = subu ay0, sy
  mag = addu absx, absy
  live_out mag
)";

// Pixel fetch for the next window column.
constexpr std::string_view kSobelFetch = R"(
  p = addu row, x
  q0 = lbu [p]
  pr = addu p, stride
  q1 = lbu [pr]
  pr2 = addu pr, stride
  q2 = lbu [pr2]
  x2 = addiu x, 1
  c = sltu x2, width
  live_out q0, q1, q2, x2, c
)";

}  // namespace

std::vector<ExtraBenchmark> all_extra_benchmarks() {
  return {ExtraBenchmark::kAes, ExtraBenchmark::kSha256, ExtraBenchmark::kSobel};
}

std::string_view name(ExtraBenchmark benchmark) {
  switch (benchmark) {
    case ExtraBenchmark::kAes: return "aes";
    case ExtraBenchmark::kSha256: return "sha256";
    case ExtraBenchmark::kSobel: return "sobel";
  }
  return "?";
}

std::vector<KernelBlockDef> extra_kernel_blocks(ExtraBenchmark benchmark,
                                                OptLevel level) {
  std::vector<KernelBlockDef> defs;
  switch (benchmark) {
    case ExtraBenchmark::kAes: {
      constexpr std::uint64_t kSteps = 8 * 16 * 4096;
      if (level == OptLevel::kO0) {
        defs.push_back({"aes_xtime", kAesO0a, kSteps});
        defs.push_back({"aes_accum", kAesO0b, kSteps});
        defs.push_back({"aes_load", kAesLoad, kSteps / 8});
      } else {
        defs.push_back({"aes_gfmul_x2", kAesO3, kSteps / 2});
        defs.push_back({"aes_load", kAesLoad, kSteps / 8});
      }
      break;
    }
    case ExtraBenchmark::kSha256: {
      constexpr std::uint64_t kWords = 48 * 16384;
      if (level == OptLevel::kO0) {
        defs.push_back({"sha_sigma0", kShaO0a, kWords});
        defs.push_back({"sha_sigma1", kShaO0b, kWords});
        defs.push_back({"sha_sum", kShaO0c, kWords});
        defs.push_back({"sha_store", kShaStore, kWords});
      } else {
        defs.push_back({"sha_schedule", kShaO3, kWords});
        defs.push_back({"sha_store", kShaStore, kWords});
      }
      break;
    }
    case ExtraBenchmark::kSobel: {
      constexpr std::uint64_t kPixels = 640 * 480;
      if (level == OptLevel::kO0) {
        defs.push_back({"sobel_gx", kSobelO0a, kPixels});
        defs.push_back({"sobel_gy", kSobelO0b, kPixels});
        defs.push_back({"sobel_mag", kSobelO0c, kPixels});
        defs.push_back({"sobel_fetch", kSobelFetch, kPixels});
      } else {
        defs.push_back({"sobel_pixel", kSobelO3, kPixels});
        defs.push_back({"sobel_fetch", kSobelFetch, kPixels});
      }
      break;
    }
  }
  return defs;
}

std::string_view extra_kernel_source(ExtraBenchmark benchmark, OptLevel level,
                                     std::string_view block_name) {
  for (const KernelBlockDef& def : extra_kernel_blocks(benchmark, level)) {
    if (def.name == block_name) return def.tac;
  }
  throw std::out_of_range("no extra kernel block named '" +
                          std::string(block_name) + "'");
}

flow::ProfiledProgram make_extra_program(ExtraBenchmark benchmark,
                                         OptLevel level) {
  flow::ProfiledProgram program;
  program.name = std::string(name(benchmark));
  for (const KernelBlockDef& def : extra_kernel_blocks(benchmark, level)) {
    flow::ProfiledBlock block;
    block.name = def.name;
    block.graph = isa::parse_tac(def.tac).graph;
    block.exec_count = def.exec_count;
    program.blocks.push_back(std::move(block));
  }
  return program;
}

}  // namespace isex::bench_suite
