// Extended kernel suite — three benchmarks beyond the paper's seven.
//
// The paper's evaluation predates the ubiquity of crypto and vision
// workloads on embedded cores; these kernels extend the suite with the hot
// blocks a 2020s embedded product would profile: an AES round helper
// (GF(2^8) arithmetic), the SHA-256 message-schedule sigma network, and a
// Sobel edge-detection stencil.  Same modelling rules as the main suite
// (O0 split blocks vs O3 unrolled, hot-block-skewed profiles).
#pragma once

#include <string_view>
#include <vector>

#include "bench_suite/kernels.hpp"

namespace isex::bench_suite {

enum class ExtraBenchmark { kAes, kSha256, kSobel };

std::vector<ExtraBenchmark> all_extra_benchmarks();
std::string_view name(ExtraBenchmark benchmark);

std::vector<KernelBlockDef> extra_kernel_blocks(ExtraBenchmark benchmark,
                                                OptLevel level);
std::string_view extra_kernel_source(ExtraBenchmark benchmark, OptLevel level,
                                     std::string_view block_name);
flow::ProfiledProgram make_extra_program(ExtraBenchmark benchmark,
                                         OptLevel level);

}  // namespace isex::bench_suite
