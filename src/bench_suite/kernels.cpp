#include "bench_suite/kernels.hpp"

#include <stdexcept>

#include "isa/tac_parser.hpp"
#include "util/assert.hpp"

namespace isex::bench_suite {

std::vector<Benchmark> all_benchmarks() {
  return {Benchmark::kCrc32,    Benchmark::kFft,  Benchmark::kAdpcm,
          Benchmark::kBitcount, Benchmark::kBlowfish, Benchmark::kJpeg,
          Benchmark::kDijkstra};
}

std::string_view name(Benchmark benchmark) {
  switch (benchmark) {
    case Benchmark::kCrc32: return "CRC32";
    case Benchmark::kFft: return "FFT";
    case Benchmark::kAdpcm: return "adpcm";
    case Benchmark::kBitcount: return "bitcount";
    case Benchmark::kBlowfish: return "blowfish";
    case Benchmark::kJpeg: return "jpeg";
    case Benchmark::kDijkstra: return "dijkstra";
  }
  return "?";
}

std::string_view name(OptLevel level) {
  return level == OptLevel::kO0 ? "O0" : "O3";
}

std::vector<KernelBlockDef> kernel_blocks(Benchmark benchmark, OptLevel level) {
  switch (benchmark) {
    case Benchmark::kCrc32: return crc32_blocks(level);
    case Benchmark::kFft: return fft_blocks(level);
    case Benchmark::kAdpcm: return adpcm_blocks(level);
    case Benchmark::kBitcount: return bitcount_blocks(level);
    case Benchmark::kBlowfish: return blowfish_blocks(level);
    case Benchmark::kJpeg: return jpeg_blocks(level);
    case Benchmark::kDijkstra: return dijkstra_blocks(level);
  }
  ISEX_ASSERT_MSG(false, "unknown benchmark");
  return {};
}

std::string_view kernel_source(Benchmark benchmark, OptLevel level,
                               std::string_view block_name) {
  for (const KernelBlockDef& def : kernel_blocks(benchmark, level)) {
    if (def.name == block_name) return def.tac;
  }
  throw std::out_of_range("no kernel block named '" + std::string(block_name) +
                          "'");
}

flow::ProfiledProgram make_program(Benchmark benchmark, OptLevel level) {
  flow::ProfiledProgram program;
  program.name = std::string(name(benchmark));
  for (const KernelBlockDef& def : kernel_blocks(benchmark, level)) {
    flow::ProfiledBlock block;
    block.name = def.name;
    block.graph = isa::parse_tac(def.tac).graph;
    block.exec_count = def.exec_count;
    program.blocks.push_back(std::move(block));
  }
  return program;
}

}  // namespace isex::bench_suite
