// ADPCM (IMA) decoder step — branchless vpdiff accumulation.
//
// The decoder reconstructs the predicted difference from the 4-bit code:
// vpdiff = step>>3 (+ step if bit2) (+ step>>1 if bit1) (+ step>>2 if bit0),
// then saturating-updates the predictor.  gcc lowers the conditionals into
// mask arithmetic, producing interleaved shift/and/add chains.
#include "bench_suite/kernels.hpp"

namespace isex::bench_suite {
namespace {

constexpr std::string_view kVpdiffO3 = R"(
  s3 = srl step, 3
  s1 = srl step, 1
  s2 = srl step, 2
  b2 = srl delta, 2
  b2m = andi b2, 1
  n2 = subu 0, b2m
  a2 = and step, n2
  v0 = addu s3, a2
  b1 = srl delta, 1
  b1m = andi b1, 1
  n1 = subu 0, b1m
  a1 = and s1, n1
  v1 = addu v0, a1
  b0m = andi delta, 1
  n0 = subu 0, b0m
  a0 = and s2, n0
  vpdiff = addu v1, a0
  sgn = srl delta, 3
  sgnm = andi sgn, 1
  nsgn = subu 0, sgnm
  vneg = subu 0, vpdiff
  vsel0 = and vneg, nsgn
  nmask = nor nsgn, nsgn
  vsel1 = and vpdiff, nmask
  diff = or vsel0, vsel1
  val = addu valpred, diff
  live_out val
)";

constexpr std::string_view kVpdiffO0a = R"(
  s3 = srl step, 3
  b2 = srl delta, 2
  b2m = andi b2, 1
  n2 = subu 0, b2m
  a2 = and step, n2
  v0 = addu s3, a2
  live_out v0
)";

constexpr std::string_view kVpdiffO0b = R"(
  s1 = srl step, 1
  b1 = srl delta, 1
  b1m = andi b1, 1
  n1 = subu 0, b1m
  a1 = and s1, n1
  v1 = addu v0, a1
  t = mov v1
  live_out t
)";

constexpr std::string_view kVpdiffO0c = R"(
  s2 = srl step, 2
  b0m = andi delta, 1
  n0 = subu 0, b0m
  a0 = and s2, n0
  vpdiff = addu v1, a0
  val = addu valpred, vpdiff
  r = mov val
  live_out r
)";

// Step-size table advance: index clamp plus table load.
constexpr std::string_view kStepUpdate = R"(
  ad0 = sll delta, 2
  ad1 = addu idxtab, ad0
  dlt = lw [ad1]
  idx2 = addu index, dlt
  c0 = slti idx2, 89
  n0 = subu 0, c0
  lo = and idx2, n0
  hi = nor n0, n0
  hi2 = andi hi, 88
  idx3 = or lo, hi2
  ad2 = sll idx3, 2
  ad3 = addu steptab, ad2
  step2 = lw [ad3]
  live_out idx3, step2
)";

constexpr std::string_view kOutput = R"(
  clip0 = slti val, 32767
  sw [outp], val
  outp2 = addiu outp, 2
  c = sltu outp2, outend
  live_out outp2, c, clip0
)";

}  // namespace

std::vector<KernelBlockDef> adpcm_blocks(OptLevel level) {
  std::vector<KernelBlockDef> defs;
  constexpr std::uint64_t kSamples = 131072;
  if (level == OptLevel::kO0) {
    defs.push_back({"adpcm_vp_a", kVpdiffO0a, kSamples});
    defs.push_back({"adpcm_vp_b", kVpdiffO0b, kSamples});
    defs.push_back({"adpcm_vp_c", kVpdiffO0c, kSamples});
    defs.push_back({"adpcm_step", kStepUpdate, kSamples});
    defs.push_back({"adpcm_out", kOutput, kSamples});
  } else {
    defs.push_back({"adpcm_vpdiff", kVpdiffO3, kSamples});
    defs.push_back({"adpcm_step", kStepUpdate, kSamples});
    defs.push_back({"adpcm_out", kOutput, kSamples});
  }
  return defs;
}

}  // namespace isex::bench_suite
