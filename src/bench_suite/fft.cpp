// FFT — fixed-point radix-2 decimation-in-time butterfly.
//
// Four multiplies feed the twiddle rotation; the add/sub recombination and
// Q15 rescale form medium-length arithmetic chains with real ILP across the
// real/imaginary lanes — a good test of critical-path awareness, since only
// one lane bounds the schedule once multiplies serialize on the single
// multiplier.
#include "bench_suite/kernels.hpp"

namespace isex::bench_suite {
namespace {

constexpr std::string_view kButterflyO3 = R"(
  m0 = mult wr, xr
  m1 = mult wi, xi
  m2 = mult wr, xi
  m3 = mult wi, xr
  tr0 = subu m0, m1
  ti0 = addu m2, m3
  tr = sra tr0, 15
  ti = sra ti0, 15
  yr0 = addu ar, tr
  yi0 = addu ai, ti
  yr1 = subu ar, tr
  yi1 = subu ai, ti
  # second butterfly of the unrolled pair
  p0 = mult wr2, ur
  p1 = mult wi2, ui
  p2 = mult wr2, ui
  p3 = mult wi2, ur
  sr0 = subu p0, p1
  si0 = addu p2, p3
  sr = sra sr0, 15
  si = sra si0, 15
  zr0 = addu br, sr
  zi0 = addu bi, si
  zr1 = subu br, sr
  zi1 = subu bi, si
  live_out yr0, yi0, yr1, yi1, zr0, zi0, zr1, zi1
)";

constexpr std::string_view kButterflyO0a = R"(
  m0 = mult wr, xr
  m1 = mult wi, xi
  tr0 = subu m0, m1
  tr = sra tr0, 15
  live_out tr
)";

constexpr std::string_view kButterflyO0b = R"(
  m2 = mult wr, xi
  m3 = mult wi, xr
  ti0 = addu m2, m3
  ti = sra ti0, 15
  live_out ti
)";

constexpr std::string_view kButterflyO0c = R"(
  yr0 = addu ar, tr
  yi0 = addu ai, ti
  yr1 = subu ar, tr
  yi1 = subu ai, ti
  r0 = mov yr0
  r1 = mov yi0
  live_out r0, r1, yr1, yi1
)";

// Twiddle/index update (both flavors).
constexpr std::string_view kIndexUpdate = R"(
  j2 = addu j, stride
  k2 = addiu k, 1
  half = srl n, 1
  c = sltu k2, half
  ad = sll j2, 2
  adr = addu base, ad
  wr_n = lw [adr]
  live_out j2, k2, c, wr_n
)";

constexpr std::string_view kBitReverse = R"(
  r0 = srl idx, 1
  r1 = andi idx, 1
  r2 = sll acc, 1
  acc2 = or r2, r1
  c = sltu r0, n
  live_out r0, acc2, c
)";

}  // namespace

std::vector<KernelBlockDef> fft_blocks(OptLevel level) {
  std::vector<KernelBlockDef> defs;
  constexpr std::uint64_t kButterflies = 40960;  // N log N for N = 4096
  if (level == OptLevel::kO0) {
    defs.push_back({"fft_bfly_a", kButterflyO0a, kButterflies});
    defs.push_back({"fft_bfly_b", kButterflyO0b, kButterflies});
    defs.push_back({"fft_bfly_c", kButterflyO0c, kButterflies});
    defs.push_back({"fft_index", kIndexUpdate, kButterflies});
    defs.push_back({"fft_bitrev", kBitReverse, 4096});
  } else {
    defs.push_back({"fft_bfly_x2", kButterflyO3, kButterflies / 2});
    defs.push_back({"fft_index", kIndexUpdate, kButterflies / 2});
    defs.push_back({"fft_bitrev", kBitReverse, 4096});
  }
  return defs;
}

}  // namespace isex::bench_suite
