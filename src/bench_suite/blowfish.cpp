// Blowfish — one Feistel round.
//
// F(xl) = ((S0[a] + S1[b]) ^ S2[c]) + S3[d] with byte extraction feeding
// four S-box loads.  Loads can never join an ISE (§4.2 constraint 4), so
// the explorer has to carve ISEs out of the byte-extraction front and the
// add/xor combine tail around the memory wall — the paper's hardest
// realistic pressure test.
#include "bench_suite/kernels.hpp"

namespace isex::bench_suite {
namespace {

constexpr std::string_view kRoundO3 = R"(
  xl1 = xor xl, pkey
  a0 = srl xl1, 24
  a1 = srl xl1, 16
  b0 = andi a1, 255
  a2 = srl xl1, 8
  c0 = andi a2, 255
  d0 = andi xl1, 255
  ia = sll a0, 2
  ib = sll b0, 2
  ic = sll c0, 2
  id = sll d0, 2
  pa = addu s0, ia
  pb = addu s1, ib
  pc = addu s2, ic
  pd = addu s3, id
  va = lw [pa]
  vb = lw [pb]
  vc = lw [pc]
  vd = lw [pd]
  f0 = addu va, vb
  f1 = xor f0, vc
  f2 = addu f1, vd
  xr1 = xor xr, f2
  live_out xl1, xr1
)";

constexpr std::string_view kRoundO0a = R"(
  xl1 = xor xl, pkey
  a0 = srl xl1, 24
  a1 = srl xl1, 16
  b0 = andi a1, 255
  a2 = srl xl1, 8
  c0 = andi a2, 255
  d0 = andi xl1, 255
  live_out xl1, a0, b0, c0, d0
)";

constexpr std::string_view kRoundO0b = R"(
  ia = sll a0, 2
  ib = sll b0, 2
  pa = addu s0, ia
  pb = addu s1, ib
  va = lw [pa]
  vb = lw [pb]
  f0 = addu va, vb
  live_out f0
)";

constexpr std::string_view kRoundO0c = R"(
  ic = sll c0, 2
  id = sll d0, 2
  pc = addu s2, ic
  pd = addu s3, id
  vc = lw [pc]
  vd = lw [pd]
  f1 = xor f0, vc
  f2 = addu f1, vd
  xr1 = xor xr, f2
  live_out xr1
)";

// Swap halves + key pointer advance between rounds.
constexpr std::string_view kSwap = R"(
  tmp = mov xl1
  xl2 = mov xr1
  xr2 = mov tmp
  kp2 = addiu kp, 4
  pkey2 = lw [kp2]
  r2 = addiu round, 1
  c = slti r2, 16
  live_out xl2, xr2, kp2, pkey2, r2, c
)";

}  // namespace

std::vector<KernelBlockDef> blowfish_blocks(OptLevel level) {
  std::vector<KernelBlockDef> defs;
  constexpr std::uint64_t kRounds = 16 * 8192;  // 16 rounds × 8 KiB blocks
  if (level == OptLevel::kO0) {
    defs.push_back({"bf_extract", kRoundO0a, kRounds});
    defs.push_back({"bf_sbox01", kRoundO0b, kRounds});
    defs.push_back({"bf_sbox23", kRoundO0c, kRounds});
    defs.push_back({"bf_swap", kSwap, kRounds});
  } else {
    defs.push_back({"bf_round", kRoundO3, kRounds});
    defs.push_back({"bf_swap", kSwap, kRounds});
  }
  return defs;
}

}  // namespace isex::bench_suite
