// bitcount — SWAR population count.
//
// The parallel-reduction popcount is one unbroken dependence chain of
// shift/and/add steps finished by a multiply: ISE-perfect at any issue
// width, which makes it the paper-style best case.  The 32-bit masks
// (0x55555555, 0x33333333, 0x0F0F0F0F) and the 0x01010101 multiplier do not
// fit PISA's 16-bit immediates, so — exactly as gcc materializes and hoists
// them — they enter the loop body as live-in values c55/c33/c0f/c01.
#include "bench_suite/kernels.hpp"

namespace isex::bench_suite {
namespace {

constexpr std::string_view kPopcountO3 = R"(
  t0 = srl x, 1
  t1 = and t0, c55
  a = subu x, t1
  t2 = srl a, 2
  b0 = and a, c33
  b1 = and t2, c33
  b = addu b0, b1
  t3 = srl b, 4
  c0 = addu b, t3
  c = and c0, c0f
  d = mult c, c01
  cnt0 = srl d, 24
  # second word of the unrolled pair
  u0 = srl y, 1
  u1 = and u0, c55
  e = subu y, u1
  u2 = srl e, 2
  f0 = and e, c33
  f1 = and u2, c33
  f = addu f0, f1
  u3 = srl f, 4
  g0 = addu f, u3
  g = and g0, c0f
  h = mult g, c01
  cnt1 = srl h, 24
  total = addu cnt0, cnt1
  sum2 = addu sum, total
  live_out sum2
)";

constexpr std::string_view kPopcountO0a = R"(
  t0 = srl x, 1
  t1 = and t0, c55
  a = subu x, t1
  a2 = mov a
  live_out a2
)";

constexpr std::string_view kPopcountO0b = R"(
  t2 = srl a, 2
  b0 = and a, c33
  b1 = and t2, c33
  b = addu b0, b1
  b2 = mov b
  live_out b2
)";

constexpr std::string_view kPopcountO0c = R"(
  t3 = srl b, 4
  c0 = addu b, t3
  c = and c0, c0f
  d = mult c, c01
  cnt = srl d, 24
  sum2 = addu sum, cnt
  live_out sum2
)";

constexpr std::string_view kFetchWord = R"(
  ad = sll i, 2
  adr = addu buf, ad
  x = lw [adr]
  i2 = addiu i, 1
  c = sltu i2, n
  live_out x, i2, c
)";

}  // namespace

std::vector<KernelBlockDef> bitcount_blocks(OptLevel level) {
  std::vector<KernelBlockDef> defs;
  constexpr std::uint64_t kWords = 262144;
  if (level == OptLevel::kO0) {
    defs.push_back({"bitcnt_a", kPopcountO0a, kWords});
    defs.push_back({"bitcnt_b", kPopcountO0b, kWords});
    defs.push_back({"bitcnt_c", kPopcountO0c, kWords});
    defs.push_back({"bitcnt_fetch", kFetchWord, kWords});
  } else {
    defs.push_back({"bitcnt_x2", kPopcountO3, kWords / 2});
    defs.push_back({"bitcnt_fetch", kFetchWord, kWords / 2});
  }
  return defs;
}

}  // namespace isex::bench_suite
