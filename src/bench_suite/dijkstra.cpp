// dijkstra — edge-relaxation inner loop.
//
// Dominated by loads and compares with only short arithmetic snippets in
// between: the paper's worst case, where a good explorer should commit very
// little silicon (and a legality-only one still tries).
#include "bench_suite/kernels.hpp"

namespace isex::bench_suite {
namespace {

constexpr std::string_view kRelaxO3 = R"(
  eoff = sll e, 3
  ep = addu edges, eoff
  w = lw [ep]
  ep2 = addiu ep, 4
  v = lw [ep2]
  nd = addu du, w
  voff = sll v, 2
  dp = addu dist, voff
  dv = lw [dp]
  c = sltu nd, dv
  n = subu 0, c
  sel0 = and nd, n
  nn = nor n, n
  sel1 = and dv, nn
  best = or sel0, sel1
  sw [dp], best
  e2 = addiu e, 1
  cc = sltu e2, deg
  live_out e2, cc
)";

constexpr std::string_view kRelaxO0a = R"(
  eoff = sll e, 3
  ep = addu edges, eoff
  w = lw [ep]
  ep2 = addiu ep, 4
  v = lw [ep2]
  live_out w, v
)";

constexpr std::string_view kRelaxO0b = R"(
  nd = addu du, w
  voff = sll v, 2
  dp = addu dist, voff
  dv = lw [dp]
  c = sltu nd, dv
  live_out nd, dp, dv, c
)";

constexpr std::string_view kRelaxO0c = R"(
  n = subu 0, c
  sel0 = and nd, n
  nn = nor n, n
  sel1 = and dv, nn
  best = or sel0, sel1
  sw [dp], best
  e2 = addiu e, 1
  cc = sltu e2, deg
  live_out e2, cc
)";

// Priority-queue head extraction (linear scan flavor used by MiBench).
constexpr std::string_view kScanMin = R"(
  ioff = sll i, 2
  ip = addu dist, ioff
  di = lw [ip]
  c0 = sltu di, bestd
  n0 = subu 0, c0
  s0 = and di, n0
  nn0 = nor n0, n0
  s1 = and bestd, nn0
  bestd2 = or s0, s1
  i2 = addiu i, 1
  c = sltu i2, nv
  live_out bestd2, i2, c
)";

}  // namespace

std::vector<KernelBlockDef> dijkstra_blocks(OptLevel level) {
  std::vector<KernelBlockDef> defs;
  constexpr std::uint64_t kRelaxations = 100000;
  if (level == OptLevel::kO0) {
    defs.push_back({"dij_load", kRelaxO0a, kRelaxations});
    defs.push_back({"dij_cmp", kRelaxO0b, kRelaxations});
    defs.push_back({"dij_sel", kRelaxO0c, kRelaxations});
    defs.push_back({"dij_scan", kScanMin, kRelaxations / 2});
  } else {
    defs.push_back({"dij_relax", kRelaxO3, kRelaxations});
    defs.push_back({"dij_scan", kScanMin, kRelaxations / 2});
  }
  return defs;
}

}  // namespace isex::bench_suite
