// CRC32 — bit-at-a-time polynomial division over one input byte.
//
// The hot loop xors the next message bit into the low CRC bit, builds a
// mask from it, and conditionally xors the reflected polynomial 0xEDB88320
// into the shifted remainder.  The whole step is one long xor/shift/and
// dependence chain — the classic ISE goldmine.
#include "bench_suite/kernels.hpp"

namespace isex::bench_suite {
namespace {

// One CRC step at -O0: the compiler keeps every sub-expression in its own
// temporary and the loop body is a single small block executed per bit.
constexpr std::string_view kStepO0 = R"(
  b0 = andi crc, 1
  b1 = andi data, 1
  t0 = xor b0, b1
  t1 = subu 0, t0
  m0 = and t1, poly
  s0 = srl crc, 1
  d0 = srl data, 1
  crc_n = xor s0, m0
  live_out crc_n, d0
)";

// Bookkeeping block between steps at -O0 (copies + induction update).
constexpr std::string_view kLatchO0 = R"(
  crc2 = mov crc_n
  data2 = mov d0
  i2 = addiu i, 1
  c0 = slti i2, 8
  live_out crc2, data2, i2, c0
)";

// -O3 unrolls four bit-steps into one block; the chain crc -> crc4 is the
// critical path, while per-step mask computations run beside it.
constexpr std::string_view kStepO3 = R"(
  b0 = andi crc, 1
  x0 = andi data, 1
  t0 = xor b0, x0
  n0 = subu 0, t0
  m0 = and n0, poly
  s0 = srl crc, 1
  crc1 = xor s0, m0
  d1 = srl data, 1
  b1 = andi crc1, 1
  x1 = andi d1, 1
  t1 = xor b1, x1
  n1 = subu 0, t1
  m1 = and n1, poly
  s1 = srl crc1, 1
  crc2 = xor s1, m1
  d2 = srl d1, 1
  b2 = andi crc2, 1
  x2 = andi d2, 1
  t2 = xor b2, x2
  n2 = subu 0, t2
  m2 = and n2, poly
  s2 = srl crc2, 1
  crc3 = xor s2, m2
  d3 = srl d2, 1
  b3 = andi crc3, 1
  x3 = andi d3, 1
  t3 = xor b3, x3
  n3 = subu 0, t3
  m3 = and n3, poly
  s3 = srl crc3, 1
  crc4 = xor s3, m3
  d4 = srl d3, 1
  i4 = addiu i, 4
  c4 = slti i4, 8
  live_out crc4, d4, i4, c4
)";

// Byte-fetch block shared by both flavors (cold relative to the bit loop).
constexpr std::string_view kFetch = R"(
  ad = addu buf, idx
  byte = lbu [ad]
  data = xor crc, byte
  idx2 = addiu idx, 1
  c = sltu idx2, len
  live_out data, idx2, c
)";

// Table-index epilogue: fold the remainder and store the running CRC.
constexpr std::string_view kEpilogue = R"(
  r0 = nor crc, crc
  sw [out], r0
  done = addiu flag, 1
  live_out done
)";

}  // namespace

std::vector<KernelBlockDef> crc32_blocks(OptLevel level) {
  std::vector<KernelBlockDef> defs;
  constexpr std::uint64_t kBytes = 65536;
  if (level == OptLevel::kO0) {
    defs.push_back({"crc_step", kStepO0, kBytes * 8});
    defs.push_back({"crc_latch", kLatchO0, kBytes * 8});
    defs.push_back({"crc_fetch", kFetch, kBytes});
    defs.push_back({"crc_epilogue", kEpilogue, 1});
  } else {
    defs.push_back({"crc_step4", kStepO3, kBytes * 2});
    defs.push_back({"crc_fetch", kFetch, kBytes});
    defs.push_back({"crc_epilogue", kEpilogue, 1});
  }
  return defs;
}

}  // namespace isex::bench_suite
