// Benchmark kernel suite (§5.1): seven MiBench-style applications as
// profiled basic-block sets, each in two compiler flavors.
//
// The paper compiles CRC32, FFT, adpcm, bitcount, blowfish, jpeg, and
// dijkstra with gcc 2.7.2.3 -O0 / -O3 for PISA and profiles them on
// SimpleScalar.  Without that toolchain, this module models each program's
// *hot* basic blocks directly in the TAC frontend:
//   * O0 — small blocks, redundant temporaries and moves, low ILP, higher
//     block execution counts (the loop body spans several blocks);
//   * O3 — unrolled/inlined bodies: one large block with long dependence
//     chains and higher ILP.
// Execution counts reproduce the hot-block skew the paper's Fig 5.2.3
// analysis relies on (most time in very few blocks).
#pragma once

#include <string_view>
#include <vector>

#include "flow/program.hpp"

namespace isex::bench_suite {

enum class Benchmark {
  kCrc32,
  kFft,
  kAdpcm,
  kBitcount,
  kBlowfish,
  kJpeg,
  kDijkstra,
};

enum class OptLevel { kO0, kO3 };

std::vector<Benchmark> all_benchmarks();
std::string_view name(Benchmark benchmark);
std::string_view name(OptLevel level);

/// One modelled basic block: name, raw TAC source, and profile count.
/// Exposing the source keeps the kernels *executable* — the exec module's
/// semantic tests run them against reference implementations.
struct KernelBlockDef {
  std::string name;
  std::string_view tac;
  std::uint64_t exec_count = 1;
};

/// Block definitions for one (benchmark, flavor) pair, hottest first.
std::vector<KernelBlockDef> kernel_blocks(Benchmark benchmark, OptLevel level);

/// TAC source of one named block; throws std::out_of_range if absent.
std::string_view kernel_source(Benchmark benchmark, OptLevel level,
                               std::string_view block_name);

/// Builds the profiled program for one (benchmark, flavor) pair.
flow::ProfiledProgram make_program(Benchmark benchmark, OptLevel level);

// Per-benchmark definition tables (implemented one per translation unit).
std::vector<KernelBlockDef> crc32_blocks(OptLevel level);
std::vector<KernelBlockDef> fft_blocks(OptLevel level);
std::vector<KernelBlockDef> adpcm_blocks(OptLevel level);
std::vector<KernelBlockDef> bitcount_blocks(OptLevel level);
std::vector<KernelBlockDef> blowfish_blocks(OptLevel level);
std::vector<KernelBlockDef> jpeg_blocks(OptLevel level);
std::vector<KernelBlockDef> dijkstra_blocks(OptLevel level);

}  // namespace isex::bench_suite
