// jpeg — AAN-style 1-D inverse DCT column pass (even part + dequantize).
//
// Wide butterfly fronts (high ILP) feeding multiply/shift rotations: plenty
// of off-critical-path arithmetic that a legality-only explorer happily
// wastes area on, which is exactly the behaviour Fig 5.2.1 punishes.
#include "bench_suite/kernels.hpp"

namespace isex::bench_suite {
namespace {

constexpr std::string_view kIdctO3 = R"(
  q0 = mult x0, qt0
  q2 = mult x2, qt2
  q4 = mult x4, qt4
  q6 = mult x6, qt6
  s0 = sra q0, 3
  s2 = sra q2, 3
  s4 = sra q4, 3
  s6 = sra q6, 3
  p0 = addu s0, s4
  p1 = subu s0, s4
  r0 = addu s2, s6
  d26 = subu s2, s6
  m0 = mult d26, 181
  r1a = sra m0, 7
  r1 = subu r1a, r0
  t0 = addu p0, r0
  t3 = subu p0, r0
  t1 = addu p1, r1
  t2 = subu p1, r1
  o0 = sra t0, 6
  o1 = sra t1, 6
  o2 = sra t2, 6
  o3 = sra t3, 6
  live_out o0, o1, o2, o3
)";

constexpr std::string_view kIdctO0a = R"(
  q0 = mult x0, qt0
  q4 = mult x4, qt4
  s0 = sra q0, 3
  s4 = sra q4, 3
  p0 = addu s0, s4
  p1 = subu s0, s4
  live_out p0, p1
)";

constexpr std::string_view kIdctO0b = R"(
  q2 = mult x2, qt2
  q6 = mult x6, qt6
  s2 = sra q2, 3
  s6 = sra q6, 3
  r0 = addu s2, s6
  d26 = subu s2, s6
  m0 = mult d26, 181
  r1a = sra m0, 7
  r1 = subu r1a, r0
  live_out r0, r1
)";

constexpr std::string_view kIdctO0c = R"(
  t0 = addu p0, r0
  t3 = subu p0, r0
  t1 = addu p1, r1
  t2 = subu p1, r1
  o0 = sra t0, 6
  o1 = sra t1, 6
  o2 = sra t2, 6
  o3 = sra t3, 6
  live_out o0, o1, o2, o3
)";

// Pixel store with level shift and clamp mask.
constexpr std::string_view kStoreRow = R"(
  v0 = addiu o0, 128
  c0 = slti v0, 256
  n0 = subu 0, c0
  v1 = and v0, n0
  p = addu dst, off
  sb [p], v1
  off2 = addiu off, 1
  c = sltu off2, lim
  live_out off2, c
)";

}  // namespace

std::vector<KernelBlockDef> jpeg_blocks(OptLevel level) {
  std::vector<KernelBlockDef> defs;
  constexpr std::uint64_t kColumns = 8 * 4096;  // 8 columns × 4096 blocks
  if (level == OptLevel::kO0) {
    defs.push_back({"idct_even", kIdctO0a, kColumns});
    defs.push_back({"idct_rot", kIdctO0b, kColumns});
    defs.push_back({"idct_comb", kIdctO0c, kColumns});
    defs.push_back({"idct_store", kStoreRow, kColumns * 4});
  } else {
    defs.push_back({"idct_col", kIdctO3, kColumns});
    defs.push_back({"idct_store", kStoreRow, kColumns * 4});
  }
  return defs;
}

}  // namespace isex::bench_suite
