#include "core/merit.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "sched/schedule.hpp"
#include "util/assert.hpp"

namespace isex::core {

MeritEngine::MeritEngine(const hw::GPlus& gplus, const isa::IsaFormat& format,
                         const ExplorerParams& params, hw::ClockSpec clock)
    : gplus_(&gplus), format_(format), params_(&params), clock_(clock) {}

double MeritEngine::max_allowable_cycles(const dfg::Graph& graph,
                                         const dfg::NodeSet& members,
                                         const dfg::PathInfo& path, int tet) {
  // Dependence window of the candidate: earliest possible start of its first
  // operation to the latest allowed finish of its last, where ALAP levels
  // are anchored to the schedule's actual length (tet ≥ dependence length).
  double earliest = std::numeric_limits<double>::max();
  double latest_finish = 0.0;
  members.for_each([&](dfg::NodeId v) {
    earliest = std::min(earliest, path.earliest[v]);
    const double lat = static_cast<double>(sched::node_latency(graph, v));
    latest_finish = std::max(latest_finish, path.latest[v] + lat);
  });
  if (members.empty()) return 0.0;
  const double slack_shift = std::max(0.0, static_cast<double>(tet) - path.length);
  return latest_finish + slack_shift - earliest;
}

void MeritEngine::update(PheromoneState& pheromone, const MeritInputs& inputs,
                         const dfg::Reachability& reach) const {
  const dfg::Graph& graph = gplus_->graph();
  const std::size_t n = graph.num_nodes();
  ISEX_ASSERT(inputs.chosen.size() == n);
  ISEX_ASSERT(inputs.critical != nullptr && inputs.path != nullptr);

  const HardwareGrouping grouping(*gplus_, format_, clock_);
  const ExplorerParams& p = *params_;

  for (dfg::NodeId x = 0; x < n; ++x) {
    const hw::IoTable& table = gplus_->table(x);

    // Software part: merit ×= execution time of the option.
    for (std::size_t o = 0; o < table.size(); ++o) {
      if (!table.is_hardware(o))
        pheromone.scale_merit(x, o, table.option(o).delay);
    }

    if (table.has_hardware()) {
      const VirtualCandidate cand = grouping.group(x, inputs.chosen, reach);
      // With locality awareness off (single-issue baseline) every operation
      // counts as critical: any saved cycle shortens a sequential schedule.
      const bool x_critical = !p.locality_aware || inputs.critical->contains(x);
      bool cand_critical = !p.locality_aware;
      if (!cand_critical) {
        cand.members.for_each([&](dfg::NodeId m) {
          cand_critical = cand_critical || inputs.critical->contains(m);
        });
      }

      // Case 1: critical-path boost.
      if (x_critical) {
        for (std::size_t j = 0; j < table.size(); ++j)
          if (table.is_hardware(j)) pheromone.scale_merit(x, j, 1.0 / p.beta_cp);
      }

      if (cand.size() == 1) {
        // Case 2: a lone operation cannot beat its 1-cycle software form.
        for (std::size_t j = 0; j < table.size(); ++j)
          if (table.is_hardware(j)) pheromone.scale_merit(x, j, p.beta_size);
      } else if (cand.io_violation || cand.convex_violation ||
                 cand.timing_violation) {
        // Case 3: keep a reduced chance — the constraint may dissolve as
        // neighbours flip back to software in later iterations.
        for (std::size_t j = 0; j < table.size(); ++j) {
          if (!table.is_hardware(j)) continue;
          if (cand.io_violation) pheromone.scale_merit(x, j, p.beta_io);
          if (cand.convex_violation) pheromone.scale_merit(x, j, p.beta_convex);
          if (cand.timing_violation) pheromone.scale_merit(x, j, p.beta_timing);
        }
      } else {
        // Case 4: legal candidate of size ≥ 2.
        // Reference option HW-MAX: maximal execution-time reduction.
        int best_cycles = std::numeric_limits<int>::max();
        double area_max = 0.0;
        for (std::size_t j = 0; j < table.size(); ++j) {
          if (!table.is_hardware(j)) continue;
          best_cycles = std::min(best_cycles, cand.per_option[j].cycles);
          area_max = std::max(area_max, cand.per_option[j].area);
        }
        // Saving is measured against the members' sequential software time.
        // (Depth-based saving would zero out shallow side clusters, but
        // folding those into a chain ISE still frees issue slots; the
        // commit-time gain check on the real schedule is the honest filter,
        // so merit stays generous and locality enters through case 1 and
        // the critical/Max_AEC branches below.)
        const double sw_time = cand.sw_seq_cycles;
        const double max_aec = max_allowable_cycles(graph, cand.members,
                                                    *inputs.path, inputs.tet);
        for (std::size_t j = 0; j < table.size(); ++j) {
          if (!table.is_hardware(j)) continue;
          const auto& eval = cand.per_option[j];
          const double saving = std::max(0.0, sw_time - eval.cycles);
          pheromone.scale_merit(x, j, saving);
          if (saving <= 0.0) continue;
          const double area_ratio =
              eval.area > 0.0 ? area_max / eval.area : 1.0;
          if (cand_critical) {
            if (eval.cycles == best_cycles) {
              pheromone.scale_merit(x, j, area_ratio);
            } else {
              pheromone.scale_merit(x, j,
                                    1.0 / (1.0 + eval.cycles - best_cycles));
            }
          } else {
            if (static_cast<double>(eval.cycles) <= max_aec) {
              pheromone.scale_merit(x, j, area_ratio);
            } else {
              pheromone.scale_merit(x, j,
                                    1.0 / (1.0 + eval.cycles - max_aec));
            }
          }
        }
      }
    }

    pheromone.normalize_merit(x);
  }
}

}  // namespace isex::core
