// One ACO iteration: an ant constructs a complete solution — an
// implementation option *and* a time slot for every operation — by walking
// the search tree level by level (§3.2).
//
// At each step the Ready-Matrix holds every implementation option of every
// ready operation (Fig 4.3.2); one entry is drawn with the chosen
// probability of Eq. 1, and the operation is placed by Operation-Scheduling:
// software options list-schedule under issue/FU/port limits (Fig 4.3.3),
// hardware options pack into a parent's virtual ISE group in the same slot
// when legal, else open a new group (Fig 4.3.4).  Virtual groups accumulate
// combinational depth; a group occupies ⌈depth/clock⌉ cycles and its results
// become visible when the whole group finishes.
//
// Hot-path structure (see docs/PERFORMANCE.md): trail and merit are const
// for the duration of one walk, so the Eq. 1 numerator of every (node,
// option) pair is flattened into a per-walk weight table up front, and the
// Ready-Matrix is maintained *incrementally* — entries append when a node
// becomes ready and are compacted out in place when it schedules, keeping
// the enumeration order (and therefore the RNG draw sequence) identical to
// a per-step rebuild.  All working storage lives in a reusable WalkScratch,
// so a warmed-up walk performs no heap allocation.
#pragma once

#include <array>
#include <cstdint>
#include <utility>
#include <vector>

#include "core/explorer_params.hpp"
#include "core/pheromone.hpp"
#include "dfg/node_set.hpp"
#include "hwlib/gplus.hpp"
#include "sched/machine_config.hpp"
#include "trace/metrics.hpp"
#include "util/rng.hpp"

namespace isex::core {

/// A virtual ISE group growing during the walk.
struct GroupState {
  dfg::NodeSet members;
  int start = 0;          ///< issue cycle
  double depth_ns = 0.0;  ///< combinational critical path inside the group
  int cycles = 1;         ///< ⌈depth/clock⌉
  int reads = 0;          ///< IN(members)
  int writes = 0;         ///< OUT(members)
};

struct WalkResult {
  /// Implementation option chosen per node (IO-table index).
  std::vector<int> chosen;
  /// Issue cycle per node.
  std::vector<int> slot;
  /// Position of the node in the ant's pick sequence.
  std::vector<int> order;
  /// Virtual group membership, -1 for software-scheduled nodes.
  std::vector<int> group_id;
  std::vector<GroupState> groups;
  /// Total execution time of the constructed schedule, cycles.
  int tet = 0;

  /// Cycle at which the node's result becomes available.
  int finish_of(dfg::NodeId v) const;

 private:
  friend class AntWalk;
  std::vector<int> finish_;
};

/// One per-cycle resource row of the walk's scheduling ledger.
struct LedgerRow {
  int issue = 0;
  int reads = 0;
  int writes = 0;
  std::array<int, sched::kNumFuClasses> fu{};
};

/// Reusable working storage for AntWalk::run.  Holding one scratch per
/// thread (MIExplorer keeps one per explore job) and passing it to every
/// walk removes all per-walk heap allocation after the first few walks warm
/// the buffers up to their high-water sizes.
class WalkScratch {
 public:
  WalkScratch() = default;
  WalkScratch(const WalkScratch&) = delete;
  WalkScratch& operator=(const WalkScratch&) = delete;
  WalkScratch(WalkScratch&&) = default;
  WalkScratch& operator=(WalkScratch&&) = default;

  /// The last walk written by run(); valid until the next run() call.
  WalkResult result;

  // --- incremental Ready-Matrix diagnostics, reset by every run() ---
  /// Picks taken (== nodes scheduled).
  std::uint64_t steps = 0;
  /// Ready-Matrix entries moved by order-preserving compaction.  Bounded by
  /// Σ_step |tail after the scheduled node| — 0 for a chain, where the
  /// ready set never holds more than one node.
  std::uint64_t entry_shifts = 0;
  /// Peak number of live (node, option) entries.
  std::uint64_t max_entries = 0;

 private:
  friend class AntWalk;
  // Scheduling ledger rows, zero-filled (not deallocated) between walks.
  std::vector<LedgerRow> ledger_rows;
  // Per-node combinational depth accumulated inside its group.
  std::vector<double> hw_depth;
  std::vector<int> unresolved;
  // Flattened per-(node, option) Eq. 1 numerator + λ·SP, built once per walk.
  std::vector<double> base_weight;
  std::vector<std::int32_t> weight_offset;
  // Flattened Ready-Matrix: live (node, option) entries and their weights,
  // plus each ready node's first-entry index (-1 when not ready).
  std::vector<std::pair<dfg::NodeId, int>> entries;
  std::vector<double> weights;
  std::vector<std::int32_t> entry_pos;
  // (finish, gid) candidates for Fig 4.3.4's latest-parent preference.
  std::vector<std::pair<int, int>> parent_groups;
  // Distinct live-in value ids consumed by each open group (for the
  // incremental IN(S) delta of try_join); index parallels result.groups.
  std::vector<std::vector<int>> group_extern_ids;
  // Retired GroupStates whose NodeSet capacity is recycled between walks.
  std::vector<GroupState> group_stash;
};

class AntWalk {
 public:
  AntWalk(const hw::GPlus& gplus, const sched::MachineConfig& machine,
          const ExplorerParams& params, hw::ClockSpec clock = {});

  /// Runs one iteration into `scratch` and returns `scratch.result`.
  /// `sp_score[v]` is the scheduling-priority term of Eq. 1, pre-scaled to
  /// the merit scale.  Allocation-free once the scratch is warmed up.
  const WalkResult& run(const PheromoneState& pheromone,
                        std::span<const double> sp_score, Rng& rng,
                        WalkScratch& scratch) const;

  /// Convenience overload with a throwaway scratch (tests, one-off walks).
  WalkResult run(const PheromoneState& pheromone,
                 std::span<const double> sp_score, Rng& rng) const;

 private:
  const hw::GPlus* gplus_;
  sched::MachineConfig machine_;
  const ExplorerParams* params_;
  hw::ClockSpec clock_;
  /// Resolved once per round (the walker's lifetime) so each walk pays one
  /// atomic add + histogram observe, not a registry lookup.
  trace::Counter* walks_metric_;
  trace::Histogram* tet_metric_;
};

}  // namespace isex::core
