// One ACO iteration: an ant constructs a complete solution — an
// implementation option *and* a time slot for every operation — by walking
// the search tree level by level (§3.2).
//
// At each step the Ready-Matrix holds every implementation option of every
// ready operation (Fig 4.3.2); one entry is drawn with the chosen
// probability of Eq. 1, and the operation is placed by Operation-Scheduling:
// software options list-schedule under issue/FU/port limits (Fig 4.3.3),
// hardware options pack into a parent's virtual ISE group in the same slot
// when legal, else open a new group (Fig 4.3.4).  Virtual groups accumulate
// combinational depth; a group occupies ⌈depth/clock⌉ cycles and its results
// become visible when the whole group finishes.
#pragma once

#include <vector>

#include "core/explorer_params.hpp"
#include "core/pheromone.hpp"
#include "dfg/node_set.hpp"
#include "hwlib/gplus.hpp"
#include "sched/machine_config.hpp"
#include "trace/metrics.hpp"
#include "util/rng.hpp"

namespace isex::core {

/// A virtual ISE group growing during the walk.
struct GroupState {
  dfg::NodeSet members;
  int start = 0;          ///< issue cycle
  double depth_ns = 0.0;  ///< combinational critical path inside the group
  int cycles = 1;         ///< ⌈depth/clock⌉
  int reads = 0;          ///< IN(members)
  int writes = 0;         ///< OUT(members)
};

struct WalkResult {
  /// Implementation option chosen per node (IO-table index).
  std::vector<int> chosen;
  /// Issue cycle per node.
  std::vector<int> slot;
  /// Position of the node in the ant's pick sequence.
  std::vector<int> order;
  /// Virtual group membership, -1 for software-scheduled nodes.
  std::vector<int> group_id;
  std::vector<GroupState> groups;
  /// Total execution time of the constructed schedule, cycles.
  int tet = 0;

  /// Cycle at which the node's result becomes available.
  int finish_of(dfg::NodeId v) const;

 private:
  friend class AntWalk;
  std::vector<int> finish_;
};

class AntWalk {
 public:
  AntWalk(const hw::GPlus& gplus, const sched::MachineConfig& machine,
          const ExplorerParams& params, hw::ClockSpec clock = {});

  /// Runs one iteration.  `sp_score[v]` is the scheduling-priority term of
  /// Eq. 1, pre-scaled to the merit scale.
  WalkResult run(const PheromoneState& pheromone,
                 std::span<const double> sp_score, Rng& rng) const;

 private:
  const hw::GPlus* gplus_;
  sched::MachineConfig machine_;
  const ExplorerParams* params_;
  hw::ClockSpec clock_;
  /// Resolved once per round (the walker's lifetime) so each walk pays one
  /// atomic add + histogram observe, not a registry lookup.
  trace::Counter* walks_metric_;
  trace::Histogram* tet_metric_;
};

}  // namespace isex::core
