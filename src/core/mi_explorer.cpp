#include "core/mi_explorer.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <limits>

#include "core/ant_walk.hpp"
#include "core/candidate.hpp"
#include "core/merit.hpp"
#include "core/pheromone.hpp"
#include "dfg/analysis.hpp"
#include "dfg/collapsed_view.hpp"
#include "hwlib/gplus.hpp"
#include "runtime/eval_cache.hpp"
#include "runtime/hash.hpp"
#include "runtime/job_graph.hpp"
#include "runtime/pool_profile.hpp"
#include "runtime/thread_pool.hpp"
#include "sched/list_scheduler.hpp"
#include "sched/priority.hpp"
#include "trace/metrics.hpp"
#include "trace/trace.hpp"
#include "util/assert.hpp"

namespace isex::core {
namespace {

/// Cache instance the params select: an explicitly scoped one (portfolio
/// flows) or the process-wide schedule cache.  Pure memos either way, so the
/// choice never changes results.
runtime::EvalCache& active_cache(const ExplorerParams& params) {
  return params.eval_cache != nullptr ? *params.eval_cache
                                      : runtime::schedule_cache();
}

/// Schedule-length evaluation, memoized in the params' cache when allowed.
/// The cache is a pure-function memo, so the returned makespan is identical
/// either way.
int evaluate_cycles(const sched::ListScheduler& scheduler,
                    const dfg::Graph& graph, const ExplorerParams& params) {
  return params.use_eval_cache
             ? runtime::cached_schedule_cycles(active_cache(params), scheduler,
                                               graph)
             : scheduler.cycles(graph);
}

/// Per-worker working state for one candidate evaluation: the collapsed
/// overlay view plus the scheduler's flattened arrays.  thread_local so the
/// parallel_for jobs share nothing and every buffer is warm after the first
/// few candidates a worker scores — steady-state evaluations allocate
/// nothing.
struct CandidateEvalScratch {
  dfg::CollapsedView view;
  sched::SchedulerScratch sched;
};

CandidateEvalScratch& candidate_scratch() {
  thread_local CandidateEvalScratch scratch;
  return scratch;
}

/// Critical operations of an ant-walk schedule: fixpoint over (a) nodes
/// finishing at the makespan, (b) tight producers (finish == consumer's
/// start), and (c) whole virtual groups once any member is critical — a
/// group issues as one instruction.  The closure is a unique least fixpoint,
/// so rule order is free; groups absorb word-at-a-time (NodeSet::intersects
/// skips untouched groups, insert_all unions whole words) and the
/// tight-producer rule folds its contains/insert pair into one
/// test_and_set word access.
dfg::NodeSet walk_critical_nodes(const dfg::Graph& graph,
                                 const WalkResult& walk) {
  const std::size_t n = graph.num_nodes();
  dfg::NodeSet critical(n);
  for (dfg::NodeId v = 0; v < n; ++v)
    if (walk.finish_of(v) == walk.tet) critical.insert(v);

  bool changed = true;
  while (changed) {
    changed = false;
    for (const GroupState& group : walk.groups) {
      if (group.members.intersects(critical) &&
          critical.insert_all(group.members))
        changed = true;
    }
    // for_each snapshots one word at a time, so members inserted into the
    // current or an earlier word surface on the next sweep — exactly what
    // the fixpoint loop is for.
    critical.for_each([&](dfg::NodeId v) {
      for (const dfg::NodeId p : graph.preds(v)) {
        if (walk.finish_of(p) == walk.slot[v] && critical.test_and_set(p))
          changed = true;
      }
    });
  }
  return critical;
}

/// Everything one round's ACO iterations read but never write: the round's
/// graph and its derived analyses, the walker and merit engine, and the
/// round index for trace points.  Shared by every colony of the round.
struct RoundContext {
  const dfg::Graph& graph;
  const AntWalk& walker;
  const MeritEngine& merit;
  const std::vector<double>& sp;
  const dfg::PathInfo& path;
  const dfg::Reachability& reach;
  const ExplorerParams& params;
  int round = 0;
};

/// One colony's ACO chain: a private pheromone state plus the loop-carried
/// variables of the iteration loop (previous pick order, incumbent best ant,
/// running TET statistics).  step() is the exact body of the paper's serial
/// iteration loop, factored out so the single-colony path (which runs one
/// chain with the caller's Rng — byte-identical to every release before the
/// colonies knob existed) and the multi-colony shards (one chain per colony
/// on private split streams) execute the same per-iteration code.
struct AcoChain {
  AcoChain(const hw::GPlus& gplus, const ExplorerParams& params,
           std::size_t num_nodes)
      : pheromone(gplus, params), prev_order(num_nodes, -1) {}

  PheromoneState pheromone;
  std::vector<int> prev_order;
  std::vector<int> best_chosen;
  /// Best (lowest) TET any of this chain's ants achieved this round.
  int tet_old = std::numeric_limits<int>::max();
  int worst_tet = 0;
  long long sum_tet = 0;
  /// Iterations completed (== ants walked) this round.
  int iterations = 0;
  /// Per-colony trace points, drained into ExplorationResult::trace in
  /// colony-index order at round end.
  std::vector<IterationTrace> trace;

  /// One ACO iteration: ant walk, trail update, Hardware-Grouping merit
  /// update, incumbent update, optional trace point.  Returns
  /// pheromone.converged() after the step.  `scratch` and `reordered` are
  /// caller-owned so they survive across rounds (chains do not).
  bool step(const RoundContext& ctx, Rng& rng, int colony,
            WalkScratch& scratch, std::vector<bool>& reordered) {
    const dfg::Graph& current = ctx.graph;
    const WalkResult& walk = ctx.walker.run(pheromone, ctx.sp, rng, scratch);
    const bool improved = walk.tet <= tet_old;
    worst_tet = std::max(worst_tet, walk.tet);
    sum_tet += walk.tet;

    reordered.assign(current.num_nodes(), false);
    for (dfg::NodeId v = 0; v < current.num_nodes(); ++v)
      reordered[v] = prev_order[v] >= 0 && walk.order[v] < prev_order[v];

    pheromone.update_trails(walk.chosen, reordered, improved);

    const dfg::NodeSet critical = walk_critical_nodes(current, walk);
    MeritInputs inputs;
    inputs.chosen = walk.chosen;
    inputs.critical = &critical;
    inputs.path = &ctx.path;
    inputs.tet = walk.tet;
    ctx.merit.update(pheromone, inputs, ctx.reach);

    if (improved) {
      tet_old = walk.tet;
      best_chosen = walk.chosen;
    }
    prev_order = walk.order;
    ++iterations;
    if (ctx.params.collect_trace) {
      IterationTrace t;
      t.round = ctx.round;
      t.colony = colony;
      t.iteration = iterations - 1;
      t.tet = walk.tet;
      t.best_tet = tet_old;
      t.worst_tet = worst_tet;
      t.mean_tet = static_cast<double>(sum_tet) / iterations;
      t.converged_fraction = pheromone.converged_fraction();
      t.entropy = pheromone.decision_entropy();
      t.max_option_probability = pheromone.min_best_probability();
      t.p_end = ctx.params.p_end;
      t.ants = iterations;
      t.cache_hit_rate = active_cache(ctx.params).stats().hit_rate();
      trace.push_back(t);
    }
    return pheromone.converged();
  }
};

}  // namespace

double ExplorationResult::total_area() const {
  double area = 0.0;
  for (const ExploredIse& ise : ises) area += ise.eval.area;
  return area;
}

MultiIssueExplorer::MultiIssueExplorer(sched::MachineConfig machine,
                                       isa::IsaFormat format,
                                       const hw::HwLibrary& library,
                                       ExplorerParams params,
                                       hw::ClockSpec clock)
    : machine_(machine),
      format_(format),
      library_(library),
      params_(params),
      clock_(clock) {}

ExplorationResult MultiIssueExplorer::explore(const dfg::Graph& block,
                                              Rng& rng) const {
  const trace::Span explore_span("mi_explore");
  ExplorationResult result;
  const sched::ListScheduler scheduler(machine_);
  if (block.empty()) return result;

  dfg::Graph current = block;
  // Effective colony count: min(colonies, max_iterations) so every colony
  // walks at least once; 1 is the paper's serial loop.
  const int k_eff =
      std::max(1, std::min(params_.colonies, params_.max_iterations));
  // One walk scratch (and reorder buffer) per colony per explore call:
  // chains are rebuilt every round — their pheromone state is shaped by the
  // round's G+ — but these buffers persist, so every ant walk of every round
  // is allocation-free after warm-up.  Colony c touches only slot c.
  std::vector<WalkScratch> scratches(static_cast<std::size_t>(k_eff));
  std::vector<std::vector<bool>> reorders(static_cast<std::size_t>(k_eff));
  // Original node ids represented by each current node.
  std::vector<dfg::NodeSet> origin(block.num_nodes());
  for (dfg::NodeId v = 0; v < block.num_nodes(); ++v) {
    origin[v].resize(block.num_nodes());
    origin[v].insert(v);
  }

  result.base_cycles = evaluate_cycles(scheduler, current, params_);
  int current_cycles = result.base_cycles;

  for (int round = 0; round < params_.max_rounds; ++round) {
    const trace::Span round_span("mi_explore.round");
    const hw::GPlus gplus(current, library_);

    // A block with no hardware-capable node can never yield an ISE.
    bool any_hardware = false;
    for (dfg::NodeId v = 0; v < current.num_nodes() && !any_hardware; ++v)
      any_hardware = gplus.hardware_capable(v);
    if (!any_hardware) break;

    const dfg::Reachability reach(current);
    const dfg::PathInfo path = dfg::longest_path(
        current, [&](dfg::NodeId v) { return gplus.software_cycles(v); });

    // Scheduling-priority term, scaled to the merit scale (Eq. 1's λ·SP).
    std::vector<double> sp =
        sched::compute_priorities(current, params_.sp_priority);
    double sp_max = 0.0;
    for (const double s : sp) sp_max = std::max(sp_max, s);
    if (sp_max > 0.0) {
      for (double& s : sp) s = s / sp_max * params_.merit_scale;
    }

    const AntWalk walker(gplus, machine_, params_, clock_);
    const MeritEngine merit(gplus, format_, params_, clock_);
    const RoundContext ctx{current, walker, merit, sp,
                           path,    reach,  params_, round};

    // Taken option per node after convergence.
    std::vector<int> taken(current.num_nodes());
    int iterations = 0;

    if (k_eff == 1) {
      // Serial chain with the caller's Rng — the paper's loop, byte-identical
      // to the pre-colonies explorer (golden digests pin this).
      AcoChain chain(gplus, params_, current.num_nodes());
      while (chain.iterations < params_.max_iterations) {
        if (chain.step(ctx, rng, /*colony=*/0, scratches[0], reorders[0]))
          break;
      }
      iterations = chain.iterations;
      if (params_.collect_trace)
        result.trace.insert(result.trace.end(), chain.trace.begin(),
                            chain.trace.end());
      for (dfg::NodeId v = 0; v < current.num_nodes(); ++v)
        taken[v] = static_cast<int>(chain.pheromone.best_option(v));
    } else {
      // Multi-colony sharding (docs/PERFORMANCE.md): the round's ant budget
      // splits across k_eff colonies, each walking a private chain on its
      // own serially pre-split RNG stream.  Colonies run concurrently on the
      // runtime pool and synchronize at a merge barrier every merge_interval
      // iterations; convergence (P_END) is tested on the merged state.  All
      // cross-colony reductions are index-ordered, so the outcome is a pure
      // function of (seed, colonies, merge_interval) — a search parameter
      // like the seed, bit-identical at any thread count.
      using Clock = std::chrono::steady_clock;
      runtime::ThreadPool& pool = runtime::ThreadPool::default_pool();
      const bool profiled = pool.profiling();
      const int budget = (params_.max_iterations + k_eff - 1) / k_eff;
      const int interval = std::max(1, params_.merge_interval);

      std::vector<Rng> streams = rng.split_n(static_cast<std::size_t>(k_eff));
      std::vector<AcoChain> chains;
      chains.reserve(static_cast<std::size_t>(k_eff));
      for (int c = 0; c < k_eff; ++c)
        chains.emplace_back(gplus, params_, current.num_nodes());

      PheromoneState merged(gplus, params_);
      while (true) {
        // Epoch: each colony advances up to merge_interval iterations
        // (bounded by its budget share), breaking early once its own
        // pheromone state converges.  Colony c touches only its own chain,
        // stream, and scratch — nothing is shared until the barrier.
        std::atomic<std::uint64_t> task_ns_sum{0};
        std::atomic<std::uint64_t> task_ns_max{0};
        const auto wall_start = Clock::now();
        pool.parallel_for(
            static_cast<std::size_t>(k_eff), [&](std::size_t c) {
              const auto run_epoch = [&] {
                AcoChain& chain = chains[c];
                for (int s = 0; s < interval && chain.iterations < budget;
                     ++s) {
                  if (chain.step(ctx, streams[c], static_cast<int>(c),
                                 scratches[c], reorders[c]))
                    break;
                }
              };
              if (profiled) {
                const auto t0 = Clock::now();
                run_epoch();
                const auto ns = static_cast<std::uint64_t>(
                    std::chrono::duration_cast<std::chrono::nanoseconds>(
                        Clock::now() - t0)
                        .count());
                task_ns_sum.fetch_add(ns, std::memory_order_relaxed);
                std::uint64_t seen =
                    task_ns_max.load(std::memory_order_relaxed);
                while (seen < ns &&
                       !task_ns_max.compare_exchange_weak(
                           seen, ns, std::memory_order_relaxed)) {
                }
              } else {
                run_epoch();
              }
            });
        const auto merge_start = Clock::now();
        const auto wall_ns = static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(merge_start -
                                                                 wall_start)
                .count());

        // Barrier: index-ordered merge, broadcast, convergence test on the
        // merged state.  The merge is the section's serial cost.
        PheromoneMerger merger(static_cast<std::size_t>(k_eff), params_);
        for (std::size_t c = 0; c < chains.size(); ++c)
          merger.submit(c, chains[c].pheromone, chains[c].tet_old,
                        chains[c].best_chosen);
        merger.finalize_into(merged);
        bool exhausted = true;
        for (AcoChain& chain : chains) {
          chain.pheromone = merged;
          exhausted = exhausted && chain.iterations >= budget;
        }
        if (profiled) {
          const auto merge_ns = static_cast<std::uint64_t>(
              std::chrono::duration_cast<std::chrono::nanoseconds>(
                  Clock::now() - merge_start)
                  .count());
          runtime::record_parallel_section(
              "explore.colonies", merge_ns, wall_ns,
              static_cast<std::uint64_t>(k_eff),
              task_ns_sum.load(std::memory_order_relaxed),
              task_ns_max.load(std::memory_order_relaxed));
        }
        if (merged.converged() || exhausted) break;
      }

      for (const AcoChain& chain : chains) iterations += chain.iterations;
      if (params_.collect_trace) {
        for (const AcoChain& chain : chains)
          result.trace.insert(result.trace.end(), chain.trace.begin(),
                              chain.trace.end());
      }
      for (dfg::NodeId v = 0; v < current.num_nodes(); ++v)
        taken[v] = static_cast<int>(merged.best_option(v));
    }

    result.total_iterations += iterations;
    ++result.rounds;
    trace::MetricsRegistry::global()
        .histogram("isex_aco_iterations_per_round",
                   {5, 10, 25, 50, 100, 150, 200, 250})
        .observe(iterations);
    trace::Tracer::global().record_counter("aco.iterations", iterations);

    std::vector<IseCandidate> candidates;
    {
      // Make-Convex + port legalization over the converged taken options.
      const trace::Span span("extract_candidates");
      candidates = extract_candidates(gplus, format_, taken, reach, clock_);
    }
    if (candidates.empty()) break;

    // Score every candidate concurrently on the runtime pool.  Each job
    // schedules a copy-free dfg::CollapsedView overlay of (current, members,
    // IseInfo) into per-thread scratch — no collapsed Graph is materialized
    // (the winner alone is collapsed below, for the origin remap) — and
    // memoizes the makespan under the candidate's canonical signature, so a
    // candidate re-surfacing in a later round or repeat skips the schedule
    // entirely.  Jobs are pure functions of their index; only the
    // index-ordered reduction below picks the winner, so the result is
    // identical at any --jobs width.
    std::vector<int> cycles_after(candidates.size());
    {
      const trace::Span eval_span("evaluate_candidates");
      const runtime::Key128 base_digest = params_.use_eval_cache
                                              ? runtime::graph_digest(current)
                                              : runtime::Key128{};
      runtime::ThreadPool::default_pool().parallel_for(
          candidates.size(), [&](std::size_t c) {
            const IseCandidate& cand = candidates[c];
            dfg::IseInfo info;
            info.latency_cycles = cand.eval.latency_cycles;
            info.area = cand.eval.area;
            info.num_inputs = cand.in_count;
            info.num_outputs = cand.out_count;
            const auto schedule_view = [&]() {
              CandidateEvalScratch& s = candidate_scratch();
              s.view.assign(current, cand.members, info);
              return scheduler.cycles(s.view, s.sched);
            };
            cycles_after[c] =
                params_.use_eval_cache
                    ? active_cache(params_).get_or_compute(
                          runtime::candidate_key(base_digest, cand.members,
                                                 info, machine_,
                                                 scheduler.priority()),
                          schedule_view)
                    : schedule_view();
          });
    }

    // Commit the candidate with the largest scheduled gain; require > 0.
    // Ties break by smaller ASFU area, then by lowest candidate index: the
    // scan runs in ascending index order and replaces the incumbent only
    // when better_candidate() strictly improves, so a full (gain, area) tie
    // deterministically keeps the earlier candidate — the invariant the
    // parallel evaluation above relies on.
    int best_gain = 0;
    double best_area = std::numeric_limits<double>::max();
    int best_index = -1;
    int best_cycles_after = current_cycles;
    for (std::size_t c = 0; c < candidates.size(); ++c) {
      const int gain = current_cycles - cycles_after[c];
      if (gain <= 0) continue;
      if (better_candidate(gain, candidates[c].eval.area, best_gain,
                           best_area)) {
        best_gain = gain;
        best_area = candidates[c].eval.area;
        best_index = static_cast<int>(c);
        best_cycles_after = cycles_after[c];
      }
    }
    if (best_index < 0) break;  // no valid operation left (§4.0 step 3)

    const IseCandidate& winner = candidates[static_cast<std::size_t>(best_index)];
    ExploredIse record;
    record.original_nodes.resize(block.num_nodes());
    winner.members.for_each([&](dfg::NodeId m) {
      record.original_nodes |= origin[m];
      const dfg::Node& n = current.node(m);
      record.member_labels.push_back(
          n.label.empty() ? std::string(isa::mnemonic(n.opcode)) : n.label);
    });
    record.eval = winner.eval;
    record.in_count = winner.in_count;
    record.out_count = winner.out_count;
    record.gain_cycles = best_gain;
    result.ises.push_back(std::move(record));

    // Re-derive the collapse with the origin mapping and advance the round.
    std::vector<dfg::NodeId> old_to_new;
    dfg::IseInfo info;
    info.latency_cycles = winner.eval.latency_cycles;
    info.area = winner.eval.area;
    info.num_inputs = winner.in_count;
    info.num_outputs = winner.out_count;
    dfg::Graph next = current.collapse(winner.members, info, &old_to_new);

    std::vector<dfg::NodeSet> next_origin(next.num_nodes());
    for (auto& s : next_origin) s.resize(block.num_nodes());
    for (dfg::NodeId v = 0; v < current.num_nodes(); ++v)
      next_origin[old_to_new[v]] |= origin[v];

    current = std::move(next);
    origin = std::move(next_origin);
    current_cycles = best_cycles_after;
  }

  result.final_cycles = current_cycles;
  return result;
}

ExplorationResult MultiIssueExplorer::explore_best_of(const dfg::Graph& block,
                                                      int repeats,
                                                      Rng& rng) const {
  ISEX_ASSERT(repeats >= 1);
  // Deterministic fan-out (§5.1 best-of-5): child streams are derived
  // serially in repeat order — exactly what a serial loop of rng.split()
  // calls would do — then the repeats run concurrently and the best-of
  // reduction walks the attempts back in repeat order.  Same seed, same
  // result, any thread count.
  runtime::ThreadPool& pool = runtime::ThreadPool::default_pool();
  std::vector<ExplorationResult> attempts = runtime::deterministic_fanout(
      pool, rng, static_cast<std::size_t>(repeats),
      [&](std::size_t, Rng& child) { return explore(block, child); },
      /*section=*/"explore.best_of");
  return pick_best(std::move(attempts));
}

ExplorationResult MultiIssueExplorer::pick_best(
    std::vector<ExplorationResult> attempts) {
  ISEX_ASSERT(!attempts.empty());
  std::size_t best = 0;
  for (std::size_t r = 1; r < attempts.size(); ++r) {
    const bool better =
        attempts[r].final_cycles < attempts[best].final_cycles ||
        (attempts[r].final_cycles == attempts[best].final_cycles &&
         attempts[r].total_area() < attempts[best].total_area());
    if (better) best = r;
  }
  return std::move(attempts[best]);
}

}  // namespace isex::core
