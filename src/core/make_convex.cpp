#include "core/make_convex.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace isex::core {
namespace {

/// Finds an outside node lying on a member-to-member path, or kInvalidNode.
dfg::NodeId find_violator(const dfg::Graph& graph, const dfg::NodeSet& s,
                          const dfg::Reachability& reach) {
  const std::vector<dfg::NodeId> members = s.to_vector();
  for (dfg::NodeId w = 0; w < graph.num_nodes(); ++w) {
    if (s.contains(w)) continue;
    bool below = false;
    bool above = false;
    for (const dfg::NodeId m : members) {
      below = below || reach.reaches(m, w);
      above = above || reach.reaches(w, m);
      if (below && above) return w;
    }
  }
  return dfg::kInvalidNode;
}

void split_recursive(const dfg::Graph& graph, dfg::NodeSet piece,
                     const dfg::Reachability& reach,
                     std::vector<dfg::NodeSet>& out) {
  if (piece.empty()) return;
  const dfg::NodeId w = find_violator(graph, piece, reach);
  if (w == dfg::kInvalidNode) {
    // Convex; emit connected pieces.
    for (auto& comp : dfg::weakly_connected_components(graph, piece))
      out.push_back(std::move(comp));
    return;
  }
  // Cut the piece at the violator: members that reach w stay above, the rest
  // go below.  Both halves are strictly smaller (w connects at least one
  // member on each side), so recursion terminates.
  dfg::NodeSet above(piece.universe());
  dfg::NodeSet below(piece.universe());
  piece.for_each([&](dfg::NodeId m) {
    if (reach.reaches(m, w)) {
      above.insert(m);
    } else {
      below.insert(m);
    }
  });
  ISEX_ASSERT(!above.empty() && !below.empty());
  split_recursive(graph, std::move(above), reach, out);
  split_recursive(graph, std::move(below), reach, out);
}

}  // namespace

std::vector<dfg::NodeSet> make_convex(const dfg::Graph& graph,
                                      const dfg::NodeSet& cluster,
                                      const dfg::Reachability& reach) {
  std::vector<dfg::NodeSet> out;
  split_recursive(graph, cluster, reach, out);
  return out;
}

std::vector<dfg::NodeSet> legalize_ports(const dfg::Graph& graph,
                                         const dfg::NodeSet& piece,
                                         const isa::IsaFormat& format,
                                         const dfg::Reachability& reach) {
  dfg::NodeSet current = piece;
  auto violation = [&](const dfg::NodeSet& s) {
    const int in_over =
        std::max(0, dfg::count_inputs(graph, s) - format.max_ise_inputs());
    const int out_over =
        std::max(0, dfg::count_outputs(graph, s) - format.max_ise_outputs());
    return in_over + out_over;
  };

  while (violation(current) > 0 && current.count() > 1) {
    // Drop the member whose removal shrinks the violation the most; ties go
    // to the higher node id (later operations are cheaper to re-discover in
    // the next round).
    dfg::NodeId best = dfg::kInvalidNode;
    int best_violation = violation(current);
    current.for_each([&](dfg::NodeId m) {
      dfg::NodeSet without = current;
      without.erase(m);
      const int v = violation(without);
      if (best == dfg::kInvalidNode || v <= best_violation) {
        best = m;
        best_violation = v;
      }
    });
    ISEX_ASSERT(best != dfg::kInvalidNode);
    current.erase(best);
  }

  if (current.empty()) return {};
  // Removal may have broken connectivity or convexity: re-split, then filter
  // any piece that still violates ports (possible when a split re-exposes
  // interior values as outputs).
  std::vector<dfg::NodeSet> pieces = make_convex(graph, current, reach);
  std::vector<dfg::NodeSet> legal;
  for (auto& p : pieces) {
    if (dfg::count_inputs(graph, p) <= format.max_ise_inputs() &&
        dfg::count_outputs(graph, p) <= format.max_ise_outputs()) {
      legal.push_back(std::move(p));
    }
  }
  return legal;
}

}  // namespace isex::core
