// Hardware-Grouping (§4.3, Fig 4.3.6).
//
// For an operation x, the virtual ISE candidate vS_x is x together with
// every node reachable from it through nodes that chose a *hardware*
// implementation option in the previous iteration.  For each hardware option
// j of x, vS_{x,HW-j} is evaluated: combinational depth (critical path of the
// grouped cells), ASFU cycles, silicon area, and the legality signals the
// merit function consumes (I/O ports, convexity).
#pragma once

#include <span>
#include <vector>

#include "dfg/analysis.hpp"
#include "dfg/node_set.hpp"
#include "hwlib/gplus.hpp"
#include "isa/register_file.hpp"

namespace isex::core {

struct VirtualCandidate {
  dfg::NodeSet members;
  int in_count = 0;
  int out_count = 0;
  bool io_violation = false;
  bool convex_violation = false;
  /// True when even the fastest option mix exceeds the ISA's pipestage
  /// timing cap (IsaFormat::max_ise_latency_cycles).
  bool timing_violation = false;
  /// Multi-issue software execution time of the members: dependence depth in
  /// cycles (each member on its 1-cycle software option).
  double sw_depth_cycles = 0.0;
  /// Single-issue software execution time: Σ member software cycles.
  double sw_seq_cycles = 0.0;

  /// Evaluation of vS_{x,HW-j}; indexed like x's IO table (software slots
  /// unused).
  struct OptionEval {
    bool valid = false;
    double depth_ns = 0.0;
    int cycles = 1;
    double area = 0.0;
  };
  std::vector<OptionEval> per_option;

  std::size_t size() const { return members.count(); }
};

class HardwareGrouping {
 public:
  HardwareGrouping(const hw::GPlus& gplus, const isa::IsaFormat& format,
                   hw::ClockSpec clock = {});

  /// Builds and evaluates vS_x.  `prev_chosen[u]` is the option each node
  /// picked in the previous iteration (-1 before the first); nodes whose
  /// previous option is hardware are absorbed.  x itself is always a member.
  /// `reach` must belong to the same graph.
  VirtualCandidate group(dfg::NodeId x, std::span<const int> prev_chosen,
                         const dfg::Reachability& reach) const;

 private:
  const hw::GPlus* gplus_;
  isa::IsaFormat format_;
  hw::ClockSpec clock_;
};

}  // namespace isex::core
