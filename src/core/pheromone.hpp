// Trail (pheromone) and merit state of one exploration round.
//
// Both are (node × implementation-option) matrices over the round's G+.
// Trail counts *valid* choices — how often an option was picked in
// iterations that did not regress total execution time (Fig 4.3.5).  Merit
// is the domain heuristic recomputed each iteration (Fig 4.3.7).  The
// selected probability sp (Eq. 3) mixes the two per operation; convergence
// is "every operation has an option with sp > P_END".
#pragma once

#include <span>
#include <vector>

#include "core/explorer_params.hpp"
#include "dfg/node_set.hpp"
#include "hwlib/gplus.hpp"

namespace isex::core {

class PheromoneState {
 public:
  PheromoneState(const hw::GPlus& gplus, const ExplorerParams& params);

  std::size_t num_nodes() const { return trail_.size(); }
  std::size_t num_options(dfg::NodeId v) const { return trail_[v].size(); }

  double trail(dfg::NodeId v, std::size_t option) const;
  double merit(dfg::NodeId v, std::size_t option) const;

  /// Overwrites a trail entry, clamped into [0, params.trail_max] like
  /// update_trails does (used by the multi-colony merge reduction).
  void set_trail(dfg::NodeId v, std::size_t option, double value);
  void set_merit(dfg::NodeId v, std::size_t option, double value);
  void scale_merit(dfg::NodeId v, std::size_t option, double factor);

  /// Renormalizes node v's merits so its best option carries
  /// params.merit_scale (paper step 8's normalization); preserves ratios.
  void normalize_merit(dfg::NodeId v);

  /// Trail update after an iteration (Fig 4.3.5).
  /// `chosen[v]` is the option each node used; `reordered[v]` is true when v
  /// ran earlier in the pick order than in the previous iteration.
  void update_trails(std::span<const int> chosen,
                     const std::vector<bool>& reordered, bool improved);

  /// Selected probability of `option` at node v (Eq. 3).
  double selected_probability(dfg::NodeId v, std::size_t option) const;

  /// Option with maximal sp at node v (the *taken* option once converged).
  std::size_t best_option(dfg::NodeId v) const;

  /// True when every node has an option with sp > params.p_end.
  bool converged() const;

  /// Fraction of nodes whose best option already exceeds P_END (1.0 at
  /// convergence; diagnostic for the trace).
  double converged_fraction() const;

  /// Mean over nodes of the normalized Shannon entropy of the selected-
  /// probability distribution: 1.0 = every decision still uniform, 0.0 =
  /// every decision collapsed onto one option (telemetry diagnostic).
  double decision_entropy() const;

  /// The binding convergence quantity: min over multi-option nodes of the
  /// best option's selected probability.  converged() iff this > p_end;
  /// 1.0 when every node has a single option.
  double min_best_probability() const;

  /// Raw chosen-probability numerator (Eq. 1 numerator, without SP):
  /// α·trail + (1−α)·merit.
  double weight(dfg::NodeId v, std::size_t option) const;

  /// Writes weight(v, o) for every option o of node v into `out`
  /// (out.size() must equal num_options(v)).  The ant-walk hot path calls
  /// this once per node per walk to build its flattened weight table — trail
  /// and merit are const during a walk — instead of calling weight() for
  /// every ready entry on every step.
  void weights_into(dfg::NodeId v, std::span<double> out) const;

 private:
  const ExplorerParams* params_;
  std::vector<std::vector<double>> trail_;
  std::vector<std::vector<double>> merit_;
};

/// Deterministic reduction of K colonies' pheromone states at a merge
/// barrier (multi-colony search, docs/PERFORMANCE.md).
///
/// Colonies submit in *any* completion order — the accumulator stores each
/// contribution in its colony's slot and finalize_into() walks the slots in
/// ascending colony-index order, so the merged state is a pure function of
/// the indexed contributions and bit-identical at any thread count or
/// arrival permutation (pinned by PheromoneMergerTest).
///
/// Merge semantics per (node, option):
///   trail' = clamp((1 - merge_evaporation) * mean_c(trail_c), 0, trail_max)
///            + rho1 deposited on the winning colony's best-ant option
///            (winner = lowest best-TET, ties to the lowest colony index);
///   merit' = mean_c(merit_c), renormalized per node to merit_scale.
class PheromoneMerger {
 public:
  PheromoneMerger(std::size_t num_colonies, const ExplorerParams& params);

  /// Registers colony `colony`'s contribution.  `state` and `best_chosen`
  /// must stay alive until finalize_into(); `best_chosen[v]` is the option
  /// the colony's best ant (TET `best_tet`) chose at node v.
  void submit(std::size_t colony, const PheromoneState& state, int best_tet,
              std::span<const int> best_chosen);

  /// Colony index winning the best-ant deposit.  All slots must be filled.
  std::size_t winner() const;

  /// Index-ordered reduction into `out` (shape must match the sources).
  void finalize_into(PheromoneState& out) const;

 private:
  struct Slot {
    const PheromoneState* state = nullptr;
    int best_tet = 0;
    std::span<const int> best_chosen;
  };
  const ExplorerParams* params_;
  std::vector<Slot> slots_;
};

}  // namespace isex::core
