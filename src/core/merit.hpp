// Merit function (§4.3, Fig 4.3.7).
//
// After every iteration each implementation option's merit is recomputed
// from the neighbourhood the previous iteration left behind:
//   software options: merit ×= software execution time (Eq. "3", software part);
//   hardware options, four cases:
//     1. operation on the critical path           → boost (÷ βCP)
//     2. vS_x is a singleton                      → decay (× βSize)
//     3. vS_x violates I/O or convexity           → decay (× βIO / × βConvex)
//     4. legal and useful                         → × cycle saving, then an
//        area-aware adjustment: on the critical path the fastest option wins
//        (smaller area breaking ties); off it, any option fitting inside the
//        Max_AEC slack window wins with the smallest area.
// Finally the node's merits are renormalized (paper step 8).
#pragma once

#include <span>

#include "core/explorer_params.hpp"
#include "core/hardware_grouping.hpp"
#include "core/pheromone.hpp"
#include "dfg/analysis.hpp"
#include "hwlib/gplus.hpp"
#include "isa/register_file.hpp"

namespace isex::core {

/// Everything the merit update reads from the last iteration.
struct MeritInputs {
  /// Option each node chose in the iteration just finished.
  std::span<const int> chosen;
  /// Nodes on the schedule's critical path.
  const dfg::NodeSet* critical = nullptr;
  /// Dependence ASAP/ALAP levels with software latencies (for Max_AEC).
  const dfg::PathInfo* path = nullptr;
  /// Total execution time of the iteration's schedule, cycles.
  int tet = 0;
};

class MeritEngine {
 public:
  MeritEngine(const hw::GPlus& gplus, const isa::IsaFormat& format,
              const ExplorerParams& params, hw::ClockSpec clock = {});

  /// Recomputes merits for every node/option in place.
  void update(PheromoneState& pheromone, const MeritInputs& inputs,
              const dfg::Reachability& reach) const;

  /// Max_AEC (Fig 4.3.8): the execution window, in cycles, available to the
  /// candidate without stretching the schedule — from the members' earliest
  /// possible start to their latest allowed finish within `tet` cycles.
  static double max_allowable_cycles(const dfg::Graph& graph,
                                     const dfg::NodeSet& members,
                                     const dfg::PathInfo& path, int tet);

 private:
  const hw::GPlus* gplus_;
  isa::IsaFormat format_;
  const ExplorerParams* params_;
  hw::ClockSpec clock_;
};

}  // namespace isex::core
