#include "core/hardware_grouping.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace isex::core {

HardwareGrouping::HardwareGrouping(const hw::GPlus& gplus,
                                   const isa::IsaFormat& format,
                                   hw::ClockSpec clock)
    : gplus_(&gplus), format_(format), clock_(clock) {}

VirtualCandidate HardwareGrouping::group(dfg::NodeId x,
                                         std::span<const int> prev_chosen,
                                         const dfg::Reachability& reach) const {
  const dfg::Graph& graph = gplus_->graph();
  const std::size_t n = graph.num_nodes();
  ISEX_ASSERT(prev_chosen.size() == n);
  ISEX_ASSERT(x < n);

  VirtualCandidate cand;
  cand.members.resize(n);

  auto chose_hardware = [&](dfg::NodeId u) {
    const int o = prev_chosen[u];
    return o >= 0 && gplus_->table(u).is_hardware(static_cast<std::size_t>(o));
  };

  // Grow the hardware cluster around x (x joins unconditionally).
  std::vector<dfg::NodeId> stack{x};
  cand.members.insert(x);
  while (!stack.empty()) {
    const dfg::NodeId v = stack.back();
    stack.pop_back();
    auto visit = [&](dfg::NodeId u) {
      if (!cand.members.contains(u) && chose_hardware(u)) {
        cand.members.insert(u);
        stack.push_back(u);
      }
    };
    for (const dfg::NodeId u : graph.succs(v)) visit(u);
    for (const dfg::NodeId u : graph.preds(v)) visit(u);
  }

  cand.in_count = dfg::count_inputs(graph, cand.members);
  cand.out_count = dfg::count_outputs(graph, cand.members);
  cand.io_violation = cand.in_count > format_.max_ise_inputs() ||
                      cand.out_count > format_.max_ise_outputs();
  cand.convex_violation = !dfg::is_convex(graph, cand.members, reach);

  // Software reference times.
  cand.sw_depth_cycles = dfg::induced_critical_path(
      graph, cand.members,
      [&](dfg::NodeId v) { return gplus_->software_cycles(v); });
  cand.members.for_each([&](dfg::NodeId v) {
    cand.sw_seq_cycles += gplus_->software_cycles(v);
  });

  // Evaluate vS_{x,HW-j} for each hardware option j of x.  Other members use
  // the hardware option they chose previously; a member whose previous
  // option index is software cannot occur (membership requires hardware).
  const hw::IoTable& x_table = gplus_->table(x);
  cand.per_option.resize(x_table.size());
  for (std::size_t j = 0; j < x_table.size(); ++j) {
    if (!x_table.is_hardware(j)) continue;
    auto delay_of = [&](dfg::NodeId v) {
      const std::size_t o = (v == x) ? j : static_cast<std::size_t>(prev_chosen[v]);
      return gplus_->table(v).option(o).delay;
    };
    VirtualCandidate::OptionEval eval;
    eval.valid = true;
    eval.depth_ns = dfg::induced_critical_path(graph, cand.members, delay_of);
    eval.cycles = clock_.cycles_for(eval.depth_ns);
    double area = 0.0;
    cand.members.for_each([&](dfg::NodeId v) {
      const std::size_t o = (v == x) ? j : static_cast<std::size_t>(prev_chosen[v]);
      area += gplus_->table(v).option(o).area;
    });
    eval.area = area;
    cand.per_option[j] = eval;
  }
  if (format_.max_ise_latency_cycles > 0) {
    int best_cycles = -1;
    for (const auto& eval : cand.per_option) {
      if (eval.valid && (best_cycles < 0 || eval.cycles < best_cycles))
        best_cycles = eval.cycles;
    }
    cand.timing_violation =
        best_cycles > format_.max_ise_latency_cycles;
  }
  return cand;
}

}  // namespace isex::core
