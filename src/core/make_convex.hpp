// Make-Convex and port legalization (§4.3).
//
// After convergence the taken hardware operations form clusters that may
// violate the §4.2 constraints.  Make-Convex repeatedly divides a non-convex
// cluster into smaller ones until every piece is convex; port legalization
// trims members from a piece whose IN(S)/OUT(S) exceed the register-file
// ports.  Both return candidate pieces of size ≥ 1; callers discard
// singletons.
#pragma once

#include <vector>

#include "dfg/analysis.hpp"
#include "dfg/node_set.hpp"
#include "isa/register_file.hpp"

namespace isex::core {

/// Splits `cluster` into convex, weakly-connected pieces.
std::vector<dfg::NodeSet> make_convex(const dfg::Graph& graph,
                                      const dfg::NodeSet& cluster,
                                      const dfg::Reachability& reach);

/// Greedily removes members until IN(S) ≤ Nin and OUT(S) ≤ Nout, then
/// re-splits into connected convex pieces (removal can disconnect or even
/// un-convex a piece).  Pieces returned satisfy all §4.2 constraints.
std::vector<dfg::NodeSet> legalize_ports(const dfg::Graph& graph,
                                         const dfg::NodeSet& piece,
                                         const isa::IsaFormat& format,
                                         const dfg::Reachability& reach);

}  // namespace isex::core
