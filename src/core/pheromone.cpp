#include "core/pheromone.hpp"

#include <algorithm>
#include <cmath>

#include "util/assert.hpp"

namespace isex::core {

PheromoneState::PheromoneState(const hw::GPlus& gplus,
                               const ExplorerParams& params)
    : params_(&params) {
  const std::size_t n = gplus.graph().num_nodes();
  trail_.resize(n);
  merit_.resize(n);
  for (dfg::NodeId v = 0; v < n; ++v) {
    const hw::IoTable& table = gplus.table(v);
    trail_[v].assign(table.size(), params.initial_trail);
    merit_[v].resize(table.size());
    for (std::size_t o = 0; o < table.size(); ++o) {
      merit_[v][o] = table.is_hardware(o) ? params.initial_merit_hardware
                                          : params.initial_merit_software;
    }
  }
}

double PheromoneState::trail(dfg::NodeId v, std::size_t option) const {
  ISEX_ASSERT(v < trail_.size() && option < trail_[v].size());
  return trail_[v][option];
}

double PheromoneState::merit(dfg::NodeId v, std::size_t option) const {
  ISEX_ASSERT(v < merit_.size() && option < merit_[v].size());
  return merit_[v][option];
}

void PheromoneState::set_trail(dfg::NodeId v, std::size_t option,
                               double value) {
  ISEX_ASSERT(v < trail_.size() && option < trail_[v].size());
  trail_[v][option] = std::clamp(value, 0.0, params_->trail_max);
}

void PheromoneState::set_merit(dfg::NodeId v, std::size_t option, double value) {
  ISEX_ASSERT(v < merit_.size() && option < merit_[v].size());
  merit_[v][option] = std::max(value, 0.0);
}

void PheromoneState::scale_merit(dfg::NodeId v, std::size_t option,
                                 double factor) {
  ISEX_ASSERT(v < merit_.size() && option < merit_[v].size());
  ISEX_ASSERT(factor >= 0.0);
  merit_[v][option] *= factor;
}

void PheromoneState::normalize_merit(dfg::NodeId v) {
  ISEX_ASSERT(v < merit_.size());
  double best = 0.0;
  for (const double m : merit_[v]) best = std::max(best, m);
  if (best <= 0.0) {
    // Degenerate (all merits decayed away): reset to a uniform floor so the
    // ant can still make a choice.
    for (double& m : merit_[v]) m = params_->merit_scale;
    return;
  }
  const double factor = params_->merit_scale / best;
  // Keep a tiny floor so no option's probability hits exactly zero — the
  // paper argues excluded options may become optimal later (case 3 note).
  constexpr double kFloor = 1e-6;
  for (double& m : merit_[v]) m = std::max(m * factor, kFloor);
}

void PheromoneState::update_trails(std::span<const int> chosen,
                                   const std::vector<bool>& reordered,
                                   bool improved) {
  ISEX_ASSERT(chosen.size() == trail_.size());
  ISEX_ASSERT(reordered.size() == trail_.size());
  const ExplorerParams& p = *params_;
  for (dfg::NodeId v = 0; v < trail_.size(); ++v) {
    for (std::size_t o = 0; o < trail_[v].size(); ++o) {
      double t = trail_[v][o];
      const bool was_chosen = chosen[v] == static_cast<int>(o);
      if (improved) {
        t += was_chosen ? p.rho1 : -p.rho2;
      } else {
        t += was_chosen ? -p.rho3 : p.rho4;
        if (reordered[v]) t -= p.rho5;
      }
      trail_[v][o] = std::clamp(t, 0.0, p.trail_max);
    }
  }
}

double PheromoneState::weight(dfg::NodeId v, std::size_t option) const {
  const ExplorerParams& p = *params_;
  return p.alpha * trail(v, option) + (1.0 - p.alpha) * merit(v, option);
}

void PheromoneState::weights_into(dfg::NodeId v, std::span<double> out) const {
  ISEX_ASSERT(v < trail_.size() && out.size() == trail_[v].size());
  const ExplorerParams& p = *params_;
  const std::vector<double>& trail = trail_[v];
  const std::vector<double>& merit = merit_[v];
  // Same expression as weight() so the precomputed table is bit-identical
  // to the per-step evaluation it replaces.
  for (std::size_t o = 0; o < out.size(); ++o)
    out[o] = p.alpha * trail[o] + (1.0 - p.alpha) * merit[o];
}

double PheromoneState::selected_probability(dfg::NodeId v,
                                            std::size_t option) const {
  double denom = 0.0;
  for (std::size_t o = 0; o < trail_[v].size(); ++o) denom += weight(v, o);
  if (denom <= 0.0) return 1.0 / static_cast<double>(trail_[v].size());
  return weight(v, option) / denom;
}

std::size_t PheromoneState::best_option(dfg::NodeId v) const {
  ISEX_ASSERT(v < trail_.size() && !trail_[v].empty());
  std::size_t best = 0;
  for (std::size_t o = 1; o < trail_[v].size(); ++o) {
    if (weight(v, o) > weight(v, best)) best = o;
  }
  return best;
}

bool PheromoneState::converged() const {
  for (dfg::NodeId v = 0; v < trail_.size(); ++v) {
    if (trail_[v].size() <= 1) continue;  // single option: trivially decided
    const std::size_t best = best_option(v);
    if (selected_probability(v, best) <= params_->p_end) return false;
  }
  return true;
}

double PheromoneState::decision_entropy() const {
  if (trail_.empty()) return 0.0;
  double total = 0.0;
  for (dfg::NodeId v = 0; v < trail_.size(); ++v) {
    const std::size_t options = trail_[v].size();
    if (options <= 1) continue;  // single option: zero entropy
    double h = 0.0;
    for (std::size_t o = 0; o < options; ++o) {
      const double p = selected_probability(v, o);
      if (p > 0.0) h -= p * std::log2(p);
    }
    total += h / std::log2(static_cast<double>(options));
  }
  return total / static_cast<double>(trail_.size());
}

double PheromoneState::min_best_probability() const {
  double min_p = 1.0;
  for (dfg::NodeId v = 0; v < trail_.size(); ++v) {
    if (trail_[v].size() <= 1) continue;
    min_p = std::min(min_p, selected_probability(v, best_option(v)));
  }
  return min_p;
}

PheromoneMerger::PheromoneMerger(std::size_t num_colonies,
                                 const ExplorerParams& params)
    : params_(&params), slots_(num_colonies) {
  ISEX_ASSERT(num_colonies >= 1);
}

void PheromoneMerger::submit(std::size_t colony, const PheromoneState& state,
                             int best_tet,
                             std::span<const int> best_chosen) {
  ISEX_ASSERT(colony < slots_.size());
  ISEX_ASSERT(slots_[colony].state == nullptr);  // one contribution per slot
  ISEX_ASSERT(best_chosen.size() == state.num_nodes());
  slots_[colony] = Slot{&state, best_tet, best_chosen};
}

std::size_t PheromoneMerger::winner() const {
  std::size_t best = 0;
  for (std::size_t c = 0; c < slots_.size(); ++c) {
    ISEX_ASSERT(slots_[c].state != nullptr);
    if (slots_[c].best_tet < slots_[best].best_tet) best = c;
  }
  return best;
}

void PheromoneMerger::finalize_into(PheromoneState& out) const {
  const ExplorerParams& p = *params_;
  const std::size_t k = slots_.size();
  const double inv_k = 1.0 / static_cast<double>(k);
  const double keep = 1.0 - p.merge_evaporation;
  const Slot& best = slots_[winner()];
  for (dfg::NodeId v = 0; v < out.num_nodes(); ++v) {
    const std::size_t options = out.num_options(v);
    for (std::size_t o = 0; o < options; ++o) {
      // Sums run in ascending colony-index order; with FP addition being
      // order-sensitive this is what makes the merge a pure function of the
      // indexed contributions rather than of completion order.
      double trail_sum = 0.0;
      double merit_sum = 0.0;
      for (std::size_t c = 0; c < k; ++c) {
        trail_sum += slots_[c].state->trail(v, o);
        merit_sum += slots_[c].state->merit(v, o);
      }
      double trail = keep * trail_sum * inv_k;
      if (best.best_chosen[v] == static_cast<int>(o)) trail += p.rho1;
      out.set_trail(v, o, trail);
      out.set_merit(v, o, merit_sum * inv_k);
    }
    out.normalize_merit(v);
  }
}

double PheromoneState::converged_fraction() const {
  if (trail_.empty()) return 1.0;
  std::size_t done = 0;
  for (dfg::NodeId v = 0; v < trail_.size(); ++v) {
    if (trail_[v].size() <= 1 ||
        selected_probability(v, best_option(v)) > params_->p_end)
      ++done;
  }
  return static_cast<double>(done) / static_cast<double>(trail_.size());
}

}  // namespace isex::core
