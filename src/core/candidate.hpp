// ISE candidate extraction from a converged round.
//
// An ISE is a set of connected/reachable operations whose *taken*
// implementation option is hardware (§4.3).  Extraction takes the per-node
// taken options, forms the hardware clusters, applies Make-Convex and port
// legalization, and evaluates each surviving piece's ASFU.
#pragma once

#include <span>
#include <vector>

#include "dfg/analysis.hpp"
#include "dfg/node_set.hpp"
#include "hwlib/asfu.hpp"
#include "hwlib/gplus.hpp"
#include "isa/register_file.hpp"

namespace isex::core {

struct IseCandidate {
  /// Members, in the coordinates of the round's graph.
  dfg::NodeSet members;
  /// IO-table option index per node (only members meaningful).
  std::vector<int> option;
  hw::AsfuEvaluation eval;
  int in_count = 0;
  int out_count = 0;

  std::size_t size() const { return members.count(); }
};

/// Extracts all legal candidates (size ≥ 2) implied by `taken`.
std::vector<IseCandidate> extract_candidates(const hw::GPlus& gplus,
                                             const isa::IsaFormat& format,
                                             std::span<const int> taken,
                                             const dfg::Reachability& reach,
                                             hw::ClockSpec clock = {});

}  // namespace isex::core
