#include "core/candidate.hpp"

#include <limits>
#include <span>

#include "core/make_convex.hpp"
#include "util/assert.hpp"

namespace isex::core {
namespace {

/// Enforces the pipestage timing cap by shedding the member that most
/// reduces the datapath depth until the ASFU fits (then re-splits, since
/// removal can break connectivity or convexity).
std::vector<dfg::NodeSet> legalize_timing(const hw::GPlus& gplus,
                                          dfg::NodeSet piece,
                                          std::span<const int> taken,
                                          int max_latency_cycles,
                                          const dfg::Reachability& reach,
                                          hw::ClockSpec clock) {
  const dfg::Graph& graph = gplus.graph();
  auto depth_of = [&](const dfg::NodeSet& s) {
    return dfg::induced_critical_path(graph, s, [&](dfg::NodeId v) {
      return gplus.table(v)
          .option(static_cast<std::size_t>(taken[v]))
          .delay;
    });
  };
  while (piece.count() > 1 &&
         clock.cycles_for(depth_of(piece)) > max_latency_cycles) {
    dfg::NodeId best = dfg::kInvalidNode;
    double best_depth = std::numeric_limits<double>::max();
    piece.for_each([&](dfg::NodeId m) {
      dfg::NodeSet without = piece;
      without.erase(m);
      const double d = depth_of(without);
      if (d < best_depth) {
        best_depth = d;
        best = m;
      }
    });
    ISEX_ASSERT(best != dfg::kInvalidNode);
    piece.erase(best);
  }
  if (clock.cycles_for(depth_of(piece)) > max_latency_cycles) return {};
  return make_convex(graph, piece, reach);
}

}  // namespace

std::vector<IseCandidate> extract_candidates(const hw::GPlus& gplus,
                                             const isa::IsaFormat& format,
                                             std::span<const int> taken,
                                             const dfg::Reachability& reach,
                                             hw::ClockSpec clock) {
  const dfg::Graph& graph = gplus.graph();
  const std::size_t n = graph.num_nodes();
  ISEX_ASSERT(taken.size() == n);

  dfg::NodeSet hardware_set(n);
  for (dfg::NodeId v = 0; v < n; ++v) {
    const int o = taken[v];
    if (o >= 0 && gplus.table(v).is_hardware(static_cast<std::size_t>(o)))
      hardware_set.insert(v);
  }

  std::vector<IseCandidate> out;
  for (const dfg::NodeSet& cluster :
       dfg::weakly_connected_components(graph, hardware_set)) {
    for (const dfg::NodeSet& convex_piece : make_convex(graph, cluster, reach)) {
      for (dfg::NodeSet& port_piece :
           legalize_ports(graph, convex_piece, format, reach)) {
        std::vector<dfg::NodeSet> timed_pieces;
        if (format.max_ise_latency_cycles > 0) {
          timed_pieces = legalize_timing(gplus, std::move(port_piece), taken,
                                         format.max_ise_latency_cycles, reach,
                                         clock);
        } else {
          timed_pieces.push_back(std::move(port_piece));
        }
        for (dfg::NodeSet& piece : timed_pieces) {
          if (piece.count() < 2) continue;  // singleton cannot win a cycle
          // Timing trimming can re-expose port pressure; re-verify.
          if (dfg::count_inputs(graph, piece) > format.max_ise_inputs() ||
              dfg::count_outputs(graph, piece) > format.max_ise_outputs())
            continue;
          IseCandidate cand;
          cand.members = std::move(piece);
          cand.option.assign(taken.begin(), taken.end());
          cand.eval =
              hw::evaluate_asfu(gplus, cand.members, cand.option, clock);
          cand.in_count = dfg::count_inputs(graph, cand.members);
          cand.out_count = dfg::count_outputs(graph, cand.members);
          out.push_back(std::move(cand));
        }
      }
    }
  }
  return out;
}

}  // namespace isex::core
