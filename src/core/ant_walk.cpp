#include "core/ant_walk.hpp"

#include <algorithm>
#include <cmath>

#include "isa/opcode.hpp"
#include "sched/schedule.hpp"
#include "trace/trace.hpp"
#include "util/assert.hpp"

namespace isex::core {
namespace {

/// Ledger view over the scratch-owned per-cycle rows.  Construction
/// zero-fills the retained rows instead of deallocating them.
class Ledger {
 public:
  Ledger(const sched::MachineConfig& cfg, std::vector<LedgerRow>& rows)
      : cfg_(&cfg), rows_(&rows) {
    std::fill(rows.begin(), rows.end(), LedgerRow{});
  }

  LedgerRow& at(int cycle) {
    ISEX_ASSERT(cycle >= 0);
    if (static_cast<std::size_t>(cycle) >= rows_->size())
      rows_->resize(static_cast<std::size_t>(cycle) + 1);
    return (*rows_)[static_cast<std::size_t>(cycle)];
  }

  bool fits(int cycle, int issue, int reads, int writes, int fu_class) {
    const LedgerRow& r = at(cycle);
    if (r.issue + issue > cfg_->issue_width) return false;
    if (r.reads + reads > cfg_->reg_file.read_ports) return false;
    if (r.writes + writes > cfg_->reg_file.write_ports) return false;
    if (fu_class >= 0 &&
        r.fu[static_cast<std::size_t>(fu_class)] + 1 >
            cfg_->fu_counts[static_cast<std::size_t>(fu_class)])
      return false;
    return true;
  }

  void charge(int cycle, int issue, int reads, int writes, int fu_class) {
    LedgerRow& r = at(cycle);
    r.issue += issue;
    r.reads += reads;
    r.writes += writes;
    if (fu_class >= 0) r.fu[static_cast<std::size_t>(fu_class)] += 1;
  }

 private:
  const sched::MachineConfig* cfg_;
  std::vector<LedgerRow>* rows_;
};

int software_cycles(const hw::IoTable& table, std::size_t option) {
  return std::max(1, static_cast<int>(std::ceil(table.option(option).delay)));
}

}  // namespace

int WalkResult::finish_of(dfg::NodeId v) const {
  ISEX_ASSERT(v < finish_.size());
  if (group_id[v] >= 0) {
    const GroupState& g = groups[static_cast<std::size_t>(group_id[v])];
    return g.start + g.cycles;
  }
  return finish_[v];
}

AntWalk::AntWalk(const hw::GPlus& gplus, const sched::MachineConfig& machine,
                 const ExplorerParams& params, hw::ClockSpec clock)
    : gplus_(&gplus),
      machine_(machine),
      params_(&params),
      clock_(clock),
      walks_metric_(&trace::MetricsRegistry::global().counter(
          "isex_ant_walks_total")),
      tet_metric_(&trace::MetricsRegistry::global().histogram(
          "isex_ant_walk_tet_cycles", {4, 8, 16, 32, 64, 128, 256, 512})) {}

const WalkResult& AntWalk::run(const PheromoneState& pheromone,
                               std::span<const double> sp_score, Rng& rng,
                               WalkScratch& s) const {
  const trace::Span span("ant_walk");
  const dfg::Graph& graph = gplus_->graph();
  const std::size_t n = graph.num_nodes();
  ISEX_ASSERT(sp_score.size() == n);

  WalkResult& result = s.result;
  // Recycle the previous walk's group storage: the NodeSet word buffers move
  // into the stash and come back via open_group(), so growing a group never
  // re-allocates once the scratch has seen the walk's high-water sizes.
  for (GroupState& g : result.groups) s.group_stash.push_back(std::move(g));
  result.groups.clear();
  result.chosen.assign(n, -1);
  result.slot.assign(n, -1);
  result.order.assign(n, -1);
  result.group_id.assign(n, -1);
  result.finish_.assign(n, 0);
  result.tet = 0;
  s.steps = 0;
  s.entry_shifts = 0;
  s.max_entries = 0;
  if (n == 0) return result;

  Ledger ledger(machine_, s.ledger_rows);
  s.hw_depth.assign(n, 0.0);
  std::vector<double>& hw_depth = s.hw_depth;

  s.unresolved.resize(n);
  for (dfg::NodeId v = 0; v < n; ++v)
    s.unresolved[v] = static_cast<int>(graph.preds(v).size());

  // Per-walk weight table: trail and merit are const for the duration of a
  // walk, so the Eq. 1 numerator + λ·SP of every (node, option) pair is
  // computed once here — O(n × options) — instead of for every ready entry
  // on every step (O(steps × ready × options)).
  s.weight_offset.resize(n);
  std::int32_t total_options = 0;
  for (dfg::NodeId v = 0; v < n; ++v) {
    s.weight_offset[v] = total_options;
    total_options += static_cast<std::int32_t>(gplus_->table(v).size());
  }
  s.base_weight.resize(static_cast<std::size_t>(total_options));
  for (dfg::NodeId v = 0; v < n; ++v) {
    const std::span<double> row(
        s.base_weight.data() + s.weight_offset[v], gplus_->table(v).size());
    pheromone.weights_into(v, row);
    const double sp_bias = params_->lambda * sp_score[v];
    for (double& w : row) w += sp_bias;
  }

  // Incremental Ready-Matrix: entries append when a node becomes ready and
  // compact out in place when it schedules.  Surviving entries keep their
  // relative order, so rng.weighted_pick sees exactly the weight sequence a
  // per-step rebuild over the ready list would produce.
  s.entries.clear();
  s.weights.clear();
  s.entry_pos.assign(n, -1);
  auto enter_ready = [&](dfg::NodeId v) {
    s.entry_pos[v] = static_cast<std::int32_t>(s.entries.size());
    const std::size_t options = gplus_->table(v).size();
    const double* row = s.base_weight.data() + s.weight_offset[v];
    for (std::size_t o = 0; o < options; ++o) {
      s.entries.emplace_back(v, static_cast<int>(o));
      s.weights.push_back(row[o]);
    }
    s.max_entries =
        std::max(s.max_entries, static_cast<std::uint64_t>(s.entries.size()));
  };
  auto leave_ready = [&](dfg::NodeId v) {
    const auto pos = static_cast<std::size_t>(s.entry_pos[v]);
    const std::size_t len = gplus_->table(v).size();
    s.entries.erase(s.entries.begin() + static_cast<std::ptrdiff_t>(pos),
                    s.entries.begin() + static_cast<std::ptrdiff_t>(pos + len));
    s.weights.erase(s.weights.begin() + static_cast<std::ptrdiff_t>(pos),
                    s.weights.begin() + static_cast<std::ptrdiff_t>(pos + len));
    s.entry_pos[v] = -1;
    s.entry_shifts += s.entries.size() - pos;
    // Re-anchor the first-entry index of every node whose entries shifted.
    dfg::NodeId prev = dfg::kInvalidNode;
    for (std::size_t i = pos; i < s.entries.size(); ++i) {
      const dfg::NodeId u = s.entries[i].first;
      if (u != prev) {
        s.entry_pos[u] = static_cast<std::int32_t>(i);
        prev = u;
      }
    }
  };
  for (dfg::NodeId v = 0; v < n; ++v)
    if (s.unresolved[v] == 0) enter_ready(v);

  for (std::vector<int>& ids : s.group_extern_ids) ids.clear();

  auto finish_of = [&](dfg::NodeId v) { return result.finish_of(v); };

  // Pooled group construction: reuses a stashed GroupState (and its NodeSet
  // capacity) when one is available.
  auto open_group = [&]() -> GroupState {
    GroupState g;
    if (!s.group_stash.empty()) {
      g = std::move(s.group_stash.back());
      s.group_stash.pop_back();
    }
    g.members.resize(n);  // re-zeroes in place, keeps capacity
    g.start = 0;
    g.depth_ns = 0.0;
    g.cycles = 1;
    g.reads = 0;
    g.writes = 0;
    return g;
  };

  auto extern_ids_bucket = [&](int gid) -> std::vector<int>& {
    while (s.group_extern_ids.size() <= static_cast<std::size_t>(gid))
      s.group_extern_ids.emplace_back();
    return s.group_extern_ids[static_cast<std::size_t>(gid)];
  };

  // Attempts to pack `v` (with hardware option `opt`) into group `gid`.
  // IN/OUT are maintained incrementally: the delta of adding v follows from
  // v's own edges against the membership, with no NodeSet copy and no full
  // count_inputs/count_outputs recount over the group.
  auto try_join = [&](dfg::NodeId v, std::size_t opt, int gid) -> bool {
    GroupState& g = result.groups[static_cast<std::size_t>(gid)];
    // All producers outside the group must be done before the group issues.
    for (const dfg::NodeId p : graph.preds(v)) {
      if (!g.members.contains(p) && finish_of(p) > g.start) return false;
    }
    std::vector<int>& gext = extern_ids_bucket(gid);
    // ΔIN: predecessors of v that become new outside producers…
    int dr = 0;
    for (const dfg::NodeId p : graph.preds(v)) {
      if (g.members.contains(p)) continue;
      bool already_feeds = false;
      for (const dfg::NodeId c : graph.succs(p)) {
        if (g.members.contains(c)) {
          already_feeds = true;
          break;
        }
      }
      if (!already_feeds) ++dr;
    }
    // …plus v's live-in values the group does not consume yet…
    const std::span<const int> ids = graph.extern_input_ids(v);
    for (std::size_t i = 0; i < ids.size(); ++i) {
      if (std::find(gext.begin(), gext.end(), ids[i]) != gext.end()) continue;
      if (std::find(ids.begin(), ids.begin() + static_cast<std::ptrdiff_t>(i),
                    ids[i]) !=
          ids.begin() + static_cast<std::ptrdiff_t>(i))
        continue;  // duplicate among v's own operands
      ++dr;
    }
    // …minus v itself if it previously fed the group from outside.
    for (const dfg::NodeId c : graph.succs(v)) {
      if (g.members.contains(c)) {
        --dr;
        break;
      }
    }
    // ΔOUT: +1 if v's value escapes the grown group; -1 for each member
    // predecessor whose value stops escaping once v is inside.
    int dw = 0;
    bool v_escapes = graph.live_out(v);
    if (!v_escapes) {
      for (const dfg::NodeId c : graph.succs(v)) {
        if (!g.members.contains(c)) {
          v_escapes = true;
          break;
        }
      }
    }
    if (v_escapes) ++dw;
    for (const dfg::NodeId p : graph.preds(v)) {
      if (!g.members.contains(p) || graph.live_out(p)) continue;
      bool still_escapes = false;
      for (const dfg::NodeId c : graph.succs(p)) {
        if (c != v && !g.members.contains(c)) {
          still_escapes = true;
          break;
        }
      }
      if (!still_escapes) --dw;  // v was p's only consumer outside the group
    }
    if (!ledger.fits(g.start, 0, dr, dw, -1)) return false;

    // Commit.
    ledger.charge(g.start, 0, dr, dw, -1);
    g.members.insert(v);
    g.reads += dr;
    g.writes += dw;
    for (std::size_t i = 0; i < ids.size(); ++i) {
      if (std::find(gext.begin(), gext.end(), ids[i]) == gext.end())
        gext.push_back(ids[i]);
    }
    double depth_in = 0.0;
    for (const dfg::NodeId p : graph.preds(v)) {
      if (g.members.contains(p) && p != v)
        depth_in = std::max(depth_in, hw_depth[p]);
    }
    hw_depth[v] = depth_in + gplus_->table(v).option(opt).delay;
    g.depth_ns = std::max(g.depth_ns, hw_depth[v]);
    g.cycles = clock_.cycles_for(g.depth_ns);
    result.group_id[v] = gid;
    result.slot[v] = g.start;
    return true;
  };

  std::size_t scheduled = 0;
  int pick_index = 0;
  while (scheduled < n) {
    ISEX_ASSERT_MSG(!s.entries.empty(), "ready list empty before completion");
    const std::size_t pick = rng.weighted_pick(s.weights);
    const auto [v, opt_i] = s.entries[pick];
    const auto opt = static_cast<std::size_t>(opt_i);
    const hw::IoTable& table = gplus_->table(v);

    if (table.is_hardware(opt)) {
      // Fig 4.3.4: prefer the group of the parent scheduled latest (LP).
      s.parent_groups.clear();
      for (const dfg::NodeId p : graph.preds(v)) {
        const int gid = result.group_id[p];
        if (gid >= 0) s.parent_groups.emplace_back(finish_of(p), gid);
      }
      std::sort(s.parent_groups.begin(), s.parent_groups.end(),
                [](const auto& a, const auto& b) { return a.first > b.first; });
      bool placed = false;
      int last_gid = -1;
      for (const auto& [fin, gid] : s.parent_groups) {
        if (gid == last_gid) continue;
        last_gid = gid;
        if (try_join(v, opt, gid)) {
          placed = true;
          break;
        }
      }
      if (!placed) {
        // Open a fresh single-member group at the earliest feasible slot.
        int avail = 0;
        for (const dfg::NodeId p : graph.preds(v))
          avail = std::max(avail, finish_of(p));
        // IN({v})/OUT({v}) straight from v's edges: every predecessor is an
        // outside producer, plus v's distinct live-in values.
        int reads = static_cast<int>(graph.preds(v).size());
        const std::span<const int> ids = graph.extern_input_ids(v);
        for (std::size_t i = 0; i < ids.size(); ++i) {
          if (std::find(ids.begin(),
                        ids.begin() + static_cast<std::ptrdiff_t>(i),
                        ids[i]) ==
              ids.begin() + static_cast<std::ptrdiff_t>(i))
            ++reads;
        }
        const int writes =
            (graph.live_out(v) || !graph.succs(v).empty()) ? 1 : 0;
        int cts = avail;
        while (!ledger.fits(cts, 1, reads, writes, -1)) ++cts;
        ledger.charge(cts, 1, reads, writes, -1);
        const int gid = static_cast<int>(result.groups.size());
        GroupState g = open_group();
        g.members.insert(v);
        g.start = cts;
        hw_depth[v] = table.option(opt).delay;
        g.depth_ns = hw_depth[v];
        g.cycles = clock_.cycles_for(g.depth_ns);
        g.reads = reads;
        g.writes = writes;
        std::vector<int>& gext = extern_ids_bucket(gid);
        for (std::size_t i = 0; i < ids.size(); ++i) {
          if (std::find(gext.begin(), gext.end(), ids[i]) == gext.end())
            gext.push_back(ids[i]);
        }
        result.group_id[v] = gid;
        result.slot[v] = cts;
        result.groups.push_back(std::move(g));
      }
    } else {
      // Fig 4.3.3: software list placement.
      int avail = 0;
      for (const dfg::NodeId p : graph.preds(v))
        avail = std::max(avail, finish_of(p));
      const int reads = sched::read_ports_used(graph, v);
      const int writes = sched::write_ports_used(graph, v);
      const dfg::Node& node = graph.node(v);
      const int fu_class =
          node.is_ise ? -1 : static_cast<int>(isa::traits(node.opcode).fu);
      int cts = avail;
      while (!ledger.fits(cts, 1, reads, writes, fu_class)) ++cts;
      ledger.charge(cts, 1, reads, writes, fu_class);
      result.slot[v] = cts;
      result.finish_[v] = cts + software_cycles(table, opt);
    }

    result.chosen[v] = opt_i;
    result.order[v] = pick_index++;
    ++scheduled;
    ++s.steps;
    leave_ready(v);
    for (const dfg::NodeId su : graph.succs(v)) {
      if (--s.unresolved[su] == 0) enter_ready(su);
    }
  }

  int tet = 0;
  for (dfg::NodeId v = 0; v < n; ++v) tet = std::max(tet, finish_of(v));
  result.tet = tet;
  walks_metric_->inc();
  tet_metric_->observe(tet);
  return result;
}

WalkResult AntWalk::run(const PheromoneState& pheromone,
                        std::span<const double> sp_score, Rng& rng) const {
  WalkScratch scratch;
  run(pheromone, sp_score, rng, scratch);
  return std::move(scratch.result);
}

}  // namespace isex::core
