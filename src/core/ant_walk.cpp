#include "core/ant_walk.hpp"

#include <algorithm>
#include <cmath>

#include "dfg/analysis.hpp"
#include "isa/opcode.hpp"
#include "sched/schedule.hpp"
#include "trace/trace.hpp"
#include "util/assert.hpp"

namespace isex::core {
namespace {

struct CycleRes {
  int issue = 0;
  int reads = 0;
  int writes = 0;
  std::array<int, sched::kNumFuClasses> fu{};
};

class Ledger {
 public:
  explicit Ledger(const sched::MachineConfig& cfg) : cfg_(&cfg) {}

  CycleRes& at(int cycle) {
    ISEX_ASSERT(cycle >= 0);
    if (static_cast<std::size_t>(cycle) >= rows_.size())
      rows_.resize(static_cast<std::size_t>(cycle) + 1);
    return rows_[static_cast<std::size_t>(cycle)];
  }

  bool fits(int cycle, int issue, int reads, int writes, int fu_class) {
    const CycleRes& r = at(cycle);
    if (r.issue + issue > cfg_->issue_width) return false;
    if (r.reads + reads > cfg_->reg_file.read_ports) return false;
    if (r.writes + writes > cfg_->reg_file.write_ports) return false;
    if (fu_class >= 0 &&
        r.fu[static_cast<std::size_t>(fu_class)] + 1 >
            cfg_->fu_counts[static_cast<std::size_t>(fu_class)])
      return false;
    return true;
  }

  void charge(int cycle, int issue, int reads, int writes, int fu_class) {
    CycleRes& r = at(cycle);
    r.issue += issue;
    r.reads += reads;
    r.writes += writes;
    if (fu_class >= 0) r.fu[static_cast<std::size_t>(fu_class)] += 1;
  }

 private:
  const sched::MachineConfig* cfg_;
  std::vector<CycleRes> rows_;
};

int software_cycles(const hw::IoTable& table, std::size_t option) {
  return std::max(1, static_cast<int>(std::ceil(table.option(option).delay)));
}

}  // namespace

int WalkResult::finish_of(dfg::NodeId v) const {
  ISEX_ASSERT(v < finish_.size());
  if (group_id[v] >= 0) {
    const GroupState& g = groups[static_cast<std::size_t>(group_id[v])];
    return g.start + g.cycles;
  }
  return finish_[v];
}

AntWalk::AntWalk(const hw::GPlus& gplus, const sched::MachineConfig& machine,
                 const ExplorerParams& params, hw::ClockSpec clock)
    : gplus_(&gplus),
      machine_(machine),
      params_(&params),
      clock_(clock),
      walks_metric_(&trace::MetricsRegistry::global().counter(
          "isex_ant_walks_total")),
      tet_metric_(&trace::MetricsRegistry::global().histogram(
          "isex_ant_walk_tet_cycles", {4, 8, 16, 32, 64, 128, 256, 512})) {}

WalkResult AntWalk::run(const PheromoneState& pheromone,
                        std::span<const double> sp_score, Rng& rng) const {
  const trace::Span span("ant_walk");
  const dfg::Graph& graph = gplus_->graph();
  const std::size_t n = graph.num_nodes();
  ISEX_ASSERT(sp_score.size() == n);

  WalkResult result;
  result.chosen.assign(n, -1);
  result.slot.assign(n, -1);
  result.order.assign(n, -1);
  result.group_id.assign(n, -1);
  result.finish_.assign(n, 0);
  if (n == 0) return result;

  Ledger ledger(machine_);
  // Per-node combinational depth accumulated inside its group.
  std::vector<double> hw_depth(n, 0.0);

  std::vector<int> unresolved(n, 0);
  for (dfg::NodeId v = 0; v < n; ++v)
    unresolved[v] = static_cast<int>(graph.preds(v).size());
  std::vector<dfg::NodeId> ready;
  for (dfg::NodeId v = 0; v < n; ++v)
    if (unresolved[v] == 0) ready.push_back(v);

  // Flattened Ready-Matrix entries: (node, option).
  std::vector<std::pair<dfg::NodeId, int>> entries;
  std::vector<double> weights;

  auto finish_of = [&](dfg::NodeId v) { return result.finish_of(v); };

  auto group_io = [&](const dfg::NodeSet& members) {
    return std::pair<int, int>{dfg::count_inputs(graph, members),
                               dfg::count_outputs(graph, members)};
  };

  // Attempts to pack `v` (with hardware option `opt`) into group `gid`.
  auto try_join = [&](dfg::NodeId v, std::size_t opt, int gid) -> bool {
    GroupState& g = result.groups[static_cast<std::size_t>(gid)];
    // All producers outside the group must be done before the group issues.
    for (const dfg::NodeId p : graph.preds(v)) {
      if (!g.members.contains(p) && finish_of(p) > g.start) return false;
    }
    dfg::NodeSet grown = g.members;
    grown.insert(v);
    const auto [reads, writes] = group_io(grown);
    const int dr = reads - g.reads;
    const int dw = writes - g.writes;
    if (!ledger.fits(g.start, 0, dr, dw, -1)) return false;

    // Commit.
    ledger.charge(g.start, 0, dr, dw, -1);
    g.members = std::move(grown);
    g.reads = reads;
    g.writes = writes;
    double depth_in = 0.0;
    for (const dfg::NodeId p : graph.preds(v)) {
      if (g.members.contains(p) && p != v) depth_in = std::max(depth_in, hw_depth[p]);
    }
    hw_depth[v] = depth_in + gplus_->table(v).option(opt).delay;
    g.depth_ns = std::max(g.depth_ns, hw_depth[v]);
    g.cycles = clock_.cycles_for(g.depth_ns);
    result.group_id[v] = gid;
    result.slot[v] = g.start;
    return true;
  };

  std::size_t scheduled = 0;
  int pick_index = 0;
  while (scheduled < n) {
    // Build the Ready-Matrix for this step.
    entries.clear();
    weights.clear();
    for (const dfg::NodeId v : ready) {
      const hw::IoTable& table = gplus_->table(v);
      for (std::size_t o = 0; o < table.size(); ++o) {
        entries.emplace_back(v, static_cast<int>(o));
        weights.push_back(pheromone.weight(v, o) +
                          params_->lambda * sp_score[v]);
      }
    }
    ISEX_ASSERT_MSG(!entries.empty(), "ready list empty before completion");

    const std::size_t pick = rng.weighted_pick(weights);
    const auto [v, opt_i] = entries[pick];
    const auto opt = static_cast<std::size_t>(opt_i);
    const hw::IoTable& table = gplus_->table(v);

    if (table.is_hardware(opt)) {
      // Fig 4.3.4: prefer the group of the parent scheduled latest (LP).
      std::vector<std::pair<int, int>> parent_groups;  // (finish, gid)
      for (const dfg::NodeId p : graph.preds(v)) {
        const int gid = result.group_id[p];
        if (gid >= 0) parent_groups.emplace_back(finish_of(p), gid);
      }
      std::sort(parent_groups.begin(), parent_groups.end(),
                [](const auto& a, const auto& b) { return a.first > b.first; });
      bool placed = false;
      int last_gid = -1;
      for (const auto& [fin, gid] : parent_groups) {
        if (gid == last_gid) continue;
        last_gid = gid;
        if (try_join(v, opt, gid)) {
          placed = true;
          break;
        }
      }
      if (!placed) {
        // Open a fresh single-member group at the earliest feasible slot.
        int avail = 0;
        for (const dfg::NodeId p : graph.preds(v))
          avail = std::max(avail, finish_of(p));
        dfg::NodeSet solo(n);
        solo.insert(v);
        const auto [reads, writes] = group_io(solo);
        int cts = avail;
        while (!ledger.fits(cts, 1, reads, writes, -1)) ++cts;
        ledger.charge(cts, 1, reads, writes, -1);
        GroupState g;
        g.members = std::move(solo);
        g.start = cts;
        hw_depth[v] = table.option(opt).delay;
        g.depth_ns = hw_depth[v];
        g.cycles = clock_.cycles_for(g.depth_ns);
        g.reads = reads;
        g.writes = writes;
        result.group_id[v] = static_cast<int>(result.groups.size());
        result.slot[v] = cts;
        result.groups.push_back(std::move(g));
      }
    } else {
      // Fig 4.3.3: software list placement.
      int avail = 0;
      for (const dfg::NodeId p : graph.preds(v))
        avail = std::max(avail, finish_of(p));
      const int reads = sched::read_ports_used(graph, v);
      const int writes = sched::write_ports_used(graph, v);
      const dfg::Node& node = graph.node(v);
      const int fu_class =
          node.is_ise ? -1 : static_cast<int>(isa::traits(node.opcode).fu);
      int cts = avail;
      while (!ledger.fits(cts, 1, reads, writes, fu_class)) ++cts;
      ledger.charge(cts, 1, reads, writes, fu_class);
      result.slot[v] = cts;
      result.finish_[v] = cts + software_cycles(table, opt);
    }

    result.chosen[v] = opt_i;
    result.order[v] = pick_index++;
    ++scheduled;
    ready.erase(std::find(ready.begin(), ready.end(), v));
    for (const dfg::NodeId s : graph.succs(v)) {
      if (--unresolved[s] == 0) ready.push_back(s);
    }
  }

  int tet = 0;
  for (dfg::NodeId v = 0; v < n; ++v) tet = std::max(tet, finish_of(v));
  result.tet = tet;
  walks_metric_->inc();
  tet_metric_->observe(tet);
  return result;
}

}  // namespace isex::core
