// MultiIssueExplorer — the paper's contribution (Ch. 3–4).
//
// Round loop over one basic block's DFG:
//   1. run ACO iterations (AntWalk → trail update → Hardware-Grouping +
//      merit update) until every operation's selected probability exceeds
//      P_END or the iteration cap is hit;
//   2. extract legal ISE candidates from the taken options (Make-Convex +
//      port legalization);
//   3. commit the candidate whose collapse shortens the *scheduled* block
//      the most (ties: smaller ASFU area); stop when no candidate wins a
//      cycle — packing off-critical-path operations never commits.
// The critical path is re-identified every iteration by scheduling, so it
// may move between rounds exactly as §1.4 requires.
#pragma once

#include <string>
#include <vector>

#include "core/explorer_params.hpp"
#include "dfg/graph.hpp"
#include "dfg/node_set.hpp"
#include "hwlib/asfu.hpp"
#include "hwlib/hw_library.hpp"
#include "isa/register_file.hpp"
#include "sched/machine_config.hpp"
#include "trace/telemetry.hpp"
#include "util/rng.hpp"

namespace isex::core {

/// One committed ISE, reported in the coordinates of the *original* block.
struct ExploredIse {
  /// Members as node ids of the graph passed to explore().
  dfg::NodeSet original_nodes;
  hw::AsfuEvaluation eval;
  int in_count = 0;
  int out_count = 0;
  /// Scheduled-cycle reduction this ISE bought when committed (given the
  /// ISEs committed before it).
  int gain_cycles = 0;
  std::vector<std::string> member_labels;
};

/// One ACO iteration's vital signs (collected when
/// ExplorerParams::collect_trace is set) — the telemetry layer's
/// convergence record: TET against the round's best/mean/worst, pheromone
/// decision entropy, and the binding max-option-probability vs P_END.
using IterationTrace = trace::ConvergencePoint;

/// Commit rule for a round's candidates (§4.0 step 3), exposed so the
/// parallel reduction and its pinning test share one definition: a candidate
/// beats the incumbent when its scheduled gain is higher, or the gain ties
/// and its ASFU area is strictly smaller.  An area tie at equal gain keeps
/// the incumbent — the reduction scans candidates in ascending index order,
/// so full ties deterministically resolve to the lowest candidate index at
/// any --jobs width.
constexpr bool better_candidate(int gain, double area, int best_gain,
                                double best_area) {
  return gain > best_gain || (gain == best_gain && area < best_area);
}

struct ExplorationResult {
  std::vector<ExploredIse> ises;
  /// Scheduled block cycles with no ISE.
  int base_cycles = 0;
  /// Scheduled block cycles with every committed ISE.
  int final_cycles = 0;
  int rounds = 0;
  int total_iterations = 0;
  /// Per-iteration diagnostics; empty unless params.collect_trace.
  std::vector<IterationTrace> trace;

  double total_area() const;
  int total_gain() const { return base_cycles - final_cycles; }
};

class MultiIssueExplorer {
 public:
  MultiIssueExplorer(sched::MachineConfig machine, isa::IsaFormat format,
                     const hw::HwLibrary& library, ExplorerParams params = {},
                     hw::ClockSpec clock = {});

  /// Explores one basic block.  Deterministic given `rng`'s state.
  /// With ExplorerParams::colonies == 1 (default) this is the paper's serial
  /// ACO loop.  With K >= 2 each round's ant budget is sharded across K
  /// colonies walking concurrently on the runtime pool, synchronized by a
  /// deterministic index-ordered pheromone merge every merge_interval
  /// iterations (docs/PERFORMANCE.md).  Either way the result is a pure
  /// function of (rng state, colonies, merge_interval) — never of the
  /// thread count.
  ExplorationResult explore(const dfg::Graph& block, Rng& rng) const;

  /// Paper §5.1: repeat the exploration `repeats` times and keep the best
  /// result (fewest final cycles, then least area).  Repeats run
  /// concurrently on runtime::ThreadPool::default_pool() with serially
  /// pre-split RNG streams, so the result is bit-identical to a serial loop
  /// at any thread count (see docs/RUNTIME.md).
  ExplorationResult explore_best_of(const dfg::Graph& block, int repeats,
                                    Rng& rng) const;

  /// Best-of reduction over attempts in repeat order: fewest final cycles,
  /// ties by least area, earliest attempt wins further ties.  Exposed so the
  /// design flow can fan (block × repeat) jobs out flat and reduce itself.
  static ExplorationResult pick_best(std::vector<ExplorationResult> attempts);

  const sched::MachineConfig& machine() const { return machine_; }
  const isa::IsaFormat& format() const { return format_; }
  const ExplorerParams& params() const { return params_; }

 private:
  sched::MachineConfig machine_;
  isa::IsaFormat format_;
  hw::HwLibrary library_;  // owned copy: callers may pass temporaries
  ExplorerParams params_;
  hw::ClockSpec clock_;
};

}  // namespace isex::core
