#include "core/explorer_params.hpp"

// Header-only data; this TU anchors the target.
