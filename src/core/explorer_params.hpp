// Tunables of the ACO ISE exploration (§5.1 lists the paper's values).
#pragma once

#include <cstdint>

#include "sched/priority.hpp"

namespace isex::runtime {
class EvalCache;
}

namespace isex::core {

struct ExplorerParams {
  // --- probability mixing (Eqs. 1 and 3) ---
  /// Relative influence of trail vs merit: p ∝ α·trail + (1−α)·merit + λ·SP.
  double alpha = 0.25;
  /// Relative influence of the scheduling priority (SP) term.  The paper
  /// lists λ as a parameter without publishing its value; 0.3 with SP
  /// normalized to [0, merit_scale] reproduces the reported behaviour.
  double lambda = 0.3;

  // --- trail update (Fig 4.3.5 evaporating factors) ---
  double rho1 = 4.0;  ///< reward for the chosen option on improvement
  double rho2 = 2.0;  ///< decay for unchosen options on improvement
  double rho3 = 2.0;  ///< penalty for the chosen option on regression
  double rho4 = 2.0;  ///< reward for unchosen options on regression
  double rho5 = 0.4;  ///< extra penalty for reordered operations on regression

  // --- merit function constants (Fig 4.3.7) ---
  double beta_cp = 0.9;      ///< critical-path boost divisor (case 1)
  double beta_size = 0.7;    ///< singleton-candidate decay (case 2)
  double beta_io = 0.8;      ///< I/O-constraint-violation decay (case 3)
  double beta_convex = 0.4;  ///< convexity-violation decay (case 3)
  double beta_timing = 0.6;  ///< pipestage-timing-violation decay (case 3)

  // --- initial values / scales ---
  double initial_merit_software = 100.0;
  double initial_merit_hardware = 200.0;
  /// Per-node merits are renormalized so the best option carries this value.
  double merit_scale = 200.0;
  double initial_trail = 0.0;
  /// Trail values are clamped into [0, trail_max].
  double trail_max = 1000.0;

  // --- convergence ---
  /// A round converges when every operation has an option whose selected
  /// probability (Eq. 3) exceeds this.
  double p_end = 0.99;
  /// Hard cap on iterations per round (safety net for the heuristic).
  int max_iterations = 250;
  /// Hard cap on rounds (ISEs explored per basic block).
  int max_rounds = 64;

  // --- multi-colony parallel search (docs/PERFORMANCE.md) ---
  /// Number of ant colonies a round's ant budget is sharded across.  1 (the
  /// default) is the paper's serial loop, byte-identical to every release
  /// before the knob existed.  K >= 2 splits max_iterations across K
  /// colonies, each owning a private PheromoneState and RNG stream derived
  /// from the deterministic split fan-out; colonies walk concurrently on
  /// the runtime pool and synchronize at merge barriers.  A *search*
  /// parameter like the seed: results depend on (seed, colonies,
  /// merge_interval) but never on the thread count.  Effective colony count
  /// is min(colonies, max_iterations) so every colony walks at least once.
  int colonies = 1;
  /// Iterations each colony runs between merge barriers.  At a barrier the
  /// colonies' pheromone states reduce — in ascending colony-index order —
  /// into an evaporation-weighted mean plus a best-ant deposit, the merged
  /// state is broadcast back, and convergence (P_END) is tested on it.
  /// Inert when colonies == 1.
  int merge_interval = 8;
  /// Fraction of the merged (mean) trail evaporated at each barrier before
  /// the best-ant deposit lands; the deposit quantum is rho1.  Inert when
  /// colonies == 1.
  double merge_evaporation = 0.1;

  /// When false, the merit function treats every operation as if it were on
  /// the critical path and skips the Max_AEC area-saving branch — this is
  /// exactly the single-issue (legality-only) behaviour of the prior art
  /// baseline [Wu et al., HiPEAC'07].
  bool locality_aware = true;

  /// Scheduling-priority (SP) function for Eq. 1's λ·SP term.  The paper
  /// uses the child count and names mobility-based priorities as future
  /// work (Ch. 6); both are available here.
  sched::PriorityKind sp_priority = sched::PriorityKind::kChildCount;

  /// Record per-iteration diagnostics (TET curve, convergence fraction) in
  /// ExplorationResult::trace.  Off by default: the trace grows with
  /// iterations × rounds.
  bool collect_trace = false;

  /// Memoize list-scheduler evaluations (base cycles + candidate collapse
  /// scoring) in the process-wide runtime::schedule_cache().  Repeats and
  /// sweeps re-score identical graphs constantly, so this is a large win;
  /// results are unchanged — the cache is a pure-function memo.  Exposed so
  /// bench/perf_runtime can A/B it.
  bool use_eval_cache = true;

  /// Cache instance the memoization above goes through.  Null (the default)
  /// uses the process-wide runtime::schedule_cache(); a portfolio flow points
  /// every program's exploration at one scoped cache so cross-program
  /// candidate dedup is observable (and its stats attributable) per batch.
  /// The choice of instance never changes results — both are pure memos.
  runtime::EvalCache* eval_cache = nullptr;
};

}  // namespace isex::core
