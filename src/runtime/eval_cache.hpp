// Sharded, mutex-striped memo cache for schedule evaluations.
//
// The ACO inner loop re-evaluates identical schedules constantly: every
// repeat of explore_best_of walks the same block, rounds re-score the same
// collapsed candidate graphs, and sweep harnesses revisit the same
// (benchmark, machine) pairs.  Scheduling is O(cycles × resources) while a
// structural fingerprint is O(V + E), so memoizing cycles() pays for itself
// after the first hit.
//
// Concurrency: the key space is striped over independent shards, each a
// mutex + hash map + FIFO eviction ring, so parallel exploration jobs rarely
// contend on the same lock.  A concurrent miss may compute the same value
// twice — both threads then insert the identical (pure-function) result, so
// correctness and determinism are unaffected.
//
// Determinism: the cache is invisible in results.  Values are pure functions
// of their 128-bit key (see hash.hpp for why collisions are negligible), so
// a hit returns exactly what recomputation would.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

#include "runtime/hash.hpp"
#include "trace/metrics.hpp"

namespace isex::sched {
class ListScheduler;
}

namespace isex::runtime {

struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t insertions = 0;
  std::uint64_t evictions = 0;

  double hit_rate() const {
    const std::uint64_t total = hits + misses;
    return total > 0 ? static_cast<double>(hits) / static_cast<double>(total)
                     : 0.0;
  }
};

class EvalCache {
 public:
  /// `capacity` is the total entry budget, split evenly across `shards`
  /// (each rounded up to at least one entry).
  explicit EvalCache(std::size_t capacity = 1 << 18, std::size_t shards = 16);

  EvalCache(const EvalCache&) = delete;
  EvalCache& operator=(const EvalCache&) = delete;

  std::optional<int> lookup(const Key128& key);
  void insert(const Key128& key, int value);

  /// lookup(); on a miss, computes, inserts, and returns.  `compute` runs
  /// outside any shard lock.
  template <typename Fn>
  int get_or_compute(const Key128& key, Fn compute) {
    if (const std::optional<int> hit = lookup(key)) return *hit;
    const int value = compute();
    insert(key, value);
    return value;
  }

  /// Drops every entry.  Counters survive; reset_stats() clears them.
  void clear();
  void reset_stats();

  /// Write-through hook: called once per *fresh* insertion (not for
  /// duplicates racing a concurrent miss), outside any shard lock, from the
  /// inserting thread.  The persistence layer (persistent_cache.hpp) uses it
  /// to append new evaluations to the disk log; an empty function detaches.
  using PersistSink = std::function<void(const Key128&, int)>;
  void set_persist_sink(PersistSink sink);

  CacheStats stats() const;
  std::size_t size() const;
  std::size_t capacity() const { return shard_capacity_ * shards_.size(); }

 private:
  struct Shard {
    std::mutex mutex;
    std::unordered_map<Key128, int, Key128Hash> map;
    /// Insertion order; the front is evicted when the shard is full.
    std::deque<Key128> fifo;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t insertions = 0;
    std::uint64_t evictions = 0;
  };

  Shard& shard_for(const Key128& key) {
    return *shards_[(key.hi ^ (key.hi >> 32)) % shards_.size()];
  }

  std::vector<std::unique_ptr<Shard>> shards_;
  std::size_t shard_capacity_;
  /// Guarded by sink_mutex_; shared_ptr so a concurrent set_persist_sink
  /// cannot destroy a sink mid-call.
  mutable std::mutex sink_mutex_;
  std::shared_ptr<const PersistSink> sink_;
  /// Process-wide metrics mirrored alongside the per-shard counters (which
  /// stay authoritative for stats(); the registry aggregates every cache).
  trace::Counter* hits_metric_;
  trace::Counter* misses_metric_;
  trace::Counter* insertions_metric_;
  trace::Counter* evictions_metric_;
};

/// Process-wide cache for list-scheduler makespans, shared by every explorer
/// instance (MI, SI baseline, and the design flow all over).
EvalCache& schedule_cache();

/// scheduler.cycles(graph), memoized in schedule_cache() under
/// schedule_key(graph, scheduler.config(), scheduler.priority()).
int cached_schedule_cycles(const sched::ListScheduler& scheduler,
                           const dfg::Graph& graph);

/// Same memoization through an explicit cache instance (e.g. a
/// portfolio-scoped cache), for callers that need attributable stats or a
/// lifetime narrower than the process.
int cached_schedule_cycles(EvalCache& cache,
                           const sched::ListScheduler& scheduler,
                           const dfg::Graph& graph);

}  // namespace isex::runtime
