// Pool occupancy profiler — where the wall-clock of a parallel run goes.
//
// Three views, all cheap enough to leave on for a whole server lifetime
// (profiling adds two steady_clock reads per task; with profiling off the
// pool pays one relaxed atomic load per task):
//
//   * per-worker occupancy: busy/idle time, task and steal counts for every
//     pool worker plus one synthetic "external" slot for threads helping
//     inside parallel_for;
//   * a task-duration histogram (fixed log-spaced microsecond buckets) fed
//     live into MetricsRegistry as `isex_pool_task_seconds` and snapshotted
//     into the PoolProfile artifact;
//   * per-parallel-section Amdahl attribution: deterministic_fanout()
//     measures the serial stream-derivation time, the parallel-region wall
//     time, and the sum/max of task body durations for each labelled
//     section, so a report can say "section X is 34% serial" or "section Y
//     loses 2.1x to load imbalance" from numbers, not guesses.
//
// collect_pool_profile() snapshots all three into a PoolProfile, which can
// publish gauges to a MetricsRegistry and/or serialize to the PoolProfile
// JSON artifact consumed by tools/trace_report.py.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "trace/metrics.hpp"

namespace isex::runtime {

class ThreadPool;

/// One worker's lifetime accounting.  The last entry of
/// PoolProfile::workers is the synthetic "external" slot (threads that are
/// not pool workers executing tasks while helping in parallel_for); its
/// idle time is always zero because external threads only borrow the pool.
struct WorkerOccupancy {
  std::uint64_t tasks = 0;
  std::uint64_t steals = 0;
  double busy_seconds = 0.0;
  double idle_seconds = 0.0;
  /// busy / (busy + idle); zero when the worker never ran while profiled.
  double occupancy() const {
    const double total = busy_seconds + idle_seconds;
    return total > 0.0 ? busy_seconds / total : 0.0;
  }
};

/// Aggregated measurements for one labelled parallel section (all
/// invocations of that label merged).
struct SectionProfile {
  std::string name;
  std::uint64_t invocations = 0;
  std::uint64_t tasks = 0;
  /// Serial setup measured before the fan-out (RNG stream derivation and
  /// anything else that must happen on the submitting thread).
  double serial_seconds = 0.0;
  /// Wall time of the parallel region (submission to join).
  double wall_seconds = 0.0;
  /// Sum of task body durations — the "work" in the Amdahl sense.
  double task_seconds = 0.0;
  /// Slowest single task body across every invocation.
  double max_task_seconds = 0.0;

  /// Measured serial fraction of this section: serial / (serial + wall).
  double serial_fraction() const {
    const double total = serial_seconds + wall_seconds;
    return total > 0.0 ? serial_seconds / total : 0.0;
  }
  /// Slowest task vs the mean task — 1.0 is perfectly balanced.
  double imbalance() const {
    if (tasks == 0 || task_seconds <= 0.0) return 0.0;
    const double mean = task_seconds / static_cast<double>(tasks);
    return mean > 0.0 ? max_task_seconds / mean : 0.0;
  }
};

/// Snapshot of one pool's profiling state plus the process-wide section
/// registry.  Produced by collect_pool_profile().
struct PoolProfile {
  int threads = 0;
  bool profiled = false;  ///< was profiling enabled when collected
  std::vector<WorkerOccupancy> workers;  ///< size threads + 1 (external)
  /// Task-duration histogram: bounds in microseconds, counts has
  /// bounds.size() + 1 entries (last is +Inf).
  std::vector<double> task_bounds_us;
  std::vector<std::uint64_t> task_counts;
  std::uint64_t task_count = 0;
  double task_seconds_total = 0.0;
  std::vector<SectionProfile> sections;

  /// The PoolProfile JSON artifact (single object, stable key order).
  void write_json(std::ostream& out) const;
  /// Mirrors the snapshot into gauges:
  /// isex_pool_worker_{busy,idle}_seconds{worker=...},
  /// isex_pool_worker_occupancy{worker=...}, and per-section
  /// isex_pool_section_{serial_fraction,wall_seconds,...}{section=...}.
  void publish(trace::MetricsRegistry& registry) const;
};

/// Snapshots `pool`'s occupancy/histogram state and the global section
/// registry.  Safe to call while the pool is running.
PoolProfile collect_pool_profile(const ThreadPool& pool);

/// Merges one parallel-section invocation into the process-wide registry
/// (keyed by name).  Called by deterministic_fanout() when the pool is
/// profiling; durations in nanoseconds.
void record_parallel_section(const char* name, std::uint64_t serial_ns,
                             std::uint64_t wall_ns, std::uint64_t tasks,
                             std::uint64_t task_ns_sum,
                             std::uint64_t task_ns_max);

/// Snapshot / clear of the process-wide section registry (clearing is for
/// tests and benches that re-profile from a clean slate).
std::vector<SectionProfile> parallel_sections_snapshot();
void reset_parallel_sections();

}  // namespace isex::runtime
