// Runtime observability: one struct that snapshots everything the parallel
// pipeline did — jobs executed, steal traffic, schedule-cache efficiency,
// and named per-stage wall times — plus the RAII timer that feeds it.
// Benches print this after every sweep so a perf regression (or a cache
// that stopped hitting) is visible in the output, not just in wall clock.
#pragma once

#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "runtime/eval_cache.hpp"
#include "runtime/thread_pool.hpp"

namespace isex::runtime {

struct RuntimeStats {
  PoolStats pool;
  CacheStats schedule_cache;
  /// (stage name, accumulated seconds), in first-recorded order.
  std::vector<std::pair<std::string, double>> stages;

  void print(std::ostream& out) const;
};

/// Accumulates wall time into named stages (thread-safe).
class StageTimes {
 public:
  void record(const std::string& stage, double seconds);
  std::vector<std::pair<std::string, double>> snapshot() const;
  void reset();

 private:
  mutable std::mutex mutex_;
  std::vector<std::pair<std::string, double>> stages_;
};

/// Process-wide stage-time registry (what collect_runtime_stats reports).
StageTimes& stage_times();

/// RAII: adds the scope's wall time to stage_times() under `stage`.
class StageTimer {
 public:
  explicit StageTimer(std::string stage)
      : stage_(std::move(stage)), start_(std::chrono::steady_clock::now()) {}
  ~StageTimer();

  StageTimer(const StageTimer&) = delete;
  StageTimer& operator=(const StageTimer&) = delete;

 private:
  std::string stage_;
  std::chrono::steady_clock::time_point start_;
};

/// Snapshot of `pool` + the global schedule cache + global stage times.
RuntimeStats collect_runtime_stats(const ThreadPool& pool);

}  // namespace isex::runtime
