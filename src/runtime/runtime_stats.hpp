// Runtime observability: one struct that snapshots everything the parallel
// pipeline did — jobs executed, steal traffic, schedule-cache efficiency,
// and named per-stage wall times — plus the RAII timer that feeds it.
// Benches print this after every sweep so a perf regression (or a cache
// that stopped hitting) is visible in the output, not just in wall clock.
#pragma once

#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "runtime/eval_cache.hpp"
#include "runtime/thread_pool.hpp"
#include "trace/metrics.hpp"
#include "trace/trace.hpp"

namespace isex::runtime {

struct RuntimeStats {
  PoolStats pool;
  CacheStats schedule_cache;
  /// (stage name, accumulated seconds), in first-recorded order.
  std::vector<std::pair<std::string, double>> stages;

  void print(std::ostream& out) const;

  /// Mirrors this snapshot into `registry` as point-in-time gauges
  /// (isex_pool_threads, isex_schedule_cache_hit_rate, ...), alongside the
  /// live counters the pool/cache/stage hooks stream on their own — so a
  /// Prometheus snapshot and a printed/JSON report agree by construction.
  void publish(trace::MetricsRegistry& registry) const;
};

/// Accumulates wall time into named stages (thread-safe).  Every record()
/// also feeds the process-wide metrics registry's
/// isex_stage_seconds_total{stage="..."} counter, so stage wall time is
/// machine-readable from any Prometheus snapshot, not just print().
class StageTimes {
 public:
  void record(const std::string& stage, double seconds);
  std::vector<std::pair<std::string, double>> snapshot() const;
  void reset();

 private:
  mutable std::mutex mutex_;
  std::vector<std::pair<std::string, double>> stages_;
};

/// Process-wide stage-time registry (what collect_runtime_stats reports).
StageTimes& stage_times();

/// RAII: adds the scope's wall time to stage_times() under `stage` and,
/// when the global tracer is enabled, records a `stage:<name>` span that
/// participates in context propagation — it parents under the thread's
/// current TraceContext (the CLI run / server job root) and is itself the
/// current context while open, so pool tasks fanned out inside the stage
/// nest under it.
class StageTimer {
 public:
  explicit StageTimer(std::string stage);
  ~StageTimer();

  StageTimer(const StageTimer&) = delete;
  StageTimer& operator=(const StageTimer&) = delete;

 private:
  std::string stage_;
  std::chrono::steady_clock::time_point start_;
  std::uint64_t trace_start_us_ = 0;
  std::uint64_t span_id_ = 0;
  trace::TraceContext parent_;
  bool traced_ = false;
};

/// Snapshot of `pool` + the global schedule cache + global stage times.
RuntimeStats collect_runtime_stats(const ThreadPool& pool);

}  // namespace isex::runtime
