#include "runtime/eval_cache.hpp"

#include "sched/list_scheduler.hpp"
#include "util/assert.hpp"

namespace isex::runtime {

EvalCache::EvalCache(std::size_t capacity, std::size_t shards)
    : hits_metric_(&trace::MetricsRegistry::global().counter(
          "isex_schedule_cache_hits_total")),
      misses_metric_(&trace::MetricsRegistry::global().counter(
          "isex_schedule_cache_misses_total")),
      insertions_metric_(&trace::MetricsRegistry::global().counter(
          "isex_schedule_cache_insertions_total")),
      evictions_metric_(&trace::MetricsRegistry::global().counter(
          "isex_schedule_cache_evictions_total")) {
  ISEX_ASSERT(shards >= 1);
  shard_capacity_ = capacity / shards;
  if (shard_capacity_ == 0) shard_capacity_ = 1;
  shards_.reserve(shards);
  for (std::size_t i = 0; i < shards; ++i)
    shards_.push_back(std::make_unique<Shard>());
}

std::optional<int> EvalCache::lookup(const Key128& key) {
  Shard& shard = shard_for(key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  const auto it = shard.map.find(key);
  if (it == shard.map.end()) {
    ++shard.misses;
    misses_metric_->inc();
    return std::nullopt;
  }
  ++shard.hits;
  hits_metric_->inc();
  return it->second;
}

void EvalCache::insert(const Key128& key, int value) {
  Shard& shard = shard_for(key);
  {
    std::lock_guard<std::mutex> lock(shard.mutex);
    const auto [it, inserted] = shard.map.emplace(key, value);
    if (!inserted) return;  // concurrent miss raced us; values are identical
    shard.fifo.push_back(key);
    ++shard.insertions;
    insertions_metric_->inc();
    while (shard.map.size() > shard_capacity_) {
      shard.map.erase(shard.fifo.front());
      shard.fifo.pop_front();
      ++shard.evictions;
      evictions_metric_->inc();
    }
  }
  // Write-through outside the shard lock: the sink takes its own (I/O)
  // lock, and holding a shard lock across a disk append would serialize
  // unrelated lookups behind it.
  std::shared_ptr<const PersistSink> sink;
  {
    std::lock_guard<std::mutex> lock(sink_mutex_);
    sink = sink_;
  }
  if (sink && *sink) (*sink)(key, value);
}

void EvalCache::set_persist_sink(PersistSink sink) {
  std::lock_guard<std::mutex> lock(sink_mutex_);
  sink_ = sink ? std::make_shared<const PersistSink>(std::move(sink))
               : nullptr;
}

void EvalCache::clear() {
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    shard->map.clear();
    shard->fifo.clear();
  }
}

void EvalCache::reset_stats() {
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    shard->hits = shard->misses = shard->insertions = shard->evictions = 0;
  }
}

CacheStats EvalCache::stats() const {
  CacheStats total;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    total.hits += shard->hits;
    total.misses += shard->misses;
    total.insertions += shard->insertions;
    total.evictions += shard->evictions;
  }
  return total;
}

std::size_t EvalCache::size() const {
  std::size_t n = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    n += shard->map.size();
  }
  return n;
}

EvalCache& schedule_cache() {
  static EvalCache cache;
  return cache;
}

int cached_schedule_cycles(const sched::ListScheduler& scheduler,
                           const dfg::Graph& graph) {
  return cached_schedule_cycles(schedule_cache(), scheduler, graph);
}

int cached_schedule_cycles(EvalCache& cache,
                           const sched::ListScheduler& scheduler,
                           const dfg::Graph& graph) {
  const Key128 key =
      schedule_key(graph, scheduler.config(), scheduler.priority());
  return cache.get_or_compute(key,
                              [&]() { return scheduler.cycles(graph); });
}

}  // namespace isex::runtime
