#include "runtime/persistent_cache.hpp"

#include <cerrno>
#include <cstring>

#include "trace/metrics.hpp"

namespace isex::runtime {
namespace {

// Layout (all integers little-endian fixed-width, written byte-by-byte so
// the file is identical on any host):
//
//   header:  8-byte magic "ISEXEVC\n" | u32 version | u32 reserved (0)
//   record:  u8 type | u32 payload_len | u64 key.lo | u64 key.hi
//            | payload_len bytes | u64 checksum
//
// type 1 = schedule-eval (payload: u32 cycle count), type 2 = blob.
constexpr char kMagic[8] = {'I', 'S', 'E', 'X', 'E', 'V', 'C', '\n'};
constexpr std::uint8_t kTypeScheduleEval = 1;
constexpr std::uint8_t kTypeBlob = 2;
/// Upper bound on one payload; a length beyond this is treated as log
/// corruption (stop scanning) rather than an allocation request.
constexpr std::uint32_t kMaxPayload = 64u << 20;
constexpr std::uint64_t kChecksumSeed = 0x7c159e3779b97f4aULL;

void put_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

void put_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

std::uint32_t get_u32(const unsigned char* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
  return v;
}

std::uint64_t get_u64(const unsigned char* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  return v;
}

std::uint64_t record_checksum(std::uint8_t type, const Key128& key,
                              std::string_view payload) {
  Hash64 h(kChecksumSeed);
  h.mix(type);
  h.mix(payload.size());
  h.mix(key.lo);
  h.mix(key.hi);
  for (const char c : payload)
    h.mix(static_cast<std::uint64_t>(static_cast<unsigned char>(c)));
  return h.value();
}

}  // namespace

PersistentEvalCache::PersistentEvalCache(std::string path)
    : path_(std::move(path)),
      corrupt_metric_(&trace::MetricsRegistry::global().counter(
          "isex_persist_corrupt_records_total")),
      appends_metric_(&trace::MetricsRegistry::global().counter(
          "isex_persist_appends_total")) {}

PersistentEvalCache::~PersistentEvalCache() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (out_ != nullptr) std::fclose(out_);
}

PersistLoadReport PersistentEvalCache::load(EvalCache* warm_into) {
  PersistLoadReport result;
  std::lock_guard<std::mutex> lock(mutex_);
  load_ran_ = true;
  if (path_.empty()) return result;  // memory-only mode

  std::FILE* in = std::fopen(path_.c_str(), "rb");
  if (in == nullptr) {
    if (errno != ENOENT)
      result.report.add(ErrorCode::kPersistIo,
                        "cannot read cache file '" + path_ +
                            "': " + std::strerror(errno));
    return result;  // missing file: clean empty cache
  }

  // Whole-file read: cache logs are bounded by what a service evaluates,
  // and a single buffer makes truncation checks trivial.
  std::string data;
  {
    char buf[1 << 16];
    std::size_t n = 0;
    while ((n = std::fread(buf, 1, sizeof buf, in)) > 0) data.append(buf, n);
  }
  std::fclose(in);

  const auto* bytes = reinterpret_cast<const unsigned char*>(data.data());
  if (data.size() < 16 || std::memcmp(data.data(), kMagic, 8) != 0 ||
      get_u32(bytes + 8) != kFormatVersion) {
    result.version_mismatch = true;
    rewrite_on_open_ = true;
    result.report.add(ErrorCode::kPersistVersionMismatch,
                      "'" + path_ + "' is not a version-" +
                          std::to_string(kFormatVersion) +
                          " isex cache file; ignoring its contents",
                      {}, Severity::kWarning);
    return result;
  }

  std::size_t pos = 16;
  while (pos < data.size()) {
    // u8 type + u32 len + 2x u64 key = 21-byte fixed prefix.
    if (data.size() - pos < 21) {
      ++result.corrupt_skipped;
      break;  // truncated tail
    }
    const std::uint8_t type = bytes[pos];
    const std::uint32_t len = get_u32(bytes + pos + 1);
    if (len > kMaxPayload || data.size() - pos - 21 < len + 8u) {
      ++result.corrupt_skipped;
      break;  // length field corrupt or payload+checksum cut off
    }
    Key128 key{get_u64(bytes + pos + 5), get_u64(bytes + pos + 13)};
    const std::string_view payload(data.data() + pos + 21, len);
    const std::uint64_t stored = get_u64(bytes + pos + 21 + len);
    const std::size_t next = pos + 21 + len + 8;
    if (stored != record_checksum(type, key, payload)) {
      // Framing was intact (the length was plausible), so resynchronize at
      // the next record instead of abandoning the rest of the log.
      ++result.corrupt_skipped;
      pos = next;
      continue;
    }
    if (type == kTypeScheduleEval && len == 4) {
      const auto value = static_cast<int>(
          get_u32(reinterpret_cast<const unsigned char*>(payload.data())));
      persisted_sched_.insert(key);
      if (warm_into != nullptr) warm_into->insert(key, value);
      ++result.schedule_entries;
    } else if (type == kTypeBlob) {
      blobs_[key] = std::string(payload);
      ++result.blob_entries;
    } else {
      ++result.corrupt_skipped;  // unknown type or malformed payload size
    }
    pos = next;
  }

  if (result.corrupt_skipped > 0) {
    corrupt_metric_->inc(static_cast<double>(result.corrupt_skipped));
    result.report.add(ErrorCode::kPersistCorruptRecord,
                      "skipped " + std::to_string(result.corrupt_skipped) +
                          " corrupt record(s) in '" + path_ + "'",
                      {}, Severity::kWarning);
  }
  return result;
}

void PersistentEvalCache::append_record(std::uint8_t type, const Key128& key,
                                        std::string_view payload) {
  // Caller holds mutex_.
  if (path_.empty()) return;  // memory-only mode (no log configured)
  if (out_ == nullptr) {
    const bool fresh = rewrite_on_open_ || ([&] {
                         std::FILE* probe = std::fopen(path_.c_str(), "rb");
                         if (probe == nullptr) return true;
                         std::fclose(probe);
                         return false;
                       })();
    out_ = std::fopen(path_.c_str(), fresh ? "wb" : "ab");
    if (out_ == nullptr) {
      ++stats_.append_failures;
      return;
    }
    rewrite_on_open_ = false;
    if (fresh) {
      std::string header(kMagic, 8);
      put_u32(header, kFormatVersion);
      put_u32(header, 0);
      std::fwrite(header.data(), 1, header.size(), out_);
    }
  }
  std::string record;
  record.reserve(29 + payload.size());
  record.push_back(static_cast<char>(type));
  put_u32(record, static_cast<std::uint32_t>(payload.size()));
  put_u64(record, key.lo);
  put_u64(record, key.hi);
  record.append(payload);
  put_u64(record, record_checksum(type, key, payload));
  if (std::fwrite(record.data(), 1, record.size(), out_) != record.size()) {
    ++stats_.append_failures;
    return;
  }
  ++stats_.appends;
  appends_metric_->inc();
}

void PersistentEvalCache::put_schedule_eval(const Key128& key, int value) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!persisted_sched_.insert(key).second) return;
  std::string payload;
  put_u32(payload, static_cast<std::uint32_t>(value));
  append_record(kTypeScheduleEval, key, payload);
}

void PersistentEvalCache::put_blob(const Key128& key,
                                   std::string_view payload) {
  std::lock_guard<std::mutex> lock(mutex_);
  blobs_[key] = std::string(payload);
  append_record(kTypeBlob, key, payload);
}

std::optional<std::string> PersistentEvalCache::lookup_blob(const Key128& key) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = blobs_.find(key);
  if (it == blobs_.end()) {
    ++stats_.blob_misses;
    return std::nullopt;
  }
  ++stats_.blob_hits;
  return it->second;
}

void PersistentEvalCache::flush() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (out_ != nullptr) std::fflush(out_);
}

PersistStats PersistentEvalCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

std::uint64_t PersistentEvalCache::schedule_entry_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return persisted_sched_.size();
}

std::uint64_t PersistentEvalCache::blob_entry_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return blobs_.size();
}

std::uint64_t PersistentEvalCache::log_size_bytes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (path_.empty()) return 0;
  if (out_ != nullptr) std::fflush(out_);
  std::FILE* in = std::fopen(path_.c_str(), "rb");
  if (in == nullptr) return 0;
  std::uint64_t size = 0;
  if (std::fseek(in, 0, SEEK_END) == 0) {
    const long pos = std::ftell(in);
    if (pos > 0) size = static_cast<std::uint64_t>(pos);
  }
  std::fclose(in);
  return size;
}

}  // namespace isex::runtime
