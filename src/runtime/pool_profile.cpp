#include "runtime/pool_profile.hpp"

#include <algorithm>
#include <mutex>
#include <ostream>

#include "runtime/thread_pool.hpp"
#include "trace/trace.hpp"

namespace isex::runtime {
namespace {

/// Process-wide parallel-section registry.  Fan-outs are coarse (one entry
/// per deterministic_fanout invocation, not per task), so a single mutex
/// over a small vector is plenty.
struct SectionRegistry {
  std::mutex mutex;
  std::vector<SectionProfile> sections;

  SectionProfile& find_or_create(const char* name) {
    for (SectionProfile& s : sections)
      if (s.name == name) return s;
    sections.emplace_back();
    sections.back().name = name;
    return sections.back();
  }

  static SectionRegistry& instance() {
    static SectionRegistry registry;
    return registry;
  }
};

std::string worker_label(std::size_t index, std::size_t n_slots) {
  return index + 1 == n_slots ? std::string("external")
                              : std::to_string(index);
}

}  // namespace

void record_parallel_section(const char* name, std::uint64_t serial_ns,
                             std::uint64_t wall_ns, std::uint64_t tasks,
                             std::uint64_t task_ns_sum,
                             std::uint64_t task_ns_max) {
  SectionRegistry& registry = SectionRegistry::instance();
  std::lock_guard<std::mutex> lock(registry.mutex);
  SectionProfile& s = registry.find_or_create(name);
  s.invocations += 1;
  s.tasks += tasks;
  s.serial_seconds += static_cast<double>(serial_ns) * 1e-9;
  s.wall_seconds += static_cast<double>(wall_ns) * 1e-9;
  s.task_seconds += static_cast<double>(task_ns_sum) * 1e-9;
  s.max_task_seconds =
      std::max(s.max_task_seconds, static_cast<double>(task_ns_max) * 1e-9);
}

std::vector<SectionProfile> parallel_sections_snapshot() {
  SectionRegistry& registry = SectionRegistry::instance();
  std::lock_guard<std::mutex> lock(registry.mutex);
  return registry.sections;
}

void reset_parallel_sections() {
  SectionRegistry& registry = SectionRegistry::instance();
  std::lock_guard<std::mutex> lock(registry.mutex);
  registry.sections.clear();
}

PoolProfile collect_pool_profile(const ThreadPool& pool) {
  PoolProfile profile;
  profile.threads = pool.num_threads();
  profile.profiled = pool.profiling();
  profile.workers = pool.occupancy();
  profile.task_bounds_us = ThreadPool::task_duration_bounds_us();
  profile.task_counts = pool.task_duration_counts();
  profile.task_count = pool.profiled_task_count();
  profile.task_seconds_total = pool.profiled_task_seconds();
  profile.sections = parallel_sections_snapshot();
  return profile;
}

void PoolProfile::write_json(std::ostream& out) const {
  out << "{\n\"pool\":{\"threads\":" << threads
      << ",\"profiled\":" << (profiled ? "true" : "false")
      << ",\"task_count\":" << task_count
      << ",\"task_seconds_total\":" << task_seconds_total << "},\n";
  out << "\"workers\":[";
  for (std::size_t i = 0; i < workers.size(); ++i) {
    const WorkerOccupancy& w = workers[i];
    if (i != 0) out << ",";
    out << "\n{\"worker\":\""
        << trace::json_escape(worker_label(i, workers.size()))
        << "\",\"tasks\":" << w.tasks << ",\"steals\":" << w.steals
        << ",\"busy_seconds\":" << w.busy_seconds
        << ",\"idle_seconds\":" << w.idle_seconds
        << ",\"occupancy\":" << w.occupancy() << "}";
  }
  out << "\n],\n\"task_histogram\":{\"bounds_us\":[";
  for (std::size_t i = 0; i < task_bounds_us.size(); ++i) {
    if (i != 0) out << ",";
    out << task_bounds_us[i];
  }
  out << "],\"counts\":[";
  for (std::size_t i = 0; i < task_counts.size(); ++i) {
    if (i != 0) out << ",";
    out << task_counts[i];
  }
  out << "]},\n\"sections\":[";
  for (std::size_t i = 0; i < sections.size(); ++i) {
    const SectionProfile& s = sections[i];
    if (i != 0) out << ",";
    out << "\n{\"name\":\"" << trace::json_escape(s.name)
        << "\",\"invocations\":" << s.invocations << ",\"tasks\":" << s.tasks
        << ",\"serial_seconds\":" << s.serial_seconds
        << ",\"wall_seconds\":" << s.wall_seconds
        << ",\"task_seconds\":" << s.task_seconds
        << ",\"max_task_seconds\":" << s.max_task_seconds
        << ",\"serial_fraction\":" << s.serial_fraction()
        << ",\"imbalance\":" << s.imbalance() << "}";
  }
  out << "\n]}\n";
}

void PoolProfile::publish(trace::MetricsRegistry& registry) const {
  for (std::size_t i = 0; i < workers.size(); ++i) {
    const WorkerOccupancy& w = workers[i];
    const trace::Labels labels{{"worker", worker_label(i, workers.size())}};
    registry.gauge("isex_pool_worker_busy_seconds", labels)
        .set(w.busy_seconds);
    registry.gauge("isex_pool_worker_idle_seconds", labels)
        .set(w.idle_seconds);
    registry.gauge("isex_pool_worker_occupancy", labels).set(w.occupancy());
    registry.gauge("isex_pool_worker_tasks", labels)
        .set(static_cast<double>(w.tasks));
  }
  for (const SectionProfile& s : sections) {
    const trace::Labels labels{{"section", s.name}};
    registry.gauge("isex_pool_section_serial_fraction", labels)
        .set(s.serial_fraction());
    registry.gauge("isex_pool_section_wall_seconds", labels)
        .set(s.wall_seconds);
    registry.gauge("isex_pool_section_task_seconds", labels)
        .set(s.task_seconds);
    registry.gauge("isex_pool_section_imbalance", labels).set(s.imbalance());
    registry.gauge("isex_pool_section_tasks", labels)
        .set(static_cast<double>(s.tasks));
  }
}

}  // namespace isex::runtime
