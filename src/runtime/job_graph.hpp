// Deterministic job fan-out over a ThreadPool.
//
// Two layers:
//
//   * deterministic_fanout() — the contract the exploration pipeline relies
//     on.  Stochastic jobs are parallelized by (1) deriving one child RNG
//     stream per job *serially on the calling thread*, in exactly the order
//     the serial code would have called rng.split(), then (2) running the
//     jobs concurrently in any order, and (3) collecting results by job
//     index.  Because each job touches only its own pre-derived stream and
//     its own result slot, the output — and the caller's RNG end state — is
//     bit-identical to the serial loop at any thread count.
//
//   * JobGraph — explicit dependencies between named jobs, executed in
//     topological waves on a pool.  A job whose prerequisite failed is
//     skipped; run() rethrows the first failure after the graph drains.
//     Used by sweep harnesses whose reduce steps consume many explore jobs.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "runtime/pool_profile.hpp"
#include "runtime/thread_pool.hpp"
#include "util/rng.hpp"

namespace isex::runtime {

/// Runs fn(i, stream_i) for i in [0, n) on `pool` and returns the results in
/// index order.  stream_i is the i-th child of `rng` exactly as n serial
/// rng.split() calls would produce (and `rng` advances identically).
///
/// When `pool` has profiling on, the fan-out is measured as one parallel
/// section under `section` (serial stream-derivation time vs parallel wall
/// time vs per-task body durations — the Amdahl attribution in
/// pool_profile.hpp).  Instrumentation never touches `rng` or the streams,
/// so results stay bit-identical whether profiling is on or off.
template <typename Fn>
auto deterministic_fanout(ThreadPool& pool, Rng& rng, std::size_t n, Fn fn,
                          const char* section = "fanout")
    -> std::vector<std::invoke_result_t<Fn&, std::size_t, Rng&>> {
  using R = std::invoke_result_t<Fn&, std::size_t, Rng&>;
  using Clock = std::chrono::steady_clock;
  const bool profiled = pool.profiling();

  const auto serial_start = Clock::now();
  std::vector<Rng> streams = rng.split_n(n);
  const auto serial_ns = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                           serial_start)
          .count());

  std::vector<R> results(n);
  std::atomic<std::uint64_t> task_ns_sum{0};
  std::atomic<std::uint64_t> task_ns_max{0};
  const auto wall_start = Clock::now();
  pool.parallel_for(n, [&](std::size_t i) {
    Rng local = streams[i];  // private mutable copy; streams stays pristine
    if (profiled) {
      const auto t0 = Clock::now();
      results[i] = fn(i, local);
      const auto ns = static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                               t0)
              .count());
      task_ns_sum.fetch_add(ns, std::memory_order_relaxed);
      std::uint64_t seen = task_ns_max.load(std::memory_order_relaxed);
      while (seen < ns && !task_ns_max.compare_exchange_weak(
                              seen, ns, std::memory_order_relaxed)) {
      }
    } else {
      results[i] = fn(i, local);
    }
  });
  if (profiled) {
    const auto wall_ns = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                             wall_start)
            .count());
    record_parallel_section(section, serial_ns, wall_ns, n,
                            task_ns_sum.load(std::memory_order_relaxed),
                            task_ns_max.load(std::memory_order_relaxed));
  }
  return results;
}

class JobGraph {
 public:
  using JobId = std::size_t;

  enum class State : std::uint8_t {
    kPending,
    kDone,
    kFailed,
    kSkipped,  ///< a prerequisite failed or was itself skipped
  };

  /// Adds a job; `name` only matters for error reporting.
  JobId add(std::string name, std::function<void()> fn);

  /// Declares that `job` must not start before `prerequisite` finished.
  void add_dependency(JobId job, JobId prerequisite);

  /// Executes the graph.  Jobs with no unfinished prerequisites run
  /// concurrently on `pool`; called from inside a worker (or with an empty
  /// graph/pool) execution falls back to serial topological order.  After
  /// the graph drains, the first failure is rethrown.  Single-shot: a graph
  /// cannot be run twice.
  void run(ThreadPool& pool);

  std::size_t size() const { return jobs_.size(); }
  State state(JobId id) const { return jobs_[id].state; }
  const std::string& name(JobId id) const { return jobs_[id].name; }

 private:
  struct Job {
    std::string name;
    std::function<void()> fn;
    std::vector<JobId> successors;
    int prerequisites = 0;
    State state = State::kPending;
  };

  std::vector<Job> jobs_;
  bool ran_ = false;
};

}  // namespace isex::runtime
