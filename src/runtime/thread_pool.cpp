#include "runtime/thread_pool.hpp"

#include <chrono>
#include <cstdlib>

#include "trace/trace.hpp"
#include "util/assert.hpp"

namespace isex::runtime {
namespace {

/// Set for the duration of a worker loop; lets parallel_for detect nesting.
thread_local const ThreadPool* tls_current_pool = nullptr;

std::uint64_t elapsed_ns(std::chrono::steady_clock::time_point since) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - since)
          .count());
}

std::vector<double> task_bounds_seconds() {
  std::vector<double> bounds;
  for (const double us : ThreadPool::task_duration_bounds_us())
    bounds.push_back(us * 1e-6);
  return bounds;
}

}  // namespace

const std::vector<double>& ThreadPool::task_duration_bounds_us() {
  // Log-spaced from 50µs (around the cheapest candidate-eval tasks) to 1s;
  // kTaskBins - 1 bounds plus the implicit +Inf bucket.  Leaked on purpose:
  // record_profiled_task reads these after the task's completion latch, a
  // window that extends into static destruction for the default pool's
  // final task.
  static const std::vector<double>& bounds = *new std::vector<double>{
      50,    100,   250,    500,    1000,   2500,   5000,
      10000, 25000, 50000, 100000, 250000, 1000000};
  return bounds;
}

ThreadPool::ThreadPool(int threads)
    : jobs_metric_(&trace::MetricsRegistry::global().counter(
          "isex_pool_jobs_total")),
      steals_metric_(&trace::MetricsRegistry::global().counter(
          "isex_pool_steals_total")),
      task_seconds_metric_(&trace::MetricsRegistry::global().histogram(
          "isex_pool_task_seconds", task_bounds_seconds())) {
  if (threads <= 0) threads = default_jobs();
  ISEX_ASSERT(task_duration_bounds_us().size() + 1 == kTaskBins);
  workers_.reserve(static_cast<std::size_t>(threads));
  for (int i = 0; i < threads; ++i)
    workers_.push_back(std::make_unique<Worker>());
  prof_slots_.reserve(static_cast<std::size_t>(threads) + 1);
  for (int i = 0; i < threads + 1; ++i)
    prof_slots_.push_back(std::make_unique<ProfSlot>());
  threads_.reserve(static_cast<std::size_t>(threads));
  for (int i = 0; i < threads; ++i)
    threads_.emplace_back([this, i]() { worker_loop(i); });
}

ThreadPool::~ThreadPool() {
  stop_.store(true, std::memory_order_release);
  {
    // Pair the flag with the lock so a worker checking the predicate between
    // its test and its wait cannot miss the notification.
    std::lock_guard<std::mutex> lock(wake_mutex_);
  }
  wake_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::enqueue(std::function<void()> task) {
  ISEX_ASSERT(!workers_.empty());
  // Trace-context propagation: carry the submitter's ambient context across
  // the thread hop so spans recorded inside the task parent under the span
  // (stage, job) that spawned it.  Costs nothing while tracing is off.
  if (trace::Tracer::global().enabled()) {
    const trace::TraceContext ctx = trace::current_context();
    if (ctx.active()) {
      task = [ctx, inner = std::move(task)]() {
        const trace::ContextScope scope(ctx);
        inner();
      };
    }
  }
  const std::size_t target =
      next_worker_.fetch_add(1, std::memory_order_relaxed) % workers_.size();
  {
    std::lock_guard<std::mutex> lock(workers_[target]->mutex);
    workers_[target]->queue.push_back(std::move(task));
  }
  pending_.fetch_add(1, std::memory_order_release);
  {
    std::lock_guard<std::mutex> lock(wake_mutex_);
  }
  wake_cv_.notify_one();
}

bool ThreadPool::run_one(int self) {
  const std::size_t n = workers_.size();
  std::function<void()> task;
  bool stolen = false;
  // Own deque first (back = LIFO, cache-warm), then sweep the others from
  // the front (FIFO) — classic work stealing.
  const std::size_t start = self >= 0 ? static_cast<std::size_t>(self) : 0;
  for (std::size_t k = 0; k < n && !task; ++k) {
    const std::size_t w = (start + k) % n;
    Worker& worker = *workers_[w];
    std::lock_guard<std::mutex> lock(worker.mutex);
    if (worker.queue.empty()) continue;
    const bool own = self >= 0 && w == static_cast<std::size_t>(self);
    if (own) {
      task = std::move(worker.queue.back());
      worker.queue.pop_back();
    } else {
      task = std::move(worker.queue.front());
      worker.queue.pop_front();
      stolen = true;
    }
  }
  if (!task) return false;
  pending_.fetch_sub(1, std::memory_order_acq_rel);
  if (stolen) {
    steals_.fetch_add(1, std::memory_order_relaxed);
    steals_metric_->inc();
  }
  jobs_run_.fetch_add(1, std::memory_order_relaxed);
  jobs_metric_->inc();
  if (profiling()) {
    const auto t0 = std::chrono::steady_clock::now();
    task();
    record_profiled_task(self, stolen, elapsed_ns(t0));
  } else {
    task();
  }
  return true;
}

void ThreadPool::record_profiled_task(int self, bool stolen,
                                      std::uint64_t ns) {
  ProfSlot& slot =
      *prof_slots_[self >= 0 ? static_cast<std::size_t>(self)
                             : workers_.size()];
  slot.tasks.fetch_add(1, std::memory_order_relaxed);
  if (stolen) slot.steals.fetch_add(1, std::memory_order_relaxed);
  slot.busy_ns.fetch_add(ns, std::memory_order_relaxed);
  prof_task_count_.fetch_add(1, std::memory_order_relaxed);
  prof_task_ns_.fetch_add(ns, std::memory_order_relaxed);
  const double us = static_cast<double>(ns) * 1e-3;
  const std::vector<double>& bounds = task_duration_bounds_us();
  std::size_t bin = bounds.size();
  for (std::size_t i = 0; i < bounds.size(); ++i) {
    if (us <= bounds[i]) {
      bin = i;
      break;
    }
  }
  task_bins_[bin].fetch_add(1, std::memory_order_relaxed);
  task_seconds_metric_->observe(static_cast<double>(ns) * 1e-9);
}

void ThreadPool::worker_loop(int index) {
  tls_current_pool = this;
  for (;;) {
    if (run_one(index)) continue;
    const bool prof = profiling();
    const auto idle_start = prof ? std::chrono::steady_clock::now()
                                 : std::chrono::steady_clock::time_point{};
    {
      std::unique_lock<std::mutex> lock(wake_mutex_);
      wake_cv_.wait(lock, [this]() {
        return stop_.load(std::memory_order_acquire) ||
               pending_.load(std::memory_order_acquire) > 0;
      });
    }
    if (prof) {
      prof_slots_[static_cast<std::size_t>(index)]->idle_ns.fetch_add(
          elapsed_ns(idle_start), std::memory_order_relaxed);
    }
    if (stop_.load(std::memory_order_acquire) &&
        pending_.load(std::memory_order_acquire) == 0)
      break;
  }
  tls_current_pool = nullptr;
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& body) {
  if (n == 0) return;
  // Nested fan-out from one of our own workers runs inline: the worker's
  // task slot *is* this fan-out's budget, and queue-and-wait from inside a
  // worker could deadlock a fully busy pool.
  if (on_worker_thread() || workers_.empty() || n == 1) {
    for (std::size_t i = 0; i < n; ++i) body(i);
    return;
  }

  struct Join {
    std::atomic<std::size_t> remaining;
    std::mutex mutex;
    std::condition_variable done;
    std::exception_ptr first_error;
  };
  auto join = std::make_shared<Join>();
  join->remaining.store(n, std::memory_order_relaxed);

  for (std::size_t i = 0; i < n; ++i) {
    enqueue([join, i, &body]() {
      try {
        body(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(join->mutex);
        if (!join->first_error) join->first_error = std::current_exception();
      }
      if (join->remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        {
          std::lock_guard<std::mutex> lock(join->mutex);
        }
        join->done.notify_all();
      }
    });
  }

  // Help while waiting: drain pool tasks on this thread instead of blocking,
  // so the caller contributes a core and nested pools cannot starve.
  while (join->remaining.load(std::memory_order_acquire) > 0) {
    if (run_one(/*self=*/-1)) continue;
    std::unique_lock<std::mutex> lock(join->mutex);
    join->done.wait_for(lock, std::chrono::milliseconds(1), [&]() {
      return join->remaining.load(std::memory_order_acquire) == 0;
    });
  }
  if (join->first_error) std::rethrow_exception(join->first_error);
}

PoolStats ThreadPool::stats() const {
  PoolStats s;
  s.jobs_run = jobs_run_.load(std::memory_order_relaxed);
  s.steals = steals_.load(std::memory_order_relaxed);
  s.threads = num_threads();
  return s;
}

std::vector<WorkerOccupancy> ThreadPool::occupancy() const {
  std::vector<WorkerOccupancy> out;
  out.reserve(prof_slots_.size());
  for (const auto& slot : prof_slots_) {
    WorkerOccupancy w;
    w.tasks = slot->tasks.load(std::memory_order_relaxed);
    w.steals = slot->steals.load(std::memory_order_relaxed);
    w.busy_seconds =
        static_cast<double>(slot->busy_ns.load(std::memory_order_relaxed)) *
        1e-9;
    w.idle_seconds =
        static_cast<double>(slot->idle_ns.load(std::memory_order_relaxed)) *
        1e-9;
    out.push_back(w);
  }
  return out;
}

std::vector<std::uint64_t> ThreadPool::task_duration_counts() const {
  std::vector<std::uint64_t> counts(kTaskBins);
  for (std::size_t i = 0; i < kTaskBins; ++i)
    counts[i] = task_bins_[i].load(std::memory_order_relaxed);
  return counts;
}

bool ThreadPool::on_worker_thread() const { return tls_current_pool == this; }

namespace {

std::mutex g_default_pool_mutex;
std::unique_ptr<ThreadPool> g_default_pool;
int g_default_jobs_override = 0;

}  // namespace

ThreadPool& ThreadPool::default_pool() {
  std::lock_guard<std::mutex> lock(g_default_pool_mutex);
  if (!g_default_pool) {
    g_default_pool = std::make_unique<ThreadPool>(
        g_default_jobs_override > 0 ? g_default_jobs_override : 0);
  }
  return *g_default_pool;
}

void ThreadPool::set_default_jobs(int jobs) {
  std::lock_guard<std::mutex> lock(g_default_pool_mutex);
  g_default_jobs_override = jobs;
  g_default_pool.reset();  // rebuilt lazily at the new size
}

int ThreadPool::default_jobs() {
  if (const char* env = std::getenv("ISEX_JOBS")) {
    const int v = std::atoi(env);
    if (v >= 1) return v;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

}  // namespace isex::runtime
