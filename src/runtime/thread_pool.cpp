#include "runtime/thread_pool.hpp"

#include <chrono>
#include <cstdlib>

#include "util/assert.hpp"

namespace isex::runtime {
namespace {

/// Set for the duration of a worker loop; lets parallel_for detect nesting.
thread_local const ThreadPool* tls_current_pool = nullptr;

}  // namespace

ThreadPool::ThreadPool(int threads)
    : jobs_metric_(&trace::MetricsRegistry::global().counter(
          "isex_pool_jobs_total")),
      steals_metric_(&trace::MetricsRegistry::global().counter(
          "isex_pool_steals_total")) {
  if (threads <= 0) threads = default_jobs();
  workers_.reserve(static_cast<std::size_t>(threads));
  for (int i = 0; i < threads; ++i)
    workers_.push_back(std::make_unique<Worker>());
  threads_.reserve(static_cast<std::size_t>(threads));
  for (int i = 0; i < threads; ++i)
    threads_.emplace_back([this, i]() { worker_loop(i); });
}

ThreadPool::~ThreadPool() {
  stop_.store(true, std::memory_order_release);
  {
    // Pair the flag with the lock so a worker checking the predicate between
    // its test and its wait cannot miss the notification.
    std::lock_guard<std::mutex> lock(wake_mutex_);
  }
  wake_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::enqueue(std::function<void()> task) {
  ISEX_ASSERT(!workers_.empty());
  const std::size_t target =
      next_worker_.fetch_add(1, std::memory_order_relaxed) % workers_.size();
  {
    std::lock_guard<std::mutex> lock(workers_[target]->mutex);
    workers_[target]->queue.push_back(std::move(task));
  }
  pending_.fetch_add(1, std::memory_order_release);
  {
    std::lock_guard<std::mutex> lock(wake_mutex_);
  }
  wake_cv_.notify_one();
}

bool ThreadPool::run_one(int self) {
  const std::size_t n = workers_.size();
  std::function<void()> task;
  bool stolen = false;
  // Own deque first (back = LIFO, cache-warm), then sweep the others from
  // the front (FIFO) — classic work stealing.
  const std::size_t start = self >= 0 ? static_cast<std::size_t>(self) : 0;
  for (std::size_t k = 0; k < n && !task; ++k) {
    const std::size_t w = (start + k) % n;
    Worker& worker = *workers_[w];
    std::lock_guard<std::mutex> lock(worker.mutex);
    if (worker.queue.empty()) continue;
    const bool own = self >= 0 && w == static_cast<std::size_t>(self);
    if (own) {
      task = std::move(worker.queue.back());
      worker.queue.pop_back();
    } else {
      task = std::move(worker.queue.front());
      worker.queue.pop_front();
      stolen = true;
    }
  }
  if (!task) return false;
  pending_.fetch_sub(1, std::memory_order_acq_rel);
  if (stolen) {
    steals_.fetch_add(1, std::memory_order_relaxed);
    steals_metric_->inc();
  }
  jobs_run_.fetch_add(1, std::memory_order_relaxed);
  jobs_metric_->inc();
  task();
  return true;
}

void ThreadPool::worker_loop(int index) {
  tls_current_pool = this;
  for (;;) {
    if (run_one(index)) continue;
    std::unique_lock<std::mutex> lock(wake_mutex_);
    wake_cv_.wait(lock, [this]() {
      return stop_.load(std::memory_order_acquire) ||
             pending_.load(std::memory_order_acquire) > 0;
    });
    if (stop_.load(std::memory_order_acquire) &&
        pending_.load(std::memory_order_acquire) == 0)
      break;
  }
  tls_current_pool = nullptr;
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& body) {
  if (n == 0) return;
  // Nested fan-out from one of our own workers runs inline: the worker's
  // task slot *is* this fan-out's budget, and queue-and-wait from inside a
  // worker could deadlock a fully busy pool.
  if (on_worker_thread() || workers_.empty() || n == 1) {
    for (std::size_t i = 0; i < n; ++i) body(i);
    return;
  }

  struct Join {
    std::atomic<std::size_t> remaining;
    std::mutex mutex;
    std::condition_variable done;
    std::exception_ptr first_error;
  };
  auto join = std::make_shared<Join>();
  join->remaining.store(n, std::memory_order_relaxed);

  for (std::size_t i = 0; i < n; ++i) {
    enqueue([join, i, &body]() {
      try {
        body(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(join->mutex);
        if (!join->first_error) join->first_error = std::current_exception();
      }
      if (join->remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        {
          std::lock_guard<std::mutex> lock(join->mutex);
        }
        join->done.notify_all();
      }
    });
  }

  // Help while waiting: drain pool tasks on this thread instead of blocking,
  // so the caller contributes a core and nested pools cannot starve.
  while (join->remaining.load(std::memory_order_acquire) > 0) {
    if (run_one(/*self=*/-1)) continue;
    std::unique_lock<std::mutex> lock(join->mutex);
    join->done.wait_for(lock, std::chrono::milliseconds(1), [&]() {
      return join->remaining.load(std::memory_order_acquire) == 0;
    });
  }
  if (join->first_error) std::rethrow_exception(join->first_error);
}

PoolStats ThreadPool::stats() const {
  PoolStats s;
  s.jobs_run = jobs_run_.load(std::memory_order_relaxed);
  s.steals = steals_.load(std::memory_order_relaxed);
  s.threads = num_threads();
  return s;
}

bool ThreadPool::on_worker_thread() const { return tls_current_pool == this; }

namespace {

std::mutex g_default_pool_mutex;
std::unique_ptr<ThreadPool> g_default_pool;
int g_default_jobs_override = 0;

}  // namespace

ThreadPool& ThreadPool::default_pool() {
  std::lock_guard<std::mutex> lock(g_default_pool_mutex);
  if (!g_default_pool) {
    g_default_pool = std::make_unique<ThreadPool>(
        g_default_jobs_override > 0 ? g_default_jobs_override : 0);
  }
  return *g_default_pool;
}

void ThreadPool::set_default_jobs(int jobs) {
  std::lock_guard<std::mutex> lock(g_default_pool_mutex);
  g_default_jobs_override = jobs;
  g_default_pool.reset();  // rebuilt lazily at the new size
}

int ThreadPool::default_jobs() {
  if (const char* env = std::getenv("ISEX_JOBS")) {
    const int v = std::atoi(env);
    if (v >= 1) return v;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

}  // namespace isex::runtime
