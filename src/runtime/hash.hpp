// Stable structural fingerprints for evaluation memoization.
//
// The schedule-evaluation cache (eval_cache.hpp) keys on *what the list
// scheduler actually reads*: the DFG structure (opcodes, ISE supernode
// payloads, edges, live-in/live-out annotations) plus the machine
// configuration and priority function.  Fingerprints are 64-bit mixes
// computed from two independent seeds and combined into a 128-bit key, so an
// accidental collision — which would silently return the wrong cycle count
// and break the determinism contract — is negligible in any realistic run.
//
// Node labels are deliberately excluded: they are cosmetic and hashing them
// would split otherwise-identical schedules into distinct cache lines.
#pragma once

#include <cstdint>
#include <vector>

#include "dfg/graph.hpp"
#include "sched/machine_config.hpp"
#include "sched/priority.hpp"

namespace isex::runtime {

/// SplitMix64-style accumulator; stable across platforms and runs (no
/// pointer or address-dependent input is ever mixed in).
class Hash64 {
 public:
  explicit Hash64(std::uint64_t seed = 0) : h_(seed ^ 0x9e3779b97f4a7c15ULL) {}

  void mix(std::uint64_t x) {
    h_ += x + 0x9e3779b97f4a7c15ULL;
    h_ = (h_ ^ (h_ >> 30)) * 0xbf58476d1ce4e5b9ULL;
    h_ = (h_ ^ (h_ >> 27)) * 0x94d049bb133111ebULL;
    h_ ^= h_ >> 31;
  }

  void mix_double(double x);

  std::uint64_t value() const { return h_; }

 private:
  std::uint64_t h_;
};

/// 128-bit cache key (two independently seeded 64-bit fingerprints).
struct Key128 {
  std::uint64_t lo = 0;
  std::uint64_t hi = 0;

  friend bool operator==(const Key128&, const Key128&) = default;
};

struct Key128Hash {
  std::size_t operator()(const Key128& k) const noexcept {
    return static_cast<std::size_t>(k.lo ^ (k.hi * 0x9e3779b97f4a7c15ULL));
  }
};

/// Structural fingerprint of a DFG: nodes (opcode / ISE payload), edges,
/// extern-input value ids, live-out flags.  Labels are excluded.
std::uint64_t fingerprint(const dfg::Graph& graph, std::uint64_t seed);

/// Fingerprint of the scheduler-visible machine model: issue width, register
/// ports, per-class FU counts.
std::uint64_t fingerprint(const sched::MachineConfig& machine,
                          std::uint64_t seed);

/// Key for one schedule evaluation: (canonical DFG, machine, priority).
Key128 schedule_key(const dfg::Graph& graph,
                    const sched::MachineConfig& machine,
                    sched::PriorityKind priority);

/// Reusable two-seed digest of a base graph.  Computed once per round, then
/// combined with per-candidate data by candidate_key() — O(V + E) once
/// instead of per candidate.
Key128 graph_digest(const dfg::Graph& graph);

/// Canonical signature of one Make-Convex candidate evaluation:
/// (base-graph digest, member set, ISE payload, machine, priority).  The
/// scheduled makespan of base.collapse(members, info) is a pure function of
/// this tuple, so identical candidates re-surfacing across walks, rounds,
/// and explore_best_of repeats hit the eval cache without re-fingerprinting
/// a freshly collapsed graph.  Keys live in a separate domain from
/// schedule_key (distinct seeds), so the two families cannot alias.
Key128 candidate_key(const Key128& base_digest, const dfg::NodeSet& members,
                     const dfg::IseInfo& info,
                     const sched::MachineConfig& machine,
                     sched::PriorityKind priority);

// ---------------------------------------------------------------------------
// Canonical (node-id-independent) fingerprints.
//
// fingerprint()/graph_digest()/candidate_key() above mix raw node ids, so two
// structurally identical blocks whose statements were merely emitted in a
// different order — the normal case for isomorphic candidates lifted from
// different kernels — get unrelated keys.  The canonical family below labels
// every node by iterative structural refinement (Weisfeiler–Leman style:
// start from local shape — opcode, ISE payload, liveness, extern value ids,
// degree — then repeatedly fold in operand-ordered predecessor labels and the
// sorted multiset of successor labels) and digests the *sorted* final labels,
// so the result is invariant under any renumbering that preserves structure
// and operand order.
//
// These keys are for *detection* (isomorphism telemetry, portfolio dedup
// accounting, regression tests) — never for sharing memoized makespans: the
// list scheduler breaks priority ties by node id, so isomorphic-but-
// renumbered graphs may legally schedule to different cycle counts.  Value-
// carrying caches stay on the exact keys above.

/// Per-node canonical labels plus the whole-graph canonical digest.  Compute
/// once per graph, then derive per-candidate keys from the member labels.
struct CanonicalLabeling {
  Key128 digest;
  /// Refined label per node, two independent streams (lo/hi key halves).
  std::vector<std::uint64_t> lo;
  std::vector<std::uint64_t> hi;
};

CanonicalLabeling canonical_labeling(const dfg::Graph& graph);

/// Convenience: canonical_labeling(graph).digest.
Key128 canonical_graph_digest(const dfg::Graph& graph);

/// Canonical analogue of candidate_key(): identical for structurally
/// isomorphic (candidate, base graph) pairs regardless of node numbering.
/// `members` is interpreted against the labeling's graph.
Key128 canonical_candidate_key(const CanonicalLabeling& labeling,
                               const dfg::NodeSet& members,
                               const dfg::IseInfo& info,
                               const sched::MachineConfig& machine,
                               sched::PriorityKind priority);

}  // namespace isex::runtime
