#include "runtime/job_graph.hpp"

#include <condition_variable>
#include <mutex>
#include <stdexcept>
#include <utility>

#include "util/assert.hpp"

namespace isex::runtime {

JobGraph::JobId JobGraph::add(std::string name, std::function<void()> fn) {
  ISEX_ASSERT_MSG(!ran_, "JobGraph is single-shot");
  Job job;
  job.name = std::move(name);
  job.fn = std::move(fn);
  jobs_.push_back(std::move(job));
  return jobs_.size() - 1;
}

void JobGraph::add_dependency(JobId job, JobId prerequisite) {
  ISEX_ASSERT(job < jobs_.size() && prerequisite < jobs_.size());
  ISEX_ASSERT_MSG(job != prerequisite, "a job cannot depend on itself");
  jobs_[prerequisite].successors.push_back(job);
  ++jobs_[job].prerequisites;
}

void JobGraph::run(ThreadPool& pool) {
  ISEX_ASSERT_MSG(!ran_, "JobGraph is single-shot");
  ran_ = true;
  if (jobs_.empty()) return;

  // Kahn topological order up front; a cycle is a caller bug and must be
  // reported before anything executes.
  std::vector<int> prereqs(jobs_.size());
  for (JobId id = 0; id < jobs_.size(); ++id)
    prereqs[id] = jobs_[id].prerequisites;
  std::vector<JobId> order;
  {
    std::vector<int> remaining = prereqs;
    order.reserve(jobs_.size());
    for (JobId id = 0; id < jobs_.size(); ++id)
      if (remaining[id] == 0) order.push_back(id);
    for (std::size_t head = 0; head < order.size(); ++head)
      for (const JobId s : jobs_[order[head]].successors)
        if (--remaining[s] == 0) order.push_back(s);
    if (order.size() != jobs_.size())
      throw std::logic_error("JobGraph: dependency cycle");
  }

  // Serial fallback: inside a worker, queue-and-wait could deadlock a busy
  // pool; topological order preserves the parallel path's contract exactly.
  if (pool.on_worker_thread() || pool.num_threads() == 0) {
    std::vector<bool> poisoned(jobs_.size(), false);
    std::exception_ptr first_error;
    for (const JobId id : order) {
      Job& job = jobs_[id];
      if (poisoned[id]) {
        job.state = State::kSkipped;
      } else {
        try {
          job.fn();
          job.state = State::kDone;
        } catch (...) {
          job.state = State::kFailed;
          if (!first_error) first_error = std::current_exception();
        }
      }
      if (job.state != State::kDone)
        for (const JobId s : job.successors) poisoned[s] = true;
    }
    if (first_error) std::rethrow_exception(first_error);
    return;
  }

  struct Shared {
    std::mutex mutex;
    std::condition_variable done_cv;
    std::size_t finished = 0;
    std::exception_ptr first_error;
    std::vector<int> remaining;
    std::vector<bool> poisoned;
  };
  Shared shared;
  shared.remaining = prereqs;
  shared.poisoned.assign(jobs_.size(), false);

  // Records one job's outcome, poisons/releases successors, and collects
  // jobs that just became runnable.  Caller holds shared.mutex.
  auto finish = [&](JobId id, State state, std::vector<JobId>& runnable) {
    std::vector<std::pair<JobId, State>> stack = {{id, state}};
    while (!stack.empty()) {
      const auto [cur, cur_state] = stack.back();
      stack.pop_back();
      jobs_[cur].state = cur_state;
      ++shared.finished;
      for (const JobId s : jobs_[cur].successors) {
        if (cur_state != State::kDone) shared.poisoned[s] = true;
        if (--shared.remaining[s] == 0) {
          if (shared.poisoned[s]) {
            stack.emplace_back(s, State::kSkipped);
          } else {
            runnable.push_back(s);
          }
        }
      }
    }
  };

  std::function<void(JobId)> dispatch = [&](JobId id) {
    (void)pool.submit([&, id]() {
      State state = State::kDone;
      try {
        jobs_[id].fn();
      } catch (...) {
        state = State::kFailed;
        std::lock_guard<std::mutex> lock(shared.mutex);
        if (!shared.first_error) shared.first_error = std::current_exception();
      }
      std::vector<JobId> runnable;
      {
        // Notify while still holding the mutex: the waiter cannot wake, see
        // the predicate, and destroy `shared` until we release it — after
        // which this thread never touches `shared` again.
        std::lock_guard<std::mutex> lock(shared.mutex);
        finish(id, state, runnable);
        if (shared.finished == jobs_.size()) shared.done_cv.notify_all();
      }
      for (const JobId r : runnable) dispatch(r);
    });
  };

  for (JobId id = 0; id < jobs_.size(); ++id)
    if (prereqs[id] == 0) dispatch(id);

  std::unique_lock<std::mutex> lock(shared.mutex);
  shared.done_cv.wait(lock, [&]() { return shared.finished == jobs_.size(); });
  if (shared.first_error) std::rethrow_exception(shared.first_error);
}

}  // namespace isex::runtime
