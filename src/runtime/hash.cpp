#include "runtime/hash.hpp"

#include <algorithm>
#include <bit>

namespace isex::runtime {

void Hash64::mix_double(double x) {
  // +0.0 and -0.0 schedule identically; canonicalize before taking bits.
  if (x == 0.0) x = 0.0;
  mix(std::bit_cast<std::uint64_t>(x));
}

std::uint64_t fingerprint(const dfg::Graph& graph, std::uint64_t seed) {
  Hash64 h(seed);
  h.mix(graph.num_nodes());
  for (dfg::NodeId v = 0; v < graph.num_nodes(); ++v) {
    const dfg::Node& node = graph.node(v);
    h.mix(static_cast<std::uint64_t>(node.opcode));
    h.mix(node.is_ise ? 1 : 0);
    if (node.is_ise) {
      h.mix(static_cast<std::uint64_t>(node.ise.latency_cycles));
      h.mix_double(node.ise.area);
      h.mix(static_cast<std::uint64_t>(node.ise.num_inputs));
      h.mix(static_cast<std::uint64_t>(node.ise.num_outputs));
    }
    // Mixed only when annotated (tagged so a latency of 0 cannot alias):
    // unannotated graphs keep their historic digests while the scheduler
    // input — which mem_latency is — still keys the evaluation caches.
    if (node.mem_latency > 0) {
      h.mix(0x6d656d6c61746379ULL);  // "memlatcy" tag
      h.mix(static_cast<std::uint64_t>(node.mem_latency));
    }
    const auto preds = graph.preds(v);
    h.mix(preds.size());
    for (const dfg::NodeId p : preds) h.mix(p);
    const auto extern_ids = graph.extern_input_ids(v);
    h.mix(extern_ids.size());
    for (const int id : extern_ids) h.mix(static_cast<std::uint64_t>(id));
    h.mix(graph.live_out(v) ? 1 : 0);
  }
  return h.value();
}

std::uint64_t fingerprint(const sched::MachineConfig& machine,
                          std::uint64_t seed) {
  Hash64 h(seed);
  h.mix(static_cast<std::uint64_t>(machine.issue_width));
  h.mix(static_cast<std::uint64_t>(machine.reg_file.read_ports));
  h.mix(static_cast<std::uint64_t>(machine.reg_file.write_ports));
  for (const int fu : machine.fu_counts) h.mix(static_cast<std::uint64_t>(fu));
  return h.value();
}

Key128 schedule_key(const dfg::Graph& graph,
                    const sched::MachineConfig& machine,
                    sched::PriorityKind priority) {
  Key128 key;
  // Two independent seeds per half so a single-stream collision cannot alias
  // two distinct (graph, machine, priority) triples.
  Hash64 lo(0x517cc1b727220a95ULL);
  lo.mix(fingerprint(graph, 0xa0761d6478bd642fULL));
  lo.mix(fingerprint(machine, 0xe7037ed1a0b428dbULL));
  lo.mix(static_cast<std::uint64_t>(priority));
  key.lo = lo.value();
  Hash64 hi(0x8ebc6af09c88c6e3ULL);
  hi.mix(fingerprint(graph, 0x589965cc75374cc3ULL));
  hi.mix(fingerprint(machine, 0x1d8e4e27c47d124fULL));
  hi.mix(static_cast<std::uint64_t>(priority));
  key.hi = hi.value();
  return key;
}

Key128 graph_digest(const dfg::Graph& graph) {
  return Key128{fingerprint(graph, 0x2545f4914f6cdd1dULL),
                fingerprint(graph, 0x9e6c63d0876a9a47ULL)};
}

Key128 candidate_key(const Key128& base_digest, const dfg::NodeSet& members,
                     const dfg::IseInfo& info,
                     const sched::MachineConfig& machine,
                     sched::PriorityKind priority) {
  const auto mix_candidate = [&](Hash64& h) {
    h.mix(members.universe());
    for (const std::uint64_t w : members.words()) h.mix(w);
    h.mix(static_cast<std::uint64_t>(info.latency_cycles));
    h.mix_double(info.area);
    h.mix(static_cast<std::uint64_t>(info.num_inputs));
    h.mix(static_cast<std::uint64_t>(info.num_outputs));
    h.mix(static_cast<std::uint64_t>(priority));
  };
  Key128 key;
  Hash64 lo(0x6a09e667f3bcc909ULL);  // domain-separates from schedule_key
  lo.mix(base_digest.lo);
  mix_candidate(lo);
  lo.mix(fingerprint(machine, 0xbb67ae8584caa73bULL));
  key.lo = lo.value();
  Hash64 hi(0x3c6ef372fe94f82bULL);
  hi.mix(base_digest.hi);
  mix_candidate(hi);
  hi.mix(fingerprint(machine, 0xa54ff53a5f1d36f1ULL));
  key.hi = hi.value();
  return key;
}

namespace {

/// One finished mix step: compress an accumulated tuple into a 64-bit label.
std::uint64_t squash(Hash64 h) { return h.value(); }

/// Iteratively refined structural labels for one seed stream.  The initial
/// label is local shape only; each round folds in operand-ordered
/// predecessor labels and the *sorted* successor labels (successor list
/// order is an id artifact, operand order is semantics).  The fixpoint is
/// reached within the graph's depth; 32 rounds covers any realistic block
/// and keeps the cost linear.
std::vector<std::uint64_t> refined_labels(const dfg::Graph& graph,
                                          std::uint64_t seed) {
  const std::size_t n = graph.num_nodes();
  std::vector<std::uint64_t> labels(n);
  for (dfg::NodeId v = 0; v < n; ++v) {
    const dfg::Node& node = graph.node(v);
    Hash64 h(seed);
    h.mix(static_cast<std::uint64_t>(node.opcode));
    h.mix(node.is_ise ? 1 : 0);
    if (node.is_ise) {
      h.mix(static_cast<std::uint64_t>(node.ise.latency_cycles));
      h.mix_double(node.ise.area);
      h.mix(static_cast<std::uint64_t>(node.ise.num_inputs));
      h.mix(static_cast<std::uint64_t>(node.ise.num_outputs));
    }
    if (node.mem_latency > 0) {
      h.mix(0x6d656d6c61746379ULL);  // same conditional rule as fingerprint()
      h.mix(static_cast<std::uint64_t>(node.mem_latency));
    }
    const auto extern_ids = graph.extern_input_ids(v);
    h.mix(extern_ids.size());
    for (const int id : extern_ids) h.mix(static_cast<std::uint64_t>(id));
    h.mix(graph.live_out(v) ? 1 : 0);
    h.mix(graph.preds(v).size());
    h.mix(graph.succs(v).size());
    labels[v] = squash(h);
  }

  const std::size_t rounds = std::min<std::size_t>(n, 32);
  std::vector<std::uint64_t> next(n);
  std::vector<std::uint64_t> succ_scratch;
  for (std::size_t round = 0; round < rounds; ++round) {
    for (dfg::NodeId v = 0; v < n; ++v) {
      Hash64 h(seed ^ (0x9e3779b97f4a7c15ULL + round));
      h.mix(labels[v]);
      const auto preds = graph.preds(v);
      h.mix(preds.size());
      for (const dfg::NodeId p : preds) h.mix(labels[p]);
      const auto succs = graph.succs(v);
      succ_scratch.assign(succs.begin(), succs.end());
      std::sort(succ_scratch.begin(), succ_scratch.end(),
                [&](dfg::NodeId a, dfg::NodeId b) {
                  return labels[a] < labels[b];
                });
      h.mix(succ_scratch.size());
      for (const dfg::NodeId s : succ_scratch) h.mix(labels[s]);
      next[v] = squash(h);
    }
    labels.swap(next);
  }
  return labels;
}

std::uint64_t digest_of_labels(const std::vector<std::uint64_t>& labels,
                               std::uint64_t seed) {
  std::vector<std::uint64_t> sorted = labels;
  std::sort(sorted.begin(), sorted.end());
  Hash64 h(seed);
  h.mix(sorted.size());
  for (const std::uint64_t label : sorted) h.mix(label);
  return h.value();
}

}  // namespace

CanonicalLabeling canonical_labeling(const dfg::Graph& graph) {
  CanonicalLabeling out;
  // Own seed constants: the canonical family must never alias the exact
  // digest domains above.
  out.lo = refined_labels(graph, 0x71c72e134d03df39ULL);
  out.hi = refined_labels(graph, 0xd6e8feb86659fd93ULL);
  out.digest.lo = digest_of_labels(out.lo, 0x243f6a8885a308d3ULL);
  out.digest.hi = digest_of_labels(out.hi, 0x13198a2e03707344ULL);
  return out;
}

Key128 canonical_graph_digest(const dfg::Graph& graph) {
  return canonical_labeling(graph).digest;
}

Key128 canonical_candidate_key(const CanonicalLabeling& labeling,
                               const dfg::NodeSet& members,
                               const dfg::IseInfo& info,
                               const sched::MachineConfig& machine,
                               sched::PriorityKind priority) {
  const auto member_hash = [&](const std::vector<std::uint64_t>& labels,
                               std::uint64_t seed) {
    std::vector<std::uint64_t> picked;
    members.for_each([&](dfg::NodeId v) { picked.push_back(labels[v]); });
    std::sort(picked.begin(), picked.end());
    Hash64 h(seed);
    h.mix(picked.size());
    for (const std::uint64_t label : picked) h.mix(label);
    return h.value();
  };
  const auto mix_candidate = [&](Hash64& h) {
    h.mix(static_cast<std::uint64_t>(info.latency_cycles));
    h.mix_double(info.area);
    h.mix(static_cast<std::uint64_t>(info.num_inputs));
    h.mix(static_cast<std::uint64_t>(info.num_outputs));
    h.mix(static_cast<std::uint64_t>(priority));
  };
  Key128 key;
  Hash64 lo(0xa4093822299f31d0ULL);  // canonical-candidate domain
  lo.mix(labeling.digest.lo);
  lo.mix(member_hash(labeling.lo, 0x082efa98ec4e6c89ULL));
  mix_candidate(lo);
  lo.mix(fingerprint(machine, 0x452821e638d01377ULL));
  key.lo = lo.value();
  Hash64 hi(0xbe5466cf34e90c6cULL);
  hi.mix(labeling.digest.hi);
  hi.mix(member_hash(labeling.hi, 0xc0ac29b7c97c50ddULL));
  mix_candidate(hi);
  hi.mix(fingerprint(machine, 0x3f84d5b5b5470917ULL));
  key.hi = hi.value();
  return key;
}

}  // namespace isex::runtime
