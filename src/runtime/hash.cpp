#include "runtime/hash.hpp"

#include <bit>

namespace isex::runtime {

void Hash64::mix_double(double x) {
  // +0.0 and -0.0 schedule identically; canonicalize before taking bits.
  if (x == 0.0) x = 0.0;
  mix(std::bit_cast<std::uint64_t>(x));
}

std::uint64_t fingerprint(const dfg::Graph& graph, std::uint64_t seed) {
  Hash64 h(seed);
  h.mix(graph.num_nodes());
  for (dfg::NodeId v = 0; v < graph.num_nodes(); ++v) {
    const dfg::Node& node = graph.node(v);
    h.mix(static_cast<std::uint64_t>(node.opcode));
    h.mix(node.is_ise ? 1 : 0);
    if (node.is_ise) {
      h.mix(static_cast<std::uint64_t>(node.ise.latency_cycles));
      h.mix_double(node.ise.area);
      h.mix(static_cast<std::uint64_t>(node.ise.num_inputs));
      h.mix(static_cast<std::uint64_t>(node.ise.num_outputs));
    }
    const auto preds = graph.preds(v);
    h.mix(preds.size());
    for (const dfg::NodeId p : preds) h.mix(p);
    const auto extern_ids = graph.extern_input_ids(v);
    h.mix(extern_ids.size());
    for (const int id : extern_ids) h.mix(static_cast<std::uint64_t>(id));
    h.mix(graph.live_out(v) ? 1 : 0);
  }
  return h.value();
}

std::uint64_t fingerprint(const sched::MachineConfig& machine,
                          std::uint64_t seed) {
  Hash64 h(seed);
  h.mix(static_cast<std::uint64_t>(machine.issue_width));
  h.mix(static_cast<std::uint64_t>(machine.reg_file.read_ports));
  h.mix(static_cast<std::uint64_t>(machine.reg_file.write_ports));
  for (const int fu : machine.fu_counts) h.mix(static_cast<std::uint64_t>(fu));
  return h.value();
}

Key128 schedule_key(const dfg::Graph& graph,
                    const sched::MachineConfig& machine,
                    sched::PriorityKind priority) {
  Key128 key;
  // Two independent seeds per half so a single-stream collision cannot alias
  // two distinct (graph, machine, priority) triples.
  Hash64 lo(0x517cc1b727220a95ULL);
  lo.mix(fingerprint(graph, 0xa0761d6478bd642fULL));
  lo.mix(fingerprint(machine, 0xe7037ed1a0b428dbULL));
  lo.mix(static_cast<std::uint64_t>(priority));
  key.lo = lo.value();
  Hash64 hi(0x8ebc6af09c88c6e3ULL);
  hi.mix(fingerprint(graph, 0x589965cc75374cc3ULL));
  hi.mix(fingerprint(machine, 0x1d8e4e27c47d124fULL));
  hi.mix(static_cast<std::uint64_t>(priority));
  key.hi = hi.value();
  return key;
}

Key128 graph_digest(const dfg::Graph& graph) {
  return Key128{fingerprint(graph, 0x2545f4914f6cdd1dULL),
                fingerprint(graph, 0x9e6c63d0876a9a47ULL)};
}

Key128 candidate_key(const Key128& base_digest, const dfg::NodeSet& members,
                     const dfg::IseInfo& info,
                     const sched::MachineConfig& machine,
                     sched::PriorityKind priority) {
  const auto mix_candidate = [&](Hash64& h) {
    h.mix(members.universe());
    for (const std::uint64_t w : members.words()) h.mix(w);
    h.mix(static_cast<std::uint64_t>(info.latency_cycles));
    h.mix_double(info.area);
    h.mix(static_cast<std::uint64_t>(info.num_inputs));
    h.mix(static_cast<std::uint64_t>(info.num_outputs));
    h.mix(static_cast<std::uint64_t>(priority));
  };
  Key128 key;
  Hash64 lo(0x6a09e667f3bcc909ULL);  // domain-separates from schedule_key
  lo.mix(base_digest.lo);
  mix_candidate(lo);
  lo.mix(fingerprint(machine, 0xbb67ae8584caa73bULL));
  key.lo = lo.value();
  Hash64 hi(0x3c6ef372fe94f82bULL);
  hi.mix(base_digest.hi);
  mix_candidate(hi);
  hi.mix(fingerprint(machine, 0xa54ff53a5f1d36f1ULL));
  key.hi = hi.value();
  return key;
}

}  // namespace isex::runtime
