// Disk-backed persistence for evaluation results — the warm-start layer
// under isex_serve (docs/SERVER.md).
//
// The in-memory EvalCache makes repeat evaluations cheap *within* a process;
// a long-running service also wants them cheap *across* restarts, and wants
// whole job results (serialized responses) to survive alongside the per-
// schedule cycle counts.  PersistentEvalCache stores both in one append-only
// log with an in-memory index:
//
//   * schedule-eval records: Key128 -> int32 cycle count, the exact entries
//     the sharded EvalCache holds.  load() replays them into a target cache
//     (warm start) and EvalCache's persist sink appends fresh insertions.
//   * blob records: Key128 -> opaque bytes.  isex_serve keys them on the
//     canonical job signature (graph_digest x machine x flow params) and
//     stores the serialized job result, so a repeat submission is answered
//     without re-exploring.
//
// Keys are the canonical structural signatures from hash.hpp — pure
// functions of their inputs, stable across platforms and runs — so a record
// written by one process is valid in any other.
//
// Durability model: append-only, one fsync-free write per record (a cache
// may lose its tail on power failure; it must never return a wrong value).
// Every record carries a checksum.  On load, a record that is truncated,
// oversized, or fails its checksum is *skipped and counted* — never a
// crash, never a partial entry — and a header from a different format
// version ignores the whole file (the next append starts it fresh).
// Appends are serialized by a mutex, so concurrent workers interleave whole
// records, never bytes.
#pragma once

#include <cstdint>
#include <cstdio>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <unordered_set>

#include "runtime/eval_cache.hpp"
#include "runtime/hash.hpp"
#include "util/error.hpp"

namespace isex::runtime {

/// What load() found in the log file.
struct PersistLoadReport {
  /// Schedule-eval records replayed into the target EvalCache.
  std::uint64_t schedule_entries = 0;
  /// Blob records indexed for lookup_blob().
  std::uint64_t blob_entries = 0;
  /// Records skipped: truncated tail, oversized length, or bad checksum.
  std::uint64_t corrupt_skipped = 0;
  /// The file had a valid-looking header from another format version; its
  /// contents were ignored and the file will be rewritten on first append.
  bool version_mismatch = false;
  /// Diagnostics (warnings for corruption/version, errors for I/O).
  ValidationReport report;
};

struct PersistStats {
  std::uint64_t appends = 0;
  std::uint64_t append_failures = 0;
  std::uint64_t blob_hits = 0;
  std::uint64_t blob_misses = 0;
};

class PersistentEvalCache {
 public:
  /// On-disk format version; bump on any layout change.  A file with a
  /// different version is ignored (warned, never read) — caches regenerate.
  static constexpr std::uint32_t kFormatVersion = 1;

  /// Binds to `path` without touching the disk; call load() to read it.
  explicit PersistentEvalCache(std::string path);
  ~PersistentEvalCache();

  PersistentEvalCache(const PersistentEvalCache&) = delete;
  PersistentEvalCache& operator=(const PersistentEvalCache&) = delete;

  /// Reads the log: schedule-eval records are inserted into `warm_into`
  /// (skipped when null) and blob records into the in-memory blob index.
  /// A missing file is a clean empty load.  Never throws; defects are
  /// counted and reported in the result.
  PersistLoadReport load(EvalCache* warm_into);

  /// Appends one schedule evaluation.  Keys already persisted (loaded or
  /// appended earlier in this process) are skipped, so wiring this as an
  /// EvalCache persist sink cannot grow the log with duplicates even when
  /// the in-memory cache evicts and re-inserts.
  void put_schedule_eval(const Key128& key, int value);

  /// Appends (and indexes) one result blob; a key already present is
  /// overwritten in the index and re-appended (last record wins on load).
  void put_blob(const Key128& key, std::string_view payload);

  std::optional<std::string> lookup_blob(const Key128& key);

  /// Flushes buffered appends to the OS.
  void flush();

  PersistStats stats() const;
  const std::string& path() const { return path_; }

  /// Schedule-eval keys persisted so far (loaded + appended this process).
  std::uint64_t schedule_entry_count() const;
  /// Blob records currently indexed for lookup_blob().
  std::uint64_t blob_entry_count() const;
  /// Current size of the on-disk log in bytes: flushes buffered appends
  /// first so the number matches what a restart would read.  0 in
  /// memory-only mode or when the file does not exist yet.
  std::uint64_t log_size_bytes() const;

 private:
  void append_record(std::uint8_t type, const Key128& key,
                     std::string_view payload);

  std::string path_;
  mutable std::mutex mutex_;
  /// Append stream; lazily opened (created with a fresh header when the
  /// file is missing or version-mismatched).  Owned via FILE* for exact
  /// control of flush/close; guarded by mutex_.
  std::FILE* out_ = nullptr;
  bool rewrite_on_open_ = false;  ///< version mismatch: truncate on append
  bool load_ran_ = false;
  std::unordered_set<Key128, Key128Hash> persisted_sched_;
  std::unordered_map<Key128, std::string, Key128Hash> blobs_;
  PersistStats stats_;
  trace::Counter* corrupt_metric_;
  trace::Counter* appends_metric_;
};

}  // namespace isex::runtime
