// Work-stealing thread pool — the execution substrate of isex_runtime.
//
// Design:
//   * one mutex-guarded deque per worker; owners pop LIFO (cache-warm),
//     thieves and helping external threads steal FIFO from the front;
//   * submit() round-robins tasks across worker deques and returns a
//     std::future; parallel_for() fans one body over [0, n) and blocks, with
//     the calling thread *helping* (executing queued tasks) while it waits,
//     so a pool is never idle just because its caller is;
//   * a parallel_for issued from inside one of this pool's workers runs
//     inline — nested fan-outs (a sweep harness parallelizing over programs
//     whose exploration itself fans out) degrade to serial execution inside
//     the job instead of deadlocking the pool.
//
// Determinism: the pool itself guarantees nothing about execution *order* —
// determinism of results is the fan-out layer's job (see job_graph.hpp): it
// derives per-job RNG streams serially before submission and reduces results
// by index, so any interleaving yields bit-identical output.
//
// Sizing: ThreadPool(0) and the process-wide default_pool() use
// default_jobs(): the ISEX_JOBS environment variable if set, else
// std::thread::hardware_concurrency().  tools/isex --jobs N overrides it.
#pragma once

#include <array>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

#include "runtime/pool_profile.hpp"
#include "trace/metrics.hpp"

namespace isex::runtime {

/// Counters a pool accumulates over its lifetime (see RuntimeStats).
struct PoolStats {
  std::uint64_t jobs_run = 0;
  /// Tasks taken from a deque the executing thread does not own (worker
  /// steals plus external threads helping inside parallel_for).
  std::uint64_t steals = 0;
  int threads = 0;
};

class ThreadPool {
 public:
  /// `threads` <= 0 selects default_jobs().
  explicit ThreadPool(int threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return static_cast<int>(workers_.size()); }

  /// Schedules `fn` and returns its future.  Exceptions thrown by `fn`
  /// surface from future::get().
  template <typename Fn>
  auto submit(Fn&& fn) -> std::future<std::invoke_result_t<Fn&>> {
    using R = std::invoke_result_t<Fn&>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<Fn>(fn));
    std::future<R> future = task->get_future();
    enqueue([task]() { (*task)(); });
    return future;
  }

  /// Runs body(0) … body(n-1), one task per index, and blocks until all
  /// completed.  The first exception (by completion order) is rethrown.
  /// Called from a worker of this pool, runs inline serially.
  void parallel_for(std::size_t n,
                    const std::function<void(std::size_t)>& body);

  PoolStats stats() const;

  /// Occupancy profiling (see pool_profile.hpp).  Off by default: each
  /// task then costs one extra relaxed load.  When on, a task pays two
  /// steady_clock reads plus a handful of relaxed atomic adds, and idle
  /// workers time their waits.  Counters accumulate across toggles.
  void set_profiling(bool enabled) {
    profiling_.store(enabled, std::memory_order_relaxed);
  }
  bool profiling() const {
    return profiling_.load(std::memory_order_relaxed);
  }

  /// Per-worker occupancy snapshot: num_threads() + 1 entries, the last
  /// being the synthetic slot for external threads helping in parallel_for.
  std::vector<WorkerOccupancy> occupancy() const;

  /// Task-duration histogram bucket bounds, microseconds (shared by every
  /// pool; the +Inf bucket is implicit).
  static const std::vector<double>& task_duration_bounds_us();
  /// Per-bucket counts (task_duration_bounds_us().size() + 1 entries).
  std::vector<std::uint64_t> task_duration_counts() const;
  std::uint64_t profiled_task_count() const {
    return prof_task_count_.load(std::memory_order_relaxed);
  }
  double profiled_task_seconds() const {
    return static_cast<double>(
               prof_task_ns_.load(std::memory_order_relaxed)) *
           1e-9;
  }

  /// True when the calling thread is one of this pool's workers.
  bool on_worker_thread() const;

  /// Process-wide shared pool, created on first use with default_jobs()
  /// threads.
  static ThreadPool& default_pool();

  /// Resizes the default pool (recreating it if already built).  Drives the
  /// --jobs CLI flag; jobs <= 0 restores default_jobs().
  static void set_default_jobs(int jobs);

  /// ISEX_JOBS env var if positive, else hardware_concurrency (min 1).
  static int default_jobs();

 private:
  struct Worker {
    std::deque<std::function<void()>> queue;
    std::mutex mutex;
  };

  /// One worker's profiling accounting; heap-allocated so the atomics sit
  /// on their own cache lines relative to the deque mutexes.  The slot at
  /// index num_threads() aggregates external helping threads.
  struct ProfSlot {
    std::atomic<std::uint64_t> tasks{0};
    std::atomic<std::uint64_t> steals{0};
    std::atomic<std::uint64_t> busy_ns{0};
    std::atomic<std::uint64_t> idle_ns{0};
  };

  void enqueue(std::function<void()> task);
  /// Pops one queued task and runs it; false when every deque was empty.
  /// `self` is the caller's worker index, or -1 for external threads.
  bool run_one(int self);
  void worker_loop(int index);
  void record_profiled_task(int self, bool stolen, std::uint64_t ns);

  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<std::thread> threads_;
  /// Process-wide metrics mirrored alongside the per-pool atomics: resolved
  /// once here so run_one() pays a plain atomic add, not a registry lookup.
  trace::Counter* jobs_metric_;
  trace::Counter* steals_metric_;
  /// Live copy of the task-duration histogram (seconds buckets) so /metrics
  /// shows task timings without an explicit PoolProfile publish.
  trace::Histogram* task_seconds_metric_;
  std::mutex wake_mutex_;
  std::condition_variable wake_cv_;
  std::atomic<std::size_t> pending_{0};
  std::atomic<std::uint64_t> next_worker_{0};
  std::atomic<std::uint64_t> jobs_run_{0};
  std::atomic<std::uint64_t> steals_{0};
  std::atomic<bool> stop_{false};
  std::atomic<bool> profiling_{false};
  std::vector<std::unique_ptr<ProfSlot>> prof_slots_;  ///< threads + 1
  /// Task-duration bins: task_duration_bounds_us().size() + 1 (+Inf last).
  static constexpr std::size_t kTaskBins = 14;
  std::array<std::atomic<std::uint64_t>, kTaskBins> task_bins_{};
  std::atomic<std::uint64_t> prof_task_count_{0};
  std::atomic<std::uint64_t> prof_task_ns_{0};
};

/// results[i] = fn(items[i]) with every call running as its own pool task;
/// the output order matches the input order regardless of scheduling.
template <typename T, typename Fn>
auto parallel_map(ThreadPool& pool, const std::vector<T>& items, Fn fn)
    -> std::vector<std::invoke_result_t<Fn&, const T&>> {
  using R = std::invoke_result_t<Fn&, const T&>;
  std::vector<R> results(items.size());
  pool.parallel_for(items.size(),
                    [&](std::size_t i) { results[i] = fn(items[i]); });
  return results;
}

}  // namespace isex::runtime
