#include "runtime/runtime_stats.hpp"

#include <ostream>

#include "trace/trace.hpp"

namespace isex::runtime {

void RuntimeStats::print(std::ostream& out) const {
  out << "runtime: " << pool.threads << " thread(s), " << pool.jobs_run
      << " job(s), " << pool.steals << " steal(s)\n";
  const std::uint64_t probes = schedule_cache.hits + schedule_cache.misses;
  out << "schedule cache: " << schedule_cache.hits << " hit(s) / " << probes
      << " probe(s)";
  if (probes > 0) {
    out << " (" << static_cast<int>(schedule_cache.hit_rate() * 100.0 + 0.5)
        << "% hit rate)";
  }
  out << ", " << schedule_cache.evictions << " eviction(s)\n";
  for (const auto& [stage, seconds] : stages) {
    out << "stage " << stage << ": " << seconds << " s\n";
  }
}

void RuntimeStats::publish(trace::MetricsRegistry& registry) const {
  registry.gauge("isex_pool_threads").set(pool.threads);
  registry.gauge("isex_pool_jobs").set(static_cast<double>(pool.jobs_run));
  registry.gauge("isex_pool_steals").set(static_cast<double>(pool.steals));
  registry.gauge("isex_schedule_cache_hit_rate")
      .set(schedule_cache.hit_rate());
  registry.gauge("isex_schedule_cache_probes")
      .set(static_cast<double>(schedule_cache.hits + schedule_cache.misses));
  for (const auto& [stage, seconds] : stages) {
    registry.gauge("isex_stage_seconds", {{"stage", stage}}).set(seconds);
  }
}

void StageTimes::record(const std::string& stage, double seconds) {
  // Stream into the process-wide registry first (monotonic counter: reset()
  // below clears this instance's report, not the metric history).
  trace::MetricsRegistry::global()
      .counter("isex_stage_seconds_total", {{"stage", stage}})
      .inc(seconds);
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, total] : stages_) {
    if (name == stage) {
      total += seconds;
      return;
    }
  }
  stages_.emplace_back(stage, seconds);
}

std::vector<std::pair<std::string, double>> StageTimes::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stages_;
}

void StageTimes::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  stages_.clear();
}

StageTimes& stage_times() {
  static StageTimes times;
  return times;
}

StageTimer::StageTimer(std::string stage)
    : stage_(std::move(stage)), start_(std::chrono::steady_clock::now()) {
  trace::Tracer& tracer = trace::Tracer::global();
  if (tracer.enabled()) {
    traced_ = true;
    trace_start_us_ = tracer.now_us();
    // Join the context tree: parent under the ambient context (the CLI
    // run's or server job's root span) and become the current context so
    // pool tasks fanned out during this stage nest under the stage span.
    span_id_ = trace::mint_span_id();
    parent_ = trace::current_context();
    trace::exchange_current_context(
        trace::TraceContext{parent_.trace_id, span_id_});
  }
}

StageTimer::~StageTimer() {
  const auto elapsed = std::chrono::steady_clock::now() - start_;
  if (traced_) {
    trace::exchange_current_context(parent_);
    trace::Tracer& tracer = trace::Tracer::global();
    tracer.record_span("stage:" + stage_, trace_start_us_,
                       tracer.now_us() - trace_start_us_, parent_.trace_id,
                       span_id_, parent_.span_id);
  }
  stage_times().record(
      stage_, std::chrono::duration<double>(elapsed).count());
}

RuntimeStats collect_runtime_stats(const ThreadPool& pool) {
  RuntimeStats stats;
  stats.pool = pool.stats();
  stats.schedule_cache = schedule_cache().stats();
  stats.stages = stage_times().snapshot();
  return stats;
}

}  // namespace isex::runtime
