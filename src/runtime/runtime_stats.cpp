#include "runtime/runtime_stats.hpp"

#include <ostream>

namespace isex::runtime {

void RuntimeStats::print(std::ostream& out) const {
  out << "runtime: " << pool.threads << " thread(s), " << pool.jobs_run
      << " job(s), " << pool.steals << " steal(s)\n";
  const std::uint64_t probes = schedule_cache.hits + schedule_cache.misses;
  out << "schedule cache: " << schedule_cache.hits << " hit(s) / " << probes
      << " probe(s)";
  if (probes > 0) {
    out << " (" << static_cast<int>(schedule_cache.hit_rate() * 100.0 + 0.5)
        << "% hit rate)";
  }
  out << ", " << schedule_cache.evictions << " eviction(s)\n";
  for (const auto& [stage, seconds] : stages) {
    out << "stage " << stage << ": " << seconds << " s\n";
  }
}

void StageTimes::record(const std::string& stage, double seconds) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, total] : stages_) {
    if (name == stage) {
      total += seconds;
      return;
    }
  }
  stages_.emplace_back(stage, seconds);
}

std::vector<std::pair<std::string, double>> StageTimes::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stages_;
}

void StageTimes::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  stages_.clear();
}

StageTimes& stage_times() {
  static StageTimes times;
  return times;
}

StageTimer::~StageTimer() {
  const auto elapsed = std::chrono::steady_clock::now() - start_;
  stage_times().record(
      stage_, std::chrono::duration<double>(elapsed).count());
}

RuntimeStats collect_runtime_stats(const ThreadPool& pool) {
  RuntimeStats stats;
  stats.pool = pool.stats();
  stats.schedule_cache = schedule_cache().stats();
  stats.stages = stage_times().snapshot();
  return stats;
}

}  // namespace isex::runtime
