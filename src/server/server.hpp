// isex_serve — exploration as a long-running service (docs/SERVER.md).
//
// One listening TCP socket serves two protocols, sniffed from the first
// bytes of each connection:
//
//   * newline-delimited JSON job traffic (protocol.hpp): each line is one
//     exploration request, answered in order on the same connection;
//   * plain HTTP `GET /metrics` (Prometheus snapshot of the process-wide
//     registry) and `GET /healthz`.
//
// Execution path: connection handlers parse and validate a request on the
// connection's own thread (cheap, and rejections never occupy a worker),
// look the canonical job signature up in the result cache, and only on a
// miss enqueue the exploration into the bounded priority JobQueue.  Worker
// threads pop jobs in priority order and run the existing design flow —
// run_design_flow_checked fans each job's (block × repeat) exploration over
// the shared isex_runtime thread pool, so one large job saturates the
// machine and many small jobs interleave.
//
// Caching: results are keyed on job_signature() — a pure function of the
// kernel graph and every result-affecting parameter — and stored through
// runtime::PersistentEvalCache, so a repeat submission is answered from
// memory (or, after a restart, from the warm-started disk log) with a
// bit-identical response and zero re-exploration.  The schedule-eval cache
// is persisted through the same log via EvalCache's persist sink.
//
// Shutdown: request_drain() (wired to SIGINT/SIGTERM by the binary) stops
// the accept loop, rejects new submissions with E0603, lets the queue drain
// and in-flight jobs finish, flushes the cache log, and wait() returns.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "server/job_queue.hpp"
#include "server/protocol.hpp"
#include "runtime/persistent_cache.hpp"
#include "util/error.hpp"

namespace isex::server {

struct ServerOptions {
  std::string host = "127.0.0.1";
  /// 0 binds an ephemeral port; read the real one from Server::port().
  std::uint16_t port = 0;
  /// Path of the persistent evaluation/result log; empty disables
  /// persistence (results are still cached in memory for the process life).
  std::string cache_path;
  /// Admission-queue bound; a push beyond it is rejected with E0602.
  std::size_t queue_capacity = 64;
  /// Job worker threads; <= 0 picks min(4, runtime::default_jobs()).
  int workers = 0;
};

class Server {
 public:
  explicit Server(ServerOptions options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens, loads the cache (warm start), and spawns the accept
  /// loop and workers.  Returns the bound port, or a structured error
  /// (kPersistIo for socket failures — the server could not open for
  /// business).
  Expected<std::uint16_t> start();

  std::uint16_t port() const { return port_; }
  bool draining() const { return draining_.load(std::memory_order_acquire); }

  /// Begins the graceful drain described above.  Idempotent, callable from
  /// any thread (the signal watcher calls it).
  void request_drain();

  /// Blocks until the drain completes and every thread has been joined.
  /// Returns the process exit code (0 on a clean drain).
  int wait();

  /// Processes one job line and returns the response line (no newline).
  /// This is the whole protocol minus the socket: connection handlers call
  /// it per received line, and tests call it directly to drive admission
  /// control deterministically.
  std::string process_line(const std::string& line);

  /// The admission queue (tests use it to occupy the worker and observe
  /// depth; everything else should go through process_line).
  JobQueue& queue() { return queue_; }

  /// The /statusz body: a JSON snapshot of live server state — in-flight
  /// jobs with per-stage ages, queue depth, latency/queue-wait histograms,
  /// persistent-cache hit/corruption stats, and per-worker pool occupancy.
  /// Exposed for tests; the HTTP handler serves it verbatim.
  std::string render_statusz() const;

 private:
  /// One admitted-but-unanswered job, keyed for /statusz.
  struct InflightJob {
    std::string id;
    int priority = 0;
    const char* stage = "queued";  ///< "queued" until a worker pops it
    std::uint64_t accepted_us = 0;
    std::uint64_t started_us = 0;  ///< 0 while still queued
  };

  void accept_loop();
  void worker_loop();
  void handle_connection(int fd);
  void handle_http(int fd, const std::string& buffered);

  /// Portfolio-job path of process_line: validates every manifest kernel on
  /// the connection thread, answers repeats from the blob cache keyed on
  /// portfolio_signature, and on a miss runs run_portfolio_flow_checked on
  /// a worker with evaluations routed through the warm-started process
  /// cache (so they persist like single-kernel jobs').
  std::string process_portfolio(const JobRequest& request,
                                std::uint64_t received_us);

  /// Microseconds since construction (the clock /statusz ages and the
  /// per-job timings are measured on; monotonic, tracer-independent).
  std::uint64_t uptime_us() const;
  std::uint64_t register_inflight(const std::string& id, int priority);
  void mark_inflight_exploring(std::uint64_t key);
  void unregister_inflight(std::uint64_t key);

  ServerOptions options_;
  std::uint16_t port_ = 0;
  int listen_fd_ = -1;
  int drain_pipe_[2] = {-1, -1};
  std::atomic<bool> draining_{false};
  std::atomic<bool> started_{false};

  JobQueue queue_;
  std::unique_ptr<runtime::PersistentEvalCache> cache_;
  /// Warm-start outcome kept for /statusz (corrupt_skipped and friends).
  runtime::PersistLoadReport load_report_;
  int worker_count_ = 0;

  const std::chrono::steady_clock::time_point epoch_ =
      std::chrono::steady_clock::now();
  mutable std::mutex inflight_mutex_;
  std::uint64_t next_inflight_key_ = 1;
  std::map<std::uint64_t, InflightJob> inflight_;

  std::thread accept_thread_;
  std::vector<std::thread> workers_;
  std::mutex conn_mutex_;
  std::vector<std::thread> connections_;

  // Server metrics (process-wide registry; resolved once).
  trace::Counter* connections_metric_;
  trace::Counter* jobs_accepted_;
  trace::Counter* jobs_rejected_full_;
  trace::Counter* jobs_rejected_draining_;
  trace::Counter* jobs_invalid_;
  trace::Counter* jobs_completed_;
  trace::Counter* jobs_failed_;
  trace::Counter* result_hits_;
  trace::Counter* result_misses_;
  trace::Gauge* warm_start_entries_;
  trace::Gauge* inflight_gauge_;
  trace::Gauge* queue_capacity_gauge_;
  trace::Histogram* job_latency_;  ///< seconds, submission → response
  trace::Histogram* queue_wait_;   ///< seconds, admission → worker pop
};

}  // namespace isex::server
