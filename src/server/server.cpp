#include "server/server.hpp"

#include <cerrno>
#include <cstring>
#include <future>
#include <sstream>
#include <utility>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "dfg/validate.hpp"
#include "hwlib/hw_library.hpp"
#include "isa/tac_parser.hpp"
#include "runtime/runtime_stats.hpp"
#include "runtime/thread_pool.hpp"
#include "trace/metrics.hpp"

namespace isex::server {
namespace {

/// send() that survives partial writes and never raises SIGPIPE.
bool send_all(int fd, std::string_view data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n =
        ::send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

std::string http_response(int status, const char* reason,
                          const std::string& body,
                          const char* content_type = "text/plain") {
  std::string out = "HTTP/1.1 " + std::to_string(status) + " " + reason +
                    "\r\nContent-Type: " + content_type +
                    "; version=0.0.4\r\nContent-Length: " +
                    std::to_string(body.size()) + "\r\nConnection: close\r\n\r\n";
  out += body;
  return out;
}

}  // namespace

Server::Server(ServerOptions options)
    : options_(std::move(options)),
      queue_(options_.queue_capacity),
      connections_metric_(&trace::MetricsRegistry::global().counter(
          "isex_server_connections_total")),
      jobs_accepted_(&trace::MetricsRegistry::global().counter(
          "isex_server_jobs_accepted_total")),
      jobs_rejected_full_(&trace::MetricsRegistry::global().counter(
          "isex_server_jobs_rejected_total",
          {{"reason", "queue-full"}})),
      jobs_rejected_draining_(&trace::MetricsRegistry::global().counter(
          "isex_server_jobs_rejected_total",
          {{"reason", "shutting-down"}})),
      jobs_invalid_(&trace::MetricsRegistry::global().counter(
          "isex_server_jobs_invalid_total")),
      jobs_completed_(&trace::MetricsRegistry::global().counter(
          "isex_server_jobs_completed_total")),
      jobs_failed_(&trace::MetricsRegistry::global().counter(
          "isex_server_jobs_failed_total")),
      result_hits_(&trace::MetricsRegistry::global().counter(
          "isex_server_job_cache_hits_total")),
      result_misses_(&trace::MetricsRegistry::global().counter(
          "isex_server_job_cache_misses_total")),
      warm_start_entries_(&trace::MetricsRegistry::global().gauge(
          "isex_server_warm_start_entries")) {}

Server::~Server() {
  if (started_.load(std::memory_order_acquire)) {
    request_drain();
    wait();
  }
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (drain_pipe_[0] >= 0) ::close(drain_pipe_[0]);
  if (drain_pipe_[1] >= 0) ::close(drain_pipe_[1]);
}

Expected<std::uint16_t> Server::start() {
  // Warm start: replay persisted schedule evaluations into the shared
  // in-memory cache and index persisted job results, then wire the sink so
  // fresh evaluations stream back to the log.
  cache_ = std::make_unique<runtime::PersistentEvalCache>(options_.cache_path);
  const runtime::PersistLoadReport loaded =
      cache_->load(&runtime::schedule_cache());
  for (const Error& e : loaded.report.issues())
    std::fprintf(stderr, "isex_serve: %s\n", e.to_string().c_str());
  warm_start_entries_->set(
      static_cast<double>(loaded.schedule_entries + loaded.blob_entries));
  if (!options_.cache_path.empty()) {
    runtime::PersistentEvalCache* cache = cache_.get();
    runtime::schedule_cache().set_persist_sink(
        [cache](const runtime::Key128& key, int value) {
          cache->put_schedule_eval(key, value);
        });
  }

  if (::pipe(drain_pipe_) != 0)
    return Error(ErrorCode::kPersistIo,
                 std::string("pipe: ") + std::strerror(errno));

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0)
    return Error(ErrorCode::kPersistIo,
                 std::string("socket: ") + std::strerror(errno));
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1)
    return Error(ErrorCode::kPersistIo,
                 "invalid listen address '" + options_.host + "'");
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof addr) != 0 ||
      ::listen(listen_fd_, 64) != 0)
    return Error(ErrorCode::kPersistIo,
                 "cannot listen on " + options_.host + ":" +
                     std::to_string(options_.port) + ": " +
                     std::strerror(errno));
  sockaddr_in bound{};
  socklen_t bound_len = sizeof bound;
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &bound_len);
  port_ = ntohs(bound.sin_port);

  int workers = options_.workers;
  if (workers <= 0) workers = std::min(4, runtime::ThreadPool::default_jobs());
  workers_.reserve(static_cast<std::size_t>(workers));
  for (int i = 0; i < workers; ++i)
    workers_.emplace_back([this] { worker_loop(); });
  accept_thread_ = std::thread([this] { accept_loop(); });
  started_.store(true, std::memory_order_release);
  return port_;
}

void Server::request_drain() {
  bool expected = false;
  if (!draining_.compare_exchange_strong(expected, true)) return;
  // Wake the accept loop and every idle connection handler.
  const char byte = 1;
  [[maybe_unused]] const auto n = ::write(drain_pipe_[1], &byte, 1);
  queue_.close();
}

int Server::wait() {
  if (accept_thread_.joinable()) accept_thread_.join();
  for (std::thread& worker : workers_)
    if (worker.joinable()) worker.join();
  // Connection handlers observe the drain pipe; they exit once their
  // in-flight response is written.
  while (true) {
    std::vector<std::thread> pending;
    {
      std::lock_guard<std::mutex> lock(conn_mutex_);
      pending.swap(connections_);
    }
    if (pending.empty()) break;
    for (std::thread& conn : pending)
      if (conn.joinable()) conn.join();
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  runtime::schedule_cache().set_persist_sink(nullptr);
  if (cache_ != nullptr) cache_->flush();
  started_.store(false, std::memory_order_release);
  return 0;
}

void Server::accept_loop() {
  while (!draining()) {
    pollfd fds[2] = {{listen_fd_, POLLIN, 0}, {drain_pipe_[0], POLLIN, 0}};
    const int ready = ::poll(fds, 2, -1);
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (fds[1].revents != 0 || draining()) break;
    if ((fds[0].revents & POLLIN) == 0) continue;
    const int conn = ::accept(listen_fd_, nullptr, nullptr);
    if (conn < 0) continue;
    connections_metric_->inc();
    std::lock_guard<std::mutex> lock(conn_mutex_);
    connections_.emplace_back([this, conn] { handle_connection(conn); });
  }
  // Stop the kernel from accepting more connections while we drain.
  ::shutdown(listen_fd_, SHUT_RDWR);
}

void Server::worker_loop() {
  while (std::optional<QueuedJob> job = queue_.pop()) job->run();
}

void Server::handle_connection(int fd) {
  std::string pending;
  bool saw_data = false;
  char buf[1 << 14];
  while (true) {
    pollfd fds[2] = {{fd, POLLIN, 0}, {drain_pipe_[0], POLLIN, 0}};
    const int ready = ::poll(fds, 2, -1);
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if ((fds[0].revents & (POLLIN | POLLHUP | POLLERR)) == 0) {
      if (draining()) break;  // idle connection during drain: close it
      continue;
    }
    const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
    if (n <= 0) break;  // peer closed (or error)
    pending.append(buf, static_cast<std::size_t>(n));
    saw_data = true;

    // Protocol sniff: an HTTP request line instead of a JSON object.
    if (pending.size() >= 4 && (pending.rfind("GET ", 0) == 0 ||
                                pending.rfind("HEAD", 0) == 0)) {
      handle_http(fd, pending);
      break;
    }

    std::size_t newline;
    while ((newline = pending.find('\n')) != std::string::npos) {
      std::string line = pending.substr(0, newline);
      pending.erase(0, newline + 1);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (line.empty()) continue;
      const std::string response = process_line(line);
      if (!send_all(fd, response + "\n")) {
        ::close(fd);
        return;
      }
    }
    if (draining() && pending.empty()) break;
  }
  (void)saw_data;
  ::close(fd);
}

void Server::handle_http(int fd, const std::string& buffered) {
  // Read until the end of the request head (we ignore the body; GETs have
  // none) or the peer stops talking.
  std::string head = buffered;
  char buf[4096];
  while (head.find("\r\n\r\n") == std::string::npos &&
         head.find("\n\n") == std::string::npos && head.size() < (1u << 16)) {
    const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
    if (n <= 0) break;
    head.append(buf, static_cast<std::size_t>(n));
  }
  std::istringstream first_line(head.substr(0, head.find('\n')));
  std::string method, path;
  first_line >> method >> path;

  std::string response;
  if (path == "/metrics") {
    // Fold point-in-time runtime stats (pool width, cache hit rate, stage
    // seconds) into the registry next to the live counters, like the CLI's
    // --metrics-out does.
    runtime::collect_runtime_stats(runtime::ThreadPool::default_pool())
        .publish(trace::MetricsRegistry::global());
    std::ostringstream body;
    trace::MetricsRegistry::global().write_prometheus(body);
    response = http_response(200, "OK", body.str());
  } else if (path == "/healthz") {
    response = draining() ? http_response(200, "OK", "draining\n")
                          : http_response(200, "OK", "ok\n");
  } else {
    response = http_response(404, "Not Found", "not found\n");
  }
  send_all(fd, response);
}

std::string Server::process_line(const std::string& line) {
  Expected<JobRequest> parsed = parse_job_request(line);
  if (!parsed) {
    jobs_invalid_->inc();
    return render_error_response("", parsed.error());
  }
  JobRequest request = std::move(parsed).value();

  if (draining()) {
    jobs_rejected_draining_->inc();
    return render_error_response(
        request.id, Error(ErrorCode::kServerShuttingDown,
                          "server is draining; resubmit elsewhere"));
  }

  // Parse + validate the kernel on the connection thread: rejections are
  // cheap and must not occupy an exploration worker.
  Expected<isa::ParsedBlock> block = isa::parse_tac_checked(request.kernel);
  if (!block) {
    jobs_invalid_->inc();
    return render_error_response(request.id, block.error());
  }
  {
    const ValidationReport report = dfg::validate(block->graph);
    if (!report.ok()) {
      jobs_invalid_->inc();
      return render_error_response(request.id, report.first_error());
    }
  }

  const runtime::Key128 signature = job_signature(block->graph, request);
  if (std::optional<std::string> fragment = cache_->lookup_blob(signature)) {
    result_hits_->inc();
    return render_response(request.id, /*cache_hit=*/true, *fragment);
  }
  result_misses_->inc();

  // Miss: run the design flow on a worker, result delivered via future.
  flow::ProfiledProgram program;
  program.name = request.id.empty() ? "job" : request.id;
  program.blocks.push_back(
      flow::ProfiledBlock{"kernel", std::move(block->graph), 1});
  const flow::FlowConfig config = flow_config_for(request);

  auto promise = std::make_shared<std::promise<Expected<std::string>>>();
  std::future<Expected<std::string>> future = promise->get_future();
  runtime::PersistentEvalCache* cache = cache_.get();
  QueuedJob job;
  job.priority = request.priority;
  job.run = [promise, cache, signature, program = std::move(program),
             config]() mutable {
    Expected<flow::FlowResult> result = flow::run_design_flow_checked(
        program, hw::HwLibrary::paper_default(), config);
    if (!result) {
      promise->set_value(result.error());
      return;
    }
    std::string fragment = render_result_fragment(*result);
    cache->put_blob(signature, fragment);
    promise->set_value(std::move(fragment));
  };

  switch (queue_.push(std::move(job))) {
    case JobQueue::PushResult::kAccepted: break;
    case JobQueue::PushResult::kFull:
      jobs_rejected_full_->inc();
      return render_error_response(
          request.id,
          Error(ErrorCode::kServerQueueFull,
                "admission queue is full (" +
                    std::to_string(queue_.capacity()) + " pending)"));
    case JobQueue::PushResult::kClosed:
      jobs_rejected_draining_->inc();
      return render_error_response(
          request.id, Error(ErrorCode::kServerShuttingDown,
                            "server is draining; resubmit elsewhere"));
  }
  jobs_accepted_->inc();

  Expected<std::string> outcome = future.get();
  if (!outcome) {
    jobs_failed_->inc();
    return render_error_response(request.id, outcome.error());
  }
  jobs_completed_->inc();
  return render_response(request.id, /*cache_hit=*/false, *outcome);
}

}  // namespace isex::server
