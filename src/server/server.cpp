#include "server/server.hpp"

#include <cerrno>
#include <cstring>
#include <future>
#include <sstream>
#include <utility>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "dfg/validate.hpp"
#include "hwlib/hw_library.hpp"
#include "isa/tac_parser.hpp"
#include "runtime/pool_profile.hpp"
#include "runtime/runtime_stats.hpp"
#include "runtime/thread_pool.hpp"
#include "trace/metrics.hpp"
#include "trace/trace.hpp"

namespace isex::server {
namespace {

/// send() that survives partial writes and never raises SIGPIPE.
bool send_all(int fd, std::string_view data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n =
        ::send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

std::string http_response(int status, const char* reason,
                          const std::string& body,
                          const char* content_type = "text/plain") {
  std::string out = "HTTP/1.1 " + std::to_string(status) + " " + reason +
                    "\r\nContent-Type: " + content_type +
                    "; version=0.0.4\r\nContent-Length: " +
                    std::to_string(body.size()) + "\r\nConnection: close\r\n\r\n";
  out += body;
  return out;
}

std::vector<double> job_latency_bounds() {
  return {0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25,
          0.5,   1.0,    2.5,   5.0,  10.0,  30.0, 60.0};
}

std::vector<double> queue_wait_bounds() {
  return {0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
          0.05,   0.1,     0.25,   0.5,   1.0,    5.0,   10.0};
}

void append_histogram_json(std::string& out, const trace::Histogram& h) {
  char buf[32];
  out += "{\"bounds_s\":[";
  const std::vector<double>& bounds = h.bounds();
  for (std::size_t i = 0; i < bounds.size(); ++i) {
    if (i != 0) out += ',';
    std::snprintf(buf, sizeof buf, "%g", bounds[i]);
    out += buf;
  }
  out += "],\"counts\":[";
  const std::vector<std::uint64_t> counts = h.bin_counts();
  for (std::size_t i = 0; i < counts.size(); ++i) {
    if (i != 0) out += ',';
    out += std::to_string(counts[i]);
  }
  out += "],\"count\":" + std::to_string(h.count());
  std::snprintf(buf, sizeof buf, "%.6f", h.sum());
  out += ",\"sum_s\":";
  out += buf;
  out += '}';
}

}  // namespace

Server::Server(ServerOptions options)
    : options_(std::move(options)),
      queue_(options_.queue_capacity),
      connections_metric_(&trace::MetricsRegistry::global().counter(
          "isex_server_connections_total")),
      jobs_accepted_(&trace::MetricsRegistry::global().counter(
          "isex_server_jobs_accepted_total")),
      jobs_rejected_full_(&trace::MetricsRegistry::global().counter(
          "isex_server_jobs_rejected_total",
          {{"reason", "queue-full"}})),
      jobs_rejected_draining_(&trace::MetricsRegistry::global().counter(
          "isex_server_jobs_rejected_total",
          {{"reason", "shutting-down"}})),
      jobs_invalid_(&trace::MetricsRegistry::global().counter(
          "isex_server_jobs_invalid_total")),
      jobs_completed_(&trace::MetricsRegistry::global().counter(
          "isex_server_jobs_completed_total")),
      jobs_failed_(&trace::MetricsRegistry::global().counter(
          "isex_server_jobs_failed_total")),
      result_hits_(&trace::MetricsRegistry::global().counter(
          "isex_server_job_cache_hits_total")),
      result_misses_(&trace::MetricsRegistry::global().counter(
          "isex_server_job_cache_misses_total")),
      warm_start_entries_(&trace::MetricsRegistry::global().gauge(
          "isex_server_warm_start_entries")),
      inflight_gauge_(&trace::MetricsRegistry::global().gauge(
          "isex_server_jobs_inflight")),
      queue_capacity_gauge_(&trace::MetricsRegistry::global().gauge(
          "isex_server_queue_capacity")),
      job_latency_(&trace::MetricsRegistry::global().histogram(
          "isex_server_job_latency_seconds", job_latency_bounds())),
      queue_wait_(&trace::MetricsRegistry::global().histogram(
          "isex_server_queue_wait_seconds", queue_wait_bounds())) {
  queue_capacity_gauge_->set(static_cast<double>(queue_.capacity()));
}

Server::~Server() {
  if (started_.load(std::memory_order_acquire)) {
    request_drain();
    wait();
  }
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (drain_pipe_[0] >= 0) ::close(drain_pipe_[0]);
  if (drain_pipe_[1] >= 0) ::close(drain_pipe_[1]);
}

Expected<std::uint16_t> Server::start() {
  // Warm start: replay persisted schedule evaluations into the shared
  // in-memory cache and index persisted job results, then wire the sink so
  // fresh evaluations stream back to the log.
  cache_ = std::make_unique<runtime::PersistentEvalCache>(options_.cache_path);
  load_report_ = cache_->load(&runtime::schedule_cache());
  const runtime::PersistLoadReport& loaded = load_report_;
  for (const Error& e : loaded.report.issues())
    std::fprintf(stderr, "isex_serve: %s\n", e.to_string().c_str());
  warm_start_entries_->set(
      static_cast<double>(loaded.schedule_entries + loaded.blob_entries));
  if (!options_.cache_path.empty()) {
    runtime::PersistentEvalCache* cache = cache_.get();
    runtime::schedule_cache().set_persist_sink(
        [cache](const runtime::Key128& key, int value) {
          cache->put_schedule_eval(key, value);
        });
  }

  if (::pipe(drain_pipe_) != 0)
    return Error(ErrorCode::kPersistIo,
                 std::string("pipe: ") + std::strerror(errno));

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0)
    return Error(ErrorCode::kPersistIo,
                 std::string("socket: ") + std::strerror(errno));
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1)
    return Error(ErrorCode::kPersistIo,
                 "invalid listen address '" + options_.host + "'");
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof addr) != 0 ||
      ::listen(listen_fd_, 64) != 0)
    return Error(ErrorCode::kPersistIo,
                 "cannot listen on " + options_.host + ":" +
                     std::to_string(options_.port) + ": " +
                     std::strerror(errno));
  sockaddr_in bound{};
  socklen_t bound_len = sizeof bound;
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &bound_len);
  port_ = ntohs(bound.sin_port);

  int workers = options_.workers;
  if (workers <= 0) workers = std::min(4, runtime::ThreadPool::default_jobs());
  worker_count_ = workers;
  // The observatory's occupancy view (/statusz, PoolProfile artifact) wants
  // worker timelines for the pool every job fans out on; the cost is two
  // clock reads per pool task, negligible at exploration-task granularity.
  runtime::ThreadPool::default_pool().set_profiling(true);
  workers_.reserve(static_cast<std::size_t>(workers));
  for (int i = 0; i < workers; ++i)
    workers_.emplace_back([this] { worker_loop(); });
  accept_thread_ = std::thread([this] { accept_loop(); });
  started_.store(true, std::memory_order_release);
  return port_;
}

std::uint64_t Server::uptime_us() const {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - epoch_)
          .count());
}

std::uint64_t Server::register_inflight(const std::string& id, int priority) {
  std::lock_guard<std::mutex> lock(inflight_mutex_);
  const std::uint64_t key = next_inflight_key_++;
  InflightJob& job = inflight_[key];
  job.id = id;
  job.priority = priority;
  job.accepted_us = uptime_us();
  inflight_gauge_->set(static_cast<double>(inflight_.size()));
  return key;
}

void Server::mark_inflight_exploring(std::uint64_t key) {
  std::lock_guard<std::mutex> lock(inflight_mutex_);
  const auto it = inflight_.find(key);
  if (it == inflight_.end()) return;
  it->second.stage = "exploring";
  it->second.started_us = uptime_us();
}

void Server::unregister_inflight(std::uint64_t key) {
  std::lock_guard<std::mutex> lock(inflight_mutex_);
  inflight_.erase(key);
  inflight_gauge_->set(static_cast<double>(inflight_.size()));
}

void Server::request_drain() {
  bool expected = false;
  if (!draining_.compare_exchange_strong(expected, true)) return;
  // Wake the accept loop and every idle connection handler.
  const char byte = 1;
  [[maybe_unused]] const auto n = ::write(drain_pipe_[1], &byte, 1);
  queue_.close();
}

int Server::wait() {
  if (accept_thread_.joinable()) accept_thread_.join();
  for (std::thread& worker : workers_)
    if (worker.joinable()) worker.join();
  // Connection handlers observe the drain pipe; they exit once their
  // in-flight response is written.
  while (true) {
    std::vector<std::thread> pending;
    {
      std::lock_guard<std::mutex> lock(conn_mutex_);
      pending.swap(connections_);
    }
    if (pending.empty()) break;
    for (std::thread& conn : pending)
      if (conn.joinable()) conn.join();
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  runtime::schedule_cache().set_persist_sink(nullptr);
  if (cache_ != nullptr) cache_->flush();
  started_.store(false, std::memory_order_release);
  return 0;
}

void Server::accept_loop() {
  while (!draining()) {
    pollfd fds[2] = {{listen_fd_, POLLIN, 0}, {drain_pipe_[0], POLLIN, 0}};
    const int ready = ::poll(fds, 2, -1);
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (fds[1].revents != 0 || draining()) break;
    if ((fds[0].revents & POLLIN) == 0) continue;
    const int conn = ::accept(listen_fd_, nullptr, nullptr);
    if (conn < 0) continue;
    connections_metric_->inc();
    std::lock_guard<std::mutex> lock(conn_mutex_);
    connections_.emplace_back([this, conn] { handle_connection(conn); });
  }
  // Stop the kernel from accepting more connections while we drain.
  ::shutdown(listen_fd_, SHUT_RDWR);
}

void Server::worker_loop() {
  while (std::optional<QueuedJob> job = queue_.pop()) job->run();
}

void Server::handle_connection(int fd) {
  std::string pending;
  bool saw_data = false;
  char buf[1 << 14];
  while (true) {
    pollfd fds[2] = {{fd, POLLIN, 0}, {drain_pipe_[0], POLLIN, 0}};
    const int ready = ::poll(fds, 2, -1);
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if ((fds[0].revents & (POLLIN | POLLHUP | POLLERR)) == 0) {
      if (draining()) break;  // idle connection during drain: close it
      continue;
    }
    const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
    if (n <= 0) break;  // peer closed (or error)
    pending.append(buf, static_cast<std::size_t>(n));
    saw_data = true;

    // Protocol sniff: an HTTP request line instead of a JSON object.
    if (pending.size() >= 4 && (pending.rfind("GET ", 0) == 0 ||
                                pending.rfind("HEAD", 0) == 0)) {
      handle_http(fd, pending);
      break;
    }

    std::size_t newline;
    while ((newline = pending.find('\n')) != std::string::npos) {
      std::string line = pending.substr(0, newline);
      pending.erase(0, newline + 1);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (line.empty()) continue;
      const std::string response = process_line(line);
      if (!send_all(fd, response + "\n")) {
        ::close(fd);
        return;
      }
    }
    if (draining() && pending.empty()) break;
  }
  (void)saw_data;
  ::close(fd);
}

void Server::handle_http(int fd, const std::string& buffered) {
  // Read until the end of the request head (we ignore the body; GETs have
  // none) or the peer stops talking.
  std::string head = buffered;
  char buf[4096];
  while (head.find("\r\n\r\n") == std::string::npos &&
         head.find("\n\n") == std::string::npos && head.size() < (1u << 16)) {
    const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
    if (n <= 0) break;
    head.append(buf, static_cast<std::size_t>(n));
  }
  std::istringstream first_line(head.substr(0, head.find('\n')));
  std::string method, path;
  first_line >> method >> path;

  std::string response;
  if (path == "/statusz") {
    response = http_response(200, "OK", render_statusz(),
                             "application/json");
  } else if (path == "/metrics") {
    // Fold point-in-time runtime stats (pool width, cache hit rate, stage
    // seconds) into the registry next to the live counters, like the CLI's
    // --metrics-out does.
    runtime::collect_runtime_stats(runtime::ThreadPool::default_pool())
        .publish(trace::MetricsRegistry::global());
    std::ostringstream body;
    trace::MetricsRegistry::global().write_prometheus(body);
    response = http_response(200, "OK", body.str());
  } else if (path == "/healthz") {
    response = draining() ? http_response(200, "OK", "draining\n")
                          : http_response(200, "OK", "ok\n");
  } else {
    response = http_response(404, "Not Found", "not found\n");
  }
  send_all(fd, response);
}

std::string Server::render_statusz() const {
  const auto count = [](const trace::Counter* c) {
    return std::to_string(static_cast<std::uint64_t>(c->value()));
  };
  std::string out = "{\"uptime_us\":" + std::to_string(uptime_us()) +
                    ",\"draining\":";
  out += draining() ? "true" : "false";
  out += ",\n\"queue\":{\"depth\":" + std::to_string(queue_.depth()) +
         ",\"capacity\":" + std::to_string(queue_.capacity()) +
         ",\"workers\":" + std::to_string(worker_count_) + "},";

  out += "\n\"inflight\":[";
  {
    const std::uint64_t now_us = uptime_us();
    std::lock_guard<std::mutex> lock(inflight_mutex_);
    bool first = true;
    for (const auto& [key, job] : inflight_) {
      if (!first) out += ',';
      first = false;
      // queue_wait: admission → worker pop for running jobs, admission →
      // now for jobs still queued.
      const std::uint64_t wait_end =
          job.started_us != 0 ? job.started_us : now_us;
      out += "\n{\"id\":\"" + trace::json_escape(job.id) +
             "\",\"priority\":" + std::to_string(job.priority) +
             ",\"stage\":\"" + job.stage +
             "\",\"age_us\":" + std::to_string(now_us - job.accepted_us) +
             ",\"queue_wait_us\":" +
             std::to_string(wait_end - job.accepted_us) + "}";
    }
  }
  out += "],";

  out += "\n\"jobs\":{\"accepted\":" + count(jobs_accepted_) +
         ",\"completed\":" + count(jobs_completed_) +
         ",\"failed\":" + count(jobs_failed_) +
         ",\"invalid\":" + count(jobs_invalid_) +
         ",\"rejected_queue_full\":" + count(jobs_rejected_full_) +
         ",\"rejected_draining\":" + count(jobs_rejected_draining_) +
         ",\"cache_hits\":" + count(result_hits_) +
         ",\"cache_misses\":" + count(result_misses_) + "},";

  out += "\n\"job_latency\":";
  append_histogram_json(out, *job_latency_);
  out += ",\n\"queue_wait\":";
  append_histogram_json(out, *queue_wait_);
  out += ',';

  const runtime::PersistStats persist =
      cache_ != nullptr ? cache_->stats() : runtime::PersistStats{};
  out += "\n\"cache\":{\"warm_start_schedule_entries\":" +
         std::to_string(load_report_.schedule_entries) +
         ",\"warm_start_blob_entries\":" +
         std::to_string(load_report_.blob_entries) +
         ",\"corrupt_skipped\":" +
         std::to_string(load_report_.corrupt_skipped) +
         ",\"version_mismatch\":" +
         std::to_string(load_report_.version_mismatch) +
         ",\"appends\":" + std::to_string(persist.appends) +
         ",\"append_failures\":" + std::to_string(persist.append_failures) +
         ",\"blob_hits\":" + std::to_string(persist.blob_hits) +
         ",\"blob_misses\":" + std::to_string(persist.blob_misses) +
         ",\"schedule_entries\":" +
         std::to_string(cache_ != nullptr ? cache_->schedule_entry_count()
                                          : 0) +
         ",\"blob_entries\":" +
         std::to_string(cache_ != nullptr ? cache_->blob_entry_count() : 0) +
         ",\"log_size_bytes\":" +
         std::to_string(cache_ != nullptr ? cache_->log_size_bytes() : 0) +
         "},";

  // The shared exploration pool's occupancy + section profile, embedded as
  // the same object write_json produces for the PoolProfile artifact.
  std::ostringstream pool;
  runtime::collect_pool_profile(runtime::ThreadPool::default_pool())
      .write_json(pool);
  out += "\n\"pool\":" + pool.str();
  out += "}\n";
  return out;
}

std::string Server::process_line(const std::string& line) {
  const std::uint64_t received_us = uptime_us();
  Expected<JobRequest> parsed = parse_job_request(line);
  if (!parsed) {
    jobs_invalid_->inc();
    return render_error_response("", parsed.error());
  }
  JobRequest request = std::move(parsed).value();

  if (draining()) {
    jobs_rejected_draining_->inc();
    return render_error_response(
        request.id, Error(ErrorCode::kServerShuttingDown,
                          "server is draining; resubmit elsewhere"));
  }

  if (request.is_portfolio()) return process_portfolio(request, received_us);

  // Parse + validate the kernel on the connection thread: rejections are
  // cheap and must not occupy an exploration worker.
  JobTimings timings;
  Expected<isa::ParsedBlock> block = isa::parse_tac_checked(request.kernel);
  if (!block) {
    jobs_invalid_->inc();
    return render_error_response(request.id, block.error());
  }
  {
    const ValidationReport report = dfg::validate(block->graph);
    if (!report.ok()) {
      jobs_invalid_->inc();
      return render_error_response(request.id, report.first_error());
    }
  }
  timings.validate_us = uptime_us() - received_us;

  const std::uint64_t cache_start_us = uptime_us();
  const runtime::Key128 signature = job_signature(block->graph, request);
  std::optional<std::string> cached = cache_->lookup_blob(signature);
  timings.cache_us = uptime_us() - cache_start_us;
  if (cached) {
    result_hits_->inc();
    timings.total_us = uptime_us() - received_us;
    job_latency_->observe(static_cast<double>(timings.total_us) * 1e-6);
    return render_response(request.id, /*cache_hit=*/true, timings, *cached);
  }
  result_misses_->inc();

  // Miss: run the design flow on a worker, result delivered via future.
  flow::ProfiledProgram program;
  program.name = request.id.empty() ? "job" : request.id;
  program.blocks.push_back(
      flow::ProfiledBlock{"kernel", std::move(block->graph), 1});
  const flow::FlowConfig config = flow_config_for(request);

  // Trace identity: one trace id per job, with a root span covering
  // admission → completion.  Everything recorded while the worker runs the
  // flow (stage spans, fanned-out pool tasks) nests under this root via the
  // ContextScope the worker installs.
  trace::Tracer& tracer = trace::Tracer::global();
  const bool traced = tracer.enabled();
  const std::uint64_t trace_id = traced ? trace::mint_trace_id() : 0;
  const std::uint64_t root_span = traced ? trace::mint_span_id() : 0;
  const std::uint64_t root_ts_us = traced ? tracer.now_us() : 0;

  const std::uint64_t inflight_key =
      register_inflight(request.id, request.priority);
  const std::uint64_t enqueued_us = uptime_us();

  auto promise = std::make_shared<std::promise<Expected<std::string>>>();
  std::future<Expected<std::string>> future = promise->get_future();
  runtime::PersistentEvalCache* cache = cache_.get();
  // Worker-side timing slots, written before the promise is fulfilled (the
  // future.get() below synchronizes the read).
  auto worker_times = std::make_shared<std::pair<std::uint64_t, std::uint64_t>>();
  QueuedJob job;
  job.priority = request.priority;
  job.run = [this, promise, cache, signature, program = std::move(program),
             config, inflight_key, trace_id, root_span, root_ts_us,
             enqueued_us, worker_times]() mutable {
    const std::uint64_t popped_us = uptime_us();
    worker_times->first = popped_us - enqueued_us;  // queue wait
    queue_wait_->observe(static_cast<double>(worker_times->first) * 1e-6);
    mark_inflight_exploring(inflight_key);
    trace::Tracer& tracer = trace::Tracer::global();
    if (trace_id != 0) {
      // The queue wait as its own span under the job root, so queue-time
      // percentiles fall out of the trace alone.
      tracer.record_span("job.queue_wait", root_ts_us,
                         tracer.now_us() - root_ts_us, trace_id,
                         trace::mint_span_id(), root_span);
    }
    {
      const trace::ContextScope scope(
          trace::TraceContext{trace_id, root_span});
      Expected<flow::FlowResult> result = flow::run_design_flow_checked(
          program, hw::HwLibrary::paper_default(), config);
      worker_times->second = uptime_us() - popped_us;  // explore
      if (!result) {
        promise->set_value(result.error());
      } else {
        std::string fragment = render_result_fragment(*result);
        cache->put_blob(signature, fragment);
        promise->set_value(std::move(fragment));
      }
    }
    if (trace_id != 0) {
      tracer.record_span("job:" + program.name, root_ts_us,
                         tracer.now_us() - root_ts_us, trace_id, root_span,
                         /*parent_id=*/0);
    }
  };

  switch (queue_.push(std::move(job))) {
    case JobQueue::PushResult::kAccepted: break;
    case JobQueue::PushResult::kFull:
      unregister_inflight(inflight_key);
      jobs_rejected_full_->inc();
      return render_error_response(
          request.id,
          Error(ErrorCode::kServerQueueFull,
                "admission queue is full (" +
                    std::to_string(queue_.capacity()) + " pending)"));
    case JobQueue::PushResult::kClosed:
      unregister_inflight(inflight_key);
      jobs_rejected_draining_->inc();
      return render_error_response(
          request.id, Error(ErrorCode::kServerShuttingDown,
                            "server is draining; resubmit elsewhere"));
  }
  jobs_accepted_->inc();

  Expected<std::string> outcome = future.get();
  unregister_inflight(inflight_key);
  timings.queue_wait_us = worker_times->first;
  timings.explore_us = worker_times->second;
  timings.total_us = uptime_us() - received_us;
  job_latency_->observe(static_cast<double>(timings.total_us) * 1e-6);
  if (!outcome) {
    jobs_failed_->inc();
    return render_error_response(request.id, outcome.error());
  }
  jobs_completed_->inc();
  return render_response(request.id, /*cache_hit=*/false, timings, *outcome);
}

std::string Server::process_portfolio(const JobRequest& request,
                                      std::uint64_t received_us) {
  // Parse + validate every manifest kernel on the connection thread, like
  // the single-kernel path: rejections never occupy an exploration worker.
  JobTimings timings;
  std::vector<flow::PortfolioEntry> entries;
  entries.reserve(request.programs.size());
  for (const PortfolioProgramSpec& spec : request.programs) {
    Expected<isa::ParsedBlock> block = isa::parse_tac_checked(spec.kernel);
    if (!block) {
      jobs_invalid_->inc();
      return render_error_response(request.id, block.error());
    }
    const ValidationReport report = dfg::validate(block->graph);
    if (!report.ok()) {
      jobs_invalid_->inc();
      return render_error_response(request.id, report.first_error());
    }
    flow::PortfolioEntry entry;
    entry.program.name = spec.name;
    entry.program.blocks.push_back(
        flow::ProfiledBlock{"kernel", std::move(block->graph), 1});
    entry.weight = spec.weight;
    entries.push_back(std::move(entry));
  }
  std::vector<const dfg::Graph*> graphs;
  graphs.reserve(entries.size());
  for (const flow::PortfolioEntry& entry : entries)
    graphs.push_back(&entry.program.blocks.front().graph);
  timings.validate_us = uptime_us() - received_us;

  const std::uint64_t cache_start_us = uptime_us();
  const runtime::Key128 signature = portfolio_signature(graphs, request);
  std::optional<std::string> cached = cache_->lookup_blob(signature);
  timings.cache_us = uptime_us() - cache_start_us;
  if (cached) {
    result_hits_->inc();
    timings.total_us = uptime_us() - received_us;
    job_latency_->observe(static_cast<double>(timings.total_us) * 1e-6);
    return render_response(request.id, /*cache_hit=*/true, timings, *cached);
  }
  result_misses_->inc();

  flow::PortfolioConfig config = portfolio_config_for(request);
  // Evaluations memoize through the warm-started process cache — and via
  // its persist sink, the disk log — so a portfolio's schedule evaluations
  // survive restarts exactly like single-kernel jobs'.
  config.eval_cache = &runtime::schedule_cache();

  trace::Tracer& tracer = trace::Tracer::global();
  const bool traced = tracer.enabled();
  const std::uint64_t trace_id = traced ? trace::mint_trace_id() : 0;
  const std::uint64_t root_span = traced ? trace::mint_span_id() : 0;
  const std::uint64_t root_ts_us = traced ? tracer.now_us() : 0;

  const std::uint64_t inflight_key =
      register_inflight(request.id, request.priority);
  const std::uint64_t enqueued_us = uptime_us();

  auto promise = std::make_shared<std::promise<Expected<std::string>>>();
  std::future<Expected<std::string>> future = promise->get_future();
  runtime::PersistentEvalCache* cache = cache_.get();
  auto worker_times = std::make_shared<std::pair<std::uint64_t, std::uint64_t>>();
  QueuedJob job;
  job.priority = request.priority;
  job.run = [this, promise, cache, signature, entries = std::move(entries),
             config, inflight_key, trace_id, root_span, root_ts_us,
             enqueued_us, worker_times]() mutable {
    const std::uint64_t popped_us = uptime_us();
    worker_times->first = popped_us - enqueued_us;  // queue wait
    queue_wait_->observe(static_cast<double>(worker_times->first) * 1e-6);
    mark_inflight_exploring(inflight_key);
    trace::Tracer& tracer = trace::Tracer::global();
    if (trace_id != 0) {
      tracer.record_span("job.queue_wait", root_ts_us,
                         tracer.now_us() - root_ts_us, trace_id,
                         trace::mint_span_id(), root_span);
    }
    {
      const trace::ContextScope scope(
          trace::TraceContext{trace_id, root_span});
      Expected<flow::PortfolioResult> result = flow::run_portfolio_flow_checked(
          entries, hw::HwLibrary::paper_default(), config);
      worker_times->second = uptime_us() - popped_us;  // explore
      if (!result) {
        promise->set_value(result.error());
      } else {
        std::string fragment = render_portfolio_fragment(*result);
        cache->put_blob(signature, fragment);
        promise->set_value(std::move(fragment));
      }
    }
    if (trace_id != 0) {
      tracer.record_span("job:portfolio", root_ts_us,
                         tracer.now_us() - root_ts_us, trace_id, root_span,
                         /*parent_id=*/0);
    }
  };

  switch (queue_.push(std::move(job))) {
    case JobQueue::PushResult::kAccepted: break;
    case JobQueue::PushResult::kFull:
      unregister_inflight(inflight_key);
      jobs_rejected_full_->inc();
      return render_error_response(
          request.id,
          Error(ErrorCode::kServerQueueFull,
                "admission queue is full (" +
                    std::to_string(queue_.capacity()) + " pending)"));
    case JobQueue::PushResult::kClosed:
      unregister_inflight(inflight_key);
      jobs_rejected_draining_->inc();
      return render_error_response(
          request.id, Error(ErrorCode::kServerShuttingDown,
                            "server is draining; resubmit elsewhere"));
  }
  jobs_accepted_->inc();

  Expected<std::string> outcome = future.get();
  unregister_inflight(inflight_key);
  timings.queue_wait_us = worker_times->first;
  timings.explore_us = worker_times->second;
  timings.total_us = uptime_us() - received_us;
  job_latency_->observe(static_cast<double>(timings.total_us) * 1e-6);
  if (!outcome) {
    jobs_failed_->inc();
    return render_error_response(request.id, outcome.error());
  }
  jobs_completed_->inc();
  return render_response(request.id, /*cache_hit=*/false, timings, *outcome);
}

}  // namespace isex::server
