// Bounded, priority-ordered admission queue for isex_serve.
//
// Admission control is the server's overload story: the queue holds at most
// `capacity` pending jobs, and a push against a full queue *fails fast* with
// a stable signal (the connection handler turns it into E0602
// server-queue-full) instead of buffering unboundedly or blocking the
// socket reader.  Within the queue, higher `priority` pops first and equal
// priorities pop in arrival order, so a latency-sensitive client can jump
// the batch traffic without starving it of its relative order.
//
// close() begins the drain: further pushes fail with kClosed (→ E0603
// server-shutting-down) while pop() keeps handing out the remaining jobs —
// in priority order — until the queue is empty, then returns nullopt to
// every waiting worker.  In-flight jobs are the workers' to finish; the
// queue only promises that nothing accepted is dropped.
#pragma once

#include <cstdint>
#include <condition_variable>
#include <functional>
#include <mutex>
#include <optional>
#include <queue>
#include <vector>

#include "trace/metrics.hpp"

namespace isex::server {

struct QueuedJob {
  int priority = 0;
  /// Work to run on a worker thread (already bound to its response channel).
  std::function<void()> run;
};

class JobQueue {
 public:
  enum class PushResult { kAccepted, kFull, kClosed };

  explicit JobQueue(std::size_t capacity);

  JobQueue(const JobQueue&) = delete;
  JobQueue& operator=(const JobQueue&) = delete;

  PushResult push(QueuedJob job);

  /// Blocks until a job is available or the queue is closed and empty.
  std::optional<QueuedJob> pop();

  /// Rejects future pushes; pop() drains what was accepted, then unblocks.
  void close();

  bool closed() const;
  std::size_t depth() const;
  std::size_t capacity() const { return capacity_; }

 private:
  struct Entry {
    int priority;
    std::uint64_t seq;
    // std::priority_queue pops the *largest*; invert seq so older wins ties.
    bool operator<(const Entry& other) const {
      if (priority != other.priority) return priority < other.priority;
      return seq > other.seq;
    }
    mutable std::function<void()> run;  // moved out on pop
  };

  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable ready_;
  std::priority_queue<Entry> heap_;
  std::uint64_t next_seq_ = 0;
  bool closed_ = false;
  trace::Gauge* depth_metric_;
};

}  // namespace isex::server
