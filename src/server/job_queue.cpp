#include "server/job_queue.hpp"

#include <utility>

namespace isex::server {

JobQueue::JobQueue(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity),
      depth_metric_(&trace::MetricsRegistry::global().gauge(
          "isex_server_queue_depth")) {}

JobQueue::PushResult JobQueue::push(QueuedJob job) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (closed_) return PushResult::kClosed;
    if (heap_.size() >= capacity_) return PushResult::kFull;
    heap_.push(Entry{job.priority, next_seq_++, std::move(job.run)});
    depth_metric_->set(static_cast<double>(heap_.size()));
  }
  ready_.notify_one();
  return PushResult::kAccepted;
}

std::optional<QueuedJob> JobQueue::pop() {
  std::unique_lock<std::mutex> lock(mutex_);
  ready_.wait(lock, [&] { return closed_ || !heap_.empty(); });
  if (heap_.empty()) return std::nullopt;  // closed and drained
  const Entry& top = heap_.top();
  QueuedJob job{top.priority, std::move(top.run)};
  heap_.pop();
  depth_metric_->set(static_cast<double>(heap_.size()));
  return job;
}

void JobQueue::close() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    closed_ = true;
  }
  ready_.notify_all();
}

bool JobQueue::closed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return closed_;
}

std::size_t JobQueue::depth() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return heap_.size();
}

}  // namespace isex::server
