// isex_serve wire protocol (docs/SERVER.md).
//
// Jobs travel over a TCP connection as newline-delimited JSON: one request
// object per line in, one response object per line out, in request order.
// The same listening socket also answers plain HTTP `GET /metrics` and
// `GET /healthz` (the server sniffs the first bytes), so one port serves
// both the job traffic and the scrape path.
//
// This header is the protocol's *data* layer — request parsing, response
// serialization, the canonical job signature, and the golden result digest —
// kept free of sockets so tests can exercise it in-process.  The JSON
// reader is a deliberately small recursive-descent parser over the accepted
// subset (objects, strings, numbers, bools, null, arrays); requests are one
// flat object, so nothing more is needed and nothing more is accepted.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "flow/design_flow.hpp"
#include "flow/portfolio.hpp"
#include "mem/cache_model.hpp"
#include "runtime/hash.hpp"
#include "util/error.hpp"

namespace isex::server {

/// One manifest row of a portfolio request (docs/PORTFOLIO.md).
struct PortfolioProgramSpec {
  /// Program label echoed in the per-program results (defaults to "p<i>").
  std::string name;
  /// TAC source of the program (required).
  std::string kernel;
  /// Execution-frequency weight (finite, > 0).
  double weight = 1.0;
};

/// One exploration job, as submitted on the wire.  Field defaults mirror
/// isex_cli's flag defaults, so a request carrying only `kernel` explores
/// exactly like `isex explore kernel.tac`.
struct JobRequest {
  /// Client-chosen token echoed verbatim in the response (optional).
  std::string id;
  /// TAC source of the kernel (required; see src/isa/tac_parser.hpp).
  std::string kernel;
  /// Higher drains first; ties drain in arrival order.
  int priority = 0;
  int issue = 2;
  int read_ports = 6;
  int write_ports = 3;
  int repeats = 5;
  std::uint64_t seed = 1;
  /// Ant colonies per exploration round (1 = the paper's serial loop).  A
  /// search parameter like `seed`: results depend on it, never on the
  /// server's thread count.
  int colonies = 1;
  /// Iterations between colony pheromone merges; inert when colonies == 1
  /// (the signature normalizes it away so inert variants share a cache key).
  int merge_interval = 8;
  /// ASFU area budget, µm² (absent = unlimited).
  double area_budget = 0.0;
  bool has_area_budget = false;
  /// Distinct ISE type budget.
  int max_ises = 32;
  /// Use the single-issue (legality-only) baseline explorer.
  bool baseline = false;
  /// Memory-hierarchy cost model (docs/MEMORY.md).  `cache_config` carries
  /// the raw spec string for echoing; `cache` is the parsed, validated
  /// geometry.  Absent (has_cache == false) keeps the legacy fixed
  /// latencies and the request's v2 job signature byte-for-byte.
  std::string cache_config;
  mem::CacheConfig cache;
  bool has_cache = false;
  /// Portfolio manifest.  Non-empty selects the portfolio job type — all N
  /// programs explored as one batch under one shared area budget — and is
  /// mutually exclusive with `kernel`.  Every other field keeps its single-
  /// kernel meaning and applies portfolio-wide.
  std::vector<PortfolioProgramSpec> programs;

  bool is_portfolio() const { return !programs.empty(); }
};

/// Parses one request line.  Unknown fields are rejected (a typo'd field
/// silently exploring with a default would be worse than an error).
Expected<JobRequest> parse_job_request(const std::string& line);

/// FlowConfig the request describes (machine, repeats, seed, constraints).
flow::FlowConfig flow_config_for(const JobRequest& request);

/// PortfolioConfig for a portfolio request (base = flow_config_for).
flow::PortfolioConfig portfolio_config_for(const JobRequest& request);

/// Canonical signature of the evaluation a request asks for: the kernel
/// graph's structural digest combined with every parameter that can change
/// the result (machine, repeats, seed, constraints, algorithm).  Two
/// requests with equal keys produce bit-identical results, so this is the
/// persistent job-result cache key.  Domain-separated from schedule_key and
/// candidate_key by its own seed constants.
runtime::Key128 job_signature(const dfg::Graph& graph,
                              const JobRequest& request);

/// Canonical signature of a portfolio request: the multiset of per-program
/// (job signature, weight) pairs — each pair a job_signature over that
/// program's graph with the shared parameters (machine, repeats, seed,
/// colonies, constraints, algorithm) — mixed in sorted order, so two
/// manifests listing the same weighted programs share one cache key
/// regardless of row order.  `graphs` is parallel to request.programs.
/// Domain-separated from job_signature by its own seed constants.
runtime::Key128 portfolio_signature(
    const std::vector<const dfg::Graph*>& graphs, const JobRequest& request);

/// Order-independent digest over every observable field of a FlowResult
/// (times, per-block outcomes, selected ISEs).  The response carries it so
/// clients — and the warm-cache tests — can assert bit-identical results
/// across processes and cache layers.
std::uint64_t flow_result_digest(const flow::FlowResult& result);

/// Renders the response body for a completed job: a JSON object *fragment*
/// (no `id` / `cache_hit` — the server adds those per delivery, so the
/// fragment is what the result cache stores and replays verbatim).
std::string render_result_fragment(const flow::FlowResult& result);

/// Digest over every observable field of a PortfolioResult (per-program
/// times and selection slices, the shared selection, dedup telemetry).
std::uint64_t portfolio_result_digest(const flow::PortfolioResult& result);

/// Response-body fragment for a completed portfolio job (same contract as
/// render_result_fragment: no `id` / `cache_hit`; this is what the blob
/// cache stores and replays verbatim on resubmission).
std::string render_portfolio_fragment(const flow::PortfolioResult& result);

/// Per-delivery timing breakdown (microseconds) the server attaches to
/// every job response: where this submission's latency went.  Cache hits
/// report zero queue_wait/explore (they never touch the queue); total is
/// receive-to-render wall time on the connection thread.
struct JobTimings {
  std::uint64_t queue_wait_us = 0;
  std::uint64_t validate_us = 0;
  std::uint64_t explore_us = 0;
  std::uint64_t cache_us = 0;
  std::uint64_t total_us = 0;
};

/// `"timings":{...}` JSON fragment for a response.
std::string render_timings(const JobTimings& timings);

/// Full response line (without trailing newline) for a success.  The
/// timings are a per-delivery field, rendered *before* the cached result
/// fragment so the fragment tail stays byte-identical across deliveries.
std::string render_response(const std::string& id, bool cache_hit,
                            const JobTimings& timings,
                            const std::string& result_fragment);

/// Convenience overload with all-zero timings (tests, replay paths).
std::string render_response(const std::string& id, bool cache_hit,
                            const std::string& result_fragment);

/// Full response line for a failure, carrying the stable error code both
/// numerically ("E0602") and as its identifier ("server-queue-full").
std::string render_error_response(const std::string& id, const Error& error);

}  // namespace isex::server
