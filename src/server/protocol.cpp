#include "server/protocol.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <utility>
#include <vector>

#include "trace/trace.hpp"  // json_escape

namespace isex::server {
namespace {

// ---------------------------------------------------------------------------
// Minimal JSON reader.  Requests are single-line, flat objects; this parser
// accepts general JSON anyway (nested values become structured JsonValues)
// so malformed nesting yields a clean E0601 instead of a surprise.

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kObject, kArray };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  /// Set when the number literal had no '.', 'e', or sign-overflow; carries
  /// full 64-bit precision (doubles cannot hold every seed).
  bool is_integer = false;
  std::uint64_t integer = 0;
  bool negative = false;
  std::string string;
  std::vector<std::pair<std::string, JsonValue>> object;
  std::vector<JsonValue> array;
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  Expected<JsonValue> parse() {
    skip_ws();
    JsonValue value;
    if (!parse_value(value)) return make_error();
    skip_ws();
    if (pos_ != text_.size())
      return Error(ErrorCode::kServerProtocol,
                   "trailing characters after JSON value at offset " +
                       std::to_string(pos_));
    return value;
  }

 private:
  Error make_error() {
    return Error(ErrorCode::kServerProtocol,
                 error_.empty() ? "malformed JSON at offset " +
                                      std::to_string(pos_)
                                : error_);
  }

  void fail(std::string message) {
    if (error_.empty())
      error_ = std::move(message) + " at offset " + std::to_string(pos_);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r'))
      ++pos_;
  }

  bool literal(std::string_view word) {
    if (text_.compare(pos_, word.size(), word) != 0) return false;
    pos_ += word.size();
    return true;
  }

  bool parse_value(JsonValue& out) {
    if (pos_ >= text_.size()) {
      fail("unexpected end of input");
      return false;
    }
    switch (text_[pos_]) {
      case '{': return parse_object(out);
      case '[': return parse_array(out);
      case '"':
        out.kind = JsonValue::Kind::kString;
        return parse_string(out.string);
      case 't':
        out.kind = JsonValue::Kind::kBool;
        out.boolean = true;
        if (literal("true")) return true;
        fail("bad literal");
        return false;
      case 'f':
        out.kind = JsonValue::Kind::kBool;
        out.boolean = false;
        if (literal("false")) return true;
        fail("bad literal");
        return false;
      case 'n':
        out.kind = JsonValue::Kind::kNull;
        if (literal("null")) return true;
        fail("bad literal");
        return false;
      default: return parse_number(out);
    }
  }

  bool parse_object(JsonValue& out) {
    out.kind = JsonValue::Kind::kObject;
    ++pos_;  // '{'
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      skip_ws();
      std::string key;
      if (pos_ >= text_.size() || text_[pos_] != '"' || !parse_string(key)) {
        fail("expected object key");
        return false;
      }
      skip_ws();
      if (pos_ >= text_.size() || text_[pos_] != ':') {
        fail("expected ':'");
        return false;
      }
      ++pos_;
      skip_ws();
      JsonValue value;
      if (!parse_value(value)) return false;
      out.object.emplace_back(std::move(key), std::move(value));
      skip_ws();
      if (pos_ >= text_.size()) {
        fail("unterminated object");
        return false;
      }
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == '}') {
        ++pos_;
        return true;
      }
      fail("expected ',' or '}'");
      return false;
    }
  }

  bool parse_array(JsonValue& out) {
    out.kind = JsonValue::Kind::kArray;
    ++pos_;  // '['
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      skip_ws();
      JsonValue value;
      if (!parse_value(value)) return false;
      out.array.push_back(std::move(value));
      skip_ws();
      if (pos_ >= text_.size()) {
        fail("unterminated array");
        return false;
      }
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == ']') {
        ++pos_;
        return true;
      }
      fail("expected ',' or ']'");
      return false;
    }
  }

  bool parse_string(std::string& out) {
    ++pos_;  // opening quote
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (c == '\\') {
        if (pos_ + 1 >= text_.size()) break;
        const char esc = text_[pos_ + 1];
        pos_ += 2;
        switch (esc) {
          case '"': out.push_back('"'); break;
          case '\\': out.push_back('\\'); break;
          case '/': out.push_back('/'); break;
          case 'b': out.push_back('\b'); break;
          case 'f': out.push_back('\f'); break;
          case 'n': out.push_back('\n'); break;
          case 'r': out.push_back('\r'); break;
          case 't': out.push_back('\t'); break;
          case 'u': {
            if (pos_ + 4 > text_.size()) {
              fail("truncated \\u escape");
              return false;
            }
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = text_[pos_ + static_cast<std::size_t>(i)];
              code <<= 4;
              if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
              else {
                fail("bad \\u escape");
                return false;
              }
            }
            pos_ += 4;
            // UTF-8 encode the BMP code point (surrogate pairs are not
            // needed for TAC text; a lone surrogate encodes as-is).
            if (code < 0x80) {
              out.push_back(static_cast<char>(code));
            } else if (code < 0x800) {
              out.push_back(static_cast<char>(0xc0 | (code >> 6)));
              out.push_back(static_cast<char>(0x80 | (code & 0x3f)));
            } else {
              out.push_back(static_cast<char>(0xe0 | (code >> 12)));
              out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3f)));
              out.push_back(static_cast<char>(0x80 | (code & 0x3f)));
            }
            break;
          }
          default:
            fail("unknown escape");
            return false;
        }
        continue;
      }
      out.push_back(c);
      ++pos_;
    }
    fail("unterminated string");
    return false;
  }

  bool parse_number(JsonValue& out) {
    out.kind = JsonValue::Kind::kNumber;
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') {
      out.negative = true;
      ++pos_;
    }
    bool saw_digit = false, integral = true;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c >= '0' && c <= '9') {
        saw_digit = true;
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        if (c == '.' || c == 'e' || c == 'E') integral = false;
        ++pos_;
      } else {
        break;
      }
    }
    if (!saw_digit) {
      fail("malformed number");
      return false;
    }
    const std::string token = text_.substr(start, pos_ - start);
    out.number = std::strtod(token.c_str(), nullptr);
    if (integral) {
      out.is_integer = true;
      out.integer = std::strtoull(
          token.c_str() + (out.negative ? 1 : 0), nullptr, 10);
    }
    return true;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
  std::string error_;
};

Error field_error(const std::string& field, const char* expected) {
  return Error(ErrorCode::kServerProtocol,
               "field '" + field + "' must be " + expected);
}

bool read_int(const JsonValue& v, int* out) {
  if (v.kind != JsonValue::Kind::kNumber || !v.is_integer) return false;
  if (v.integer > 0x7fffffffULL) return false;
  *out = v.negative ? -static_cast<int>(v.integer)
                    : static_cast<int>(v.integer);
  return true;
}

}  // namespace

Expected<JobRequest> parse_job_request(const std::string& line) {
  Expected<JsonValue> parsed = JsonParser(line).parse();
  if (!parsed) return parsed.error();
  const JsonValue& root = *parsed;
  if (root.kind != JsonValue::Kind::kObject)
    return Error(ErrorCode::kServerProtocol, "request must be a JSON object");

  JobRequest request;
  bool have_kernel = false;
  for (const auto& [key, value] : root.object) {
    if (key == "id") {
      if (value.kind != JsonValue::Kind::kString)
        return field_error(key, "a string");
      request.id = value.string;
    } else if (key == "kernel") {
      if (value.kind != JsonValue::Kind::kString)
        return field_error(key, "a string (TAC source)");
      request.kernel = value.string;
      have_kernel = true;
    } else if (key == "priority") {
      if (!read_int(value, &request.priority))
        return field_error(key, "an integer");
    } else if (key == "issue") {
      if (!read_int(value, &request.issue) || request.issue < 1)
        return field_error(key, "an integer >= 1");
    } else if (key == "read_ports") {
      if (!read_int(value, &request.read_ports) || request.read_ports < 1)
        return field_error(key, "an integer >= 1");
    } else if (key == "write_ports") {
      if (!read_int(value, &request.write_ports) || request.write_ports < 1)
        return field_error(key, "an integer >= 1");
    } else if (key == "repeats") {
      if (!read_int(value, &request.repeats) || request.repeats < 1)
        return field_error(key, "an integer >= 1");
    } else if (key == "colonies") {
      if (!read_int(value, &request.colonies) || request.colonies < 1)
        return field_error(key, "an integer >= 1");
    } else if (key == "merge_interval") {
      if (!read_int(value, &request.merge_interval) ||
          request.merge_interval < 1)
        return field_error(key, "an integer >= 1");
    } else if (key == "seed") {
      if (value.kind != JsonValue::Kind::kNumber || !value.is_integer ||
          value.negative)
        return field_error(key, "a non-negative integer");
      request.seed = value.integer;
    } else if (key == "area_budget") {
      if (value.kind != JsonValue::Kind::kNumber || value.number < 0.0)
        return field_error(key, "a non-negative number");
      request.area_budget = value.number;
      request.has_area_budget = true;
    } else if (key == "max_ises") {
      if (!read_int(value, &request.max_ises) || request.max_ises < 0)
        return field_error(key, "an integer >= 0");
    } else if (key == "baseline") {
      if (value.kind != JsonValue::Kind::kBool)
        return field_error(key, "a boolean");
      request.baseline = value.boolean;
    } else if (key == "cache_config") {
      if (value.kind != JsonValue::Kind::kString)
        return field_error(key, "a string (cache-config spec)");
      // Parse + validate here so a bad geometry is rejected at admission
      // with its own E07xx code instead of failing mid-flow.
      Expected<mem::CacheConfig> parsed_cache =
          mem::parse_cache_config(value.string);
      if (!parsed_cache) return parsed_cache.error();
      request.cache_config = value.string;
      request.cache = *parsed_cache;
      request.has_cache = true;
    } else if (key == "programs") {
      if (value.kind != JsonValue::Kind::kArray || value.array.empty())
        return field_error(key, "a non-empty array of program objects");
      for (const JsonValue& item : value.array) {
        if (item.kind != JsonValue::Kind::kObject)
          return field_error(key, "a non-empty array of program objects");
        PortfolioProgramSpec spec;
        bool have_program_kernel = false;
        for (const auto& [pkey, pvalue] : item.object) {
          if (pkey == "name") {
            if (pvalue.kind != JsonValue::Kind::kString)
              return field_error("programs[].name", "a string");
            spec.name = pvalue.string;
          } else if (pkey == "kernel") {
            if (pvalue.kind != JsonValue::Kind::kString)
              return field_error("programs[].kernel", "a string (TAC source)");
            spec.kernel = pvalue.string;
            have_program_kernel = true;
          } else if (pkey == "weight") {
            if (pvalue.kind != JsonValue::Kind::kNumber ||
                !std::isfinite(pvalue.number) || !(pvalue.number > 0.0))
              return field_error("programs[].weight",
                                 "a finite number > 0");
            spec.weight = pvalue.number;
          } else {
            return Error(ErrorCode::kServerProtocol,
                         "unknown request field 'programs[]." + pkey + "'");
          }
        }
        if (!have_program_kernel || spec.kernel.empty())
          return Error(ErrorCode::kServerProtocol,
                       "portfolio program " +
                           std::to_string(request.programs.size()) +
                           " is missing the 'kernel' field");
        if (spec.name.empty())
          spec.name = "p" + std::to_string(request.programs.size());
        request.programs.push_back(std::move(spec));
      }
    } else {
      return Error(ErrorCode::kServerProtocol,
                   "unknown request field '" + key + "'");
    }
  }
  if (request.is_portfolio()) {
    if (have_kernel)
      return Error(ErrorCode::kServerProtocol,
                   "'kernel' and 'programs' are mutually exclusive");
  } else if (!have_kernel || request.kernel.empty()) {
    return Error(ErrorCode::kServerProtocol,
                 "request is missing the 'kernel' field");
  }
  return request;
}

flow::FlowConfig flow_config_for(const JobRequest& request) {
  flow::FlowConfig config;
  config.machine = sched::MachineConfig::make(
      request.issue, {request.read_ports, request.write_ports});
  config.repeats = request.repeats;
  config.seed = request.seed;
  config.params.colonies = request.colonies;
  config.params.merge_interval = request.merge_interval;
  config.constraints.max_ises = request.max_ises;
  if (request.has_area_budget)
    config.constraints.area_budget = request.area_budget;
  config.algorithm = request.baseline ? flow::Algorithm::kSingleIssue
                                      : flow::Algorithm::kMultiIssue;
  if (request.has_cache) config.cache = request.cache;
  return config;
}

flow::PortfolioConfig portfolio_config_for(const JobRequest& request) {
  flow::PortfolioConfig config;
  config.base = flow_config_for(request);
  return config;
}

runtime::Key128 job_signature(const dfg::Graph& graph,
                              const JobRequest& request) {
  // Everything run_design_flow reads must be mixed in; bump when the flow's
  // semantics change so stale persisted results cannot be replayed.
  // v2: multi-colony search (colonies / merge_interval join the signature).
  // v3: memory-hierarchy model — the cache config is mixed in *only when
  // present* (tagged, at the end of the mix), so every cache-less request
  // keeps its v2 key byte-for-byte and the persisted cache stays warm
  // across the upgrade; the version constant therefore stays 2
  // (docs/SERVER.md, "Signature compatibility").
  constexpr std::uint64_t kFlowSemanticsVersion = 2;
  const runtime::Key128 digest = runtime::graph_digest(graph);
  const flow::FlowConfig config = flow_config_for(request);
  const auto mix_request = [&](runtime::Hash64& h, std::uint64_t half,
                               std::uint64_t machine_seed) {
    h.mix(kFlowSemanticsVersion);
    h.mix(half);
    h.mix(runtime::fingerprint(config.machine, machine_seed));
    h.mix(static_cast<std::uint64_t>(request.repeats));
    h.mix(request.seed);
    // merge_interval only matters with >= 2 colonies; normalizing it to 0
    // for single-colony requests keeps every inert variant on one cache key
    // while colonies=1 vs colonies=K always get distinct signatures.
    h.mix(static_cast<std::uint64_t>(request.colonies));
    h.mix(request.colonies > 1
              ? static_cast<std::uint64_t>(request.merge_interval)
              : 0);
    h.mix(static_cast<std::uint64_t>(request.max_ises));
    h.mix(request.has_area_budget ? 1 : 0);
    h.mix_double(request.has_area_budget ? request.area_budget : 0.0);
    h.mix(request.baseline ? 1 : 0);
    if (request.has_cache) {
      h.mix(0x6361636865636667ULL);  // "cachecfg" tag; cannot alias a v2 mix
      h.mix(mem::fingerprint(request.cache, machine_seed));
    }
  };
  runtime::Key128 key;
  runtime::Hash64 lo(0xd1b54a32d192ed03ULL);  // domain: job signatures
  mix_request(lo, digest.lo, 0xaef17502108ef2d9ULL);
  key.lo = lo.value();
  runtime::Hash64 hi(0x8cb92ba72f3d8dd7ULL);
  mix_request(hi, digest.hi, 0x94d049bb133111ebULL);
  key.hi = hi.value();
  return key;
}

runtime::Key128 portfolio_signature(
    const std::vector<const dfg::Graph*>& graphs, const JobRequest& request) {
  // v1 of the portfolio signature scheme.  Each row contributes its
  // program's job_signature (graph × shared parameters, budget included)
  // paired with its weight; rows are mixed in sorted order so manifest row
  // order — which never changes any per-program result — cannot fork the
  // cache key.
  constexpr std::uint64_t kPortfolioVersion = 1;
  struct Row {
    runtime::Key128 sig;
    double weight;
  };
  std::vector<Row> rows;
  rows.reserve(graphs.size());
  for (std::size_t p = 0; p < graphs.size(); ++p)
    rows.push_back(Row{job_signature(*graphs[p], request),
                       request.programs[p].weight});
  std::sort(rows.begin(), rows.end(), [](const Row& a, const Row& b) {
    if (a.sig.lo != b.sig.lo) return a.sig.lo < b.sig.lo;
    if (a.sig.hi != b.sig.hi) return a.sig.hi < b.sig.hi;
    return a.weight < b.weight;
  });
  const auto mix_rows = [&](runtime::Hash64& h, bool low_half) {
    h.mix(kPortfolioVersion);
    h.mix(rows.size());
    for (const Row& row : rows) {
      h.mix(low_half ? row.sig.lo : row.sig.hi);
      h.mix_double(row.weight);
    }
  };
  runtime::Key128 key;
  runtime::Hash64 lo(0xc2b2ae3d27d4eb4fULL);  // domain: portfolio signatures
  mix_rows(lo, /*low_half=*/true);
  key.lo = lo.value();
  runtime::Hash64 hi(0x165667b19e3779f9ULL);
  mix_rows(hi, /*low_half=*/false);
  key.hi = hi.value();
  return key;
}

std::uint64_t flow_result_digest(const flow::FlowResult& result) {
  runtime::Hash64 h(0x9e3779b97f4a7c15ULL);
  h.mix(result.base_time());
  h.mix(result.final_time());
  h.mix(result.hot_blocks.size());
  for (const std::size_t b : result.hot_blocks) h.mix(b);
  h.mix(static_cast<std::uint64_t>(result.selection.num_types));
  h.mix_double(result.selection.total_area);
  h.mix(result.selection.selected.size());
  for (const flow::SelectedIse& sel : result.selection.selected) {
    h.mix(sel.entry.block_index);
    h.mix(sel.entry.position);
    h.mix(static_cast<std::uint64_t>(sel.type_id));
    h.mix(sel.hardware_shared ? 1 : 0);
    h.mix(sel.entry.benefit);
    const core::ExploredIse& ise = sel.entry.ise;
    h.mix(static_cast<std::uint64_t>(ise.gain_cycles));
    h.mix(static_cast<std::uint64_t>(ise.in_count));
    h.mix(static_cast<std::uint64_t>(ise.out_count));
    h.mix(static_cast<std::uint64_t>(ise.eval.latency_cycles));
    h.mix_double(ise.eval.area);
    for (const std::uint64_t w : ise.original_nodes.words()) h.mix(w);
  }
  h.mix(result.replacement.outcomes.size());
  for (const flow::BlockOutcome& block : result.replacement.outcomes) {
    for (const char c : block.name)
      h.mix(static_cast<std::uint64_t>(static_cast<unsigned char>(c)));
    h.mix(block.exec_count);
    h.mix(static_cast<std::uint64_t>(block.base_cycles));
    h.mix(static_cast<std::uint64_t>(block.final_cycles));
    h.mix(static_cast<std::uint64_t>(block.ise_uses));
  }
  // Mixed only for cache-modeled runs so cache-less digests stay stable.
  if (result.cache_modeled) {
    h.mix(0x6361636865636667ULL);
    h.mix(result.cache_stats.accesses);
    h.mix(result.cache_stats.l1_hits);
    h.mix(result.cache_stats.l2_hits);
    h.mix(result.cache_stats.mem_accesses);
  }
  return h.value();
}

std::string render_result_fragment(const flow::FlowResult& result) {
  char buf[64];
  std::string out;
  const auto num = [&](const char* fmt, auto value) {
    std::snprintf(buf, sizeof buf, fmt, value);
    out += buf;
  };
  out += "\"base_time\":";
  num("%llu", static_cast<unsigned long long>(result.base_time()));
  out += ",\"final_time\":";
  num("%llu", static_cast<unsigned long long>(result.final_time()));
  out += ",\"reduction\":";
  num("%.6f", result.reduction());
  out += ",\"num_ises\":";
  num("%zu", result.selection.selected.size());
  out += ",\"num_types\":";
  num("%d", result.num_ise_types());
  out += ",\"total_area\":";
  num("%.3f", result.total_area());
  out += ",\"result_digest\":\"";
  num("0x%016llx",
      static_cast<unsigned long long>(flow_result_digest(result)));
  out += "\",\"ises\":[";
  bool first = true;
  for (const flow::SelectedIse& sel : result.selection.selected) {
    if (!first) out += ',';
    first = false;
    const core::ExploredIse& ise = sel.entry.ise;
    out += "{\"block\":";
    num("%zu", sel.entry.block_index);
    out += ",\"type\":";
    num("%d", sel.type_id);
    out += ",\"shared\":";
    out += sel.hardware_shared ? "true" : "false";
    out += ",\"ops\":";
    num("%zu", ise.original_nodes.count());
    out += ",\"latency\":";
    num("%d", ise.eval.latency_cycles);
    out += ",\"area\":";
    num("%.3f", ise.eval.area);
    out += ",\"in\":";
    num("%d", ise.in_count);
    out += ",\"out\":";
    num("%d", ise.out_count);
    out += ",\"gain\":";
    num("%d", ise.gain_cycles);
    out += ",\"members\":\"";
    std::string members;
    for (const std::string& label : ise.member_labels) {
      if (!members.empty()) members += ' ';
      members += label;
    }
    out += trace::json_escape(members);
    out += "\"}";
  }
  out += ']';
  // Per-flow hit/miss telemetry; rendered only for cache-modeled runs so
  // cache-less fragments stay byte-identical across the upgrade.
  if (result.cache_modeled) {
    out += ",\"cache\":{\"accesses\":";
    num("%llu", static_cast<unsigned long long>(result.cache_stats.accesses));
    out += ",\"l1_hits\":";
    num("%llu", static_cast<unsigned long long>(result.cache_stats.l1_hits));
    out += ",\"l2_hits\":";
    num("%llu", static_cast<unsigned long long>(result.cache_stats.l2_hits));
    out += ",\"mem_accesses\":";
    num("%llu",
        static_cast<unsigned long long>(result.cache_stats.mem_accesses));
    out += ",\"l1_hit_rate\":";
    num("%.6f", result.cache_stats.l1_hit_rate());
    out += '}';
  }
  return out;
}

std::uint64_t portfolio_result_digest(const flow::PortfolioResult& result) {
  runtime::Hash64 h(0x27220a957fb9d1f1ULL);  // domain: portfolio digests
  h.mix(result.programs.size());
  for (const flow::PortfolioProgramResult& prog : result.programs) {
    for (const char c : prog.name)
      h.mix(static_cast<std::uint64_t>(static_cast<unsigned char>(c)));
    h.mix_double(prog.weight);
    h.mix(prog.base_time());
    h.mix(prog.final_time());
    h.mix(prog.hot_blocks.size());
    for (const std::size_t b : prog.hot_blocks) h.mix(b);
    h.mix(prog.selection.selected.size());
    h.mix(static_cast<std::uint64_t>(prog.selection.num_types));
    h.mix_double(prog.selection.total_area);
  }
  h.mix(result.selection.selected.size());
  for (const flow::PortfolioSelectedIse& sel : result.selection.selected) {
    h.mix(sel.program_index);
    h.mix(sel.entry.block_index);
    h.mix(sel.entry.position);
    h.mix(static_cast<std::uint64_t>(sel.type_id));
    h.mix(sel.hardware_shared ? 1 : 0);
    h.mix(sel.entry.benefit);
    h.mix_double(sel.weighted_benefit);
    h.mix_double(sel.entry.ise.eval.area);
  }
  h.mix_double(result.selection.total_area);
  h.mix(static_cast<std::uint64_t>(result.selection.num_types));
  h.mix(result.total_jobs);
  h.mix(result.deduped_jobs);
  if (result.cache_modeled) {
    h.mix(0x6361636865636667ULL);
    h.mix(result.cache_stats.accesses);
    h.mix(result.cache_stats.l1_hits);
    h.mix(result.cache_stats.l2_hits);
    h.mix(result.cache_stats.mem_accesses);
  }
  return h.value();
}

std::string render_portfolio_fragment(const flow::PortfolioResult& result) {
  char buf[64];
  std::string out;
  const auto num = [&](const char* fmt, auto value) {
    std::snprintf(buf, sizeof buf, fmt, value);
    out += buf;
  };
  out += "\"portfolio\":true,\"num_programs\":";
  num("%zu", result.programs.size());
  out += ",\"total_weighted_benefit\":";
  num("%.6f", result.total_weighted_benefit());
  out += ",\"total_area\":";
  num("%.3f", result.total_area());
  out += ",\"num_types\":";
  num("%d", result.num_ise_types());
  out += ",\"num_ises\":";
  num("%zu", result.selection.selected.size());
  out += ",\"total_jobs\":";
  num("%llu", static_cast<unsigned long long>(result.total_jobs));
  out += ",\"deduped_jobs\":";
  num("%llu", static_cast<unsigned long long>(result.deduped_jobs));
  out += ",\"eval_hits\":";
  num("%llu",
      static_cast<unsigned long long>(result.eval_cache_stats.hits));
  out += ",\"eval_misses\":";
  num("%llu",
      static_cast<unsigned long long>(result.eval_cache_stats.misses));
  out += ",\"dedup_hit_rate\":";
  num("%.6f", result.eval_cache_stats.hit_rate());
  out += ",\"isomorphic_hot_blocks\":";
  num("%llu",
      static_cast<unsigned long long>(result.isomorphic_hot_blocks));
  out += ",\"isomorphic_candidates\":";
  num("%llu",
      static_cast<unsigned long long>(result.isomorphic_candidates));
  out += ",\"result_digest\":\"";
  num("0x%016llx",
      static_cast<unsigned long long>(portfolio_result_digest(result)));
  out += "\",\"programs\":[";
  bool first = true;
  for (const flow::PortfolioProgramResult& prog : result.programs) {
    if (!first) out += ',';
    first = false;
    out += "{\"name\":\"" + trace::json_escape(prog.name) + "\",\"weight\":";
    num("%.6f", prog.weight);
    out += ",\"base_time\":";
    num("%llu", static_cast<unsigned long long>(prog.base_time()));
    out += ",\"final_time\":";
    num("%llu", static_cast<unsigned long long>(prog.final_time()));
    out += ",\"reduction\":";
    num("%.6f", prog.reduction());
    out += ",\"num_ises\":";
    num("%zu", prog.selection.selected.size());
    out += ",\"cycles_saved\":";
    num("%llu", static_cast<unsigned long long>(prog.cycles_saved()));
    out += ",\"weighted_benefit\":";
    num("%.6f", prog.weighted_benefit());
    out += '}';
  }
  out += "],\"ises\":[";
  first = true;
  for (const flow::PortfolioSelectedIse& sel : result.selection.selected) {
    if (!first) out += ',';
    first = false;
    out += "{\"program\":";
    num("%zu", sel.program_index);
    out += ",\"block\":";
    num("%zu", sel.entry.block_index);
    out += ",\"type\":";
    num("%d", sel.type_id);
    out += ",\"shared\":";
    out += sel.hardware_shared ? "true" : "false";
    out += ",\"area\":";
    num("%.3f", sel.entry.ise.eval.area);
    out += ",\"gain\":";
    num("%d", sel.entry.ise.gain_cycles);
    out += ",\"weighted_benefit\":";
    num("%.6f", sel.weighted_benefit);
    out += '}';
  }
  out += ']';
  if (result.cache_modeled) {
    out += ",\"cache\":{\"accesses\":";
    num("%llu", static_cast<unsigned long long>(result.cache_stats.accesses));
    out += ",\"l1_hits\":";
    num("%llu", static_cast<unsigned long long>(result.cache_stats.l1_hits));
    out += ",\"l2_hits\":";
    num("%llu", static_cast<unsigned long long>(result.cache_stats.l2_hits));
    out += ",\"mem_accesses\":";
    num("%llu",
        static_cast<unsigned long long>(result.cache_stats.mem_accesses));
    out += ",\"l1_hit_rate\":";
    num("%.6f", result.cache_stats.l1_hit_rate());
    out += '}';
  }
  return out;
}

std::string render_timings(const JobTimings& timings) {
  char buf[160];
  std::snprintf(buf, sizeof buf,
                "\"timings\":{\"queue_wait_us\":%llu,\"validate_us\":%llu,"
                "\"explore_us\":%llu,\"cache_us\":%llu,\"total_us\":%llu}",
                static_cast<unsigned long long>(timings.queue_wait_us),
                static_cast<unsigned long long>(timings.validate_us),
                static_cast<unsigned long long>(timings.explore_us),
                static_cast<unsigned long long>(timings.cache_us),
                static_cast<unsigned long long>(timings.total_us));
  return buf;
}

std::string render_response(const std::string& id, bool cache_hit,
                            const JobTimings& timings,
                            const std::string& result_fragment) {
  std::string out = "{\"id\":\"" + trace::json_escape(id) +
                    "\",\"ok\":true,\"cache_hit\":";
  out += cache_hit ? "true" : "false";
  out += ',';
  // Per-delivery before the fragment: the cached fragment (base_time ...
  // result_digest ... ises) replays byte-identically on every delivery.
  out += render_timings(timings);
  out += ',';
  out += result_fragment;
  out += '}';
  return out;
}

std::string render_response(const std::string& id, bool cache_hit,
                            const std::string& result_fragment) {
  return render_response(id, cache_hit, JobTimings{}, result_fragment);
}

std::string render_error_response(const std::string& id, const Error& error) {
  char code[8];
  std::snprintf(code, sizeof code, "E%04d",
                static_cast<int>(error.code()));
  std::string out = "{\"id\":\"" + trace::json_escape(id) +
                    "\",\"ok\":false,\"error_code\":\"" + code +
                    "\",\"error_name\":\"" +
                    std::string(error_code_name(error.code())) +
                    "\",\"error\":\"" + trace::json_escape(error.message()) +
                    "\"}";
  return out;
}

}  // namespace isex::server
