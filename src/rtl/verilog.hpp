// Structural Verilog emission for ASFU datapaths.
//
// An accepted ISE candidate is a combinational dataflow over library cells;
// this module renders it as a synthesizable Verilog-2001 module so the
// design can continue into the paper's physical flow (the Table 5.1.1
// numbers came from Synopsys synthesis of exactly such netlists).  Inputs
// are the candidate's IN(S) operands, outputs its OUT(S) escaping values;
// the expression per operation mirrors exec::apply_alu's semantics.
//
// Emission works from the executable TAC form (statements carry the
// immediates and operand order the bare DFG erases).
#pragma once

#include <string>

#include "dfg/node_set.hpp"
#include "hwlib/asfu.hpp"
#include "isa/tac_parser.hpp"

namespace isex::rtl {

struct VerilogOptions {
  std::string module_name = "asfu";
  /// Optional evaluation to record in the header comment (depth/area).
  const hw::AsfuEvaluation* evaluation = nullptr;
};

/// Emits a combinational module for the candidate `members` of `block`.
/// Preconditions: every member is ISE-eligible (no loads/stores/branches)
/// and `members` is non-empty.
std::string emit_asfu(const isa::ParsedBlock& block, const dfg::NodeSet& members,
                      const VerilogOptions& options = {});

}  // namespace isex::rtl
