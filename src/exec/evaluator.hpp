// TAC-block evaluator: executes a ParsedBlock's statements over a variable
// environment and a sparse memory, giving the benchmark kernels (and any
// user kernel) testable functional semantics.
//
// Dataflow note: because a block is SSA and statements are in program
// order, executing statements sequentially is exactly a topological
// evaluation of the DFG — the same values an ASFU computing a fused ISE
// would produce, which is why collapse-based replacement is semantics-
// preserving by construction.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <unordered_map>

#include "exec/memory.hpp"
#include "isa/tac_parser.hpp"

namespace isex::exec {

/// Raised on undefined live-in reads or non-executable statements.
class EvalError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class Evaluator {
 public:
  /// Binds a live-in (or overrides any variable) by name.
  void set(const std::string& name, std::uint32_t value);

  /// Reads a variable; throws EvalError when it was never defined.
  std::uint32_t get(const std::string& name) const;
  bool has(const std::string& name) const;

  Memory& memory() { return memory_; }
  const Memory& memory() const { return memory_; }

  /// Executes every statement of `block` in program order.  Branch
  /// statements evaluate their condition but transfer no control (a basic
  /// block has a single exit by definition).
  void run(const isa::ParsedBlock& block);

  /// Convenience: run and return one output.
  std::uint32_t run_for(const isa::ParsedBlock& block, const std::string& out);

 private:
  std::uint32_t operand_value(const isa::TacOperand& operand) const;

  std::unordered_map<std::string, std::uint32_t> vars_;
  Memory memory_;
};

}  // namespace isex::exec
