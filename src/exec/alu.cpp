#include "exec/alu.hpp"

#include "util/assert.hpp"

namespace isex::exec {
namespace {

std::int32_t as_signed(std::uint32_t v) { return static_cast<std::int32_t>(v); }

}  // namespace

bool alu_defined(isa::Opcode op) {
  using isa::Opcode;
  switch (op) {
    case Opcode::kAdd: case Opcode::kAddi: case Opcode::kAddu:
    case Opcode::kAddiu: case Opcode::kSub: case Opcode::kSubu:
    case Opcode::kMult: case Opcode::kMultu: case Opcode::kDiv:
    case Opcode::kDivu: case Opcode::kAnd: case Opcode::kAndi:
    case Opcode::kOr: case Opcode::kOri: case Opcode::kXor:
    case Opcode::kXori: case Opcode::kNor: case Opcode::kSll:
    case Opcode::kSllv: case Opcode::kSrl: case Opcode::kSrlv:
    case Opcode::kSra: case Opcode::kSrav: case Opcode::kSlt:
    case Opcode::kSlti: case Opcode::kSltu: case Opcode::kSltiu:
    case Opcode::kLui: case Opcode::kMov:
      return true;
    default:
      return false;
  }
}

std::uint32_t apply_alu(isa::Opcode op, std::uint32_t a, std::uint32_t b) {
  using isa::Opcode;
  switch (op) {
    // PISA's add vs addu differ only in overflow trapping, which a
    // functional model need not raise; both wrap modulo 2^32 here.
    case Opcode::kAdd:
    case Opcode::kAddi:
    case Opcode::kAddu:
    case Opcode::kAddiu:
      return a + b;
    case Opcode::kSub:
    case Opcode::kSubu:
      return a - b;
    // HI/LO are not modelled; mult yields the low 32 product bits, which is
    // what every kernel in the suite consumes.
    case Opcode::kMult:
    case Opcode::kMultu:
      return a * b;
    case Opcode::kDiv:
      return b == 0 ? 0
                    : static_cast<std::uint32_t>(as_signed(a) / as_signed(b));
    case Opcode::kDivu:
      return b == 0 ? 0 : a / b;
    case Opcode::kAnd:
    case Opcode::kAndi:
      return a & b;
    case Opcode::kOr:
    case Opcode::kOri:
      return a | b;
    case Opcode::kXor:
    case Opcode::kXori:
      return a ^ b;
    case Opcode::kNor:
      return ~(a | b);
    case Opcode::kSll:
    case Opcode::kSllv:
      return a << (b & 31U);
    case Opcode::kSrl:
    case Opcode::kSrlv:
      return a >> (b & 31U);
    case Opcode::kSra:
    case Opcode::kSrav:
      return static_cast<std::uint32_t>(as_signed(a) >> (b & 31U));
    case Opcode::kSlt:
    case Opcode::kSlti:
      return as_signed(a) < as_signed(b) ? 1U : 0U;
    case Opcode::kSltu:
    case Opcode::kSltiu:
      return a < b ? 1U : 0U;
    case Opcode::kLui:
      return a << 16U;
    case Opcode::kMov:
      return a;
    default:
      ISEX_ASSERT_MSG(false, "apply_alu called on a non-ALU opcode");
      return 0;
  }
}

}  // namespace isex::exec
