#include "exec/evaluator.hpp"

#include "exec/alu.hpp"
#include "util/assert.hpp"

namespace isex::exec {

void Evaluator::set(const std::string& name, std::uint32_t value) {
  vars_[name] = value;
}

std::uint32_t Evaluator::get(const std::string& name) const {
  const auto it = vars_.find(name);
  if (it == vars_.end())
    throw EvalError("read of undefined variable '" + name + "'");
  return it->second;
}

bool Evaluator::has(const std::string& name) const {
  return vars_.contains(name);
}

std::uint32_t Evaluator::operand_value(const isa::TacOperand& operand) const {
  switch (operand.kind) {
    case isa::TacOperand::Kind::kImmediate:
      return static_cast<std::uint32_t>(operand.imm);
    case isa::TacOperand::Kind::kVar:
    case isa::TacOperand::Kind::kMemAddr:
      return get(operand.name);
  }
  ISEX_ASSERT_MSG(false, "unreachable operand kind");
  return 0;
}

void Evaluator::run(const isa::ParsedBlock& block) {
  using isa::Opcode;
  for (const isa::TacStatement& stmt : block.statements) {
    if (isa::is_load(stmt.op)) {
      const std::uint32_t addr = operand_value(stmt.operands.at(0));
      std::uint32_t value = 0;
      switch (stmt.op) {
        case Opcode::kLw: value = memory_.load_word(addr); break;
        case Opcode::kLh:
          value = static_cast<std::uint32_t>(static_cast<std::int32_t>(
              static_cast<std::int16_t>(memory_.load_half(addr))));
          break;
        case Opcode::kLhu: value = memory_.load_half(addr); break;
        case Opcode::kLb:
          value = static_cast<std::uint32_t>(static_cast<std::int32_t>(
              static_cast<std::int8_t>(memory_.load_byte(addr))));
          break;
        case Opcode::kLbu: value = memory_.load_byte(addr); break;
        default: throw EvalError("unhandled load opcode");
      }
      vars_[stmt.dest] = value;
    } else if (isa::is_store(stmt.op)) {
      const std::uint32_t addr = operand_value(stmt.operands.at(0));
      const std::uint32_t value = operand_value(stmt.operands.at(1));
      switch (stmt.op) {
        case Opcode::kSw: memory_.store_word(addr, value); break;
        case Opcode::kSh:
          memory_.store_half(addr, static_cast<std::uint16_t>(value));
          break;
        case Opcode::kSb:
          memory_.store_byte(addr, static_cast<std::uint8_t>(value));
          break;
        default: throw EvalError("unhandled store opcode");
      }
    } else if (isa::is_branch(stmt.op)) {
      // Evaluate for effect-freedom; a block body takes no branches.
      for (const auto& operand : stmt.operands) (void)operand_value(operand);
    } else if (stmt.op == Opcode::kNop) {
      // nothing
    } else {
      const std::uint32_t a =
          stmt.operands.empty() ? 0 : operand_value(stmt.operands[0]);
      const std::uint32_t b =
          stmt.operands.size() < 2 ? 0 : operand_value(stmt.operands[1]);
      if (!alu_defined(stmt.op))
        throw EvalError(std::string("no semantics for opcode '") +
                        std::string(isa::mnemonic(stmt.op)) + "'");
      vars_[stmt.dest] = apply_alu(stmt.op, a, b);
    }
  }
}

std::uint32_t Evaluator::run_for(const isa::ParsedBlock& block,
                                 const std::string& out) {
  run(block);
  return get(out);
}

}  // namespace isex::exec
