// Sparse byte-addressed little-endian memory for TAC-block execution.
//
// Backs the load/store opcodes of the evaluator; untouched bytes read as
// zero, so kernels can be driven with small synthetic tables (S-boxes,
// step tables, adjacency lists) without pre-sizing anything.
#pragma once

#include <cstdint>
#include <unordered_map>

namespace isex::exec {

class Memory {
 public:
  std::uint8_t load_byte(std::uint32_t addr) const;
  std::uint16_t load_half(std::uint32_t addr) const;
  std::uint32_t load_word(std::uint32_t addr) const;

  void store_byte(std::uint32_t addr, std::uint8_t value);
  void store_half(std::uint32_t addr, std::uint16_t value);
  void store_word(std::uint32_t addr, std::uint32_t value);

  /// Number of bytes ever written (for tests).
  std::size_t footprint() const { return bytes_.size(); }

 private:
  std::unordered_map<std::uint32_t, std::uint8_t> bytes_;
};

}  // namespace isex::exec
