// Operational semantics of the PISA ALU subset.
//
// Gives the library a functional ground truth: the evaluator uses these to
// *execute* TAC blocks, and the test suite checks that the benchmark
// kernels compute what their names promise (the CRC step really advances a
// CRC-32, the SWAR block really counts bits, ...).  Keeping semantics in
// one place also pins down the conventions the rest of the library only
// implies: 32-bit two's-complement registers, shift amounts masked to five
// bits, `mult` yielding the low 32 product bits.
#pragma once

#include <cstdint>

#include "isa/opcode.hpp"

namespace isex::exec {

/// Applies a (non-memory, non-branch) opcode to its operand values.
/// For immediate forms, `b` carries the immediate.  Unary forms (mov, lui)
/// ignore `b` / use only `a` as documented per opcode.
std::uint32_t apply_alu(isa::Opcode op, std::uint32_t a, std::uint32_t b);

/// True when apply_alu() defines the opcode's semantics.
bool alu_defined(isa::Opcode op);

}  // namespace isex::exec
