#include "exec/memory.hpp"

namespace isex::exec {

std::uint8_t Memory::load_byte(std::uint32_t addr) const {
  const auto it = bytes_.find(addr);
  return it == bytes_.end() ? 0 : it->second;
}

std::uint16_t Memory::load_half(std::uint32_t addr) const {
  return static_cast<std::uint16_t>(load_byte(addr) |
                                    (load_byte(addr + 1) << 8U));
}

std::uint32_t Memory::load_word(std::uint32_t addr) const {
  return static_cast<std::uint32_t>(load_byte(addr)) |
         (static_cast<std::uint32_t>(load_byte(addr + 1)) << 8U) |
         (static_cast<std::uint32_t>(load_byte(addr + 2)) << 16U) |
         (static_cast<std::uint32_t>(load_byte(addr + 3)) << 24U);
}

void Memory::store_byte(std::uint32_t addr, std::uint8_t value) {
  if (value == 0) {
    bytes_.erase(addr);  // keep the map sparse; absent bytes read as zero
  } else {
    bytes_[addr] = value;
  }
}

void Memory::store_half(std::uint32_t addr, std::uint16_t value) {
  store_byte(addr, static_cast<std::uint8_t>(value & 0xFFU));
  store_byte(addr + 1, static_cast<std::uint8_t>(value >> 8U));
}

void Memory::store_word(std::uint32_t addr, std::uint32_t value) {
  store_byte(addr, static_cast<std::uint8_t>(value & 0xFFU));
  store_byte(addr + 1, static_cast<std::uint8_t>((value >> 8U) & 0xFFU));
  store_byte(addr + 2, static_cast<std::uint8_t>((value >> 16U) & 0xFFU));
  store_byte(addr + 3, static_cast<std::uint8_t>((value >> 24U) & 0xFFU));
}

}  // namespace isex::exec
