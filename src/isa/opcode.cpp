#include "isa/opcode.hpp"

#include <array>

#include "util/assert.hpp"

namespace isex::isa {
namespace {

constexpr std::array<OpcodeTraits, kOpcodeCount> make_traits_table() {
  std::array<OpcodeTraits, kOpcodeCount> t{};
  auto set = [&](Opcode op, std::string_view mn, FuClass fu, OpCategory cat,
                 std::uint8_t srcs, bool dst) {
    t[static_cast<std::size_t>(op)] = OpcodeTraits{mn, fu, cat, srcs, dst};
  };
  set(Opcode::kAdd, "add", FuClass::kAlu, OpCategory::kArith, 2, true);
  set(Opcode::kAddi, "addi", FuClass::kAlu, OpCategory::kArith, 1, true);
  set(Opcode::kAddu, "addu", FuClass::kAlu, OpCategory::kArith, 2, true);
  set(Opcode::kAddiu, "addiu", FuClass::kAlu, OpCategory::kArith, 1, true);
  set(Opcode::kSub, "sub", FuClass::kAlu, OpCategory::kArith, 2, true);
  set(Opcode::kSubu, "subu", FuClass::kAlu, OpCategory::kArith, 2, true);
  set(Opcode::kMult, "mult", FuClass::kMult, OpCategory::kArith, 2, true);
  set(Opcode::kMultu, "multu", FuClass::kMult, OpCategory::kArith, 2, true);
  set(Opcode::kDiv, "div", FuClass::kDiv, OpCategory::kArith, 2, true);
  set(Opcode::kDivu, "divu", FuClass::kDiv, OpCategory::kArith, 2, true);
  set(Opcode::kAnd, "and", FuClass::kAlu, OpCategory::kLogic, 2, true);
  set(Opcode::kAndi, "andi", FuClass::kAlu, OpCategory::kLogic, 1, true);
  set(Opcode::kOr, "or", FuClass::kAlu, OpCategory::kLogic, 2, true);
  set(Opcode::kOri, "ori", FuClass::kAlu, OpCategory::kLogic, 1, true);
  set(Opcode::kXor, "xor", FuClass::kAlu, OpCategory::kLogic, 2, true);
  set(Opcode::kXori, "xori", FuClass::kAlu, OpCategory::kLogic, 1, true);
  set(Opcode::kNor, "nor", FuClass::kAlu, OpCategory::kLogic, 2, true);
  set(Opcode::kSll, "sll", FuClass::kAlu, OpCategory::kShift, 1, true);
  set(Opcode::kSllv, "sllv", FuClass::kAlu, OpCategory::kShift, 2, true);
  set(Opcode::kSrl, "srl", FuClass::kAlu, OpCategory::kShift, 1, true);
  set(Opcode::kSrlv, "srlv", FuClass::kAlu, OpCategory::kShift, 2, true);
  set(Opcode::kSra, "sra", FuClass::kAlu, OpCategory::kShift, 1, true);
  set(Opcode::kSrav, "srav", FuClass::kAlu, OpCategory::kShift, 2, true);
  set(Opcode::kSlt, "slt", FuClass::kAlu, OpCategory::kCompare, 2, true);
  set(Opcode::kSlti, "slti", FuClass::kAlu, OpCategory::kCompare, 1, true);
  set(Opcode::kSltu, "sltu", FuClass::kAlu, OpCategory::kCompare, 2, true);
  set(Opcode::kSltiu, "sltiu", FuClass::kAlu, OpCategory::kCompare, 1, true);
  set(Opcode::kLui, "lui", FuClass::kAlu, OpCategory::kMove, 0, true);
  set(Opcode::kMov, "mov", FuClass::kAlu, OpCategory::kMove, 1, true);
  set(Opcode::kLw, "lw", FuClass::kMem, OpCategory::kLoad, 1, true);
  set(Opcode::kLh, "lh", FuClass::kMem, OpCategory::kLoad, 1, true);
  set(Opcode::kLhu, "lhu", FuClass::kMem, OpCategory::kLoad, 1, true);
  set(Opcode::kLb, "lb", FuClass::kMem, OpCategory::kLoad, 1, true);
  set(Opcode::kLbu, "lbu", FuClass::kMem, OpCategory::kLoad, 1, true);
  set(Opcode::kSw, "sw", FuClass::kMem, OpCategory::kStore, 2, false);
  set(Opcode::kSh, "sh", FuClass::kMem, OpCategory::kStore, 2, false);
  set(Opcode::kSb, "sb", FuClass::kMem, OpCategory::kStore, 2, false);
  set(Opcode::kBeq, "beq", FuClass::kBranch, OpCategory::kBranch, 2, false);
  set(Opcode::kBne, "bne", FuClass::kBranch, OpCategory::kBranch, 2, false);
  set(Opcode::kNop, "nop", FuClass::kAlu, OpCategory::kNop, 0, false);
  return t;
}

constexpr auto kTraitsTable = make_traits_table();

}  // namespace

const OpcodeTraits& traits(Opcode op) {
  const auto idx = static_cast<std::size_t>(op);
  ISEX_ASSERT(idx < kOpcodeCount);
  return kTraitsTable[idx];
}

std::optional<Opcode> opcode_from_mnemonic(std::string_view mnemonic) {
  for (std::size_t i = 0; i < kOpcodeCount; ++i) {
    if (kTraitsTable[i].mnemonic == mnemonic) return static_cast<Opcode>(i);
  }
  return std::nullopt;
}

}  // namespace isex::isa
