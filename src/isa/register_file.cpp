#include "isa/register_file.hpp"

namespace isex::isa {

std::string RegisterFileConfig::label() const {
  return std::to_string(read_ports) + "/" + std::to_string(write_ports);
}

}  // namespace isex::isa
