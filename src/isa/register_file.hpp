// Register-file model.
//
// The ISA format constrains ISEs in two ways (§1.2): the number of register
// read/write ports bounds IN(S)/OUT(S) of any ISE, and the free opcode space
// bounds how many ISEs a design may add.  This model captures both, plus the
// port configurations the evaluation sweeps (4/2, 6/3, 8/4, 10/5).
#pragma once

#include <cstdint>
#include <string>

namespace isex::isa {

/// Register-file port configuration.  `read_ports`/`write_ports` are the
/// totals available per cycle; an ISE reading k operands consumes k read
/// ports in its issue cycle.
struct RegisterFileConfig {
  int read_ports = 4;
  int write_ports = 2;

  /// Paper shorthand, e.g. "6/3".
  std::string label() const;

  friend bool operator==(const RegisterFileConfig&, const RegisterFileConfig&) = default;
};

/// ISA-format envelope for ISEs: the port-derived operand bounds plus the
/// unused-opcode budget.
struct IsaFormat {
  RegisterFileConfig reg_file;
  /// Maximum number of distinct ISEs the opcode space admits.
  int max_ises = 32;
  /// Pipestage timing constraint: hard cap on an ISE's ASFU latency in
  /// cycles (0 = unbounded).  §5.1 assumes both explorers honour it.
  int max_ise_latency_cycles = 0;

  /// IN(S) bound for a single ISE (§4.2 constraint 1).
  int max_ise_inputs() const { return reg_file.read_ports; }
  /// OUT(S) bound for a single ISE (§4.2 constraint 2).
  int max_ise_outputs() const { return reg_file.write_ports; }
};

}  // namespace isex::isa
