#include "isa/tac_parser.hpp"

#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <optional>
#include <unordered_set>
#include <vector>

namespace isex::isa {
namespace {

/// Parses an integer literal the lexer accepted, rejecting values that do
/// not fit the 32-bit datapath (the evaluator and RTL are 32-bit; silently
/// truncating a 2^40 literal would corrupt results, not report them).
std::int64_t parse_immediate(const std::string& text, int line_no) {
  errno = 0;
  char* end = nullptr;
  const long long value = std::strtoll(text.c_str(), &end, 0);
  if (errno == ERANGE || value > 4294967295LL || value < -2147483648LL)
    throw ParseError(ErrorCode::kParseImmediateRange, line_no,
                     "immediate '" + text +
                         "' does not fit the 32-bit datapath");
  return static_cast<std::int64_t>(value);
}

struct Token {
  enum class Kind { kIdent, kNumber, kEquals, kComma, kLBracket, kRBracket, kEnd };
  Kind kind = Kind::kEnd;
  std::string text;
};

class Lexer {
 public:
  Lexer(std::string_view line, int line_no) : line_(line), line_no_(line_no) {}

  Token next() {
    skip_space();
    if (pos_ >= line_.size() || line_[pos_] == '#') return {Token::Kind::kEnd, ""};
    const char c = line_[pos_];
    if (c == '=') { ++pos_; return {Token::Kind::kEquals, "="}; }
    if (c == ',') { ++pos_; return {Token::Kind::kComma, ","}; }
    if (c == '[') { ++pos_; return {Token::Kind::kLBracket, "["}; }
    if (c == ']') { ++pos_; return {Token::Kind::kRBracket, "]"}; }
    if (std::isdigit(static_cast<unsigned char>(c)) != 0 ||
        (c == '-' && pos_ + 1 < line_.size() &&
         std::isdigit(static_cast<unsigned char>(line_[pos_ + 1])) != 0)) {
      return lex_number();
    }
    if (std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_') {
      return lex_ident();
    }
    throw ParseError(line_no_, std::string("unexpected character '") + c + "'");
  }

 private:
  void skip_space() {
    while (pos_ < line_.size() &&
           std::isspace(static_cast<unsigned char>(line_[pos_])) != 0)
      ++pos_;
  }

  Token lex_number() {
    const std::size_t start = pos_;
    if (line_[pos_] == '-') ++pos_;
    // Accept decimal and 0x... hex.
    if (pos_ + 1 < line_.size() && line_[pos_] == '0' &&
        (line_[pos_ + 1] == 'x' || line_[pos_ + 1] == 'X')) {
      pos_ += 2;
      while (pos_ < line_.size() &&
             std::isxdigit(static_cast<unsigned char>(line_[pos_])) != 0)
        ++pos_;
    } else {
      while (pos_ < line_.size() &&
             std::isdigit(static_cast<unsigned char>(line_[pos_])) != 0)
        ++pos_;
    }
    return {Token::Kind::kNumber, std::string(line_.substr(start, pos_ - start))};
  }

  Token lex_ident() {
    const std::size_t start = pos_;
    while (pos_ < line_.size() &&
           (std::isalnum(static_cast<unsigned char>(line_[pos_])) != 0 ||
            line_[pos_] == '_'))
      ++pos_;
    return {Token::Kind::kIdent, std::string(line_.substr(start, pos_ - start))};
  }

  std::string_view line_;
  std::size_t pos_ = 0;
  int line_no_;
};

class BlockParser {
 public:
  explicit BlockParser(const ParseOptions& options) : options_(options) {}

  ParsedBlock parse(std::string_view source) {
    int line_no = 0;
    std::size_t start = 0;
    while (start <= source.size()) {
      const std::size_t nl = source.find('\n', start);
      const std::size_t end = (nl == std::string_view::npos) ? source.size() : nl;
      ++line_no;
      parse_line(source.substr(start, end - start), line_no);
      if (nl == std::string_view::npos) break;
      start = nl + 1;
    }
    if (options_.reject_empty && block_.statements.empty())
      throw ParseError(ErrorCode::kParseEmptyInput, 0,
                       "input contains no statements");
    apply_implicit_live_out();
    return std::move(block_);
  }

 private:
  void parse_line(std::string_view line, int line_no) {
    Lexer lex(line, line_no);
    Token first = lex.next();
    if (first.kind == Token::Kind::kEnd) return;
    if (first.kind != Token::Kind::kIdent)
      throw ParseError(line_no, "statement must start with an identifier");

    if (first.text == "live_out") {
      parse_live_out(lex, line_no);
      return;
    }

    // Disambiguate "dest = op ..." from "store_op [addr], val" by the next
    // token, so variables may shadow store mnemonics (a value named "sh"
    // stays a variable).
    const Token second = lex.next();
    if (second.kind != Token::Kind::kEquals) {
      if (auto op = opcode_from_mnemonic(first.text);
          op && is_store(*op) && second.kind == Token::Kind::kLBracket) {
        parse_store_after_bracket(*op, lex, line_no);
        return;
      }
      throw ParseError(line_no, "expected '=' after destination");
    }

    const std::string dest = first.text;
    const Token mn = lex.next();
    if (mn.kind != Token::Kind::kIdent)
      throw ParseError(line_no, "expected mnemonic after '='");
    const auto op = opcode_from_mnemonic(mn.text);
    if (!op)
      throw ParseError(ErrorCode::kParseUnknownMnemonic, line_no,
                       "unknown mnemonic '" + mn.text + "'");
    if (is_store(*op))
      throw ParseError(line_no, "store cannot have a destination");
    if (!traits(*op).has_dst)
      throw ParseError(line_no, "'" + mn.text + "' produces no result");

    std::vector<TacOperand> operands = parse_operands(lex, line_no);
    define(dest, *op, operands, line_no);
  }

  void parse_live_out(Lexer& lex, int line_no) {
    for (;;) {
      const Token t = lex.next();
      if (t.kind != Token::Kind::kIdent)
        throw ParseError(line_no, "live_out expects variable names");
      explicit_live_out_.push_back({t.text, line_no});
      const Token sep = lex.next();
      if (sep.kind == Token::Kind::kEnd) return;
      if (sep.kind != Token::Kind::kComma)
        throw ParseError(line_no, "expected ',' in live_out list");
    }
  }

  /// Parses "... addr], value" — the leading "sw [" was already consumed.
  void parse_store_after_bracket(Opcode op, Lexer& lex, int line_no) {
    const Token inner = lex.next();
    if (inner.kind != Token::Kind::kIdent)
      throw ParseError(line_no, "memory operand must name a variable");
    expect(lex, Token::Kind::kRBracket, line_no, "expected ']'");
    expect(lex, Token::Kind::kComma, line_no, "store form is: sw [addr], value");
    const Token value = lex.next();
    std::vector<TacOperand> operands;
    TacOperand addr;
    addr.kind = TacOperand::Kind::kMemAddr;
    addr.name = inner.text;
    operands.push_back(std::move(addr));
    if (value.kind == Token::Kind::kIdent) {
      TacOperand v;
      v.name = value.text;
      operands.push_back(std::move(v));
    } else if (value.kind == Token::Kind::kNumber) {
      TacOperand v;
      v.kind = TacOperand::Kind::kImmediate;
      v.imm = parse_immediate(value.text, line_no);
      operands.push_back(std::move(v));
    } else {
      throw ParseError(line_no, "store form is: sw [addr], value");
    }
    if (lex.next().kind != Token::Kind::kEnd)
      throw ParseError(line_no, "unexpected text after store");
    make_node(op, "", operands, line_no);
  }

  std::vector<TacOperand> parse_operands(Lexer& lex, int line_no) {
    std::vector<TacOperand> ops;
    for (;;) {
      Token t = lex.next();
      if (t.kind == Token::Kind::kEnd) {
        if (ops.empty()) return ops;
        throw ParseError(line_no, "trailing comma");
      }
      if (t.kind == Token::Kind::kLBracket) {
        const Token inner = lex.next();
        if (inner.kind != Token::Kind::kIdent)
          throw ParseError(line_no, "memory operand must name a variable");
        expect(lex, Token::Kind::kRBracket, line_no, "expected ']'");
        TacOperand o;
        o.kind = TacOperand::Kind::kMemAddr;
        o.name = inner.text;
        ops.push_back(std::move(o));
      } else if (t.kind == Token::Kind::kIdent) {
        TacOperand o;
        o.name = t.text;
        ops.push_back(std::move(o));
      } else if (t.kind == Token::Kind::kNumber) {
        TacOperand o;
        o.kind = TacOperand::Kind::kImmediate;
        o.imm = parse_immediate(t.text, line_no);
        ops.push_back(std::move(o));
      } else {
        throw ParseError(line_no, "bad operand");
      }
      const Token sep = lex.next();
      if (sep.kind == Token::Kind::kEnd) return ops;
      if (sep.kind != Token::Kind::kComma)
        throw ParseError(line_no, "expected ',' between operands");
    }
  }

  void define(const std::string& dest, Opcode op,
              const std::vector<TacOperand>& operands, int line_no) {
    if (block_.defs.contains(dest))
      throw ParseError(ErrorCode::kParseRedefinition, line_no,
                       "variable '" + dest + "' redefined (block is SSA)");
    if (options_.reject_self_reference) {
      for (const TacOperand& o : operands) {
        if (o.kind != TacOperand::Kind::kImmediate && o.name == dest)
          throw ParseError(
              ErrorCode::kParseSelfReference, line_no,
              "variable '" + dest +
                  "' is read in its own definition (use before def "
                  "would form a dataflow cycle)");
      }
    }
    const dfg::NodeId id = make_node(op, dest, operands, line_no);
    block_.defs.emplace(dest, id);
  }

  dfg::NodeId make_node(Opcode op, const std::string& label,
                        const std::vector<TacOperand>& operands, int line_no) {
    if (is_load(op) &&
        (operands.size() != 1 || operands[0].kind != TacOperand::Kind::kMemAddr))
      throw ParseError(line_no, "load form is: dst = lw [addr]");
    if (options_.reject_over_arity) {
      int reg_operands = 0;
      for (const TacOperand& o : operands)
        if (o.kind != TacOperand::Kind::kImmediate) ++reg_operands;
      const auto max_srcs = static_cast<int>(traits(op).num_srcs);
      if (reg_operands > max_srcs)
        throw ParseError(ErrorCode::kParseArity, line_no,
                         "'" + std::string(mnemonic(op)) + "' reads at most " +
                             std::to_string(max_srcs) +
                             " register operand(s); got " +
                             std::to_string(reg_operands));
    }

    const dfg::NodeId id = block_.graph.add_node(op, label);
    std::vector<int> extern_ids;
    for (const TacOperand& o : operands) {
      if (o.kind == TacOperand::Kind::kImmediate) continue;  // encoded immediate
      const auto it = block_.defs.find(o.name);
      if (it != block_.defs.end()) {
        block_.graph.add_edge(it->second, id);
        consumed_.insert(it->second);
      } else {
        // Live-in value: one id per variable, shared across all uses so
        // IN(S) counts the value once.
        const auto [live_it, unused] =
            live_in_ids_.try_emplace(o.name, static_cast<int>(live_in_ids_.size()));
        extern_ids.push_back(live_it->second);
      }
    }
    block_.graph.set_extern_input_ids(id, std::move(extern_ids));
    TacStatement stmt;
    stmt.op = op;
    stmt.dest = label;
    stmt.operands = operands;
    stmt.line = line_no;
    stmt.node = id;
    block_.statements.push_back(std::move(stmt));
    return id;
  }

  void apply_implicit_live_out() {
    for (const auto& [name, line_no] : explicit_live_out_) {
      const auto it = block_.defs.find(name);
      if (it == block_.defs.end())
        throw ParseError(ErrorCode::kParseUndefinedVariable, line_no,
                         "live_out of undefined variable '" + name + "'");
      block_.graph.set_live_out(it->second, true);
    }
    // A defined value nobody in the block consumes must escape the block.
    for (const auto& [name, id] : block_.defs) {
      if (!consumed_.contains(id)) block_.graph.set_live_out(id, true);
    }
  }

  static void expect(Lexer& lex, Token::Kind kind, int line_no, const char* msg) {
    if (lex.next().kind != kind) throw ParseError(line_no, msg);
  }

  ParseOptions options_;
  ParsedBlock block_;
  std::unordered_map<std::string, int> live_in_ids_;
  std::unordered_set<dfg::NodeId> consumed_;
  std::vector<std::pair<std::string, int>> explicit_live_out_;
};

}  // namespace

ParsedBlock parse_tac(std::string_view source) {
  // Permissive: empty blocks, self-references, and over-arity statements
  // keep parsing (programmatic kernels rely on the historical latitude);
  // only defects that corrupt the DFG or the 32-bit datapath throw.
  ParseOptions permissive;
  permissive.reject_empty = false;
  permissive.reject_self_reference = false;
  permissive.reject_over_arity = false;
  BlockParser parser(permissive);
  return parser.parse(source);
}

Expected<ParsedBlock> parse_tac_checked(std::string_view source,
                                        const ParseOptions& options) {
  try {
    BlockParser parser(options);
    return parser.parse(source);
  } catch (const ParseError& e) {
    return e.to_error();
  }
}

}  // namespace isex::isa
