// PISA-like instruction set model.
//
// The paper evaluates on the Portable Instruction Set Architecture (PISA), a
// MIPS-like ISA used by SimpleScalar.  This module defines the opcode subset
// the exploration operates on and the static traits the algorithm queries:
// which functional-unit class executes an opcode, whether it touches memory
// (memory operations may never enter an ISE, §4.2 constraint 4), and a
// human-readable mnemonic.
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>

namespace isex::isa {

/// PISA opcode subset.  Covers every opcode in the paper's Table 5.1.1 plus
/// the memory/branch/move operations needed to express realistic basic
/// blocks.
enum class Opcode : std::uint8_t {
  // Arithmetic
  kAdd, kAddi, kAddu, kAddiu,
  kSub, kSubu,
  kMult, kMultu,
  kDiv, kDivu,
  // Logic
  kAnd, kAndi,
  kOr, kOri,
  kXor, kXori,
  kNor,
  // Shifts
  kSll, kSllv, kSrl, kSrlv, kSra, kSrav,
  // Compare / set
  kSlt, kSlti, kSltu, kSltiu,
  // Immediates / moves
  kLui, kMov,
  // Memory
  kLw, kLh, kLhu, kLb, kLbu,
  kSw, kSh, kSb,
  // Control (kept for completeness; always excluded from ISEs)
  kBeq, kBne,
  kNop,
};

/// Number of distinct opcodes (for table sizing / iteration).
inline constexpr std::size_t kOpcodeCount = static_cast<std::size_t>(Opcode::kNop) + 1;

/// Functional-unit class an opcode issues to in the core pipeline.
enum class FuClass : std::uint8_t { kAlu, kMult, kDiv, kMem, kBranch };

/// Coarse semantic category, used by the kernel generators and by tests.
enum class OpCategory : std::uint8_t {
  kArith, kLogic, kShift, kCompare, kMove, kLoad, kStore, kBranch, kNop,
};

struct OpcodeTraits {
  std::string_view mnemonic;
  FuClass fu = FuClass::kAlu;
  OpCategory category = OpCategory::kArith;
  /// Number of register source operands (immediate forms have 1).
  std::uint8_t num_srcs = 2;
  /// True when the opcode produces a register result.
  bool has_dst = true;
};

/// Static traits lookup; total over all opcodes.
const OpcodeTraits& traits(Opcode op);

inline std::string_view mnemonic(Opcode op) { return traits(op).mnemonic; }

inline bool is_load(Opcode op) { return traits(op).category == OpCategory::kLoad; }
inline bool is_store(Opcode op) { return traits(op).category == OpCategory::kStore; }
inline bool is_memory(Opcode op) { return is_load(op) || is_store(op); }
inline bool is_branch(Opcode op) { return traits(op).category == OpCategory::kBranch; }

/// True when the §4.2 formulation permits the opcode inside an ISE subgraph:
/// no loads, no stores, no branches (load-store architecture limitation).
inline bool ise_eligible(Opcode op) {
  return !is_memory(op) && !is_branch(op) && op != Opcode::kNop;
}

/// Parses a mnemonic ("addu", "xor", ...) back to its opcode.
std::optional<Opcode> opcode_from_mnemonic(std::string_view mnemonic);

}  // namespace isex::isa
