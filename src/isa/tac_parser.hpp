// Three-address-code (TAC) frontend.
//
// The paper extracts DFGs from PISA binaries compiled with gcc 2.7.2.3; this
// repository substitutes a small textual three-address form so that basic
// blocks can be written, versioned, and unit-tested directly.  One line is
// one operation; SSA-style: each variable is defined at most once per block.
//
// Grammar (one statement per line, '#' starts a comment):
//
//   dest = MNEMONIC src [, src ...]        e.g.  t1 = addu a, b
//   dest = LOAD [addr]                     e.g.  t2 = lw [p]
//   STORE [addr], value                    e.g.  sw [p], t2
//   live_out var [, var ...]               marks block outputs
//
// Operands are identifiers or integer literals.  Literals are immediates
// (encoded in the instruction; they create no edge and no live-in value).
// An identifier with no in-block definition is a live-in value and counts
// toward the defining node's extern-input tally.  A defined variable with no
// in-block consumer is implicitly live-out.
#pragma once

#include <stdexcept>
#include <string>
#include <string_view>
#include <unordered_map>

#include "dfg/graph.hpp"
#include "util/error.hpp"

namespace isex::isa {

/// Parse failure; carries a structured error code (the 1xx block of
/// isex::ErrorCode) and the 1-based source line (0 = whole input).
class ParseError : public std::runtime_error {
 public:
  ParseError(ErrorCode code, int line, const std::string& message)
      : std::runtime_error(line > 0
                               ? "line " + std::to_string(line) + ": " + message
                               : message),
        code_(code),
        line_(line),
        raw_message_(message) {}
  /// Back-compat constructor; classifies as generic syntax error.
  ParseError(int line, const std::string& message)
      : ParseError(ErrorCode::kParseSyntax, line, message) {}

  ErrorCode code() const { return code_; }
  int line() const { return line_; }

  /// The structured-diagnostic form of this failure.
  Error to_error() const {
    return Error(code_, raw_message_, SourceLoc{line_, 0});
  }

 private:
  ErrorCode code_;
  int line_;
  std::string raw_message_;
};

/// One parsed operand, preserving what the DFG abstracts away (immediates,
/// operand order, memory addressing) so the block stays *executable* — the
/// exec::Evaluator runs on statements, not on the graph.
struct TacOperand {
  enum class Kind : std::uint8_t { kVar, kImmediate, kMemAddr };
  Kind kind = Kind::kVar;
  /// Variable name (kVar / kMemAddr).
  std::string name;
  /// Immediate value (kImmediate).
  std::int64_t imm = 0;
};

struct TacStatement {
  Opcode op = Opcode::kNop;
  /// Destination variable; empty for stores.
  std::string dest;
  std::vector<TacOperand> operands;
  /// 1-based source line.
  int line = 0;
  /// The DFG node this statement became.
  dfg::NodeId node = dfg::kInvalidNode;
};

struct ParsedBlock {
  dfg::Graph graph;
  /// Variable name -> defining node.
  std::unordered_map<std::string, dfg::NodeId> defs;
  /// Statements in program order (executable form).
  std::vector<TacStatement> statements;
};

/// Strictness knobs for the checked entry point.  The throwing parse_tac()
/// wrapper stays permissive (empty blocks and self-references parse) so
/// that programmatic kernel construction keeps its historical latitude; the
/// tool boundary (isex_cli, fuzzers) parses strictly.
struct ParseOptions {
  /// Reject input with zero statements (kParseEmptyInput, line 0).
  bool reject_empty = true;
  /// Reject "a = addu a, b" where `a` has no earlier definition: the
  /// apparent self-dependence is the only cycle-shaped input the TAC
  /// grammar admits, and it is always a typo (kParseSelfReference).
  bool reject_self_reference = true;
  /// Reject statements with more register operands than the opcode reads
  /// (kParseArity).
  bool reject_over_arity = true;
};

/// Parses a whole basic block.  Throws ParseError on malformed input,
/// unknown mnemonics, or variable redefinition.
ParsedBlock parse_tac(std::string_view source);

/// Non-throwing strict boundary: parses and returns either the block or the
/// first structured Error.  The returned block's graph always satisfies
/// dfg::validate() — the fuzz harnesses enforce that contract.
Expected<ParsedBlock> parse_tac_checked(std::string_view source,
                                        const ParseOptions& options = {});

}  // namespace isex::isa
