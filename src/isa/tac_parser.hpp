// Three-address-code (TAC) frontend.
//
// The paper extracts DFGs from PISA binaries compiled with gcc 2.7.2.3; this
// repository substitutes a small textual three-address form so that basic
// blocks can be written, versioned, and unit-tested directly.  One line is
// one operation; SSA-style: each variable is defined at most once per block.
//
// Grammar (one statement per line, '#' starts a comment):
//
//   dest = MNEMONIC src [, src ...]        e.g.  t1 = addu a, b
//   dest = LOAD [addr]                     e.g.  t2 = lw [p]
//   STORE [addr], value                    e.g.  sw [p], t2
//   live_out var [, var ...]               marks block outputs
//
// Operands are identifiers or integer literals.  Literals are immediates
// (encoded in the instruction; they create no edge and no live-in value).
// An identifier with no in-block definition is a live-in value and counts
// toward the defining node's extern-input tally.  A defined variable with no
// in-block consumer is implicitly live-out.
#pragma once

#include <stdexcept>
#include <string>
#include <string_view>
#include <unordered_map>

#include "dfg/graph.hpp"

namespace isex::isa {

/// Parse failure; carries the 1-based source line.
class ParseError : public std::runtime_error {
 public:
  ParseError(int line, const std::string& message)
      : std::runtime_error("line " + std::to_string(line) + ": " + message),
        line_(line) {}
  int line() const { return line_; }

 private:
  int line_;
};

/// One parsed operand, preserving what the DFG abstracts away (immediates,
/// operand order, memory addressing) so the block stays *executable* — the
/// exec::Evaluator runs on statements, not on the graph.
struct TacOperand {
  enum class Kind : std::uint8_t { kVar, kImmediate, kMemAddr };
  Kind kind = Kind::kVar;
  /// Variable name (kVar / kMemAddr).
  std::string name;
  /// Immediate value (kImmediate).
  std::int64_t imm = 0;
};

struct TacStatement {
  Opcode op = Opcode::kNop;
  /// Destination variable; empty for stores.
  std::string dest;
  std::vector<TacOperand> operands;
  /// 1-based source line.
  int line = 0;
  /// The DFG node this statement became.
  dfg::NodeId node = dfg::kInvalidNode;
};

struct ParsedBlock {
  dfg::Graph graph;
  /// Variable name -> defining node.
  std::unordered_map<std::string, dfg::NodeId> defs;
  /// Statements in program order (executable form).
  std::vector<TacStatement> statements;
};

/// Parses a whole basic block.  Throws ParseError on malformed input,
/// unknown mnemonics, or variable redefinition.
ParsedBlock parse_tac(std::string_view source);

}  // namespace isex::isa
