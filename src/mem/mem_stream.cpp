#include "mem/mem_stream.hpp"

#include <algorithm>
#include <cstdint>

#include "isa/opcode.hpp"
#include "runtime/hash.hpp"
#include "util/assert.hpp"

namespace isex::mem {

namespace {

/// Regions are spaced far apart so distinct address expressions never share
/// lines, with a per-region set-index offset (65 lines of 64 B) so they do
/// not all collide into set 0 of a small L1.
constexpr std::uint64_t kRegionSpan = 1u << 20;
constexpr std::uint64_t kRegionSkew = 65 * 64;

int access_width(isa::Opcode op) {
  switch (op) {
    case isa::Opcode::kLw:
    case isa::Opcode::kSw:
      return 4;
    case isa::Opcode::kLh:
    case isa::Opcode::kLhu:
    case isa::Opcode::kSh:
      return 2;
    default:
      return 1;  // kLb / kLbu / kSb
  }
}

}  // namespace

std::vector<MemOp> derive_mem_stream(const dfg::Graph& graph,
                                     const CacheConfig& config) {
  std::vector<dfg::NodeId> mem_nodes;
  for (dfg::NodeId v = 0; v < graph.num_nodes(); ++v) {
    const dfg::Node& n = graph.node(v);
    if (!n.is_ise && isa::is_memory(n.opcode)) mem_nodes.push_back(v);
  }
  if (mem_nodes.empty()) return {};

  const runtime::CanonicalLabeling labeling =
      runtime::canonical_labeling(graph);
  const std::vector<dfg::NodeId> topo = graph.topological_order();

  // Dataflow depth (unit latencies) orders the replay the way the block
  // would naturally issue; `loaded[v]` marks values derived from a load, the
  // pointer-chase signal.
  std::vector<int> depth(graph.num_nodes(), 0);
  std::vector<char> loaded(graph.num_nodes(), 0);
  for (const dfg::NodeId v : topo) {
    const dfg::Node& n = graph.node(v);
    if (!n.is_ise && isa::is_load(n.opcode)) loaded[v] = 1;
    for (const dfg::NodeId p : graph.preds(v)) {
      depth[v] = std::max(depth[v], depth[p] + 1);
      if (loaded[p]) loaded[v] = 1;
    }
  }

  // Extern value ids some load dereferences.  The graph stores in-block
  // predecessors and extern operands as two separate lists, so a store with
  // one of each has lost which operand was the bracketed address; a load's
  // address is its only register operand, so loads are never ambiguous.  A
  // store whose extern id matches a load address is resolved to that extern
  // — the load/store-through-one-pointer idiom — and its pred is the value.
  std::vector<int> load_addr_externs;
  for (const dfg::NodeId v : mem_nodes) {
    const dfg::Node& n = graph.node(v);
    if (isa::is_load(n.opcode) && graph.preds(v).empty() &&
        !graph.extern_input_ids(v).empty())
      load_addr_externs.push_back(graph.extern_input_ids(v).front());
  }

  std::vector<MemOp> ops;
  ops.reserve(mem_nodes.size());
  for (const dfg::NodeId v : mem_nodes) {
    const dfg::Node& n = graph.node(v);
    MemOp op;
    op.node = v;
    op.width = access_width(n.opcode);
    op.is_store = isa::is_store(n.opcode);
    // The address operand is the first operand by TAC convention: the first
    // in-block predecessor, or (address live-in) the first extern value id.
    // Region identity hashes its *canonical* label so renumbered twins
    // derive identical regions.
    runtime::Hash64 region(0x6d656d5f72656779ULL);  // "mem_regy" domain
    const auto preds = graph.preds(v);
    const auto extern_ids = graph.extern_input_ids(v);
    const bool store_extern_addr =
        op.is_store && preds.size() == 1 && extern_ids.size() == 1 &&
        std::find(load_addr_externs.begin(), load_addr_externs.end(),
                  extern_ids.front()) != load_addr_externs.end();
    if (!preds.empty() && !store_extern_addr) {
      region.mix(1);
      region.mix(labeling.lo[preds.front()]);
      op.gather = loaded[preds.front()] != 0;
    } else if (!extern_ids.empty()) {
      region.mix(2);
      region.mix(static_cast<std::uint64_t>(extern_ids.front()));
    } else {
      region.mix(3);  // constant address (no operands at all)
    }
    op.region_key = region.value();
    op.stride = op.gather
                    ? static_cast<std::uint32_t>(config.l1.line_bytes)
                    : static_cast<std::uint32_t>(op.width);
    ops.push_back(op);
  }

  // Canonical replay order: dataflow depth, then canonical label, then the
  // region key.  Node id is the final total-order tiebreak; ties reaching it
  // are automorphic ops whose annotations are interchangeable by
  // construction, so renumbering still yields the same latency multiset.
  std::sort(ops.begin(), ops.end(), [&](const MemOp& a, const MemOp& b) {
    if (depth[a.node] != depth[b.node]) return depth[a.node] < depth[b.node];
    if (labeling.lo[a.node] != labeling.lo[b.node])
      return labeling.lo[a.node] < labeling.lo[b.node];
    if (a.region_key != b.region_key) return a.region_key < b.region_key;
    return a.node < b.node;
  });

  // Assign region bases by rank of the sorted distinct region keys — an
  // id-free, order-free mapping.
  std::vector<std::uint64_t> regions;
  regions.reserve(ops.size());
  for (const MemOp& op : ops) regions.push_back(op.region_key);
  std::sort(regions.begin(), regions.end());
  regions.erase(std::unique(regions.begin(), regions.end()), regions.end());
  for (MemOp& op : ops) {
    const std::uint64_t rank = static_cast<std::uint64_t>(
        std::lower_bound(regions.begin(), regions.end(), op.region_key) -
        regions.begin());
    op.base = rank * kRegionSpan + rank * kRegionSkew;
  }
  return ops;
}

CacheStats annotate_graph(dfg::Graph& graph, const CacheConfig& config) {
  ISEX_ASSERT_MSG(validate(config).ok(),
                  "annotate_graph requires a validated CacheConfig");
  const std::vector<MemOp> ops = derive_mem_stream(graph, config);
  if (ops.empty()) return {};

  CacheModel model(config);
  std::vector<std::int64_t> total(graph.num_nodes(), 0);
  for (int iter = 0; iter < config.iterations; ++iter) {
    for (const MemOp& op : ops) {
      const std::uint64_t address =
          op.base + static_cast<std::uint64_t>(iter) * op.stride;
      total[op.node] += model.access(address, op.width);
    }
  }
  for (const MemOp& op : ops) {
    // Round-to-nearest average over the simulated iterations, never below
    // the one-cycle issue latency.
    const std::int64_t avg =
        (total[op.node] + config.iterations / 2) / config.iterations;
    graph.node(op.node).mem_latency =
        static_cast<int>(std::max<std::int64_t>(1, avg));
  }
  CacheStats stats = model.stats();
  stats.annotated_nodes = ops.size();
  return stats;
}

}  // namespace isex::mem
