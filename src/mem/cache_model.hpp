// Memory-hierarchy cost model: a set-associative L1/L2 cache simulator.
//
// The list scheduler charges issue slots, register ports, and FU latency,
// but without this module every load/store costs one fixed cycle — so merit
// rewards the wrong ISE candidates on memory-bound kernels (dijkstra, jpeg).
// CacheModel simulates a two-level set-associative hierarchy with true-LRU
// replacement and inclusive fills; mem_stream.hpp derives a deterministic
// per-block access stream from DFG load/store nodes and stamps the resulting
// average latencies onto the nodes, where the scheduler, merit, and the
// GPlus software-cycle tables all pick them up (docs/MEMORY.md).
//
// A CacheConfig is external input (CLI `--cache-config`, server jobs), so it
// follows the MachineConfig discipline: a strict parser returning
// Expected<CacheConfig> (E0701) and a validator collecting every geometry /
// latency defect (E0702-E0704) before anything is simulated.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/error.hpp"

namespace isex::mem {

/// Geometry and hit latency of one cache level.
struct CacheLevelConfig {
  /// Total capacity in bytes; must be line_bytes * ways * 2^k sets.
  int size_bytes = 0;
  /// Associativity (ways per set); >= 1.
  int ways = 0;
  /// Line (block) size in bytes; power of two, >= 4.
  int line_bytes = 0;
  /// Latency in processor cycles when the access hits at this level.
  int hit_latency = 1;

  int num_sets() const {
    const int line_x_ways = line_bytes * ways;
    return line_x_ways > 0 ? size_bytes / line_x_ways : 0;
  }

  friend bool operator==(const CacheLevelConfig&,
                         const CacheLevelConfig&) = default;
};

/// Two-level hierarchy parameters plus the main-memory penalty.  Defaults
/// mirror a small embedded core: 4 KiB / 2-way / 32 B L1 with a one-cycle
/// hit (so an all-hits stream reproduces the legacy fixed latency), 64 KiB /
/// 8-way / 64 B L2.
struct CacheConfig {
  CacheLevelConfig l1{4096, 2, 32, 1};
  CacheLevelConfig l2{65536, 8, 64, 8};
  /// Cycles for an access that misses both levels.
  int mem_latency = 40;
  /// Block repetitions simulated when deriving per-node latencies; the
  /// first iteration carries the compulsory misses, later ones the reuse.
  int iterations = 8;

  /// Canonical spec string that parse_cache_config round-trips.
  std::string label() const;

  friend bool operator==(const CacheConfig&, const CacheConfig&) = default;
};

/// Parses a comma-separated `key=value` spec, e.g.
/// "l1_size=4k,l1_ways=2,l1_line=32,l2_size=64k,mem=40".  Keys: l1_size,
/// l1_ways, l1_line, l1_hit, l2_size, l2_ways, l2_line, l2_hit, mem, iters.
/// Sizes accept a k/K suffix (x1024).  Unset keys keep the defaults above.
/// Rejects unknown keys, empty values, duplicates, and non-numeric values
/// with E0701; the geometry itself is checked by validate() below, which is
/// also applied before returning.
Expected<CacheConfig> parse_cache_config(std::string_view spec);

/// Geometry and latency sanity.  Errors: non-power-of-two or < 4 line size,
/// zero/negative ways, capacity not an integral power-of-two number of sets
/// (E0702); hit/miss latencies < 1 (E0703); L2 line smaller than L1's
/// (E0704).  Warnings: latency ordering l1 <= l2 <= mem violated (E0703),
/// L2 capacity below L1's (E0704).
ValidationReport validate(const CacheConfig& config);

/// Stable structural fingerprint (used by server job signatures, so two
/// spellings of the same geometry share one cache key).
std::uint64_t fingerprint(const CacheConfig& config, std::uint64_t seed);

/// Aggregate counters from one simulated access stream.
struct CacheStats {
  std::uint64_t accesses = 0;
  std::uint64_t l1_hits = 0;
  std::uint64_t l2_hits = 0;
  std::uint64_t mem_accesses = 0;
  /// Load/store nodes that received a latency annotation.
  std::uint64_t annotated_nodes = 0;

  void merge(const CacheStats& other) {
    accesses += other.accesses;
    l1_hits += other.l1_hits;
    l2_hits += other.l2_hits;
    mem_accesses += other.mem_accesses;
    annotated_nodes += other.annotated_nodes;
  }
  double l1_hit_rate() const {
    return accesses > 0 ? static_cast<double>(l1_hits) / accesses : 0.0;
  }
};

/// Functional two-level cache: true LRU within each set, write-allocate
/// stores, inclusive fill on miss.  Deterministic — state depends only on
/// the access sequence, never on addresses of host objects or time.
class CacheModel {
 public:
  /// `config` must have passed validate().
  explicit CacheModel(const CacheConfig& config);

  /// Simulates one access of `width` bytes at `address` and returns its
  /// latency in cycles (l1_hit / l2_hit / mem_latency for the outermost
  /// level that hit).  An access straddling a line boundary touches every
  /// line and costs the slowest one.
  int access(std::uint64_t address, int width);

  /// Drops all cached lines but keeps the accumulated stats.
  void flush();

  const CacheStats& stats() const { return stats_; }
  const CacheConfig& config() const { return config_; }

 private:
  /// One level's set array: way-major tag store with per-way LRU stamps.
  struct Level {
    int sets = 0;
    int ways = 0;
    int line_shift = 0;
    std::vector<std::uint64_t> tags;    // sets * ways, kEmptyTag when free
    std::vector<std::uint32_t> stamps;  // LRU clock per way
    std::uint32_t clock = 0;

    void init(const CacheLevelConfig& level);
    bool lookup_fill(std::uint64_t address);  // true on hit; fills on miss
    void clear();
  };

  int access_line(std::uint64_t address);

  CacheConfig config_;
  Level l1_;
  Level l2_;
  CacheStats stats_;
};

}  // namespace isex::mem
