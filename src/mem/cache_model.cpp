#include "mem/cache_model.hpp"

#include <algorithm>
#include <bit>
#include <limits>

#include "runtime/hash.hpp"
#include "util/assert.hpp"

namespace isex::mem {

namespace {

constexpr std::uint64_t kEmptyTag = std::numeric_limits<std::uint64_t>::max();

bool is_pow2(int x) { return x > 0 && (x & (x - 1)) == 0; }

int log2_floor(int x) {
  ISEX_ASSERT(x > 0);
  return std::bit_width(static_cast<unsigned>(x)) - 1;
}

std::string size_label(int bytes) {
  if (bytes >= 1024 && bytes % 1024 == 0)
    return std::to_string(bytes / 1024) + "k";
  return std::to_string(bytes);
}

/// Parses a non-negative integer with an optional k/K suffix.  Returns -1 on
/// any defect (empty, junk, overflow) — the caller owns the diagnostic.
long long parse_size_value(std::string_view text) {
  if (text.empty()) return -1;
  long long multiplier = 1;
  if (text.back() == 'k' || text.back() == 'K') {
    multiplier = 1024;
    text.remove_suffix(1);
    if (text.empty()) return -1;
  }
  long long value = 0;
  for (const char c : text) {
    if (c < '0' || c > '9') return -1;
    value = value * 10 + (c - '0');
    if (value > (1LL << 40)) return -1;  // far beyond any sane geometry
  }
  return value * multiplier;
}

void check_level(const CacheLevelConfig& level, const char* name,
                 ValidationReport& report) {
  const std::string prefix = std::string(name) + " ";
  if (level.ways < 1)
    report.add(ErrorCode::kCacheGeometry,
               prefix + "associativity " + std::to_string(level.ways) +
                   " is invalid (ways must be >= 1)");
  if (!is_pow2(level.line_bytes) || level.line_bytes < 4)
    report.add(ErrorCode::kCacheGeometry,
               prefix + "line size " + std::to_string(level.line_bytes) +
                   " is invalid (must be a power of two >= 4)");
  if (level.ways >= 1 && is_pow2(level.line_bytes) && level.line_bytes >= 4) {
    const long long line_x_ways =
        static_cast<long long>(level.line_bytes) * level.ways;
    if (level.size_bytes < line_x_ways ||
        level.size_bytes % line_x_ways != 0 || !is_pow2(level.num_sets()))
      report.add(ErrorCode::kCacheGeometry,
                 prefix + "capacity " + std::to_string(level.size_bytes) +
                     " does not decompose into a power-of-two number of " +
                     std::to_string(level.ways) + "-way sets of " +
                     std::to_string(level.line_bytes) + "-byte lines");
  }
  if (level.hit_latency < 1)
    report.add(ErrorCode::kCacheLatency,
               prefix + "hit latency " + std::to_string(level.hit_latency) +
                   " is invalid (must be >= 1 cycle)");
}

}  // namespace

std::string CacheConfig::label() const {
  return "l1_size=" + size_label(l1.size_bytes) +
         ",l1_ways=" + std::to_string(l1.ways) +
         ",l1_line=" + std::to_string(l1.line_bytes) +
         ",l1_hit=" + std::to_string(l1.hit_latency) +
         ",l2_size=" + size_label(l2.size_bytes) +
         ",l2_ways=" + std::to_string(l2.ways) +
         ",l2_line=" + std::to_string(l2.line_bytes) +
         ",l2_hit=" + std::to_string(l2.hit_latency) +
         ",mem=" + std::to_string(mem_latency) +
         ",iters=" + std::to_string(iterations);
}

Expected<CacheConfig> parse_cache_config(std::string_view spec) {
  CacheConfig config;
  const auto syntax = [&](const std::string& what) {
    return Error(ErrorCode::kCacheConfigSyntax,
                 "cache config: " + what + " (spec: key=value[,key=value...];"
                 " keys: l1_size l1_ways l1_line l1_hit l2_size l2_ways"
                 " l2_line l2_hit mem iters)");
  };
  std::vector<std::string_view> seen;
  std::string_view rest = spec;
  while (!rest.empty()) {
    const std::size_t comma = rest.find(',');
    std::string_view field = rest.substr(0, comma);
    rest = comma == std::string_view::npos ? std::string_view{}
                                           : rest.substr(comma + 1);
    if (field.empty()) return syntax("empty field");
    const std::size_t eq = field.find('=');
    if (eq == std::string_view::npos)
      return syntax("field '" + std::string(field) + "' has no '='");
    const std::string_view key = field.substr(0, eq);
    const std::string_view value_text = field.substr(eq + 1);
    if (std::find(seen.begin(), seen.end(), key) != seen.end())
      return syntax("duplicate key '" + std::string(key) + "'");
    seen.push_back(key);
    const long long value = parse_size_value(value_text);
    if (value < 0)
      return syntax("value '" + std::string(value_text) + "' for '" +
                    std::string(key) + "' is not a non-negative integer");
    const int v = static_cast<int>(std::min<long long>(
        value, std::numeric_limits<int>::max()));
    if (key == "l1_size") config.l1.size_bytes = v;
    else if (key == "l1_ways") config.l1.ways = v;
    else if (key == "l1_line") config.l1.line_bytes = v;
    else if (key == "l1_hit") config.l1.hit_latency = v;
    else if (key == "l2_size") config.l2.size_bytes = v;
    else if (key == "l2_ways") config.l2.ways = v;
    else if (key == "l2_line") config.l2.line_bytes = v;
    else if (key == "l2_hit") config.l2.hit_latency = v;
    else if (key == "mem") config.mem_latency = v;
    else if (key == "iters") config.iterations = v;
    else return syntax("unknown key '" + std::string(key) + "'");
  }
  ValidationReport report = validate(config);
  if (!report.ok()) return report.first_error();
  return config;
}

ValidationReport validate(const CacheConfig& config) {
  ValidationReport report;
  check_level(config.l1, "L1", report);
  check_level(config.l2, "L2", report);
  if (config.mem_latency < 1)
    report.add(ErrorCode::kCacheLatency,
               "memory latency " + std::to_string(config.mem_latency) +
                   " is invalid (must be >= 1 cycle)");
  if (config.iterations < 1 || config.iterations > 1024)
    report.add(ErrorCode::kCacheConfigSyntax,
               "iterations " + std::to_string(config.iterations) +
                   " is outside the supported range [1, 1024]");
  if (config.l2.line_bytes < config.l1.line_bytes)
    report.add(ErrorCode::kCacheHierarchy,
               "L2 line size " + std::to_string(config.l2.line_bytes) +
                   " is smaller than L1's " +
                   std::to_string(config.l1.line_bytes) +
                   " (inclusive fill needs l2_line >= l1_line)");
  if (config.l2.size_bytes < config.l1.size_bytes)
    report.add(ErrorCode::kCacheHierarchy,
               "L2 capacity " + std::to_string(config.l2.size_bytes) +
                   " is below L1's " + std::to_string(config.l1.size_bytes),
               {}, Severity::kWarning);
  if (config.l1.hit_latency > config.l2.hit_latency ||
      config.l2.hit_latency > config.mem_latency)
    report.add(ErrorCode::kCacheLatency,
               "latency ordering l1_hit <= l2_hit <= mem violated (" +
                   std::to_string(config.l1.hit_latency) + "/" +
                   std::to_string(config.l2.hit_latency) + "/" +
                   std::to_string(config.mem_latency) + ")",
               {}, Severity::kWarning);
  return report;
}

std::uint64_t fingerprint(const CacheConfig& config, std::uint64_t seed) {
  runtime::Hash64 h(seed);
  const auto mix_level = [&h](const CacheLevelConfig& level) {
    h.mix(static_cast<std::uint64_t>(level.size_bytes));
    h.mix(static_cast<std::uint64_t>(level.ways));
    h.mix(static_cast<std::uint64_t>(level.line_bytes));
    h.mix(static_cast<std::uint64_t>(level.hit_latency));
  };
  mix_level(config.l1);
  mix_level(config.l2);
  h.mix(static_cast<std::uint64_t>(config.mem_latency));
  h.mix(static_cast<std::uint64_t>(config.iterations));
  return h.value();
}

void CacheModel::Level::init(const CacheLevelConfig& level) {
  sets = level.num_sets();
  ways = level.ways;
  line_shift = log2_floor(level.line_bytes);
  tags.assign(static_cast<std::size_t>(sets) * ways, kEmptyTag);
  stamps.assign(static_cast<std::size_t>(sets) * ways, 0);
  clock = 0;
}

bool CacheModel::Level::lookup_fill(std::uint64_t address) {
  const std::uint64_t line = address >> line_shift;
  const std::size_t set = static_cast<std::size_t>(
      line & static_cast<std::uint64_t>(sets - 1));
  const std::size_t base = set * static_cast<std::size_t>(ways);
  ++clock;
  // Hit: refresh the way's LRU stamp.
  for (int w = 0; w < ways; ++w) {
    if (tags[base + w] == line) {
      stamps[base + w] = clock;
      return true;
    }
  }
  // Miss: fill the least-recently-used way (empty ways have stamp 0 and are
  // naturally the oldest).
  std::size_t victim = base;
  for (int w = 1; w < ways; ++w)
    if (stamps[base + w] < stamps[victim]) victim = base + w;
  tags[victim] = line;
  stamps[victim] = clock;
  return false;
}

void CacheModel::Level::clear() {
  std::fill(tags.begin(), tags.end(), kEmptyTag);
  std::fill(stamps.begin(), stamps.end(), 0);
  clock = 0;
}

CacheModel::CacheModel(const CacheConfig& config) : config_(config) {
  ISEX_ASSERT_MSG(validate(config).ok(),
                  "CacheModel requires a validated CacheConfig");
  l1_.init(config_.l1);
  l2_.init(config_.l2);
}

int CacheModel::access_line(std::uint64_t address) {
  ++stats_.accesses;
  if (l1_.lookup_fill(address)) {
    ++stats_.l1_hits;
    return config_.l1.hit_latency;
  }
  if (l2_.lookup_fill(address)) {
    ++stats_.l2_hits;
    return config_.l2.hit_latency;
  }
  ++stats_.mem_accesses;
  return config_.mem_latency;
}

int CacheModel::access(std::uint64_t address, int width) {
  ISEX_ASSERT(width >= 1);
  const int line_bytes = config_.l1.line_bytes;
  const std::uint64_t first = address / static_cast<std::uint64_t>(line_bytes);
  const std::uint64_t last =
      (address + static_cast<std::uint64_t>(width) - 1) /
      static_cast<std::uint64_t>(line_bytes);
  int worst = 0;
  for (std::uint64_t line = first; line <= last; ++line)
    worst = std::max(
        worst, access_line(line * static_cast<std::uint64_t>(line_bytes)));
  return worst;
}

void CacheModel::flush() {
  l1_.clear();
  l2_.clear();
}

}  // namespace isex::mem
