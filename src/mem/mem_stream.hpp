// Deterministic per-block memory access streams derived from DFG
// load/store nodes.
//
// A basic block gives no concrete addresses, so the stream is synthesized
// from structure: memory operations are grouped into *regions* by the
// canonical identity of their address operand (same address expression ==
// same region, so a load and a store through one pointer exhibit temporal
// locality), each op gets an address class — `sequential` (address advances
// by the access width per simulated block iteration, the affine
// array-walk pattern) or `gather` (the address depends on loaded data, so
// every iteration lands on a fresh line) — and the resulting stream is
// replayed through a CacheModel for CacheConfig::iterations rounds.  The
// per-op average latency is stamped onto the node (`dfg::Node::mem_latency`)
// where sched::node_latency, the GPlus software-cycle table, and merit all
// read it.
//
// Everything is keyed on canonical structural labels
// (runtime::canonical_labeling), never on raw node ids, so a renumbered but
// isomorphic block derives the same stream and the same annotations —
// required for the portfolio dedup paths to stay coherent.
#pragma once

#include <cstdint>
#include <vector>

#include "dfg/graph.hpp"
#include "mem/cache_model.hpp"

namespace isex::mem {

/// One memory operation of the derived stream, in canonical replay order.
struct MemOp {
  dfg::NodeId node = dfg::kInvalidNode;
  /// First-iteration byte address (region base).
  std::uint64_t base = 0;
  /// Address advance per simulated block iteration.
  std::uint32_t stride = 0;
  /// Access width in bytes (1/2/4 from the opcode).
  int width = 0;
  bool is_store = false;
  /// True when the address depends on loaded data (pointer chase).
  bool gather = false;
  /// Region identity (canonical hash of the address expression).
  std::uint64_t region_key = 0;
};

/// Derives the block's access stream.  Deterministic and stable across node
/// renumbering; empty when the block has no memory operations.
std::vector<MemOp> derive_mem_stream(const dfg::Graph& graph,
                                     const CacheConfig& config);

/// Replays the derived stream through a fresh CacheModel and stamps the
/// per-node average latency (>= 1 cycle) onto graph nodes.  The model is
/// private to the call, so annotation is a pure function of (graph, config)
/// — block order and thread count cannot change the result.  Returns the
/// simulation counters for telemetry.
CacheStats annotate_graph(dfg::Graph& graph, const CacheConfig& config);

}  // namespace isex::mem
