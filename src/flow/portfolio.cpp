#include "flow/portfolio.hpp"

#include <algorithm>
#include <map>
#include <memory>
#include <set>
#include <utility>

#include "flow/merging.hpp"
#include "flow/validate.hpp"
#include "runtime/hash.hpp"
#include "runtime/runtime_stats.hpp"
#include "runtime/thread_pool.hpp"
#include "trace/metrics.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace isex::flow {
namespace {

/// One flat exploration job after job-level dedup: the block to explore plus
/// its serially pre-derived RNG stream.
struct UniqueJob {
  const dfg::Graph* graph = nullptr;
  Rng stream;
};

template <typename Explorer>
std::vector<core::ExplorationResult> explore_unique_jobs(
    const Explorer& explorer, const std::vector<UniqueJob>& jobs,
    runtime::ThreadPool& pool) {
  std::vector<core::ExplorationResult> results(jobs.size());
  pool.parallel_for(jobs.size(), [&](std::size_t i) {
    Rng local = jobs[i].stream;  // private mutable copy; jobs stay pristine
    results[i] = explorer.explore(*jobs[i].graph, local);
  });
  return results;
}

runtime::CacheStats stats_delta(const runtime::CacheStats& after,
                                const runtime::CacheStats& before) {
  runtime::CacheStats d;
  d.hits = after.hits - before.hits;
  d.misses = after.misses - before.misses;
  d.insertions = after.insertions - before.insertions;
  d.evictions = after.evictions - before.evictions;
  return d;
}

using KeyPair = std::pair<std::uint64_t, std::uint64_t>;

KeyPair key_pair(const runtime::Key128& key) { return {key.lo, key.hi}; }

}  // namespace

PortfolioSelection select_portfolio_ises(
    const std::vector<PortfolioCatalogEntry>& catalog,
    const SelectionConstraints& constraints) {
  PortfolioSelection result;

  // Prefix cursor / retirement flag per (program, block): a block's
  // gain_cycles were measured with its earlier commits in place, so its
  // candidates stay in commit order; an unaffordable head retires the block.
  using BlockKey = std::pair<std::size_t, std::size_t>;
  std::map<BlockKey, std::size_t> next_position;
  std::map<BlockKey, bool> block_done;
  for (const PortfolioCatalogEntry& e : catalog) {
    const BlockKey key{e.program_index, e.entry.block_index};
    next_position.try_emplace(key, 0);
    block_done.try_emplace(key, false);
  }

  // Representative pattern per selected type for cross-program sharing.
  std::vector<const dfg::Graph*> type_patterns;

  for (;;) {
    // Head scan: highest weighted benefit; ties prefer the smaller ASFU,
    // then the lowest (program, block, position).  The scan runs in catalog
    // order — grouped by (program, block) ascending, positions ascending —
    // and replaces the incumbent only on strict improvement, so full ties
    // resolve to the earliest entry at any thread count (selection is
    // serial; the order is pinned for the determinism contract).
    const PortfolioCatalogEntry* best = nullptr;
    for (const PortfolioCatalogEntry& e : catalog) {
      const BlockKey key{e.program_index, e.entry.block_index};
      if (block_done[key]) continue;
      if (e.entry.position != next_position[key]) continue;
      if (!(e.weighted_benefit > 0.0)) continue;
      if (best == nullptr || e.weighted_benefit > best->weighted_benefit ||
          (e.weighted_benefit == best->weighted_benefit &&
           e.entry.ise.eval.area < best->entry.ise.eval.area)) {
        best = &e;
      }
    }
    if (best == nullptr) break;

    // Cross-program hardware sharing: a pattern isomorphic to (or a
    // subgraph of) any selected type's pattern reuses that ASFU for free,
    // no matter which program first paid for it.
    int share_type = -1;
    for (std::size_t t = 0; t < type_patterns.size() && share_type < 0; ++t) {
      const MergeRelation rel =
          classify_merge(best->entry.pattern, *type_patterns[t]);
      if (rel == MergeRelation::kEqual || rel == MergeRelation::kIntoOther)
        share_type = static_cast<int>(t);
    }

    const double charge = share_type >= 0 ? 0.0 : best->entry.ise.eval.area;
    const bool needs_new_type = share_type < 0;
    const bool area_ok = result.total_area + charge <= constraints.area_budget;
    const bool type_ok =
        !needs_new_type || result.num_types < constraints.max_ises;

    const BlockKey key{best->program_index, best->entry.block_index};
    if (!area_ok || !type_ok) {
      block_done[key] = true;
      continue;
    }

    PortfolioSelectedIse sel;
    sel.program_index = best->program_index;
    sel.entry = best->entry;
    sel.weighted_benefit = best->weighted_benefit;
    if (needs_new_type) {
      sel.type_id = result.num_types++;
      type_patterns.push_back(&best->entry.pattern);
      result.total_area += charge;
    } else {
      sel.type_id = share_type;
      sel.hardware_shared = true;
    }
    result.selected.push_back(std::move(sel));
    next_position[key] += 1;
  }
  return result;
}

PortfolioResult run_portfolio_flow(const std::vector<PortfolioEntry>& entries,
                                   const hw::HwLibrary& library,
                                   const PortfolioConfig& config) {
  Expected<PortfolioResult> result =
      run_portfolio_flow_checked(entries, library, config);
  if (!result) throw ValidationException(result.error());
  return std::move(result).value();
}

Expected<PortfolioResult> run_portfolio_flow_checked(
    const std::vector<PortfolioEntry>& entries, const hw::HwLibrary& library,
    const PortfolioConfig& config) {
  {
    const runtime::StageTimer timer("portfolio.validation");
    ValidationReport report = validate(config);
    report.merge(validate(entries));
    if (!report.ok()) return report.first_error();
  }

  PortfolioResult result;
  result.programs.resize(entries.size());

  // 0. Memory-hierarchy annotation (docs/MEMORY.md).  Must run before the
  // block digests below are taken: annotated latencies are scheduler input,
  // so they are part of the dedup identity — and because each block's
  // annotation is a pure function of (graph, cache config), the
  // portfolio ≡ independent-flows identity is preserved.
  std::vector<PortfolioEntry> annotated;
  const std::vector<PortfolioEntry>* active = &entries;
  if (config.base.cache) {
    const runtime::StageTimer timer("portfolio.cache_model");
    annotated = entries;
    for (PortfolioEntry& entry : annotated)
      result.cache_stats.merge(
          annotate_program(entry.program, *config.base.cache));
    result.cache_modeled = true;
    active = &annotated;
  }
  const std::vector<PortfolioEntry>& ents = *active;

  // 1. Profiling + hot-block selection, per program (cheap, serial).
  {
    const runtime::StageTimer timer("portfolio.profiling");
    for (std::size_t p = 0; p < ents.size(); ++p) {
      PortfolioProgramResult& prog = result.programs[p];
      prog.name = ents[p].program.name;
      prog.weight = ents[p].weight;
      const std::vector<BlockCost> costs =
          profile_blocks(ents[p].program, config.base.machine);
      prog.hot_blocks = select_hot_blocks(costs, config.base.hot_coverage,
                                          config.base.max_hot_blocks);
    }
  }

  // 2. One flat (program × hot block × repeat) batch with job-level dedup.
  //
  // Streams: every program derives its streams from a fresh Rng(seed) in
  // run_design_flow's exact split order, so per-program explorations are
  // bit-identical to independent flows.  Consequence: two jobs at the same
  // within-program flat index see the same stream, so when their blocks'
  // exact digests also match (common for shared kernels across manifest
  // rows) the jobs are identical end to end — explore once, copy the
  // result.  The dedup decision is made serially here, before the fan-out.
  const auto per_block = static_cast<std::size_t>(config.base.repeats);
  std::vector<UniqueJob> unique_jobs;
  std::vector<std::vector<std::size_t>> job_of(ents.size());
  std::vector<std::vector<runtime::Key128>> block_digests(ents.size());
  {
    std::map<std::pair<std::size_t, KeyPair>, std::size_t> first_job;
    for (std::size_t p = 0; p < ents.size(); ++p) {
      const PortfolioProgramResult& prog = result.programs[p];
      Rng rng(config.base.seed);
      std::vector<Rng> streams =
          rng.split_n(prog.hot_blocks.size() * per_block);
      block_digests[p].reserve(prog.hot_blocks.size());
      for (const std::size_t bi : prog.hot_blocks)
        block_digests[p].push_back(
            runtime::graph_digest(ents[p].program.blocks[bi].graph));
      job_of[p].resize(streams.size());
      for (std::size_t j = 0; j < streams.size(); ++j) {
        const std::size_t hot_pos = j / per_block;
        const auto key = std::make_pair(
            j, key_pair(block_digests[p][hot_pos]));
        const auto [it, inserted] =
            first_job.try_emplace(key, unique_jobs.size());
        if (inserted) {
          unique_jobs.push_back(UniqueJob{
              &ents[p].program.blocks[prog.hot_blocks[hot_pos]].graph,
              streams[j]});
        } else {
          ++result.deduped_jobs;
        }
        job_of[p][j] = it->second;
      }
      result.total_jobs += streams.size();
    }
  }

  // Portfolio-scoped eval cache: every program's candidate/schedule
  // evaluations memoize through one instance, so identical evaluations
  // re-surfacing anywhere in the batch — across repeats, rounds, blocks,
  // *and programs* — hit instead of re-scheduling.
  std::unique_ptr<runtime::EvalCache> private_cache;
  runtime::EvalCache* cache = config.eval_cache;
  if (cache == nullptr) {
    private_cache =
        std::make_unique<runtime::EvalCache>(config.cache_capacity);
    cache = private_cache.get();
  }
  const runtime::CacheStats stats_before = cache->stats();

  core::ExplorerParams params = config.base.params;
  params.eval_cache = cache;

  isa::IsaFormat format;
  format.reg_file = config.base.machine.reg_file;
  format.max_ises = config.base.constraints.max_ises;

  std::unique_ptr<runtime::ThreadPool> private_pool;
  if (config.base.jobs > 0)
    private_pool = std::make_unique<runtime::ThreadPool>(config.base.jobs);
  runtime::ThreadPool& pool =
      private_pool ? *private_pool : runtime::ThreadPool::default_pool();

  // 3. Exploration: the whole portfolio as one pool batch.
  std::vector<core::ExplorationResult> unique_results;
  {
    const runtime::StageTimer timer("portfolio.exploration");
    if (config.base.algorithm == Algorithm::kMultiIssue) {
      const core::MultiIssueExplorer explorer(config.base.machine, format,
                                              library, params);
      unique_results = explore_unique_jobs(explorer, unique_jobs, pool);
    } else {
      const baseline::SingleIssueExplorer explorer(format, library, params);
      unique_results = explore_unique_jobs(explorer, unique_jobs, pool);
    }
  }
  result.eval_cache_stats = stats_delta(cache->stats(), stats_before);

  // Reduce best-of-repeats per (program, hot block), in repeat order —
  // identical to run_design_flow's reduction.
  for (std::size_t p = 0; p < ents.size(); ++p) {
    PortfolioProgramResult& prog = result.programs[p];
    prog.explorations.reserve(prog.hot_blocks.size());
    for (std::size_t b = 0; b < prog.hot_blocks.size(); ++b) {
      std::vector<core::ExplorationResult> attempts;
      attempts.reserve(per_block);
      for (std::size_t r = 0; r < per_block; ++r)
        attempts.push_back(unique_results[job_of[p][b * per_block + r]]);
      prog.explorations.push_back(
          core::MultiIssueExplorer::pick_best(std::move(attempts)));
    }
  }

  // 4. Weighted shared selection over the merged catalog.
  std::vector<PortfolioCatalogEntry> catalog;
  {
    const runtime::StageTimer timer("portfolio.selection");
    for (std::size_t p = 0; p < ents.size(); ++p) {
      const PortfolioProgramResult& prog = result.programs[p];
      for (IseCatalogEntry& entry : build_catalog(
               ents[p].program, prog.hot_blocks, prog.explorations)) {
        PortfolioCatalogEntry merged;
        merged.program_index = p;
        merged.weight = prog.weight;
        merged.weighted_benefit =
            static_cast<double>(entry.benefit) * prog.weight;
        merged.entry = std::move(entry);
        catalog.push_back(std::move(merged));
      }
    }
    result.selection =
        select_portfolio_ises(catalog, config.base.constraints);
  }

  // Canonical-isomorphism telemetry: how much structure repeats across the
  // portfolio under node renumbering.  Detection only — the exact digests
  // above stay the cache currency (docs/PORTFOLIO.md).
  {
    std::map<KeyPair, std::set<KeyPair>> canon_to_exact;
    std::map<KeyPair, std::size_t> canon_count;
    for (std::size_t p = 0; p < ents.size(); ++p) {
      for (std::size_t b = 0; b < result.programs[p].hot_blocks.size(); ++b) {
        const dfg::Graph& graph =
            ents[p]
                .program.blocks[result.programs[p].hot_blocks[b]]
                .graph;
        const KeyPair canon = key_pair(runtime::canonical_graph_digest(graph));
        canon_to_exact[canon].insert(key_pair(block_digests[p][b]));
        ++canon_count[canon];
      }
    }
    for (const auto& [canon, count] : canon_count)
      if (count > 1 && canon_to_exact[canon].size() > 1)
        result.isomorphic_hot_blocks += count;

    std::map<KeyPair, std::set<std::size_t>> pattern_programs;
    for (const PortfolioCatalogEntry& e : catalog)
      pattern_programs[key_pair(runtime::canonical_graph_digest(
                           e.entry.pattern))]
          .insert(e.program_index);
    for (const PortfolioCatalogEntry& e : catalog)
      if (pattern_programs[key_pair(runtime::canonical_graph_digest(
              e.entry.pattern))]
              .size() > 1)
        ++result.isomorphic_candidates;
  }

  // 5. Replacement per program under its selection slice.  Type ids stay
  // global; a slice's total_area charges only the types this program paid
  // for (first use), and num_types counts the distinct ASFUs it touches.
  {
    const runtime::StageTimer timer("portfolio.replacement");
    std::set<int> charged_types;
    for (std::size_t p = 0; p < ents.size(); ++p) {
      PortfolioProgramResult& prog = result.programs[p];
      std::set<int> used_types;
      for (const PortfolioSelectedIse& sel : result.selection.selected) {
        if (sel.program_index != p) continue;
        SelectedIse slice;
        slice.entry = sel.entry;
        slice.type_id = sel.type_id;
        slice.hardware_shared = sel.hardware_shared;
        if (!sel.hardware_shared && charged_types.insert(sel.type_id).second)
          prog.selection.total_area += sel.entry.ise.eval.area;
        used_types.insert(sel.type_id);
        prog.selection.selected.push_back(std::move(slice));
      }
      prog.selection.num_types = static_cast<int>(used_types.size());
      prog.replacement =
          apply_selection(ents[p].program, prog.selection,
                          config.base.machine, config.base.replacement);
    }
  }

  // Batch telemetry: the dedup hit-rate gauge plus per-program benefit.
  trace::MetricsRegistry& registry = trace::MetricsRegistry::global();
  registry.counter("isex_portfolio_flows_total").inc();
  registry.counter("isex_portfolio_jobs_total")
      .inc(static_cast<double>(result.total_jobs));
  registry.counter("isex_portfolio_jobs_deduped_total")
      .inc(static_cast<double>(result.deduped_jobs));
  registry.gauge("isex_portfolio_dedup_hit_rate")
      .set(result.eval_cache_stats.hit_rate());
  for (const PortfolioProgramResult& prog : result.programs)
    registry
        .gauge("isex_portfolio_program_weighted_benefit",
               {{"program", prog.name}})
        .set(prog.weighted_benefit());

  return result;
}

}  // namespace isex::flow
