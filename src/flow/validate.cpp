#include "flow/validate.hpp"

#include <cmath>
#include <string>

#include "dfg/validate.hpp"

namespace isex::flow {

ValidationReport validate(const ProfiledProgram& program) {
  ValidationReport report;
  if (program.blocks.empty()) {
    report.add(ErrorCode::kProgramEmpty,
               "program '" + program.name + "' has no basic blocks");
    return report;
  }
  for (std::size_t b = 0; b < program.blocks.size(); ++b) {
    const ProfiledBlock& block = program.blocks[b];
    const std::string who = "block " + std::to_string(b) +
                            (block.name.empty() ? "" : " ('" + block.name + "')");
    if (block.exec_count == 0)
      report.add(ErrorCode::kProgramExecCount,
                 who + " has execution count 0; profiling data is truncated");
    // Re-report the block's DFG defects with the block named, keeping the
    // underlying codes so callers can still dispatch on them.  The report
    // must outlive the loop: issues() references its storage.
    const ValidationReport block_report = dfg::validate(block.graph);
    for (const Error& e : block_report.issues())
      report.add(e.code(), who + ": " + e.message(), e.loc(), e.severity());
  }
  return report;
}

ValidationReport validate(const FlowConfig& config) {
  ValidationReport report = sched::validate(config.machine);
  auto param_error = [&](const std::string& message) {
    report.add(ErrorCode::kFlowParamsInvalid, message);
  };
  if (config.repeats < 1)
    param_error("repeats " + std::to_string(config.repeats) +
                " is invalid (must be >= 1)");
  if (!(config.hot_coverage > 0.0) || config.hot_coverage > 1.0)
    param_error("hot_coverage " + std::to_string(config.hot_coverage) +
                " is outside (0, 1]");
  if (config.max_hot_blocks < 1)
    param_error("max_hot_blocks must be >= 1");
  if (config.jobs < 0)
    param_error("jobs " + std::to_string(config.jobs) +
                " is invalid (0 = default pool, N > 0 = private pool)");
  if (config.constraints.max_ises < 0)
    param_error("constraints.max_ises must be >= 0");
  if (!(config.constraints.area_budget >= 0.0))  // also rejects NaN
    param_error("constraints.area_budget must be >= 0");
  const core::ExplorerParams& p = config.params;
  if (p.max_iterations < 1 || p.max_rounds < 1)
    param_error("ACO caps max_iterations/max_rounds must be >= 1");
  if (!(p.p_end > 0.0) || p.p_end > 1.0)
    param_error("convergence threshold p_end " + std::to_string(p.p_end) +
                " is outside (0, 1]");
  if (p.colonies < 1)
    param_error("colonies " + std::to_string(p.colonies) +
                " is invalid (must be >= 1)");
  if (p.merge_interval < 1)
    param_error("merge_interval " + std::to_string(p.merge_interval) +
                " is invalid (must be >= 1)");
  if (!(p.merge_evaporation >= 0.0) || p.merge_evaporation > 1.0)
    param_error("merge_evaporation " + std::to_string(p.merge_evaporation) +
                " is outside [0, 1]");
  if (config.cache) report.merge(mem::validate(*config.cache));
  return report;
}

ValidationReport validate(const std::vector<PortfolioEntry>& entries) {
  ValidationReport report;
  if (entries.empty()) {
    report.add(ErrorCode::kProgramEmpty, "portfolio manifest has no programs");
    return report;
  }
  for (std::size_t p = 0; p < entries.size(); ++p) {
    const PortfolioEntry& entry = entries[p];
    const std::string who =
        "program " + std::to_string(p) +
        (entry.program.name.empty() ? "" : " ('" + entry.program.name + "')");
    if (!std::isfinite(entry.weight) || !(entry.weight > 0.0))
      report.add(ErrorCode::kFlowParamsInvalid,
                 who + " weight " + std::to_string(entry.weight) +
                     " is invalid (must be finite and > 0)");
    const ValidationReport program_report = validate(entry.program);
    for (const Error& e : program_report.issues())
      report.add(e.code(), who + ": " + e.message(), e.loc(), e.severity());
  }
  return report;
}

ValidationReport validate(const PortfolioConfig& config) {
  ValidationReport report = validate(config.base);
  if (config.eval_cache == nullptr && config.cache_capacity < 1)
    report.add(ErrorCode::kFlowParamsInvalid,
               "portfolio cache_capacity must be >= 1 (or supply an external "
               "eval_cache)");
  return report;
}

}  // namespace isex::flow
