#include "flow/subgraph_match.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace isex::flow {
namespace {

/// Label equality for matching: opcode for regular nodes; ISE supernodes
/// only match ISE supernodes with the same latency (same datapath shape is
/// checked by the member structure at a higher level).
bool labels_match(const dfg::Node& p, const dfg::Node& t) {
  if (p.is_ise != t.is_ise) return false;
  if (p.is_ise) return p.ise.latency_cycles == t.ise.latency_cycles;
  return p.opcode == t.opcode;
}

class Matcher {
 public:
  Matcher(const dfg::Graph& pattern, const dfg::Graph& target,
          const MatchOptions& options)
      : pattern_(pattern), target_(target), options_(options) {}

  std::vector<std::vector<dfg::NodeId>> run() {
    const std::size_t pn = pattern_.num_nodes();
    if (pn == 0 || pn > target_.num_nodes()) return {};
    mapping_.assign(pn, dfg::kInvalidNode);
    used_.assign(target_.num_nodes(), false);
    order_ = match_order();
    backtrack(0);
    return std::move(results_);
  }

 private:
  /// Pattern nodes ordered so each (after the first) touches an already
  /// matched node — keeps the frontier connected and pruning effective.
  std::vector<dfg::NodeId> match_order() const {
    const std::size_t pn = pattern_.num_nodes();
    std::vector<bool> placed(pn, false);
    std::vector<dfg::NodeId> order;
    order.reserve(pn);
    auto degree = [&](dfg::NodeId v) {
      return pattern_.preds(v).size() + pattern_.succs(v).size();
    };
    while (order.size() < pn) {
      dfg::NodeId best = dfg::kInvalidNode;
      bool best_connected = false;
      for (dfg::NodeId v = 0; v < pn; ++v) {
        if (placed[v]) continue;
        bool connected = false;
        for (const dfg::NodeId u : pattern_.preds(v))
          connected = connected || placed[u];
        for (const dfg::NodeId u : pattern_.succs(v))
          connected = connected || placed[u];
        if (best == dfg::kInvalidNode ||
            (connected && !best_connected) ||
            (connected == best_connected && degree(v) > degree(best))) {
          best = v;
          best_connected = connected;
        }
      }
      placed[best] = true;
      order.push_back(best);
    }
    return order;
  }

  bool feasible(dfg::NodeId p, dfg::NodeId t) const {
    if (!labels_match(pattern_.node(p), target_.node(t))) return false;
    // Degree pruning: target must have at least the pattern's connectivity.
    if (target_.preds(t).size() < pattern_.preds(p).size()) return false;
    if (target_.succs(t).size() < pattern_.succs(p).size()) return false;
    // Adjacency consistency with already-mapped neighbours.
    for (const dfg::NodeId pp : pattern_.preds(p)) {
      const dfg::NodeId mapped = mapping_[pp];
      if (mapped != dfg::kInvalidNode && !target_.has_edge(mapped, t))
        return false;
    }
    for (const dfg::NodeId ps : pattern_.succs(p)) {
      const dfg::NodeId mapped = mapping_[ps];
      if (mapped != dfg::kInvalidNode && !target_.has_edge(t, mapped))
        return false;
    }
    return true;
  }

  bool backtrack(std::size_t depth) {  // returns true when budget exhausted
    if (steps_++ > options_.max_steps) return true;
    if (depth == order_.size()) {
      results_.push_back(mapping_);
      return options_.max_matches != 0 &&
             results_.size() >= options_.max_matches;
    }
    const dfg::NodeId p = order_[depth];
    for (dfg::NodeId t = 0; t < target_.num_nodes(); ++t) {
      if (used_[t] || !feasible(p, t)) continue;
      mapping_[p] = t;
      used_[t] = true;
      const bool done = backtrack(depth + 1);
      mapping_[p] = dfg::kInvalidNode;
      used_[t] = false;
      if (done) return true;
      if (options_.max_matches == 0 && !results_.empty()) return true;
    }
    return false;
  }

  const dfg::Graph& pattern_;
  const dfg::Graph& target_;
  MatchOptions options_;
  std::vector<dfg::NodeId> mapping_;
  std::vector<bool> used_;
  std::vector<dfg::NodeId> order_;
  std::vector<std::vector<dfg::NodeId>> results_;
  std::size_t steps_ = 0;
};

}  // namespace

std::vector<std::vector<dfg::NodeId>> find_matches(const dfg::Graph& pattern,
                                                   const dfg::Graph& target,
                                                   const MatchOptions& options) {
  Matcher m(pattern, target, options);
  return m.run();
}

bool is_subgraph_of(const dfg::Graph& pattern, const dfg::Graph& target) {
  MatchOptions opts;
  opts.max_matches = 0;  // existence only
  Matcher m(pattern, target, opts);
  return !m.run().empty();
}

bool is_isomorphic(const dfg::Graph& a, const dfg::Graph& b) {
  if (a.num_nodes() != b.num_nodes() || a.num_edges() != b.num_edges())
    return false;
  return is_subgraph_of(a, b) && is_subgraph_of(b, a);
}

}  // namespace isex::flow
