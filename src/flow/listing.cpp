#include "flow/listing.hpp"

#include <algorithm>
#include <map>
#include <ostream>
#include <sstream>
#include <vector>

#include "isa/opcode.hpp"

namespace isex::flow {
namespace {

std::string render_instruction(const dfg::Graph& graph, dfg::NodeId v,
                               const std::map<dfg::NodeId, int>& ise_names,
                               const ListingOptions& options) {
  const dfg::Node& n = graph.node(v);
  std::ostringstream ss;
  if (n.is_ise) {
    ss << "ise" << ise_names.at(v) << "/" << n.ise.num_inputs << ">"
       << n.ise.num_outputs;
    if (n.ise.latency_cycles > 1) ss << " (" << n.ise.latency_cycles << "c)";
  } else {
    ss << isa::mnemonic(n.opcode);
    if (options.show_labels && !n.label.empty()) ss << " " << n.label;
  }
  std::string text = ss.str();
  if (static_cast<int>(text.size()) > options.column_width - 1)
    text.resize(static_cast<std::size_t>(options.column_width - 1));
  return text;
}

}  // namespace

void write_listing(std::ostream& os, const dfg::Graph& graph,
                   const sched::MachineConfig& machine,
                   const ListingOptions& options) {
  const sched::ListScheduler scheduler(machine);
  const sched::Schedule schedule = scheduler.run(graph);

  // Stable ISE numbering by node id.
  std::map<dfg::NodeId, int> ise_names;
  for (dfg::NodeId v = 0; v < graph.num_nodes(); ++v) {
    if (graph.node(v).is_ise)
      ise_names.emplace(v, static_cast<int>(ise_names.size()));
  }

  // Bucket instructions per cycle, assigning issue slots in node order.
  std::vector<std::vector<dfg::NodeId>> per_cycle(
      static_cast<std::size_t>(std::max(schedule.cycles, 0)));
  for (dfg::NodeId v = 0; v < graph.num_nodes(); ++v) {
    per_cycle[static_cast<std::size_t>(schedule.slot[v])].push_back(v);
  }

  os << "; " << machine.label() << ", " << schedule.cycles << " cycles, "
     << graph.num_nodes() << " instructions\n";
  for (std::size_t cycle = 0; cycle < per_cycle.size(); ++cycle) {
    os << "C" << cycle + 1 << ":";
    const std::string indent(cycle + 1 < 9 ? 2 : 1, ' ');
    os << indent;
    for (int slot = 0; slot < machine.issue_width; ++slot) {
      std::string cell =
          slot < static_cast<int>(per_cycle[cycle].size())
              ? render_instruction(graph, per_cycle[cycle][static_cast<std::size_t>(slot)],
                                   ise_names, options)
              : std::string("-");
      cell.resize(static_cast<std::size_t>(options.column_width), ' ');
      os << "| " << cell;
    }
    os << "|\n";
  }
}

std::string to_listing(const dfg::Graph& graph,
                       const sched::MachineConfig& machine,
                       const ListingOptions& options) {
  std::ostringstream ss;
  write_listing(ss, graph, machine, options);
  return ss.str();
}

}  // namespace isex::flow
