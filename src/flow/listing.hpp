// VLIW-style assembly listing of a scheduled block.
//
// The design flow's human-readable output: one row per cycle, one column
// per issue slot, ISE supernodes rendered as custom opcodes (ise0, ise1, …)
// with their operand counts — what the generated code would look like to a
// firmware engineer reading the disassembly.
#pragma once

#include <iosfwd>
#include <string>

#include "dfg/graph.hpp"
#include "sched/list_scheduler.hpp"

namespace isex::flow {

struct ListingOptions {
  /// Show per-instruction destination labels.
  bool show_labels = true;
  /// Column width per issue slot.
  int column_width = 18;
};

/// Schedules `graph` on `machine` and writes the cycle-by-slot listing.
void write_listing(std::ostream& os, const dfg::Graph& graph,
                   const sched::MachineConfig& machine,
                   const ListingOptions& options = {});

/// Convenience: listing as a string.
std::string to_listing(const dfg::Graph& graph,
                       const sched::MachineConfig& machine,
                       const ListingOptions& options = {});

}  // namespace isex::flow
