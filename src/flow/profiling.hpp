// Application profiling and basic-block selection (design-flow stages 1–2,
// Fig 3.1.1).
//
// Blocks are ranked by their share of total software execution time
// (scheduled cycles × execution count); exploration then runs only on the
// hot blocks that cover a configurable fraction of the program.
#pragma once

#include <cstdint>
#include <vector>

#include "flow/program.hpp"
#include "sched/machine_config.hpp"

namespace isex::flow {

struct BlockCost {
  std::size_t block_index = 0;
  int sw_cycles = 0;
  std::uint64_t exec_count = 0;
  /// cycles × count.
  std::uint64_t time = 0;
  /// Fraction of total program time.
  double time_share = 0.0;
};

/// Schedules every block (no ISEs) on `machine` and attributes program time.
/// Result is sorted by descending time.
std::vector<BlockCost> profile_blocks(const ProfiledProgram& program,
                                      const sched::MachineConfig& machine);

/// Picks hot blocks: the shortest descending-time prefix covering at least
/// `coverage` of program time, capped at `max_blocks`.  Returns block
/// indices (into program.blocks).
std::vector<std::size_t> select_hot_blocks(const std::vector<BlockCost>& costs,
                                           double coverage,
                                           std::size_t max_blocks);

}  // namespace isex::flow
