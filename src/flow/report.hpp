// Human-readable design-flow report.
//
// Renders a FlowResult as markdown: program summary, the selected ISEs with
// their ASFU characteristics and sharing relations, and per-block outcomes —
// the artifact a designer reviews before committing silicon.
#pragma once

#include <iosfwd>
#include <string>

#include "flow/design_flow.hpp"

namespace isex::flow {

struct ReportOptions {
  /// Include the per-block outcome table.
  bool per_block = true;
  /// Include one line per selected ISE.
  bool per_ise = true;
};

void write_report(std::ostream& os, const ProfiledProgram& program,
                  const FlowResult& result, const ReportOptions& options = {});

std::string to_report(const ProfiledProgram& program, const FlowResult& result,
                      const ReportOptions& options = {});

}  // namespace isex::flow
