// Labeled subgraph matching (VF2-style backtracking).
//
// Used by three flow stages: ISE merging ("ISE B is a subgraph of ISE A"),
// hardware sharing (two selected ISEs with identical datapaths share one
// ASFU), and ISE replacement (find occurrences of a selected pattern in
// other blocks).  Nodes are labeled by opcode; a match maps every pattern
// node to a distinct target node of the same opcode such that every pattern
// edge maps to a target edge (monomorphism — the target may have extra
// edges among matched nodes; replacement re-validates candidates anyway).
#pragma once

#include <cstdint>
#include <vector>

#include "dfg/graph.hpp"
#include "dfg/node_set.hpp"

namespace isex::flow {

struct MatchOptions {
  /// Stop after this many matches (0 = just test existence).
  std::size_t max_matches = 16;
  /// Backtracking budget; prevents pathological blowup on dense blocks.
  std::size_t max_steps = 200000;
};

/// All (up to max_matches) mappings of `pattern` into `target`;
/// result[k][p] = target node matched to pattern node p.
std::vector<std::vector<dfg::NodeId>> find_matches(const dfg::Graph& pattern,
                                                   const dfg::Graph& target,
                                                   const MatchOptions& options = {});

/// True when at least one match exists.
bool is_subgraph_of(const dfg::Graph& pattern, const dfg::Graph& target);

/// True when the two graphs match in both directions with equal node and
/// edge counts (label-preserving isomorphism).
bool is_isomorphic(const dfg::Graph& a, const dfg::Graph& b);

}  // namespace isex::flow
