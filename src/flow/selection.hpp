// ISE selection with hardware sharing (design-flow stage, Fig 3.1.1).
//
// Greedy, as in the paper's evaluation (§5.1): rank explored candidates by
// program-level benefit (per-block cycle gain × block execution count) and
// select as many as the constraints admit — total ASFU silicon area and the
// ISA-format opcode budget (number of distinct ISE *types*).  Hardware
// sharing and merging reduce both bills: a candidate isomorphic to (or a
// subgraph of) an already-selected type reuses that ASFU for free.
//
// Candidates within one block must be selected in commit order — each
// gain_cycles was measured with the previous ISEs already in place — so
// selection walks per-block prefixes.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "core/mi_explorer.hpp"
#include "dfg/graph.hpp"
#include "flow/program.hpp"

namespace isex::flow {

/// One explored candidate, flattened out of its block's ExplorationResult.
struct IseCatalogEntry {
  std::size_t block_index = 0;
  /// Commit order within the block (0 = first ISE explored there).
  std::size_t position = 0;
  core::ExploredIse ise;
  /// Pattern graph (induced subgraph of the block over the members).
  dfg::Graph pattern;
  /// gain_cycles × block execution count.
  std::uint64_t benefit = 0;
};

struct SelectionConstraints {
  /// Total extra silicon area allowed, µm².
  double area_budget = std::numeric_limits<double>::infinity();
  /// Distinct ISE types (free opcodes).
  int max_ises = 32;
};

struct SelectedIse {
  IseCatalogEntry entry;
  /// Equivalence class (ASFU) identifier.
  int type_id = 0;
  /// True when this selection reuses an earlier selection's ASFU.
  bool hardware_shared = false;
};

struct SelectionResult {
  std::vector<SelectedIse> selected;
  double total_area = 0.0;
  int num_types = 0;

  bool block_has(std::size_t block_index) const;
};

/// Builds the catalog from per-block exploration results.
std::vector<IseCatalogEntry> build_catalog(
    const ProfiledProgram& program,
    const std::vector<std::size_t>& block_indices,
    const std::vector<core::ExplorationResult>& results);

/// Greedy selection under `constraints`.
SelectionResult select_ises(const std::vector<IseCatalogEntry>& catalog,
                            const SelectionConstraints& constraints);

}  // namespace isex::flow
