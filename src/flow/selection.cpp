#include "flow/selection.hpp"

#include <algorithm>
#include <map>

#include "flow/merging.hpp"
#include "util/assert.hpp"

namespace isex::flow {

bool SelectionResult::block_has(std::size_t block_index) const {
  return std::any_of(selected.begin(), selected.end(),
                     [&](const SelectedIse& s) {
                       return s.entry.block_index == block_index;
                     });
}

std::vector<IseCatalogEntry> build_catalog(
    const ProfiledProgram& program,
    const std::vector<std::size_t>& block_indices,
    const std::vector<core::ExplorationResult>& results) {
  ISEX_ASSERT(block_indices.size() == results.size());
  std::vector<IseCatalogEntry> catalog;
  for (std::size_t i = 0; i < block_indices.size(); ++i) {
    const std::size_t bi = block_indices[i];
    const ProfiledBlock& block = program.blocks[bi];
    for (std::size_t k = 0; k < results[i].ises.size(); ++k) {
      const core::ExploredIse& ise = results[i].ises[k];
      IseCatalogEntry entry;
      entry.block_index = bi;
      entry.position = k;
      entry.ise = ise;
      entry.pattern = induced_subgraph(block.graph, ise.original_nodes);
      entry.benefit = static_cast<std::uint64_t>(
                          std::max(0, ise.gain_cycles)) *
                      block.exec_count;
      catalog.push_back(std::move(entry));
    }
  }
  return catalog;
}

SelectionResult select_ises(const std::vector<IseCatalogEntry>& catalog,
                            const SelectionConstraints& constraints) {
  SelectionResult result;

  // Per-block cursor enforcing prefix order, and a done flag set once a
  // block's head cannot be afforded (everything after is unreachable).
  std::map<std::size_t, std::size_t> next_position;
  std::map<std::size_t, bool> block_done;
  for (const IseCatalogEntry& e : catalog) {
    next_position.try_emplace(e.block_index, 0);
    block_done.try_emplace(e.block_index, false);
  }

  // Representative pattern per selected type for sharing/merging checks.
  std::vector<const dfg::Graph*> type_patterns;
  std::vector<double> type_area;

  for (;;) {
    // Gather current heads.
    const IseCatalogEntry* best = nullptr;
    for (const IseCatalogEntry& e : catalog) {
      if (block_done[e.block_index]) continue;
      if (e.position != next_position[e.block_index]) continue;
      if (e.benefit == 0) continue;
      if (best == nullptr || e.benefit > best->benefit ||
          (e.benefit == best->benefit && e.ise.eval.area < best->ise.eval.area)) {
        best = &e;
      }
    }
    if (best == nullptr) break;

    // Sharing/merging: find an existing type this pattern folds into.
    int share_type = -1;
    for (std::size_t t = 0; t < type_patterns.size() && share_type < 0; ++t) {
      const MergeRelation rel = classify_merge(best->pattern, *type_patterns[t]);
      if (rel == MergeRelation::kEqual || rel == MergeRelation::kIntoOther)
        share_type = static_cast<int>(t);
    }

    const double charge = share_type >= 0 ? 0.0 : best->ise.eval.area;
    const bool needs_new_type = share_type < 0;
    const bool area_ok = result.total_area + charge <= constraints.area_budget;
    const bool type_ok =
        !needs_new_type || result.num_types < constraints.max_ises;

    if (!area_ok || !type_ok) {
      // The head is unaffordable; later candidates of this block are gated
      // on it, so retire the whole block.
      block_done[best->block_index] = true;
      continue;
    }

    SelectedIse sel;
    sel.entry = *best;
    if (needs_new_type) {
      sel.type_id = result.num_types++;
      type_patterns.push_back(&best->pattern);
      type_area.push_back(best->ise.eval.area);
      result.total_area += charge;
    } else {
      sel.type_id = share_type;
      sel.hardware_shared = true;
    }
    result.selected.push_back(std::move(sel));
    next_position[best->block_index] += 1;
  }
  return result;
}

}  // namespace isex::flow
