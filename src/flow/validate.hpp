// Design-flow input validation.
//
// run_design_flow consumes two external artifacts — a ProfiledProgram (per
// basic block: a DFG plus an execution count) and a FlowConfig (machine
// model + exploration tunables).  Both arrive from outside the library (TAC
// files, CLI flags, service requests), so their legality is checked here
// once, up front, and a rejected input never reaches the explorer.
//
//   * validate(ProfiledProgram) — at least one block; every block's DFG
//     passes dfg::validate (issues are re-reported with the block name
//     prefixed) and executes at least once;
//   * validate(FlowConfig)      — machine model sane (sched::validate),
//     repeats/coverage/constraints/ACO caps inside their domains.
//
// run_design_flow_checked (design_flow.hpp) runs both and returns the first
// defects as an Expected error instead of crashing mid-flow.
#pragma once

#include <vector>

#include "flow/design_flow.hpp"
#include "flow/portfolio.hpp"
#include "flow/program.hpp"
#include "util/error.hpp"

namespace isex::flow {

ValidationReport validate(const ProfiledProgram& program);
ValidationReport validate(const FlowConfig& config);

/// Portfolio manifest: at least one entry; every program passes
/// validate(ProfiledProgram) (issues re-reported with the program named);
/// every weight is finite and > 0.
ValidationReport validate(const std::vector<PortfolioEntry>& entries);
/// Portfolio config: the shared base FlowConfig plus the portfolio-scoped
/// cache budget.
ValidationReport validate(const PortfolioConfig& config);

}  // namespace isex::flow
