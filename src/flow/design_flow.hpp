// End-to-end ISE design flow (Fig 3.1.1): profiling → basic-block selection
// → ISE exploration (MI, the paper's algorithm, or SI, the legality-only
// baseline) → merging + selection with hardware sharing → replacement and
// final scheduling.
#pragma once

#include <cstdint>
#include <optional>

#include "baseline/si_explorer.hpp"
#include "core/mi_explorer.hpp"
#include "flow/profiling.hpp"
#include "flow/program.hpp"
#include "flow/replacement.hpp"
#include "flow/selection.hpp"
#include "hwlib/hw_library.hpp"
#include "mem/cache_model.hpp"
#include "mem/mem_stream.hpp"
#include "sched/machine_config.hpp"

namespace isex::flow {

enum class Algorithm {
  kMultiIssue,   ///< the paper's schedule-aware exploration ("MI")
  kSingleIssue,  ///< legality-only prior art ("SI", Wu et al. [8])
};

struct FlowConfig {
  sched::MachineConfig machine = sched::MachineConfig::make(2, {4, 2});
  core::ExplorerParams params{};
  SelectionConstraints constraints{};
  ReplacementOptions replacement{};
  Algorithm algorithm = Algorithm::kMultiIssue;
  /// ISA opcode budget (mirrors constraints.max_ises by default).
  int repeats = 5;  ///< §5.1: best of 5 explorations per block
  std::uint64_t seed = 1;
  double hot_coverage = 0.95;
  std::size_t max_hot_blocks = 8;
  /// Worker threads for the (block × repeat) exploration fan-out.  0 uses
  /// runtime::ThreadPool::default_pool() (hardware_concurrency, or the
  /// --jobs / ISEX_JOBS override); N > 0 runs on a private N-thread pool.
  /// Results are identical at any value — see docs/RUNTIME.md.
  int jobs = 0;
  /// Copy the per-hot-block exploration results into FlowResult.  Off by
  /// default (they can be large); the portfolio bit-identity gates compare
  /// them against run_portfolio_flow's per-program explorations.
  bool keep_explorations = false;
  /// Memory-hierarchy cost model (docs/MEMORY.md).  When set, every block
  /// is annotated with simulated L1/L2 load/store latencies before
  /// profiling, so all downstream stages — exploration merit, selection,
  /// replacement — price memory behavior.  Unset (the null model) keeps the
  /// legacy one-cycle latencies and all historic digests.
  std::optional<mem::CacheConfig> cache;
};

struct FlowResult {
  ReplacementResult replacement;
  SelectionResult selection;
  /// Blocks exploration actually ran on.
  std::vector<std::size_t> hot_blocks;
  /// Per-hot-block exploration results (parallel to hot_blocks); populated
  /// only when FlowConfig::keep_explorations is set.
  std::vector<core::ExplorationResult> explorations;
  /// True when FlowConfig::cache drove the run; `cache_stats` then holds the
  /// aggregate hit/miss counters of the per-block annotation simulations.
  bool cache_modeled = false;
  mem::CacheStats cache_stats;

  std::uint64_t base_time() const { return replacement.base_time; }
  std::uint64_t final_time() const { return replacement.final_time; }
  double reduction() const { return replacement.reduction(); }
  double total_area() const { return selection.total_area; }
  int num_ise_types() const { return selection.num_types; }
};

/// Stamps the cache model's load/store latencies onto every block of
/// `program` (mem::annotate_graph per block) and records the aggregate
/// counters into the `isex_cache_*` metrics.  Each block is a fresh
/// simulation, so the result is independent of block order and job count.
mem::CacheStats annotate_program(ProfiledProgram& program,
                                 const mem::CacheConfig& config);

/// Runs the complete flow on `program`.  Deterministic in config.seed.
/// Validates the program and config first (flow::validate) and throws
/// isex::ValidationException on rejected input — malformed kernels never
/// reach the explorer.
FlowResult run_design_flow(const ProfiledProgram& program,
                           const hw::HwLibrary& library,
                           const FlowConfig& config);

/// Non-throwing boundary: validates `program` and `config` up front and
/// returns the first defect as a structured Error instead of throwing.
/// Service and CLI callers should prefer this entry point.
Expected<FlowResult> run_design_flow_checked(const ProfiledProgram& program,
                                             const hw::HwLibrary& library,
                                             const FlowConfig& config);

}  // namespace isex::flow
