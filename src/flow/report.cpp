#include "flow/report.hpp"

#include <ostream>
#include <sstream>

#include "util/table_printer.hpp"

namespace isex::flow {

void write_report(std::ostream& os, const ProfiledProgram& program,
                  const FlowResult& result, const ReportOptions& options) {
  os << "# ISE design report: " << program.name << "\n\n";
  os << "- blocks: " << program.blocks.size() << " ("
     << program.total_operations() << " operations), explored: "
     << result.hot_blocks.size() << " hot block(s)\n";
  os << "- execution time: " << result.base_time() << " -> "
     << result.final_time() << " cycles ("
     << TablePrinter::pct(result.reduction()) << " reduction)\n";
  os << "- ISE types: " << result.num_ise_types() << ", total ASFU area: "
     << TablePrinter::fmt(result.total_area(), 1) << " um^2\n\n";

  if (options.per_ise && !result.selection.selected.empty()) {
    os << "## Selected ISEs\n\n";
    TablePrinter table;
    table.set_header({"type", "home block", "ops", "latency", "IN", "OUT",
                      "area (um^2)", "gain/exec", "sharing"});
    for (const SelectedIse& sel : result.selection.selected) {
      const auto& ise = sel.entry.ise;
      table.add_row({std::to_string(sel.type_id),
                     program.blocks[sel.entry.block_index].name,
                     std::to_string(ise.original_nodes.count()),
                     std::to_string(ise.eval.latency_cycles),
                     std::to_string(ise.in_count),
                     std::to_string(ise.out_count),
                     TablePrinter::fmt(ise.eval.area, 1),
                     std::to_string(ise.gain_cycles),
                     sel.hardware_shared ? "shared ASFU" : "own ASFU"});
    }
    std::ostringstream body;
    table.print(body);
    os << body.str() << "\n";
  }

  if (options.per_block) {
    os << "## Per-block outcome\n\n";
    TablePrinter table;
    table.set_header({"block", "exec count", "cycles before", "cycles after",
                      "ISE uses"});
    for (const BlockOutcome& b : result.replacement.outcomes) {
      table.add_row({b.name, std::to_string(b.exec_count),
                     std::to_string(b.base_cycles),
                     std::to_string(b.final_cycles),
                     std::to_string(b.ise_uses)});
    }
    std::ostringstream body;
    table.print(body);
    os << body.str();
  }
}

std::string to_report(const ProfiledProgram& program, const FlowResult& result,
                      const ReportOptions& options) {
  std::ostringstream ss;
  write_report(ss, program, result, options);
  return ss.str();
}

}  // namespace isex::flow
