#include "flow/merging.hpp"

#include "flow/subgraph_match.hpp"

namespace isex::flow {

MergeRelation classify_merge(const dfg::Graph& pattern, const dfg::Graph& other) {
  const bool forward = is_subgraph_of(pattern, other);
  const bool backward = is_subgraph_of(other, pattern);
  if (forward && backward) return MergeRelation::kEqual;
  if (forward) return MergeRelation::kIntoOther;
  if (backward) return MergeRelation::kFromOther;
  return MergeRelation::kNone;
}

}  // namespace isex::flow
