#include "flow/program.hpp"

#include "util/assert.hpp"

namespace isex::flow {

std::size_t ProfiledProgram::total_operations() const {
  std::size_t total = 0;
  for (const ProfiledBlock& b : blocks) total += b.graph.num_nodes();
  return total;
}

dfg::Graph induced_subgraph(const dfg::Graph& graph, const dfg::NodeSet& members) {
  ISEX_ASSERT(members.universe() == graph.num_nodes());
  dfg::Graph sub;
  std::vector<dfg::NodeId> remap(graph.num_nodes(), dfg::kInvalidNode);
  members.for_each([&](dfg::NodeId v) {
    const dfg::Node& n = graph.node(v);
    remap[v] = n.is_ise ? sub.add_ise_node(n.ise, n.label)
                        : sub.add_node(n.opcode, n.label);
  });
  members.for_each([&](dfg::NodeId v) {
    int extern_ins = graph.extern_inputs(v);
    for (const dfg::NodeId p : graph.preds(v)) {
      if (members.contains(p)) {
        sub.add_edge(remap[p], remap[v]);
      } else {
        ++extern_ins;  // producer outside the pattern becomes a live-in
      }
    }
    sub.set_extern_inputs(remap[v], extern_ins);
    bool escapes = graph.live_out(v);
    for (const dfg::NodeId c : graph.succs(v))
      escapes = escapes || !members.contains(c);
    sub.set_live_out(remap[v], escapes);
  });
  return sub;
}

}  // namespace isex::flow
