// ISE merging (design-flow stage, Fig 3.1.1).
//
// If ISE B's pattern is a subgraph of ISE A's, B needs no ASFU of its own:
// A's datapath computes B's function through output taps.  The paper merges
// under two conditions — (1) B standalone is no faster than the identical
// subgraph inside A (true here because both run the same library cells), and
// (2) A and B never execute simultaneously (guaranteed by giving the shared
// ASFU to one issue slot; the scheduler charges each ISE an issue slot, and
// a shared ASFU is a single unit).
#pragma once

#include "dfg/graph.hpp"

namespace isex::flow {

enum class MergeRelation {
  kNone,       ///< unrelated datapaths
  kEqual,      ///< label-preserving isomorphic (full hardware sharing)
  kIntoOther,  ///< this pattern is a subgraph of the other (merge into it)
  kFromOther,  ///< the other pattern is a subgraph of this one
};

/// Classifies how `pattern` relates to `other` for merging purposes.
MergeRelation classify_merge(const dfg::Graph& pattern, const dfg::Graph& other);

}  // namespace isex::flow
