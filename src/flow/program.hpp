// Profiled program model: the unit the ISE design flow consumes.
//
// SimpleScalar profiling in the paper boils down to per-basic-block
// execution counts; a ProfiledProgram carries exactly that — each block's
// DFG plus how often it executes.  Total program execution time is
// Σ (scheduled block cycles × execution count).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dfg/graph.hpp"

namespace isex::flow {

struct ProfiledBlock {
  std::string name;
  dfg::Graph graph;
  std::uint64_t exec_count = 1;
};

struct ProfiledProgram {
  std::string name;
  std::vector<ProfiledBlock> blocks;

  std::size_t total_operations() const;
};

/// Node-induced subgraph of `members` with remapped ids; preserves opcodes,
/// labels, internal edges, extern-input counts, and marks values escaping
/// `members` as live-out.  Used as the "pattern graph" of an ISE for
/// merging, hardware sharing, and replacement matching.
dfg::Graph induced_subgraph(const dfg::Graph& graph, const dfg::NodeSet& members);

}  // namespace isex::flow
