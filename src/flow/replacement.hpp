// ISE replacement and final scheduling (design-flow last stage, Fig 3.1.1).
//
// Applies a SelectionResult to the whole program: every selected candidate
// collapses into an ISE supernode in its home block (in commit order), and —
// optionally — each selected pattern is matched against the remaining blocks
// so other occurrences of the same dataflow shape reuse the ASFU too.
// Cross-block matches are only kept when convex, port-legal, and when the
// rescheduled block actually gets faster (a match off the critical path is
// reverted, in the spirit of the paper's prioritized replacement).
#pragma once

#include <vector>

#include "flow/program.hpp"
#include "flow/selection.hpp"
#include "sched/machine_config.hpp"

namespace isex::flow {

struct ReplacementOptions {
  bool cross_block_matching = true;
  /// Cap on matches tried per (pattern, block) pair.
  std::size_t max_matches_per_block = 8;
};

struct BlockOutcome {
  std::string name;
  std::uint64_t exec_count = 0;
  int base_cycles = 0;
  int final_cycles = 0;
  /// ISEs instantiated in this block (home + cross-block matches).
  int ise_uses = 0;
};

struct ReplacementResult {
  std::vector<dfg::Graph> rewritten;  ///< one per program block
  std::vector<BlockOutcome> outcomes;
  std::uint64_t base_time = 0;   ///< Σ base cycles × count
  std::uint64_t final_time = 0;  ///< Σ final cycles × count

  double reduction() const {
    return base_time == 0
               ? 0.0
               : 1.0 - static_cast<double>(final_time) /
                           static_cast<double>(base_time);
  }
};

ReplacementResult apply_selection(const ProfiledProgram& program,
                                  const SelectionResult& selection,
                                  const sched::MachineConfig& machine,
                                  const ReplacementOptions& options = {});

}  // namespace isex::flow
