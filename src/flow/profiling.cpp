#include "flow/profiling.hpp"

#include <algorithm>

#include "sched/list_scheduler.hpp"
#include "util/assert.hpp"

namespace isex::flow {

std::vector<BlockCost> profile_blocks(const ProfiledProgram& program,
                                      const sched::MachineConfig& machine) {
  const sched::ListScheduler scheduler(machine);
  std::vector<BlockCost> costs;
  costs.reserve(program.blocks.size());
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < program.blocks.size(); ++i) {
    const ProfiledBlock& b = program.blocks[i];
    BlockCost c;
    c.block_index = i;
    c.sw_cycles = scheduler.cycles(b.graph);
    c.exec_count = b.exec_count;
    c.time = static_cast<std::uint64_t>(c.sw_cycles) * b.exec_count;
    total += c.time;
    costs.push_back(c);
  }
  for (BlockCost& c : costs) {
    c.time_share =
        total == 0 ? 0.0
                   : static_cast<double>(c.time) / static_cast<double>(total);
  }
  std::sort(costs.begin(), costs.end(), [](const BlockCost& a, const BlockCost& b) {
    if (a.time != b.time) return a.time > b.time;
    return a.block_index < b.block_index;
  });
  return costs;
}

std::vector<std::size_t> select_hot_blocks(const std::vector<BlockCost>& costs,
                                           double coverage,
                                           std::size_t max_blocks) {
  ISEX_ASSERT(coverage >= 0.0 && coverage <= 1.0);
  std::vector<std::size_t> hot;
  double covered = 0.0;
  for (const BlockCost& c : costs) {
    if (hot.size() >= max_blocks) break;
    if (covered >= coverage && !hot.empty()) break;
    if (c.time == 0) break;
    hot.push_back(c.block_index);
    covered += c.time_share;
  }
  return hot;
}

}  // namespace isex::flow
