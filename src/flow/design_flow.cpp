#include "flow/design_flow.hpp"

#include <iterator>
#include <memory>

#include "flow/validate.hpp"
#include "runtime/job_graph.hpp"
#include "runtime/runtime_stats.hpp"
#include "trace/metrics.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace isex::flow {

mem::CacheStats annotate_program(ProfiledProgram& program,
                                 const mem::CacheConfig& config) {
  mem::CacheStats stats;
  for (ProfiledBlock& block : program.blocks)
    stats.merge(mem::annotate_graph(block.graph, config));
  trace::MetricsRegistry& registry = trace::MetricsRegistry::global();
  registry.counter("isex_cache_accesses_total")
      .inc(static_cast<double>(stats.accesses));
  registry.counter("isex_cache_hits_total", {{"level", "l1"}})
      .inc(static_cast<double>(stats.l1_hits));
  registry.counter("isex_cache_hits_total", {{"level", "l2"}})
      .inc(static_cast<double>(stats.l2_hits));
  registry.counter("isex_cache_mem_accesses_total")
      .inc(static_cast<double>(stats.mem_accesses));
  registry.counter("isex_cache_annotated_nodes_total")
      .inc(static_cast<double>(stats.annotated_nodes));
  registry.gauge("isex_cache_last_l1_hit_rate").set(stats.l1_hit_rate());
  return stats;
}

namespace {

/// Explores every (hot block × repeat) pair as one flat batch of pool jobs,
/// then reduces each block's attempts best-of in repeat order.
///
/// Determinism: the serial path called explore_best_of per block, which
/// split `rng` once per repeat — block 0's repeats first, then block 1's,
/// and so on.  deterministic_fanout derives the flat job list's streams
/// serially in exactly that order, so every job sees the same stream the
/// serial code would have fed it, and `rng` ends in the same state.
template <typename Explorer>
std::vector<core::ExplorationResult> explore_hot_blocks(
    const Explorer& explorer, const ProfiledProgram& program,
    const std::vector<std::size_t>& hot_blocks, int repeats, Rng& rng,
    runtime::ThreadPool& pool) {
  ISEX_ASSERT(repeats >= 1);
  const auto per_block = static_cast<std::size_t>(repeats);
  std::vector<core::ExplorationResult> attempts = runtime::deterministic_fanout(
      pool, rng, hot_blocks.size() * per_block,
      [&](std::size_t job, Rng& child) {
        const std::size_t bi = hot_blocks[job / per_block];
        return explorer.explore(program.blocks[bi].graph, child);
      },
      /*section=*/"flow.explore_hot_blocks");

  std::vector<core::ExplorationResult> best;
  best.reserve(hot_blocks.size());
  for (std::size_t b = 0; b < hot_blocks.size(); ++b) {
    const auto begin = attempts.begin() + static_cast<std::ptrdiff_t>(b * per_block);
    best.push_back(core::MultiIssueExplorer::pick_best(
        {std::make_move_iterator(begin),
         std::make_move_iterator(begin + static_cast<std::ptrdiff_t>(per_block))}));
  }
  return best;
}

}  // namespace

FlowResult run_design_flow(const ProfiledProgram& program,
                           const hw::HwLibrary& library,
                           const FlowConfig& config) {
  Expected<FlowResult> result = run_design_flow_checked(program, library, config);
  if (!result) throw ValidationException(result.error());
  return std::move(result).value();
}

Expected<FlowResult> run_design_flow_checked(const ProfiledProgram& program,
                                             const hw::HwLibrary& library,
                                             const FlowConfig& config) {
  // Input boundary: reject malformed programs and configs before any stage
  // touches them — a validator-rejected input never reaches the explorer.
  {
    const runtime::StageTimer timer("validation");
    ValidationReport report = validate(config);
    report.merge(validate(program));
    if (!report.ok()) return report.first_error();
  }
  // Every stage is timed into stage_times() / the metrics registry and,
  // when the global tracer is enabled, appears as a `stage:<name>` span —
  // the flow's wall-clock breakdown is first-class output, not printf.
  FlowResult result;

  // 0. Memory-hierarchy annotation.  Runs before profiling so every stage
  // downstream — hot-block costs, exploration merit, selection, replacement
  // — prices the same modeled load/store latencies.  The input program is
  // never mutated; with no cache model `annotated` stays empty and the
  // legacy latencies (and digests) are untouched.
  ProfiledProgram annotated;
  const ProfiledProgram* active = &program;
  if (config.cache) {
    const runtime::StageTimer timer("cache_model");
    annotated = program;
    result.cache_stats = annotate_program(annotated, *config.cache);
    result.cache_modeled = true;
    active = &annotated;
  }
  const ProfiledProgram& prog = *active;

  // 1. Profiling + hot-block selection.
  {
    const runtime::StageTimer timer("profiling");
    const std::vector<BlockCost> costs =
        profile_blocks(prog, config.machine);
    result.hot_blocks =
        select_hot_blocks(costs, config.hot_coverage, config.max_hot_blocks);
  }

  // 2. Exploration per hot block (best of `repeats`), fanned out over the
  // runtime as one (block × repeat) batch.
  isa::IsaFormat format;
  format.reg_file = config.machine.reg_file;
  format.max_ises = config.constraints.max_ises;

  std::unique_ptr<runtime::ThreadPool> private_pool;
  if (config.jobs > 0)
    private_pool = std::make_unique<runtime::ThreadPool>(config.jobs);
  runtime::ThreadPool& pool =
      private_pool ? *private_pool : runtime::ThreadPool::default_pool();

  Rng rng(config.seed);
  std::vector<core::ExplorationResult> explorations;
  {
    const runtime::StageTimer timer("exploration");
    if (config.algorithm == Algorithm::kMultiIssue) {
      const core::MultiIssueExplorer explorer(config.machine, format, library,
                                              config.params);
      explorations = explore_hot_blocks(explorer, prog, result.hot_blocks,
                                        config.repeats, rng, pool);
    } else {
      const baseline::SingleIssueExplorer explorer(format, library,
                                                   config.params);
      explorations = explore_hot_blocks(explorer, prog, result.hot_blocks,
                                        config.repeats, rng, pool);
    }
  }

  // 3. Merging + selection with hardware sharing.
  {
    const runtime::StageTimer timer("selection");
    const std::vector<IseCatalogEntry> catalog =
        build_catalog(prog, result.hot_blocks, explorations);
    result.selection = select_ises(catalog, config.constraints);
  }

  // 4. Replacement and final scheduling.
  {
    const runtime::StageTimer timer("replacement");
    result.replacement = apply_selection(prog, result.selection,
                                         config.machine, config.replacement);
  }
  if (config.keep_explorations) result.explorations = std::move(explorations);
  return result;
}

}  // namespace isex::flow
