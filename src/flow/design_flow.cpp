#include "flow/design_flow.hpp"

#include "util/assert.hpp"
#include "util/rng.hpp"

namespace isex::flow {

FlowResult run_design_flow(const ProfiledProgram& program,
                           const hw::HwLibrary& library,
                           const FlowConfig& config) {
  FlowResult result;

  // 1. Profiling + hot-block selection.
  const std::vector<BlockCost> costs = profile_blocks(program, config.machine);
  result.hot_blocks =
      select_hot_blocks(costs, config.hot_coverage, config.max_hot_blocks);

  // 2. Exploration per hot block (best of `repeats`).
  isa::IsaFormat format;
  format.reg_file = config.machine.reg_file;
  format.max_ises = config.constraints.max_ises;

  Rng rng(config.seed);
  std::vector<core::ExplorationResult> explorations;
  explorations.reserve(result.hot_blocks.size());
  if (config.algorithm == Algorithm::kMultiIssue) {
    const core::MultiIssueExplorer explorer(config.machine, format, library,
                                            config.params);
    for (const std::size_t bi : result.hot_blocks) {
      explorations.push_back(explorer.explore_best_of(
          program.blocks[bi].graph, config.repeats, rng));
    }
  } else {
    const baseline::SingleIssueExplorer explorer(format, library,
                                                 config.params);
    for (const std::size_t bi : result.hot_blocks) {
      explorations.push_back(explorer.explore_best_of(
          program.blocks[bi].graph, config.repeats, rng));
    }
  }

  // 3. Merging + selection with hardware sharing.
  const std::vector<IseCatalogEntry> catalog =
      build_catalog(program, result.hot_blocks, explorations);
  result.selection = select_ises(catalog, config.constraints);

  // 4. Replacement and final scheduling.
  result.replacement = apply_selection(program, result.selection,
                                       config.machine, config.replacement);
  return result;
}

}  // namespace isex::flow
