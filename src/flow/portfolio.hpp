// Batched portfolio design flow: one ISE set for N programs under a shared
// area budget (multi-application ASIP mode, Ragel et al. in PAPERS.md).
//
// run_portfolio_flow extends run_design_flow from one program to a weighted
// manifest.  Three things change, none of them the per-program exploration
// semantics:
//
//   * scheduling — every program's (hot block × repeat) exploration jobs are
//     flattened into ONE batch on the shared runtime pool, so a program with
//     a few small blocks no longer serializes the tail behind a big one.
//     Each program's RNG streams are pre-split serially from Rng(seed) in
//     exactly the order run_design_flow would derive them, so per-program
//     exploration results are bit-identical to N independent flows at any
//     --jobs width.
//   * dedup — jobs whose (within-program job index, exact block digest) pair
//     repeats across programs have identical inputs AND identical RNG
//     streams, so they are explored once and the result is copied; below
//     that, every program's candidate/schedule evaluations share one
//     portfolio-scoped EvalCache (ExplorerParams::eval_cache), so identical
//     candidate evaluations re-surfacing anywhere in the batch hit instead
//     of re-scheduling.  The portfolio's dedup hit-rate is reported per run.
//     Canonically isomorphic-but-renumbered blocks/candidates are *detected*
//     (canonical_graph_digest telemetry) but never share cached makespans:
//     the list scheduler breaks ties by node id, so only exact keys may
//     carry values (docs/PORTFOLIO.md).
//   * selection — the per-program catalogs merge into one weighted greedy
//     selection under the shared SelectionConstraints: rank by
//     benefit × weight, share ASFUs across programs via classify_merge, and
//     break ties by (weighted benefit desc, area asc, program/block/position
//     asc) — serial and index-ordered, bit-identical at any thread count.
#pragma once

#include <cstdint>
#include <vector>

#include "flow/design_flow.hpp"
#include "runtime/eval_cache.hpp"

namespace isex::flow {

/// One manifest row: a profiled program plus its execution-frequency weight
/// (relative share of deployed runtime; scales every block benefit in the
/// shared selection).
struct PortfolioEntry {
  ProfiledProgram program;
  double weight = 1.0;
};

struct PortfolioConfig {
  /// Shared per-program flow settings (machine, explorer params, repeats,
  /// seed, hot-block policy) and the *shared* selection constraints: the
  /// area budget / type budget apply to the whole portfolio, not per
  /// program.  base.keep_explorations is ignored — the portfolio result
  /// always carries per-program explorations (the identity-gate currency).
  FlowConfig base;
  /// Entry budget of the portfolio-scoped eval cache (ignored when
  /// eval_cache is set).
  std::size_t cache_capacity = 1 << 18;
  /// External cache override: the server points this at the warm-started
  /// process cache so portfolio evaluations persist across jobs and
  /// restarts.  Null (default) creates a private per-run cache, which keeps
  /// the reported dedup hit-rate attributable to this portfolio alone.
  runtime::EvalCache* eval_cache = nullptr;
};

/// One selected ISE in portfolio coordinates.
struct PortfolioSelectedIse {
  std::size_t program_index = 0;
  IseCatalogEntry entry;
  /// ASFU equivalence class, global across the portfolio.
  int type_id = 0;
  /// True when this selection reuses an ASFU selected earlier — possibly by
  /// a *different* program (cross-program hardware sharing).
  bool hardware_shared = false;
  double weighted_benefit = 0.0;
};

struct PortfolioSelection {
  std::vector<PortfolioSelectedIse> selected;
  double total_area = 0.0;
  int num_types = 0;
};

/// Per-program slice of the portfolio outcome.
struct PortfolioProgramResult {
  std::string name;
  double weight = 1.0;
  std::vector<std::size_t> hot_blocks;
  /// Best-of-repeats exploration per hot block — bit-identical to what an
  /// independent run_design_flow(seed) would produce for this program.
  std::vector<core::ExplorationResult> explorations;
  /// This program's slice of the shared selection (type ids stay global).
  SelectionResult selection;
  ReplacementResult replacement;

  std::uint64_t base_time() const { return replacement.base_time; }
  std::uint64_t final_time() const { return replacement.final_time; }
  double reduction() const { return replacement.reduction(); }
  /// Raw cycles saved, before weighting.
  std::uint64_t cycles_saved() const {
    return replacement.base_time - replacement.final_time;
  }
  double weighted_benefit() const {
    return static_cast<double>(cycles_saved()) * weight;
  }
};

struct PortfolioResult {
  std::vector<PortfolioProgramResult> programs;
  PortfolioSelection selection;

  // --- batch-level telemetry ---
  /// Candidate/schedule evaluation dedup over the portfolio-scoped cache
  /// (delta over this run when an external cache was supplied).
  runtime::CacheStats eval_cache_stats;
  /// (hot block × repeat) jobs in the flat batch, before job-level dedup.
  std::uint64_t total_jobs = 0;
  /// Jobs skipped because an identical (index, block-digest) job already
  /// ran for an earlier program; their results were copied.
  std::uint64_t deduped_jobs = 0;
  /// Hot blocks that are canonically isomorphic to another portfolio hot
  /// block under node renumbering (detection only; exact keys differ).
  std::uint64_t isomorphic_hot_blocks = 0;
  /// Explored candidates whose pattern is canonically isomorphic to another
  /// program's candidate pattern.
  std::uint64_t isomorphic_candidates = 0;
  /// Memory-hierarchy model telemetry (FlowConfig::cache on base): true when
  /// the batch ran with annotated load/store latencies, plus the aggregate
  /// simulation counters across every program.
  bool cache_modeled = false;
  mem::CacheStats cache_stats;

  double total_area() const { return selection.total_area; }
  int num_ise_types() const { return selection.num_types; }
  double total_weighted_benefit() const {
    double sum = 0.0;
    for (const PortfolioProgramResult& p : programs)
      sum += p.weighted_benefit();
    return sum;
  }
};

/// Merged weighted catalog entry (exposed for tests).
struct PortfolioCatalogEntry {
  std::size_t program_index = 0;
  double weight = 1.0;
  IseCatalogEntry entry;
  /// entry.benefit × weight.
  double weighted_benefit = 0.0;
};

/// Deterministic weighted greedy selection under shared constraints, with
/// cross-program ASFU sharing.  Catalog entries must be grouped per
/// (program, block) in commit-position order (build order guarantees it).
PortfolioSelection select_portfolio_ises(
    const std::vector<PortfolioCatalogEntry>& catalog,
    const SelectionConstraints& constraints);

/// Runs the portfolio flow.  Deterministic in config.base.seed; results are
/// never a function of the thread count.  Throws isex::ValidationException
/// on rejected input.
PortfolioResult run_portfolio_flow(const std::vector<PortfolioEntry>& entries,
                                   const hw::HwLibrary& library,
                                   const PortfolioConfig& config);

/// Non-throwing boundary (service and CLI callers).
Expected<PortfolioResult> run_portfolio_flow_checked(
    const std::vector<PortfolioEntry>& entries, const hw::HwLibrary& library,
    const PortfolioConfig& config);

}  // namespace isex::flow
