#include "flow/replacement.hpp"

#include <algorithm>

#include "dfg/analysis.hpp"
#include "flow/subgraph_match.hpp"
#include "sched/list_scheduler.hpp"
#include "util/assert.hpp"

namespace isex::flow {
namespace {

dfg::IseInfo info_from(const core::ExploredIse& ise) {
  dfg::IseInfo info;
  info.latency_cycles = ise.eval.latency_cycles;
  info.area = ise.eval.area;
  info.num_inputs = ise.in_count;
  info.num_outputs = ise.out_count;
  return info;
}

/// Collapses the home-block candidates of `block_index`, translating each
/// original-coordinate member set through the accumulated id remapping.
dfg::Graph apply_home_ises(const ProfiledBlock& block, std::size_t block_index,
                           const SelectionResult& selection, int& uses) {
  // Selected entries of this block, in commit order.
  std::vector<const SelectedIse*> own;
  for (const SelectedIse& s : selection.selected) {
    if (s.entry.block_index == block_index) own.push_back(&s);
  }
  std::sort(own.begin(), own.end(), [](const SelectedIse* a, const SelectedIse* b) {
    return a->entry.position < b->entry.position;
  });

  dfg::Graph current = block.graph;
  // original node id -> current node id
  std::vector<dfg::NodeId> to_current(block.graph.num_nodes());
  for (dfg::NodeId v = 0; v < block.graph.num_nodes(); ++v) to_current[v] = v;

  for (const SelectedIse* s : own) {
    dfg::NodeSet members(current.num_nodes());
    s->entry.ise.original_nodes.for_each(
        [&](dfg::NodeId orig) { members.insert(to_current[orig]); });
    std::vector<dfg::NodeId> old_to_new;
    current = current.collapse(members, info_from(s->entry.ise), &old_to_new);
    for (dfg::NodeId v = 0; v < block.graph.num_nodes(); ++v)
      to_current[v] = old_to_new[to_current[v]];
    ++uses;
  }
  return current;
}

/// Tries to instantiate `pattern` matches inside `graph`; keeps a collapse
/// only when legal and strictly faster.
dfg::Graph apply_cross_matches(dfg::Graph graph, const IseCatalogEntry& entry,
                               const sched::ListScheduler& scheduler,
                               const ReplacementOptions& options, int& uses) {
  for (;;) {
    MatchOptions mopts;
    mopts.max_matches = options.max_matches_per_block;
    const auto matches = find_matches(entry.pattern, graph, mopts);
    if (matches.empty()) return graph;

    const int cycles_before = scheduler.cycles(graph);
    bool applied = false;
    for (const std::vector<dfg::NodeId>& match : matches) {
      dfg::NodeSet members(graph.num_nodes());
      bool usable = true;
      for (const dfg::NodeId t : match) {
        if (graph.node(t).is_ise) usable = false;
        members.insert(t);
      }
      if (!usable) continue;
      const dfg::Reachability reach(graph);
      if (!dfg::is_convex(graph, members, reach)) continue;
      if (dfg::count_inputs(graph, members) > entry.ise.in_count ||
          dfg::count_outputs(graph, members) > entry.ise.out_count) {
        // The occurrence needs more ports than the ASFU interface provides.
        continue;
      }
      dfg::Graph collapsed = graph.collapse(members, info_from(entry.ise));
      if (scheduler.cycles(collapsed) < cycles_before) {
        graph = std::move(collapsed);
        ++uses;
        applied = true;
        break;  // re-run matching on the rewritten graph
      }
    }
    if (!applied) return graph;
  }
}

}  // namespace

ReplacementResult apply_selection(const ProfiledProgram& program,
                                  const SelectionResult& selection,
                                  const sched::MachineConfig& machine,
                                  const ReplacementOptions& options) {
  const sched::ListScheduler scheduler(machine);
  ReplacementResult result;
  result.rewritten.reserve(program.blocks.size());

  // One representative catalog entry per ISE type, ranked by benefit, for
  // cross-block matching.
  std::vector<const SelectedIse*> type_reps;
  for (const SelectedIse& s : selection.selected) {
    if (!s.hardware_shared) type_reps.push_back(&s);
  }
  std::sort(type_reps.begin(), type_reps.end(),
            [](const SelectedIse* a, const SelectedIse* b) {
              return a->entry.benefit > b->entry.benefit;
            });

  for (std::size_t bi = 0; bi < program.blocks.size(); ++bi) {
    const ProfiledBlock& block = program.blocks[bi];
    BlockOutcome outcome;
    outcome.name = block.name;
    outcome.exec_count = block.exec_count;
    outcome.base_cycles = scheduler.cycles(block.graph);

    int uses = 0;
    dfg::Graph rewritten = apply_home_ises(block, bi, selection, uses);
    if (options.cross_block_matching) {
      for (const SelectedIse* rep : type_reps) {
        if (rep->entry.block_index == bi) continue;  // home handled above
        rewritten = apply_cross_matches(std::move(rewritten), rep->entry,
                                        scheduler, options, uses);
      }
    }

    outcome.final_cycles = scheduler.cycles(rewritten);
    outcome.ise_uses = uses;
    result.base_time +=
        static_cast<std::uint64_t>(outcome.base_cycles) * block.exec_count;
    result.final_time +=
        static_cast<std::uint64_t>(outcome.final_cycles) * block.exec_count;
    result.rewritten.push_back(std::move(rewritten));
    result.outcomes.push_back(std::move(outcome));
  }
  return result;
}

}  // namespace isex::flow
