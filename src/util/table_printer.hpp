// Aligned plain-text table output used by the benchmark harnesses to print
// paper-style rows (figures 5.2.1–5.2.3, table 5.1.1).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace isex {

/// Collects rows of string cells and renders them with column alignment.
/// Numeric-looking cells are right-aligned; everything else left-aligned.
class TablePrinter {
 public:
  /// Sets the header row; resets any accumulated body rows' width bookkeeping.
  void set_header(std::vector<std::string> header);

  void add_row(std::vector<std::string> row);

  /// Renders header, separator, and all rows to `os`.
  void print(std::ostream& os) const;

  /// Convenience for formatting doubles with fixed precision.
  static std::string fmt(double value, int precision = 2);

  /// Formats a ratio as a percentage string, e.g. 0.1479 -> "14.79%".
  static std::string pct(double ratio, int precision = 2);

  std::size_t row_count() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace isex
