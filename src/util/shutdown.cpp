#include "util/shutdown.hpp"

#include <atomic>
#include <cstdlib>
#include <thread>
#include <utility>

#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <unistd.h>

namespace isex::util {
namespace {

std::atomic<int> g_signal{0};
int g_pipe[2] = {-1, -1};

extern "C" void isex_shutdown_handler(int signo) {
  int expected = 0;
  if (!g_signal.compare_exchange_strong(expected, signo)) {
    // Second signal: the graceful path is already running (or stuck);
    // honor the operator and die now.  _Exit is async-signal-safe.
    std::_Exit(128 + signo);
  }
  // Wake every poller.  The pipe is non-blocking; if it is somehow full the
  // first byte already woke them.
  const char byte = 1;
  [[maybe_unused]] const auto n = ::write(g_pipe[1], &byte, 1);
}

}  // namespace

ShutdownRequest::ShutdownRequest() {
  if (::pipe(g_pipe) == 0) {
    for (const int fd : g_pipe) {
      ::fcntl(fd, F_SETFL, ::fcntl(fd, F_GETFL) | O_NONBLOCK);
      ::fcntl(fd, F_SETFD, FD_CLOEXEC);
    }
  }
}

ShutdownRequest& ShutdownRequest::instance() {
  static ShutdownRequest req;
  return req;
}

void ShutdownRequest::install() {
  struct sigaction action {};
  action.sa_handler = isex_shutdown_handler;
  ::sigemptyset(&action.sa_mask);
  action.sa_flags = 0;  // no SA_RESTART: blocking accept/read should wake
  ::sigaction(SIGINT, &action, nullptr);
  ::sigaction(SIGTERM, &action, nullptr);
}

bool ShutdownRequest::requested() const {
  return g_signal.load(std::memory_order_relaxed) != 0;
}

int ShutdownRequest::signal_number() const {
  return g_signal.load(std::memory_order_relaxed);
}

int ShutdownRequest::wait_fd() const { return g_pipe[0]; }

void ShutdownRequest::flush_and_exit_on_signal(std::function<void()> flush) {
  install();
  std::thread([flush = std::move(flush)] {
    pollfd pfd{ShutdownRequest::instance().wait_fd(), POLLIN, 0};
    while (::poll(&pfd, 1, -1) <= 0) {
      // EINTR et al.: keep waiting.
    }
    const int signo = ShutdownRequest::instance().signal_number();
    if (flush) flush();
    std::_Exit(128 + (signo > 0 ? signo : SIGTERM));
  }).detach();
}

}  // namespace isex::util
