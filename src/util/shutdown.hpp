// Cooperative SIGINT/SIGTERM handling, shared by isex_cli and isex_serve.
//
// A signal handler may only touch async-signal-safe state, but both tools
// have real work to do on interrupt: the CLI must flush its --trace-out /
// --metrics-out sinks instead of losing them, and the daemon must drain its
// admission queue and persist its cache.  ShutdownRequest splits the two
// halves: the handler itself only records the signal and writes one byte to
// a self-pipe; ordinary threads then observe the request either by polling
// requested(), by poll()ing wait_fd() next to their other file descriptors
// (the daemon's accept loop), or by parking a watcher thread on the pipe
// that runs a flush callback and _Exits (the CLI).
//
// A second signal while the first is being handled exits immediately with
// the conventional 128+signo status — an operator's double Ctrl-C always
// wins over a stuck drain.
#pragma once

#include <functional>

namespace isex::util {

class ShutdownRequest {
 public:
  /// Process-wide instance (signal handlers need static reach).
  static ShutdownRequest& instance();

  /// Installs SIGINT/SIGTERM handlers (idempotent).  Call once from main
  /// before any worker threads start.
  void install();

  /// True once a signal arrived.
  bool requested() const;

  /// The signal that triggered the request (0 when none yet).
  int signal_number() const;

  /// Read end of the self-pipe: becomes readable when a signal arrives.
  /// poll() it next to a listening socket; never read from it directly
  /// (leave the byte so every poller wakes).
  int wait_fd() const;

  /// Spawns a detached watcher thread that waits for the first signal,
  /// runs `flush`, and _Exits with 128+signo.  For batch tools whose main
  /// thread is deep in compute and cannot poll: the watcher gives their
  /// output sinks a chance to hit disk before the process dies.  `flush`
  /// runs on the watcher thread, concurrently with the interrupted work —
  /// it must only touch thread-safe state (the metrics registry and tracer
  /// qualify).
  void flush_and_exit_on_signal(std::function<void()> flush);

 private:
  ShutdownRequest();
};

}  // namespace isex::util
