#include "util/table_printer.hpp"

#include <algorithm>
#include <cctype>
#include <ostream>
#include <sstream>

namespace isex {
namespace {

bool looks_numeric(const std::string& cell) {
  if (cell.empty()) return false;
  bool digit_seen = false;
  for (const char c : cell) {
    if (std::isdigit(static_cast<unsigned char>(c)) != 0) {
      digit_seen = true;
    } else if (c != '.' && c != '-' && c != '+' && c != '%' && c != 'e') {
      return false;
    }
  }
  return digit_seen;
}

}  // namespace

void TablePrinter::set_header(std::vector<std::string> header) {
  header_ = std::move(header);
}

void TablePrinter::add_row(std::vector<std::string> row) {
  rows_.push_back(std::move(row));
}

void TablePrinter::print(std::ostream& os) const {
  std::size_t columns = header_.size();
  for (const auto& row : rows_) columns = std::max(columns, row.size());
  std::vector<std::size_t> widths(columns, 0);
  auto widen = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i)
      widths[i] = std::max(widths[i], row[i].size());
  };
  if (!header_.empty()) widen(header_);
  for (const auto& row : rows_) widen(row);

  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < columns; ++i) {
      const std::string cell = i < row.size() ? row[i] : std::string{};
      const std::size_t pad = widths[i] - cell.size();
      if (looks_numeric(cell)) {
        os << std::string(pad, ' ') << cell;
      } else {
        os << cell << std::string(pad, ' ');
      }
      os << (i + 1 == columns ? "" : "  ");
    }
    os << '\n';
  };

  if (!header_.empty()) {
    emit(header_);
    std::size_t total = 0;
    for (const std::size_t w : widths) total += w;
    total += 2 * (columns - 1);
    os << std::string(total, '-') << '\n';
  }
  for (const auto& row : rows_) emit(row);
}

std::string TablePrinter::fmt(double value, int precision) {
  std::ostringstream ss;
  ss.setf(std::ios::fixed);
  ss.precision(precision);
  ss << value;
  return ss.str();
}

std::string TablePrinter::pct(double ratio, int precision) {
  return fmt(ratio * 100.0, precision) + "%";
}

}  // namespace isex
