// Structured error taxonomy for the input boundary.
//
// The design flow consumes kernels from outside the process (TAC files, CLI
// flags, machine configs), and the ROADMAP north-star is a service ingesting
// arbitrary user kernels — so malformed input must surface as *data*, not as
// an abort.  This module defines the one error currency every boundary
// speaks:
//
//   * ErrorCode   — stable numeric codes, grouped by subsystem (1xx parse,
//                   2xx DFG, 3xx program/flow, 4xx machine config, 5xx I/O,
//                   6xx server/persistence, 7xx cache-model config);
//   * Error       — code + severity + source location + human message;
//   * Expected<T> — value-or-Error return for fallible API boundaries
//                   (parse_tac_checked, run_design_flow_checked, ...);
//   * ValidationReport — ordered list of Errors a validator collected, so a
//                   caller can print *every* defect, not just the first.
//
// Internal invariants (programmer errors) stay on ISEX_ASSERT; this file is
// for defects an external input can provoke.  docs/ROBUSTNESS.md describes
// the taxonomy and how the validators and fuzzers exercise it.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <variant>
#include <vector>

namespace isex {

/// Stable error codes.  Values are part of the tool's output contract
/// (diagnostics print "E0104"); add new codes at the end of a block, never
/// renumber.
enum class ErrorCode : std::uint16_t {
  kOk = 0,

  // 1xx — TAC parse errors (isa::parse_tac / parse_tac_checked).
  kParseSyntax = 101,           ///< malformed statement / unexpected token
  kParseUnknownMnemonic = 102,  ///< mnemonic not in the PISA subset
  kParseRedefinition = 103,     ///< variable defined twice (block is SSA)
  kParseUndefinedVariable = 104,  ///< live_out of a name never defined
  kParseImmediateRange = 105,   ///< literal outside the 32-bit datapath
  kParseEmptyInput = 106,       ///< no statements (strict mode)
  kParseSelfReference = 107,    ///< dest read in its own operands (cycle)
  kParseArity = 108,            ///< more register operands than the opcode has

  // 2xx — DFG validation (dfg::validate).
  kGraphCycle = 201,             ///< directed cycle; not a DAG
  kGraphDanglingOperand = 202,   ///< edge endpoint out of range
  kGraphAdjacencyCorrupt = 203,  ///< succs/preds lists disagree
  kGraphSelfEdge = 204,          ///< node feeds itself
  kGraphDuplicateEdge = 205,     ///< parallel edge stored twice
  kGraphArity = 206,             ///< operand count exceeds opcode arity
  kGraphOpcodeIllegal = 207,     ///< opcode outside the enum range
  kGraphLiveInInconsistent = 208,  ///< negative live-in value id
  kGraphIseInfoInvalid = 209,    ///< supernode latency/area/IO out of range
  kGraphResultlessProducer = 210,  ///< no-result node with consumers/live-out

  // 3xx — program / design-flow validation (flow::validate).
  kProgramEmpty = 301,         ///< no basic blocks to explore
  kProgramBlockInvalid = 302,  ///< a block's DFG failed dfg::validate
  kProgramExecCount = 303,     ///< block execution count of zero
  kFlowParamsInvalid = 304,    ///< repeats/coverage/constraints out of range

  // 4xx — machine-config validation (sched::validate).
  kConfigIssueWidth = 401,        ///< issue width < 1
  kConfigPorts = 402,             ///< register read/write ports < 1
  kConfigFuCounts = 403,          ///< negative FU count or no ALU
  kConfigOutsidePaperSweep = 404,  ///< warning: outside the 4/2–10/5 sweep

  // 5xx — I/O at the tool boundary.
  kIoFileNotFound = 501,  ///< input path unreadable
  kIoEmptyFile = 502,     ///< input file has no content
  kIoWriteFailed = 503,   ///< output sink unwritable

  // 6xx — server / persistence boundary (isex_serve, PersistentEvalCache).
  kServerProtocol = 601,      ///< malformed request line / missing field
  kServerQueueFull = 602,     ///< admission queue at capacity; retry later
  kServerShuttingDown = 603,  ///< daemon draining; no new jobs accepted
  kPersistVersionMismatch = 604,  ///< warning: cache file from another format
  kPersistCorruptRecord = 605,    ///< warning: log record skipped on load
  kPersistIo = 606,               ///< cache file unreadable / append failed

  // 7xx — cache-model config (mem::parse_cache_config / mem::validate).
  kCacheConfigSyntax = 701,  ///< malformed key=value spec / unknown key
  kCacheGeometry = 702,      ///< bad size/ways/line geometry (pow2 rules)
  kCacheLatency = 703,       ///< hit/miss latency out of range or inverted
  kCacheHierarchy = 704,     ///< L2 geometry incompatible with L1
};

/// Short stable identifier, e.g. "parse-immediate-range".
std::string_view error_code_name(ErrorCode code);

enum class Severity : std::uint8_t {
  kWarning,  ///< suspicious but processable (e.g. ports outside the sweep)
  kError,    ///< input rejected
};

/// Location inside the offending source artifact.  line is 1-based; 0 means
/// "whole input" (e.g. an empty file or a graph-level defect).
struct SourceLoc {
  int line = 0;
  int column = 0;

  friend bool operator==(const SourceLoc&, const SourceLoc&) = default;
};

/// One structured diagnostic.
class Error {
 public:
  Error() = default;
  Error(ErrorCode code, std::string message, SourceLoc loc = {},
        Severity severity = Severity::kError)
      : code_(code),
        severity_(severity),
        loc_(loc),
        message_(std::move(message)) {}

  ErrorCode code() const { return code_; }
  Severity severity() const { return severity_; }
  SourceLoc loc() const { return loc_; }
  const std::string& message() const { return message_; }

  /// "error E0104: line 3: live_out of undefined variable 'ghost'".
  std::string to_string() const;

 private:
  ErrorCode code_ = ErrorCode::kOk;
  Severity severity_ = Severity::kError;
  SourceLoc loc_{};
  std::string message_;
};

/// Thrown by legacy throwing wrappers (run_design_flow) when a checked
/// boundary rejected the input; carries the structured Error.
class ValidationException : public std::runtime_error {
 public:
  explicit ValidationException(Error error)
      : std::runtime_error(error.to_string()), error_(std::move(error)) {}
  const Error& error() const { return error_; }

 private:
  Error error_;
};

/// Value-or-Error result for fallible boundaries.  Deliberately minimal —
/// the two states are explicit, and accessing the wrong one asserts.
template <typename T>
class [[nodiscard]] Expected {
 public:
  Expected(T value) : state_(std::move(value)) {}            // NOLINT(google-explicit-constructor)
  Expected(Error error) : state_(std::move(error)) {}        // NOLINT(google-explicit-constructor)

  bool has_value() const { return std::holds_alternative<T>(state_); }
  explicit operator bool() const { return has_value(); }

  T& value() & { return std::get<T>(state_); }
  const T& value() const& { return std::get<T>(state_); }
  T&& value() && { return std::get<T>(std::move(state_)); }

  const Error& error() const { return std::get<Error>(state_); }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

 private:
  std::variant<T, Error> state_;
};

/// Everything a validator found, in discovery order.  `ok()` ignores
/// warnings: input with warnings is processable, input with errors is not.
class ValidationReport {
 public:
  void add(Error error) { issues_.push_back(std::move(error)); }
  void add(ErrorCode code, std::string message, SourceLoc loc = {},
           Severity severity = Severity::kError) {
    issues_.emplace_back(code, std::move(message), loc, severity);
  }
  void merge(ValidationReport other) {
    for (auto& e : other.issues_) issues_.push_back(std::move(e));
  }

  bool ok() const {
    for (const Error& e : issues_)
      if (e.severity() == Severity::kError) return false;
    return true;
  }
  std::size_t error_count() const {
    std::size_t n = 0;
    for (const Error& e : issues_)
      if (e.severity() == Severity::kError) ++n;
    return n;
  }
  bool empty() const { return issues_.empty(); }
  const std::vector<Error>& issues() const { return issues_; }

  /// First error-severity issue; ISEX_ASSERTs that one exists.
  const Error& first_error() const;

  /// One diagnostic per line.
  std::string to_string() const;

 private:
  std::vector<Error> issues_;
};

}  // namespace isex
