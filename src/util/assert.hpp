// Lightweight always-on assertion used to guard library invariants.
//
// The exploration algorithm is stochastic; silent invariant corruption would
// surface as mysteriously bad results rather than crashes, so the checks stay
// enabled in release builds.  The cost is negligible next to the ACO loop.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace isex {

[[noreturn]] inline void assert_fail(const char* expr, const char* file, int line,
                                     const char* msg) {
  std::fprintf(stderr, "isex assertion failed: %s\n  at %s:%d\n  %s\n", expr, file,
               line, msg != nullptr ? msg : "");
  std::abort();
}

}  // namespace isex

#define ISEX_ASSERT(expr)                                          \
  ((expr) ? static_cast<void>(0)                                   \
          : ::isex::assert_fail(#expr, __FILE__, __LINE__, nullptr))

#define ISEX_ASSERT_MSG(expr, msg)                              \
  ((expr) ? static_cast<void>(0)                                \
          : ::isex::assert_fail(#expr, __FILE__, __LINE__, msg))
