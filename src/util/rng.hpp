// Deterministic pseudo-random number generation for the ACO explorer.
//
// All stochastic components of the library draw from an injected Rng so that
// every experiment is exactly reproducible from its seed.  The generator is
// PCG32 (O'Neill, 2014): small state, good statistical quality, and stable
// output across platforms — unlike std::mt19937 + std::uniform_*_distribution,
// whose distributions are implementation-defined.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace isex {

/// Permuted congruential generator (PCG-XSH-RR 64/32) with distribution
/// helpers whose output is identical on every platform.
class Rng {
 public:
  /// Seeds via SplitMix64 so that consecutive small seeds yield uncorrelated
  /// streams.
  explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bULL) { reseed(seed); }

  void reseed(std::uint64_t seed);

  /// Uniform 32-bit value.
  std::uint32_t next_u32();

  /// Uniform value in [0, bound). bound must be > 0.
  std::uint32_t next_below(std::uint32_t bound);

  /// Uniform double in [0, 1).
  double next_double();

  /// Samples an index according to non-negative weights.  Zero-total weight
  /// falls back to uniform choice.  Empty spans are a precondition violation.
  std::size_t weighted_pick(std::span<const double> weights);

  /// Derives an independent child stream (for per-repeat isolation).
  Rng split();

  /// Derives `n` child streams by `n` consecutive split() calls.  This is
  /// the determinism anchor of the parallel runtime: the fan-out layer
  /// derives every job's stream serially through this helper, then runs the
  /// jobs in any order — results match the serial loop bit for bit, and the
  /// parent ends in the same state either way.
  std::vector<Rng> split_n(std::size_t n);

 private:
  std::uint64_t state_ = 0;
  std::uint64_t inc_ = 0;
};

/// SplitMix64 single-step mix; exposed for seed derivation in experiments.
std::uint64_t splitmix64(std::uint64_t& state);

}  // namespace isex
