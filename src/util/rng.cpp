#include "util/rng.hpp"

#include "util/assert.hpp"

namespace isex {

std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

void Rng::reseed(std::uint64_t seed) {
  std::uint64_t sm = seed;
  const std::uint64_t init_state = splitmix64(sm);
  const std::uint64_t init_seq = splitmix64(sm);
  state_ = 0;
  inc_ = (init_seq << 1U) | 1U;
  (void)next_u32();
  state_ += init_state;
  (void)next_u32();
}

std::uint32_t Rng::next_u32() {
  const std::uint64_t old = state_;
  state_ = old * 6364136223846793005ULL + inc_;
  const auto xorshifted = static_cast<std::uint32_t>(((old >> 18U) ^ old) >> 27U);
  const auto rot = static_cast<std::uint32_t>(old >> 59U);
  return (xorshifted >> rot) | (xorshifted << ((32U - rot) & 31U));
}

std::uint32_t Rng::next_below(std::uint32_t bound) {
  ISEX_ASSERT(bound > 0);
  // Lemire-style rejection to avoid modulo bias.
  const std::uint32_t threshold = (0U - bound) % bound;
  for (;;) {
    const std::uint32_t r = next_u32();
    if (r >= threshold) return r % bound;
  }
}

double Rng::next_double() {
  // 53 random bits into [0, 1).
  const std::uint64_t hi = next_u32();
  const std::uint64_t lo = next_u32();
  const std::uint64_t bits = ((hi << 32U) | lo) >> 11U;
  return static_cast<double>(bits) * 0x1.0p-53;
}

std::size_t Rng::weighted_pick(std::span<const double> weights) {
  ISEX_ASSERT_MSG(!weights.empty(), "weighted_pick needs at least one weight");
  double total = 0.0;
  for (const double w : weights) {
    ISEX_ASSERT_MSG(w >= 0.0, "weights must be non-negative");
    total += w;
  }
  if (total <= 0.0) return next_below(static_cast<std::uint32_t>(weights.size()));
  double ticket = next_double() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    ticket -= weights[i];
    if (ticket < 0.0) return i;
  }
  return weights.size() - 1;  // guard against rounding at the top end
}

Rng Rng::split() {
  const std::uint64_t hi = next_u32();
  const std::uint64_t lo = next_u32();
  return Rng((hi << 32U) | lo);
}

std::vector<Rng> Rng::split_n(std::size_t n) {
  std::vector<Rng> children;
  children.reserve(n);
  for (std::size_t i = 0; i < n; ++i) children.push_back(split());
  return children;
}

}  // namespace isex
