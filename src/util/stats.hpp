// Small summary-statistics helpers used when aggregating per-benchmark
// execution-time reductions into the paper's max/min/avg headline numbers.
#pragma once

#include <span>

namespace isex {

struct Summary {
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double stddev = 0.0;
  std::size_t count = 0;
};

/// Computes min/max/mean/population-stddev over `values`.  Empty input yields
/// a zeroed summary with count == 0.
Summary summarize(std::span<const double> values);

/// Geometric mean; all values must be positive. Empty input yields 0.
double geometric_mean(std::span<const double> values);

}  // namespace isex
