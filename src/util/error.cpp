#include "util/error.hpp"

#include <cstdio>

#include "util/assert.hpp"

namespace isex {

std::string_view error_code_name(ErrorCode code) {
  switch (code) {
    case ErrorCode::kOk: return "ok";
    case ErrorCode::kParseSyntax: return "parse-syntax";
    case ErrorCode::kParseUnknownMnemonic: return "parse-unknown-mnemonic";
    case ErrorCode::kParseRedefinition: return "parse-redefinition";
    case ErrorCode::kParseUndefinedVariable: return "parse-undefined-variable";
    case ErrorCode::kParseImmediateRange: return "parse-immediate-range";
    case ErrorCode::kParseEmptyInput: return "parse-empty-input";
    case ErrorCode::kParseSelfReference: return "parse-self-reference";
    case ErrorCode::kParseArity: return "parse-arity";
    case ErrorCode::kGraphCycle: return "graph-cycle";
    case ErrorCode::kGraphDanglingOperand: return "graph-dangling-operand";
    case ErrorCode::kGraphAdjacencyCorrupt: return "graph-adjacency-corrupt";
    case ErrorCode::kGraphSelfEdge: return "graph-self-edge";
    case ErrorCode::kGraphDuplicateEdge: return "graph-duplicate-edge";
    case ErrorCode::kGraphArity: return "graph-arity";
    case ErrorCode::kGraphOpcodeIllegal: return "graph-opcode-illegal";
    case ErrorCode::kGraphLiveInInconsistent: return "graph-live-in-inconsistent";
    case ErrorCode::kGraphIseInfoInvalid: return "graph-ise-info-invalid";
    case ErrorCode::kGraphResultlessProducer: return "graph-resultless-producer";
    case ErrorCode::kProgramEmpty: return "program-empty";
    case ErrorCode::kProgramBlockInvalid: return "program-block-invalid";
    case ErrorCode::kProgramExecCount: return "program-exec-count";
    case ErrorCode::kFlowParamsInvalid: return "flow-params-invalid";
    case ErrorCode::kConfigIssueWidth: return "config-issue-width";
    case ErrorCode::kConfigPorts: return "config-ports";
    case ErrorCode::kConfigFuCounts: return "config-fu-counts";
    case ErrorCode::kConfigOutsidePaperSweep: return "config-outside-paper-sweep";
    case ErrorCode::kIoFileNotFound: return "io-file-not-found";
    case ErrorCode::kIoEmptyFile: return "io-empty-file";
    case ErrorCode::kIoWriteFailed: return "io-write-failed";
    case ErrorCode::kServerProtocol: return "server-protocol";
    case ErrorCode::kServerQueueFull: return "server-queue-full";
    case ErrorCode::kServerShuttingDown: return "server-shutting-down";
    case ErrorCode::kPersistVersionMismatch: return "persist-version-mismatch";
    case ErrorCode::kPersistCorruptRecord: return "persist-corrupt-record";
    case ErrorCode::kPersistIo: return "persist-io";
    case ErrorCode::kCacheConfigSyntax: return "cache-config-syntax";
    case ErrorCode::kCacheGeometry: return "cache-geometry";
    case ErrorCode::kCacheLatency: return "cache-latency";
    case ErrorCode::kCacheHierarchy: return "cache-hierarchy";
  }
  return "unknown";
}

std::string Error::to_string() const {
  char code_buf[8];
  std::snprintf(code_buf, sizeof(code_buf), "E%04u",
                static_cast<unsigned>(code_));
  std::string out =
      severity_ == Severity::kWarning ? "warning " : "error ";
  out += code_buf;
  out += " [";
  out += error_code_name(code_);
  out += "]: ";
  if (loc_.line > 0) {
    out += "line " + std::to_string(loc_.line) + ": ";
  }
  out += message_;
  return out;
}

const Error& ValidationReport::first_error() const {
  for (const Error& e : issues_)
    if (e.severity() == Severity::kError) return e;
  ISEX_ASSERT_MSG(false, "first_error() on a report with no errors");
  std::abort();  // unreachable; keeps the compiler satisfied
}

std::string ValidationReport::to_string() const {
  std::string out;
  for (const Error& e : issues_) {
    out += e.to_string();
    out += '\n';
  }
  return out;
}

}  // namespace isex
