#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

#include "util/assert.hpp"

namespace isex {

Summary summarize(std::span<const double> values) {
  Summary s;
  if (values.empty()) return s;
  s.count = values.size();
  s.min = values[0];
  s.max = values[0];
  double sum = 0.0;
  for (const double v : values) {
    s.min = std::min(s.min, v);
    s.max = std::max(s.max, v);
    sum += v;
  }
  s.mean = sum / static_cast<double>(values.size());
  double var = 0.0;
  for (const double v : values) var += (v - s.mean) * (v - s.mean);
  s.stddev = std::sqrt(var / static_cast<double>(values.size()));
  return s;
}

double geometric_mean(std::span<const double> values) {
  if (values.empty()) return 0.0;
  double log_sum = 0.0;
  for (const double v : values) {
    ISEX_ASSERT_MSG(v > 0.0, "geometric_mean requires positive values");
    log_sum += std::log(v);
  }
  return std::exp(log_sum / static_cast<double>(values.size()));
}

}  // namespace isex
