// Resource-constrained list scheduler for one basic block.
//
// Cycle-by-cycle list scheduling: at each cycle, ready operations (all
// dependences resolved and producer latencies elapsed) issue in priority
// order as long as issue slots, register ports, and functional units remain.
// ISE supernodes issue like any instruction but occupy IN(S)/OUT(S) register
// ports and run for their ASFU latency (the ASFU is treated as pipelined, so
// only dependences serialize back-to-back ISE issues).
//
// This is both the evaluation scheduler (final execution-time measurement
// after ISE replacement) and the reference the explorer's internal
// Operation-Scheduling is validated against.
//
// Two evaluation entry points share one templated core:
//   * run(Graph)            — full Schedule, for reports and validation;
//   * cycles(G, scratch)    — makespan only, over dfg::Graph *or* a
//     dfg::CollapsedView candidate overlay, with all working state in a
//     caller-owned SchedulerScratch (zero steady-state allocations).  The
//     makespan is identical to run().cycles on the equivalent graph.
#pragma once

#include "dfg/collapsed_view.hpp"
#include "dfg/graph.hpp"
#include "sched/machine_config.hpp"
#include "sched/priority.hpp"
#include "sched/schedule.hpp"
#include "sched/scheduler_scratch.hpp"

namespace isex::sched {

class ListScheduler {
 public:
  explicit ListScheduler(MachineConfig config,
                         PriorityKind priority = PriorityKind::kChildCount)
      : config_(config), priority_(priority) {}

  const MachineConfig& config() const { return config_; }
  PriorityKind priority() const { return priority_; }

  /// Schedules `graph`; the result satisfies respects_dependences() and all
  /// per-cycle resource limits.
  Schedule run(const dfg::Graph& graph) const;

  /// Convenience: makespan only.
  int cycles(const dfg::Graph& graph) const { return run(graph).cycles; }

  /// Makespan of `graph` (dfg::Graph or dfg::CollapsedView) using reusable
  /// working storage; per-node placements are left in scratch.slot.
  template <typename G>
  int cycles(const G& graph, SchedulerScratch& scratch) const;

 private:
  MachineConfig config_;
  PriorityKind priority_;
};

extern template int ListScheduler::cycles<dfg::Graph>(
    const dfg::Graph&, SchedulerScratch&) const;
extern template int ListScheduler::cycles<dfg::CollapsedView>(
    const dfg::CollapsedView&, SchedulerScratch&) const;

}  // namespace isex::sched
