// Multiple-issue machine model.
//
// The paper's target is a statically scheduled in-order multiple-issue
// embedded core: issue width 2–4, a shared register file with 4/2 … 10/5
// read/write ports, one-cycle PISA instructions, and ASFUs attached to the
// execute stage.  The scheduler charges, per cycle: issue slots, register
// read/write ports, and functional units per class.
#pragma once

#include <array>
#include <string>

#include "isa/opcode.hpp"
#include "isa/register_file.hpp"
#include "util/error.hpp"

namespace isex::sched {

inline constexpr std::size_t kNumFuClasses = 5;  // matches isa::FuClass

struct MachineConfig {
  int issue_width = 2;
  isa::RegisterFileConfig reg_file{4, 2};
  /// Functional units available per isa::FuClass.
  std::array<int, kNumFuClasses> fu_counts{2, 1, 1, 1, 1};

  /// Canonical evaluation machine: ALU count = issue width; one multiplier,
  /// divider, memory port, and branch unit.
  static MachineConfig make(int issue_width, isa::RegisterFileConfig reg_file);

  int fu_count(isa::FuClass cls) const {
    return fu_counts[static_cast<std::size_t>(cls)];
  }

  /// Paper shorthand, e.g. "(6/3, 3IS)".
  std::string label() const;

  friend bool operator==(const MachineConfig&, const MachineConfig&) = default;
};

/// Machine-model sanity.  Errors (rejected): issue width < 1, register
/// read/write ports < 1, a negative FU count, or no ALU.  Warnings
/// (processable but outside the paper's evaluation envelope): issue width
/// beyond 2–4 or a port configuration outside the 4/2 … 10/5 sweep.
ValidationReport validate(const MachineConfig& config);

}  // namespace isex::sched
