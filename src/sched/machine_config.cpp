#include "sched/machine_config.hpp"

#include "util/assert.hpp"

namespace isex::sched {

MachineConfig MachineConfig::make(int issue_width,
                                  isa::RegisterFileConfig reg_file) {
  ISEX_ASSERT(issue_width >= 1);
  MachineConfig cfg;
  cfg.issue_width = issue_width;
  cfg.reg_file = reg_file;
  cfg.fu_counts = {issue_width, 1, 1, 1, 1};
  return cfg;
}

std::string MachineConfig::label() const {
  return "(" + reg_file.label() + ", " + std::to_string(issue_width) + "IS)";
}

ValidationReport validate(const MachineConfig& config) {
  ValidationReport report;
  if (config.issue_width < 1)
    report.add(ErrorCode::kConfigIssueWidth,
               "issue width " + std::to_string(config.issue_width) +
                   " is invalid (must be >= 1)");
  else if (config.issue_width > 4)
    report.add(ErrorCode::kConfigOutsidePaperSweep,
               "issue width " + std::to_string(config.issue_width) +
                   " is outside the paper's 2-4 evaluation range",
               {}, Severity::kWarning);

  const isa::RegisterFileConfig& rf = config.reg_file;
  if (rf.read_ports < 1 || rf.write_ports < 1)
    report.add(ErrorCode::kConfigPorts,
               "register file " + rf.label() +
                   " is invalid (read and write ports must be >= 1)");
  else if (rf.read_ports < 4 || rf.read_ports > 10 || rf.write_ports < 2 ||
           rf.write_ports > 5)
    report.add(ErrorCode::kConfigOutsidePaperSweep,
               "register file " + rf.label() +
                   " is outside the paper's 4/2-10/5 port sweep",
               {}, Severity::kWarning);

  for (std::size_t cls = 0; cls < kNumFuClasses; ++cls) {
    if (config.fu_counts[cls] < 0)
      report.add(ErrorCode::kConfigFuCounts,
                 "functional-unit class " + std::to_string(cls) +
                     " has negative count " +
                     std::to_string(config.fu_counts[cls]));
  }
  if (config.fu_count(isa::FuClass::kAlu) < 1)
    report.add(ErrorCode::kConfigFuCounts,
               "machine has no ALU; nothing can issue");
  return report;
}

}  // namespace isex::sched
