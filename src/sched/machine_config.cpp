#include "sched/machine_config.hpp"

#include "util/assert.hpp"

namespace isex::sched {

MachineConfig MachineConfig::make(int issue_width,
                                  isa::RegisterFileConfig reg_file) {
  ISEX_ASSERT(issue_width >= 1);
  MachineConfig cfg;
  cfg.issue_width = issue_width;
  cfg.reg_file = reg_file;
  cfg.fu_counts = {issue_width, 1, 1, 1, 1};
  return cfg;
}

std::string MachineConfig::label() const {
  return "(" + reg_file.label() + ", " + std::to_string(issue_width) + "IS)";
}

}  // namespace isex::sched
