// Schedule result container and schedule-derived analyses.
#pragma once

#include <vector>

#include "dfg/graph.hpp"
#include "dfg/node_set.hpp"

namespace isex::sched {

/// Cycle-accurate placement of every node of one DFG.
struct Schedule {
  /// Issue cycle per node (0-based).
  std::vector<int> slot;
  /// Total cycles until the last result is available (makespan).
  int cycles = 0;

  bool valid() const { return !slot.empty(); }
  int start_of(dfg::NodeId v) const { return slot[v]; }
};

/// Per-node latency in cycles used by the scheduler: 1 for regular PISA
/// operations (paper §5.1), the committed ASFU latency for ISE supernodes.
int node_latency(const dfg::Graph& graph, dfg::NodeId v);

/// Register read/write ports a node consumes in its issue cycle.
int read_ports_used(const dfg::Graph& graph, dfg::NodeId v);
int write_ports_used(const dfg::Graph& graph, dfg::NodeId v);

/// Nodes on a schedule-tight chain that realizes the makespan: the node's
/// finish time equals the makespan, or some tight successor (issued exactly
/// when this node's result becomes ready) is critical.  This is the
/// "location of operations" signal the paper's merit case 1 consumes.
dfg::NodeSet critical_nodes(const dfg::Graph& graph, const Schedule& schedule);

/// Verifies dependence correctness: every edge (u, v) has
/// slot[v] >= slot[u] + latency(u).  Used by tests and assertions.
bool respects_dependences(const dfg::Graph& graph, const Schedule& schedule);

}  // namespace isex::sched
